//===- Metrics.h - unified metrics registry (Prometheus exposition) -*- C++ -*-===//
///
/// \file
/// The serving stack's ONE metrics surface: counters, gauges, and
/// fixed-bucket histograms registered by name in a Registry and
/// rendered as Prometheus text exposition. Three design rules, lifted
/// from the engine's existing accounting discipline:
///
///  1. SINGLE-WRITER CELLS. A Counter/Histogram is a row of
///     cache-line-padded cells; each cell has exactly one writer (shard
///     thread I writes cell I) using a relaxed load+store pair — no RMW
///     on the hot tick, TSan-clean by construction — and a scrape merges
///     the cells. This is serve/Engine.cpp's `bump()` pattern promoted
///     to a type.
///
///  2. EXACT PERCENTILES STAY EXACT. A Histogram carries both the fixed
///     cumulative buckets Prometheus wants AND a bounded ring of raw
///     samples (the engine's 65536-sample window, absorbed here) so
///     `stats()` reports the same nearest-rank p50/p95/p99 the JSONL
///     fields always reported. Buckets approximate; the window does not.
///
///  3. COHERENT GROUPS GO THROUGH COLLECTORS. Counters whose CROSS-metric
///     invariants matter mid-flight (Completed == sum of typed outcomes)
///     cannot be scraped one atomic at a time; their owner registers a
///     collector callback that takes its own lock, snapshots the whole
///     group at once, and emits the family into the scrape.
///
/// `sampleStats()` is the ONE percentile implementation (nearest-rank +
/// mean/max); serve::latencyStatsOf is a thin wrapper over it.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_OBS_METRICS_H
#define SLADE_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace slade {
namespace obs {

/// Latency-style distribution summary over raw samples, in the caller's
/// unit (the engine uses seconds).
struct SampleStats {
  double P50 = 0, P95 = 0, P99 = 0, Mean = 0, Max = 0;
  uint64_t Count = 0;
};

/// Nearest-rank percentile over ascending-sorted samples: the rank for
/// quantile P is floor(P * N), clamped to the last sample.
double percentileOfSorted(const std::vector<double> &Sorted, double P);

/// Nearest-rank p50/p95/p99 + mean/max over raw samples. THE percentile
/// implementation: every consumer (EngineMetrics, slade-serve replay
/// reporting, histogram snapshots) routes through here so conventions
/// cannot diverge.
SampleStats sampleStats(std::vector<double> Samples);

namespace detail {
/// One cache-line-padded accumulator cell. Exactly one writer; readers
/// load relaxed. The load+store pair (not fetch_add) keeps the writer's
/// hot path a plain move on x86 while staying race-free under the
/// single-writer contract.
template <typename T> struct alignas(64) Cell {
  std::atomic<T> V{};
  void bump(T Delta) {
    V.store(V.load(std::memory_order_relaxed) + Delta,
            std::memory_order_relaxed);
  }
  T get() const { return V.load(std::memory_order_relaxed); }
};
} // namespace detail

/// Monotonic counter, merged over its single-writer cells on read.
/// Integer counts and seconds totals get separate value types so counts
/// never round (CellsF below for the latter).
class Counter {
public:
  /// Single-writer bump of cell \p CellIdx (the owning shard/thread).
  void add(int CellIdx, uint64_t Delta = 1) {
    Cells[static_cast<size_t>(CellIdx)].bump(Delta);
  }
  uint64_t value() const;
  uint64_t cellValue(int CellIdx) const {
    return Cells[static_cast<size_t>(CellIdx)].get();
  }
  int cells() const { return static_cast<int>(NCells); }

private:
  friend class Registry;
  Counter(std::string Name, std::string Help, size_t N);
  std::string Name, Help;
  size_t NCells;
  std::unique_ptr<detail::Cell<uint64_t>[]> Cells;
};

/// Monotonic floating-point counter (seconds totals), same cell
/// discipline as Counter.
class FloatCounter {
public:
  void add(int CellIdx, double Delta) {
    Cells[static_cast<size_t>(CellIdx)].bump(Delta);
  }
  double value() const;
  double cellValue(int CellIdx) const {
    return Cells[static_cast<size_t>(CellIdx)].get();
  }
  int cells() const { return static_cast<int>(NCells); }

private:
  friend class Registry;
  FloatCounter(std::string Name, std::string Help, size_t N);
  std::string Name, Help;
  size_t NCells;
  std::unique_ptr<detail::Cell<double>[]> Cells;
};

/// Last-write-wins instantaneous value (queue depth, live sources).
class Gauge {
public:
  void set(double V) { Val.store(V, std::memory_order_relaxed); }
  double value() const { return Val.load(std::memory_order_relaxed); }

private:
  friend class Registry;
  Gauge(std::string Name, std::string Help);
  std::string Name, Help;
  std::atomic<double> Val{0};
};

/// Fixed-bucket histogram + bounded exact-sample window.
///
/// The bucket path is the scrape surface: per-cell single-writer counts
/// against ascending upper bounds (an implicit +Inf bucket closes the
/// family), merged cumulatively at render time exactly as Prometheus
/// expects. The window path preserves the repo's reporting contract:
/// a bounded ring of raw samples (oldest overwritten once full) from
/// which stats() computes EXACT nearest-rank percentiles — identical to
/// what serve::latencyStatsOf reported before this type existed. The
/// window is mutex-guarded (observations are request-rate, never
/// tick-rate); the bucket cells are wait-free.
class Histogram {
public:
  void observe(int CellIdx, double V);
  uint64_t count() const;
  double sum() const;
  /// Merged per-bound cumulative counts; index i pairs Bounds[i], and
  /// one final entry carries the +Inf total.
  std::vector<uint64_t> cumulativeCounts() const;
  const std::vector<double> &bounds() const { return Bounds; }
  /// Exact nearest-rank stats over the bounded sample window.
  SampleStats stats() const;
  /// Copy of the current window (testing / external aggregation).
  std::vector<double> windowSamples() const;

  /// Default latency bucket bounds, seconds: 1ms..64s powers of two.
  static std::vector<double> defaultLatencyBounds();

private:
  friend class Registry;
  Histogram(std::string Name, std::string Help, std::vector<double> Bnds,
            size_t N, size_t WindowCap);
  std::string Name, Help;
  std::vector<double> Bounds; ///< Ascending upper bounds, +Inf implicit.
  size_t NCells;
  size_t Stride; ///< Bounds.size() + 1 slots per cell (+Inf last).
  std::unique_ptr<detail::Cell<uint64_t>[]> BucketCells;
  std::unique_ptr<detail::Cell<double>[]> SumCells;
  std::unique_ptr<detail::Cell<uint64_t>[]> CountCells;
  size_t WindowCap;
  mutable std::mutex WindowMu;
  std::vector<double> Window;
  size_t WindowCursor = 0;
};

/// A collector's emission surface: one call per metric family, rendered
/// in registration order after the direct instruments.
class MetricSink {
public:
  virtual ~MetricSink() = default;
  /// \p Labels is the raw inside-braces text (e.g. `status="ok"`), empty
  /// for none.
  virtual void counter(const std::string &Name, const std::string &Help,
                       const std::string &Labels, double V) = 0;
  virtual void gauge(const std::string &Name, const std::string &Help,
                     const std::string &Labels, double V) = 0;
};

/// The registry: instruments registered by name (idempotent — the same
/// name returns the same instrument) plus collector callbacks for
/// coherent multi-metric groups. renderPrometheus() writes the full
/// text exposition (HELP/TYPE headers, histogram _bucket/_sum/_count
/// with le="+Inf", trailing newline) that tools/check-prom.py lints in
/// CI.
class Registry {
public:
  Registry();
  ~Registry();
  Registry(const Registry &) = delete;
  Registry &operator=(const Registry &) = delete;

  /// \p Cells is the writer count (one per shard/thread); instruments
  /// are never resized after creation.
  Counter &counter(const std::string &Name, const std::string &Help,
                   int Cells = 1);
  FloatCounter &floatCounter(const std::string &Name,
                             const std::string &Help, int Cells = 1);
  Gauge &gauge(const std::string &Name, const std::string &Help);
  Histogram &histogram(const std::string &Name, const std::string &Help,
                       std::vector<double> Bounds, int Cells = 1,
                       size_t WindowCap = 1 << 16);

  /// Registers a coherent-group collector; returns a token for
  /// removeCollector (owners MUST remove themselves before dying).
  uint64_t addCollector(std::function<void(MetricSink &)> Fn);
  void removeCollector(uint64_t Token);

  /// Prometheus text exposition of every instrument + collector.
  void renderPrometheus(std::ostream &OS) const;
  /// Convenience: render to a file ("-" = stdout). False on IO failure.
  bool renderPrometheusFile(const std::string &Path) const;

private:
  struct Entry;
  mutable std::mutex Mu; ///< Registration + scrape; never on a hot path.
  std::vector<std::unique_ptr<Entry>> Entries;
  std::vector<std::pair<uint64_t, std::function<void(MetricSink &)>>>
      Collectors;
  uint64_t NextToken = 1;
};

} // namespace obs
} // namespace slade

#endif // SLADE_OBS_METRICS_H
