//===- Trace.h - request-lifecycle trace recorder (Chrome trace_event) -*- C++ -*-===//
///
/// \file
/// A lock-free, always-compiled, default-off span recorder for the
/// serving stack. Every instrumentation site costs ONE relaxed atomic
/// load + branch while tracing is off; enabled, an event is a steady-
/// clock read plus a POD store into the calling thread's private ring
/// buffer — tens of nanoseconds, no locks, no allocation after the
/// thread's first event.
///
/// Model:
///  - SPANS are complete events: (kind, id, start ns, duration ns, two
///    kind-specific args). Request-scope spans carry the request's
///    engine Seq as id; shard-scope spans (ticks, spec rounds, oracle
///    masking) carry the shard index.
///  - SAMPLING is per-request and deterministic: request Seq S is traced
///    iff mix64(S ^ Seed) % SampleEvery == 0 (SampleEvery 1 = all).
///    The decision is made ONCE at submit and rides the request, so a
///    sampled request's spans are complete across dispatcher, shard,
///    and verify-worker threads.
///  - BUFFERS are per-thread fixed-size rings registered on first use
///    and owned by the recorder (they outlive their threads). A full
///    ring overwrites its oldest events; dropped counts are reported in
///    the export. Export requires QUIESCENCE (no concurrent recording)
///    — in practice, after Engine::stop().
///
/// Export is Chrome `trace_event` JSON (chrome://tracing, Perfetto):
/// request-scope spans become async b/e pairs keyed by request id (one
/// swim lane per request), shard-scope spans become X events on their
/// recording thread's track.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_OBS_TRACE_H
#define SLADE_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace slade {
namespace obs {

/// Span taxonomy, covering the request lifecycle end to end (see
/// docs/ARCHITECTURE.md "Observability"). Request scope unless noted.
enum class SpanKind : uint8_t {
  Submit,       ///< Instant: submit() accepted the request.
  QueueWait,    ///< submit() -> dispatcher pop (admission queue time).
  Dispatch,     ///< Dispatcher pop -> routed to a shard / completed.
  Encode,       ///< Encoder forward inside dispatch (LRU miss only).
  AdmissionWait,///< Routed -> bound to a decode row (segment wait).
  Decode,       ///< Decode-row admission -> retirement. Arg0 = steps.
  Verify,       ///< Verify-pool span for the whole request.
  VerifyCand,   ///< One candidate. Arg0 = index, Arg1 = attempts.
  VerifyAttempt,///< One core verify attempt. Arg0 = cand, Arg1 = attempt.
  Resolve,      ///< Instant: typed resolution. Arg0 = RequestStatus.
  Tick,         ///< SHARD scope: one fused decode tick. Arg0 = rows.
  SpecRound,    ///< SHARD scope: propose/verify round. Arg0 = proposed,
                ///< Arg1 = accepted.
  OracleMask,   ///< SHARD scope: constraint-mask time within a tick.
  ParallelTile, ///< SHARD scope: intra-tick pool fan-out within a tick.
                ///< Arg0 = pool regions run, Arg1 = tick threads.
  KindCount
};

const char *spanKindName(SpanKind K);

/// One recorded event. POD; 48 bytes.
struct SpanEvent {
  uint64_t StartNs = 0; ///< Monotonic, since the recorder's epoch.
  uint64_t DurNs = 0;   ///< 0 for instants.
  uint64_t Id = 0;      ///< Request Seq, or shard index (shard scope).
  uint64_t Arg0 = 0, Arg1 = 0;
  SpanKind Kind = SpanKind::Submit;
};

/// Returns true for kinds recorded per shard rather than per request.
bool isShardScope(SpanKind K);

class TraceRecorder {
public:
  static constexpr size_t DefaultCapacity = 1 << 14; ///< Events/thread.

  explicit TraceRecorder(size_t CapacityPerThread = DefaultCapacity);
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder &) = delete;
  TraceRecorder &operator=(const TraceRecorder &) = delete;

  /// The process-wide recorder the engine instrumentation emits into.
  static TraceRecorder &global();

  /// Arms recording: every SampleEvery'th request (deterministically
  /// chosen under \p Seed) records its lifecycle; shard-scope events
  /// always record while enabled.
  void enable(uint32_t SampleEvery = 1, uint64_t Seed = 0);
  void disable();
  bool enabled() const {
    return Enabled.load(std::memory_order_relaxed);
  }
  uint32_t sampleEvery() const {
    return SampleN.load(std::memory_order_relaxed);
  }

  /// Deterministic per-request sampling decision (false when disabled).
  bool sampled(uint64_t Seq) const;

  /// Monotonic nanoseconds since this recorder's construction.
  uint64_t nowNs() const;

  /// Records a complete span into the calling thread's ring. The caller
  /// has already made the enabled/sampled decision.
  void record(SpanKind K, uint64_t Id, uint64_t StartNs, uint64_t EndNs,
              uint64_t Arg0 = 0, uint64_t Arg1 = 0);
  /// Records an instant event (DurNs = 0) at now.
  void instant(SpanKind K, uint64_t Id, uint64_t Arg0 = 0,
               uint64_t Arg1 = 0);

  /// Names the calling thread's track in the export ("shard-0", ...).
  void nameThread(const std::string &Name);

  /// Events currently retained (sum over rings; capped per thread).
  size_t eventCount() const;
  /// Events overwritten by ring wraparound, all threads.
  uint64_t droppedCount() const;
  /// Drops every retained event (buffers stay registered). Requires
  /// quiescence, like export.
  void clear();

  /// Visits retained events oldest-first per thread. \p ThreadIdx is
  /// the buffer registration index. Requires quiescence.
  void forEachEvent(
      const std::function<void(const SpanEvent &, uint32_t ThreadIdx)> &Fn)
      const;

  /// Chrome trace_event JSON ({"traceEvents": [...], ...}). Requires
  /// quiescence.
  void writeChromeTrace(std::ostream &OS) const;
  bool writeChromeTraceFile(const std::string &Path) const;

private:
  struct Buffer;
  Buffer &localBuffer();

  const size_t Capacity;
  const uint64_t Epoch; ///< steady_clock ticks at construction.
  const uint64_t RecorderId;
  std::atomic<bool> Enabled{false};
  std::atomic<uint32_t> SampleN{1};
  std::atomic<uint64_t> SampleSeed{0};
  mutable std::mutex BuffersMu; ///< Registration + export; not hot.
  std::vector<std::unique_ptr<Buffer>> Buffers;
};

/// Shorthand for the global recorder.
inline TraceRecorder &trace() { return TraceRecorder::global(); }

/// RAII span: stamps start on construction and records on destruction
/// (or early end()) when \p Emit was true. Instrumentation sites pass
/// `recorder.enabled() && sampled-decision` so the off path stays one
/// load + branch.
class ScopedSpan {
public:
  ScopedSpan(TraceRecorder &R, SpanKind K, uint64_t Id, bool Emit)
      : R(R), Kind(K), Id(Id), Emit(Emit),
        StartNs(Emit ? R.nowNs() : 0) {}
  ~ScopedSpan() { end(); }
  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

  void args(uint64_t A0, uint64_t A1 = 0) {
    Arg0 = A0;
    Arg1 = A1;
  }
  void end() {
    if (!Emit)
      return;
    Emit = false;
    R.record(Kind, Id, StartNs, R.nowNs(), Arg0, Arg1);
  }

private:
  TraceRecorder &R;
  SpanKind Kind;
  uint64_t Id;
  bool Emit;
  uint64_t StartNs;
  uint64_t Arg0 = 0, Arg1 = 0;
};

} // namespace obs
} // namespace slade

#endif // SLADE_OBS_TRACE_H
