//===- Trace.cpp - request-lifecycle trace recorder (Chrome trace_event) ------===//

#include "obs/Trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>

using namespace slade;
using namespace slade::obs;

const char *slade::obs::spanKindName(SpanKind K) {
  switch (K) {
  case SpanKind::Submit:
    return "submit";
  case SpanKind::QueueWait:
    return "queue_wait";
  case SpanKind::Dispatch:
    return "dispatch";
  case SpanKind::Encode:
    return "encode";
  case SpanKind::AdmissionWait:
    return "admission_wait";
  case SpanKind::Decode:
    return "decode";
  case SpanKind::Verify:
    return "verify";
  case SpanKind::VerifyCand:
    return "verify_candidate";
  case SpanKind::VerifyAttempt:
    return "verify_attempt";
  case SpanKind::Resolve:
    return "resolve";
  case SpanKind::Tick:
    return "tick";
  case SpanKind::SpecRound:
    return "spec_round";
  case SpanKind::OracleMask:
    return "oracle_mask";
  case SpanKind::ParallelTile:
    return "parallel_tile";
  case SpanKind::KindCount:
    break;
  }
  return "unknown";
}

bool slade::obs::isShardScope(SpanKind K) {
  return K == SpanKind::Tick || K == SpanKind::SpecRound ||
         K == SpanKind::OracleMask || K == SpanKind::ParallelTile;
}

namespace {

/// splitmix64 finalizer: the sampling hash. Bijective, so distinct Seqs
/// never collide, and seeded so the sampled subset is reproducible.
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

uint64_t steadyNowTicks() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<uint64_t> NextRecorderId{1};

} // namespace

/// One thread's ring. The owning thread is the only writer; Written is
/// stored with release so a quiescent reader sees complete slots.
struct TraceRecorder::Buffer {
  explicit Buffer(size_t Cap) : Events(Cap) {}
  std::vector<SpanEvent> Events;
  std::atomic<uint64_t> Written{0}; ///< Total ever recorded.
  std::string Name;
};

TraceRecorder::TraceRecorder(size_t CapacityPerThread)
    : Capacity(std::max<size_t>(CapacityPerThread, 2)),
      Epoch(steadyNowTicks()),
      RecorderId(NextRecorderId.fetch_add(1, std::memory_order_relaxed)) {}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder &TraceRecorder::global() {
  static TraceRecorder G;
  return G;
}

void TraceRecorder::enable(uint32_t SampleEvery, uint64_t Seed) {
  SampleN.store(std::max<uint32_t>(SampleEvery, 1),
                std::memory_order_relaxed);
  SampleSeed.store(Seed, std::memory_order_relaxed);
  Enabled.store(true, std::memory_order_release);
}

void TraceRecorder::disable() {
  Enabled.store(false, std::memory_order_release);
}

bool TraceRecorder::sampled(uint64_t Seq) const {
  if (!enabled())
    return false;
  uint32_t N = SampleN.load(std::memory_order_relaxed);
  if (N <= 1)
    return true;
  return mix64(Seq ^ SampleSeed.load(std::memory_order_relaxed)) % N == 0;
}

uint64_t TraceRecorder::nowNs() const { return steadyNowTicks() - Epoch; }

TraceRecorder::Buffer &TraceRecorder::localBuffer() {
  // Per-thread map of recorder -> ring: the hot path (engine threads ->
  // the one live recorder) is a scan of a tiny thread_local vector, no
  // lock after a thread's first event per recorder. Keyed by the unique
  // RecorderId, never the address, so a recorder reallocated at a dead
  // one's address cannot alias a stale entry.
  static thread_local std::vector<std::pair<uint64_t, Buffer *>> Tls;
  for (const auto &P : Tls)
    if (P.first == RecorderId)
      return *P.second;
  std::lock_guard<std::mutex> Lock(BuffersMu);
  Buffers.push_back(std::make_unique<Buffer>(Capacity));
  Buffer *B = Buffers.back().get();
  Tls.emplace_back(RecorderId, B);
  return *B;
}

void TraceRecorder::record(SpanKind K, uint64_t Id, uint64_t StartNs,
                           uint64_t EndNs, uint64_t Arg0, uint64_t Arg1) {
  Buffer &B = localBuffer();
  uint64_t W = B.Written.load(std::memory_order_relaxed);
  SpanEvent &E = B.Events[W % Capacity];
  E.StartNs = StartNs;
  E.DurNs = EndNs > StartNs ? EndNs - StartNs : 0;
  E.Id = Id;
  E.Arg0 = Arg0;
  E.Arg1 = Arg1;
  E.Kind = K;
  B.Written.store(W + 1, std::memory_order_release);
}

void TraceRecorder::instant(SpanKind K, uint64_t Id, uint64_t Arg0,
                            uint64_t Arg1) {
  uint64_t Now = nowNs();
  record(K, Id, Now, Now, Arg0, Arg1);
}

void TraceRecorder::nameThread(const std::string &Name) {
  Buffer &B = localBuffer();
  std::lock_guard<std::mutex> Lock(BuffersMu);
  B.Name = Name;
}

size_t TraceRecorder::eventCount() const {
  std::lock_guard<std::mutex> Lock(BuffersMu);
  size_t N = 0;
  for (const auto &B : Buffers)
    N += static_cast<size_t>(std::min<uint64_t>(
        B->Written.load(std::memory_order_acquire), Capacity));
  return N;
}

uint64_t TraceRecorder::droppedCount() const {
  std::lock_guard<std::mutex> Lock(BuffersMu);
  uint64_t N = 0;
  for (const auto &B : Buffers) {
    uint64_t W = B->Written.load(std::memory_order_acquire);
    if (W > Capacity)
      N += W - Capacity;
  }
  return N;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> Lock(BuffersMu);
  for (auto &B : Buffers)
    B->Written.store(0, std::memory_order_release);
}

void TraceRecorder::forEachEvent(
    const std::function<void(const SpanEvent &, uint32_t)> &Fn) const {
  std::lock_guard<std::mutex> Lock(BuffersMu);
  for (size_t BI = 0; BI < Buffers.size(); ++BI) {
    const Buffer &B = *Buffers[BI];
    uint64_t W = B.Written.load(std::memory_order_acquire);
    uint64_t Retained = std::min<uint64_t>(W, Capacity);
    // Oldest retained first: with wraparound the slot after the write
    // head is the oldest survivor.
    uint64_t First = W - Retained;
    for (uint64_t I = 0; I < Retained; ++I)
      Fn(B.Events[(First + I) % Capacity], static_cast<uint32_t>(BI));
  }
}

namespace {

double usOf(uint64_t Ns) { return static_cast<double>(Ns) / 1000.0; }

void writeTs(std::ostream &OS, double Us) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.3f", Us);
  OS << Buf;
}

} // namespace

void TraceRecorder::writeChromeTrace(std::ostream &OS) const {
  OS << "{\"traceEvents\":[";
  bool FirstEvent = true;
  auto Sep = [&] {
    if (!FirstEvent)
      OS << ",";
    FirstEvent = false;
    OS << "\n";
  };
  {
    std::lock_guard<std::mutex> Lock(BuffersMu);
    for (size_t BI = 0; BI < Buffers.size(); ++BI) {
      Sep();
      std::string Name = Buffers[BI]->Name.empty()
                             ? "thread-" + std::to_string(BI)
                             : Buffers[BI]->Name;
      OS << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << BI
         << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << Name
         << "\"}}";
    }
  }
  forEachEvent([&](const SpanEvent &E, uint32_t Tid) {
    const char *Name = spanKindName(E.Kind);
    if (isShardScope(E.Kind)) {
      // Shard-scope spans render as complete events on the recording
      // thread's track (ticks on one shard thread never overlap).
      Sep();
      OS << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << Tid << ",\"name\":\""
         << Name << "\",\"cat\":\"shard\",\"ts\":";
      writeTs(OS, usOf(E.StartNs));
      OS << ",\"dur\":";
      writeTs(OS, usOf(E.DurNs));
      OS << ",\"args\":{\"shard\":" << E.Id << ",\"arg0\":" << E.Arg0
         << ",\"arg1\":" << E.Arg1 << "}}";
      return;
    }
    if (E.DurNs == 0 && (E.Kind == SpanKind::Submit ||
                         E.Kind == SpanKind::Resolve)) {
      // Lifecycle endpoints: async instants on the request's lane.
      Sep();
      OS << "{\"ph\":\"n\",\"pid\":1,\"tid\":" << Tid
         << ",\"id\":" << E.Id << ",\"cat\":\"request\",\"name\":\""
         << Name << "\",\"ts\":";
      writeTs(OS, usOf(E.StartNs));
      OS << ",\"args\":{\"req\":" << E.Id << ",\"arg0\":" << E.Arg0
         << ",\"arg1\":" << E.Arg1 << "}}";
      return;
    }
    // Request-scope spans: async begin/end pairs keyed by request id,
    // one swim lane per request regardless of which threads served it.
    Sep();
    OS << "{\"ph\":\"b\",\"pid\":1,\"tid\":" << Tid << ",\"id\":" << E.Id
       << ",\"cat\":\"request\",\"name\":\"" << Name << "\",\"ts\":";
    writeTs(OS, usOf(E.StartNs));
    OS << ",\"args\":{\"req\":" << E.Id << ",\"arg0\":" << E.Arg0
       << ",\"arg1\":" << E.Arg1 << "}}";
    Sep();
    OS << "{\"ph\":\"e\",\"pid\":1,\"tid\":" << Tid << ",\"id\":" << E.Id
       << ",\"cat\":\"request\",\"name\":\"" << Name << "\",\"ts\":";
    writeTs(OS, usOf(E.StartNs + E.DurNs));
    OS << "}";
  });
  OS << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":"
     << droppedCount() << "}}\n";
}

bool TraceRecorder::writeChromeTraceFile(const std::string &Path) const {
  if (Path == "-") {
    writeChromeTrace(std::cout);
    return static_cast<bool>(std::cout);
  }
  std::ofstream OS(Path);
  if (!OS)
    return false;
  writeChromeTrace(OS);
  return static_cast<bool>(OS);
}
