//===- Metrics.cpp - unified metrics registry (Prometheus exposition) ---------===//

#include "obs/Metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>

using namespace slade;
using namespace slade::obs;

double slade::obs::percentileOfSorted(const std::vector<double> &Sorted,
                                      double P) {
  if (Sorted.empty())
    return 0;
  size_t Rank = static_cast<size_t>(P * static_cast<double>(Sorted.size()));
  if (Rank >= Sorted.size())
    Rank = Sorted.size() - 1;
  return Sorted[Rank];
}

SampleStats slade::obs::sampleStats(std::vector<double> Samples) {
  SampleStats S;
  if (Samples.empty())
    return S;
  std::sort(Samples.begin(), Samples.end());
  S.P50 = percentileOfSorted(Samples, 0.50);
  S.P95 = percentileOfSorted(Samples, 0.95);
  S.P99 = percentileOfSorted(Samples, 0.99);
  S.Max = Samples.back();
  double Sum = 0;
  for (double V : Samples)
    Sum += V;
  S.Mean = Sum / static_cast<double>(Samples.size());
  S.Count = Samples.size();
  return S;
}

// -- Counter / FloatCounter / Gauge ------------------------------------------

Counter::Counter(std::string Name, std::string Help, size_t N)
    : Name(std::move(Name)), Help(std::move(Help)),
      NCells(std::max<size_t>(N, 1)),
      Cells(new detail::Cell<uint64_t>[NCells]) {}

uint64_t Counter::value() const {
  uint64_t Total = 0;
  for (size_t I = 0; I < NCells; ++I)
    Total += Cells[I].get();
  return Total;
}

FloatCounter::FloatCounter(std::string Name, std::string Help, size_t N)
    : Name(std::move(Name)), Help(std::move(Help)),
      NCells(std::max<size_t>(N, 1)),
      Cells(new detail::Cell<double>[NCells]) {}

double FloatCounter::value() const {
  double Total = 0;
  for (size_t I = 0; I < NCells; ++I)
    Total += Cells[I].get();
  return Total;
}

Gauge::Gauge(std::string Name, std::string Help)
    : Name(std::move(Name)), Help(std::move(Help)) {}

// -- Histogram ----------------------------------------------------------------

std::vector<double> Histogram::defaultLatencyBounds() {
  std::vector<double> B;
  for (double V = 0.001; V <= 64.0; V *= 2) // 1ms .. 64s
    B.push_back(V);
  return B;
}

Histogram::Histogram(std::string Name, std::string Help,
                     std::vector<double> Bnds, size_t N, size_t WinCap)
    : Name(std::move(Name)), Help(std::move(Help)), Bounds(std::move(Bnds)),
      NCells(std::max<size_t>(N, 1)), Stride(Bounds.size() + 1),
      BucketCells(new detail::Cell<uint64_t>[NCells * Stride]),
      SumCells(new detail::Cell<double>[NCells]),
      CountCells(new detail::Cell<uint64_t>[NCells]), WindowCap(WinCap) {
  assert(std::is_sorted(Bounds.begin(), Bounds.end()) &&
         "histogram bounds must ascend");
}

void Histogram::observe(int CellIdx, double V) {
  size_t C = static_cast<size_t>(CellIdx);
  // Non-cumulative per-bound slot; render merges cumulatively. Upper
  // bounds are inclusive (Prometheus `le`). The last slot is +Inf.
  size_t Slot = std::lower_bound(Bounds.begin(), Bounds.end(), V) -
                Bounds.begin();
  BucketCells[C * Stride + Slot].bump(1);
  SumCells[C].bump(V);
  CountCells[C].bump(1);
  if (WindowCap == 0)
    return;
  std::lock_guard<std::mutex> Lock(WindowMu);
  if (Window.size() < WindowCap) {
    Window.push_back(V);
  } else {
    Window[WindowCursor] = V;
    WindowCursor = (WindowCursor + 1) % WindowCap;
  }
}

uint64_t Histogram::count() const {
  uint64_t Total = 0;
  for (size_t I = 0; I < NCells; ++I)
    Total += CountCells[I].get();
  return Total;
}

double Histogram::sum() const {
  double Total = 0;
  for (size_t I = 0; I < NCells; ++I)
    Total += SumCells[I].get();
  return Total;
}

std::vector<uint64_t> Histogram::cumulativeCounts() const {
  std::vector<uint64_t> Cum(Stride, 0);
  for (size_t C = 0; C < NCells; ++C)
    for (size_t S = 0; S < Stride; ++S)
      Cum[S] += BucketCells[C * Stride + S].get();
  for (size_t S = 1; S < Stride; ++S)
    Cum[S] += Cum[S - 1];
  return Cum;
}

SampleStats Histogram::stats() const {
  std::vector<double> Samples;
  {
    std::lock_guard<std::mutex> Lock(WindowMu);
    Samples = Window;
  }
  return sampleStats(std::move(Samples));
}

std::vector<double> Histogram::windowSamples() const {
  std::lock_guard<std::mutex> Lock(WindowMu);
  return Window;
}

// -- Registry -----------------------------------------------------------------

struct Registry::Entry {
  enum Kind { K_Counter, K_FloatCounter, K_Gauge, K_Histogram } Kind;
  std::string Name;
  std::unique_ptr<Counter> C;
  std::unique_ptr<FloatCounter> F;
  std::unique_ptr<Gauge> G;
  std::unique_ptr<Histogram> H;
};

// Out of line: Entry is incomplete at the point the header declares the
// Entries vector.
Registry::Registry() = default;
Registry::~Registry() = default;

namespace {

/// Prometheus sample value: integers render exactly, doubles tersely.
std::string promValue(double V) {
  if (V == static_cast<double>(static_cast<long long>(V)) &&
      std::fabs(V) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
    return Buf;
  }
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.9g", V);
  return Buf;
}

void writeHeader(std::ostream &OS, const std::string &Name,
                 const std::string &Help, const char *Type) {
  OS << "# HELP " << Name << ' ' << Help << '\n';
  OS << "# TYPE " << Name << ' ' << Type << '\n';
}

class TextSink final : public MetricSink {
public:
  explicit TextSink(std::ostream &OS) : OS(OS) {}
  void counter(const std::string &Name, const std::string &Help,
               const std::string &Labels, double V) override {
    emit(Name, Help, "counter", Labels, V);
  }
  void gauge(const std::string &Name, const std::string &Help,
             const std::string &Labels, double V) override {
    emit(Name, Help, "gauge", Labels, V);
  }

private:
  void emit(const std::string &Name, const std::string &Help,
            const char *Type, const std::string &Labels, double V) {
    // One HELP/TYPE header per family even when labeled samples arrive
    // one call at a time (Prometheus forbids repeats).
    if (Announced.find(' ' + Name + ' ') == std::string::npos) {
      writeHeader(OS, Name, Help, Type);
      Announced += ' ' + Name + ' ';
    }
    OS << Name;
    if (!Labels.empty())
      OS << '{' << Labels << '}';
    OS << ' ' << promValue(V) << '\n';
  }
  std::ostream &OS;
  std::string Announced;
};

} // namespace

Counter &Registry::counter(const std::string &Name, const std::string &Help,
                           int Cells) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &E : Entries)
    if (E->Name == Name) {
      assert(E->Kind == Entry::K_Counter && "metric re-registered as a "
                                            "different type");
      return *E->C;
    }
  auto E = std::make_unique<Entry>();
  E->Kind = Entry::K_Counter;
  E->Name = Name;
  E->C.reset(new Counter(Name, Help, static_cast<size_t>(
                                         std::max(Cells, 1))));
  Counter &Ref = *E->C;
  Entries.push_back(std::move(E));
  return Ref;
}

FloatCounter &Registry::floatCounter(const std::string &Name,
                                     const std::string &Help, int Cells) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &E : Entries)
    if (E->Name == Name) {
      assert(E->Kind == Entry::K_FloatCounter && "metric re-registered as "
                                                 "a different type");
      return *E->F;
    }
  auto E = std::make_unique<Entry>();
  E->Kind = Entry::K_FloatCounter;
  E->Name = Name;
  E->F.reset(new FloatCounter(Name, Help,
                              static_cast<size_t>(std::max(Cells, 1))));
  FloatCounter &Ref = *E->F;
  Entries.push_back(std::move(E));
  return Ref;
}

Gauge &Registry::gauge(const std::string &Name, const std::string &Help) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &E : Entries)
    if (E->Name == Name) {
      assert(E->Kind == Entry::K_Gauge && "metric re-registered as a "
                                          "different type");
      return *E->G;
    }
  auto E = std::make_unique<Entry>();
  E->Kind = Entry::K_Gauge;
  E->Name = Name;
  E->G.reset(new Gauge(Name, Help));
  Gauge &Ref = *E->G;
  Entries.push_back(std::move(E));
  return Ref;
}

Histogram &Registry::histogram(const std::string &Name,
                               const std::string &Help,
                               std::vector<double> Bounds, int Cells,
                               size_t WindowCap) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &E : Entries)
    if (E->Name == Name) {
      assert(E->Kind == Entry::K_Histogram && "metric re-registered as a "
                                              "different type");
      return *E->H;
    }
  auto E = std::make_unique<Entry>();
  E->Kind = Entry::K_Histogram;
  E->Name = Name;
  E->H.reset(new Histogram(Name, Help, std::move(Bounds),
                           static_cast<size_t>(std::max(Cells, 1)),
                           WindowCap));
  Histogram &Ref = *E->H;
  Entries.push_back(std::move(E));
  return Ref;
}

uint64_t Registry::addCollector(std::function<void(MetricSink &)> Fn) {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t Token = NextToken++;
  Collectors.emplace_back(Token, std::move(Fn));
  return Token;
}

void Registry::removeCollector(uint64_t Token) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (size_t I = 0; I < Collectors.size(); ++I)
    if (Collectors[I].first == Token) {
      Collectors.erase(Collectors.begin() + static_cast<long>(I));
      return;
    }
}

void Registry::renderPrometheus(std::ostream &OS) const {
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &E : Entries) {
    switch (E->Kind) {
    case Entry::K_Counter:
      writeHeader(OS, E->Name, E->C->Help, "counter");
      if (E->C->cells() > 1)
        for (int I = 0; I < E->C->cells(); ++I)
          OS << E->Name << "{cell=\"" << I << "\"} "
             << promValue(static_cast<double>(E->C->cellValue(I))) << '\n';
      else
        OS << E->Name << ' '
           << promValue(static_cast<double>(E->C->value())) << '\n';
      break;
    case Entry::K_FloatCounter:
      writeHeader(OS, E->Name, E->F->Help, "counter");
      if (E->F->cells() > 1)
        for (int I = 0; I < E->F->cells(); ++I)
          OS << E->Name << "{cell=\"" << I << "\"} "
             << promValue(E->F->cellValue(I)) << '\n';
      else
        OS << E->Name << ' ' << promValue(E->F->value()) << '\n';
      break;
    case Entry::K_Gauge:
      writeHeader(OS, E->Name, E->G->Help, "gauge");
      OS << E->Name << ' ' << promValue(E->G->value()) << '\n';
      break;
    case Entry::K_Histogram: {
      writeHeader(OS, E->Name, E->H->Help, "histogram");
      std::vector<uint64_t> Cum = E->H->cumulativeCounts();
      const std::vector<double> &B = E->H->bounds();
      for (size_t I = 0; I < B.size(); ++I)
        OS << E->Name << "_bucket{le=\"" << promValue(B[I]) << "\"} "
           << Cum[I] << '\n';
      OS << E->Name << "_bucket{le=\"+Inf\"} " << Cum.back() << '\n';
      OS << E->Name << "_sum " << promValue(E->H->sum()) << '\n';
      OS << E->Name << "_count " << E->H->count() << '\n';
      break;
    }
    }
  }
  TextSink Sink(OS);
  for (const auto &C : Collectors)
    C.second(Sink);
}

bool Registry::renderPrometheusFile(const std::string &Path) const {
  if (Path == "-") {
    renderPrometheus(std::cout);
    return static_cast<bool>(std::cout);
  }
  std::ofstream OS(Path);
  if (!OS)
    return false;
  renderPrometheus(OS);
  return static_cast<bool>(OS);
}
