//===- IRGen.cpp - AST to IR lowering --------------------------------------===//

#include "ir/IRGen.h"

#include "support/StringUtils.h"
#include "support/Unreachable.h"

#include <algorithm>
#include <map>
#include <set>

using namespace slade;
using namespace slade::cc;
using namespace slade::ir;

namespace {

/// Where a value lives: behind an address, or directly in a vreg (promoted
/// variable at O3).
struct Place {
  bool IsReg = false;
  Value Addr;       ///< Address (VReg/Frame/Sym) when !IsReg.
  int Reg = -1;     ///< VReg id when IsReg.
  SC MemCls = SC::I32;
  bool Signed = true;
  const cc::Type *Ty = nullptr;
};

class IRGen {
public:
  IRGen(const FunctionDecl &F, const IRGenOptions &Options)
      : F(F), Options(Options) {}

  Expected<IRFunction> run();

private:
  const FunctionDecl &F;
  IRGenOptions Options;
  IRFunction Fn;
  int CurBB = -1;
  std::string Error;
  std::map<const VarDecl *, int> VarSlots;   ///< Memory-resident vars.
  std::map<const VarDecl *, int> VarRegs;    ///< Promoted vars (O3).
  std::set<const VarDecl *> AddrTaken;
  std::vector<std::pair<int, int>> LoopStack; ///< (breakBB, continueBB).

  void fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
  }
  bool failed() const { return !Error.empty(); }

  // -- emission helpers ----------------------------------------------------
  Instr &emit(Instr I) {
    BasicBlock &B = Fn.block(CurBB);
    assert((B.Instrs.empty() || !B.Instrs.back().isTerminator()) &&
           "emitting into a terminated block");
    B.Instrs.push_back(std::move(I));
    return B.Instrs.back();
  }
  bool terminated() const {
    const BasicBlock &B = const_cast<IRGen *>(this)->Fn.block(CurBB);
    return !B.Instrs.empty() && B.Instrs.back().isTerminator();
  }
  void setBlock(int BB) { CurBB = BB; }
  void br(int Target) {
    if (!terminated()) {
      Instr I;
      I.Op = Opcode::Br;
      I.Target0 = Target;
      emit(std::move(I));
    }
  }
  Value binop(Opcode Op, SC Cls, Value A, Value B) {
    Instr I;
    I.Op = Op;
    I.Cls = Cls;
    I.Dst = Value::vreg(Fn.newVReg(), Cls);
    I.Ops = {std::move(A), std::move(B)};
    return emit(std::move(I)).Dst;
  }
  Value unop(Opcode Op, SC Cls, Value A) {
    Instr I;
    I.Op = Op;
    I.Cls = Cls;
    I.Dst = Value::vreg(Fn.newVReg(), Cls);
    I.Ops = {std::move(A)};
    return emit(std::move(I)).Dst;
  }
  Value conv(Opcode Op, SC To, SC From, Value A) {
    Instr I;
    I.Op = Op;
    I.Cls = To;
    I.FromCls = From;
    I.Dst = Value::vreg(Fn.newVReg(), To);
    I.Ops = {std::move(A)};
    return emit(std::move(I)).Dst;
  }
  Value icmp(Pred P, SC Cls, Value A, Value B) {
    Instr I;
    I.Op = Opcode::ICmp;
    I.P = P;
    I.Cls = Cls;
    I.Dst = Value::vreg(Fn.newVReg(), SC::I32);
    I.Ops = {std::move(A), std::move(B)};
    return emit(std::move(I)).Dst;
  }
  Value fcmp(Pred P, SC Cls, Value A, Value B) {
    Instr I;
    I.Op = Opcode::FCmp;
    I.P = P;
    I.Cls = Cls;
    I.Dst = Value::vreg(Fn.newVReg(), SC::I32);
    I.Ops = {std::move(A), std::move(B)};
    return emit(std::move(I)).Dst;
  }
  Value load(Value Addr, SC MemCls, bool Signed) {
    SC DstCls = scIsFloat(MemCls)           ? MemCls
                : scBytes(MemCls) == 8      ? SC::I64
                                            : SC::I32;
    Instr I;
    I.Op = Opcode::Load;
    I.Cls = DstCls;
    I.FromCls = MemCls;
    I.SignExtend = Signed;
    I.Dst = Value::vreg(Fn.newVReg(), DstCls);
    I.Ops = {std::move(Addr)};
    return emit(std::move(I)).Dst;
  }
  void store(Value V, Value Addr, SC MemCls) {
    Instr I;
    I.Op = Opcode::Store;
    I.FromCls = MemCls;
    I.Cls = MemCls;
    I.Ops = {std::move(V), std::move(Addr)};
    emit(std::move(I));
  }
  Value movTo(int Reg, SC Cls, Value V) {
    Instr I;
    I.Op = Opcode::Mov;
    I.Cls = Cls;
    I.Dst = Value::vreg(Reg, Cls);
    I.Ops = {std::move(V)};
    return emit(std::move(I)).Dst;
  }
  Value addrOf(Value FrameOrSym) {
    Instr I;
    I.Op = Opcode::AddrOf;
    I.Cls = SC::I64;
    I.Dst = Value::vreg(Fn.newVReg(), SC::I64);
    I.Ops = {std::move(FrameOrSym)};
    return emit(std::move(I)).Dst;
  }

  // -- type helpers --------------------------------------------------------
  static SC typeSC(const cc::Type *T) {
    const cc::Type *C = T->canonical();
    if (const auto *I = dyn_cast<IntType>(C)) {
      switch (I->bits()) {
      case 8:
        return SC::I8;
      case 16:
        return SC::I16;
      case 32:
        return SC::I32;
      default:
        return SC::I64;
      }
    }
    if (const auto *Fl = dyn_cast<FloatType>(C))
      return Fl->bits() == 32 ? SC::F32 : SC::F64;
    return SC::I64; // Pointers, arrays (as addresses).
  }
  static bool typeSigned(const cc::Type *T) {
    const cc::Type *C = T->canonical();
    if (const auto *I = dyn_cast<IntType>(C))
      return I->isSigned();
    return true;
  }
  /// Register class values of this type are computed in (small ints
  /// promote to I32).
  static SC valueSC(const cc::Type *T) {
    SC C = typeSC(T);
    if (C == SC::I8 || C == SC::I16)
      return SC::I32;
    return C;
  }

  /// Converts \p V (an rvalue of type \p From) to type \p To's value class.
  Value coerce(Value V, const cc::Type *From, const cc::Type *To);

  // -- traversal -----------------------------------------------------------
  void collectAddrTaken(const Stmt *S);
  void collectAddrTakenExpr(const Expr *E);
  bool shouldPromote(const VarDecl *V) const;
  void declareLocal(const VarDecl *V);
  Place placeOf(const Expr &E);
  Value loadPlace(const Place &P);
  void storePlace(const Place &P, Value V);
  Value genExpr(const Expr &E);
  void genCond(const Expr &E, int TrueBB, int FalseBB);
  void genStmt(const Stmt &S);
  void genFor(const ForStmt &S);
  Value genCall(const CallExpr &C);

  // -- O3 loop transforms ---------------------------------------------------
  struct CountedLoop {
    const VarDecl *Index = nullptr;
    const Expr *Limit = nullptr; ///< VarRef or IntLit, loop-invariant.
    bool Valid = false;
  };
  CountedLoop matchCountedLoop(const ForStmt &S);
  bool bodyBlocksTransform(const Stmt *S, const VarDecl *Index,
                           const VarDecl *LimitVar, bool ForbidCalls);
  struct VecPattern {
    const VarDecl *DstArray = nullptr;
    const VarDecl *SrcArray = nullptr; ///< Null when Scalar broadcast.
    const Expr *Scalar = nullptr;      ///< Invariant scalar operand.
    cc::BinaryOp Op = cc::BinaryOp::Add;
    bool Valid = false;
  };
  VecPattern matchVecPattern(const ForStmt &S, const CountedLoop &CL);
};

} // namespace

//===----------------------------------------------------------------------===//
// Setup and variable placement
//===----------------------------------------------------------------------===//

void IRGen::collectAddrTakenExpr(const Expr *E) {
  if (!E)
    return;
  if (const auto *U = dyn_cast<UnaryExpr>(E)) {
    if (U->Op == UnaryOp::AddrOf)
      if (const auto *Ref = dyn_cast<VarRef>(U->Operand.get()))
        if (Ref->Decl)
          AddrTaken.insert(Ref->Decl);
    collectAddrTakenExpr(U->Operand.get());
    return;
  }
  if (const auto *B = dyn_cast<BinaryExpr>(E)) {
    collectAddrTakenExpr(B->LHS.get());
    collectAddrTakenExpr(B->RHS.get());
    return;
  }
  if (const auto *C = dyn_cast<ConditionalExpr>(E)) {
    collectAddrTakenExpr(C->Cond.get());
    collectAddrTakenExpr(C->Then.get());
    collectAddrTakenExpr(C->Else.get());
    return;
  }
  if (const auto *C = dyn_cast<CallExpr>(E)) {
    for (const ExprPtr &A : C->Args)
      collectAddrTakenExpr(A.get());
    return;
  }
  if (const auto *I = dyn_cast<IndexExpr>(E)) {
    collectAddrTakenExpr(I->Base.get());
    collectAddrTakenExpr(I->Index.get());
    return;
  }
  if (const auto *M = dyn_cast<MemberExpr>(E)) {
    collectAddrTakenExpr(M->Base.get());
    return;
  }
  if (const auto *C = dyn_cast<CastExpr>(E)) {
    collectAddrTakenExpr(C->Operand.get());
    return;
  }
}

void IRGen::collectAddrTaken(const Stmt *S) {
  if (!S)
    return;
  switch (S->getKind()) {
  case StmtKind::Compound:
    for (const StmtPtr &Child : cast<CompoundStmt>(S)->Body)
      collectAddrTaken(Child.get());
    return;
  case StmtKind::Expr:
    collectAddrTakenExpr(cast<ExprStmt>(S)->E.get());
    return;
  case StmtKind::Decl:
    for (const auto &V : cast<DeclStmt>(S)->Decls)
      collectAddrTakenExpr(V->Init.get());
    return;
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    collectAddrTakenExpr(I->Cond.get());
    collectAddrTaken(I->Then.get());
    collectAddrTaken(I->Else.get());
    return;
  }
  case StmtKind::While: {
    const auto *W = cast<WhileStmt>(S);
    collectAddrTakenExpr(W->Cond.get());
    collectAddrTaken(W->Body.get());
    return;
  }
  case StmtKind::DoWhile: {
    const auto *D = cast<DoWhileStmt>(S);
    collectAddrTaken(D->Body.get());
    collectAddrTakenExpr(D->Cond.get());
    return;
  }
  case StmtKind::For: {
    const auto *Fo = cast<ForStmt>(S);
    collectAddrTaken(Fo->Init.get());
    collectAddrTakenExpr(Fo->Cond.get());
    collectAddrTakenExpr(Fo->Step.get());
    collectAddrTaken(Fo->Body.get());
    return;
  }
  case StmtKind::Return:
    collectAddrTakenExpr(cast<ReturnStmt>(S)->Value.get());
    return;
  default:
    return;
  }
}

bool IRGen::shouldPromote(const VarDecl *V) const {
  if (!Options.Optimize || AddrTaken.count(V) || V->IsGlobal)
    return false;
  const cc::Type *C = V->Ty->canonical();
  if (C->isArray() || C->isStruct() || C->isFloating())
    return false;
  if (const auto *I = dyn_cast<IntType>(C))
    if (I->bits() < 32)
      return false;
  return true;
}

void IRGen::declareLocal(const VarDecl *V) {
  if (VarSlots.count(V) || VarRegs.count(V))
    return; // Re-entered loop body (unrolling) reuses storage.
  if (shouldPromote(V)) {
    VarRegs[V] = Fn.newVReg();
    return;
  }
  const cc::Type *C = V->Ty->canonical();
  VarSlots[V] = Fn.newSlot(std::max(1u, C->size()), std::max(1u, C->align()),
                           V->Name);
}

//===----------------------------------------------------------------------===//
// Places and coercions
//===----------------------------------------------------------------------===//

Value IRGen::coerce(Value V, const cc::Type *From, const cc::Type *To) {
  const cc::Type *CF = From->canonical(), *CT = To->canonical();
  SC FromC = valueSC(CF), ToC = valueSC(CT);
  if (CF->isFloating() && CT->isFloating()) {
    if (FromC == ToC)
      return V;
    return conv(FromC == SC::F32 ? Opcode::FPExt : Opcode::FPTrunc, ToC,
                FromC, V);
  }
  if (CF->isFloating() && !CT->isFloating()) {
    Value IntV = conv(Opcode::FPToSI, ToC == SC::I64 ? SC::I64 : SC::I32,
                      FromC, V);
    return IntV;
  }
  if (!CF->isFloating() && CT->isFloating()) {
    // Sign-extend the integer to its own width first if needed; SIToFP
    // converts from I32 or I64.
    return conv(Opcode::SIToFP, ToC, FromC == SC::I64 ? SC::I64 : SC::I32, V);
  }
  // Integer / pointer conversions.
  if (FromC == ToC)
    return V;
  if (FromC == SC::I32 && ToC == SC::I64)
    return conv(typeSigned(CF) ? Opcode::SExt : Opcode::ZExt, SC::I64,
                SC::I32, V);
  if (FromC == SC::I64 && ToC == SC::I32)
    return conv(Opcode::Trunc, SC::I32, SC::I64, V);
  return V;
}

Place IRGen::placeOf(const Expr &E) {
  Place P;
  P.Ty = E.Ty;
  P.MemCls = typeSC(E.Ty);
  P.Signed = typeSigned(E.Ty);
  switch (E.getKind()) {
  case ExprKind::VarRef: {
    const auto *Ref = cast<VarRef>(&E);
    const VarDecl *D = Ref->Decl;
    assert(D && "unresolved VarRef reached IRGen");
    // Use the declared type: Sema decays array-typed references to
    // pointers, but the storage is still the array.
    P.Ty = D->Ty;
    P.MemCls = typeSC(D->Ty);
    P.Signed = typeSigned(D->Ty);
    auto RIt = VarRegs.find(D);
    if (RIt != VarRegs.end()) {
      P.IsReg = true;
      P.Reg = RIt->second;
      return P;
    }
    if (D->IsGlobal) {
      P.Addr = Value::sym(D->Name);
      return P;
    }
    auto SIt = VarSlots.find(D);
    if (SIt == VarSlots.end()) {
      fail(formatString("variable '%s' used before declaration",
                        D->Name.c_str()));
      return P;
    }
    P.Addr = Value::frame(SIt->second);
    return P;
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    assert(U->Op == UnaryOp::Deref && "only deref unary is an lvalue");
    P.Addr = genExpr(*U->Operand);
    return P;
  }
  case ExprKind::Index: {
    const auto *I = cast<IndexExpr>(&E);
    Value Base = genExpr(*I->Base);
    Value Idx = genExpr(*I->Index);
    // Extend the index to 64 bits (the movslq idiom).
    if (valueSC(I->Index->Ty) == SC::I32)
      Idx = conv(typeSigned(I->Index->Ty) ? Opcode::SExt : Opcode::ZExt,
                 SC::I64, SC::I32, Idx);
    unsigned ElemSize = std::max(1u, E.Ty->canonical()->size());
    Value Scaled = ElemSize == 1
                       ? Idx
                       : binop(Opcode::Mul, SC::I64, Idx,
                               Value::immI(ElemSize, SC::I64));
    P.Addr = binop(Opcode::Add, SC::I64, Base, Scaled);
    return P;
  }
  case ExprKind::Member: {
    const auto *M = cast<MemberExpr>(&E);
    Value Base;
    if (M->IsArrow) {
      Base = genExpr(*M->Base);
    } else {
      Place BP = placeOf(*M->Base);
      assert(!BP.IsReg && "struct value in register");
      Base = BP.Addr.isVReg() ? BP.Addr : addrOf(BP.Addr);
    }
    P.Addr = M->Offset == 0 ? Base
                            : binop(Opcode::Add, SC::I64, Base,
                                    Value::immI(M->Offset, SC::I64));
    return P;
  }
  default:
    fail("expression is not assignable");
    return P;
  }
}

Value IRGen::loadPlace(const Place &P) {
  if (P.IsReg) {
    SC Cls = valueSC(P.Ty);
    return Value::vreg(P.Reg, Cls);
  }
  const cc::Type *C = P.Ty->canonical();
  if (C->isArray()) {
    // Arrays decay: the value is the address.
    return P.Addr.isVReg() ? P.Addr : addrOf(P.Addr);
  }
  return load(P.Addr.isVReg() ? P.Addr
              : P.Addr.K == Value::Frame || P.Addr.K == Value::Sym
                  ? P.Addr
                  : P.Addr,
              P.MemCls, P.Signed);
}

void IRGen::storePlace(const Place &P, Value V) {
  if (P.IsReg) {
    movTo(P.Reg, valueSC(P.Ty), V);
    return;
  }
  store(V, P.Addr, P.MemCls);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

static Opcode binOpcode(cc::BinaryOp Op, bool FloatOp, bool Signed,
                        bool *Unsupported) {
  *Unsupported = false;
  if (FloatOp) {
    switch (Op) {
    case cc::BinaryOp::Add:
      return Opcode::FAdd;
    case cc::BinaryOp::Sub:
      return Opcode::FSub;
    case cc::BinaryOp::Mul:
      return Opcode::FMul;
    case cc::BinaryOp::Div:
      return Opcode::FDiv;
    default:
      *Unsupported = true;
      return Opcode::FAdd;
    }
  }
  switch (Op) {
  case cc::BinaryOp::Add:
    return Opcode::Add;
  case cc::BinaryOp::Sub:
    return Opcode::Sub;
  case cc::BinaryOp::Mul:
    return Opcode::Mul;
  case cc::BinaryOp::Div:
    return Signed ? Opcode::SDiv : Opcode::UDiv;
  case cc::BinaryOp::Rem:
    return Signed ? Opcode::SRem : Opcode::URem;
  case cc::BinaryOp::Shl:
    return Opcode::Shl;
  case cc::BinaryOp::Shr:
    return Signed ? Opcode::AShr : Opcode::LShr;
  case cc::BinaryOp::BitAnd:
    return Opcode::And;
  case cc::BinaryOp::BitOr:
    return Opcode::Or;
  case cc::BinaryOp::BitXor:
    return Opcode::Xor;
  default:
    *Unsupported = true;
    return Opcode::Add;
  }
}

static Pred cmpPred(cc::BinaryOp Op, bool Signed) {
  switch (Op) {
  case cc::BinaryOp::Eq:
    return Pred::EQ;
  case cc::BinaryOp::Ne:
    return Pred::NE;
  case cc::BinaryOp::Lt:
    return Signed ? Pred::SLT : Pred::ULT;
  case cc::BinaryOp::Le:
    return Signed ? Pred::SLE : Pred::ULE;
  case cc::BinaryOp::Gt:
    return Signed ? Pred::SGT : Pred::UGT;
  case cc::BinaryOp::Ge:
    return Signed ? Pred::SGE : Pred::UGE;
  default:
    SLADE_UNREACHABLE("not a comparison");
  }
}

Value IRGen::genCall(const CallExpr &C) {
  Instr I;
  I.Op = Opcode::Call;
  I.Callee = C.Callee;
  for (size_t A = 0; A < C.Args.size(); ++A) {
    Value V = genExpr(*C.Args[A]);
    if (failed())
      return Value::immI(0, SC::I32);
    if (C.Decl && A < C.Decl->Params.size())
      V = coerce(V, C.Args[A]->Ty, C.Decl->Params[A]->Ty);
    I.Ops.push_back(V);
  }
  const cc::Type *RetTy = C.Ty;
  if (RetTy && !RetTy->canonical()->isVoid()) {
    I.Cls = valueSC(RetTy);
    I.Dst = Value::vreg(Fn.newVReg(), I.Cls);
  } else {
    I.Cls = SC::I32;
  }
  return emit(std::move(I)).Dst;
}

Value IRGen::genExpr(const Expr &E) {
  if (failed())
    return Value::immI(0, SC::I32);
  assert(E.Ty && "untyped expression reached IRGen (run Sema)");

  switch (E.getKind()) {
  case ExprKind::IntLit:
    return Value::immI(cast<IntLit>(&E)->Value, valueSC(E.Ty));
  case ExprKind::FloatLit:
    return Value::immF(cast<FloatLit>(&E)->Value, valueSC(E.Ty));
  case ExprKind::StringLit:
    fail("string literals are outside the compilable subset");
    return Value::immI(0, SC::I64);
  case ExprKind::VarRef:
  case ExprKind::Index:
  case ExprKind::Member: {
    Place P = placeOf(E);
    if (failed())
      return Value::immI(0, SC::I32);
    return loadPlace(P);
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    switch (U->Op) {
    case UnaryOp::Plus:
      return genExpr(*U->Operand);
    case UnaryOp::Neg: {
      Value V = genExpr(*U->Operand);
      SC Cls = valueSC(E.Ty);
      return unop(scIsFloat(Cls) ? Opcode::FNeg : Opcode::Neg, Cls, V);
    }
    case UnaryOp::BitNot: {
      Value V = genExpr(*U->Operand);
      return unop(Opcode::Not, valueSC(E.Ty), V);
    }
    case UnaryOp::LogNot: {
      Value V = genExpr(*U->Operand);
      SC Cls = valueSC(U->Operand->Ty);
      if (scIsFloat(Cls))
        return fcmp(Pred::EQ, Cls, V, Value::immF(0.0, Cls));
      return icmp(Pred::EQ, Cls, V, Value::immI(0, Cls));
    }
    case UnaryOp::Deref: {
      Place P = placeOf(E);
      if (failed())
        return Value::immI(0, SC::I32);
      return loadPlace(P);
    }
    case UnaryOp::AddrOf: {
      Place P = placeOf(*U->Operand);
      if (failed())
        return Value::immI(0, SC::I64);
      if (P.IsReg) {
        fail("address of a register variable");
        return Value::immI(0, SC::I64);
      }
      return P.Addr.isVReg() ? P.Addr : addrOf(P.Addr);
    }
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec: {
      bool IsInc = U->Op == UnaryOp::PreInc || U->Op == UnaryOp::PostInc;
      bool IsPost = U->Op == UnaryOp::PostInc || U->Op == UnaryOp::PostDec;
      Place P = placeOf(*U->Operand);
      if (failed())
        return Value::immI(0, SC::I32);
      Value Old = loadPlace(P);
      const cc::Type *C = U->Operand->Ty->canonical();
      Value New;
      if (C->isPointer()) {
        unsigned Step = std::max(
            1u, cast<PointerType>(C)->pointee()->canonical()->size());
        New = binop(IsInc ? Opcode::Add : Opcode::Sub, SC::I64, Old,
                    Value::immI(Step, SC::I64));
      } else if (C->isFloating()) {
        SC Cls = valueSC(C);
        New = binop(IsInc ? Opcode::FAdd : Opcode::FSub, Cls, Old,
                    Value::immF(1.0, Cls));
      } else {
        SC Cls = valueSC(C);
        New = binop(IsInc ? Opcode::Add : Opcode::Sub, Cls, Old,
                    Value::immI(1, Cls));
      }
      storePlace(P, New);
      return IsPost ? Old : New;
    }
    }
    SLADE_UNREACHABLE("covered unary op switch");
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    if (B->Op == cc::BinaryOp::Comma) {
      genExpr(*B->LHS);
      return genExpr(*B->RHS);
    }
    if (B->Op == cc::BinaryOp::LogAnd || B->Op == cc::BinaryOp::LogOr) {
      // Control-flow lowering into a 0/1 result register.
      int Result = Fn.newVReg();
      int TrueBB = Fn.newBlock(), FalseBB = Fn.newBlock(),
          JoinBB = Fn.newBlock();
      genCond(E, TrueBB, FalseBB);
      setBlock(TrueBB);
      movTo(Result, SC::I32, Value::immI(1, SC::I32));
      br(JoinBB);
      setBlock(FalseBB);
      movTo(Result, SC::I32, Value::immI(0, SC::I32));
      br(JoinBB);
      setBlock(JoinBB);
      return Value::vreg(Result, SC::I32);
    }
    if (cc::isAssignOp(B->Op)) {
      Place P = placeOf(*B->LHS);
      if (failed())
        return Value::immI(0, SC::I32);
      if (B->Op == cc::BinaryOp::Assign) {
        Value R = genExpr(*B->RHS);
        if (failed())
          return Value::immI(0, SC::I32);
        R = coerce(R, B->RHS->Ty, B->LHS->Ty);
        storePlace(P, R);
        return R;
      }
      // Compound assignment: load, op, store.
      cc::BinaryOp Inner = cc::strippedCompound(B->Op);
      Value Old = loadPlace(P);
      Value R = genExpr(*B->RHS);
      if (failed())
        return Value::immI(0, SC::I32);
      const cc::Type *LT = B->LHS->Ty->canonical();
      Value New;
      if (LT->isPointer()) {
        unsigned Step =
            std::max(1u, cast<PointerType>(LT)->pointee()->canonical()->size());
        Value Idx = coerce(R, B->RHS->Ty, B->RHS->Ty); // No-op; kept 1:1.
        if (valueSC(B->RHS->Ty) == SC::I32)
          Idx = conv(typeSigned(B->RHS->Ty) ? Opcode::SExt : Opcode::ZExt,
                     SC::I64, SC::I32, Idx);
        Value Scaled = Step == 1 ? Idx
                                 : binop(Opcode::Mul, SC::I64, Idx,
                                         Value::immI(Step, SC::I64));
        New = binop(Inner == cc::BinaryOp::Add ? Opcode::Add : Opcode::Sub,
                    SC::I64, Old, Scaled);
      } else {
        // Compute in the promoted common type then narrow back.
        SC Cls = valueSC(LT);
        Value RC = coerce(R, B->RHS->Ty, B->LHS->Ty);
        bool Unsupported = false;
        Opcode Op = binOpcode(Inner, scIsFloat(Cls), typeSigned(LT),
                              &Unsupported);
        if (Unsupported) {
          fail("unsupported compound assignment");
          return Value::immI(0, SC::I32);
        }
        New = binop(Op, Cls, Old, RC);
      }
      storePlace(P, New);
      return New;
    }
    if (cc::isComparisonOp(B->Op)) {
      Value L = genExpr(*B->LHS);
      Value R = genExpr(*B->RHS);
      if (failed())
        return Value::immI(0, SC::I32);
      const cc::Type *LT = B->LHS->Ty->canonical();
      const cc::Type *RT = B->RHS->Ty->canonical();
      if (LT->isFloating() || RT->isFloating()) {
        // Promote both to the wider float class.
        const cc::Type *Common =
            (typeSC(LT) == SC::F64 || typeSC(RT) == SC::F64)
                ? static_cast<const cc::Type *>(nullptr)
                : nullptr;
        (void)Common;
        SC Cls = (valueSC(LT) == SC::F64 || valueSC(RT) == SC::F64)
                     ? SC::F64
                     : SC::F32;
        if (!LT->isFloating())
          L = conv(Opcode::SIToFP, Cls, valueSC(LT), L);
        else if (valueSC(LT) != Cls)
          L = conv(Opcode::FPExt, Cls, valueSC(LT), L);
        if (!RT->isFloating())
          R = conv(Opcode::SIToFP, Cls, valueSC(RT), R);
        else if (valueSC(RT) != Cls)
          R = conv(Opcode::FPExt, Cls, valueSC(RT), R);
        return fcmp(cmpPred(B->Op, true), Cls, L, R);
      }
      bool PtrCmp = LT->isPointerLike() || RT->isPointerLike();
      SC Cls;
      bool Signed;
      if (PtrCmp) {
        Cls = SC::I64;
        Signed = false;
        if (valueSC(LT) == SC::I32)
          L = conv(typeSigned(LT) ? Opcode::SExt : Opcode::ZExt, SC::I64,
                   SC::I32, L);
        if (valueSC(RT) == SC::I32)
          R = conv(typeSigned(RT) ? Opcode::SExt : Opcode::ZExt, SC::I64,
                   SC::I32, R);
      } else {
        const auto *LI = cast<IntType>(LT->canonical());
        const auto *RI = cast<IntType>(RT->canonical());
        unsigned Bits = std::max({LI->bits(), RI->bits(), 32u});
        Cls = Bits == 64 ? SC::I64 : SC::I32;
        if (LI->isSigned() == RI->isSigned())
          Signed = LI->isSigned();
        else if (LI->bits() == RI->bits())
          Signed = false;
        else
          Signed = (LI->bits() > RI->bits()) ? LI->isSigned()
                                             : RI->isSigned();
        if (Cls == SC::I64) {
          if (valueSC(LT) == SC::I32)
            L = conv(LI->isSigned() ? Opcode::SExt : Opcode::ZExt, SC::I64,
                     SC::I32, L);
          if (valueSC(RT) == SC::I32)
            R = conv(RI->isSigned() ? Opcode::SExt : Opcode::ZExt, SC::I64,
                     SC::I32, R);
        }
      }
      return icmp(cmpPred(B->Op, Signed), Cls, L, R);
    }
    // Pointer arithmetic and plain arithmetic.
    const cc::Type *LT = B->LHS->Ty->canonical();
    const cc::Type *RT = B->RHS->Ty->canonical();
    if (LT->isPointerLike() && RT->isPointerLike() &&
        B->Op == cc::BinaryOp::Sub) {
      Value L = genExpr(*B->LHS);
      Value R = genExpr(*B->RHS);
      Value Diff = binop(Opcode::Sub, SC::I64, L, R);
      unsigned Elem = std::max(
          1u, cast<PointerType>(LT)->pointee()->canonical()->size());
      if (Elem == 1)
        return Diff;
      return binop(Opcode::SDiv, SC::I64, Diff, Value::immI(Elem, SC::I64));
    }
    if (LT->isPointerLike() || RT->isPointerLike()) {
      const Expr *PtrE = LT->isPointerLike() ? B->LHS.get() : B->RHS.get();
      const Expr *IntE = LT->isPointerLike() ? B->RHS.get() : B->LHS.get();
      Value P = genExpr(*PtrE);
      Value Idx = genExpr(*IntE);
      if (valueSC(IntE->Ty) == SC::I32)
        Idx = conv(typeSigned(IntE->Ty) ? Opcode::SExt : Opcode::ZExt,
                   SC::I64, SC::I32, Idx);
      const auto *PT = cast<PointerType>(
          PtrE->Ty->canonical()->isArray()
              ? E.Ty->canonical()
              : PtrE->Ty->canonical());
      unsigned Elem = std::max(1u, PT->pointee()->canonical()->size());
      Value Scaled = Elem == 1 ? Idx
                               : binop(Opcode::Mul, SC::I64, Idx,
                                       Value::immI(Elem, SC::I64));
      return binop(B->Op == cc::BinaryOp::Sub ? Opcode::Sub : Opcode::Add,
                   SC::I64, P, Scaled);
    }
    Value L = genExpr(*B->LHS);
    Value R = genExpr(*B->RHS);
    if (failed())
      return Value::immI(0, SC::I32);
    L = coerce(L, B->LHS->Ty, E.Ty);
    if (B->Op != cc::BinaryOp::Shl && B->Op != cc::BinaryOp::Shr)
      R = coerce(R, B->RHS->Ty, E.Ty);
    SC Cls = valueSC(E.Ty);
    bool Unsupported = false;
    Opcode Op = binOpcode(B->Op, scIsFloat(Cls), typeSigned(E.Ty),
                          &Unsupported);
    if (Unsupported) {
      fail("unsupported binary operator");
      return Value::immI(0, SC::I32);
    }
    return binop(Op, Cls, L, R);
  }
  case ExprKind::Conditional: {
    const auto *C = cast<ConditionalExpr>(&E);
    int Result = Fn.newVReg();
    SC Cls = valueSC(E.Ty);
    int ThenBB = Fn.newBlock(), ElseBB = Fn.newBlock(),
        JoinBB = Fn.newBlock();
    genCond(*C->Cond, ThenBB, ElseBB);
    setBlock(ThenBB);
    Value TV = genExpr(*C->Then);
    if (failed())
      return Value::immI(0, SC::I32);
    movTo(Result, Cls, coerce(TV, C->Then->Ty, E.Ty));
    br(JoinBB);
    setBlock(ElseBB);
    Value EV = genExpr(*C->Else);
    if (failed())
      return Value::immI(0, SC::I32);
    movTo(Result, Cls, coerce(EV, C->Else->Ty, E.Ty));
    br(JoinBB);
    setBlock(JoinBB);
    return Value::vreg(Result, Cls);
  }
  case ExprKind::Call:
    return genCall(*cast<CallExpr>(&E));
  case ExprKind::Cast: {
    const auto *C = cast<CastExpr>(&E);
    Value V = genExpr(*C->Operand);
    if (failed())
      return Value::immI(0, SC::I32);
    if (E.Ty->canonical()->isVoid())
      return Value::immI(0, SC::I32);
    return coerce(V, C->Operand->Ty, E.Ty);
  }
  }
  SLADE_UNREACHABLE("covered expression kind switch");
}

void IRGen::genCond(const Expr &E, int TrueBB, int FalseBB) {
  if (failed())
    return;
  if (const auto *B = dyn_cast<BinaryExpr>(&E)) {
    if (B->Op == cc::BinaryOp::LogAnd) {
      int MidBB = Fn.newBlock();
      genCond(*B->LHS, MidBB, FalseBB);
      setBlock(MidBB);
      genCond(*B->RHS, TrueBB, FalseBB);
      return;
    }
    if (B->Op == cc::BinaryOp::LogOr) {
      int MidBB = Fn.newBlock();
      genCond(*B->LHS, TrueBB, MidBB);
      setBlock(MidBB);
      genCond(*B->RHS, TrueBB, FalseBB);
      return;
    }
  }
  if (const auto *U = dyn_cast<UnaryExpr>(&E)) {
    if (U->Op == UnaryOp::LogNot) {
      genCond(*U->Operand, FalseBB, TrueBB);
      return;
    }
  }
  Value V = genExpr(E);
  if (failed())
    return;
  // Normalize to a vreg comparison against zero unless it is already a
  // comparison (the backend fuses cmp+branch).
  SC Cls = valueSC(E.Ty);
  Value Flag;
  if (scIsFloat(Cls))
    Flag = fcmp(Pred::NE, Cls, V, Value::immF(0.0, Cls));
  else if (!V.isVReg())
    Flag = icmp(Pred::NE, Cls, V, Value::immI(0, Cls));
  else {
    // If V was just produced by a compare, branch on it directly.
    const BasicBlock &B = Fn.block(CurBB);
    bool IsCmp = !B.Instrs.empty() &&
                 (B.Instrs.back().Op == Opcode::ICmp ||
                  B.Instrs.back().Op == Opcode::FCmp) &&
                 B.Instrs.back().Dst.isVReg() &&
                 B.Instrs.back().Dst.Reg == V.Reg;
    Flag = IsCmp ? V : icmp(Pred::NE, Cls, V, Value::immI(0, Cls));
  }
  Instr I;
  I.Op = Opcode::CondBr;
  I.Ops = {Flag};
  I.Target0 = TrueBB;
  I.Target1 = FalseBB;
  emit(std::move(I));
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void IRGen::genStmt(const Stmt &S) {
  if (failed() || terminated())
    return;
  switch (S.getKind()) {
  case StmtKind::Compound:
    for (const StmtPtr &Child : cast<CompoundStmt>(&S)->Body) {
      genStmt(*Child);
      if (terminated())
        return; // Unreachable trailing code is dropped.
    }
    return;
  case StmtKind::Expr:
    genExpr(*cast<ExprStmt>(&S)->E);
    return;
  case StmtKind::Decl:
    for (const auto &V : cast<DeclStmt>(&S)->Decls) {
      declareLocal(V.get());
      if (V->Init) {
        Value Init = genExpr(*V->Init);
        if (failed())
          return;
        Init = coerce(Init, V->Init->Ty, V->Ty);
        auto RIt = VarRegs.find(V.get());
        if (RIt != VarRegs.end())
          movTo(RIt->second, valueSC(V->Ty), Init);
        else
          store(Init, Value::frame(VarSlots[V.get()]),
                typeSC(V->Ty));
      }
    }
    return;
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(&S);
    int ThenBB = Fn.newBlock();
    int ElseBB = I->Else ? Fn.newBlock() : -1;
    int JoinBB = Fn.newBlock();
    genCond(*I->Cond, ThenBB, I->Else ? ElseBB : JoinBB);
    setBlock(ThenBB);
    genStmt(*I->Then);
    br(JoinBB);
    if (I->Else) {
      setBlock(ElseBB);
      genStmt(*I->Else);
      br(JoinBB);
    }
    setBlock(JoinBB);
    return;
  }
  case StmtKind::While: {
    const auto *W = cast<WhileStmt>(&S);
    int CondBB = Fn.newBlock(), BodyBB = Fn.newBlock(),
        ExitBB = Fn.newBlock();
    br(CondBB);
    setBlock(CondBB);
    genCond(*W->Cond, BodyBB, ExitBB);
    LoopStack.push_back({ExitBB, CondBB});
    setBlock(BodyBB);
    genStmt(*W->Body);
    br(CondBB);
    LoopStack.pop_back();
    setBlock(ExitBB);
    return;
  }
  case StmtKind::DoWhile: {
    const auto *D = cast<DoWhileStmt>(&S);
    int BodyBB = Fn.newBlock(), CondBB = Fn.newBlock(),
        ExitBB = Fn.newBlock();
    br(BodyBB);
    LoopStack.push_back({ExitBB, CondBB});
    setBlock(BodyBB);
    genStmt(*D->Body);
    br(CondBB);
    LoopStack.pop_back();
    setBlock(CondBB);
    genCond(*D->Cond, BodyBB, ExitBB);
    setBlock(ExitBB);
    return;
  }
  case StmtKind::For:
    genFor(*cast<ForStmt>(&S));
    return;
  case StmtKind::Return: {
    const auto *R = cast<ReturnStmt>(&S);
    Instr I;
    I.Op = Opcode::Ret;
    if (R->Value) {
      Value V = genExpr(*R->Value);
      if (failed())
        return;
      V = coerce(V, R->Value->Ty, F.RetTy);
      I.Cls = valueSC(F.RetTy);
      I.Ops = {V};
    }
    emit(std::move(I));
    return;
  }
  case StmtKind::Break:
    assert(!LoopStack.empty() && "break outside loop passed Sema");
    br(LoopStack.back().first);
    return;
  case StmtKind::Continue:
    assert(!LoopStack.empty() && "continue outside loop passed Sema");
    br(LoopStack.back().second);
    return;
  case StmtKind::Empty:
    return;
  }
  SLADE_UNREACHABLE("covered statement kind switch");
}

//===----------------------------------------------------------------------===//
// O3 loop transforms
//===----------------------------------------------------------------------===//

/// True if the subtree assigns to \p V (including ++/--).
static bool modifiesVar(const Expr *E, const VarDecl *V) {
  if (!E)
    return false;
  if (const auto *B = dyn_cast<BinaryExpr>(E)) {
    if (cc::isAssignOp(B->Op))
      if (const auto *Ref = dyn_cast<VarRef>(B->LHS.get()))
        if (Ref->Decl == V)
          return true;
    return modifiesVar(B->LHS.get(), V) || modifiesVar(B->RHS.get(), V);
  }
  if (const auto *U = dyn_cast<UnaryExpr>(E)) {
    if (U->Op == UnaryOp::PreInc || U->Op == UnaryOp::PreDec ||
        U->Op == UnaryOp::PostInc || U->Op == UnaryOp::PostDec ||
        U->Op == UnaryOp::AddrOf)
      if (const auto *Ref = dyn_cast<VarRef>(U->Operand.get()))
        if (Ref->Decl == V)
          return true;
    return modifiesVar(U->Operand.get(), V);
  }
  if (const auto *C = dyn_cast<ConditionalExpr>(E))
    return modifiesVar(C->Cond.get(), V) || modifiesVar(C->Then.get(), V) ||
           modifiesVar(C->Else.get(), V);
  if (const auto *C = dyn_cast<CallExpr>(E)) {
    for (const ExprPtr &A : C->Args)
      if (modifiesVar(A.get(), V))
        return true;
    return false;
  }
  if (const auto *I = dyn_cast<IndexExpr>(E))
    return modifiesVar(I->Base.get(), V) || modifiesVar(I->Index.get(), V);
  if (const auto *M = dyn_cast<MemberExpr>(E))
    return modifiesVar(M->Base.get(), V);
  if (const auto *C = dyn_cast<CastExpr>(E))
    return modifiesVar(C->Operand.get(), V);
  return false;
}

bool IRGen::bodyBlocksTransform(const Stmt *S, const VarDecl *Index,
                                const VarDecl *LimitVar, bool ForbidCalls) {
  if (!S)
    return false;
  switch (S->getKind()) {
  case StmtKind::Break:
  case StmtKind::Continue:
  case StmtKind::Return:
    return true;
  case StmtKind::Compound:
    for (const StmtPtr &Child : cast<CompoundStmt>(S)->Body)
      if (bodyBlocksTransform(Child.get(), Index, LimitVar, ForbidCalls))
        return true;
    return false;
  case StmtKind::Expr: {
    const Expr *E = cast<ExprStmt>(S)->E.get();
    if (modifiesVar(E, Index) || (LimitVar && modifiesVar(E, LimitVar)))
      return true;
    if (ForbidCalls) {
      // Conservatively reject any call in a vectorization candidate.
      struct HasCall {
        static bool check(const Expr *E) {
          if (!E)
            return false;
          if (isa<CallExpr>(E))
            return true;
          if (const auto *B = dyn_cast<BinaryExpr>(E))
            return check(B->LHS.get()) || check(B->RHS.get());
          if (const auto *U = dyn_cast<UnaryExpr>(E))
            return check(U->Operand.get());
          if (const auto *C = dyn_cast<ConditionalExpr>(E))
            return check(C->Cond.get()) || check(C->Then.get()) ||
                   check(C->Else.get());
          if (const auto *I = dyn_cast<IndexExpr>(E))
            return check(I->Base.get()) || check(I->Index.get());
          if (const auto *M = dyn_cast<MemberExpr>(E))
            return check(M->Base.get());
          if (const auto *C = dyn_cast<CastExpr>(E))
            return check(C->Operand.get());
          return false;
        }
      };
      if (HasCall::check(E))
        return true;
    }
    return false;
  }
  case StmtKind::Decl: {
    for (const auto &V : cast<DeclStmt>(S)->Decls)
      if (V->Init && (modifiesVar(V->Init.get(), Index) ||
                      (LimitVar && modifiesVar(V->Init.get(), LimitVar))))
        return true;
    return false;
  }
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    return modifiesVar(I->Cond.get(), Index) ||
           (LimitVar && modifiesVar(I->Cond.get(), LimitVar)) ||
           bodyBlocksTransform(I->Then.get(), Index, LimitVar, ForbidCalls) ||
           bodyBlocksTransform(I->Else.get(), Index, LimitVar, ForbidCalls);
  }
  // Nested loops disqualify unrolling (keeps generated code reasonable).
  case StmtKind::While:
  case StmtKind::DoWhile:
  case StmtKind::For:
    return true;
  case StmtKind::Empty:
    return false;
  }
  return true;
}

IRGen::CountedLoop IRGen::matchCountedLoop(const ForStmt &S) {
  CountedLoop CL;
  if (!S.Cond || !S.Step || !S.Init || !S.Body)
    return CL;
  // Init: `int i = 0;` or `i = 0;`.
  const VarDecl *Index = nullptr;
  if (const auto *DS = dyn_cast<DeclStmt>(S.Init.get())) {
    if (DS->Decls.size() != 1 || !DS->Decls[0]->Init)
      return CL;
    const auto *Zero = dyn_cast<IntLit>(DS->Decls[0]->Init.get());
    if (!Zero || Zero->Value != 0)
      return CL;
    Index = DS->Decls[0].get();
  } else if (const auto *ES = dyn_cast<ExprStmt>(S.Init.get())) {
    const auto *B = dyn_cast<BinaryExpr>(ES->E.get());
    if (!B || B->Op != cc::BinaryOp::Assign)
      return CL;
    const auto *Ref = dyn_cast<VarRef>(B->LHS.get());
    const auto *Zero = dyn_cast<IntLit>(B->RHS.get());
    if (!Ref || !Zero || Zero->Value != 0)
      return CL;
    Index = Ref->Decl;
  } else {
    return CL;
  }
  if (!Index)
    return CL;
  const auto *IT = dyn_cast<IntType>(Index->Ty->canonical());
  if (!IT || IT->bits() != 32 || !IT->isSigned())
    return CL;
  // Cond: `i < limit` with limit a VarRef or IntLit.
  const auto *Cond = dyn_cast<BinaryExpr>(S.Cond.get());
  if (!Cond || Cond->Op != cc::BinaryOp::Lt)
    return CL;
  const auto *CondVar = dyn_cast<VarRef>(Cond->LHS.get());
  if (!CondVar || CondVar->Decl != Index)
    return CL;
  const Expr *Limit = Cond->RHS.get();
  const VarDecl *LimitVar = nullptr;
  if (const auto *LR = dyn_cast<VarRef>(Limit)) {
    LimitVar = LR->Decl;
    if (!LR->Ty->canonical()->isInteger())
      return CL;
  } else if (!isa<IntLit>(Limit)) {
    return CL;
  }
  // Step: `i++`, `++i`, or `i += 1`.
  bool StepOk = false;
  if (const auto *U = dyn_cast<UnaryExpr>(S.Step.get())) {
    if ((U->Op == UnaryOp::PostInc || U->Op == UnaryOp::PreInc))
      if (const auto *Ref = dyn_cast<VarRef>(U->Operand.get()))
        StepOk = Ref->Decl == Index;
  } else if (const auto *B = dyn_cast<BinaryExpr>(S.Step.get())) {
    if (B->Op == cc::BinaryOp::AddAssign)
      if (const auto *Ref = dyn_cast<VarRef>(B->LHS.get()))
        if (const auto *One = dyn_cast<IntLit>(B->RHS.get()))
          StepOk = Ref->Decl == Index && One->Value == 1;
  }
  if (!StepOk)
    return CL;
  if (bodyBlocksTransform(S.Body.get(), Index, LimitVar,
                          /*ForbidCalls=*/false))
    return CL;
  CL.Index = Index;
  CL.Limit = Limit;
  CL.Valid = true;
  return CL;
}

IRGen::VecPattern IRGen::matchVecPattern(const ForStmt &S,
                                         const CountedLoop &CL) {
  VecPattern VP;
  // Body must be a single expression statement (possibly in a compound).
  const Stmt *Body = S.Body.get();
  while (const auto *C = dyn_cast<CompoundStmt>(Body)) {
    if (C->Body.size() != 1)
      return VP;
    Body = C->Body[0].get();
  }
  const auto *ES = dyn_cast<ExprStmt>(Body);
  if (!ES)
    return VP;
  const auto *B = dyn_cast<BinaryExpr>(ES->E.get());
  if (!B)
    return VP;

  auto isElem = [&](const Expr *E, const VarDecl **Array) {
    const auto *I = dyn_cast<IndexExpr>(E);
    if (!I)
      return false;
    const auto *BaseRef = dyn_cast<VarRef>(I->Base.get());
    const auto *IdxRef = dyn_cast<VarRef>(I->Index.get());
    if (!BaseRef || !IdxRef || IdxRef->Decl != CL.Index)
      return false;
    const auto *ET = dyn_cast<IntType>(E->Ty->canonical());
    if (!ET || ET->bits() != 32)
      return false;
    *Array = BaseRef->Decl;
    return true;
  };
  auto isInvariantScalar = [&](const Expr *E) {
    if (isa<IntLit>(E))
      return true;
    const auto *Ref = dyn_cast<VarRef>(E);
    if (!Ref || Ref->Decl == CL.Index)
      return false;
    const auto *ET = dyn_cast<IntType>(E->Ty->canonical());
    return ET && ET->bits() == 32;
  };
  auto vecOp = [](cc::BinaryOp Op) {
    return Op == cc::BinaryOp::Add || Op == cc::BinaryOp::Sub ||
           Op == cc::BinaryOp::Mul;
  };

  // Form 1: A[i] op= scalar   /  A[i] op= A[i2? no] — compound assignment.
  if (B->Op == cc::BinaryOp::AddAssign || B->Op == cc::BinaryOp::SubAssign ||
      B->Op == cc::BinaryOp::MulAssign) {
    const VarDecl *Dst = nullptr;
    if (!isElem(B->LHS.get(), &Dst))
      return VP;
    if (isInvariantScalar(B->RHS.get())) {
      VP.DstArray = Dst;
      VP.Scalar = B->RHS.get();
      VP.Op = cc::strippedCompound(B->Op);
      VP.Valid = true;
      return VP;
    }
    const VarDecl *Src = nullptr;
    if (isElem(B->RHS.get(), &Src) && Src == Dst) {
      VP.DstArray = Dst;
      VP.SrcArray = Src;
      VP.Op = cc::strippedCompound(B->Op);
      VP.Valid = true;
      return VP;
    }
    return VP;
  }
  // Form 2: A[i] = A[i] op scalar.
  if (B->Op == cc::BinaryOp::Assign) {
    const VarDecl *Dst = nullptr;
    if (!isElem(B->LHS.get(), &Dst))
      return VP;
    const auto *RHS = dyn_cast<BinaryExpr>(B->RHS.get());
    if (!RHS || !vecOp(RHS->Op))
      return VP;
    const VarDecl *Src = nullptr;
    if (isElem(RHS->LHS.get(), &Src) && Src == Dst &&
        isInvariantScalar(RHS->RHS.get())) {
      VP.DstArray = Dst;
      VP.SrcArray = Src;
      VP.Scalar = RHS->RHS.get();
      VP.Op = RHS->Op;
      VP.Valid = true;
      return VP;
    }
    return VP;
  }
  return VP;
}

void IRGen::genFor(const ForStmt &S) {
  // O3: try vectorize, then unroll.
  if (Options.Optimize && S.Body) {
    CountedLoop CL = matchCountedLoop(S);
    if (CL.Valid) {
      const VarDecl *LimitVar = nullptr;
      if (const auto *LR = dyn_cast<VarRef>(CL.Limit))
        LimitVar = LR->Decl;

      VecPattern VP =
          Options.EnableVectorize &&
                  !bodyBlocksTransform(S.Body.get(), CL.Index, LimitVar,
                                       /*ForbidCalls=*/true)
              ? matchVecPattern(S, CL)
              : VecPattern();

      // Shared skeleton: init; main loop on chunks of 4; scalar remainder.
      genStmt(*S.Init);
      if (failed())
        return;

      // Index variable access helpers.
      auto idxValue = [&]() -> Value {
        auto RIt = VarRegs.find(CL.Index);
        if (RIt != VarRegs.end())
          return Value::vreg(RIt->second, SC::I32);
        return load(Value::frame(VarSlots[CL.Index]), SC::I32, true);
      };
      auto idxStore = [&](Value V) {
        auto RIt = VarRegs.find(CL.Index);
        if (RIt != VarRegs.end())
          movTo(RIt->second, SC::I32, V);
        else
          store(V, Value::frame(VarSlots[CL.Index]), SC::I32);
      };
      auto limitValue = [&]() -> Value {
        if (const auto *IL = dyn_cast<IntLit>(CL.Limit))
          return Value::immI(IL->Value, SC::I32);
        const auto *LR = cast<VarRef>(CL.Limit);
        auto RIt = VarRegs.find(LR->Decl);
        if (RIt != VarRegs.end())
          return Value::vreg(RIt->second, SC::I32);
        if (LR->Decl->IsGlobal)
          return load(Value::sym(LR->Decl->Name), SC::I32, true);
        return load(Value::frame(VarSlots[LR->Decl]), SC::I32,
                    typeSigned(LR->Decl->Ty));
      };

      int MainBB = Fn.newBlock(), MainBody = Fn.newBlock(),
          RemBB = Fn.newBlock(), RemBody = Fn.newBlock(),
          ExitBB = Fn.newBlock();

      // Hoist the broadcast for vectorized loops.
      Value BroadcastV = Value::none();
      if (VP.Valid && VP.Scalar) {
        Value Sc = genExpr(*VP.Scalar);
        Instr BI;
        BI.Op = Opcode::VBroadcast;
        BI.Cls = SC::V128;
        BI.Dst = Value::vreg(Fn.newVReg(), SC::V128);
        BI.Ops = {Sc};
        BroadcastV = emit(std::move(BI)).Dst;
      }

      br(MainBB);
      // Main loop header: while (i + 4 <= limit).
      setBlock(MainBB);
      {
        Value I4 = binop(Opcode::Add, SC::I32, idxValue(),
                         Value::immI(4, SC::I32));
        Value Flag = icmp(Pred::SLE, SC::I32, I4, limitValue());
        Instr Br;
        Br.Op = Opcode::CondBr;
        Br.Ops = {Flag};
        Br.Target0 = MainBody;
        Br.Target1 = RemBB;
        emit(std::move(Br));
      }
      setBlock(MainBody);
      if (VP.Valid) {
        // &Dst[i]
        auto arrayAddr = [&](const VarDecl *Arr) -> Value {
          Value Base;
          auto RIt = VarRegs.find(Arr);
          if (RIt != VarRegs.end())
            Base = Value::vreg(RIt->second, SC::I64);
          else if (Arr->IsGlobal)
            Base = load(Value::sym(Arr->Name), SC::I64, false);
          else
            Base = load(Value::frame(VarSlots[Arr]), SC::I64, false);
          Value Idx64 = conv(Opcode::SExt, SC::I64, SC::I32, idxValue());
          Value Off = binop(Opcode::Mul, SC::I64, Idx64,
                            Value::immI(4, SC::I64));
          return binop(Opcode::Add, SC::I64, Base, Off);
        };
        Value DstAddr = arrayAddr(VP.DstArray);
        Instr VL;
        VL.Op = Opcode::VLoad;
        VL.Cls = SC::V128;
        VL.Dst = Value::vreg(Fn.newVReg(), SC::V128);
        VL.Ops = {DstAddr};
        Value A = emit(std::move(VL)).Dst;
        Value B = BroadcastV;
        if (VP.SrcArray && !VP.Scalar) {
          Value SrcAddr = arrayAddr(VP.SrcArray);
          Instr VL2;
          VL2.Op = Opcode::VLoad;
          VL2.Cls = SC::V128;
          VL2.Dst = Value::vreg(Fn.newVReg(), SC::V128);
          VL2.Ops = {SrcAddr};
          B = emit(std::move(VL2)).Dst;
        }
        Opcode VOp = VP.Op == cc::BinaryOp::Add   ? Opcode::VAdd
                     : VP.Op == cc::BinaryOp::Sub ? Opcode::VSub
                                                  : Opcode::VMul;
        Instr VO;
        VO.Op = VOp;
        VO.Cls = SC::V128;
        VO.Dst = Value::vreg(Fn.newVReg(), SC::V128);
        VO.Ops = {A, B};
        Value R = emit(std::move(VO)).Dst;
        Instr VS;
        VS.Op = Opcode::VStore;
        VS.Cls = SC::V128;
        VS.Ops = {R, DstAddr};
        emit(std::move(VS));
        idxStore(binop(Opcode::Add, SC::I32, idxValue(),
                       Value::immI(4, SC::I32)));
      } else {
        // Unrolled: body; i++; x4.
        for (int K = 0; K < 4; ++K) {
          genStmt(*S.Body);
          if (failed())
            return;
          idxStore(binop(Opcode::Add, SC::I32, idxValue(),
                         Value::immI(1, SC::I32)));
        }
      }
      br(MainBB);

      // Remainder loop: while (i < limit) body; i++.
      setBlock(RemBB);
      {
        Value Flag = icmp(Pred::SLT, SC::I32, idxValue(), limitValue());
        Instr Br;
        Br.Op = Opcode::CondBr;
        Br.Ops = {Flag};
        Br.Target0 = RemBody;
        Br.Target1 = ExitBB;
        emit(std::move(Br));
      }
      setBlock(RemBody);
      genStmt(*S.Body);
      if (failed())
        return;
      idxStore(binop(Opcode::Add, SC::I32, idxValue(),
                     Value::immI(1, SC::I32)));
      br(RemBB);
      setBlock(ExitBB);
      return;
    }
  }

  // Generic lowering.
  int CondBB = Fn.newBlock(), BodyBB = Fn.newBlock(), StepBB = Fn.newBlock(),
      ExitBB = Fn.newBlock();
  if (S.Init)
    genStmt(*S.Init);
  if (failed())
    return;
  br(CondBB);
  setBlock(CondBB);
  if (S.Cond)
    genCond(*S.Cond, BodyBB, ExitBB);
  else
    br(BodyBB);
  LoopStack.push_back({ExitBB, StepBB});
  setBlock(BodyBB);
  if (S.Body)
    genStmt(*S.Body);
  br(StepBB);
  LoopStack.pop_back();
  setBlock(StepBB);
  if (S.Step)
    genExpr(*S.Step);
  br(CondBB);
  setBlock(ExitBB);
}

//===----------------------------------------------------------------------===//
// Entry
//===----------------------------------------------------------------------===//

Expected<IRFunction> IRGen::run() {
  Fn.Name = F.Name;
  const cc::Type *RetC = F.RetTy->canonical();
  Fn.RetVoid = RetC->isVoid();
  if (!Fn.RetVoid)
    Fn.RetCls = valueSC(F.RetTy);

  if (F.Body)
    collectAddrTaken(F.Body.get());

  int Entry = Fn.newBlock();
  setBlock(Entry);

  // Parameters: the backend prologue homes each ABI register either into a
  // frame slot (GCC -O0's parameter homing) or a promoted vreg (O3).
  for (const auto &P : F.Params) {
    declareLocal(P.get());
    ParamInfo PI;
    PI.Cls = valueSC(P->Ty);
    auto RIt = VarRegs.find(P.get());
    if (RIt != VarRegs.end()) {
      PI.HomeVReg = RIt->second;
    } else {
      PI.HomeSlot = VarSlots[P.get()];
      PI.Cls = typeSC(P->Ty); // Store at the variable's memory width.
    }
    Fn.Params.push_back(PI);
  }

  if (F.Body)
    genStmt(*F.Body);
  if (failed())
    return Expected<IRFunction>::error(Error);

  // Fallthrough return.
  if (!terminated()) {
    Instr I;
    I.Op = Opcode::Ret;
    if (!Fn.RetVoid) {
      I.Cls = Fn.RetCls;
      I.Ops = {scIsFloat(Fn.RetCls) ? Value::immF(0.0, Fn.RetCls)
                                    : Value::immI(0, Fn.RetCls)};
    }
    emit(std::move(I));
  }
  return std::move(Fn);
}

Expected<IRFunction> slade::ir::generateIR(const FunctionDecl &F,
                                           const IRGenOptions &Options) {
  IRGen G(F, Options);
  return G.run();
}
