//===- IR.cpp - three-address intermediate representation ------------------===//

#include "ir/IR.h"

#include "support/StringUtils.h"
#include "support/Unreachable.h"

using namespace slade;
using namespace slade::ir;

Pred slade::ir::invertPred(Pred P) {
  switch (P) {
  case Pred::EQ:
    return Pred::NE;
  case Pred::NE:
    return Pred::EQ;
  case Pred::SLT:
    return Pred::SGE;
  case Pred::SLE:
    return Pred::SGT;
  case Pred::SGT:
    return Pred::SLE;
  case Pred::SGE:
    return Pred::SLT;
  case Pred::ULT:
    return Pred::UGE;
  case Pred::ULE:
    return Pred::UGT;
  case Pred::UGT:
    return Pred::ULE;
  case Pred::UGE:
    return Pred::ULT;
  }
  SLADE_UNREACHABLE("covered switch");
}

Pred slade::ir::swapPred(Pred P) {
  switch (P) {
  case Pred::EQ:
  case Pred::NE:
    return P;
  case Pred::SLT:
    return Pred::SGT;
  case Pred::SLE:
    return Pred::SGE;
  case Pred::SGT:
    return Pred::SLT;
  case Pred::SGE:
    return Pred::SLE;
  case Pred::ULT:
    return Pred::UGT;
  case Pred::ULE:
    return Pred::UGE;
  case Pred::UGT:
    return Pred::ULT;
  case Pred::UGE:
    return Pred::ULE;
  }
  SLADE_UNREACHABLE("covered switch");
}

const char *slade::ir::predName(Pred P) {
  switch (P) {
  case Pred::EQ:
    return "eq";
  case Pred::NE:
    return "ne";
  case Pred::SLT:
    return "slt";
  case Pred::SLE:
    return "sle";
  case Pred::SGT:
    return "sgt";
  case Pred::SGE:
    return "sge";
  case Pred::ULT:
    return "ult";
  case Pred::ULE:
    return "ule";
  case Pred::UGT:
    return "ugt";
  case Pred::UGE:
    return "uge";
  }
  SLADE_UNREACHABLE("covered switch");
}

static const char *scName(SC C) {
  switch (C) {
  case SC::I8:
    return "i8";
  case SC::I16:
    return "i16";
  case SC::I32:
    return "i32";
  case SC::I64:
    return "i64";
  case SC::F32:
    return "f32";
  case SC::F64:
    return "f64";
  case SC::V128:
    return "v128";
  }
  SLADE_UNREACHABLE("covered switch");
}

static std::string valueStr(const Value &V) {
  switch (V.K) {
  case Value::None:
    return "<none>";
  case Value::VReg:
    return formatString("%%%d:%s", V.Reg, scName(V.Cls));
  case Value::ImmI:
    return formatString("%lld", static_cast<long long>(V.Imm));
  case Value::ImmF:
    return formatString("%g", V.FImm);
  case Value::Frame:
    return formatString("slot%d", V.Slot);
  case Value::Sym:
    return "@" + V.Name;
  }
  SLADE_UNREACHABLE("covered switch");
}

static const char *opName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::SDiv:
    return "sdiv";
  case Opcode::UDiv:
    return "udiv";
  case Opcode::SRem:
    return "srem";
  case Opcode::URem:
    return "urem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::AShr:
    return "ashr";
  case Opcode::LShr:
    return "lshr";
  case Opcode::Neg:
    return "neg";
  case Opcode::Not:
    return "not";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FSub:
    return "fsub";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::FNeg:
    return "fneg";
  case Opcode::Mov:
    return "mov";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::AddrOf:
    return "addrof";
  case Opcode::SExt:
    return "sext";
  case Opcode::ZExt:
    return "zext";
  case Opcode::Trunc:
    return "trunc";
  case Opcode::SIToFP:
    return "sitofp";
  case Opcode::FPToSI:
    return "fptosi";
  case Opcode::FPExt:
    return "fpext";
  case Opcode::FPTrunc:
    return "fptrunc";
  case Opcode::ICmp:
    return "icmp";
  case Opcode::FCmp:
    return "fcmp";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "condbr";
  case Opcode::Ret:
    return "ret";
  case Opcode::Call:
    return "call";
  case Opcode::VBroadcast:
    return "vbroadcast";
  case Opcode::VLoad:
    return "vload";
  case Opcode::VStore:
    return "vstore";
  case Opcode::VAdd:
    return "vadd";
  case Opcode::VSub:
    return "vsub";
  case Opcode::VMul:
    return "vmul";
  }
  SLADE_UNREACHABLE("covered switch");
}

std::string IRFunction::dump() const {
  std::string Out = formatString("func %s (%zu params, %zu slots)\n",
                                 Name.c_str(), Params.size(), Slots.size());
  for (const BasicBlock &B : Blocks) {
    Out += formatString("bb%d:\n", B.Id);
    for (const Instr &I : B.Instrs) {
      Out += "  ";
      if (!I.Dst.isNone())
        Out += valueStr(I.Dst) + " = ";
      Out += opName(I.Op);
      if (I.Op == Opcode::ICmp || I.Op == Opcode::FCmp) {
        Out += ".";
        Out += predName(I.P);
      }
      Out += formatString(".%s", scName(I.Cls));
      if (I.Op == Opcode::Call)
        Out += " @" + I.Callee;
      for (const Value &V : I.Ops)
        Out += " " + valueStr(V);
      if (I.Target0 >= 0)
        Out += formatString(" ->bb%d", I.Target0);
      if (I.Target1 >= 0)
        Out += formatString(" ->bb%d", I.Target1);
      Out += '\n';
    }
  }
  return Out;
}
