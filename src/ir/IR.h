//===- IR.h - three-address intermediate representation ---------*- C++ -*-===//
///
/// \file
/// Non-SSA three-address IR with explicit basic blocks. Lowered from the
/// mini-C AST and consumed by the x86-64/AArch64 backends. Integer virtual
/// registers conceptually hold 64-bit values; an operation of class C
/// defines the low C bits with the extension behaviour of the target ISAs
/// (32-bit writes zero-extend, like both x86-64 and AArch64).
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_IR_IR_H
#define SLADE_IR_IR_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace slade {
namespace ir {

/// Machine-level scalar class of a value or memory access.
enum class SC { I8, I16, I32, I64, F32, F64, V128 };

inline unsigned scBytes(SC C) {
  switch (C) {
  case SC::I8:
    return 1;
  case SC::I16:
    return 2;
  case SC::I32:
  case SC::F32:
    return 4;
  case SC::I64:
  case SC::F64:
    return 8;
  case SC::V128:
    return 16;
  }
  return 8;
}

inline bool scIsFloat(SC C) { return C == SC::F32 || C == SC::F64; }

/// An operand: virtual register, immediate, frame-slot address, or symbol
/// address.
struct Value {
  enum Kind { None, VReg, ImmI, ImmF, Frame, Sym } K = None;
  SC Cls = SC::I64;
  int Reg = -1;       ///< VReg id.
  int64_t Imm = 0;    ///< ImmI payload.
  double FImm = 0;    ///< ImmF payload.
  int Slot = -1;      ///< Frame slot id.
  std::string Name;   ///< Sym payload.

  static Value none() { return Value(); }
  static Value vreg(int Reg, SC Cls) {
    Value V;
    V.K = VReg;
    V.Reg = Reg;
    V.Cls = Cls;
    return V;
  }
  static Value immI(int64_t X, SC Cls = SC::I64) {
    Value V;
    V.K = ImmI;
    V.Imm = X;
    V.Cls = Cls;
    return V;
  }
  static Value immF(double X, SC Cls) {
    Value V;
    V.K = ImmF;
    V.FImm = X;
    V.Cls = Cls;
    return V;
  }
  static Value frame(int Slot) {
    Value V;
    V.K = Frame;
    V.Slot = Slot;
    V.Cls = SC::I64;
    return V;
  }
  static Value sym(std::string Name) {
    Value V;
    V.K = Sym;
    V.Name = std::move(Name);
    V.Cls = SC::I64;
    return V;
  }

  bool isNone() const { return K == None; }
  bool isVReg() const { return K == VReg; }
  bool isImmI() const { return K == ImmI; }
};

enum class Opcode {
  // Integer arithmetic (class I32 or I64).
  Add,
  Sub,
  Mul,
  SDiv,
  UDiv,
  SRem,
  URem,
  And,
  Or,
  Xor,
  Shl,
  AShr,
  LShr,
  Neg,
  Not,
  // Floating arithmetic (class F32 or F64).
  FAdd,
  FSub,
  FMul,
  FDiv,
  FNeg,
  // Data movement.
  Mov,          ///< dst = op0 (any class).
  Load,         ///< dst = *(op0) with MemCls + SignExtend.
  Store,        ///< *(op1) = op0 with MemCls.
  AddrOf,       ///< dst = address of frame slot / symbol (op0).
  // Conversions.
  SExt,         ///< dst(Cls) = sign-extend op0 (FromCls).
  ZExt,         ///< dst(Cls) = zero-extend op0 (FromCls).
  Trunc,        ///< dst(Cls) = truncate op0 (FromCls).
  SIToFP,       ///< dst(Cls=F*) = (float)op0 (FromCls=I*).
  FPToSI,       ///< dst(Cls=I*) = (int)op0 (FromCls=F*).
  FPExt,        ///< F32 -> F64.
  FPTrunc,      ///< F64 -> F32.
  // Comparisons produce 0/1 in an I32 vreg.
  ICmp,
  FCmp,
  // Control flow.
  Br,           ///< Target0.
  CondBr,       ///< op0 != 0 -> Target0 else Target1.
  Ret,          ///< Optional op0.
  Call,         ///< dst (optional) = Callee(ops...).
  // 128-bit integer SIMD (4 x i32 lanes), used by the O3 vectorizer.
  VBroadcast,   ///< dst.v4i32 = {op0, op0, op0, op0}.
  VLoad,        ///< dst.v4i32 = *(op0).
  VStore,       ///< *(op1) = op0.
  VAdd,
  VSub,
  VMul,
};

enum class Pred {
  EQ,
  NE,
  SLT,
  SLE,
  SGT,
  SGE,
  ULT,
  ULE,
  UGT,
  UGE,
};

/// Negates a predicate (for branch inversion).
Pred invertPred(Pred P);
/// Swaps operand order (a < b  ->  b > a).
Pred swapPred(Pred P);
const char *predName(Pred P);

struct Instr {
  Opcode Op;
  SC Cls = SC::I64;      ///< Class the operation works at.
  SC FromCls = SC::I64;  ///< Source class for conversions / MemCls for
                         ///< Load/Store.
  bool SignExtend = false; ///< Load extension behaviour.
  Value Dst;
  std::vector<Value> Ops;
  Pred P = Pred::EQ;
  std::string Callee;
  int Target0 = -1; ///< Branch targets (block ids).
  int Target1 = -1;

  bool isTerminator() const {
    return Op == Opcode::Br || Op == Opcode::CondBr || Op == Opcode::Ret;
  }
};

struct BasicBlock {
  int Id = -1;
  std::vector<Instr> Instrs;
};

struct FrameSlot {
  unsigned Size = 0;
  unsigned Align = 1;
  std::string Name; ///< Debug label (variable name).
};

/// Where an incoming parameter is homed by the backend prologue: either a
/// frame slot (O0 / address-taken) or a virtual register (O3 promoted).
struct ParamInfo {
  SC Cls = SC::I32;
  int HomeSlot = -1;
  int HomeVReg = -1;
};

/// One function's worth of IR.
class IRFunction {
public:
  std::string Name;
  bool RetVoid = true;
  SC RetCls = SC::I32;
  /// Parameters in ABI order.
  std::vector<ParamInfo> Params;
  std::vector<FrameSlot> Slots;
  std::vector<BasicBlock> Blocks;
  int NextVReg = 0;

  int newVReg() { return NextVReg++; }
  int newSlot(unsigned Size, unsigned Align, std::string Label) {
    Slots.push_back({Size, Align, std::move(Label)});
    return static_cast<int>(Slots.size()) - 1;
  }
  int newBlock() {
    BasicBlock B;
    B.Id = static_cast<int>(Blocks.size());
    Blocks.push_back(std::move(B));
    return B.Id;
  }
  BasicBlock &block(int Id) {
    assert(Id >= 0 && Id < static_cast<int>(Blocks.size()) && "bad block id");
    return Blocks[static_cast<size_t>(Id)];
  }

  /// Debug dump (textual IR), used in tests and --debug tools.
  std::string dump() const;
};

} // namespace ir
} // namespace slade

#endif // SLADE_IR_IR_H
