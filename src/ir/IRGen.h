//===- IRGen.h - AST to IR lowering -----------------------------*- C++ -*-===//
///
/// \file
/// Lowers a type-checked mini-C function to IR. Two profiles mirror the
/// paper's compiler settings (§II, §VII):
///  - O0: every local lives in a frame slot and every expression value is
///    spilled, reproducing GCC -O0's load/op/store texture;
///  - O3: int/pointer locals are promoted to virtual registers, simple
///    counted loops are unrolled 4x, and elementwise int32 loops are
///    vectorized to 128-bit SIMD ops (the obfuscation that drives the
///    paper's motivating example).
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_IR_IRGEN_H
#define SLADE_IR_IRGEN_H

#include "cc/AST.h"
#include "ir/IR.h"
#include "support/Error.h"

namespace slade {
namespace ir {

struct IRGenOptions {
  bool Optimize = false;       ///< O3 profile when true, O0 otherwise.
  bool EnableUnroll = true;    ///< O3 only: unroll counted loops 4x.
  bool EnableVectorize = true; ///< O3 only: vectorize elementwise loops.
};

/// Lowers \p F. Fails with a diagnostic for constructs outside the
/// compilable subset (which makes "compiles" a meaningful evaluation
/// feature, Table I).
Expected<IRFunction> generateIR(const cc::FunctionDecl &F,
                                const IRGenOptions &Options);

} // namespace ir
} // namespace slade

#endif // SLADE_IR_IRGEN_H
