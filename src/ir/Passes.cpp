//===- Passes.cpp - IR optimization passes ----------------------------------===//

#include "ir/Passes.h"

#include <cstdint>
#include <map>
#include <set>
#include <vector>

using namespace slade;
using namespace slade::ir;

/// Truncates \p X to the width of \p Cls (sign-agnostic bit pattern).
static uint64_t truncToCls(uint64_t X, SC Cls) {
  switch (Cls) {
  case SC::I8:
    return X & 0xffULL;
  case SC::I16:
    return X & 0xffffULL;
  case SC::I32:
    return X & 0xffffffffULL;
  default:
    return X;
  }
}

static int64_t signExtend(uint64_t X, SC Cls) {
  switch (Cls) {
  case SC::I8:
    return static_cast<int8_t>(X);
  case SC::I16:
    return static_cast<int16_t>(X);
  case SC::I32:
    return static_cast<int32_t>(X);
  default:
    return static_cast<int64_t>(X);
  }
}

static bool evalBinary(Opcode Op, SC Cls, int64_t A, int64_t B,
                       int64_t *Out) {
  uint64_t UA = truncToCls(static_cast<uint64_t>(A), Cls);
  uint64_t UB = truncToCls(static_cast<uint64_t>(B), Cls);
  int64_t SA = signExtend(UA, Cls), SB = signExtend(UB, Cls);
  unsigned Bits = scBytes(Cls) * 8;
  uint64_t R = 0;
  switch (Op) {
  case Opcode::Add:
    R = UA + UB;
    break;
  case Opcode::Sub:
    R = UA - UB;
    break;
  case Opcode::Mul:
    R = UA * UB;
    break;
  case Opcode::SDiv:
    if (SB == 0 || (SA == INT64_MIN && SB == -1))
      return false;
    R = static_cast<uint64_t>(SA / SB);
    break;
  case Opcode::UDiv:
    if (UB == 0)
      return false;
    R = UA / UB;
    break;
  case Opcode::SRem:
    if (SB == 0 || (SA == INT64_MIN && SB == -1))
      return false;
    R = static_cast<uint64_t>(SA % SB);
    break;
  case Opcode::URem:
    if (UB == 0)
      return false;
    R = UA % UB;
    break;
  case Opcode::And:
    R = UA & UB;
    break;
  case Opcode::Or:
    R = UA | UB;
    break;
  case Opcode::Xor:
    R = UA ^ UB;
    break;
  case Opcode::Shl:
    R = UA << (UB & (Bits - 1));
    break;
  case Opcode::AShr:
    R = static_cast<uint64_t>(SA >> (UB & (Bits - 1)));
    break;
  case Opcode::LShr:
    R = UA >> (UB & (Bits - 1));
    break;
  default:
    return false;
  }
  *Out = signExtend(truncToCls(R, Cls), Cls);
  return true;
}

static bool evalICmp(Pred P, SC Cls, int64_t A, int64_t B, int64_t *Out) {
  uint64_t UA = truncToCls(static_cast<uint64_t>(A), Cls);
  uint64_t UB = truncToCls(static_cast<uint64_t>(B), Cls);
  int64_t SA = signExtend(UA, Cls), SB = signExtend(UB, Cls);
  bool R = false;
  switch (P) {
  case Pred::EQ:
    R = UA == UB;
    break;
  case Pred::NE:
    R = UA != UB;
    break;
  case Pred::SLT:
    R = SA < SB;
    break;
  case Pred::SLE:
    R = SA <= SB;
    break;
  case Pred::SGT:
    R = SA > SB;
    break;
  case Pred::SGE:
    R = SA >= SB;
    break;
  case Pred::ULT:
    R = UA < UB;
    break;
  case Pred::ULE:
    R = UA <= UB;
    break;
  case Pred::UGT:
    R = UA > UB;
    break;
  case Pred::UGE:
    R = UA >= UB;
    break;
  }
  *Out = R ? 1 : 0;
  return true;
}

bool slade::ir::foldConstants(IRFunction &F) {
  bool Changed = false;
  for (BasicBlock &B : F.Blocks) {
    for (Instr &I : B.Instrs) {
      auto allImm = [&] {
        for (const Value &V : I.Ops)
          if (!V.isImmI())
            return false;
        return !I.Ops.empty();
      };
      int64_t R = 0;
      switch (I.Op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::SDiv:
      case Opcode::UDiv:
      case Opcode::SRem:
      case Opcode::URem:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::AShr:
      case Opcode::LShr:
        if (allImm() &&
            evalBinary(I.Op, I.Cls, I.Ops[0].Imm, I.Ops[1].Imm, &R)) {
          I.Op = Opcode::Mov;
          I.Ops = {Value::immI(R, I.Cls)};
          Changed = true;
        }
        break;
      case Opcode::Neg:
        if (allImm()) {
          I.Op = Opcode::Mov;
          I.Ops = {Value::immI(signExtend(
                       truncToCls(static_cast<uint64_t>(-I.Ops[0].Imm),
                                  I.Cls),
                       I.Cls),
                   I.Cls)};
          Changed = true;
        }
        break;
      case Opcode::Not:
        if (allImm()) {
          I.Op = Opcode::Mov;
          I.Ops = {Value::immI(signExtend(
                       truncToCls(static_cast<uint64_t>(~I.Ops[0].Imm),
                                  I.Cls),
                       I.Cls),
                   I.Cls)};
          Changed = true;
        }
        break;
      case Opcode::ICmp:
        if (allImm() && evalICmp(I.P, I.Cls, I.Ops[0].Imm, I.Ops[1].Imm, &R)) {
          I.Op = Opcode::Mov;
          I.Cls = SC::I32;
          I.Ops = {Value::immI(R, SC::I32)};
          Changed = true;
        }
        break;
      case Opcode::SExt:
        if (allImm()) {
          I.Op = Opcode::Mov;
          I.Ops = {Value::immI(signExtend(static_cast<uint64_t>(I.Ops[0].Imm),
                                          I.FromCls),
                               I.Cls)};
          Changed = true;
        }
        break;
      case Opcode::ZExt:
        if (allImm()) {
          I.Op = Opcode::Mov;
          I.Ops = {Value::immI(static_cast<int64_t>(truncToCls(
                                   static_cast<uint64_t>(I.Ops[0].Imm),
                                   I.FromCls)),
                               I.Cls)};
          Changed = true;
        }
        break;
      case Opcode::Trunc:
        if (allImm()) {
          I.Op = Opcode::Mov;
          I.Ops = {Value::immI(signExtend(static_cast<uint64_t>(I.Ops[0].Imm),
                                          I.Cls),
                               I.Cls)};
          Changed = true;
        }
        break;
      default:
        break;
      }
      // Algebraic identities: x+0, x-0, x*1, x*0.
      if ((I.Op == Opcode::Add || I.Op == Opcode::Sub) &&
          I.Ops.size() == 2 && I.Ops[1].isImmI() && I.Ops[1].Imm == 0) {
        I.Op = Opcode::Mov;
        I.Ops = {I.Ops[0]};
        Changed = true;
      } else if (I.Op == Opcode::Mul && I.Ops.size() == 2 &&
                 I.Ops[1].isImmI() && I.Ops[1].Imm == 1) {
        I.Op = Opcode::Mov;
        I.Ops = {I.Ops[0]};
        Changed = true;
      } else if (I.Op == Opcode::Mul && I.Ops.size() == 2 &&
                 I.Ops[1].isImmI() && I.Ops[1].Imm == 0) {
        I.Op = Opcode::Mov;
        I.Ops = {Value::immI(0, I.Cls)};
        Changed = true;
      }
    }
  }
  return Changed;
}

bool slade::ir::propagateCopies(IRFunction &F) {
  // A vreg defined more than once anywhere is a mutable variable; only
  // propagate copies of single-definition vregs (safe without SSA).
  std::map<int, int> DefCount;
  for (const ParamInfo &P : F.Params)
    if (P.HomeVReg >= 0)
      ++DefCount[P.HomeVReg]; // Prologue definition.
  for (BasicBlock &B : F.Blocks)
    for (Instr &I : B.Instrs)
      if (I.Dst.isVReg())
        ++DefCount[I.Dst.Reg];

  bool Changed = false;
  for (BasicBlock &B : F.Blocks) {
    std::map<int, Value> Copies;
    for (Instr &I : B.Instrs) {
      for (Value &V : I.Ops) {
        if (!V.isVReg())
          continue;
        auto It = Copies.find(V.Reg);
        if (It != Copies.end()) {
          SC Keep = V.Cls;
          V = It->second;
          if (V.isVReg())
            V.Cls = Keep;
          Changed = true;
        }
      }
      if (I.Dst.isVReg()) {
        int D = I.Dst.Reg;
        Copies.erase(D);
        for (auto It = Copies.begin(); It != Copies.end();) {
          if (It->second.isVReg() && It->second.Reg == D)
            It = Copies.erase(It);
          else
            ++It;
        }
        if (I.Op == Opcode::Mov && DefCount[D] == 1 &&
            (I.Ops[0].isImmI() ||
             (I.Ops[0].isVReg() && DefCount[I.Ops[0].Reg] == 1)))
          Copies[D] = I.Ops[0];
      }
    }
  }
  return Changed;
}

bool slade::ir::simplifyControlFlow(IRFunction &F) {
  bool Changed = false;
  for (BasicBlock &B : F.Blocks) {
    if (B.Instrs.empty())
      continue;
    Instr &T = B.Instrs.back();
    if (T.Op == Opcode::CondBr && T.Ops[0].isImmI()) {
      int Target = T.Ops[0].Imm != 0 ? T.Target0 : T.Target1;
      T.Op = Opcode::Br;
      T.Ops.clear();
      T.Target0 = Target;
      T.Target1 = -1;
      Changed = true;
    }
  }
  // Reachability from the entry block.
  std::set<int> Reach;
  std::vector<int> Work = {0};
  while (!Work.empty()) {
    int Id = Work.back();
    Work.pop_back();
    if (!Reach.insert(Id).second)
      continue;
    const BasicBlock &B = F.block(Id);
    if (B.Instrs.empty())
      continue;
    const Instr &T = B.Instrs.back();
    if (T.Target0 >= 0)
      Work.push_back(T.Target0);
    if (T.Target1 >= 0)
      Work.push_back(T.Target1);
  }
  for (BasicBlock &B : F.Blocks) {
    if (!Reach.count(B.Id) && !B.Instrs.empty()) {
      B.Instrs.clear();
      Changed = true;
    }
  }
  return Changed;
}

bool slade::ir::eliminateDeadCode(IRFunction &F) {
  std::set<int> Used;
  for (BasicBlock &B : F.Blocks)
    for (Instr &I : B.Instrs)
      for (const Value &V : I.Ops)
        if (V.isVReg())
          Used.insert(V.Reg);
  for (const ParamInfo &P : F.Params)
    if (P.HomeVReg >= 0)
      Used.insert(P.HomeVReg); // Defined by the prologue.

  auto hasSideEffects = [](const Instr &I) {
    switch (I.Op) {
    case Opcode::Store:
    case Opcode::VStore:
    case Opcode::Call:
    case Opcode::Br:
    case Opcode::CondBr:
    case Opcode::Ret:
      return true;
    case Opcode::SDiv:
    case Opcode::UDiv:
    case Opcode::SRem:
    case Opcode::URem:
      return true; // May trap; keep.
    default:
      return false;
    }
  };

  bool Changed = false;
  for (BasicBlock &B : F.Blocks) {
    std::vector<Instr> Kept;
    Kept.reserve(B.Instrs.size());
    for (Instr &I : B.Instrs) {
      bool Dead = I.Dst.isVReg() && !Used.count(I.Dst.Reg) &&
                  !hasSideEffects(I);
      if (Dead)
        Changed = true;
      else
        Kept.push_back(std::move(I));
    }
    B.Instrs = std::move(Kept);
  }
  return Changed;
}

void slade::ir::optimize(IRFunction &F) {
  for (int Round = 0; Round < 8; ++Round) {
    bool Changed = false;
    Changed |= foldConstants(F);
    Changed |= propagateCopies(F);
    Changed |= simplifyControlFlow(F);
    Changed |= eliminateDeadCode(F);
    if (!Changed)
      break;
  }
}
