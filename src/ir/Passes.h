//===- Passes.h - IR optimization passes ------------------------*- C++ -*-===//
///
/// \file
/// The O3 clean-up pipeline run after lowering: block-local constant
/// folding, block-local copy propagation, branch simplification,
/// unreachable-block elimination, and dead-code elimination. Together with
/// IRGen's register promotion, unrolling, and vectorization these produce
/// the "optimized assembly" flavour the paper decompiles (§VII).
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_IR_PASSES_H
#define SLADE_IR_PASSES_H

#include "ir/IR.h"

namespace slade {
namespace ir {

/// Folds instructions whose operands are all immediates.
bool foldConstants(IRFunction &F);

/// Propagates Mov copies within each block.
bool propagateCopies(IRFunction &F);

/// Turns CondBr-on-constant into Br and empties unreachable blocks.
bool simplifyControlFlow(IRFunction &F);

/// Removes side-effect-free instructions whose results are never used.
bool eliminateDeadCode(IRFunction &F);

/// Runs the full pipeline to a fixed point (bounded).
void optimize(IRFunction &F);

} // namespace ir
} // namespace slade

#endif // SLADE_IR_PASSES_H
