//===- ArmBackend.cpp - AArch64 assembly backend ----------------------------===//

#include "codegen/Backend.h"

#include "support/StringUtils.h"
#include "support/Unreachable.h"

#include <map>
#include <set>
#include <vector>

using namespace slade;
using namespace slade::ir;
using namespace slade::codegen;

namespace {

/// Register numbers: scratch ring x9..x15, variables x19..x23.
const int ScratchRing[] = {9, 10, 11, 12, 13, 14, 15};
constexpr int NumScratch = 7;
const int VarRegs[] = {19, 20, 21, 22, 23};
constexpr int NumVarRegs = 5;

std::string regName(int N, SC Cls) {
  return formatString("%c%d", scBytes(Cls) == 8 ? 'x' : 'w', N);
}

const char *ccFor(Pred P) {
  switch (P) {
  case Pred::EQ:
    return "eq";
  case Pred::NE:
    return "ne";
  case Pred::SLT:
    return "lt";
  case Pred::SLE:
    return "le";
  case Pred::SGT:
    return "gt";
  case Pred::SGE:
    return "ge";
  case Pred::ULT:
    return "cc";
  case Pred::ULE:
    return "ls";
  case Pred::UGT:
    return "hi";
  case Pred::UGE:
    return "cs";
  }
  SLADE_UNREACHABLE("covered switch");
}

class ArmEmitter {
public:
  ArmEmitter(const IRFunction &F, bool Optimize) : F(F), Optimize(Optimize) {}

  Expected<std::string> run();

private:
  const IRFunction &F;
  bool Optimize;
  std::string Out;
  std::string Error;

  std::map<int, int> SlotOff;  ///< user slot id -> sp offset.
  std::map<int, int> SpillOff; ///< vreg -> sp offset.
  std::map<int, int> VarRegOf; ///< varlike vreg -> VarRegs index.
  std::map<int, int> VecRegOf; ///< cross-block V128 vreg -> v21..v23.
  std::map<int, int> CalleeSaveOff;
  int FrameSize = 0;
  int SpillBase = 0;
  int NextSpill = 0;
  std::set<int> VarLike;
  std::set<int> CrossBlock;
  std::set<int> BranchTargets;

  struct ScratchState {
    int VReg = -1;
    bool Dirty = false;
    bool Pinned = false;
    uint64_t Stamp = 0;
  };
  ScratchState Scratch[NumScratch];
  uint64_t Clock = 1;
  std::map<int, int> VecTemp;
  int NextVecTemp = 18; ///< v18..v20 block-local temporaries.

  void fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
  }
  void ins(const std::string &Text) { Out += "\t" + Text + "\n"; }
  void label(const std::string &L) { Out += L + ":\n"; }
  std::string blockLabel(int Id) const {
    return formatString(".L%d", Id + 2);
  }

  int spillOffset(int VReg) {
    auto It = SpillOff.find(VReg);
    if (It != SpillOff.end())
      return It->second;
    int Off = SpillBase + NextSpill;
    NextSpill += 8;
    SpillOff[VReg] = Off;
    return Off;
  }

  // -- scratch management ---------------------------------------------------
  int findScratchOf(int VReg) {
    for (int I = 0; I < NumScratch; ++I)
      if (Scratch[I].VReg == VReg)
        return I;
    return -1;
  }
  void flushScratch(int I) {
    if (Scratch[I].VReg >= 0 && Scratch[I].Dirty)
      ins(formatString("str\tx%d, [sp, %d]", ScratchRing[I],
                       spillOffset(Scratch[I].VReg)));
    Scratch[I].VReg = -1;
    Scratch[I].Dirty = false;
    Scratch[I].Pinned = false;
  }
  void flushAllScratch() {
    for (int I = 0; I < NumScratch; ++I)
      flushScratch(I);
  }
  void unpinAll() {
    for (int I = 0; I < NumScratch; ++I)
      Scratch[I].Pinned = false;
  }
  int allocScratch() {
    for (int I = 0; I < NumScratch; ++I)
      if (Scratch[I].VReg < 0 && !Scratch[I].Pinned)
        return I;
    int Best = -1;
    for (int I = 0; I < NumScratch; ++I)
      if (!Scratch[I].Pinned &&
          (Best < 0 || Scratch[I].Stamp < Scratch[Best].Stamp))
        Best = I;
    assert(Best >= 0 && "all scratch registers pinned");
    flushScratch(Best);
    return Best;
  }
  void bind(int I, int VReg, bool Dirty) {
    Scratch[I].VReg = VReg;
    Scratch[I].Dirty = Dirty;
    Scratch[I].Pinned = true;
    Scratch[I].Stamp = ++Clock;
  }

  void materializeImm(int RegNo, int64_t Imm, SC Cls) {
    bool Is64 = scBytes(Cls) == 8;
    std::string R = regName(RegNo, Is64 ? SC::I64 : SC::I32);
    if (Imm >= 0 && Imm < 65536) {
      ins(formatString("mov\t%s, %lld", R.c_str(),
                       static_cast<long long>(Imm)));
      return;
    }
    if (Imm < 0 && Imm >= -65536) {
      ins(formatString("mov\t%s, %lld", R.c_str(),
                       static_cast<long long>(Imm)));
      return;
    }
    uint64_t U = static_cast<uint64_t>(Imm);
    if (!Is64)
      U &= 0xffffffffULL;
    ins(formatString("movz\t%s, %llu", R.c_str(),
                     static_cast<unsigned long long>(U & 0xffff)));
    for (int Shift = 16; Shift < (Is64 ? 64 : 32); Shift += 16) {
      uint64_t Part = (U >> Shift) & 0xffff;
      if (Part)
        ins(formatString("movk\t%s, %llu, lsl %d", R.c_str(),
                         static_cast<unsigned long long>(Part), Shift));
    }
  }

  /// Register currently holding \p VReg (pinned).
  int fetchVReg(int VReg) {
    auto VIt = VarRegOf.find(VReg);
    if (VIt != VarRegOf.end())
      return VarRegs[VIt->second];
    int I = findScratchOf(VReg);
    if (I >= 0) {
      Scratch[I].Stamp = ++Clock;
      Scratch[I].Pinned = true;
      return ScratchRing[I];
    }
    I = allocScratch();
    ins(formatString("ldr\tx%d, [sp, %d]", ScratchRing[I],
                     spillOffset(VReg)));
    bind(I, VReg, false);
    return ScratchRing[I];
  }
  int fetchValue(const Value &V, SC Cls) {
    if (V.isVReg())
      return fetchVReg(V.Reg);
    assert(V.K == Value::ImmI && "fetchValue on non-scalar");
    int I = allocScratch();
    materializeImm(ScratchRing[I], V.Imm, Cls);
    bind(I, -1, false);
    return ScratchRing[I];
  }
  int destReg(int VReg) {
    auto VIt = VarRegOf.find(VReg);
    if (VIt != VarRegOf.end())
      return VarRegs[VIt->second];
    int I = findScratchOf(VReg);
    if (I < 0) {
      I = allocScratch();
      bind(I, VReg, true);
    } else {
      Scratch[I].Dirty = true;
      Scratch[I].Pinned = true;
      Scratch[I].Stamp = ++Clock;
    }
    return ScratchRing[I];
  }
  void defined(int VReg) {
    if (VarRegOf.count(VReg))
      return;
    int I = findScratchOf(VReg);
    assert(I >= 0 && "defined() without destReg()");
    Scratch[I].Dirty = true;
    // User variables live in frame slots at O0 (IRGen places them there);
    // expression temporaries stay register-resident within a block in
    // both modes, like GCC. Only cross-block and multiply-defined vregs
    // must be flushed eagerly.
    if (CrossBlock.count(VReg) || VarLike.count(VReg))
      flushScratch(I);
  }

  /// Emits a load/store of width \p MemCls at an IR address operand.
  /// \p IsLoad selects direction; \p RegStr is the data register text.
  void memAccess(bool IsLoad, const std::string &RegStr, SC MemCls,
                 bool SignExtend, const Value &Addr);

  std::string fetchFloat(const Value &V, SC Cls, int Which);
  int vecRegOf(const Value &V);

  void classifyVRegs();
  void layoutFrame();
  void emitPrologue();
  void emitEpilogue();
  void emitBlock(const BasicBlock &B);
  void emitInstr(const Instr &I, const Instr *Next, bool *FusedNext);
  void emitCall(const Instr &I);
};

} // namespace

//===----------------------------------------------------------------------===//
// Analysis and layout
//===----------------------------------------------------------------------===//

void ArmEmitter::classifyVRegs() {
  std::map<int, int> DefCount;
  std::map<int, int> DefBlock;
  std::map<int, std::set<int>> UseBlocks;
  for (const ParamInfo &P : F.Params)
    if (P.HomeVReg >= 0) {
      ++DefCount[P.HomeVReg];
      DefBlock.emplace(P.HomeVReg, 0);
    }
  for (const BasicBlock &B : F.Blocks)
    for (const Instr &I : B.Instrs) {
      if (I.Dst.isVReg()) {
        ++DefCount[I.Dst.Reg];
        DefBlock.emplace(I.Dst.Reg, B.Id);
      }
      for (const Value &V : I.Ops)
        if (V.isVReg())
          UseBlocks[V.Reg].insert(B.Id);
    }
  for (const auto &[VReg, Count] : DefCount)
    if (Count > 1)
      VarLike.insert(VReg);
  for (const auto &[VReg, Blocks] : UseBlocks) {
    auto DIt = DefBlock.find(VReg);
    int DB = DIt == DefBlock.end() ? -1 : DIt->second;
    for (int UB : Blocks)
      if (UB != DB) {
        CrossBlock.insert(VReg);
        break;
      }
  }
  if (Optimize) {
    int Next = 0;
    for (const ParamInfo &P : F.Params)
      if (P.HomeVReg >= 0 && Next < NumVarRegs && P.Cls != SC::V128)
        VarRegOf[P.HomeVReg] = Next++;
    for (const BasicBlock &B : F.Blocks)
      for (const Instr &I : B.Instrs)
        if (I.Dst.isVReg() && VarLike.count(I.Dst.Reg) &&
            !VarRegOf.count(I.Dst.Reg) && I.Cls != SC::V128 &&
            !scIsFloat(I.Cls) && Next < NumVarRegs)
          VarRegOf[I.Dst.Reg] = Next++;
  }
  int NextVec = 21;
  for (const BasicBlock &B : F.Blocks)
    for (const Instr &I : B.Instrs)
      if (I.Dst.isVReg() && I.Dst.Cls == SC::V128 &&
          CrossBlock.count(I.Dst.Reg)) {
        if (NextVec > 23) {
          fail("out of vector registers");
          return;
        }
        if (!VecRegOf.count(I.Dst.Reg))
          VecRegOf[I.Dst.Reg] = NextVec++;
      }
  for (const BasicBlock &B : F.Blocks)
    for (const Instr &I : B.Instrs) {
      if (I.Target0 >= 0)
        BranchTargets.insert(I.Target0);
      if (I.Target1 >= 0)
        BranchTargets.insert(I.Target1);
    }
}

void ArmEmitter::layoutFrame() {
  int Off = 16; // fp/lr pair at [sp, 0].
  for (size_t S = 0; S < F.Slots.size(); ++S) {
    const FrameSlot &Slot = F.Slots[S];
    unsigned Align = std::max(1u, Slot.Align);
    Off = (Off + Align - 1) / Align * Align;
    SlotOff[static_cast<int>(S)] = Off;
    Off += Slot.Size;
  }
  SpillBase = (Off + 7) / 8 * 8;
  int NumSpills = F.NextVReg + 1;
  int Cursor = SpillBase + NumSpills * 8;
  std::set<int> Used;
  for (const auto &[VReg, Idx] : VarRegOf)
    Used.insert(Idx);
  for (int Idx : Used) {
    CalleeSaveOff[Idx] = Cursor;
    Cursor += 8;
  }
  FrameSize = (Cursor + 15) / 16 * 16;
}

void ArmEmitter::emitPrologue() {
  Out += formatString("\t.globl\t%s\n", F.Name.c_str());
  Out += formatString("\t.type\t%s, %%function\n", F.Name.c_str());
  Out += F.Name + ":\n";
  ins(formatString("stp\tx29, x30, [sp, -%d]!", FrameSize));
  ins("mov\tx29, sp");
  for (const auto &[Idx, Off] : CalleeSaveOff)
    ins(formatString("str\tx%d, [sp, %d]", VarRegs[Idx], Off));

  int IntIdx = 0, FloatIdx = 0;
  for (const ParamInfo &P : F.Params) {
    if (scIsFloat(P.Cls)) {
      char FC = P.Cls == SC::F32 ? 's' : 'd';
      if (P.HomeSlot >= 0)
        ins(formatString("str\t%c%d, [sp, %d]", FC, FloatIdx,
                         SlotOff[P.HomeSlot]));
      ++FloatIdx;
      continue;
    }
    if (IntIdx >= 6) {
      fail("more than six integer parameters are not supported");
      return;
    }
    int Src = IntIdx++;
    if (P.HomeSlot >= 0) {
      const char *St = scBytes(P.Cls) == 1   ? "strb"
                       : scBytes(P.Cls) == 2 ? "strh"
                                             : "str";
      ins(formatString("%s\t%s, [sp, %d]", St,
                       regName(Src, scBytes(P.Cls) == 8 ? SC::I64 : SC::I32)
                           .c_str(),
                       SlotOff[P.HomeSlot]));
    } else if (P.HomeVReg >= 0) {
      auto VIt = VarRegOf.find(P.HomeVReg);
      if (VIt != VarRegOf.end())
        ins(formatString("mov\tx%d, x%d", VarRegs[VIt->second], Src));
      else
        ins(formatString("str\tx%d, [sp, %d]", Src,
                         spillOffset(P.HomeVReg)));
    }
  }
}

void ArmEmitter::emitEpilogue() {
  for (const auto &[Idx, Off] : CalleeSaveOff)
    ins(formatString("ldr\tx%d, [sp, %d]", VarRegs[Idx], Off));
  ins(formatString("ldp\tx29, x30, [sp], %d", FrameSize));
  ins("ret");
}

//===----------------------------------------------------------------------===//
// Memory, float, vector helpers
//===----------------------------------------------------------------------===//

void ArmEmitter::memAccess(bool IsLoad, const std::string &RegStr, SC MemCls,
                           bool SignExtend, const Value &Addr) {
  const char *Op;
  if (IsLoad) {
    switch (MemCls) {
    case SC::I8:
      Op = SignExtend ? "ldrsb" : "ldrb";
      break;
    case SC::I16:
      Op = SignExtend ? "ldrsh" : "ldrh";
      break;
    default:
      Op = "ldr";
      break;
    }
  } else {
    switch (MemCls) {
    case SC::I8:
      Op = "strb";
      break;
    case SC::I16:
      Op = "strh";
      break;
    default:
      Op = "str";
      break;
    }
  }
  switch (Addr.K) {
  case Value::Frame:
    ins(formatString("%s\t%s, [sp, %d]", Op, RegStr.c_str(),
                     SlotOff[Addr.Slot]));
    return;
  case Value::Sym: {
    int T = allocScratch();
    int TR = ScratchRing[T];
    bind(T, -1, false);
    ins(formatString("adrp\tx%d, %s", TR, Addr.Name.c_str()));
    ins(formatString("add\tx%d, x%d, :lo12:%s", TR, TR, Addr.Name.c_str()));
    ins(formatString("%s\t%s, [x%d]", Op, RegStr.c_str(), TR));
    return;
  }
  case Value::VReg: {
    int A = fetchVReg(Addr.Reg);
    ins(formatString("%s\t%s, [x%d]", Op, RegStr.c_str(), A));
    return;
  }
  default:
    fail("bad address operand");
  }
}

std::string ArmEmitter::fetchFloat(const Value &V, SC Cls, int Which) {
  char FC = Cls == SC::F32 ? 's' : 'd';
  std::string R = formatString("%c%d", FC, 16 + Which);
  if (V.isVReg()) {
    ins(formatString("ldr\t%s, [sp, %d]", R.c_str(), spillOffset(V.Reg)));
    return R;
  }
  assert(V.K == Value::ImmF && "bad float operand");
  int T = allocScratch();
  int TR = ScratchRing[T];
  bind(T, -1, false);
  if (Cls == SC::F32) {
    float FV = static_cast<float>(V.FImm);
    uint32_t Bits;
    __builtin_memcpy(&Bits, &FV, 4);
    materializeImm(TR, static_cast<int64_t>(Bits), SC::I32);
    ins(formatString("fmov\t%s, w%d", R.c_str(), TR));
  } else {
    uint64_t Bits;
    double DV = V.FImm;
    __builtin_memcpy(&Bits, &DV, 8);
    materializeImm(TR, static_cast<int64_t>(Bits), SC::I64);
    ins(formatString("fmov\t%s, x%d", R.c_str(), TR));
  }
  return R;
}

int ArmEmitter::vecRegOf(const Value &V) {
  assert(V.isVReg() && "vector operand must be a vreg");
  auto It = VecRegOf.find(V.Reg);
  if (It != VecRegOf.end())
    return It->second;
  auto TIt = VecTemp.find(V.Reg);
  if (TIt != VecTemp.end())
    return TIt->second;
  if (NextVecTemp > 20) {
    fail("out of vector temporaries");
    return 18;
  }
  VecTemp[V.Reg] = NextVecTemp;
  return NextVecTemp++;
}

//===----------------------------------------------------------------------===//
// Instructions
//===----------------------------------------------------------------------===//

void ArmEmitter::emitCall(const Instr &I) {
  flushAllScratch();
  int IntIdx = 0, FloatIdx = 0;
  for (const Value &A : I.Ops) {
    if (scIsFloat(A.Cls)) {
      char FC = A.Cls == SC::F32 ? 's' : 'd';
      if (A.isVReg())
        ins(formatString("ldr\t%c%d, [sp, %d]", FC, FloatIdx,
                         spillOffset(A.Reg)));
      else {
        std::string R = fetchFloat(A, A.Cls, 0);
        ins(formatString("fmov\t%c%d, %s", FC, FloatIdx, R.c_str()));
      }
      ++FloatIdx;
      continue;
    }
    if (IntIdx >= 6) {
      fail("more than six integer call arguments are not supported");
      return;
    }
    if (A.isVReg()) {
      auto VIt = VarRegOf.find(A.Reg);
      if (VIt != VarRegOf.end())
        ins(formatString("mov\tx%d, x%d", IntIdx, VarRegs[VIt->second]));
      else
        ins(formatString("ldr\tx%d, [sp, %d]", IntIdx, spillOffset(A.Reg)));
    } else {
      materializeImm(IntIdx, A.Imm, SC::I64);
    }
    ++IntIdx;
  }
  unpinAll();
  for (int S = 0; S < NumScratch; ++S)
    Scratch[S] = ScratchState(); // Caller-saved state dies at the call.
  ins(formatString("bl\t%s", I.Callee.c_str()));
  if (I.Dst.isVReg()) {
    if (scIsFloat(I.Cls)) {
      char FC = I.Cls == SC::F32 ? 's' : 'd';
      ins(formatString("str\t%c0, [sp, %d]", FC, spillOffset(I.Dst.Reg)));
    } else {
      int D = destReg(I.Dst.Reg);
      ins(formatString("mov\tx%d, x0", D));
      defined(I.Dst.Reg);
    }
  }
}

void ArmEmitter::emitInstr(const Instr &I, const Instr *Next,
                           bool *FusedNext) {
  *FusedNext = false;
  unpinAll();
  SC Cls = I.Cls;
  switch (I.Op) {
  case Opcode::Add:
  case Opcode::Sub: {
    int A = fetchValue(I.Ops[0], Cls);
    const char *Op = I.Op == Opcode::Add ? "add" : "sub";
    if (I.Ops[1].isImmI() && I.Ops[1].Imm >= 0 && I.Ops[1].Imm < 4096) {
      int D = destReg(I.Dst.Reg);
      ins(formatString("%s\t%s, %s, %lld", Op, regName(D, Cls).c_str(),
                       regName(A, Cls).c_str(),
                       static_cast<long long>(I.Ops[1].Imm)));
      defined(I.Dst.Reg);
      return;
    }
    int B = fetchValue(I.Ops[1], Cls);
    int D = destReg(I.Dst.Reg);
    ins(formatString("%s\t%s, %s, %s", Op, regName(D, Cls).c_str(),
                     regName(A, Cls).c_str(), regName(B, Cls).c_str()));
    defined(I.Dst.Reg);
    return;
  }
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::SDiv:
  case Opcode::UDiv: {
    int A = fetchValue(I.Ops[0], Cls);
    int B = fetchValue(I.Ops[1], Cls);
    int D = destReg(I.Dst.Reg);
    const char *Op = I.Op == Opcode::Mul    ? "mul"
                     : I.Op == Opcode::And  ? "and"
                     : I.Op == Opcode::Or   ? "orr"
                     : I.Op == Opcode::Xor  ? "eor"
                     : I.Op == Opcode::SDiv ? "sdiv"
                                            : "udiv";
    ins(formatString("%s\t%s, %s, %s", Op, regName(D, Cls).c_str(),
                     regName(A, Cls).c_str(), regName(B, Cls).c_str()));
    defined(I.Dst.Reg);
    return;
  }
  case Opcode::SRem:
  case Opcode::URem: {
    // GCC's msub idiom: q = a / b; r = a - q * b.
    int A = fetchValue(I.Ops[0], Cls);
    int B = fetchValue(I.Ops[1], Cls);
    int Q = allocScratch();
    int QR = ScratchRing[Q];
    bind(Q, -1, false);
    const char *Div = I.Op == Opcode::SRem ? "sdiv" : "udiv";
    ins(formatString("%s\t%s, %s, %s", Div, regName(QR, Cls).c_str(),
                     regName(A, Cls).c_str(), regName(B, Cls).c_str()));
    int D = destReg(I.Dst.Reg);
    ins(formatString("msub\t%s, %s, %s, %s", regName(D, Cls).c_str(),
                     regName(QR, Cls).c_str(), regName(B, Cls).c_str(),
                     regName(A, Cls).c_str()));
    defined(I.Dst.Reg);
    return;
  }
  case Opcode::Shl:
  case Opcode::AShr:
  case Opcode::LShr: {
    const char *Op = I.Op == Opcode::Shl    ? "lsl"
                     : I.Op == Opcode::AShr ? "asr"
                                            : "lsr";
    int A = fetchValue(I.Ops[0], Cls);
    if (I.Ops[1].isImmI()) {
      int D = destReg(I.Dst.Reg);
      unsigned Mask = scBytes(Cls) * 8 - 1;
      ins(formatString("%s\t%s, %s, %lld", Op, regName(D, Cls).c_str(),
                       regName(A, Cls).c_str(),
                       static_cast<long long>(I.Ops[1].Imm) & Mask));
      defined(I.Dst.Reg);
      return;
    }
    int B = fetchValue(I.Ops[1], Cls);
    int D = destReg(I.Dst.Reg);
    ins(formatString("%s\t%s, %s, %s", Op, regName(D, Cls).c_str(),
                     regName(A, Cls).c_str(), regName(B, Cls).c_str()));
    defined(I.Dst.Reg);
    return;
  }
  case Opcode::Neg:
  case Opcode::Not: {
    if (I.Op == Opcode::Neg && scIsFloat(Cls)) {
      std::string A = fetchFloat(I.Ops[0], Cls, 0);
      ins(formatString("fneg\t%s, %s", A.c_str(), A.c_str()));
      ins(formatString("str\t%s, [sp, %d]", A.c_str(),
                       spillOffset(I.Dst.Reg)));
      return;
    }
    int A = fetchValue(I.Ops[0], Cls);
    int D = destReg(I.Dst.Reg);
    ins(formatString("%s\t%s, %s", I.Op == Opcode::Neg ? "neg" : "mvn",
                     regName(D, Cls).c_str(), regName(A, Cls).c_str()));
    defined(I.Dst.Reg);
    return;
  }
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv: {
    std::string A = fetchFloat(I.Ops[0], Cls, 0);
    std::string B = fetchFloat(I.Ops[1], Cls, 1);
    const char *Op = I.Op == Opcode::FAdd   ? "fadd"
                     : I.Op == Opcode::FSub ? "fsub"
                     : I.Op == Opcode::FMul ? "fmul"
                                            : "fdiv";
    ins(formatString("%s\t%s, %s, %s", Op, A.c_str(), A.c_str(), B.c_str()));
    ins(formatString("str\t%s, [sp, %d]", A.c_str(),
                     spillOffset(I.Dst.Reg)));
    return;
  }
  case Opcode::FNeg: {
    std::string A = fetchFloat(I.Ops[0], Cls, 0);
    ins(formatString("fneg\t%s, %s", A.c_str(), A.c_str()));
    ins(formatString("str\t%s, [sp, %d]", A.c_str(),
                     spillOffset(I.Dst.Reg)));
    return;
  }
  case Opcode::Mov: {
    if (scIsFloat(Cls)) {
      std::string A = fetchFloat(I.Ops[0], Cls, 0);
      ins(formatString("str\t%s, [sp, %d]", A.c_str(),
                       spillOffset(I.Dst.Reg)));
      return;
    }
    if (I.Ops[0].isImmI()) {
      int D = destReg(I.Dst.Reg);
      materializeImm(D, I.Ops[0].Imm, Cls);
      defined(I.Dst.Reg);
      return;
    }
    int A = fetchValue(I.Ops[0], Cls);
    int D = destReg(I.Dst.Reg);
    if (D != A)
      ins(formatString("mov\t%s, %s", regName(D, SC::I64).c_str(),
                       regName(A, SC::I64).c_str()));
    defined(I.Dst.Reg);
    return;
  }
  case Opcode::Load: {
    if (scIsFloat(I.FromCls)) {
      char FC = I.FromCls == SC::F32 ? 's' : 'd';
      std::string R = formatString("%c16", FC);
      memAccess(true, R, I.FromCls, false, I.Ops[0]);
      ins(formatString("str\t%s, [sp, %d]", R.c_str(),
                       spillOffset(I.Dst.Reg)));
      return;
    }
    int D = destReg(I.Dst.Reg);
    SC DstCls = I.FromCls == SC::I64 ? SC::I64 : SC::I32;
    memAccess(true, regName(D, DstCls), I.FromCls, I.SignExtend, I.Ops[0]);
    defined(I.Dst.Reg);
    return;
  }
  case Opcode::Store: {
    if (scIsFloat(I.FromCls)) {
      std::string R = fetchFloat(I.Ops[0], I.FromCls, 0);
      memAccess(false, R, I.FromCls, false, I.Ops[1]);
      return;
    }
    int S = fetchValue(I.Ops[0], I.FromCls);
    SC RegCls = I.FromCls == SC::I64 ? SC::I64 : SC::I32;
    memAccess(false, regName(S, RegCls), I.FromCls, false, I.Ops[1]);
    return;
  }
  case Opcode::AddrOf: {
    int D = destReg(I.Dst.Reg);
    const Value &Src = I.Ops[0];
    if (Src.K == Value::Frame) {
      ins(formatString("add\tx%d, sp, %d", D, SlotOff[Src.Slot]));
    } else {
      ins(formatString("adrp\tx%d, %s", D, Src.Name.c_str()));
      ins(formatString("add\tx%d, x%d, :lo12:%s", D, D, Src.Name.c_str()));
    }
    defined(I.Dst.Reg);
    return;
  }
  case Opcode::SExt: {
    int A = fetchValue(I.Ops[0], I.FromCls);
    int D = destReg(I.Dst.Reg);
    ins(formatString("sxtw\tx%d, w%d", D, A));
    defined(I.Dst.Reg);
    return;
  }
  case Opcode::ZExt: {
    int A = fetchValue(I.Ops[0], I.FromCls);
    int D = destReg(I.Dst.Reg);
    ins(formatString("uxtw\tx%d, w%d", D, A));
    defined(I.Dst.Reg);
    return;
  }
  case Opcode::Trunc: {
    int A = fetchValue(I.Ops[0], I.FromCls);
    int D = destReg(I.Dst.Reg);
    if (D != A)
      ins(formatString("mov\tw%d, w%d", D, A));
    else
      ins(formatString("uxtw\tx%d, w%d", D, A)); // Normalize upper bits.
    defined(I.Dst.Reg);
    return;
  }
  case Opcode::SIToFP: {
    int A = fetchValue(I.Ops[0], I.FromCls);
    char FC = Cls == SC::F32 ? 's' : 'd';
    std::string R = formatString("%c16", FC);
    ins(formatString("scvtf\t%s, %s", R.c_str(),
                     regName(A, I.FromCls).c_str()));
    ins(formatString("str\t%s, [sp, %d]", R.c_str(),
                     spillOffset(I.Dst.Reg)));
    return;
  }
  case Opcode::FPToSI: {
    std::string A = fetchFloat(I.Ops[0], I.FromCls, 0);
    int D = destReg(I.Dst.Reg);
    ins(formatString("fcvtzs\t%s, %s", regName(D, Cls).c_str(), A.c_str()));
    defined(I.Dst.Reg);
    return;
  }
  case Opcode::FPExt: {
    std::string A = fetchFloat(I.Ops[0], SC::F32, 0);
    ins("fcvt\td16, s16");
    ins(formatString("str\td16, [sp, %d]", spillOffset(I.Dst.Reg)));
    return;
  }
  case Opcode::FPTrunc: {
    std::string A = fetchFloat(I.Ops[0], SC::F64, 0);
    (void)A;
    ins("fcvt\ts16, d16");
    ins(formatString("str\ts16, [sp, %d]", spillOffset(I.Dst.Reg)));
    return;
  }
  case Opcode::ICmp: {
    int A = fetchValue(I.Ops[0], Cls);
    if (I.Ops[1].isImmI() && I.Ops[1].Imm >= 0 && I.Ops[1].Imm < 4096) {
      ins(formatString("cmp\t%s, %lld", regName(A, Cls).c_str(),
                       static_cast<long long>(I.Ops[1].Imm)));
    } else {
      int B = fetchValue(I.Ops[1], Cls);
      ins(formatString("cmp\t%s, %s", regName(A, Cls).c_str(),
                       regName(B, Cls).c_str()));
    }
    if (Next && Next->Op == Opcode::CondBr && Next->Ops[0].isVReg() &&
        Next->Ops[0].Reg == I.Dst.Reg) {
      flushAllScratch();
      ins(formatString("b.%s\t%s", ccFor(I.P),
                       blockLabel(Next->Target0).c_str()));
      ins(formatString("b\t%s", blockLabel(Next->Target1).c_str()));
      *FusedNext = true;
      return;
    }
    int D = destReg(I.Dst.Reg);
    ins(formatString("cset\tw%d, %s", D, ccFor(I.P)));
    defined(I.Dst.Reg);
    return;
  }
  case Opcode::FCmp: {
    std::string A = fetchFloat(I.Ops[0], Cls, 0);
    std::string B = fetchFloat(I.Ops[1], Cls, 1);
    ins(formatString("fcmp\t%s, %s", A.c_str(), B.c_str()));
    if (Next && Next->Op == Opcode::CondBr && Next->Ops[0].isVReg() &&
        Next->Ops[0].Reg == I.Dst.Reg) {
      flushAllScratch();
      ins(formatString("b.%s\t%s", ccFor(I.P),
                       blockLabel(Next->Target0).c_str()));
      ins(formatString("b\t%s", blockLabel(Next->Target1).c_str()));
      *FusedNext = true;
      return;
    }
    int D = destReg(I.Dst.Reg);
    ins(formatString("cset\tw%d, %s", D, ccFor(I.P)));
    defined(I.Dst.Reg);
    return;
  }
  case Opcode::Br:
    flushAllScratch();
    ins(formatString("b\t%s", blockLabel(I.Target0).c_str()));
    return;
  case Opcode::CondBr: {
    int C = fetchValue(I.Ops[0], SC::I32);
    flushAllScratch();
    ins(formatString("cmp\tw%d, 0", C));
    ins(formatString("b.ne\t%s", blockLabel(I.Target0).c_str()));
    ins(formatString("b\t%s", blockLabel(I.Target1).c_str()));
    return;
  }
  case Opcode::Ret: {
    if (!I.Ops.empty()) {
      const Value &V = I.Ops[0];
      if (scIsFloat(I.Cls)) {
        std::string A = fetchFloat(V, I.Cls, 0);
        char FC = I.Cls == SC::F32 ? 's' : 'd';
        ins(formatString("fmov\t%c0, %s", FC, A.c_str()));
      } else if (V.isVReg()) {
        int A = fetchVReg(V.Reg);
        if (A != 0)
          ins(formatString("mov\tx0, x%d", A));
      } else {
        materializeImm(0, V.Imm, I.Cls);
      }
    }
    for (int S = 0; S < NumScratch; ++S)
      Scratch[S] = ScratchState();
    emitEpilogue();
    return;
  }
  case Opcode::Call:
    emitCall(I);
    return;
  case Opcode::VBroadcast: {
    int S = fetchValue(I.Ops[0], SC::I32);
    int D = vecRegOf(I.Dst);
    ins(formatString("dup\tv%d.4s, w%d", D, S));
    return;
  }
  case Opcode::VLoad: {
    int A = fetchVReg(I.Ops[0].Reg);
    int D = vecRegOf(I.Dst);
    ins(formatString("ldr\tq%d, [x%d]", D, A));
    return;
  }
  case Opcode::VStore: {
    int S = vecRegOf(I.Ops[0]);
    int A = fetchVReg(I.Ops[1].Reg);
    ins(formatString("str\tq%d, [x%d]", S, A));
    return;
  }
  case Opcode::VAdd:
  case Opcode::VSub:
  case Opcode::VMul: {
    int A = vecRegOf(I.Ops[0]);
    int B = vecRegOf(I.Ops[1]);
    int D = vecRegOf(I.Dst);
    const char *Op = I.Op == Opcode::VAdd   ? "add"
                     : I.Op == Opcode::VSub ? "sub"
                                            : "mul";
    ins(formatString("%s\tv%d.4s, v%d.4s, v%d.4s", Op, D, A, B));
    return;
  }
  }
  SLADE_UNREACHABLE("covered opcode switch");
}

void ArmEmitter::emitBlock(const BasicBlock &B) {
  if (B.Instrs.empty())
    return;
  if (BranchTargets.count(B.Id))
    label(blockLabel(B.Id));
  for (int S = 0; S < NumScratch; ++S)
    Scratch[S] = ScratchState();
  VecTemp.clear();
  NextVecTemp = 18;
  for (size_t I = 0; I < B.Instrs.size(); ++I) {
    const Instr *Next = I + 1 < B.Instrs.size() ? &B.Instrs[I + 1] : nullptr;
    bool Fused = false;
    emitInstr(B.Instrs[I], Next, &Fused);
    if (!Error.empty())
      return;
    if (Fused)
      ++I;
  }
}

Expected<std::string> ArmEmitter::run() {
  classifyVRegs();
  if (!Error.empty())
    return Expected<std::string>::error(Error);
  layoutFrame();
  emitPrologue();
  if (!Error.empty())
    return Expected<std::string>::error(Error);
  for (const BasicBlock &B : F.Blocks) {
    emitBlock(B);
    if (!Error.empty())
      return Expected<std::string>::error(Error);
  }
  Out += formatString("\t.size\t%s, .-%s\n", F.Name.c_str(),
                      F.Name.c_str());
  return Out;
}

Expected<std::string> slade::codegen::emitArm(const IRFunction &F,
                                              const CodegenOptions &Options) {
  ArmEmitter E(F, Options.Optimize);
  return E.run();
}
