//===- Backend.h - assembly backends ----------------------------*- C++ -*-===//
///
/// \file
/// Text-assembly backends for the two evaluated ISAs (§VII: x86 and ARM).
/// Both emit GCC-flavoured assembly that the asmx parsers and vm
/// interpreters consume. The Optimize flag selects the O0 texture (every
/// value round-trips through the frame) or the O3 texture (register
/// residency, with variables in callee-saved registers).
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_CODEGEN_BACKEND_H
#define SLADE_CODEGEN_BACKEND_H

#include "ir/IR.h"
#include "support/Error.h"

#include <string>

namespace slade {
namespace codegen {

struct CodegenOptions {
  bool Optimize = false;
};

/// Emits AT&T-syntax x86-64 for \p F.
Expected<std::string> emitX86(const ir::IRFunction &F,
                              const CodegenOptions &Options);

/// Emits AArch64 assembly for \p F.
Expected<std::string> emitArm(const ir::IRFunction &F,
                              const CodegenOptions &Options);

} // namespace codegen
} // namespace slade

#endif // SLADE_CODEGEN_BACKEND_H
