//===- X86Backend.cpp - x86-64 AT&T assembly backend -----------------------===//

#include "codegen/Backend.h"

#include "support/StringUtils.h"
#include "support/Unreachable.h"

#include <map>
#include <set>
#include <vector>

using namespace slade;
using namespace slade::ir;
using namespace slade::codegen;

namespace {

/// General-purpose registers addressable at four widths.
struct GPR {
  const char *Q;
  const char *D;
  const char *W;
  const char *B;
};

const GPR RAX = {"rax", "eax", "ax", "al"};
const GPR RCX = {"rcx", "ecx", "cx", "cl"};
const GPR RDX = {"rdx", "edx", "dx", "dl"};
const GPR RSI = {"rsi", "esi", "si", "sil"};
const GPR RDI = {"rdi", "edi", "di", "dil"};
const GPR R8 = {"r8", "r8d", "r8w", "r8b"};
const GPR R9 = {"r9", "r9d", "r9w", "r9b"};
const GPR R10 = {"r10", "r10d", "r10w", "r10b"};
const GPR R11 = {"r11", "r11d", "r11w", "r11b"};
const GPR RBX = {"rbx", "ebx", "bx", "bl"};
const GPR R12 = {"r12", "r12d", "r12w", "r12b"};
const GPR R13 = {"r13", "r13d", "r13w", "r13b"};
const GPR R14 = {"r14", "r14d", "r14w", "r14b"};
const GPR R15 = {"r15", "r15d", "r15w", "r15b"};

/// Scratch ring used for temporaries. RDX stays out: it is the implicit
/// second output of idiv.
const GPR ScratchRing[] = {RAX, RCX, RSI, RDI, R8, R9, R10, R11};
constexpr int NumScratch = 8;

/// Callee-saved registers dedicated to promoted variables at O3.
const GPR VarRegs[] = {RBX, R12, R13, R14, R15};
constexpr int NumVarRegs = 5;

std::string regName(const GPR &R, SC Cls) {
  switch (scBytes(Cls)) {
  case 1:
    return std::string("%") + R.B;
  case 2:
    return std::string("%") + R.W;
  case 4:
    return std::string("%") + R.D;
  default:
    return std::string("%") + R.Q;
  }
}

char suffixFor(SC Cls) {
  switch (scBytes(Cls)) {
  case 1:
    return 'b';
  case 2:
    return 'w';
  case 4:
    return 'l';
  default:
    return 'q';
  }
}

const char *ccFor(Pred P) {
  switch (P) {
  case Pred::EQ:
    return "e";
  case Pred::NE:
    return "ne";
  case Pred::SLT:
    return "l";
  case Pred::SLE:
    return "le";
  case Pred::SGT:
    return "g";
  case Pred::SGE:
    return "ge";
  case Pred::ULT:
    return "b";
  case Pred::ULE:
    return "be";
  case Pred::UGT:
    return "a";
  case Pred::UGE:
    return "ae";
  }
  SLADE_UNREACHABLE("covered switch");
}

class X86Emitter {
public:
  X86Emitter(const IRFunction &F, bool Optimize) : F(F), Optimize(Optimize) {}

  Expected<std::string> run();

private:
  const IRFunction &F;
  bool Optimize;
  std::string Out;
  std::string Error;

  // Frame layout: negative offsets from %rbp.
  std::map<int, int> SlotOff;        ///< user slot id -> offset.
  std::map<int, int> SpillOff;       ///< vreg -> offset (lazy).
  std::map<int, int> VarRegOf;       ///< varlike vreg -> VarRegs index.
  std::map<int, int> VecRegOf;       ///< cross-block V128 vreg -> xmm5..7.
  int FrameSize = 0;
  int NextSpill = 0;                 ///< grows downward from SpillBase.
  int SpillBase = 0;
  std::set<int> VarLike;             ///< multi-def vregs.
  std::set<int> CrossBlock;          ///< single-def, used outside def block.
  std::set<int> BranchTargets;

  // Scratch register state.
  struct ScratchState {
    int VReg = -1;
    bool Dirty = false;
    bool Pinned = false; ///< Operand of the instruction being emitted.
    uint64_t Stamp = 0;
  };
  ScratchState Scratch[NumScratch];
  uint64_t Clock = 1;
  // Block-local vector temporaries (xmm2..xmm4).
  std::map<int, int> VecTemp;
  int NextVecTemp = 2;

  void fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
  }

  void ins(const std::string &Text) { Out += "\t" + Text + "\n"; }
  void label(const std::string &L) { Out += L + ":\n"; }
  std::string blockLabel(int Id) const {
    return formatString(".L%d", Id + 2);
  }

  int spillOffset(int VReg) {
    auto It = SpillOff.find(VReg);
    if (It != SpillOff.end())
      return It->second;
    NextSpill += 8;
    int Off = -(SpillBase + NextSpill);
    SpillOff[VReg] = Off;
    return Off;
  }

  // -- scratch management ---------------------------------------------------
  int findScratchOf(int VReg) {
    for (int I = 0; I < NumScratch; ++I)
      if (Scratch[I].VReg == VReg)
        return I;
    return -1;
  }
  void flushScratch(int I) {
    if (Scratch[I].VReg >= 0 && Scratch[I].Dirty) {
      int Off = spillOffset(Scratch[I].VReg);
      ins(formatString("movq\t%s, %d(%%rbp)",
                       regName(ScratchRing[I], SC::I64).c_str(), Off));
    }
    Scratch[I].VReg = -1;
    Scratch[I].Dirty = false;
    Scratch[I].Pinned = false;
  }
  void flushAllScratch() {
    for (int I = 0; I < NumScratch; ++I)
      flushScratch(I);
  }
  void unpinAll() {
    for (int I = 0; I < NumScratch; ++I)
      Scratch[I].Pinned = false;
  }
  /// Frees a specific physical register (for idiv/shift constraints).
  void evictPhys(const GPR &R) {
    for (int I = 0; I < NumScratch; ++I)
      if (ScratchRing[I].Q == R.Q)
        flushScratch(I);
  }
  /// Flushes \p R's current occupant and pins it as an anonymous fixed
  /// operand (idiv dividend, shift count, immediate temporaries).
  int claimPhys(const GPR &R) {
    for (int I = 0; I < NumScratch; ++I)
      if (ScratchRing[I].Q == R.Q) {
        flushScratch(I);
        Scratch[I].Pinned = true;
        Scratch[I].Stamp = ++Clock;
        return I;
      }
    return -1; // rdx is not in the ring; nothing to claim.
  }
  int allocScratch() {
    for (int I = 0; I < NumScratch; ++I)
      if (Scratch[I].VReg < 0 && !Scratch[I].Pinned)
        return I;
    // Evict the least recently touched unpinned register.
    int Best = -1;
    for (int I = 0; I < NumScratch; ++I)
      if (!Scratch[I].Pinned &&
          (Best < 0 || Scratch[I].Stamp < Scratch[Best].Stamp))
        Best = I;
    assert(Best >= 0 && "all scratch registers pinned");
    flushScratch(Best);
    return Best;
  }
  void bind(int I, int VReg, bool Dirty) {
    Scratch[I].VReg = VReg;
    Scratch[I].Dirty = Dirty;
    Scratch[I].Pinned = true;
    Scratch[I].Stamp = ++Clock;
  }

  /// Returns the GPR currently holding \p VReg, loading it if needed.
  /// The register is pinned until the next instruction.
  const GPR &fetchVReg(int VReg, SC Cls) {
    auto VIt = VarRegOf.find(VReg);
    if (VIt != VarRegOf.end())
      return VarRegs[VIt->second];
    int I = findScratchOf(VReg);
    if (I >= 0) {
      Scratch[I].Stamp = ++Clock;
      Scratch[I].Pinned = true;
      return ScratchRing[I];
    }
    I = allocScratch();
    int Off = spillOffset(VReg);
    (void)Cls;
    ins(formatString("movq\t%d(%%rbp), %s", Off,
                     regName(ScratchRing[I], SC::I64).c_str()));
    bind(I, VReg, false);
    return ScratchRing[I];
  }

  /// Returns a register that will hold the destination vreg; caller emits
  /// the computation into it, then calls defined().
  const GPR &destReg(int VReg) {
    auto VIt = VarRegOf.find(VReg);
    if (VIt != VarRegOf.end())
      return VarRegs[VIt->second];
    int I = findScratchOf(VReg);
    if (I < 0) {
      I = allocScratch();
      bind(I, VReg, true);
    } else {
      Scratch[I].Dirty = true;
      Scratch[I].Pinned = true;
      Scratch[I].Stamp = ++Clock;
    }
    return ScratchRing[I];
  }
  /// Marks \p VReg defined (in its destReg); handles O0 + cross-block
  /// flushing policy.
  void defined(int VReg) {
    if (VarRegOf.count(VReg))
      return;
    int I = findScratchOf(VReg);
    assert(I >= 0 && "defined() without destReg()");
    Scratch[I].Dirty = true;
    // User variables live in frame slots at O0 (IRGen places them there);
    // expression temporaries stay register-resident within a block in
    // both modes, like GCC. Only cross-block and multiply-defined vregs
    // must be flushed eagerly.
    if (CrossBlock.count(VReg) || VarLike.count(VReg))
      flushScratch(I);
  }

  /// Loads operand \p V into a register (imm gets materialized).
  const GPR &fetchValue(const Value &V, SC Cls) {
    if (V.isVReg())
      return fetchVReg(V.Reg, Cls);
    assert((V.K == Value::ImmI) && "fetchValue on non-scalar");
    int I = allocScratch();
    const GPR &R = ScratchRing[I];
    emitMovImm(R, V.Imm, Cls);
    bind(I, -1, false); // Anonymous pinned temporary.
    return R;
  }

  void emitMovImm(const GPR &R, int64_t Imm, SC Cls) {
    if (scBytes(Cls) == 8 &&
        (Imm > 0x7fffffffLL || Imm < -0x80000000LL)) {
      ins(formatString("movabsq\t$%lld, %s", static_cast<long long>(Imm),
                       regName(R, SC::I64).c_str()));
      return;
    }
    SC C = scBytes(Cls) == 8 ? SC::I64 : SC::I32;
    ins(formatString("mov%c\t$%lld, %s", suffixFor(C),
                     static_cast<long long>(Imm), regName(R, C).c_str()));
  }

  /// Renders an address operand (frame slot, symbol, or pointer vreg).
  std::string addr(const Value &V) {
    switch (V.K) {
    case Value::Frame: {
      auto It = SlotOff.find(V.Slot);
      assert(It != SlotOff.end() && "unassigned slot");
      return formatString("%d(%%rbp)", It->second);
    }
    case Value::Sym:
      return V.Name + "(%rip)";
    case Value::VReg: {
      const GPR &R = fetchVReg(V.Reg, SC::I64);
      return formatString("(%s)", regName(R, SC::I64).c_str());
    }
    default:
      fail("bad address operand");
      return "0(%rbp)";
    }
  }

  std::string imm(int64_t X) {
    return formatString("$%lld", static_cast<long long>(X));
  }

  // -- float/vector helpers -------------------------------------------------
  /// Loads a float operand into xmm0 or xmm1 and returns its name.
  std::string fetchFloat(const Value &V, SC Cls, int Which);
  int vecRegOf(const Value &V); ///< xmm index for a V128 vreg.

  void classifyVRegs();
  void layoutFrame();
  void emitPrologue();
  void emitEpilogue();
  void emitBlock(const BasicBlock &B);
  void emitInstr(const Instr &I, const Instr *Next, bool *FusedNext);
  void emitCall(const Instr &I);
  void emitDiv(const Instr &I);
  void emitShift(const Instr &I);
  void emitFloatOp(const Instr &I);
  void emitVectorOp(const Instr &I);
};

} // namespace

//===----------------------------------------------------------------------===//
// Analysis and layout
//===----------------------------------------------------------------------===//

void X86Emitter::classifyVRegs() {
  std::map<int, int> DefCount;
  std::map<int, int> DefBlock;
  std::map<int, std::set<int>> UseBlocks;
  for (const ParamInfo &P : F.Params)
    if (P.HomeVReg >= 0) {
      ++DefCount[P.HomeVReg];
      DefBlock.emplace(P.HomeVReg, 0);
    }
  for (const BasicBlock &B : F.Blocks)
    for (const Instr &I : B.Instrs) {
      if (I.Dst.isVReg()) {
        ++DefCount[I.Dst.Reg];
        DefBlock.emplace(I.Dst.Reg, B.Id);
      }
      for (const Value &V : I.Ops)
        if (V.isVReg())
          UseBlocks[V.Reg].insert(B.Id);
    }
  for (const auto &[VReg, Count] : DefCount)
    if (Count > 1)
      VarLike.insert(VReg);
  for (const auto &[VReg, Blocks] : UseBlocks) {
    auto DIt = DefBlock.find(VReg);
    int DB = DIt == DefBlock.end() ? -1 : DIt->second;
    for (int UB : Blocks)
      if (UB != DB) {
        CrossBlock.insert(VReg);
        break;
      }
  }
  // At O3 dedicate callee-saved registers to the hottest var-like vregs
  // (and promoted params). Vector cross-block values get xmm5..xmm7.
  if (Optimize) {
    int Next = 0;
    for (const ParamInfo &P : F.Params)
      if (P.HomeVReg >= 0 && Next < NumVarRegs && P.Cls != SC::V128)
        VarRegOf[P.HomeVReg] = Next++;
    for (const BasicBlock &B : F.Blocks)
      for (const Instr &I : B.Instrs)
        if (I.Dst.isVReg() && VarLike.count(I.Dst.Reg) &&
            !VarRegOf.count(I.Dst.Reg) && I.Cls != SC::V128 &&
            !scIsFloat(I.Cls) && Next < NumVarRegs)
          VarRegOf[I.Dst.Reg] = Next++;
  }
  int NextVec = 5;
  for (const BasicBlock &B : F.Blocks)
    for (const Instr &I : B.Instrs)
      if (I.Dst.isVReg() && I.Dst.Cls == SC::V128 &&
          CrossBlock.count(I.Dst.Reg)) {
        if (NextVec > 7) {
          fail("out of vector registers");
          return;
        }
        if (!VecRegOf.count(I.Dst.Reg))
          VecRegOf[I.Dst.Reg] = NextVec++;
      }
  for (const BasicBlock &B : F.Blocks) {
    for (const Instr &I : B.Instrs) {
      if (I.Target0 >= 0)
        BranchTargets.insert(I.Target0);
      if (I.Target1 >= 0)
        BranchTargets.insert(I.Target1);
    }
  }
}

void X86Emitter::layoutFrame() {
  int Off = 0;
  for (size_t S = 0; S < F.Slots.size(); ++S) {
    const FrameSlot &Slot = F.Slots[S];
    unsigned Align = std::max(1u, Slot.Align);
    Off += Slot.Size;
    Off = (Off + Align - 1) / Align * Align;
    SlotOff[static_cast<int>(S)] = -Off;
  }
  SpillBase = (Off + 7) / 8 * 8;
  // Reserve a spill slot for every vreg (simple and safe); unused ones
  // only cost stack bytes.
  int NumSpills = F.NextVReg + 1;
  FrameSize = SpillBase + NumSpills * 8 + 8 * NumVarRegs;
  FrameSize = (FrameSize + 15) / 16 * 16;
}

void X86Emitter::emitPrologue() {
  Out += formatString("\t.globl\t%s\n", F.Name.c_str());
  Out += formatString("\t.type\t%s, @function\n", F.Name.c_str());
  Out += F.Name + ":\n";
  ins("pushq\t%rbp");
  ins("movq\t%rsp, %rbp");
  if (FrameSize > 0)
    ins(formatString("subq\t$%d, %%rsp", FrameSize));
  // Save callee-saved registers we will use into dedicated frame homes.
  std::set<int> UsedVarRegs;
  for (const auto &[VReg, Idx] : VarRegOf)
    UsedVarRegs.insert(Idx);
  for (int Idx : UsedVarRegs)
    ins(formatString("movq\t%%%s, %d(%%rbp)", VarRegs[Idx].Q,
                     -(FrameSize - 8 * Idx)));

  // Home the parameters.
  static const GPR ArgRegs[] = {RDI, RSI, RDX, RCX, R8, R9};
  int IntIdx = 0, FloatIdx = 0;
  for (const ParamInfo &P : F.Params) {
    if (scIsFloat(P.Cls)) {
      const char *Mov = P.Cls == SC::F32 ? "movss" : "movsd";
      if (P.HomeSlot >= 0)
        ins(formatString("%s\t%%xmm%d, %d(%%rbp)", Mov, FloatIdx,
                         SlotOff[P.HomeSlot]));
      ++FloatIdx;
      continue;
    }
    if (IntIdx >= 6) {
      fail("more than six integer parameters are not supported");
      return;
    }
    const GPR &Src = ArgRegs[IntIdx++];
    if (P.HomeSlot >= 0) {
      ins(formatString("mov%c\t%s, %d(%%rbp)", suffixFor(P.Cls),
                       regName(Src, P.Cls).c_str(), SlotOff[P.HomeSlot]));
    } else if (P.HomeVReg >= 0) {
      auto VIt = VarRegOf.find(P.HomeVReg);
      if (VIt != VarRegOf.end()) {
        ins(formatString("movq\t%s, %s", regName(Src, SC::I64).c_str(),
                         regName(VarRegs[VIt->second], SC::I64).c_str()));
      } else {
        ins(formatString("movq\t%s, %d(%%rbp)",
                         regName(Src, SC::I64).c_str(),
                         spillOffset(P.HomeVReg)));
      }
    }
  }
}

void X86Emitter::emitEpilogue() {
  std::set<int> UsedVarRegs;
  for (const auto &[VReg, Idx] : VarRegOf)
    UsedVarRegs.insert(Idx);
  for (int Idx : UsedVarRegs)
    ins(formatString("movq\t%d(%%rbp), %%%s", -(FrameSize - 8 * Idx),
                     VarRegs[Idx].Q));
  ins("leave");
  ins("ret");
}

//===----------------------------------------------------------------------===//
// Floating point and vectors
//===----------------------------------------------------------------------===//

std::string X86Emitter::fetchFloat(const Value &V, SC Cls, int Which) {
  std::string X = formatString("%%xmm%d", Which);
  const char *Mov = Cls == SC::F32 ? "movss" : "movsd";
  if (V.isVReg()) {
    int Off = spillOffset(V.Reg);
    ins(formatString("%s\t%d(%%rbp), %s", Mov, Off, X.c_str()));
    return X;
  }
  assert(V.K == Value::ImmF && "bad float operand");
  // Materialize through an integer register (bit pattern), the
  // rodata-free idiom.
  if (Cls == SC::F32) {
    float FV = static_cast<float>(V.FImm);
    uint32_t Bits;
    __builtin_memcpy(&Bits, &FV, 4);
    evictPhys(RAX);
    ins(formatString("movl\t$%u, %%eax", Bits));
    ins(formatString("movd\t%%eax, %s", X.c_str()));
  } else {
    uint64_t Bits;
    double DV = V.FImm;
    __builtin_memcpy(&Bits, &DV, 8);
    evictPhys(RAX);
    ins(formatString("movabsq\t$%llu, %%rax",
                     static_cast<unsigned long long>(Bits)));
    ins(formatString("movq\t%%rax, %s", X.c_str()));
  }
  return X;
}

int X86Emitter::vecRegOf(const Value &V) {
  assert(V.isVReg() && "vector operand must be a vreg");
  auto It = VecRegOf.find(V.Reg);
  if (It != VecRegOf.end())
    return It->second;
  auto TIt = VecTemp.find(V.Reg);
  if (TIt != VecTemp.end())
    return TIt->second;
  if (NextVecTemp > 4) {
    fail("out of vector temporaries");
    return 2;
  }
  VecTemp[V.Reg] = NextVecTemp;
  return NextVecTemp++;
}

void X86Emitter::emitVectorOp(const Instr &I) {
  switch (I.Op) {
  case Opcode::VBroadcast: {
    const GPR &S = fetchValue(I.Ops[0], SC::I32);
    int D = vecRegOf(I.Dst);
    ins(formatString("movd\t%s, %%xmm%d", regName(S, SC::I32).c_str(), D));
    ins(formatString("pshufd\t$0, %%xmm%d, %%xmm%d", D, D));
    return;
  }
  case Opcode::VLoad: {
    std::string A = addr(I.Ops[0]);
    int D = vecRegOf(I.Dst);
    ins(formatString("movdqu\t%s, %%xmm%d", A.c_str(), D));
    return;
  }
  case Opcode::VStore: {
    int S = vecRegOf(I.Ops[0]);
    std::string A = addr(I.Ops[1]);
    ins(formatString("movups\t%%xmm%d, %s", S, A.c_str()));
    return;
  }
  case Opcode::VAdd:
  case Opcode::VSub:
  case Opcode::VMul: {
    int A = vecRegOf(I.Ops[0]);
    int B = vecRegOf(I.Ops[1]);
    int D = vecRegOf(I.Dst);
    const char *Op = I.Op == Opcode::VAdd   ? "paddd"
                     : I.Op == Opcode::VSub ? "psubd"
                                            : "pmulld";
    if (D != A)
      ins(formatString("movdqa\t%%xmm%d, %%xmm%d", A, D));
    ins(formatString("%s\t%%xmm%d, %%xmm%d", Op, B, D));
    return;
  }
  default:
    SLADE_UNREACHABLE("not a vector op");
  }
}

void X86Emitter::emitFloatOp(const Instr &I) {
  SC Cls = I.Cls;
  const char *Suf = Cls == SC::F32 ? "ss" : "sd";
  switch (I.Op) {
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv: {
    std::string A = fetchFloat(I.Ops[0], Cls, 0);
    std::string B = fetchFloat(I.Ops[1], Cls, 1);
    const char *Op = I.Op == Opcode::FAdd   ? "add"
                     : I.Op == Opcode::FSub ? "sub"
                     : I.Op == Opcode::FMul ? "mul"
                                            : "div";
    ins(formatString("%s%s\t%s, %s", Op, Suf, B.c_str(), A.c_str()));
    ins(formatString("mov%s\t%s, %d(%%rbp)", Suf, A.c_str(),
                     spillOffset(I.Dst.Reg)));
    return;
  }
  case Opcode::FNeg: {
    // 0 - x (sign-flip via subtraction keeps the instruction set small).
    std::string B = fetchFloat(I.Ops[0], Cls, 1);
    evictPhys(RAX);
    ins("xorl\t%eax, %eax");
    if (Cls == SC::F32)
      ins("movd\t%eax, %xmm0");
    else
      ins("movq\t%rax, %xmm0");
    ins(formatString("sub%s\t%s, %%xmm0", Suf, B.c_str()));
    ins(formatString("mov%s\t%%xmm0, %d(%%rbp)", Suf,
                     spillOffset(I.Dst.Reg)));
    return;
  }
  case Opcode::Mov: { // Float-class move.
    std::string A = fetchFloat(I.Ops[0], Cls, 0);
    ins(formatString("mov%s\t%s, %d(%%rbp)", Suf, A.c_str(),
                     spillOffset(I.Dst.Reg)));
    return;
  }
  case Opcode::SIToFP: {
    const GPR &S = fetchValue(I.Ops[0], I.FromCls);
    const char *Conv = Cls == SC::F32 ? "cvtsi2ss" : "cvtsi2sd";
    char WidthSuf = I.FromCls == SC::I64 ? 'q' : 'l';
    ins(formatString("%s%c\t%s, %%xmm0", Conv, WidthSuf,
                     regName(S, I.FromCls).c_str()));
    ins(formatString("mov%s\t%%xmm0, %d(%%rbp)", Suf,
                     spillOffset(I.Dst.Reg)));
    return;
  }
  case Opcode::FPExt: {
    std::string A = fetchFloat(I.Ops[0], SC::F32, 0);
    ins(formatString("cvtss2sd\t%s, %s", A.c_str(), A.c_str()));
    ins(formatString("movsd\t%s, %d(%%rbp)", A.c_str(),
                     spillOffset(I.Dst.Reg)));
    return;
  }
  case Opcode::FPTrunc: {
    std::string A = fetchFloat(I.Ops[0], SC::F64, 0);
    ins(formatString("cvtsd2ss\t%s, %s", A.c_str(), A.c_str()));
    ins(formatString("movss\t%s, %d(%%rbp)", A.c_str(),
                     spillOffset(I.Dst.Reg)));
    return;
  }
  default:
    SLADE_UNREACHABLE("not a float op");
  }
}

//===----------------------------------------------------------------------===//
// Integer instructions
//===----------------------------------------------------------------------===//

void X86Emitter::emitDiv(const Instr &I) {
  SC Cls = I.Cls;
  char Suf = suffixFor(Cls);
  bool IsRem = I.Op == Opcode::SRem || I.Op == Opcode::URem;
  bool IsSigned = I.Op == Opcode::SDiv || I.Op == Opcode::SRem;
  // Move the divisor to rcx first, then the dividend to rax; both stay
  // pinned so neither fetch can evict the other.
  if (I.Ops[1].isVReg()) {
    const GPR &B = fetchVReg(I.Ops[1].Reg, Cls);
    if (std::string(B.Q) != "rcx") {
      claimPhys(RCX);
      ins(formatString("mov%c\t%s, %s", Suf, regName(B, Cls).c_str(),
                       regName(RCX, Cls).c_str()));
    }
  } else {
    claimPhys(RCX);
    emitMovImm(RCX, I.Ops[1].Imm, Cls);
  }
  if (I.Ops[0].isVReg()) {
    const GPR &A = fetchVReg(I.Ops[0].Reg, Cls);
    if (std::string(A.Q) != "rax") {
      claimPhys(RAX);
      ins(formatString("mov%c\t%s, %s", Suf, regName(A, Cls).c_str(),
                       regName(RAX, Cls).c_str()));
    }
  } else {
    claimPhys(RAX);
    emitMovImm(RAX, I.Ops[0].Imm, Cls);
  }
  if (IsSigned) {
    ins(Cls == SC::I64 ? "cqto" : "cltd");
    ins(formatString("idiv%c\t%s", Suf, regName(RCX, Cls).c_str()));
  } else {
    ins("xorl\t%edx, %edx");
    ins(formatString("div%c\t%s", Suf, regName(RCX, Cls).c_str()));
  }
  // Invalidate any stale bindings of rax/rcx created by fetches above.
  evictPhys(RAX);
  evictPhys(RCX);
  const GPR &D = destReg(I.Dst.Reg);
  const GPR &Src = IsRem ? RDX : RAX;
  if (std::string(D.Q) != Src.Q)
    ins(formatString("mov%c\t%s, %s", Suf, regName(Src, Cls).c_str(),
                     regName(D, Cls).c_str()));
  defined(I.Dst.Reg);
}

void X86Emitter::emitShift(const Instr &I) {
  SC Cls = I.Cls;
  char Suf = suffixFor(Cls);
  const char *Op = I.Op == Opcode::Shl    ? "sal"
                   : I.Op == Opcode::AShr ? "sar"
                                          : "shr";
  if (I.Ops[1].isImmI()) {
    const GPR &A = fetchValue(I.Ops[0], Cls);
    const GPR &D = destReg(I.Dst.Reg);
    if (std::string(D.Q) != A.Q)
      ins(formatString("mov%c\t%s, %s", Suf, regName(A, Cls).c_str(),
                       regName(D, Cls).c_str()));
    ins(formatString("%s%c\t$%lld, %s", Op, Suf,
                     static_cast<long long>(I.Ops[1].Imm),
                     regName(D, Cls).c_str()));
    defined(I.Dst.Reg);
    return;
  }
  const GPR &B = fetchVReg(I.Ops[1].Reg, Cls);
  if (std::string(B.Q) != "rcx") {
    claimPhys(RCX);
    ins(formatString("mov%c\t%s, %s", Suf, regName(B, Cls).c_str(),
                     regName(RCX, Cls).c_str()));
  }
  const GPR &A = fetchValue(I.Ops[0], Cls);
  const GPR &D = destReg(I.Dst.Reg);
  if (std::string(D.Q) == "rcx") {
    // Destination aliases the count register: shift in a temporary.
    int T = allocScratch();
    const GPR &TR = ScratchRing[T];
    bind(T, -1, false);
    ins(formatString("mov%c\t%s, %s", Suf, regName(A, Cls).c_str(),
                     regName(TR, Cls).c_str()));
    ins(formatString("%s%c\t%%cl, %s", Op, Suf, regName(TR, Cls).c_str()));
    ins(formatString("mov%c\t%s, %s", Suf, regName(TR, Cls).c_str(),
                     regName(D, Cls).c_str()));
  } else {
    if (std::string(D.Q) != A.Q)
      ins(formatString("mov%c\t%s, %s", Suf, regName(A, Cls).c_str(),
                       regName(D, Cls).c_str()));
    ins(formatString("%s%c\t%%cl, %s", Op, Suf, regName(D, Cls).c_str()));
  }
  defined(I.Dst.Reg);
}

void X86Emitter::emitCall(const Instr &I) {
  flushAllScratch();
  static const GPR ArgRegs[] = {RDI, RSI, RDX, RCX, R8, R9};
  int IntIdx = 0, FloatIdx = 0;
  for (const Value &A : I.Ops) {
    if (scIsFloat(A.Cls)) {
      const char *Mov = A.Cls == SC::F32 ? "movss" : "movsd";
      if (A.isVReg())
        ins(formatString("%s\t%d(%%rbp), %%xmm%d", Mov, spillOffset(A.Reg),
                         FloatIdx));
      else
        fetchFloat(A, A.Cls, FloatIdx); // Materializes into %xmmN.
      ++FloatIdx;
      continue;
    }
    if (IntIdx >= 6) {
      fail("more than six integer call arguments are not supported");
      return;
    }
    const GPR &Dst = ArgRegs[IntIdx++];
    if (A.isVReg()) {
      auto VIt = VarRegOf.find(A.Reg);
      if (VIt != VarRegOf.end())
        ins(formatString("movq\t%s, %s",
                         regName(VarRegs[VIt->second], SC::I64).c_str(),
                         regName(Dst, SC::I64).c_str()));
      else
        ins(formatString("movq\t%d(%%rbp), %s", spillOffset(A.Reg),
                         regName(Dst, SC::I64).c_str()));
    } else {
      emitMovImm(Dst, A.Imm, A.Cls);
    }
  }
  ins(formatString("call\t%s", I.Callee.c_str()));
  flushAllScratch(); // Caller-saved state is dead.
  if (I.Dst.isVReg()) {
    if (scIsFloat(I.Cls)) {
      const char *Mov = I.Cls == SC::F32 ? "movss" : "movsd";
      ins(formatString("%s\t%%xmm0, %d(%%rbp)", Mov,
                       spillOffset(I.Dst.Reg)));
    } else {
      const GPR &D = destReg(I.Dst.Reg);
      if (std::string(D.Q) != "rax")
        ins(formatString("movq\t%%rax, %s", regName(D, SC::I64).c_str()));
      else
        bind(0, I.Dst.Reg, true); // rax is scratch slot 0.
      defined(I.Dst.Reg);
    }
  }
}

void X86Emitter::emitInstr(const Instr &I, const Instr *Next,
                           bool *FusedNext) {
  *FusedNext = false;
  unpinAll();
  switch (I.Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor: {
    if (scIsFloat(I.Cls))
      SLADE_UNREACHABLE("float class on integer opcode");
    SC Cls = I.Cls;
    char Suf = suffixFor(Cls);
    const char *Op = I.Op == Opcode::Add   ? "add"
                     : I.Op == Opcode::Sub ? "sub"
                     : I.Op == Opcode::Mul ? "imul"
                     : I.Op == Opcode::And ? "and"
                     : I.Op == Opcode::Or  ? "or"
                                           : "xor";
    const GPR &A = fetchValue(I.Ops[0], Cls);
    bool SmallImm = I.Ops[1].isImmI() && I.Ops[1].Imm <= 0x7fffffffLL &&
                    I.Ops[1].Imm >= -0x80000000LL;
    std::string BStr;
    const GPR *B = nullptr;
    if (SmallImm) {
      BStr = imm(I.Ops[1].Imm);
    } else {
      B = &fetchValue(I.Ops[1], Cls);
      BStr = regName(*B, Cls);
    }
    const GPR &D = destReg(I.Dst.Reg);
    if (B && std::string(D.Q) == B->Q && std::string(D.Q) != A.Q) {
      // D aliases the second operand (x = y op x with x register-
      // resident): compute via an anonymous temporary.
      int T = allocScratch();
      const GPR &TR = ScratchRing[T];
      bind(T, -1, false);
      ins(formatString("mov%c\t%s, %s", Suf, regName(A, Cls).c_str(),
                       regName(TR, Cls).c_str()));
      ins(formatString("%s%c\t%s, %s", Op, Suf, BStr.c_str(),
                       regName(TR, Cls).c_str()));
      ins(formatString("mov%c\t%s, %s", Suf, regName(TR, Cls).c_str(),
                       regName(D, Cls).c_str()));
    } else {
      if (std::string(D.Q) != A.Q)
        ins(formatString("mov%c\t%s, %s", Suf, regName(A, Cls).c_str(),
                         regName(D, Cls).c_str()));
      ins(formatString("%s%c\t%s, %s", Op, Suf, BStr.c_str(),
                       regName(D, Cls).c_str()));
    }
    defined(I.Dst.Reg);
    return;
  }
  case Opcode::SDiv:
  case Opcode::UDiv:
  case Opcode::SRem:
  case Opcode::URem:
    emitDiv(I);
    return;
  case Opcode::Shl:
  case Opcode::AShr:
  case Opcode::LShr:
    emitShift(I);
    return;
  case Opcode::Neg:
  case Opcode::Not: {
    if (I.Op == Opcode::Neg && scIsFloat(I.Cls)) {
      emitFloatOp(I);
      return;
    }
    SC Cls = I.Cls;
    char Suf = suffixFor(Cls);
    const GPR &A = fetchValue(I.Ops[0], Cls);
    const GPR &D = destReg(I.Dst.Reg);
    if (std::string(D.Q) != A.Q)
      ins(formatString("mov%c\t%s, %s", Suf, regName(A, Cls).c_str(),
                       regName(D, Cls).c_str()));
    ins(formatString("%s%c\t%s", I.Op == Opcode::Neg ? "neg" : "not", Suf,
                     regName(D, Cls).c_str()));
    defined(I.Dst.Reg);
    return;
  }
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
  case Opcode::FNeg:
  case Opcode::SIToFP:
  case Opcode::FPExt:
  case Opcode::FPTrunc:
    emitFloatOp(I);
    return;
  case Opcode::FPToSI: {
    std::string X = fetchFloat(I.Ops[0], I.FromCls, 0);
    const GPR &D = destReg(I.Dst.Reg);
    const char *Conv = I.FromCls == SC::F32 ? "cvttss2si" : "cvttsd2si";
    char WidthSuf = I.Cls == SC::I64 ? 'q' : 'l';
    ins(formatString("%s%c\t%s, %s", Conv, WidthSuf, X.c_str(),
                     regName(D, I.Cls).c_str()));
    defined(I.Dst.Reg);
    return;
  }
  case Opcode::Mov: {
    if (scIsFloat(I.Cls)) {
      emitFloatOp(I);
      return;
    }
    SC Cls = I.Cls;
    if (I.Ops[0].isImmI()) {
      const GPR &D = destReg(I.Dst.Reg);
      emitMovImm(D, I.Ops[0].Imm, Cls);
      defined(I.Dst.Reg);
      return;
    }
    const GPR &A = fetchValue(I.Ops[0], Cls);
    const GPR &D = destReg(I.Dst.Reg);
    if (std::string(D.Q) != A.Q)
      ins(formatString("mov%c\t%s, %s", suffixFor(Cls),
                       regName(A, Cls).c_str(), regName(D, Cls).c_str()));
    defined(I.Dst.Reg);
    return;
  }
  case Opcode::Load: {
    if (I.Dst.Cls == SC::V128) {
      emitVectorOp(I);
      return;
    }
    std::string A = addr(I.Ops[0]);
    if (scIsFloat(I.FromCls)) {
      const char *Mov = I.FromCls == SC::F32 ? "movss" : "movsd";
      ins(formatString("%s\t%s, %%xmm0", Mov, A.c_str()));
      ins(formatString("%s\t%%xmm0, %d(%%rbp)", Mov,
                       spillOffset(I.Dst.Reg)));
      return;
    }
    const GPR &D = destReg(I.Dst.Reg);
    const char *Mov;
    switch (I.FromCls) {
    case SC::I8:
      Mov = I.SignExtend ? "movsbl" : "movzbl";
      break;
    case SC::I16:
      Mov = I.SignExtend ? "movswl" : "movzwl";
      break;
    case SC::I32:
      Mov = "movl";
      break;
    default:
      Mov = "movq";
      break;
    }
    SC DstCls = I.FromCls == SC::I64 ? SC::I64 : SC::I32;
    ins(formatString("%s\t%s, %s", Mov, A.c_str(),
                     regName(D, DstCls).c_str()));
    defined(I.Dst.Reg);
    return;
  }
  case Opcode::Store: {
    if (I.Ops[0].Cls == SC::V128) {
      emitVectorOp(I);
      return;
    }
    if (scIsFloat(I.FromCls)) {
      std::string X = fetchFloat(I.Ops[0], I.FromCls, 0);
      std::string A = addr(I.Ops[1]);
      const char *Mov = I.FromCls == SC::F32 ? "movss" : "movsd";
      ins(formatString("%s\t%s, %s", Mov, X.c_str(), A.c_str()));
      return;
    }
    char Suf = suffixFor(I.FromCls);
    if (I.Ops[0].isImmI() && I.Ops[0].Imm <= 0x7fffffffLL &&
        I.Ops[0].Imm >= -0x80000000LL) {
      std::string A = addr(I.Ops[1]);
      ins(formatString("mov%c\t$%lld, %s", Suf,
                       static_cast<long long>(I.Ops[0].Imm), A.c_str()));
      return;
    }
    const GPR &S = fetchValue(I.Ops[0], I.FromCls);
    std::string A = addr(I.Ops[1]);
    ins(formatString("mov%c\t%s, %s", Suf, regName(S, I.FromCls).c_str(),
                     A.c_str()));
    return;
  }
  case Opcode::AddrOf: {
    const GPR &D = destReg(I.Dst.Reg);
    const Value &Src = I.Ops[0];
    if (Src.K == Value::Frame)
      ins(formatString("leaq\t%d(%%rbp), %s", SlotOff[Src.Slot],
                       regName(D, SC::I64).c_str()));
    else
      ins(formatString("leaq\t%s(%%rip), %s", Src.Name.c_str(),
                       regName(D, SC::I64).c_str()));
    defined(I.Dst.Reg);
    return;
  }
  case Opcode::SExt: {
    const GPR &A = fetchValue(I.Ops[0], I.FromCls);
    const GPR &D = destReg(I.Dst.Reg);
    assert(I.FromCls == SC::I32 && I.Cls == SC::I64 && "unexpected sext");
    ins(formatString("movslq\t%s, %s", regName(A, SC::I32).c_str(),
                     regName(D, SC::I64).c_str()));
    defined(I.Dst.Reg);
    return;
  }
  case Opcode::ZExt: {
    const GPR &A = fetchValue(I.Ops[0], I.FromCls);
    const GPR &D = destReg(I.Dst.Reg);
    // 32-bit moves implicitly zero-extend.
    ins(formatString("movl\t%s, %s", regName(A, SC::I32).c_str(),
                     regName(D, SC::I32).c_str()));
    defined(I.Dst.Reg);
    return;
  }
  case Opcode::Trunc: {
    const GPR &A = fetchValue(I.Ops[0], I.FromCls);
    const GPR &D = destReg(I.Dst.Reg);
    ins(formatString("movl\t%s, %s", regName(A, SC::I32).c_str(),
                     regName(D, SC::I32).c_str()));
    defined(I.Dst.Reg);
    return;
  }
  case Opcode::ICmp: {
    SC Cls = I.Cls;
    char Suf = suffixFor(Cls);
    const GPR &A = fetchValue(I.Ops[0], Cls);
    std::string BStr;
    if (I.Ops[1].isImmI() && I.Ops[1].Imm <= 0x7fffffffLL &&
        I.Ops[1].Imm >= -0x80000000LL) {
      BStr = imm(I.Ops[1].Imm);
    } else {
      const GPR &B = fetchValue(I.Ops[1], Cls);
      BStr = regName(B, Cls);
    }
    ins(formatString("cmp%c\t%s, %s", Suf, BStr.c_str(),
                     regName(A, Cls).c_str()));
    // Fuse with an immediately following CondBr on this flag.
    if (Next && Next->Op == Opcode::CondBr && Next->Ops[0].isVReg() &&
        Next->Ops[0].Reg == I.Dst.Reg) {
      flushAllScratch();
      ins(formatString("j%s\t%s", ccFor(I.P),
                       blockLabel(Next->Target0).c_str()));
      ins(formatString("jmp\t%s", blockLabel(Next->Target1).c_str()));
      *FusedNext = true;
      return;
    }
    const GPR &D = destReg(I.Dst.Reg);
    ins(formatString("set%s\t%s", ccFor(I.P), regName(D, SC::I8).c_str()));
    ins(formatString("movzbl\t%s, %s", regName(D, SC::I8).c_str(),
                     regName(D, SC::I32).c_str()));
    defined(I.Dst.Reg);
    return;
  }
  case Opcode::FCmp: {
    std::string A = fetchFloat(I.Ops[0], I.Cls, 0);
    std::string B = fetchFloat(I.Ops[1], I.Cls, 1);
    const char *Cmp = I.Cls == SC::F32 ? "comiss" : "comisd";
    ins(formatString("%s\t%s, %s", Cmp, B.c_str(), A.c_str()));
    // Unsigned-style conditions reflect comiss flag semantics.
    Pred MP = I.P;
    switch (MP) {
    case Pred::SLT:
      MP = Pred::ULT;
      break;
    case Pred::SLE:
      MP = Pred::ULE;
      break;
    case Pred::SGT:
      MP = Pred::UGT;
      break;
    case Pred::SGE:
      MP = Pred::UGE;
      break;
    default:
      break;
    }
    if (Next && Next->Op == Opcode::CondBr && Next->Ops[0].isVReg() &&
        Next->Ops[0].Reg == I.Dst.Reg) {
      flushAllScratch();
      ins(formatString("j%s\t%s", ccFor(MP),
                       blockLabel(Next->Target0).c_str()));
      ins(formatString("jmp\t%s", blockLabel(Next->Target1).c_str()));
      *FusedNext = true;
      return;
    }
    const GPR &D = destReg(I.Dst.Reg);
    ins(formatString("set%s\t%s", ccFor(MP), regName(D, SC::I8).c_str()));
    ins(formatString("movzbl\t%s, %s", regName(D, SC::I8).c_str(),
                     regName(D, SC::I32).c_str()));
    defined(I.Dst.Reg);
    return;
  }
  case Opcode::Br:
    flushAllScratch();
    ins(formatString("jmp\t%s", blockLabel(I.Target0).c_str()));
    return;
  case Opcode::CondBr: {
    const GPR &C = fetchValue(I.Ops[0], SC::I32);
    std::string CR = regName(C, SC::I32);
    flushAllScratch();
    ins(formatString("testl\t%s, %s", CR.c_str(), CR.c_str()));
    ins(formatString("jne\t%s", blockLabel(I.Target0).c_str()));
    ins(formatString("jmp\t%s", blockLabel(I.Target1).c_str()));
    return;
  }
  case Opcode::Ret: {
    if (!I.Ops.empty()) {
      const Value &V = I.Ops[0];
      if (scIsFloat(I.Cls)) {
        std::string X = fetchFloat(V, I.Cls, 0);
        (void)X; // Result convention: xmm0, which fetchFloat(…,0) used.
      } else if (V.isVReg()) {
        const GPR &A = fetchVReg(V.Reg, I.Cls);
        if (std::string(A.Q) != "rax")
          ins(formatString("mov%c\t%s, %s", suffixFor(I.Cls),
                           regName(A, I.Cls).c_str(),
                           regName(RAX, I.Cls).c_str()));
      } else {
        emitMovImm(RAX, V.Imm, I.Cls);
      }
    }
    for (int S = 0; S < NumScratch; ++S) {
      Scratch[S].VReg = -1; // No flush needed past a return.
      Scratch[S].Dirty = false;
    }
    emitEpilogue();
    return;
  }
  case Opcode::Call:
    emitCall(I);
    return;
  case Opcode::VBroadcast:
  case Opcode::VLoad:
  case Opcode::VStore:
  case Opcode::VAdd:
  case Opcode::VSub:
  case Opcode::VMul:
    emitVectorOp(I);
    return;
  }
  SLADE_UNREACHABLE("covered opcode switch");
}

void X86Emitter::emitBlock(const BasicBlock &B) {
  if (B.Instrs.empty())
    return; // Unreachable block removed by simplifyControlFlow.
  if (BranchTargets.count(B.Id))
    label(blockLabel(B.Id));
  // Reset block-local state.
  for (int S = 0; S < NumScratch; ++S) {
    Scratch[S].VReg = -1;
    Scratch[S].Dirty = false;
  }
  VecTemp.clear();
  NextVecTemp = 2;
  for (size_t I = 0; I < B.Instrs.size(); ++I) {
    const Instr *Next =
        I + 1 < B.Instrs.size() ? &B.Instrs[I + 1] : nullptr;
    bool Fused = false;
    emitInstr(B.Instrs[I], Next, &Fused);
    if (!Error.empty())
      return;
    if (Fused)
      ++I;
  }
}

Expected<std::string> X86Emitter::run() {
  classifyVRegs();
  if (!Error.empty())
    return Expected<std::string>::error(Error);
  layoutFrame();
  emitPrologue();
  if (!Error.empty())
    return Expected<std::string>::error(Error);
  for (const BasicBlock &B : F.Blocks) {
    emitBlock(B);
    if (!Error.empty())
      return Expected<std::string>::error(Error);
  }
  Out += formatString("\t.size\t%s, .-%s\n", F.Name.c_str(),
                      F.Name.c_str());
  return Out;
}

Expected<std::string> slade::codegen::emitX86(const IRFunction &F,
                                              const CodegenOptions &Options) {
  X86Emitter E(F, Options.Optimize);
  return E.run();
}
