//===- Mat.h - 2-D tensors with reverse-mode autograd -----------*- C++ -*-===//
///
/// \file
/// Minimal dense float machinery for the sequence-to-sequence Transformer
/// (§V-B). All activations are 2-D [rows, cols]; sequences are processed
/// one at a time (so no padding/masking plumbing is needed beyond the
/// causal mask). A Graph is a tape: ops append backward closures that run
/// in reverse on backward().
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_NN_MAT_H
#define SLADE_NN_MAT_H

#include <cassert>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

namespace slade {
namespace nn {

struct Mat {
  int R = 0, C = 0;
  std::vector<float> V; ///< Values, row-major.
  std::vector<float> G; ///< Gradients (same shape; empty for inference).

  Mat() = default;
  Mat(int R, int C, bool WithGrad = true)
      : R(R), C(C), V(static_cast<size_t>(R) * C, 0.0f) {
    if (WithGrad)
      G.assign(static_cast<size_t>(R) * C, 0.0f);
  }

  float &at(int I, int J) { return V[static_cast<size_t>(I) * C + J]; }
  float at(int I, int J) const { return V[static_cast<size_t>(I) * C + J]; }
  float &gat(int I, int J) { return G[static_cast<size_t>(I) * C + J]; }
  size_t size() const { return V.size(); }
  void zeroGrad() { std::fill(G.begin(), G.end(), 0.0f); }
};

/// Tape of operations over arena-owned intermediates.
///
/// An inference-mode Graph records no backward closures and allocates its
/// intermediates without gradient buffers, halving the memory traffic of
/// every activation on the decode hot path.
class Graph {
public:
  Graph() = default;
  explicit Graph(bool Inference) : Inference(Inference) {}

  Mat *make(int R, int C) {
    Arena.push_back(std::make_unique<Mat>(R, C, /*WithGrad=*/!Inference));
    return Arena.back().get();
  }
  void addBackward(std::function<void()> Fn) {
    if (Inference)
      return;
    Tape.push_back(std::move(Fn));
  }
  void backward() {
    for (auto It = Tape.rbegin(); It != Tape.rend(); ++It)
      (*It)();
  }
  void clear() {
    Tape.clear();
    Arena.clear();
  }
  bool inference() const { return Inference; }

private:
  std::vector<std::function<void()>> Tape;
  std::deque<std::unique_ptr<Mat>> Arena;
  bool Inference = false;
};

// -- raw kernels (no autograd) ----------------------------------------------
//
// Register-blocked, cache-tiled accumulating GEMMs. Per output element the
// reduction over K runs in increasing order, so results match a naive
// triple loop exactly when C starts zeroed (and to rounding otherwise).

/// C += A * B. A is [m,k], B is [k,n], C is [m,n].
void gemmAcc(const float *A, const float *B, float *C, int M, int K, int N);
/// C += A * B^T. A is [m,k], B is [n,k], C is [m,n].
void gemmAccNT(const float *A, const float *B, float *C, int M, int K,
               int N);
/// C += A^T * B. A is [k,m], B is [k,n], C is [m,n]. Training-backward
/// only (both operands are activations/gradients), so it has no
/// pre-packed variant.
void gemmAccTN(const float *A, const float *B, float *C, int M, int K,
               int N);

// -- pre-packed B operands ----------------------------------------------------
//
// The microkernels read B in NR-column tiles; a row-major B pays a
// strided gather per K step and gemmAccNT pays a full transpose-pack per
// call. Weight matrices are immutable between weightVersion bumps, so
// they are packed ONCE into the exact tile-major layout the kernels
// consume and reused by every subsequent GEMM (activation-side operands
// keep packing per call). Packed results are bit-identical to the
// row-major kernels: the per-element K-order contract above is
// unchanged, only the load addresses move.

/// Microkernel column-tile width (floats). Fixed by the register
/// blocking in Mat.cpp; exposed so scratch sizing and tests can name it.
constexpr int GemmTileN = 16;

/// A B operand [K, N] pre-packed tile-major: tileCount() tiles of
/// GemmTileN consecutive columns, each stored K-major
/// ([tile][K][GemmTileN], contiguous). The last tile's missing columns
/// are zero-padded so the kernels can always run full-width lanes; the
/// pad lanes are computed and discarded, never stored. Storage is
/// grow-only, so re-packing on a weight bump allocates nothing once
/// warm.
struct PackedMat {
  int K = 0, N = 0;
  std::vector<float> Tiles;
  int tileCount() const { return (N + GemmTileN - 1) / GemmTileN; }
  size_t bytes() const { return Tiles.capacity() * sizeof(float); }
};

/// Packs row-major B [K, N] into \p Out.
void packBInto(const float *B, int K, int N, PackedMat &Out);
/// Packs BT [N, K] (i.e. B^T stored row-major) into \p Out as the
/// implied [K, N] operand — the pre-pack form of gemmAccNT's B.
void packBTransposedInto(const float *BT, int N, int K, PackedMat &Out);

/// C += A * B with a pre-packed B. A is [m, B.K], C is [m, B.N].
/// Bit-identical to gemmAcc(A, B_rowmajor, C, M, B.K, B.N).
void gemmAccPacked(const float *A, const PackedMat &B, float *C, int M);
/// Column-tile range [T0, T1) of gemmAccPacked: writes only columns
/// [T0*GemmTileN, min(T1*GemmTileN, N)). Disjoint ranges touch disjoint
/// C columns, so ranges may run on different threads; each output
/// element is still a single sequential K-reduction (bit-identical at
/// any split).
void gemmAccPackedTiles(const float *A, const PackedMat &B, float *C,
                        int M, int T0, int T1);

/// gemmAccNT with a caller-owned pack scratch (grow-only) instead of
/// the implicit per-call buffer — callers on hot paths pin the scratch
/// lifetime in their state objects (EncodeScratch/BatchDecodeState).
void gemmAccNT(const float *A, const float *B, float *C, int M, int K,
               int N, PackedMat &PackScratch);

/// In-place numerically stable softmax over Row[0..N). ONE definition
/// shared by the autograd softmaxRows op and the graph-free inference
/// runtime (InferRuntime), so the training graph and the inference fast
/// path can never diverge bitwise. Vectorized (AVX2 exp) when available.
void softmaxRowInPlace(float *Row, int N);

/// LayerNorm of one row: Out[j] = (X[j] - mean) * invstd * Gamma[j] +
/// Beta[j], eps = 1e-5. Shared forward of the autograd layerNorm op, the
/// inference runtime's encoder, and the KV-cached decode paths (same
/// bit-exactness contract as softmaxRowInPlace). Mean/InvStd are reported
/// for the backward pass when requested.
void layerNormRow(const float *X, int N, const float *Gamma,
                  const float *Beta, float *Out, float *MeanOut = nullptr,
                  float *InvStdOut = nullptr);

// -- int8 row-quantized kernels (draft-model inference) ----------------------
//
// Symmetric per-row absmax quantization: Scale[i] = absmax_k(A[i][k]) / 127,
// Q[i][k] = round-to-nearest(A[i][k] / Scale[i]) clamped to [-127, 127]
// (an all-zero row gets Scale 0 and quantizes to zeros). Products stay
// within int16 and accumulate exactly in int32, so the AVX2 `maddubs`
// path and the scalar fallback produce bit-identical results. Only the
// DRAFT model's matmuls run through these — draft accuracy affects the
// speculative acceptance rate, never decode output (the full model
// re-scores every proposal in float).

/// A row-quantized int8 matrix: values plus one scale per row.
struct QuantizedMat {
  int R = 0, C = 0;
  std::vector<int8_t> Q;    ///< Row-major quantized values.
  std::vector<float> Scale; ///< Per-row dequantization scales.
};

/// Quantizes A [R,C] (row-major float) into \p Out, reusing its storage
/// (grow-only; steady-state calls allocate nothing).
void quantizeRowsI8Into(const float *A, int R, int C, QuantizedMat &Out);

/// Convenience wrapper returning a fresh QuantizedMat.
QuantizedMat quantizeRowsI8(const float *A, int R, int C);

/// C += dequant(A) * dequant(B)^T. A is [M,K] (M quantized rows), B is
/// [N,K] (N quantized rows — weights stored transposed, one row per
/// output channel), C is float row-major [M,N]. The int32 dot product is
/// exact; the only rounding is the final per-element
/// Scale[i]*Scale[j]*acc fused into C.
void gemmI8NT(const QuantizedMat &A, const QuantizedMat &B, float *C);
/// Row range [I0, I1) of gemmI8NT — the int8 parallel split unit.
/// Disjoint ranges write disjoint C rows; per-element results are
/// independent of the split (exact int32 accumulation).
void gemmI8NTRows(const QuantizedMat &A, const QuantizedMat &B, float *C,
                  int I0, int I1);

// -- autograd ops ------------------------------------------------------------

Mat *matmul(Graph &G, Mat *A, Mat *B);     ///< [m,k]x[k,n].
Mat *matmulNT(Graph &G, Mat *A, Mat *B);   ///< [m,k]x[n,k]^T -> [m,n].
Mat *add(Graph &G, Mat *A, Mat *B);        ///< Elementwise (same shape).
Mat *addRow(Graph &G, Mat *A, Mat *Bias);  ///< Bias is [1,C].
Mat *scale(Graph &G, Mat *A, float S);
Mat *relu(Graph &G, Mat *A);
Mat *layerNorm(Graph &G, Mat *A, Mat *Gamma, Mat *Beta);
/// Row-wise softmax; when Causal, entry (i,j) with j>i is masked.
Mat *softmaxRows(Graph &G, Mat *A, bool Causal);
/// Gathers rows of Table by Ids, adding rows of Pos[0..n).
Mat *embed(Graph &G, Mat *Table, Mat *Pos, const std::vector<int> &Ids);
/// Copies columns [H*Dh, (H+1)*Dh) into a [T, Dh] tensor.
Mat *sliceCols(Graph &G, Mat *A, int ColStart, int Cols);
/// Concatenates tensors with equal rows along columns.
Mat *concatCols(Graph &G, const std::vector<Mat *> &Parts);
/// Inverted-dropout mask applied in training (paper trains WITHOUT
/// dropout; this exists for the ablation bench).
Mat *dropout(Graph &G, Mat *A, float P, uint64_t *RngState);

/// Mean token cross-entropy between Logits [T,V] and Targets [T]; fills
/// dLogits on the tape. Returns the loss.
float crossEntropy(Graph &G, Mat *Logits, const std::vector<int> &Targets);

} // namespace nn
} // namespace slade

#endif // SLADE_NN_MAT_H
