//===- SimdExp.h - shared vectorized exp/reduction kernels ------*- C++ -*-===//
///
/// \file
/// The exp kernel shared by every softmax in the system: the autograd
/// softmaxRows op (training and the graph-path oracle), the graph-free
/// inference runtime's encoder softmax, and the batched decode attention.
/// Keeping ONE definition is what makes the inference fast path
/// bit-identical to the training graph: both sides call the same code, so
/// their rounding can never diverge.
///
/// expPsScalar mirrors one lane of exp256Ps operation for operation
/// (std::fma where the vector code uses fmadd, separate rounding steps
/// elsewhere), so vector blocks and scalar tails of one row agree bitwise.
/// Builds without AVX2+FMA fall back to std::exp everywhere — still one
/// definition per build, so cross-path bit-exactness holds on every
/// target.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_NN_SIMDEXP_H
#define SLADE_NN_SIMDEXP_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace slade {
namespace nn {

#if defined(__AVX2__) && defined(__FMA__)
#define SLADE_SIMD_EXP 1

/// Polynomial expf (Cephes coefficients, ~1e-7 relative error), 8-wide.
/// Used inside softmax where the argument is <= 0; the clamp keeps
/// denormal/overflow inputs finite.
inline __m256 exp256Ps(__m256 X) {
  const __m256 Hi = _mm256_set1_ps(88.3762626647950f);
  const __m256 Lo = _mm256_set1_ps(-87.3365478515625f);
  X = _mm256_min_ps(_mm256_max_ps(X, Lo), Hi);
  const __m256 Log2E = _mm256_set1_ps(1.44269504088896341f);
  __m256 Fx = _mm256_round_ps(_mm256_mul_ps(X, Log2E),
                              _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  X = _mm256_fnmadd_ps(Fx, _mm256_set1_ps(0.693359375f), X);
  X = _mm256_fnmadd_ps(Fx, _mm256_set1_ps(-2.12194440e-4f), X);
  __m256 Y = _mm256_set1_ps(1.9875691500e-4f);
  Y = _mm256_fmadd_ps(Y, X, _mm256_set1_ps(1.3981999507e-3f));
  Y = _mm256_fmadd_ps(Y, X, _mm256_set1_ps(8.3334519073e-3f));
  Y = _mm256_fmadd_ps(Y, X, _mm256_set1_ps(4.1665795894e-2f));
  Y = _mm256_fmadd_ps(Y, X, _mm256_set1_ps(1.6666665459e-1f));
  Y = _mm256_fmadd_ps(Y, X, _mm256_set1_ps(5.0000001201e-1f));
  __m256 X2 = _mm256_mul_ps(X, X);
  Y = _mm256_fmadd_ps(Y, X2, _mm256_add_ps(X, _mm256_set1_ps(1.0f)));
  __m256i N = _mm256_cvtps_epi32(Fx);
  N = _mm256_slli_epi32(_mm256_add_epi32(N, _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(Y, _mm256_castsi256_ps(N));
}

/// One lane of exp256Ps, operation for operation: explicit std::fma where
/// the vector code fuses, separate rounding steps where it does not. Row
/// tails computed here agree bitwise with the vector blocks.
inline float expPsScalar(float X) {
  X = std::min(std::max(X, -87.3365478515625f), 88.3762626647950f);
  float Fx = std::nearbyintf(X * 1.44269504088896341f);
  X = std::fma(-Fx, 0.693359375f, X);
  X = std::fma(-Fx, -2.12194440e-4f, X);
  float Y = 1.9875691500e-4f;
  Y = std::fma(Y, X, 1.3981999507e-3f);
  Y = std::fma(Y, X, 8.3334519073e-3f);
  Y = std::fma(Y, X, 4.1665795894e-2f);
  Y = std::fma(Y, X, 1.6666665459e-1f);
  Y = std::fma(Y, X, 5.0000001201e-1f);
  float X2 = X * X;
  Y = std::fma(Y, X2, X + 1.0f);
  int32_t N = static_cast<int32_t>(Fx); // Fx is integral after the round.
  uint32_t Bits = static_cast<uint32_t>(N + 127) << 23;
  float Pow2;
  std::memcpy(&Pow2, &Bits, sizeof(float));
  return Y * Pow2;
}

inline float hsum256(__m256 V) {
  __m128 S = _mm_add_ps(_mm256_castps256_ps128(V),
                        _mm256_extractf128_ps(V, 1));
  S = _mm_add_ps(S, _mm_movehl_ps(S, S));
  S = _mm_add_ss(S, _mm_movehdup_ps(S));
  return _mm_cvtss_f32(S);
}

inline float hmax256(__m256 V) {
  __m128 S = _mm_max_ps(_mm256_castps256_ps128(V),
                        _mm256_extractf128_ps(V, 1));
  S = _mm_max_ps(S, _mm_movehl_ps(S, S));
  S = _mm_max_ss(S, _mm_movehdup_ps(S));
  return _mm_cvtss_f32(S);
}

#else // !(__AVX2__ && __FMA__)

/// Scalar fallback: std::exp. Slower, but every softmax in the build uses
/// it, so the graph path and the inference runtime still agree bitwise.
inline float expPsScalar(float X) { return std::exp(X); }

#endif

} // namespace nn
} // namespace slade

#endif // SLADE_NN_SIMDEXP_H
