//===- Beam.cpp - beam search decoding ----------------------------------------===//

#include "nn/Beam.h"

#include "nn/BeamCore.h"
#include "nn/SpecDecode.h"

#include <algorithm>
#include <cmath>

using namespace slade;
using namespace slade::nn;
// The per-source selection/retirement logic lives in nn/BeamCore.h so the
// serve engine's continuous-batching driver shares it verbatim.
using namespace slade::nn::beamcore;

namespace {

/// The search loop, shared by the batched and sequential paths. A Stepper
/// exposes:
///   int start()                      - run the BOS step, return live count
///   const float *logits(int Beam)    - next-token logits of a live beam
///   void advance(SrcIdx, Tokens)     - survivor-select then step once
///   int vocab()
template <typename Stepper>
std::vector<Hypothesis> beamSearchImpl(Stepper &Step, const BeamConfig &Cfg) {
  std::vector<BeamMeta> Live(1);
  Step.start();
  std::vector<Hypothesis> Done;
  SelectScratch S;
  ConstraintCtx CC;
  CC.init(Cfg);

  for (int It = 0; It < Cfg.MaxLen && !Live.empty(); ++It) {
    SelectResult R = selectBeamStep(
        Live, Done,
        [&](size_t BI) { return Step.logits(static_cast<int>(BI)); },
        Step.vocab(), Cfg, S, &CC);
    if (R.StopNow)
      break;
    if (!Live.empty())
      Step.advance(R.SrcIdx, R.Tokens);
  }
  return finalizeBeams(std::move(Live), std::move(Done), Cfg, &CC);
}

/// Batched stepper: one BatchDecodeState, survivor selection is an
/// index-gather over the contiguous self-cache rows.
struct BatchedStepper {
  const Transformer &Model;
  Transformer::BatchDecodeState St;
  std::vector<float> Logits; ///< [B, Vocab].

  BatchedStepper(const Transformer &Model, const std::vector<int> &Src,
                 const BeamConfig &Cfg)
      : BatchedStepper(Model, Model.encodeSource(Src), Cfg) {}
  BatchedStepper(const Transformer &Model,
                 std::shared_ptr<const Transformer::EncoderCache> Enc,
                 const BeamConfig &Cfg)
      : Model(Model), St(Model.startDecodeBatch(std::move(Enc),
                                                Cfg.BeamSize,
                                                Cfg.MaxLen + 1)) {}

  void start() { Logits = Model.stepDecodeBatch(St, {Transformer::BosId}); }
  const float *logits(int Beam) const {
    return Logits.data() +
           static_cast<size_t>(Beam) * Model.config().Vocab;
  }
  int vocab() const { return Model.config().Vocab; }
  void advance(const std::vector<int> &SrcIdx,
               const std::vector<int> &Tokens) {
    Model.reorderBeams(St, SrcIdx);
    Logits = Model.stepDecodeBatch(St, Tokens);
  }
};

/// Sequential stepper: per-beam DecodeStates, deep-copied on survivor
/// selection (the pre-batching behavior, retained as reference/baseline).
struct SequentialStepper {
  const Transformer &Model;
  std::vector<Transformer::DecodeState> States;
  std::vector<std::vector<float>> Logits;

  SequentialStepper(const Transformer &Model, const std::vector<int> &Src,
                    const BeamConfig &)
      : Model(Model) {
    States.push_back(Model.startDecode(Src));
  }

  void start() {
    Logits.resize(1);
    Logits[0] = Model.stepDecode(States[0], Transformer::BosId);
  }
  const float *logits(int Beam) const {
    return Logits[static_cast<size_t>(Beam)].data();
  }
  int vocab() const { return Model.config().Vocab; }
  void advance(const std::vector<int> &SrcIdx,
               const std::vector<int> &Tokens) {
    std::vector<Transformer::DecodeState> NextStates;
    std::vector<std::vector<float>> NextLogits;
    for (size_t I = 0; I < SrcIdx.size(); ++I) {
      Transformer::DecodeState S =
          States[static_cast<size_t>(SrcIdx[I])]; // Full KV-cache copy.
      NextLogits.push_back(Model.stepDecode(S, Tokens[I]));
      NextStates.push_back(std::move(S));
    }
    States = std::move(NextStates);
    Logits = std::move(NextLogits);
  }
};

/// Speculative multi-source driver: the same fused state and per-source
/// search state as beamSearchMulti, but every decode step runs through
/// SpecSession propose/verify rounds. Byte-identical to the plain
/// drivers: every committed selection is a selectBeamStep over exact
/// full-model logits (a round with gamma 0 IS a plain step), the draft
/// only changes how many exact steps one batched call yields.
std::vector<std::vector<Hypothesis>> beamSearchSpecMulti(
    const Transformer &Model,
    const std::vector<std::shared_ptr<const Transformer::EncoderCache>>
        &Sources,
    const BeamConfig &Cfg) {
  size_t N = Sources.size();
  std::vector<std::vector<Hypothesis>> Out(N);
  if (N == 0)
    return Out;

  Transformer::BatchDecodeState St =
      Model.startDecodeBatchMulti(Sources, Cfg.BeamSize, Cfg.MaxLen + 1);
  SpecSession Sess(Model, *Cfg.Draft);
  Sess.initBatch(Sources, Cfg.BeamSize, Cfg.MaxLen + 1);

  struct JobSearch {
    std::vector<BeamMeta> Live;
    std::vector<Hypothesis> Done;
    ConstraintCtx CC;
    SpecSession::Job SJ;
    bool Active = true;
  };
  std::vector<JobSearch> Jobs(N);
  for (size_t J = 0; J < N; ++J) {
    JobSearch &JS = Jobs[J];
    JS.Live.resize(1); // The BOS hypothesis; its feed is the first round's
                       // pending selection (SJ's default {0} -> {BOS}).
    JS.CC.init(Cfg);
    JS.SJ.Seg = static_cast<int>(J);
    JS.SJ.Live = &JS.Live;
    JS.SJ.Done = &JS.Done;
    JS.SJ.CC = &JS.CC;
    JS.SJ.Gamma = Cfg.DraftGamma;
    JS.Active = Cfg.MaxLen > 0; // Zero budget decodes nothing, as plain.
  }

  SpecStats Stats;
  std::vector<SpecSession::Job *> LiveJobs;
  for (;;) {
    LiveJobs.clear();
    for (JobSearch &JS : Jobs)
      if (JS.Active)
        LiveJobs.push_back(&JS.SJ);
    if (LiveJobs.empty())
      break;
    Sess.runRound(St, LiveJobs, Cfg, Stats);
    for (JobSearch &JS : Jobs)
      if (JS.Active && JS.SJ.Finished)
        JS.Active = false;
  }
  if (Cfg.SpecTelemetry) {
    Cfg.SpecTelemetry->Proposed += Stats.Proposed;
    Cfg.SpecTelemetry->Accepted += Stats.Accepted;
    Cfg.SpecTelemetry->Rounds += Stats.Rounds;
    Cfg.SpecTelemetry->DraftSeconds += Stats.DraftSeconds;
  }

  for (size_t J = 0; J < N; ++J)
    Out[J] = finalizeBeams(std::move(Jobs[J].Live), std::move(Jobs[J].Done),
                           Cfg, &Jobs[J].CC);
  return Out;
}

bool speculative(const BeamConfig &Cfg) {
  return Cfg.Draft != nullptr && Cfg.DraftGamma > 0;
}

} // namespace

std::vector<Hypothesis> slade::nn::beamSearch(const Transformer &Model,
                                              const std::vector<int> &Src,
                                              const BeamConfig &Cfg) {
  if (speculative(Cfg))
    return beamSearch(Model, Model.encodeSource(Src), Cfg);
  BatchedStepper Step(Model, Src, Cfg);
  return beamSearchImpl(Step, Cfg);
}

std::vector<Hypothesis>
slade::nn::beamSearch(const Transformer &Model,
                      std::shared_ptr<const Transformer::EncoderCache> Enc,
                      const BeamConfig &Cfg) {
  if (speculative(Cfg))
    return beamSearchSpecMulti(Model, {std::move(Enc)}, Cfg)[0];
  BatchedStepper Step(Model, std::move(Enc), Cfg);
  return beamSearchImpl(Step, Cfg);
}

std::vector<std::vector<Hypothesis>> slade::nn::beamSearchMulti(
    const Transformer &Model,
    const std::vector<std::shared_ptr<const Transformer::EncoderCache>>
        &Sources,
    const BeamConfig &Cfg) {
  if (speculative(Cfg))
    return beamSearchSpecMulti(Model, Sources, Cfg);
  size_t N = Sources.size();
  std::vector<std::vector<Hypothesis>> Out(N);
  if (N == 0)
    return Out;

  // One fused state: row i starts as source i's BOS beam; each source may
  // grow to BeamSize rows. The per-source search below makes exactly the
  // decisions beamSearchImpl would make for that source alone — per-row
  // step results are independent of the other rows in the batch, and the
  // selection logic is shared — so the outputs are byte-identical to N
  // independent beamSearch calls.
  Transformer::BatchDecodeState St =
      Model.startDecodeBatchMulti(Sources, Cfg.BeamSize, Cfg.MaxLen + 1);
  std::vector<float> Logits = Model.stepDecodeBatch(
      St, std::vector<int>(N, Transformer::BosId));
  int Vocab = Model.config().Vocab;

  struct JobSearch {
    std::vector<BeamMeta> Live;
    std::vector<Hypothesis> Done;
    ConstraintCtx CC;
    bool Active = true;
  };
  std::vector<JobSearch> Jobs(N);
  for (JobSearch &J : Jobs) {
    J.Live.resize(1);
    J.CC.init(Cfg);
  }

  SelectScratch S;
  std::vector<int> SrcIdx, Tokens; // Global (state-row) survivor indices.
  for (int It = 0; It < Cfg.MaxLen; ++It) {
    SrcIdx.clear();
    Tokens.clear();
    int RowBase = 0; // This source's first row in the current batch.
    for (JobSearch &Job : Jobs) {
      if (!Job.Active)
        continue;
      int Rows = static_cast<int>(Job.Live.size());
      SelectResult R = selectBeamStep(
          Job.Live, Job.Done,
          [&](size_t BI) {
            return Logits.data() +
                   (static_cast<size_t>(RowBase) + BI) * Vocab;
          },
          Vocab, Cfg, S, &Job.CC);
      if (R.StopNow || Job.Live.empty()) {
        Job.Active = false; // Rows drop out of the batch at the reorder.
      } else {
        for (int Idx : R.SrcIdx)
          SrcIdx.push_back(RowBase + Idx);
        Tokens.insert(Tokens.end(), R.Tokens.begin(), R.Tokens.end());
      }
      RowBase += Rows;
    }
    if (SrcIdx.empty())
      break; // Every source finished.
    Model.reorderBeams(St, SrcIdx);
    Logits = Model.stepDecodeBatch(St, Tokens);
  }

  for (size_t J = 0; J < N; ++J)
    Out[J] = finalizeBeams(std::move(Jobs[J].Live),
                           std::move(Jobs[J].Done), Cfg, &Jobs[J].CC);
  return Out;
}

std::vector<Hypothesis>
slade::nn::beamSearchSequential(const Transformer &Model,
                                const std::vector<int> &Src,
                                const BeamConfig &Cfg) {
  SequentialStepper Step(Model, Src, Cfg);
  return beamSearchImpl(Step, Cfg);
}

std::vector<int> slade::nn::greedyDecode(const Transformer &Model,
                                         const std::vector<int> &Src,
                                         int MaxLen) {
  Transformer::BatchDecodeState St =
      Model.startDecodeBatch(Model.encodeSource(Src), 1, MaxLen + 1);
  std::vector<float> Logits =
      Model.stepDecodeBatch(St, {Transformer::BosId});
  std::vector<int> Out;
  for (int Step = 0; Step < MaxLen; ++Step) {
    int Best = 0;
    for (size_t I = 1; I < Logits.size(); ++I)
      if (Logits[I] > Logits[static_cast<size_t>(Best)])
        Best = static_cast<int>(I);
    if (Best == Transformer::EosId || Best == Transformer::PadId)
      break;
    Out.push_back(Best);
    Logits = Model.stepDecodeBatch(St, {Best});
  }
  return Out;
}
