//===- Beam.cpp - beam search decoding ----------------------------------------===//

#include "nn/Beam.h"

#include <algorithm>
#include <cmath>

using namespace slade;
using namespace slade::nn;

namespace {

/// Log-softmax into a reused output buffer.
void logSoftmax(const float *Logits, int V, std::vector<float> &Out) {
  float MaxV = -1e30f;
  for (int I = 0; I < V; ++I)
    MaxV = std::max(MaxV, Logits[I]);
  double Sum = 0;
  for (int I = 0; I < V; ++I)
    Sum += std::exp(static_cast<double>(Logits[I] - MaxV));
  float LogZ = MaxV + static_cast<float>(std::log(Sum));
  Out.resize(static_cast<size_t>(V));
  for (int I = 0; I < V; ++I)
    Out[static_cast<size_t>(I)] = Logits[I] - LogZ;
}

/// Top-K token indices by (log-prob desc, index asc) via a bounded
/// min-heap: O(V log K), no vocab-sized index vector, scratch reused
/// across beams and steps.
void topK(const std::vector<float> &LogP, int K,
          std::vector<std::pair<float, int>> &Heap, std::vector<int> &Out) {
  int V = static_cast<int>(LogP.size());
  K = std::min(K, V);
  // "Better" orders by higher log-prob, ties to the lower token id.
  auto Better = [](const std::pair<float, int> &A,
                   const std::pair<float, int> &B) {
    return A.first > B.first || (A.first == B.first && A.second < B.second);
  };
  Heap.clear();
  for (int I = 0; I < V; ++I) {
    std::pair<float, int> Cand{LogP[static_cast<size_t>(I)], I};
    if (static_cast<int>(Heap.size()) < K) {
      Heap.push_back(Cand);
      std::push_heap(Heap.begin(), Heap.end(), Better);
    } else if (Better(Cand, Heap.front())) {
      std::pop_heap(Heap.begin(), Heap.end(), Better);
      Heap.back() = Cand;
      std::push_heap(Heap.begin(), Heap.end(), Better);
    }
  }
  std::sort_heap(Heap.begin(), Heap.end(), Better); // Best first.
  Out.clear();
  for (const auto &P : Heap)
    Out.push_back(P.second);
}

struct Cand {
  float Score;
  int BeamIdx;
  int Token;
};

struct BeamMeta {
  std::vector<int> Tokens;
  float Score = 0;
};

struct SelectScratch {
  std::vector<float> LogP;
  std::vector<std::pair<float, int>> Heap;
  std::vector<int> Top;
  std::vector<Cand> Cands;
};

struct SelectResult {
  std::vector<int> SrcIdx; ///< Parent beam index (local) per survivor.
  std::vector<int> Tokens; ///< Token fed to each survivor.
  /// The finished-hypothesis quota was reached: the caller must stop
  /// stepping and penalize the PRE-expansion Live set (left untouched).
  bool StopNow = false;
};

/// One expansion step for one source's beams: log-softmax + top-k per
/// live beam, deterministic candidate ordering (score desc, then beam,
/// then token — ties never diverge between decode paths), EOS/PAD
/// candidates retire into \p Done, survivors replace \p Live. Shared by
/// the single-source search loop and the cross-request multi driver, so
/// their per-source decisions are the same code.
template <typename LogitsOf>
SelectResult selectBeamStep(std::vector<BeamMeta> &Live,
                            std::vector<Hypothesis> &Done,
                            const LogitsOf &Logits, int Vocab,
                            const BeamConfig &Cfg, SelectScratch &S) {
  SelectResult R;
  S.Cands.clear();
  for (size_t BI = 0; BI < Live.size(); ++BI) {
    logSoftmax(Logits(BI), Vocab, S.LogP);
    topK(S.LogP, Cfg.BeamSize, S.Heap, S.Top);
    for (int Tok : S.Top)
      S.Cands.push_back({Live[BI].Score + S.LogP[static_cast<size_t>(Tok)],
                         static_cast<int>(BI), Tok});
  }
  std::sort(S.Cands.begin(), S.Cands.end(),
            [](const Cand &A, const Cand &B) {
              if (A.Score != B.Score)
                return A.Score > B.Score;
              if (A.BeamIdx != B.BeamIdx)
                return A.BeamIdx < B.BeamIdx;
              return A.Token < B.Token;
            });

  std::vector<BeamMeta> Next;
  for (const Cand &C : S.Cands) {
    if (static_cast<int>(Next.size()) >= Cfg.BeamSize)
      break;
    if (C.Token == Transformer::EosId || C.Token == Transformer::PadId) {
      Hypothesis H;
      H.Tokens = Live[static_cast<size_t>(C.BeamIdx)].Tokens;
      float Len = static_cast<float>(H.Tokens.size()) + 1.0f;
      H.Score = C.Score / std::pow(Len, Cfg.LengthPenalty);
      Done.push_back(std::move(H));
      continue;
    }
    BeamMeta M;
    M.Tokens = Live[static_cast<size_t>(C.BeamIdx)].Tokens;
    M.Tokens.push_back(C.Token);
    M.Score = C.Score;
    Next.push_back(std::move(M));
    R.SrcIdx.push_back(C.BeamIdx);
    R.Tokens.push_back(C.Token);
  }
  if (static_cast<int>(Done.size()) >= Cfg.BeamSize) {
    R.StopNow = true; // Pre-expansion Live falls through penalized.
    return R;
  }
  Live = std::move(Next);
  return R;
}

/// Unfinished beams become (penalized) hypotheses so we always return
/// something; then sort best-first and cap at BeamSize.
std::vector<Hypothesis> finalizeBeams(std::vector<BeamMeta> &&Live,
                                      std::vector<Hypothesis> &&Done,
                                      const BeamConfig &Cfg) {
  for (BeamMeta &M : Live) {
    Hypothesis H;
    H.Tokens = std::move(M.Tokens);
    float Len = static_cast<float>(H.Tokens.size()) + 1.0f;
    H.Score = (M.Score - 5.0f) / std::pow(Len, Cfg.LengthPenalty);
    Done.push_back(std::move(H));
  }
  std::sort(Done.begin(), Done.end(),
            [](const Hypothesis &A, const Hypothesis &B) {
              if (A.Score != B.Score)
                return A.Score > B.Score;
              return A.Tokens < B.Tokens;
            });
  if (static_cast<int>(Done.size()) > Cfg.BeamSize)
    Done.resize(static_cast<size_t>(Cfg.BeamSize));
  return std::move(Done);
}

/// The search loop, shared by the batched and sequential paths. A Stepper
/// exposes:
///   int start()                      - run the BOS step, return live count
///   const float *logits(int Beam)    - next-token logits of a live beam
///   void advance(SrcIdx, Tokens)     - survivor-select then step once
///   int vocab()
template <typename Stepper>
std::vector<Hypothesis> beamSearchImpl(Stepper &Step, const BeamConfig &Cfg) {
  std::vector<BeamMeta> Live(1);
  Step.start();
  std::vector<Hypothesis> Done;
  SelectScratch S;

  for (int It = 0; It < Cfg.MaxLen && !Live.empty(); ++It) {
    SelectResult R = selectBeamStep(
        Live, Done,
        [&](size_t BI) { return Step.logits(static_cast<int>(BI)); },
        Step.vocab(), Cfg, S);
    if (R.StopNow)
      break;
    if (!Live.empty())
      Step.advance(R.SrcIdx, R.Tokens);
  }
  return finalizeBeams(std::move(Live), std::move(Done), Cfg);
}

/// Batched stepper: one BatchDecodeState, survivor selection is an
/// index-gather over the contiguous self-cache rows.
struct BatchedStepper {
  const Transformer &Model;
  Transformer::BatchDecodeState St;
  std::vector<float> Logits; ///< [B, Vocab].

  BatchedStepper(const Transformer &Model, const std::vector<int> &Src,
                 const BeamConfig &Cfg)
      : BatchedStepper(Model, Model.encodeSource(Src), Cfg) {}
  BatchedStepper(const Transformer &Model,
                 std::shared_ptr<const Transformer::EncoderCache> Enc,
                 const BeamConfig &Cfg)
      : Model(Model), St(Model.startDecodeBatch(std::move(Enc),
                                                Cfg.BeamSize,
                                                Cfg.MaxLen + 1)) {}

  void start() { Logits = Model.stepDecodeBatch(St, {Transformer::BosId}); }
  const float *logits(int Beam) const {
    return Logits.data() +
           static_cast<size_t>(Beam) * Model.config().Vocab;
  }
  int vocab() const { return Model.config().Vocab; }
  void advance(const std::vector<int> &SrcIdx,
               const std::vector<int> &Tokens) {
    Model.reorderBeams(St, SrcIdx);
    Logits = Model.stepDecodeBatch(St, Tokens);
  }
};

/// Sequential stepper: per-beam DecodeStates, deep-copied on survivor
/// selection (the pre-batching behavior, retained as reference/baseline).
struct SequentialStepper {
  const Transformer &Model;
  std::vector<Transformer::DecodeState> States;
  std::vector<std::vector<float>> Logits;

  SequentialStepper(const Transformer &Model, const std::vector<int> &Src,
                    const BeamConfig &)
      : Model(Model) {
    States.push_back(Model.startDecode(Src));
  }

  void start() {
    Logits.resize(1);
    Logits[0] = Model.stepDecode(States[0], Transformer::BosId);
  }
  const float *logits(int Beam) const {
    return Logits[static_cast<size_t>(Beam)].data();
  }
  int vocab() const { return Model.config().Vocab; }
  void advance(const std::vector<int> &SrcIdx,
               const std::vector<int> &Tokens) {
    std::vector<Transformer::DecodeState> NextStates;
    std::vector<std::vector<float>> NextLogits;
    for (size_t I = 0; I < SrcIdx.size(); ++I) {
      Transformer::DecodeState S =
          States[static_cast<size_t>(SrcIdx[I])]; // Full KV-cache copy.
      NextLogits.push_back(Model.stepDecode(S, Tokens[I]));
      NextStates.push_back(std::move(S));
    }
    States = std::move(NextStates);
    Logits = std::move(NextLogits);
  }
};

} // namespace

std::vector<Hypothesis> slade::nn::beamSearch(const Transformer &Model,
                                              const std::vector<int> &Src,
                                              const BeamConfig &Cfg) {
  BatchedStepper Step(Model, Src, Cfg);
  return beamSearchImpl(Step, Cfg);
}

std::vector<Hypothesis>
slade::nn::beamSearch(const Transformer &Model,
                      std::shared_ptr<const Transformer::EncoderCache> Enc,
                      const BeamConfig &Cfg) {
  BatchedStepper Step(Model, std::move(Enc), Cfg);
  return beamSearchImpl(Step, Cfg);
}

std::vector<std::vector<Hypothesis>> slade::nn::beamSearchMulti(
    const Transformer &Model,
    const std::vector<std::shared_ptr<const Transformer::EncoderCache>>
        &Sources,
    const BeamConfig &Cfg) {
  size_t N = Sources.size();
  std::vector<std::vector<Hypothesis>> Out(N);
  if (N == 0)
    return Out;

  // One fused state: row i starts as source i's BOS beam; each source may
  // grow to BeamSize rows. The per-source search below makes exactly the
  // decisions beamSearchImpl would make for that source alone — per-row
  // step results are independent of the other rows in the batch, and the
  // selection logic is shared — so the outputs are byte-identical to N
  // independent beamSearch calls.
  Transformer::BatchDecodeState St =
      Model.startDecodeBatchMulti(Sources, Cfg.BeamSize, Cfg.MaxLen + 1);
  std::vector<float> Logits = Model.stepDecodeBatch(
      St, std::vector<int>(N, Transformer::BosId));
  int Vocab = Model.config().Vocab;

  struct JobSearch {
    std::vector<BeamMeta> Live;
    std::vector<Hypothesis> Done;
    bool Active = true;
  };
  std::vector<JobSearch> Jobs(N);
  for (JobSearch &J : Jobs)
    J.Live.resize(1);

  SelectScratch S;
  std::vector<int> SrcIdx, Tokens; // Global (state-row) survivor indices.
  for (int It = 0; It < Cfg.MaxLen; ++It) {
    SrcIdx.clear();
    Tokens.clear();
    int RowBase = 0; // This source's first row in the current batch.
    for (JobSearch &Job : Jobs) {
      if (!Job.Active)
        continue;
      int Rows = static_cast<int>(Job.Live.size());
      SelectResult R = selectBeamStep(
          Job.Live, Job.Done,
          [&](size_t BI) {
            return Logits.data() +
                   (static_cast<size_t>(RowBase) + BI) * Vocab;
          },
          Vocab, Cfg, S);
      if (R.StopNow || Job.Live.empty()) {
        Job.Active = false; // Rows drop out of the batch at the reorder.
      } else {
        for (int Idx : R.SrcIdx)
          SrcIdx.push_back(RowBase + Idx);
        Tokens.insert(Tokens.end(), R.Tokens.begin(), R.Tokens.end());
      }
      RowBase += Rows;
    }
    if (SrcIdx.empty())
      break; // Every source finished.
    Model.reorderBeams(St, SrcIdx);
    Logits = Model.stepDecodeBatch(St, Tokens);
  }

  for (size_t J = 0; J < N; ++J)
    Out[J] = finalizeBeams(std::move(Jobs[J].Live),
                           std::move(Jobs[J].Done), Cfg);
  return Out;
}

std::vector<Hypothesis>
slade::nn::beamSearchSequential(const Transformer &Model,
                                const std::vector<int> &Src,
                                const BeamConfig &Cfg) {
  SequentialStepper Step(Model, Src, Cfg);
  return beamSearchImpl(Step, Cfg);
}

std::vector<int> slade::nn::greedyDecode(const Transformer &Model,
                                         const std::vector<int> &Src,
                                         int MaxLen) {
  Transformer::BatchDecodeState St =
      Model.startDecodeBatch(Model.encodeSource(Src), 1, MaxLen + 1);
  std::vector<float> Logits =
      Model.stepDecodeBatch(St, {Transformer::BosId});
  std::vector<int> Out;
  for (int Step = 0; Step < MaxLen; ++Step) {
    int Best = 0;
    for (size_t I = 1; I < Logits.size(); ++I)
      if (Logits[I] > Logits[static_cast<size_t>(Best)])
        Best = static_cast<int>(I);
    if (Best == Transformer::EosId || Best == Transformer::PadId)
      break;
    Out.push_back(Best);
    Logits = Model.stepDecodeBatch(St, {Best});
  }
  return Out;
}
