//===- Beam.cpp - beam search decoding ----------------------------------------===//

#include "nn/Beam.h"

#include <algorithm>
#include <cmath>

using namespace slade;
using namespace slade::nn;

namespace {

/// Log-softmax over raw logits (in place copy).
std::vector<float> logSoftmax(const std::vector<float> &Logits) {
  float MaxV = -1e30f;
  for (float L : Logits)
    MaxV = std::max(MaxV, L);
  double Sum = 0;
  for (float L : Logits)
    Sum += std::exp(static_cast<double>(L - MaxV));
  float LogZ = MaxV + static_cast<float>(std::log(Sum));
  std::vector<float> Out(Logits.size());
  for (size_t I = 0; I < Logits.size(); ++I)
    Out[I] = Logits[I] - LogZ;
  return Out;
}

struct Beam {
  Transformer::DecodeState State;
  std::vector<int> Tokens;
  float Score = 0;
  std::vector<float> NextLogits;
};

} // namespace

std::vector<Hypothesis> slade::nn::beamSearch(const Transformer &Model,
                                              const std::vector<int> &Src,
                                              const BeamConfig &Cfg) {
  std::vector<Beam> Live;
  {
    Beam B;
    B.State = Model.startDecode(Src);
    B.NextLogits = Model.stepDecode(B.State, Transformer::BosId);
    Live.push_back(std::move(B));
  }
  std::vector<Hypothesis> Done;

  for (int Step = 0; Step < Cfg.MaxLen && !Live.empty(); ++Step) {
    struct Cand {
      float Score;
      size_t BeamIdx;
      int Token;
    };
    std::vector<Cand> Cands;
    for (size_t BI = 0; BI < Live.size(); ++BI) {
      std::vector<float> LogP = logSoftmax(Live[BI].NextLogits);
      // Top BeamSize tokens of this beam.
      std::vector<int> Idx(LogP.size());
      for (size_t I = 0; I < Idx.size(); ++I)
        Idx[I] = static_cast<int>(I);
      size_t K = std::min<size_t>(static_cast<size_t>(Cfg.BeamSize),
                                  Idx.size());
      std::partial_sort(Idx.begin(), Idx.begin() + static_cast<long>(K),
                        Idx.end(), [&](int A, int B) {
                          return LogP[static_cast<size_t>(A)] >
                                 LogP[static_cast<size_t>(B)];
                        });
      for (size_t I = 0; I < K; ++I)
        Cands.push_back({Live[BI].Score + LogP[static_cast<size_t>(Idx[I])],
                         BI, Idx[I]});
    }
    std::sort(Cands.begin(), Cands.end(),
              [](const Cand &A, const Cand &B) { return A.Score > B.Score; });

    std::vector<Beam> Next;
    for (const Cand &C : Cands) {
      if (static_cast<int>(Next.size()) >= Cfg.BeamSize)
        break;
      if (C.Token == Transformer::EosId ||
          C.Token == Transformer::PadId) {
        Hypothesis H;
        H.Tokens = Live[C.BeamIdx].Tokens;
        float Len = static_cast<float>(H.Tokens.size()) + 1.0f;
        H.Score = C.Score / std::pow(Len, Cfg.LengthPenalty);
        Done.push_back(std::move(H));
        continue;
      }
      Beam B;
      B.State = Live[C.BeamIdx].State; // Copy of the KV cache.
      B.Tokens = Live[C.BeamIdx].Tokens;
      B.Tokens.push_back(C.Token);
      B.Score = C.Score;
      B.NextLogits = Model.stepDecode(B.State, C.Token);
      Next.push_back(std::move(B));
    }
    if (static_cast<int>(Done.size()) >= Cfg.BeamSize)
      break;
    Live = std::move(Next);
  }

  // Unfinished beams become (penalized) hypotheses so we always return
  // something.
  for (Beam &B : Live) {
    Hypothesis H;
    H.Tokens = std::move(B.Tokens);
    float Len = static_cast<float>(H.Tokens.size()) + 1.0f;
    H.Score = (B.Score - 5.0f) / std::pow(Len, Cfg.LengthPenalty);
    Done.push_back(std::move(H));
  }
  std::sort(Done.begin(), Done.end(),
            [](const Hypothesis &A, const Hypothesis &B) {
              return A.Score > B.Score;
            });
  if (static_cast<int>(Done.size()) > Cfg.BeamSize)
    Done.resize(static_cast<size_t>(Cfg.BeamSize));
  return Done;
}

std::vector<int> slade::nn::greedyDecode(const Transformer &Model,
                                         const std::vector<int> &Src,
                                         int MaxLen) {
  Transformer::DecodeState St = Model.startDecode(Src);
  std::vector<float> Logits = Model.stepDecode(St, Transformer::BosId);
  std::vector<int> Out;
  for (int Step = 0; Step < MaxLen; ++Step) {
    int Best = 0;
    for (size_t I = 1; I < Logits.size(); ++I)
      if (Logits[I] > Logits[static_cast<size_t>(Best)])
        Best = static_cast<int>(I);
    if (Best == Transformer::EosId || Best == Transformer::PadId)
      break;
    Out.push_back(Best);
    Logits = Model.stepDecode(St, Best);
  }
  return Out;
}
