//===- InferRuntime.cpp - graph-free inference runtime ------------------------===//

#include "nn/InferRuntime.h"

#include "nn/SimdExp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <mutex>

using namespace slade;
using namespace slade::nn;

//===----------------------------------------------------------------------===//
// EncodeScratch arena + process-wide pool
//===----------------------------------------------------------------------===//

void EncodeScratch::ensure(const TransformerConfig &Cfg, int T) {
  size_t Tz = static_cast<size_t>(T);
  size_t D = static_cast<size_t>(Cfg.DModel);
  size_t Dh = D / static_cast<size_t>(Cfg.NHeads);
  auto Grow = [](std::vector<float> &V, size_t N) {
    if (V.size() < N)
      V.resize(N);
  };
  Grow(X, Tz * D);
  Grow(Norm, Tz * D);
  Grow(Q, Tz * D);
  Grow(K, Tz * D);
  Grow(V, Tz * D);
  Grow(Qh, Tz * Dh);
  Grow(Kh, Tz * Dh);
  Grow(Vh, Tz * Dh);
  Grow(Scores, Tz * Tz);
  Grow(HeadOut, Tz * Dh);
  Grow(Attn, Tz * D);
  Grow(Proj, Tz * D);
  Grow(FF1, Tz * static_cast<size_t>(Cfg.FF));
}

size_t EncodeScratch::bytes() const {
  size_t B = 0;
  for (const std::vector<float> *Buf :
       {&X, &Norm, &Q, &K, &V, &Qh, &Kh, &Vh, &Scores, &HeadOut, &Attn,
        &Proj, &FF1})
    B += Buf->capacity() * sizeof(float);
  B += PackB.bytes();
  return B;
}

namespace {

/// Idle arenas waiting for the next encode. Bounded so a burst of
/// concurrent encodes cannot pin unbounded memory; arenas past the bound
/// are simply freed.
struct ScratchPool {
  std::mutex Mu;
  std::vector<std::unique_ptr<EncodeScratch>> Free;
  size_t RetainedBytes = 0;
};

ScratchPool &scratchPool() {
  static ScratchPool P;
  return P;
}

constexpr size_t MaxPooledScratches = 8;

/// RAII lease: pop an arena from the pool (or create one), return it on
/// destruction.
struct ScratchLease {
  std::unique_ptr<EncodeScratch> S;
  ScratchLease() {
    ScratchPool &P = scratchPool();
    std::lock_guard<std::mutex> Lock(P.Mu);
    if (!P.Free.empty()) {
      S = std::move(P.Free.back());
      P.Free.pop_back();
      P.RetainedBytes -= S->bytes();
    } else {
      S = std::make_unique<EncodeScratch>();
    }
  }
  ~ScratchLease() {
    ScratchPool &P = scratchPool();
    std::lock_guard<std::mutex> Lock(P.Mu);
    if (P.Free.size() < MaxPooledScratches) {
      P.RetainedBytes += S->bytes();
      P.Free.push_back(std::move(S));
    }
  }
};

} // namespace

size_t slade::nn::encodeScratchRetainedBytes() {
  ScratchPool &P = scratchPool();
  std::lock_guard<std::mutex> Lock(P.Mu);
  return P.RetainedBytes;
}

//===----------------------------------------------------------------------===//
// Encoder fast path
//===----------------------------------------------------------------------===//

// Every helper below partitions OUTPUT elements only (row ranges when
// there are enough rows to feed the pool, column-tile ranges otherwise);
// each element's K-reduction runs sequentially on one thread, so every
// split is bit-identical to the sequential kernel.

void InferRuntime::linearRowsBiasAfter(const float *X, int Rows,
                                       const PackedMat &W, const float *Bias,
                                       float *Out, ParallelFor *TP) const {
  int InD = W.K, OutD = W.N;
  auto RowRange = [&](int B, int E, int) {
    std::fill(Out + static_cast<size_t>(B) * OutD,
              Out + static_cast<size_t>(E) * OutD, 0.0f);
    gemmAccPacked(X + static_cast<size_t>(B) * InD, W,
                  Out + static_cast<size_t>(B) * OutD, E - B);
    for (int R = B; R < E; ++R) {
      float *Row = Out + static_cast<size_t>(R) * OutD;
      for (int J = 0; J < OutD; ++J)
        Row[J] += Bias[static_cast<size_t>(J)];
    }
  };
  if (!TP || TP->threads() <= 1) {
    RowRange(0, Rows, 0);
  } else if (Rows >= TP->threads()) {
    TP->run(Rows, RowRange);
  } else {
    TP->run(W.tileCount(), [&](int T0, int T1, int) {
      int J0 = T0 * GemmTileN, J1 = std::min(OutD, T1 * GemmTileN);
      for (int R = 0; R < Rows; ++R)
        std::fill(Out + static_cast<size_t>(R) * OutD + J0,
                  Out + static_cast<size_t>(R) * OutD + J1, 0.0f);
      gemmAccPackedTiles(X, W, Out, Rows, T0, T1);
      for (int R = 0; R < Rows; ++R) {
        float *Row = Out + static_cast<size_t>(R) * OutD;
        for (int J = J0; J < J1; ++J)
          Row[J] += Bias[static_cast<size_t>(J)];
      }
    });
  }
}

void InferRuntime::linearRows(const float *X, int Rows, const PackedMat &W,
                              const float *Bias, float *Out,
                              ParallelFor *TP) const {
  int InD = W.K, OutD = W.N;
  auto RowRange = [&](int B, int E, int) {
    for (int R = B; R < E; ++R)
      std::memcpy(Out + static_cast<size_t>(R) * OutD, Bias,
                  static_cast<size_t>(OutD) * sizeof(float));
    gemmAccPacked(X + static_cast<size_t>(B) * InD, W,
                  Out + static_cast<size_t>(B) * OutD, E - B);
  };
  if (!TP || TP->threads() <= 1) {
    RowRange(0, Rows, 0);
  } else if (Rows >= TP->threads()) {
    TP->run(Rows, RowRange);
  } else {
    TP->run(W.tileCount(), [&](int T0, int T1, int) {
      int J0 = T0 * GemmTileN, J1 = std::min(OutD, T1 * GemmTileN);
      for (int R = 0; R < Rows; ++R)
        std::memcpy(Out + static_cast<size_t>(R) * OutD + J0, Bias + J0,
                    static_cast<size_t>(J1 - J0) * sizeof(float));
      gemmAccPackedTiles(X, W, Out, Rows, T0, T1);
    });
  }
}

void InferRuntime::linearRowsI8(const float *X, int Rows,
                                const QuantizedMat &W, const float *Bias,
                                float *Out, QuantizedMat &ActQ,
                                ParallelFor *TP) const {
  int OutD = W.R; // One quantized row per output channel.
  // Quantization happens once, before the fan-out (gemmI8NTRows reads
  // every activation row from any chunk). int32 accumulation is exact,
  // so the row split cannot change a single bit.
  quantizeRowsI8Into(X, Rows, W.C, ActQ);
  auto RowRange = [&](int B, int E, int) {
    for (int R = B; R < E; ++R)
      std::memcpy(Out + static_cast<size_t>(R) * OutD, Bias,
                  static_cast<size_t>(OutD) * sizeof(float));
    gemmI8NTRows(ActQ, W, Out, B, E);
  };
  if (!TP || TP->threads() <= 1)
    RowRange(0, Rows, 0);
  else
    TP->run(Rows, RowRange);
}

void InferRuntime::gemmPackedPar(const float *X, const PackedMat &W,
                                 float *C, int Rows, ParallelFor *TP) const {
  int InD = W.K, OutD = W.N;
  if (!TP || TP->threads() <= 1) {
    gemmAccPacked(X, W, C, Rows);
  } else if (Rows >= TP->threads()) {
    TP->run(Rows, [&](int B, int E, int) {
      gemmAccPacked(X + static_cast<size_t>(B) * InD, W,
                    C + static_cast<size_t>(B) * OutD, E - B);
    });
  } else {
    TP->run(W.tileCount(), [&](int T0, int T1, int) {
      gemmAccPackedTiles(X, W, C, Rows, T0, T1);
    });
  }
}

void InferRuntime::encodeInto(const std::vector<int> &Src, EncodeScratch &S,
                              Transformer::EncoderCache &Out) const {
  const TransformerConfig &Cfg = M.Cfg;
  int T = static_cast<int>(Src.size());
  if (T > Cfg.MaxLen)
    T = Cfg.MaxLen;
  int D = Cfg.DModel, H = Cfg.NHeads, Dh = D / H, FF = Cfg.FF;
  S.ensure(Cfg, T);

  float *X = S.X.data(), *Norm = S.Norm.data(), *Q = S.Q.data(),
        *K = S.K.data(), *V = S.V.data(), *Qh = S.Qh.data(),
        *Kh = S.Kh.data(), *Vh = S.Vh.data(), *Scores = S.Scores.data(),
        *HeadOut = S.HeadOut.data(), *Attn = S.Attn.data(),
        *Proj = S.Proj.data(), *FF1 = S.FF1.data();
  size_t TD = static_cast<size_t>(T) * D;

  // Weight-version-pinned packed tiles for every persistent matrix this
  // pass multiplies by — no per-call weight packing anywhere below.
  std::shared_ptr<const Transformer::PackedWeights> PW = M.packedWeights();

  // Row ranges only: every loop below either writes disjoint rows per
  // chunk or is a GEMM whose splits are bit-identical (see helpers).
  auto ForRows = [&](int N, const std::function<void(int)> &RowFn) {
    if (!TP || TP->threads() <= 1) {
      for (int I = 0; I < N; ++I)
        RowFn(I);
      return;
    }
    TP->run(N, [&](int B, int E, int) {
      for (int I = B; I < E; ++I)
        RowFn(I);
    });
  };

  // Token + learned-position embedding (same position clamp as the embed
  // op, though T <= MaxLen makes it a no-op here).
  ForRows(T, [&](int I) {
    int Id = Src[static_cast<size_t>(I)];
    int P = I < M.EncPos.R ? I : M.EncPos.R - 1;
    const float *Tok = M.TokEmb.V.data() + static_cast<size_t>(Id) * D;
    const float *Pos = M.EncPos.V.data() + static_cast<size_t>(P) * D;
    float *XRow = X + static_cast<size_t>(I) * D;
    for (int J = 0; J < D; ++J)
      XRow[J] = Tok[J] + Pos[J];
  });

  float Scale = 1.0f / std::sqrt(static_cast<float>(Dh));
  for (size_t LI = 0; LI < M.Enc.size(); ++LI) {
    const Transformer::EncLayer &L = M.Enc[LI];
    const Transformer::PackedWeights::EncLayerPack &LP = PW->Enc[LI];
    // Pre-LN self-attention block. Q/K/V run as the SAME three GEMMs the
    // training graph issues (bias after the product, per-head score and
    // value products over contiguous [T, Dh] slices) so every
    // intermediate rounds identically to the graph path.
    ForRows(T, [&](int I) {
      layerNormRow(X + static_cast<size_t>(I) * D, D, L.LN1.Gamma.V.data(),
                   L.LN1.Beta.V.data(), Norm + static_cast<size_t>(I) * D);
    });
    linearRowsBiasAfter(Norm, T, LP.Wq, L.Self.Bq.V.data(), Q, TP);
    linearRowsBiasAfter(Norm, T, LP.Wk, L.Self.Bk.V.data(), K, TP);
    linearRowsBiasAfter(Norm, T, LP.Wv, L.Self.Bv.V.data(), V, TP);
    for (int Hd = 0; Hd < H; ++Hd) {
      int Off = Hd * Dh;
      size_t DhBytes = static_cast<size_t>(Dh) * sizeof(float);
      ForRows(T, [&](int I) {
        size_t Row = static_cast<size_t>(I);
        std::memcpy(Qh + Row * Dh, Q + Row * D + Off, DhBytes);
        std::memcpy(Kh + Row * Dh, K + Row * D + Off, DhBytes);
        std::memcpy(Vh + Row * Dh, V + Row * D + Off, DhBytes);
      });
      // Kh^T is an activation, so it packs per call — into the arena's
      // explicit scratch handle, once per head, then every score row
      // range reuses the pack.
      packBTransposedInto(Kh, T, Dh, S.PackB);
      auto ScoreRows = [&](int B, int E, int) {
        float *SB = Scores + static_cast<size_t>(B) * T;
        size_t RowsT = static_cast<size_t>(E - B) * T;
        std::fill(SB, SB + RowsT, 0.0f);
        gemmAccPacked(Qh + static_cast<size_t>(B) * Dh, S.PackB, SB, E - B);
        for (size_t I = 0; I < RowsT; ++I)
          SB[I] *= Scale;
        for (int I = B; I < E; ++I)
          softmaxRowInPlace(Scores + static_cast<size_t>(I) * T, T);
      };
      auto ValueRows = [&](int B, int E, int) {
        float *OB = HeadOut + static_cast<size_t>(B) * Dh;
        std::fill(OB, OB + static_cast<size_t>(E - B) * Dh, 0.0f);
        gemmAcc(Scores + static_cast<size_t>(B) * T, Vh, OB, E - B, T, Dh);
        for (int I = B; I < E; ++I)
          std::memcpy(Attn + static_cast<size_t>(I) * D + Off,
                      HeadOut + static_cast<size_t>(I) * Dh, DhBytes);
      };
      if (!TP || TP->threads() <= 1) {
        ScoreRows(0, T, 0);
        ValueRows(0, T, 0);
      } else {
        // Two regions: run()'s barrier guarantees a value chunk sees the
        // score rows even if a different worker computed them.
        TP->run(T, ScoreRows);
        TP->run(T, ValueRows);
      }
    }
    linearRowsBiasAfter(Attn, T, LP.Wo, L.Self.Bo.V.data(), Proj, TP);
    ForRows(T, [&](int I) {
      for (int J = 0; J < D; ++J)
        X[static_cast<size_t>(I) * D + J] +=
            Proj[static_cast<size_t>(I) * D + J];
    });

    // Feed-forward block.
    ForRows(T, [&](int I) {
      layerNormRow(X + static_cast<size_t>(I) * D, D, L.LN2.Gamma.V.data(),
                   L.LN2.Beta.V.data(), Norm + static_cast<size_t>(I) * D);
    });
    linearRowsBiasAfter(Norm, T, LP.W1, L.B1.V.data(), FF1, TP);
    for (size_t I = 0; I < static_cast<size_t>(T) * FF; ++I)
      FF1[I] = FF1[I] > 0.0f ? FF1[I] : 0.0f;
    linearRowsBiasAfter(FF1, T, LP.W2, L.B2.V.data(), Proj, TP);
    ForRows(T, [&](int I) {
      for (int J = 0; J < D; ++J)
        X[static_cast<size_t>(I) * D + J] +=
            Proj[static_cast<size_t>(I) * D + J];
    });
  }

  Out.EncOut.resize(TD);
  ForRows(T, [&](int I) {
    layerNormRow(X + static_cast<size_t>(I) * D, D,
                 M.EncFinal.Gamma.V.data(), M.EncFinal.Beta.V.data(),
                 Out.EncOut.data() + static_cast<size_t>(I) * D);
  });
  Out.TSrc = T;
}

void InferRuntime::finishEncoderCache(
    Transformer::EncoderCache &Cache) const {
  int D = M.Cfg.DModel, T = Cache.TSrc;
  // Cross-attention K/V per decoder layer, batched over the source
  // positions.
  Cache.CrossK.resize(M.Dec.size());
  Cache.CrossV.resize(M.Dec.size());
  std::shared_ptr<const Transformer::PackedWeights> PW = M.packedWeights();
  for (size_t L = 0; L < M.Dec.size(); ++L) {
    const Transformer::Attn &A = M.Dec[L].Cross;
    Cache.CrossK[L].assign(static_cast<size_t>(T) * D, 0.0f);
    Cache.CrossV[L].assign(static_cast<size_t>(T) * D, 0.0f);
    linearRows(Cache.EncOut.data(), T, PW->CrossWk[L], A.Bk.V.data(),
               Cache.CrossK[L].data(), TP);
    linearRows(Cache.EncOut.data(), T, PW->CrossWv[L], A.Bv.V.data(),
               Cache.CrossV[L].data(), TP);
  }
  // Decode-session constants (fused Q|K|V projection, transposed output
  // embedding) are per-model, not per-source: borrow the shared
  // weight-versioned copy instead of rebuilding them per request.
  Cache.Consts = M.decodeConstants();
}

std::shared_ptr<const Transformer::EncoderCache>
InferRuntime::encodeSource(const std::vector<int> &Src) const {
  auto Cache = std::make_shared<Transformer::EncoderCache>();
  {
    ScratchLease Lease;
    encodeInto(Src, *Lease.S, *Cache);
  }
  finishEncoderCache(*Cache);
  return Cache;
}

//===----------------------------------------------------------------------===//
// Decode constants
//===----------------------------------------------------------------------===//

std::shared_ptr<const Transformer::DecodeConstants>
InferRuntime::buildDecodeConstants() const {
  int D = M.Cfg.DModel;
  auto C = std::make_shared<Transformer::DecodeConstants>();
  C->Version = M.WeightVersion;
  // Fused Q|K|V projection per decoder layer: one GEMM projects all three.
  C->SelfQKVW.resize(M.Dec.size());
  C->SelfQKVB.resize(M.Dec.size());
  for (size_t L = 0; L < M.Dec.size(); ++L) {
    const Transformer::Attn &A = M.Dec[L].Self;
    std::vector<float> &W = C->SelfQKVW[L];
    std::vector<float> &B = C->SelfQKVB[L];
    W.resize(static_cast<size_t>(D) * 3 * D);
    B.resize(static_cast<size_t>(3) * D);
    for (int I = 0; I < D; ++I)
      for (int J = 0; J < D; ++J) {
        W[static_cast<size_t>(I) * 3 * D + J] = A.Wq.at(I, J);
        W[static_cast<size_t>(I) * 3 * D + D + J] = A.Wk.at(I, J);
        W[static_cast<size_t>(I) * 3 * D + 2 * D + J] = A.Wv.at(I, J);
      }
    for (int J = 0; J < D; ++J) {
      B[static_cast<size_t>(J)] = A.Bq.V[static_cast<size_t>(J)];
      B[static_cast<size_t>(D + J)] = A.Bk.V[static_cast<size_t>(J)];
      B[static_cast<size_t>(2 * D + J)] = A.Bv.V[static_cast<size_t>(J)];
    }
  }
  C->EmbT.resize(static_cast<size_t>(D) * M.Cfg.Vocab);
  for (int W = 0; W < M.Cfg.Vocab; ++W)
    for (int J = 0; J < D; ++J)
      C->EmbT[static_cast<size_t>(J) * M.Cfg.Vocab + W] = M.TokEmb.at(W, J);

  // Float decode path: pre-pack EVERY persistent weight-side operand into
  // the blocked tile-major microkernel layout, once per weight version.
  // The per-tick GEMMs consume these directly and skip per-call packing.
  // (Skipped for int8 draft models — every decode GEMM there takes the
  // quantized copies below; the float packs would be dead weight.)
  if (!M.Int8Decode) {
    size_t NL = M.Dec.size();
    C->SelfQKVWP.resize(NL);
    C->SelfWoP.resize(NL);
    C->CrossWqP.resize(NL);
    C->CrossWoP.resize(NL);
    C->FF1P.resize(NL);
    C->FF2P.resize(NL);
    for (size_t L = 0; L < NL; ++L) {
      const Transformer::DecLayer &Lay = M.Dec[L];
      packBInto(C->SelfQKVW[L].data(), D, 3 * D, C->SelfQKVWP[L]);
      packBInto(Lay.Self.Wo.V.data(), D, D, C->SelfWoP[L]);
      packBInto(Lay.Cross.Wq.V.data(), D, D, C->CrossWqP[L]);
      packBInto(Lay.Cross.Wo.V.data(), D, D, C->CrossWoP[L]);
      packBInto(Lay.W1.V.data(), D, M.Cfg.FF, C->FF1P[L]);
      packBInto(Lay.W2.V.data(), M.Cfg.FF, D, C->FF2P[L]);
    }
    packBInto(C->EmbT.data(), D, M.Cfg.Vocab, C->EmbTP);
  }

  // Draft models additionally carry row-quantized transposed copies of
  // the large decode matmuls; the float copies above stay authoritative
  // for everything else (save/load, the graph oracle).
  if (M.Int8Decode) {
    C->UseInt8 = true;
    std::vector<float> Tmp;
    // Rows of the quantized copy are the OUTPUT channels: row o is
    // column o of the [in, out] float weight, so gemmI8NT's row-dot
    // matches gemmAcc's column reduction.
    auto QuantT = [&Tmp](const Mat &W, QuantizedMat &Out) {
      Tmp.resize(static_cast<size_t>(W.C) * W.R);
      for (int O = 0; O < W.C; ++O)
        for (int K = 0; K < W.R; ++K)
          Tmp[static_cast<size_t>(O) * W.R + K] = W.at(K, O);
      quantizeRowsI8Into(Tmp.data(), W.C, W.R, Out);
    };
    size_t NL = M.Dec.size();
    C->SelfQKVWQ.resize(NL);
    C->SelfWoQ.resize(NL);
    C->CrossWqQ.resize(NL);
    C->CrossWoQ.resize(NL);
    C->FF1Q.resize(NL);
    C->FF2Q.resize(NL);
    for (size_t L = 0; L < NL; ++L) {
      const Transformer::DecLayer &Lay = M.Dec[L];
      // Fused Q|K|V rows: [3D, D], rows 0..D-1 from Wq, then Wk, Wv.
      Tmp.resize(static_cast<size_t>(3) * D * D);
      for (int O = 0; O < D; ++O)
        for (int K = 0; K < D; ++K) {
          Tmp[static_cast<size_t>(O) * D + K] = Lay.Self.Wq.at(K, O);
          Tmp[(static_cast<size_t>(D) + O) * D + K] = Lay.Self.Wk.at(K, O);
          Tmp[(static_cast<size_t>(2) * D + O) * D + K] =
              Lay.Self.Wv.at(K, O);
        }
      quantizeRowsI8Into(Tmp.data(), 3 * D, D, C->SelfQKVWQ[L]);
      QuantT(Lay.Self.Wo, C->SelfWoQ[L]);
      QuantT(Lay.Cross.Wq, C->CrossWqQ[L]);
      QuantT(Lay.Cross.Wo, C->CrossWoQ[L]);
      QuantT(Lay.W1, C->FF1Q[L]);
      QuantT(Lay.W2, C->FF2Q[L]);
    }
    // TokEmb is already [Vocab, D] — its rows ARE the output channels.
    quantizeRowsI8Into(M.TokEmb.V.data(), M.Cfg.Vocab, D, C->EmbQ);
  }
  return C;
}

std::shared_ptr<const Transformer::PackedWeights>
InferRuntime::buildPackedWeights() const {
  int D = M.Cfg.DModel, FF = M.Cfg.FF;
  auto P = std::make_shared<Transformer::PackedWeights>();
  P->Version = M.WeightVersion;
  P->Enc.resize(M.Enc.size());
  for (size_t L = 0; L < M.Enc.size(); ++L) {
    const Transformer::EncLayer &Lay = M.Enc[L];
    Transformer::PackedWeights::EncLayerPack &E = P->Enc[L];
    packBInto(Lay.Self.Wq.V.data(), D, D, E.Wq);
    packBInto(Lay.Self.Wk.V.data(), D, D, E.Wk);
    packBInto(Lay.Self.Wv.V.data(), D, D, E.Wv);
    packBInto(Lay.Self.Wo.V.data(), D, D, E.Wo);
    packBInto(Lay.W1.V.data(), D, FF, E.W1);
    packBInto(Lay.W2.V.data(), FF, D, E.W2);
  }
  P->CrossWk.resize(M.Dec.size());
  P->CrossWv.resize(M.Dec.size());
  for (size_t L = 0; L < M.Dec.size(); ++L) {
    packBInto(M.Dec[L].Cross.Wk.V.data(), D, D, P->CrossWk[L]);
    packBInto(M.Dec[L].Cross.Wv.V.data(), D, D, P->CrossWv[L]);
  }
  return P;
}

//===----------------------------------------------------------------------===//
// Batched decode (shared encoder/cross caches, one GEMM per beam batch)
//===----------------------------------------------------------------------===//

Transformer::BatchDecodeState InferRuntime::startDecodeBatchMulti(
    const std::vector<std::shared_ptr<const Transformer::EncoderCache>>
        &Encs,
    int BeamsPerSource, int MaxSteps) const {
  assert(!Encs.empty() && BeamsPerSource > 0 && MaxSteps > 0);
  Transformer::BatchDecodeState St;
  int MaxBeams = BeamsPerSource * static_cast<int>(Encs.size());
  assert(Encs.size() <= 65535 && BeamsPerSource <= 65535 &&
         "source/slot ids are uint16");
  St.B = static_cast<int>(Encs.size()); // One BOS row per source.
  St.BMax = MaxBeams;
  St.KMax = BeamsPerSource;
  St.Cap = MaxSteps;
  St.SegCount = static_cast<int>(Encs.size());
  St.SegLen.assign(Encs.size(), 0);
  St.RowEnc = Encs;
  St.RowEnc.resize(static_cast<size_t>(MaxBeams));
  St.RowSource.assign(static_cast<size_t>(MaxBeams), 0);
  for (size_t S = 0; S < Encs.size(); ++S)
    St.RowSource[S] = static_cast<uint16_t>(S);
  for (const auto &Enc : Encs)
    St.MaxTSrc = std::max(St.MaxTSrc, Enc->TSrc);
  // All rows share one model: borrow the constants from the first source
  // (every EncoderCache of a model references the same copy).
  St.Consts = Encs.front()->Consts;
  int D = M.Cfg.DModel;
  size_t PerLayer = static_cast<size_t>(MaxBeams) * St.Cap * D;
  St.SelfK.assign(M.Dec.size(), std::vector<float>(PerLayer));
  St.SelfV.assign(M.Dec.size(), std::vector<float>(PerLayer));
  St.Anc.assign(static_cast<size_t>(MaxBeams) * St.Cap, 0);
  size_t Rows = static_cast<size_t>(MaxBeams) * D;
  St.X.resize(Rows);
  St.Norm.resize(Rows);
  St.QKV.resize(Rows * 3);
  St.AttnOut.resize(Rows);
  St.Proj.resize(Rows);
  St.FF1.resize(static_cast<size_t>(MaxBeams) * M.Cfg.FF);
  St.Scores.resize(static_cast<size_t>(M.Cfg.NHeads) *
                   std::max(St.Cap, St.MaxTSrc));
  return St;
}

Transformer::BatchDecodeState
InferRuntime::startDecodeStream(int MaxSources, int BeamsPerSource,
                                int MaxSteps) const {
  assert(MaxSources > 0 && BeamsPerSource > 0 && MaxSteps > 0);
  assert(MaxSources <= 65535 && BeamsPerSource <= 65535 &&
         "source/slot ids are uint16");
  Transformer::BatchDecodeState St;
  int MaxBeams = BeamsPerSource * MaxSources;
  St.B = 0; // No live rows: sources are bound later via admitStreamRow.
  St.BMax = MaxBeams;
  St.KMax = BeamsPerSource;
  St.Cap = MaxSteps;
  St.SegCount = MaxSources;
  St.SegLen.assign(static_cast<size_t>(MaxSources), 0);
  St.RowEnc.resize(static_cast<size_t>(MaxBeams));
  St.RowSource.assign(static_cast<size_t>(MaxBeams), 0);
  St.Consts = M.decodeConstants();
  int D = M.Cfg.DModel;
  size_t PerLayer = static_cast<size_t>(MaxBeams) * St.Cap * D;
  St.SelfK.assign(M.Dec.size(), std::vector<float>(PerLayer));
  St.SelfV.assign(M.Dec.size(), std::vector<float>(PerLayer));
  St.Anc.assign(static_cast<size_t>(MaxBeams) * St.Cap, 0);
  size_t Rows = static_cast<size_t>(MaxBeams) * D;
  St.X.resize(Rows);
  St.Norm.resize(Rows);
  St.QKV.resize(Rows * 3);
  St.AttnOut.resize(Rows);
  St.Proj.resize(Rows);
  St.FF1.resize(static_cast<size_t>(MaxBeams) * M.Cfg.FF);
  // MaxTSrc is unknown until sources bind; admitStreamRow grows Scores.
  St.Scores.resize(static_cast<size_t>(M.Cfg.NHeads) * St.Cap);
  return St;
}

int InferRuntime::admitStreamRow(
    Transformer::BatchDecodeState &St, int Seg,
    std::shared_ptr<const Transformer::EncoderCache> Enc) const {
  assert(Seg >= 0 && Seg < St.SegCount && "segment out of range");
  assert(St.B < St.BMax && "no free rows to admit into");
#ifndef NDEBUG
  for (int Bi = 0; Bi < St.B; ++Bi)
    assert(St.RowSource[static_cast<size_t>(Bi)] != Seg &&
           "recycled segment still has live rows");
#endif
  // An idle state adopts the incoming constants: the engine outlives
  // weight updates between decode sessions. A version MISMATCH against
  // live rows is refused at runtime (not just asserted): mixing one
  // version's QKV constants with another version's encoder K/V would
  // silently decode garbage. The caller defers the admission until the
  // batch drains.
  if (St.B == 0)
    St.Consts = Enc->Consts;
  else if (!St.Consts || !Enc->Consts ||
           St.Consts->Version != Enc->Consts->Version)
    return -1;
  St.SegLen[static_cast<size_t>(Seg)] = 0; // Fresh decode clock.
  St.MaxTSrc = std::max(St.MaxTSrc, Enc->TSrc);
  size_t NeedScores = static_cast<size_t>(M.Cfg.NHeads) *
                      static_cast<size_t>(std::max(St.Cap, St.MaxTSrc));
  if (St.Scores.size() < NeedScores)
    St.Scores.resize(NeedScores);
  int Row = St.B++;
  St.RowEnc[static_cast<size_t>(Row)] = std::move(Enc);
  St.RowSource[static_cast<size_t>(Row)] = static_cast<uint16_t>(Seg);
  return Row;
}

namespace {

#ifdef SLADE_SIMD_EXP

/// AVX2 softmax-attention over cached rows for one query row, one head
/// slice of DhT = NV*8 floats. The score pass keeps the dot product in
/// two FMA chains per row; the value pass holds the output slice in NV
/// register accumulators across the whole context.
template <int NV, typename RowOfK, typename RowOfV>
inline void attendHeadAVX(const float *Qh, float *Oh, int T, int Off,
                          float InvS, float *SRow, const RowOfK &KRowOf,
                          const RowOfV &VRowOf) {
  __m256 Q[NV];
  for (int V = 0; V < NV; ++V)
    Q[V] = _mm256_loadu_ps(Qh + V * 8);
  float MaxS = -1e30f;
  for (int Tt = 0; Tt < T; ++Tt) {
    const float *KRow = KRowOf(Tt) + Off;
    __m256 Acc = _mm256_mul_ps(Q[0], _mm256_loadu_ps(KRow));
    for (int V = 1; V < NV; ++V)
      Acc = _mm256_fmadd_ps(Q[V], _mm256_loadu_ps(KRow + V * 8), Acc);
    float Dot = hsum256(Acc) * InvS;
    SRow[Tt] = Dot;
    MaxS = std::max(MaxS, Dot);
  }
  __m256 MaxV = _mm256_set1_ps(MaxS);
  __m256 SumV = _mm256_setzero_ps();
  int Tt = 0;
  for (; Tt + 8 <= T; Tt += 8) {
    __m256 E = exp256Ps(_mm256_sub_ps(_mm256_loadu_ps(SRow + Tt), MaxV));
    _mm256_storeu_ps(SRow + Tt, E);
    SumV = _mm256_add_ps(SumV, E);
  }
  float Sum = hsum256(SumV);
  for (; Tt < T; ++Tt) {
    SRow[Tt] = expPsScalar(SRow[Tt] - MaxS);
    Sum += SRow[Tt];
  }
  float InvSum = 1.0f / Sum;
  __m256 Acc[NV];
  for (int V = 0; V < NV; ++V)
    Acc[V] = _mm256_setzero_ps();
  for (Tt = 0; Tt < T; ++Tt) {
    const float *VRow = VRowOf(Tt) + Off;
    __m256 W = _mm256_set1_ps(SRow[Tt] * InvSum);
    for (int V = 0; V < NV; ++V)
      Acc[V] = _mm256_fmadd_ps(W, _mm256_loadu_ps(VRow + V * 8), Acc[V]);
  }
  for (int V = 0; V < NV; ++V)
    _mm256_storeu_ps(Oh + V * 8, Acc[V]);
}

#endif // SLADE_SIMD_EXP

/// Softmax-attention over cached K/V rows for one query row. Per-head
/// passes with a fixed-width register accumulator for the value
/// reduction: each pass streams only its head's Dh-float slice of the
/// cache, so total memory traffic matches a single fused pass while the
/// inner loops stay pure FMA chains. DhT is the compile-time head width.
template <int DhT, typename RowOfK, typename RowOfV>
inline void attendCached(const float *QRow, float *ORow, int T, int H,
                         float InvS, float *Scores, int ScoreStride,
                         const RowOfK &KRowOf, const RowOfV &VRowOf) {
  for (int Hd = 0; Hd < H; ++Hd) {
    int Off = Hd * DhT;
    float *SRow = Scores + static_cast<size_t>(Hd) * ScoreStride;
    const float *Qh = QRow + Off;
    float MaxS = -1e30f;
    for (int Tt = 0; Tt < T; ++Tt) {
      const float *KRow = KRowOf(Tt) + Off;
      float Dot = 0;
#pragma omp simd reduction(+ : Dot)
      for (int Jj = 0; Jj < DhT; ++Jj)
        Dot += Qh[Jj] * KRow[Jj];
      SRow[Tt] = Dot * InvS;
      MaxS = std::max(MaxS, SRow[Tt]);
    }
    float Sum = 0;
    for (int Tt = 0; Tt < T; ++Tt) {
      SRow[Tt] = std::exp(SRow[Tt] - MaxS);
      Sum += SRow[Tt];
    }
    float InvSum = 1.0f / Sum;
    float Acc[DhT] = {};
    for (int Tt = 0; Tt < T; ++Tt) {
      float W = SRow[Tt] * InvSum;
      const float *VRow = VRowOf(Tt) + Off;
#pragma omp simd
      for (int Jj = 0; Jj < DhT; ++Jj)
        Acc[Jj] += W * VRow[Jj];
    }
    float *Oh = ORow + Off;
#pragma omp simd
    for (int Jj = 0; Jj < DhT; ++Jj)
      Oh[Jj] = Acc[Jj];
  }
}

/// Runtime-Dh dispatcher: common head widths get the fixed-width kernel.
template <typename RowOfK, typename RowOfV>
inline void attendCachedDyn(const float *QRow, float *ORow, int T, int H,
                            int Dh, float InvS, float *Scores,
                            int ScoreStride, const RowOfK &KRowOf,
                            const RowOfV &VRowOf) {
#ifdef SLADE_SIMD_EXP
  if (Dh % 8 == 0 && Dh <= 32) {
    for (int Hd = 0; Hd < H; ++Hd) {
      int Off = Hd * Dh;
      const float *Qh = QRow + Off;
      float *Oh = ORow + Off;
      float *SRow = Scores + static_cast<size_t>(Hd) * ScoreStride;
      switch (Dh / 8) {
      case 1:
        attendHeadAVX<1>(Qh, Oh, T, Off, InvS, SRow, KRowOf, VRowOf);
        break;
      case 2:
        attendHeadAVX<2>(Qh, Oh, T, Off, InvS, SRow, KRowOf, VRowOf);
        break;
      case 3:
        attendHeadAVX<3>(Qh, Oh, T, Off, InvS, SRow, KRowOf, VRowOf);
        break;
      default:
        attendHeadAVX<4>(Qh, Oh, T, Off, InvS, SRow, KRowOf, VRowOf);
        break;
      }
    }
    return;
  }
#endif
  switch (Dh) {
  case 8:
    attendCached<8>(QRow, ORow, T, H, InvS, Scores, ScoreStride, KRowOf,
                    VRowOf);
    return;
  case 16:
    attendCached<16>(QRow, ORow, T, H, InvS, Scores, ScoreStride, KRowOf,
                     VRowOf);
    return;
  case 32:
    attendCached<32>(QRow, ORow, T, H, InvS, Scores, ScoreStride, KRowOf,
                     VRowOf);
    return;
  default:
    break;
  }
  // Generic fallback, same math in the same order.
  for (int Hd = 0; Hd < H; ++Hd) {
    int Off = Hd * Dh;
    float *SRow = Scores + static_cast<size_t>(Hd) * ScoreStride;
    float MaxS = -1e30f;
    for (int Tt = 0; Tt < T; ++Tt) {
      const float *KRow = KRowOf(Tt) + Off;
      float Dot = 0;
      for (int Jj = 0; Jj < Dh; ++Jj)
        Dot += QRow[Off + Jj] * KRow[Jj];
      SRow[Tt] = Dot * InvS;
      MaxS = std::max(MaxS, SRow[Tt]);
    }
    float Sum = 0;
    for (int Tt = 0; Tt < T; ++Tt) {
      SRow[Tt] = std::exp(SRow[Tt] - MaxS);
      Sum += SRow[Tt];
    }
    float InvSum = 1.0f / Sum;
    for (int Jj = 0; Jj < Dh; ++Jj)
      ORow[Off + Jj] = 0;
    for (int Tt = 0; Tt < T; ++Tt) {
      float W = SRow[Tt] * InvSum;
      const float *VRow = VRowOf(Tt) + Off;
      for (int Jj = 0; Jj < Dh; ++Jj)
        ORow[Off + Jj] += W * VRow[Jj];
    }
  }
}

} // namespace

std::vector<float>
InferRuntime::forwardDecodeRows(Transformer::BatchDecodeState &St) const {
  const TransformerConfig &Cfg = M.Cfg;
  const std::vector<Transformer::DecodeRowPlan> &Rows = St.FwdRows;
  int N = static_cast<int>(Rows.size());
  int D = Cfg.DModel, H = Cfg.NHeads, Dh = D / H;
  const Transformer::DecodeConstants &Consts = *St.Consts;
  const bool I8 = Consts.UseInt8;

  // The scratch is sized for BMax rows at start; a speculative plan may
  // carry up to gamma * BMax rows, so grow on demand (grow-only).
  auto Grow = [](std::vector<float> &V, size_t Need) {
    if (V.size() < Need)
      V.resize(Need);
  };
  size_t RowsD = static_cast<size_t>(N) * D;
  Grow(St.X, RowsD);
  Grow(St.Norm, RowsD);
  Grow(St.QKV, RowsD * 3);
  Grow(St.AttnOut, RowsD);
  Grow(St.Proj, RowsD);
  Grow(St.FF1, static_cast<size_t>(N) * Cfg.FF);

  // Intra-tick pool: null (or 1 thread) means the sequential code path,
  // taken branch-for-branch as before this field existed.
  ParallelFor *TP = St.TP;
  if (TP && TP->threads() <= 1)
    TP = nullptr;

  int ScoreStride = std::max(St.Cap, St.MaxTSrc);
  // One score slab [H, ScoreStride] per pool chunk so concurrent rows
  // never share softmax scratch; chunk 0's slab is the sequential one.
  Grow(St.Scores, static_cast<size_t>(TP ? TP->threads() : 1) * H *
                      ScoreStride);

  float *X = St.X.data(), *Norm = St.Norm.data(), *QKV = St.QKV.data(),
        *AttnOut = St.AttnOut.data(), *Proj = St.Proj.data(),
        *FF1 = St.FF1.data(), *Scores = St.Scores.data();
  for (int R = 0; R < N; ++R) {
    const Transformer::DecodeRowPlan &Row = Rows[static_cast<size_t>(R)];
    for (int J = 0; J < D; ++J)
      X[static_cast<size_t>(R) * D + J] =
          M.TokEmb.at(Row.Token, J) + M.DecPos.at(Row.Pos, J);
  }

  float InvS = 1.0f / std::sqrt(static_cast<float>(Dh));

  // Per-source segment geometry: [Cap, KMax, D] time-major per segment.
  size_t TimeStride = static_cast<size_t>(St.KMax) * D;
  size_t SegStride = static_cast<size_t>(St.Cap) * TimeStride;

  for (size_t L = 0; L < M.Dec.size(); ++L) {
    const Transformer::DecLayer &Lay = M.Dec[L];

    // Self attention: one fused Q|K|V GEMM for the whole row batch.
    for (int R = 0; R < N; ++R)
      layerNormRow(X + static_cast<size_t>(R) * D, D,
                   Lay.LN1.Gamma.V.data(), Lay.LN1.Beta.V.data(),
                   Norm + static_cast<size_t>(R) * D);
    for (int R = 0; R < N; ++R)
      std::memcpy(QKV + static_cast<size_t>(R) * 3 * D,
                  Consts.SelfQKVB[L].data(),
                  static_cast<size_t>(3) * D * sizeof(float));
    if (I8) {
      quantizeRowsI8Into(Norm, N, D, St.ActQ);
      if (!TP)
        gemmI8NT(St.ActQ, Consts.SelfQKVWQ[L], QKV);
      else
        TP->run(N, [&](int B, int E, int) {
          gemmI8NTRows(St.ActQ, Consts.SelfQKVWQ[L], QKV, B, E);
        });
    } else {
      gemmPackedPar(Norm, Consts.SelfQKVWP[L], QKV, N, TP);
    }
    // Each row writes its new K/V once, at its descriptor's (segment,
    // time, slot); the row is never moved afterwards — descendants find
    // it via the slot tables. ALL writes land before ANY row attends, so
    // within one call a row may attend K/V written by earlier plan rows.
    for (int R = 0; R < N; ++R) {
      const Transformer::DecodeRowPlan &Row = Rows[static_cast<size_t>(R)];
      size_t Slot = static_cast<size_t>(Row.Seg) * SegStride +
                    static_cast<size_t>(Row.WriteT) * TimeStride +
                    static_cast<size_t>(Row.WriteSlot) * D;
      const float *Src = QKV + static_cast<size_t>(R) * 3 * D;
      std::memcpy(&St.SelfK[L][Slot], Src + D,
                  static_cast<size_t>(D) * sizeof(float));
      std::memcpy(&St.SelfV[L][Slot], Src + 2 * D,
                  static_cast<size_t>(D) * sizeof(float));
    }
    auto SelfAttendRows = [&](int B, int E, int Chunk) {
      float *CScores =
          Scores + static_cast<size_t>(Chunk) * H * ScoreStride;
      for (int R = B; R < E; ++R) {
        const Transformer::DecodeRowPlan &Row =
            Rows[static_cast<size_t>(R)];
        int TCtx = Row.WriteT + 1;
        const float *KBase =
            St.SelfK[L].data() + static_cast<size_t>(Row.Seg) * SegStride;
        const float *VBase =
            St.SelfV[L].data() + static_cast<size_t>(Row.Seg) * SegStride;
        const uint16_t *Sl = Row.Slots;
        attendCachedDyn(
            QKV + static_cast<size_t>(R) * 3 * D,
            AttnOut + static_cast<size_t>(R) * D, TCtx, H, Dh, InvS,
            CScores, ScoreStride,
            [&](int Tt) {
              return KBase + static_cast<size_t>(Tt) * TimeStride +
                     static_cast<size_t>(Sl[Tt]) * D;
            },
            [&](int Tt) {
              return VBase + static_cast<size_t>(Tt) * TimeStride +
                     static_cast<size_t>(Sl[Tt]) * D;
            });
      }
    };
    if (!TP)
      SelfAttendRows(0, N, 0);
    else
      TP->run(N, SelfAttendRows);
    if (I8)
      linearRowsI8(AttnOut, N, Consts.SelfWoQ[L], Lay.Self.Bo.V.data(),
                   Proj, St.ActQ, TP);
    else
      linearRows(AttnOut, N, Consts.SelfWoP[L], Lay.Self.Bo.V.data(), Proj,
                 TP);
    for (size_t I = 0; I < RowsD; ++I)
      X[I] += Proj[I];

    // Cross attention: the K/V caches are shared by every beam of one
    // source; each row attends over its OWN source's cache (rows of
    // different sources may share the batch).
    for (int R = 0; R < N; ++R)
      layerNormRow(X + static_cast<size_t>(R) * D, D,
                   Lay.LN2.Gamma.V.data(), Lay.LN2.Beta.V.data(),
                   Norm + static_cast<size_t>(R) * D);
    if (I8)
      linearRowsI8(Norm, N, Consts.CrossWqQ[L], Lay.Cross.Bq.V.data(), QKV,
                   St.ActQ, TP);
    else
      linearRows(Norm, N, Consts.CrossWqP[L], Lay.Cross.Bq.V.data(), QKV,
                 TP);
    auto CrossAttendRows = [&](int B, int E, int Chunk) {
      float *CScores =
          Scores + static_cast<size_t>(Chunk) * H * ScoreStride;
      for (int R = B; R < E; ++R) {
        const Transformer::EncoderCache &Enc =
            *Rows[static_cast<size_t>(R)].Enc;
        const float *CK = Enc.CrossK[L].data(), *CV = Enc.CrossV[L].data();
        attendCachedDyn(
            QKV + static_cast<size_t>(R) * D,
            AttnOut + static_cast<size_t>(R) * D, Enc.TSrc, H, Dh, InvS,
            CScores, ScoreStride,
            [&](int Tt) { return CK + static_cast<size_t>(Tt) * D; },
            [&](int Tt) { return CV + static_cast<size_t>(Tt) * D; });
      }
    };
    if (!TP)
      CrossAttendRows(0, N, 0);
    else
      TP->run(N, CrossAttendRows);
    if (I8)
      linearRowsI8(AttnOut, N, Consts.CrossWoQ[L], Lay.Cross.Bo.V.data(),
                   Proj, St.ActQ, TP);
    else
      linearRows(AttnOut, N, Consts.CrossWoP[L], Lay.Cross.Bo.V.data(),
                 Proj, TP);
    for (size_t I = 0; I < RowsD; ++I)
      X[I] += Proj[I];

    // FFN, batched across rows.
    for (int R = 0; R < N; ++R)
      layerNormRow(X + static_cast<size_t>(R) * D, D,
                   Lay.LN3.Gamma.V.data(), Lay.LN3.Beta.V.data(),
                   Norm + static_cast<size_t>(R) * D);
    if (I8)
      linearRowsI8(Norm, N, Consts.FF1Q[L], Lay.B1.V.data(), FF1, St.ActQ,
                   TP);
    else
      linearRows(Norm, N, Consts.FF1P[L], Lay.B1.V.data(), FF1, TP);
    for (size_t I = 0; I < static_cast<size_t>(N) * Cfg.FF; ++I)
      FF1[I] = FF1[I] > 0 ? FF1[I] : 0;
    if (I8)
      linearRowsI8(FF1, N, Consts.FF2Q[L], Lay.B2.V.data(), Proj, St.ActQ,
                   TP);
    else
      linearRows(FF1, N, Consts.FF2P[L], Lay.B2.V.data(), Proj, TP);
    for (size_t I = 0; I < RowsD; ++I)
      X[I] += Proj[I];
  }

  for (int R = 0; R < N; ++R)
    layerNormRow(X + static_cast<size_t>(R) * D, D,
                 M.DecFinal.Gamma.V.data(), M.DecFinal.Beta.V.data(),
                 Norm + static_cast<size_t>(R) * D);
  // Logits against the shared embedding: one streaming [N,D]x[D,V] GEMM
  // over the pre-transposed table.
  std::vector<float> Logits(static_cast<size_t>(N) * Cfg.Vocab, 0.0f);
  if (I8) {
    quantizeRowsI8Into(Norm, N, D, St.ActQ);
    if (!TP)
      gemmI8NT(St.ActQ, Consts.EmbQ, Logits.data());
    else
      TP->run(N, [&](int B, int E, int) {
        gemmI8NTRows(St.ActQ, Consts.EmbQ, Logits.data(), B, E);
      });
  } else {
    gemmPackedPar(Norm, Consts.EmbTP, Logits.data(), N, TP);
  }
  return Logits;
}

std::vector<float>
InferRuntime::stepDecodeBatch(Transformer::BatchDecodeState &St,
                              const std::vector<int> &Tokens) const {
  const TransformerConfig &Cfg = M.Cfg;
  int B = St.B;
  assert(static_cast<int>(Tokens.size()) == B && "one token per beam");
  // Each row decodes at ITS source's position: sources joining the batch
  // mid-flight carry their own clock (SegLen), so the same row's logits
  // are bit-identical whether it decodes solo or fused with rows at any
  // other positions. Rows of one source are contiguous, so the running
  // Local counter is the segment-local slot.
  St.FwdRows.resize(static_cast<size_t>(B));
  for (int Bi = 0, Local = 0; Bi < B; ++Bi) {
    Local = (Bi > 0 && St.RowSource[static_cast<size_t>(Bi)] ==
                           St.RowSource[static_cast<size_t>(Bi - 1)])
                ? Local + 1
                : 0;
    assert(Local < St.KMax && "source rows not contiguous");
    int SL = St.SegLen[St.RowSource[static_cast<size_t>(Bi)]];
    assert(SL < St.Cap && "self-cache capacity exhausted");
    // The row's own ancestry table doubles as its slot table: entry [SL]
    // is this step's slot (recorded before the forward reads it).
    St.Anc[static_cast<size_t>(Bi) * St.Cap + SL] =
        static_cast<uint16_t>(Local);
    Transformer::DecodeRowPlan &R = St.FwdRows[static_cast<size_t>(Bi)];
    R.Token = Tokens[static_cast<size_t>(Bi)];
    R.Pos = SL < Cfg.MaxLen ? SL : Cfg.MaxLen - 1;
    R.WriteT = SL;
    R.Seg = St.RowSource[static_cast<size_t>(Bi)];
    R.WriteSlot = static_cast<uint16_t>(Local);
    R.Enc = St.RowEnc[static_cast<size_t>(Bi)].get();
    R.Slots = &St.Anc[static_cast<size_t>(Bi) * St.Cap];
  }
  std::vector<float> Logits = forwardDecodeRows(St);
  // Advance each stepped source's clock once (its rows are contiguous).
  for (int Bi = 0; Bi < B; ++Bi)
    if (Bi == 0 || St.RowSource[static_cast<size_t>(Bi)] !=
                       St.RowSource[static_cast<size_t>(Bi - 1)]) {
      int SL = ++St.SegLen[St.RowSource[static_cast<size_t>(Bi)]];
      St.Len = std::max(St.Len, SL);
    }
  return Logits;
}

std::vector<float>
InferRuntime::stepDecodeSpec(Transformer::BatchDecodeState &St,
                             const std::vector<SpecRow> &Plan, int Begin,
                             int End) const {
  const TransformerConfig &Cfg = M.Cfg;
  int NP = static_cast<int>(Plan.size());
  assert(0 <= Begin && Begin <= End && End <= NP);
  size_t Cap = static_cast<size_t>(St.Cap);
  // Full slot tables, one per plan row: SpecChain[p*Cap + t] is the
  // segment-local slot row p's history occupies at time t, for t in
  // [0, SegLen + Depth]. The committed prefix comes from the depth-0
  // ancestor's live ancestry row; the speculative tail accumulates down
  // the parent chain. Built for the WHOLE plan (cheap uint16 copies) so
  // any [Begin, End) slice can resolve its ancestors.
  St.SpecBase.resize(static_cast<size_t>(NP));
  St.SpecChain.resize(static_cast<size_t>(NP) * Cap);
  for (int P = 0; P < NP; ++P) {
    const SpecRow &R = Plan[static_cast<size_t>(P)];
    size_t SL = static_cast<size_t>(St.SegLen[static_cast<size_t>(R.Seg)]);
    assert(static_cast<int>(SL) + R.Depth < St.Cap &&
           "speculative depth exceeds self-cache capacity");
    assert(R.Slot < St.KMax && "speculative slot out of range");
    uint16_t *Tab = &St.SpecChain[static_cast<size_t>(P) * Cap];
    if (R.Depth == 0) {
      assert(R.Parent >= 0 && R.Parent < St.B && "bad live-row parent");
      St.SpecBase[static_cast<size_t>(P)] = R.Parent;
      std::memcpy(Tab, &St.Anc[static_cast<size_t>(R.Parent) * Cap],
                  SL * sizeof(uint16_t));
    } else {
      assert(R.Parent >= 0 && R.Parent < P && "parents must precede");
      assert(Plan[static_cast<size_t>(R.Parent)].Seg == R.Seg &&
             Plan[static_cast<size_t>(R.Parent)].Depth == R.Depth - 1 &&
             "parent must be the same segment, one depth up");
      St.SpecBase[static_cast<size_t>(P)] =
          St.SpecBase[static_cast<size_t>(R.Parent)];
      std::memcpy(Tab, &St.SpecChain[static_cast<size_t>(R.Parent) * Cap],
                  (SL + static_cast<size_t>(R.Depth)) * sizeof(uint16_t));
    }
    Tab[SL + static_cast<size_t>(R.Depth)] = R.Slot;
  }

  int N = End - Begin;
  St.FwdRows.resize(static_cast<size_t>(N));
  for (int I = 0; I < N; ++I) {
    size_t P = static_cast<size_t>(Begin + I);
    const SpecRow &R = Plan[P];
    int SL = St.SegLen[static_cast<size_t>(R.Seg)];
    Transformer::DecodeRowPlan &F = St.FwdRows[static_cast<size_t>(I)];
    F.Token = R.Token;
    int Pos = SL + R.Depth;
    F.Pos = Pos < Cfg.MaxLen ? Pos : Cfg.MaxLen - 1;
    F.WriteT = SL + R.Depth;
    F.Seg = static_cast<uint16_t>(R.Seg);
    F.WriteSlot = R.Slot;
    F.Enc = St.RowEnc[static_cast<size_t>(St.SpecBase[P])].get();
    F.Slots = &St.SpecChain[P * Cap];
  }
  return forwardDecodeRows(St);
}

void InferRuntime::commitSpec(Transformer::BatchDecodeState &St,
                              const std::vector<SpecRow> &Plan,
                              const std::vector<int> &NewRows) const {
  int NewB = static_cast<int>(NewRows.size());
  assert(NewB <= St.BMax && "beam count exceeds allocation");
  size_t Cap = static_cast<size_t>(St.Cap);
  St.AncScratch.resize(static_cast<size_t>(NewB) * Cap);
  St.RowEncScratch.resize(static_cast<size_t>(NewB));
  St.RowSourceScratch.resize(static_cast<size_t>(NewB));
  // Gather each committed row's ancestry into scratch first (the same
  // two-phase dance as reorderBeams: sources and destinations overlap):
  // the committed prefix from the depth-0 ancestor's live row, then the
  // accepted chain's slots. K/V rows never move — stepDecodeSpec already
  // wrote them at exactly these (time, slot) coordinates.
  for (int I = 0; I < NewB; ++I) {
    int P = NewRows[static_cast<size_t>(I)];
    const SpecRow &R = Plan[static_cast<size_t>(P)];
    size_t SL = static_cast<size_t>(St.SegLen[static_cast<size_t>(R.Seg)]);
    uint16_t *Dst = &St.AncScratch[static_cast<size_t>(I) * Cap];
    int Q = P;
    for (int E = R.Depth; E >= 0; --E) {
      Dst[SL + static_cast<size_t>(E)] = Plan[static_cast<size_t>(Q)].Slot;
      Q = Plan[static_cast<size_t>(Q)].Parent;
    } // After the depth-0 hop Q is the live ancestor's row index.
    std::memcpy(Dst, &St.Anc[static_cast<size_t>(Q) * Cap],
                SL * sizeof(uint16_t));
    St.RowEncScratch[static_cast<size_t>(I)] =
        St.RowEnc[static_cast<size_t>(Q)];
    St.RowSourceScratch[static_cast<size_t>(I)] =
        static_cast<uint16_t>(R.Seg);
  }
  for (int I = 0; I < NewB; ++I) {
    int P = NewRows[static_cast<size_t>(I)];
    const SpecRow &R = Plan[static_cast<size_t>(P)];
    size_t SL = static_cast<size_t>(St.SegLen[static_cast<size_t>(R.Seg)]);
    std::memcpy(&St.Anc[static_cast<size_t>(I) * Cap],
                &St.AncScratch[static_cast<size_t>(I) * Cap],
                (SL + static_cast<size_t>(R.Depth) + 1) * sizeof(uint16_t));
    St.RowEnc[static_cast<size_t>(I)] =
        std::move(St.RowEncScratch[static_cast<size_t>(I)]);
    St.RowSource[static_cast<size_t>(I)] =
        St.RowSourceScratch[static_cast<size_t>(I)];
  }
  // Drop stale encoder bindings past the new row count, then advance
  // each committed segment's clock by its rows' shared depth + 1.
  for (int I = NewB; I < St.B; ++I)
    St.RowEnc[static_cast<size_t>(I)].reset();
  St.B = NewB;
  for (int I = 0; I < NewB; ++I) {
    const SpecRow &R = Plan[static_cast<size_t>(NewRows[static_cast<size_t>(I)])];
    if (I > 0 &&
        Plan[static_cast<size_t>(NewRows[static_cast<size_t>(I - 1)])].Seg ==
            R.Seg) {
      assert(
          Plan[static_cast<size_t>(NewRows[static_cast<size_t>(I - 1)])]
                  .Depth == R.Depth &&
          "committed rows of one segment must share a depth");
      continue;
    }
    int SL = (St.SegLen[static_cast<size_t>(R.Seg)] += R.Depth + 1);
    St.Len = std::max(St.Len, SL);
  }
}

void InferRuntime::reorderBeams(Transformer::BatchDecodeState &St,
                                const std::vector<int> &SrcIdx) const {
  int NewB = static_cast<int>(SrcIdx.size());
  assert(NewB <= St.BMax && "beam count exceeds allocation");
  // Cached K/V rows never move: survivor selection only gathers the
  // per-beam ancestry index rows (the source's SegLen uint16 entries per
  // beam) and the per-row encoder bindings. Scratch rows use the Cap
  // stride; only each row's decoded prefix is copied.
  size_t Cap = static_cast<size_t>(St.Cap);
  St.AncScratch.resize(static_cast<size_t>(NewB) * Cap);
  St.RowEncScratch.resize(static_cast<size_t>(NewB));
  St.RowSourceScratch.resize(static_cast<size_t>(NewB));
  for (int Bi = 0; Bi < NewB; ++Bi) {
    size_t Src = static_cast<size_t>(SrcIdx[static_cast<size_t>(Bi)]);
    size_t Used = static_cast<size_t>(St.SegLen[St.RowSource[Src]]);
    std::memcpy(&St.AncScratch[static_cast<size_t>(Bi) * Cap],
                &St.Anc[Src * Cap], Used * sizeof(uint16_t));
    St.RowEncScratch[static_cast<size_t>(Bi)] = St.RowEnc[Src];
    St.RowSourceScratch[static_cast<size_t>(Bi)] = St.RowSource[Src];
  }
  for (int Bi = 0; Bi < NewB; ++Bi) {
    size_t Used = static_cast<size_t>(
        St.SegLen[St.RowSourceScratch[static_cast<size_t>(Bi)]]);
    std::memcpy(&St.Anc[static_cast<size_t>(Bi) * Cap],
                &St.AncScratch[static_cast<size_t>(Bi) * Cap],
                Used * sizeof(uint16_t));
    St.RowEnc[static_cast<size_t>(Bi)] =
        std::move(St.RowEncScratch[static_cast<size_t>(Bi)]);
    St.RowSource[static_cast<size_t>(Bi)] =
        St.RowSourceScratch[static_cast<size_t>(Bi)];
  }
  // Drop stale encoder bindings past the new row count so a retired
  // source's encoder output is not pinned by a long-lived state.
  for (int Bi = NewB; Bi < St.B; ++Bi)
    St.RowEnc[static_cast<size_t>(Bi)].reset();
  St.B = NewB;
}

void InferRuntime::abortStreamSegment(Transformer::BatchDecodeState &St,
                                      int Seg) const {
  // A survivor gather that omits the segment's rows: cached K/V never
  // moves, other rows keep their slots and ancestry, and the aborted
  // rows' encoder refs drop (reorderBeams resets the tail bindings).
  // The segment's SegLen is left as-is — admitStreamRow resets it when
  // the segment is recycled, same as a normal retirement.
  std::vector<int> Survivors;
  Survivors.reserve(static_cast<size_t>(St.B));
  for (int Bi = 0; Bi < St.B; ++Bi)
    if (St.RowSource[static_cast<size_t>(Bi)] !=
        static_cast<uint16_t>(Seg))
      Survivors.push_back(Bi);
  if (static_cast<int>(Survivors.size()) == St.B)
    return; // No live rows in the segment (pre-first-tick abort).
  reorderBeams(St, Survivors);
}
