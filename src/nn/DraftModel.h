//===- DraftModel.h - distilled draft decoder for speculation ---*- C++ -*-===//
///
/// \file
/// The shallow proposer of the speculative decode path: a DECODER-ONLY
/// Transformer (1 layer by default) that shares the full model's
/// tokenizer, token embedding, and decoder positions, and cross-attends
/// directly over the FULL model's encoder output — so one encoder pass
/// per request serves both models and no source tokens are needed at
/// decode time. It is distilled in-repo from the full model by a
/// deterministic self-training pass: the teacher greedy-decodes the demo
/// corpus, the draft is trained teacher-forced on those outputs with the
/// embeddings frozen, and the result is quantized to int8 (per-row
/// absmax) for the proposal matmuls.
///
/// Draft quality only moves the speculative ACCEPTANCE RATE: the full
/// model re-scores every proposal in float and the accept/reject rule in
/// nn/SpecDecode.h falls back to the full model's own selection at the
/// first disagreement, so decode output is byte-identical to the
/// non-speculative path no matter what the draft proposes.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_NN_DRAFTMODEL_H
#define SLADE_NN_DRAFTMODEL_H

#include "nn/Transformer.h"

#include <memory>
#include <vector>

namespace slade {
namespace nn {

struct DraftConfig {
  int DecLayers = 1;       ///< Shallow proposer depth.
  int Steps = 120;         ///< Distillation optimizer steps.
  int BatchSize = 4;       ///< Pairs per optimizer step.
  int MaxTeacherLen = 220; ///< Teacher greedy-decode budget per source.
  bool Int8 = true;        ///< Quantize the draft's decode matmuls.
  uint64_t Seed = 0x5bade; ///< Draft parameter init seed.
};

class DraftModel {
public:
  /// Distills a draft from \p Full over the token-encoded \p Sources
  /// (the demo corpus's assembly side). Deterministic: teacher targets
  /// come from greedy decoding, pairs are visited round-robin, and the
  /// optimizer seed is fixed — two distillations of the same full model
  /// over the same sources are identical.
  static DraftModel distill(const Transformer &Full,
                            const std::vector<std::vector<int>> &Sources,
                            const DraftConfig &Cfg = DraftConfig());

  /// The draft transformer (decoder-only; its encoder stack is empty and
  /// its encoder caches must come from deriveDraftCache).
  const Transformer &model() const { return Draft; }

private:
  explicit DraftModel(Transformer T) : Draft(std::move(T)) {}

  Transformer Draft;
};

/// Builds the draft-side encoder cache for one source from the FULL
/// model's cache: the encoder output is shared verbatim; cross-K/V and
/// decode constants are the draft's own. Called once per admitted source
/// by the speculative session.
std::shared_ptr<const Transformer::EncoderCache>
deriveDraftCache(const Transformer &Draft,
                 const Transformer::EncoderCache &FullEnc);

} // namespace nn
} // namespace slade

#endif // SLADE_NN_DRAFTMODEL_H
