//===- EncoderLRU.h - encoder-output cache for repeated requests -*- C++ -*-===//
///
/// \file
/// An LRU cache of per-source encoder state (Transformer::EncoderCache)
/// keyed by a hash of the tokenized source AND the model's weight version.
/// Serving traffic repeats sources (identical functions across binaries,
/// retried requests, evaluation sweeps); a hit skips the whole encoder
/// forward pass and cross-K/V computation. Entries from an older weight
/// version never match and age out of the LRU naturally.
///
/// Eviction is bounded two ways: by entry count (Capacity) and, when a
/// ByteBudget is set, by the heap bytes the cached EncoderCaches hold —
/// long sources cost ~(1 + 2*DecLayers) * TSrc * DModel floats each, so
/// a count bound alone lets memory scale with source length. The most
/// recently inserted entry always survives, so one oversized source
/// degrades to "no caching" rather than thrashing.
///
/// Thread-safe. The encode itself runs OUTSIDE the lock, so concurrent
/// misses on different sources do not serialize; concurrent misses on the
/// SAME source may encode twice (both produce identical caches, one wins
/// the insert) — correctness over strict single-flight.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_NN_ENCODERLRU_H
#define SLADE_NN_ENCODERLRU_H

#include "nn/Transformer.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace slade {
namespace nn {

class EncoderLRU {
public:
  /// \p ByteBudget caps the heap bytes held by cached entries (0 = only
  /// the entry-count bound applies).
  explicit EncoderLRU(size_t Capacity = 64, size_t ByteBudget = 0)
      : Cap(Capacity ? Capacity : 1), Budget(ByteBudget) {}

  /// Returns the encoder cache for \p Src under \p Model's current
  /// weights, computing and inserting it on a miss. \p TP (optional,
  /// non-owning) parallelizes the miss-path encode across its workers;
  /// the cached result is bit-identical either way, so hits and misses
  /// never depend on who encoded.
  std::shared_ptr<const Transformer::EncoderCache>
  get(const Transformer &Model, const std::vector<int> &Src,
      ParallelFor *TP = nullptr);

  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
    /// Wall-clock seconds spent running the encoder on misses (the
    /// cold-encode cost serving metrics report per run).
    double MissSeconds = 0;
  };
  Stats stats() const;

  size_t size() const;
  size_t capacity() const { return Cap; }
  /// Heap bytes currently held by the cached entries (EncoderCache
  /// buffers + key token vectors).
  size_t bytesUsed() const;
  size_t byteBudget() const { return Budget; }
  void clear();

private:
  struct Entry {
    uint64_t Hash = 0;
    uint64_t Version = 0;
    std::vector<int> Src; ///< Guards against hash collisions.
    std::shared_ptr<const Transformer::EncoderCache> Enc;
    size_t Bytes = 0; ///< Accounted on insert (entries are immutable).
  };

  /// Unlinks the LRU tail entry. Caller holds the lock.
  void evictOne();

  mutable std::mutex Mu;
  size_t Cap;
  size_t Budget;
  size_t Bytes = 0; ///< Sum of Entry::Bytes over the cache.
  std::list<Entry> Order; ///< Front = most recently used.
  std::unordered_multimap<uint64_t, std::list<Entry>::iterator> Index;
  Stats St;
};

} // namespace nn
} // namespace slade

#endif // SLADE_NN_ENCODERLRU_H
