//===- DecodeLRU.h - decoded-hypotheses cache for repeated requests -*- C++ -*-===//
///
/// \file
/// An LRU cache of finished beam-search results (the k hypotheses a
/// source decodes to) keyed by a hash of the tokenized source, the
/// model's weight version, AND the beam configuration. It sits IN FRONT
/// of decode: a hit skips the entire beam search — every stepDecodeBatch
/// tick, the self-K/V traffic, and the selection bookkeeping — which is
/// the whole decode-bound cost of a repeated request.
///
/// This closes the one serving regime in-flight single-flight cannot:
/// duplicate-heavy streams whose repeats never overlap in time. The
/// engine's single-flight only attaches a request to a source that is
/// live RIGHT NOW; a repeat arriving after the original retired used to
/// re-decode from scratch (the batch Scheduler's corpus-wide dedup won
/// that regime by ~10% p95 — bench/README.md). With this cache the
/// streaming engine serves non-overlapping repeats from memory.
///
/// Correctness: beam decode is deterministic, so a cached result is
/// byte-identical to re-decoding. Entries are keyed by weight version
/// (stale entries stop matching after a training step and age out) and
/// by (BeamSize, MaxLen, LengthPenalty) so differently-configured
/// engines sharing one cache can never serve each other's hypotheses.
///
/// Entries are stored prefix-delta compressed: beam survivors diverge
/// late, so the k hypotheses of one result share long prefixes. The
/// top-1 token vector is stored whole and every other hypothesis as its
/// shared-prefix length against top-1 plus the differing suffix —
/// roughly halving bytes/entry on real beams, which doubles what a
/// given ByteBudget holds. A hit reconstructs the full vector (a few
/// hundred token copies against the whole decode it skips).
///
/// Eviction is bounded two ways, exactly like nn::EncoderLRU: by entry
/// count and, when a ByteBudget is set, by the heap bytes the cached
/// hypotheses hold. The most recently inserted entry always survives,
/// so one oversized result degrades to "no caching", never thrashing.
///
/// Thread-safe: N decode shards insert at retirement while the
/// dispatcher looks up concurrently; all operations are a short
/// critical section (shared_ptr copies — hypotheses are never copied).
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_NN_DECODELRU_H
#define SLADE_NN_DECODELRU_H

#include "nn/Beam.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace slade {
namespace nn {

class DecodeLRU {
public:
  /// \p ByteBudget caps the heap bytes held by cached hypotheses (0 =
  /// only the entry-count bound applies).
  explicit DecodeLRU(size_t Capacity = 256, size_t ByteBudget = 0)
      : Cap(Capacity ? Capacity : 1), Budget(ByteBudget) {}

  /// The cached hypotheses for \p Src decoded under weight \p Version
  /// with \p Cfg, or nullptr on a miss. Never decodes on its own — the
  /// caller owns the decode (results land via put()). A hit returns a
  /// freshly reconstructed vector (entries are stored compressed), so
  /// consecutive hits do not share one object.
  std::shared_ptr<const std::vector<Hypothesis>>
  get(const std::vector<int> &Src, uint64_t Version, const BeamConfig &Cfg);

  /// Inserts a finished decode, compressed; the passed pointer is not
  /// retained. A key already present is refreshed (the hypotheses are
  /// identical by determinism — no overwrite needed).
  void put(const std::vector<int> &Src, uint64_t Version,
           const BeamConfig &Cfg,
           std::shared_ptr<const std::vector<Hypothesis>> Hyps);

  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Insertions = 0;
    uint64_t Evictions = 0;
  };
  Stats stats() const;

  size_t size() const;
  size_t capacity() const { return Cap; }
  /// Heap bytes currently held by the cached entries (compressed
  /// hypotheses + key token vectors).
  size_t bytesUsed() const;
  size_t byteBudget() const { return Budget; }
  void clear();

private:
  struct Entry {
    uint64_t Hash = 0;
    uint64_t Version = 0;
    int BeamSize = 0;
    int MaxLen = 0;
    float LengthPenalty = 1.0f;
    /// Grammar-constrained decodes produce different hypotheses than
    /// unconstrained ones for the same source — they can never be
    /// served from each other's entries.
    bool Constrained = false;
    std::vector<int> Src; ///< Guards against hash collisions.
    /// One non-top hypothesis, prefix-delta compressed against Top.
    struct Delta {
      int Prefix = 0;          ///< Leading tokens shared with Top.
      std::vector<int> Suffix; ///< Tokens after the shared prefix.
      float Score = 0;
    };
    std::vector<int> Top; ///< Hypothesis 0's tokens, stored whole.
    float TopScore = 0;
    std::vector<Delta> Rest; ///< Hypotheses 1..k-1.
    bool Empty = true; ///< Result had no hypotheses (still cached).
    size_t Bytes = 0; ///< Accounted on insert (entries are immutable).
  };

  bool matches(const Entry &E, uint64_t Hash, uint64_t Version,
               const BeamConfig &Cfg, const std::vector<int> &Src) const;
  /// Unlinks the LRU tail entry. Caller holds the lock.
  void evictOne();

  mutable std::mutex Mu;
  size_t Cap;
  size_t Budget;
  size_t Bytes = 0; ///< Sum of Entry::Bytes over the cache.
  std::list<Entry> Order; ///< Front = most recently used.
  std::unordered_multimap<uint64_t, std::list<Entry>::iterator> Index;
  Stats St;
};

} // namespace nn
} // namespace slade

#endif // SLADE_NN_DECODELRU_H
