//===- SpecDecode.h - speculative propose/verify decode rounds --*- C++ -*-===//
///
/// \file
/// The speculative shallow-deep decode loop shared by every decode
/// driver (beamSearch, beamSearchMulti, and the serve engine's
/// continuous batch). One ROUND replaces one-or-more plain beam steps:
///
///   1. Depth-0 plan rows apply the PENDING selection (the last exact
///      beam step) to the live state rows — always exact.
///   2. The draft model steps the plan one depth at a time on its own
///      mirrored state; after each depth, a SIMULATED selectBeamStep
///      over the DRAFT logits proposes the next selection, extending the
///      plan up to Gamma proposal depths per job.
///   3. The FULL model scores the whole plan in ONE batched call.
///   4. Verification replays selectBeamStep over the full model's
///      logits depth by depth — the same code, the same scratch
///      semantics, the same constraint oracle as plain decode. While the
///      exact selection equals the draft's proposal the next depth's
///      logits are already on hand; at the first disagreement the exact
///      selection simply becomes the new pending selection.
///   5. Both states commit the accepted frontier in place (commitSpec);
///      nothing proposed ever bypasses full-model scoring.
///
/// Exactness: every committed selection is produced by selectBeamStep
/// over full-model logits that are bit-identical to what committed
/// plain stepping would produce (the per-row bit-identity invariant of
/// the batched decoder), so the decoded hypotheses are byte-identical
/// to non-speculative decode; the draft only decides how many exact
/// steps each batched call yields. A job with Gamma == 0 runs plain
/// decode through the same machinery (depth-0 only), which is how the
/// acceptance gate bounds the worst case.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_NN_SPECDECODE_H
#define SLADE_NN_SPECDECODE_H

#include "nn/Beam.h"
#include "nn/BeamCore.h"
#include "nn/Transformer.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace slade {
namespace nn {

/// One speculative decode session: owns the draft model's mirrored
/// decode state, which tracks the full state's row geometry in lockstep
/// (same admits, same commits, same row order) so plan rows resolve in
/// both coordinate systems. Only K/V CONTENT differs between the two
/// states; rows of jobs that stopped proposing carry stale draft K/V
/// that is never attended (a job's Gamma never goes back up once 0).
class SpecSession {
public:
  SpecSession(const Transformer &Full, const Transformer &Draft)
      : Full(Full), Draft(Draft) {}

  /// Mirrors Transformer::startDecodeBatchMulti on the draft state:
  /// derives a draft-side cache per full-model cache.
  void initBatch(
      const std::vector<std::shared_ptr<const Transformer::EncoderCache>>
          &FullEncs,
      int BeamsPerSource, int MaxSteps);
  /// Mirrors Transformer::startDecodeStream.
  void initStream(int MaxSources, int BeamsPerSource, int MaxSteps);
  /// Mirrors a successful admitStreamRow on the full state (same Seg).
  void admit(int Seg, const Transformer::EncoderCache &FullEnc);
  /// Mirrors abortStreamSegment.
  void abortSegment(int Seg);

  /// Installs the intra-tick worker pool on the DRAFT state's forwards
  /// (the caller sets the full state's BatchDecodeState::TP itself).
  /// Survives initStream/initBatch re-creating the draft state. Null
  /// (the default) keeps the draft sequential. Exactness is unaffected:
  /// the pool only row-splits, never re-associates reductions.
  void setTickPool(ParallelFor *TP);

  /// One decode job inside a round: a source's live beam search. The
  /// caller keeps Job objects alive across rounds (they carry the
  /// pending selection and the step budget) and passes the LIVE jobs in
  /// state-row order each round.
  struct Job {
    int Seg = 0; ///< The job's self-K/V segment in both states.
    std::vector<beamcore::BeamMeta> *Live = nullptr;
    std::vector<Hypothesis> *Done = nullptr;
    beamcore::ConstraintCtx *CC = nullptr;
    /// The pending (last exact) selection: next round's depth-0 rows.
    /// Seed a fresh job with {0} -> {BosId}: the BOS feed is just the
    /// first pending selection.
    std::vector<int> PendingSrc{0};
    std::vector<int> PendingTok{Transformer::BosId};
    /// Rows this job owns in the states (contiguous from its RowBase).
    int StateRows = 1;
    /// Proposal depth this round; 0 = plain decode through the spec
    /// machinery (the acceptance gate's fallback).
    int Gamma = 0;
    /// Exact selections taken so far (plain decode's step budget).
    int StepsDone = 0;
    // -- per-round outputs -------------------------------------------------
    bool Finished = false; ///< Search completed (budget / StopNow / empty).
    int Proposed = 0;      ///< This round's proposal count.
    int Accepted = 0;      ///< This round's accepted proposals.
  };

  /// Runs one propose/verify/commit round over \p Jobs (all live jobs of
  /// \p FullSt, in state-row order). Updates each job's Live/Done/CC and
  /// pending selection exactly as the equivalent plain beam steps would,
  /// commits both states, and fills the per-round outputs. Jobs that
  /// finish contribute no committed rows (their segments recycle as
  /// usual). \p Stats accumulates telemetry across rounds. Returns the
  /// number of plan rows the full model scored (the round's GEMM-row
  /// count, for utilization accounting).
  int runRound(Transformer::BatchDecodeState &FullSt,
               std::vector<Job *> &Jobs, const BeamConfig &Cfg,
               SpecStats &Stats);

private:
  const Transformer &Full;
  const Transformer &Draft;
  Transformer::BatchDecodeState DraftSt;
  ParallelFor *TickTP = nullptr; ///< Re-applied on every init*.

  // Round scratch (reused).
  std::vector<SpecRow> Plan;
  std::vector<float> FullLogits, DraftLogits;
  beamcore::SelectScratch Scratch;
  struct Sim {
    std::vector<beamcore::BeamMeta> Live;
    std::vector<Hypothesis> Done;
    beamcore::ConstraintCtx CC;
    bool Alive = false;
  };
  std::vector<Sim> Sims;
  /// Per job: the plan index where its depth-d block starts, and the
  /// block's row count ([job][depth]).
  std::vector<std::vector<int>> DepthStart, DepthCount;
  /// Per job: the draft's proposed selections; Proposals[j][d] created
  /// the job's depth-(d+1) plan rows.
  std::vector<std::vector<beamcore::SelectResult>> Proposals;
  std::vector<int> NewRows;
  std::vector<int> RowBase, EffGamma;
};

} // namespace nn
} // namespace slade

#endif // SLADE_NN_SPECDECODE_H
