//===- EncoderLRU.cpp - encoder-output cache for repeated requests ------------===//

#include "nn/EncoderLRU.h"

#include <chrono>

using namespace slade;
using namespace slade::nn;

namespace {

/// FNV-1a over the token ids; the token vector itself disambiguates
/// collisions at lookup time.
uint64_t hashTokens(const std::vector<int> &Src) {
  uint64_t H = 1469598103934665603ULL;
  for (int T : Src) {
    H ^= static_cast<uint64_t>(static_cast<uint32_t>(T));
    H *= 1099511628211ULL;
  }
  return H;
}

size_t entryBytes(const std::vector<int> &Src,
                  const Transformer::EncoderCache &Enc) {
  return Enc.bytes() + Src.capacity() * sizeof(int);
}

} // namespace

void EncoderLRU::evictOne() {
  const Entry &Victim = Order.back();
  auto VR = Index.equal_range(Victim.Hash);
  for (auto It = VR.first; It != VR.second; ++It)
    if (It->second == std::prev(Order.end())) {
      Index.erase(It);
      break;
    }
  Bytes -= Victim.Bytes;
  Order.pop_back();
  ++St.Evictions;
}

std::shared_ptr<const Transformer::EncoderCache>
EncoderLRU::get(const Transformer &Model, const std::vector<int> &Src,
                ParallelFor *TP) {
  uint64_t Hash = hashTokens(Src);
  uint64_t Version = Model.weightVersion();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto Range = Index.equal_range(Hash);
    for (auto It = Range.first; It != Range.second; ++It) {
      Entry &E = *It->second;
      if (E.Version == Version && E.Src == Src) {
        Order.splice(Order.begin(), Order, It->second); // Touch.
        ++St.Hits;
        return E.Enc;
      }
    }
  }

  // Miss: encode outside the lock so unrelated sources encode in
  // parallel. The cold-encode wall time feeds the serving metrics.
  auto T0 = std::chrono::steady_clock::now();
  std::shared_ptr<const Transformer::EncoderCache> Enc =
      Model.encodeSource(Src, TP);
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();

  std::lock_guard<std::mutex> Lock(Mu);
  ++St.Misses;
  St.MissSeconds += Seconds;
  // A racing thread may have inserted the same source meanwhile; prefer
  // its copy so repeated hits share one cache object.
  auto Range = Index.equal_range(Hash);
  for (auto It = Range.first; It != Range.second; ++It) {
    Entry &E = *It->second;
    if (E.Version == Version && E.Src == Src)
      return E.Enc;
  }
  Order.push_front(Entry{Hash, Version, Src, Enc, 0});
  // Account the STORED copy of the key (its capacity is trimmed to size;
  // the caller's vector may carry push_back growth slack).
  Order.front().Bytes = entryBytes(Order.front().Src, *Enc);
  Bytes += Order.front().Bytes;
  Index.emplace(Hash, Order.begin());
  // Count bound, then byte budget; the freshly inserted entry (front)
  // always survives so an oversized single source cannot thrash.
  while (Order.size() > Cap)
    evictOne();
  while (Budget && Bytes > Budget && Order.size() > 1)
    evictOne();
  return Enc;
}

EncoderLRU::Stats EncoderLRU::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return St;
}

size_t EncoderLRU::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Order.size();
}

size_t EncoderLRU::bytesUsed() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Bytes;
}

void EncoderLRU::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Order.clear();
  Index.clear();
  Bytes = 0;
}
