//===- DecodeLRU.cpp - decoded-hypotheses cache for repeated requests ---------===//

#include "nn/DecodeLRU.h"

using namespace slade;
using namespace slade::nn;

namespace {

/// FNV-1a over the token ids (same scheme as EncoderLRU); the stored
/// token vector disambiguates collisions at lookup time.
uint64_t hashTokens(const std::vector<int> &Src) {
  uint64_t H = 1469598103934665603ULL;
  for (int T : Src) {
    H ^= static_cast<uint64_t>(static_cast<uint32_t>(T));
    H *= 1099511628211ULL;
  }
  return H;
}

} // namespace

bool DecodeLRU::matches(const Entry &E, uint64_t Hash, uint64_t Version,
                        const BeamConfig &Cfg,
                        const std::vector<int> &Src) const {
  return E.Hash == Hash && E.Version == Version &&
         E.BeamSize == Cfg.BeamSize && E.MaxLen == Cfg.MaxLen &&
         E.LengthPenalty == Cfg.LengthPenalty &&
         E.Constrained == (Cfg.Constraint != nullptr) && E.Src == Src;
}

void DecodeLRU::evictOne() {
  const Entry &Victim = Order.back();
  auto VR = Index.equal_range(Victim.Hash);
  for (auto It = VR.first; It != VR.second; ++It)
    if (It->second == std::prev(Order.end())) {
      Index.erase(It);
      break;
    }
  Bytes -= Victim.Bytes;
  Order.pop_back();
  ++St.Evictions;
}

std::shared_ptr<const std::vector<Hypothesis>>
DecodeLRU::get(const std::vector<int> &Src, uint64_t Version,
               const BeamConfig &Cfg) {
  uint64_t Hash = hashTokens(Src);
  std::lock_guard<std::mutex> Lock(Mu);
  auto Range = Index.equal_range(Hash);
  for (auto It = Range.first; It != Range.second; ++It) {
    Entry &E = *It->second;
    if (matches(E, Hash, Version, Cfg, Src)) {
      Order.splice(Order.begin(), Order, It->second); // Touch.
      ++St.Hits;
      // Decompress: top-1 verbatim, every other hypothesis from its
      // shared prefix of Top plus its own suffix.
      auto Out = std::make_shared<std::vector<Hypothesis>>();
      if (!E.Empty) {
        Out->reserve(1 + E.Rest.size());
        Out->push_back({E.Top, E.TopScore});
        for (const Entry::Delta &D : E.Rest) {
          Hypothesis H;
          H.Tokens.reserve(static_cast<size_t>(D.Prefix) + D.Suffix.size());
          H.Tokens.assign(E.Top.begin(), E.Top.begin() + D.Prefix);
          H.Tokens.insert(H.Tokens.end(), D.Suffix.begin(), D.Suffix.end());
          H.Score = D.Score;
          Out->push_back(std::move(H));
        }
      }
      return Out;
    }
  }
  ++St.Misses;
  return nullptr;
}

void DecodeLRU::put(const std::vector<int> &Src, uint64_t Version,
                    const BeamConfig &Cfg,
                    std::shared_ptr<const std::vector<Hypothesis>> Hyps) {
  if (!Hyps)
    return;
  uint64_t Hash = hashTokens(Src);
  std::lock_guard<std::mutex> Lock(Mu);
  // A racing shard may have inserted the same decode meanwhile; the
  // hypotheses are identical by determinism, so just refresh recency.
  auto Range = Index.equal_range(Hash);
  for (auto It = Range.first; It != Range.second; ++It)
    if (matches(*It->second, Hash, Version, Cfg, Src)) {
      Order.splice(Order.begin(), Order, It->second);
      return;
    }
  Entry E;
  E.Hash = Hash;
  E.Version = Version;
  E.BeamSize = Cfg.BeamSize;
  E.MaxLen = Cfg.MaxLen;
  E.LengthPenalty = Cfg.LengthPenalty;
  E.Constrained = Cfg.Constraint != nullptr;
  E.Src = Src;
  // Compress: top-1 whole, the rest as shared-prefix length against
  // top-1 plus the differing suffix. Beam survivors fork from the same
  // frontier a handful of steps before finishing, so the prefixes are
  // long and the suffixes short.
  const std::vector<Hypothesis> &H = *Hyps;
  E.Empty = H.empty();
  if (!E.Empty) {
    E.Top = H.front().Tokens;
    E.TopScore = H.front().Score;
    E.Rest.reserve(H.size() - 1);
    for (size_t I = 1; I < H.size(); ++I) {
      Entry::Delta D;
      size_t P = 0, N = std::min(E.Top.size(), H[I].Tokens.size());
      while (P < N && E.Top[P] == H[I].Tokens[P])
        ++P;
      D.Prefix = static_cast<int>(P);
      D.Suffix.assign(H[I].Tokens.begin() + static_cast<ptrdiff_t>(P),
                      H[I].Tokens.end());
      D.Score = H[I].Score;
      E.Rest.push_back(std::move(D));
    }
  }
  // Account the STORED form (copies are trimmed to size; the caller's
  // vectors may carry push_back growth slack).
  E.Bytes = sizeof(Entry) + E.Src.capacity() * sizeof(int) +
            E.Top.capacity() * sizeof(int) +
            E.Rest.capacity() * sizeof(Entry::Delta);
  for (const Entry::Delta &D : E.Rest)
    E.Bytes += D.Suffix.capacity() * sizeof(int);
  Bytes += E.Bytes;
  Order.push_front(std::move(E));
  Index.emplace(Hash, Order.begin());
  ++St.Insertions;
  // Count bound, then byte budget; the freshly inserted entry (front)
  // always survives so one oversized result cannot thrash the cache.
  while (Order.size() > Cap)
    evictOne();
  while (Budget && Bytes > Budget && Order.size() > 1)
    evictOne();
}

DecodeLRU::Stats DecodeLRU::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return St;
}

size_t DecodeLRU::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Order.size();
}

size_t DecodeLRU::bytesUsed() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Bytes;
}

void DecodeLRU::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Order.clear();
  Index.clear();
  Bytes = 0;
}
