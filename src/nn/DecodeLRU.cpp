//===- DecodeLRU.cpp - decoded-hypotheses cache for repeated requests ---------===//

#include "nn/DecodeLRU.h"

using namespace slade;
using namespace slade::nn;

namespace {

/// FNV-1a over the token ids (same scheme as EncoderLRU); the stored
/// token vector disambiguates collisions at lookup time.
uint64_t hashTokens(const std::vector<int> &Src) {
  uint64_t H = 1469598103934665603ULL;
  for (int T : Src) {
    H ^= static_cast<uint64_t>(static_cast<uint32_t>(T));
    H *= 1099511628211ULL;
  }
  return H;
}

size_t hypothesesBytes(const std::vector<Hypothesis> &Hyps) {
  size_t B = sizeof(std::vector<Hypothesis>) +
             Hyps.capacity() * sizeof(Hypothesis);
  for (const Hypothesis &H : Hyps)
    B += H.Tokens.capacity() * sizeof(int);
  return B;
}

} // namespace

bool DecodeLRU::matches(const Entry &E, uint64_t Hash, uint64_t Version,
                        const BeamConfig &Cfg,
                        const std::vector<int> &Src) const {
  return E.Hash == Hash && E.Version == Version &&
         E.BeamSize == Cfg.BeamSize && E.MaxLen == Cfg.MaxLen &&
         E.LengthPenalty == Cfg.LengthPenalty &&
         E.Constrained == (Cfg.Constraint != nullptr) && E.Src == Src;
}

void DecodeLRU::evictOne() {
  const Entry &Victim = Order.back();
  auto VR = Index.equal_range(Victim.Hash);
  for (auto It = VR.first; It != VR.second; ++It)
    if (It->second == std::prev(Order.end())) {
      Index.erase(It);
      break;
    }
  Bytes -= Victim.Bytes;
  Order.pop_back();
  ++St.Evictions;
}

std::shared_ptr<const std::vector<Hypothesis>>
DecodeLRU::get(const std::vector<int> &Src, uint64_t Version,
               const BeamConfig &Cfg) {
  uint64_t Hash = hashTokens(Src);
  std::lock_guard<std::mutex> Lock(Mu);
  auto Range = Index.equal_range(Hash);
  for (auto It = Range.first; It != Range.second; ++It) {
    Entry &E = *It->second;
    if (matches(E, Hash, Version, Cfg, Src)) {
      Order.splice(Order.begin(), Order, It->second); // Touch.
      ++St.Hits;
      return E.Hyps;
    }
  }
  ++St.Misses;
  return nullptr;
}

void DecodeLRU::put(const std::vector<int> &Src, uint64_t Version,
                    const BeamConfig &Cfg,
                    std::shared_ptr<const std::vector<Hypothesis>> Hyps) {
  if (!Hyps)
    return;
  uint64_t Hash = hashTokens(Src);
  std::lock_guard<std::mutex> Lock(Mu);
  // A racing shard may have inserted the same decode meanwhile; the
  // hypotheses are identical by determinism, so just refresh recency.
  auto Range = Index.equal_range(Hash);
  for (auto It = Range.first; It != Range.second; ++It)
    if (matches(*It->second, Hash, Version, Cfg, Src)) {
      Order.splice(Order.begin(), Order, It->second);
      return;
    }
  Order.push_front(Entry{Hash, Version, Cfg.BeamSize, Cfg.MaxLen,
                         Cfg.LengthPenalty, Cfg.Constraint != nullptr, Src,
                         std::move(Hyps), 0});
  // Account the STORED copy of the key (its capacity is trimmed to size;
  // the caller's vector may carry push_back growth slack).
  Order.front().Bytes = hypothesesBytes(*Order.front().Hyps) +
                        Order.front().Src.capacity() * sizeof(int) +
                        sizeof(Entry);
  Bytes += Order.front().Bytes;
  Index.emplace(Hash, Order.begin());
  ++St.Insertions;
  // Count bound, then byte budget; the freshly inserted entry (front)
  // always survives so one oversized result cannot thrash the cache.
  while (Order.size() > Cap)
    evictOne();
  while (Budget && Bytes > Budget && Order.size() > 1)
    evictOne();
}

DecodeLRU::Stats DecodeLRU::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return St;
}

size_t DecodeLRU::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Order.size();
}

size_t DecodeLRU::bytesUsed() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Bytes;
}

void DecodeLRU::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Order.clear();
  Index.clear();
  Bytes = 0;
}
