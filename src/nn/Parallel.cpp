//===- Parallel.cpp - intra-tick data-parallel row splitting -----------------===//

#include "nn/Parallel.h"

#include <algorithm>

using namespace slade;
using namespace slade::nn;

ParallelFor::ParallelFor(int Threads)
    : NThreads(Threads > 1 ? Threads : 1) {
  // The pool exists only when there is real fan-out: ThreadPool spawns
  // at least one worker, and a one-thread ParallelFor must spawn NONE so
  // the default configuration stays byte-for-byte (and thread-for-
  // thread) identical to the pre-pool code.
  if (NThreads > 1)
    Pool = std::make_unique<ThreadPool>(
        static_cast<unsigned>(NThreads - 1));
}

void ParallelFor::run(
    int N, const std::function<void(int Begin, int End, int Chunk)> &Fn) {
  if (N <= 0)
    return;
  if (!Pool || N == 1) {
    Fn(0, N, 0);
    return;
  }
  int T = std::min(NThreads, N);
  int Chunk = (N + T - 1) / T;
  T = (N + Chunk - 1) / Chunk; // Actual chunk count after rounding.
  if (T == 1) {
    Fn(0, N, 0);
    return;
  }
  ++Regions;
  // Capturing Fn by reference is safe: this frame outlives every task
  // (Pool->wait() below is the region barrier).
  for (int C = 1; C < T; ++C) {
    int B = C * Chunk, E = std::min(N, B + Chunk);
    Pool->submit([&Fn, B, E, C] { Fn(B, E, C); });
  }
  Fn(0, Chunk, 0);
  Pool->wait();
}
