//===- InferRuntime.h - graph-free inference runtime ------------*- C++ -*-===//
///
/// \file
/// The inference-side execution engine of the Transformer (§VI-A): runs
/// the encoder stack and the batched KV-cached decoder directly on raw
/// float buffers with the tiled/AVX2 kernels — no autograd tape, no
/// per-node allocation. The Graph-based `encode`/`decode`/`pairLoss` in
/// Transformer remain the training path and the bit-exactness oracle:
/// every kernel here either IS the kernel the graph ops call (gemmAcc*,
/// softmaxRowInPlace, layerNormRow) or mirrors the op sequence
/// operation for operation, so `InferRuntime` outputs are bit-identical
/// to the training graph (pinned by tests/test_nn.cpp).
///
/// An InferRuntime is a cheap view over a Transformer (created on demand
/// by the Transformer's public inference entry points); the expensive
/// state — the `EncodeScratch` arena — is pooled process-wide and reused
/// across calls and threads.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_NN_INFERRUNTIME_H
#define SLADE_NN_INFERRUNTIME_H

#include "nn/Parallel.h"
#include "nn/Transformer.h"

#include <cstddef>
#include <memory>
#include <vector>

namespace slade {
namespace nn {

/// Preallocated activation buffers for one encoder forward pass, sized
/// for the longest source seen so far and reused across calls (the
/// encoder allocates NOTHING per request once the arena is warm).
/// Acquired from a process-wide pool by InferRuntime::encodeSource, or
/// owned directly by callers that want single-threaded reuse.
struct EncodeScratch {
  std::vector<float> X;       ///< [T, D] residual stream.
  std::vector<float> Norm;    ///< [T, D] pre-LN block input.
  std::vector<float> Q, K, V; ///< [T, D] attention projections.
  std::vector<float> Qh, Kh, Vh; ///< [T, Dh] per-head slices.
  std::vector<float> Scores;  ///< [T, T] one head's attention matrix.
  std::vector<float> HeadOut; ///< [T, Dh] one head's output.
  std::vector<float> Attn;    ///< [T, D] concatenated head outputs.
  std::vector<float> Proj;    ///< [T, D] block output before residual.
  std::vector<float> FF1;     ///< [T, FF] feed-forward hidden.
  /// Tile-packing scratch for the per-head score GEMM (Kh^T). An explicit
  /// handle with the same pooled lifetime as the rest of the arena — the
  /// kernels hold NO hidden thread-local pack buffers, so sanitizer jobs
  /// (ASan/TSan) see every byte the encoder touches pinned to this
  /// scratch's owner. (The batched decoder needs no NT pack scratch: all
  /// its weight-side operands are pre-packed in DecodeConstants.)
  PackedMat PackB;

  /// Grows every buffer to fit a T-token source of \p Cfg's shape.
  /// Never shrinks, so a pooled scratch converges to the corpus maximum.
  void ensure(const TransformerConfig &Cfg, int T);
  /// Heap bytes currently held (capacity, not size).
  size_t bytes() const;
};

/// Bytes currently retained by the process-wide EncodeScratch pool
/// (idle arenas waiting for the next encodeSource call).
size_t encodeScratchRetainedBytes();

class InferRuntime {
public:
  /// \p TP (optional, non-owning) parallelizes the ENCODER-side entry
  /// points below across its workers; the decoder reads the pool from
  /// BatchDecodeState::TP instead so long-lived decode state carries its
  /// own pool. Null = sequential (identical either way by construction).
  explicit InferRuntime(const Transformer &M, ParallelFor *TP = nullptr)
      : M(M), TP(TP) {}

  /// -- encoder ------------------------------------------------------------

  /// Graph-free encoder forward + cross-K/V precompute over a pooled
  /// scratch arena. Bit-identical to Transformer::encodeSourceGraph.
  std::shared_ptr<const Transformer::EncoderCache>
  encodeSource(const std::vector<int> &Src) const;

  /// Same, over caller-owned scratch (no pool round-trip): fills
  /// Out.EncOut/TSrc only; call finishEncoderCache for cross-K/V+consts.
  void encodeInto(const std::vector<int> &Src, EncodeScratch &S,
                  Transformer::EncoderCache &Out) const;

  /// Cross-attention K/V precompute + shared decode constants from an
  /// already-filled EncOut. Shared by the fast path and the graph oracle
  /// so the two produce identical caches whenever EncOut matches.
  void finishEncoderCache(Transformer::EncoderCache &Cache) const;

  /// -- decoder (the batched KV-cached hot path) ----------------------------

  /// Builds the weight-version-tagged decode constants (fused self Q|K|V,
  /// transposed output embedding). Transformer::decodeConstants owns the
  /// per-model cache slot and calls this on a version miss.
  std::shared_ptr<const Transformer::DecodeConstants>
  buildDecodeConstants() const;

  /// Builds the weight-version-tagged encoder/cross packed-weight tiles
  /// (every persistent matrix the encoder-side GEMMs consume, pre-packed
  /// into the blocked tile-major microkernel layout). Cached per weight
  /// version by Transformer::packedWeights, invalidated together with
  /// DecodeConstants by bumpWeightVersion().
  std::shared_ptr<const Transformer::PackedWeights> buildPackedWeights() const;

  Transformer::BatchDecodeState startDecodeBatchMulti(
      const std::vector<std::shared_ptr<const Transformer::EncoderCache>>
          &Encs,
      int BeamsPerSource, int MaxSteps) const;
  Transformer::BatchDecodeState
  startDecodeStream(int MaxSources, int BeamsPerSource, int MaxSteps) const;
  int admitStreamRow(Transformer::BatchDecodeState &St, int Seg,
                     std::shared_ptr<const Transformer::EncoderCache> Enc)
      const;
  std::vector<float> stepDecodeBatch(Transformer::BatchDecodeState &St,
                                     const std::vector<int> &Tokens) const;
  void reorderBeams(Transformer::BatchDecodeState &St,
                    const std::vector<int> &SrcIdx) const;
  void abortStreamSegment(Transformer::BatchDecodeState &St, int Seg) const;

  /// -- speculative decode (see Transformer.h for the contracts) ------------

  std::vector<float> stepDecodeSpec(Transformer::BatchDecodeState &St,
                                    const std::vector<SpecRow> &Plan,
                                    int Begin, int End) const;
  void commitSpec(Transformer::BatchDecodeState &St,
                  const std::vector<SpecRow> &Plan,
                  const std::vector<int> &NewRows) const;

private:
  const Transformer &M;
  ParallelFor *TP = nullptr; ///< Encoder-side pool (null = sequential).

  /// The one batched-decoder forward: embeds, runs every decoder layer
  /// and the output projection over St.FwdRows, returns logits
  /// [FwdRows.size(), Vocab]. stepDecodeBatch and stepDecodeSpec are
  /// thin lowerings onto this, which is what makes speculative logits
  /// bit-identical to committed stepping by construction.
  std::vector<float>
  forwardDecodeRows(Transformer::BatchDecodeState &St) const;

  /// Out = X * W over a PRE-PACKED weight, bias added AFTER the product
  /// (mirrors the graph's addRow(matmul(...)) rounding). Splits output
  /// rows (or column tiles when Rows is small) across \p TP when set;
  /// each output element's K-reduction stays on one thread, so results
  /// are bit-identical at any thread count.
  void linearRowsBiasAfter(const float *X, int Rows, const PackedMat &W,
                           const float *Bias, float *Out,
                           ParallelFor *TP) const;
  /// Out[r] = X[r] * W + Bias over a PRE-PACKED weight, bias seeded
  /// before accumulation (the decode-path layout). Same TP splitting
  /// contract as linearRowsBiasAfter.
  void linearRows(const float *X, int Rows, const PackedMat &W,
                  const float *Bias, float *Out, ParallelFor *TP) const;
  /// int8 variant over a pre-quantized transposed weight ([out, in] rows):
  /// bias-seed, quantize the activations into \p ActQ, then a row-split
  /// gemmI8NT (int32 accumulation — exact, so splits are bit-identical).
  void linearRowsI8(const float *X, int Rows, const QuantizedMat &W,
                    const float *Bias, float *Out, QuantizedMat &ActQ,
                    ParallelFor *TP) const;
  /// C += X * W over a PRE-PACKED weight with no bias handling (caller
  /// seeds C); row- or tile-split across \p TP like linearRows.
  void gemmPackedPar(const float *X, const PackedMat &W, float *C, int Rows,
                     ParallelFor *TP) const;
};

} // namespace nn
} // namespace slade

#endif // SLADE_NN_INFERRUNTIME_H
