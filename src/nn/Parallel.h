//===- Parallel.h - intra-tick data-parallel row splitting ------*- C++ -*-===//
///
/// \file
/// A persistent worker pool that splits INDEPENDENT row/tile ranges of
/// one kernel invocation across threads — the intra-tick counterpart of
/// the serve engine's across-request sharding. One decode tick (or one
/// encoder pass) fans its GEMM M-tiles, attention rows, and row-wise
/// epilogues out over the pool and joins before the next dependent
/// region starts, so a SINGLE request uses multiple cores.
///
/// Bit-exactness by construction: only output-element ranges are ever
/// partitioned, never reductions — each output element's K-reduction
/// (and every other accumulation) runs sequentially on exactly one
/// thread in the same order as the single-threaded kernels, so results
/// are byte-identical at any thread count. `run` is a barrier: all
/// chunks complete before it returns, which is the only ordering the
/// callers' region structure needs (e.g. all K/V writes land before any
/// row attends).
///
/// With 1 thread (the default everywhere) no pool exists and `run`
/// degenerates to a direct call — byte-for-byte and
/// instruction-for-instruction today's sequential behavior.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_NN_PARALLEL_H
#define SLADE_NN_PARALLEL_H

#include "support/ThreadPool.h"

#include <cstdint>
#include <functional>
#include <memory>

namespace slade {
namespace nn {

class ParallelFor {
public:
  /// \p Threads is the total worker budget for regions run through this
  /// object, INCLUDING the calling thread: N > 1 spawns N - 1 pool
  /// workers; N <= 1 spawns nothing.
  explicit ParallelFor(int Threads = 1);

  /// Workers this object fans out to (>= 1; 1 = fully inline).
  int threads() const { return NThreads; }

  /// Splits [0, N) into at most threads() contiguous chunks and runs
  /// \p Fn(Begin, End, Chunk) for each, chunk 0 inline on the calling
  /// thread, the rest on the pool; returns after ALL chunks finish.
  /// Chunk indices are dense in [0, threads()), so callers can key
  /// per-chunk scratch slabs off them. \p Fn must not throw, must not
  /// call run() on the same object (no nesting), and run() must only be
  /// called from the thread that owns this object.
  void run(int N, const std::function<void(int Begin, int End, int Chunk)>
                      &Fn);

  /// Regions that actually fanned out to the pool (telemetry; stays 0
  /// at threads() == 1).
  uint64_t regions() const { return Regions; }

private:
  int NThreads = 1;
  std::unique_ptr<ThreadPool> Pool; ///< Null when NThreads <= 1.
  uint64_t Regions = 0;
};

} // namespace nn
} // namespace slade

#endif // SLADE_NN_PARALLEL_H
