//===- Transformer.cpp - sequence-to-sequence Transformer --------------------===//

#include "nn/Transformer.h"

#include "support/RNG.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

using namespace slade;
using namespace slade::nn;

namespace {

void initMat(Mat &M, int R, int C, SplitMix64 &Rng, float Std) {
  M = Mat(R, C);
  for (float &V : M.V)
    V = static_cast<float>(Rng.normal()) * Std;
}

void initOnes(Mat &M, int C) {
  M = Mat(1, C);
  std::fill(M.V.begin(), M.V.end(), 1.0f);
}

void initZeros(Mat &M, int R, int C) { M = Mat(R, C); }

} // namespace

Transformer::Transformer(const TransformerConfig &Cfg) : Cfg(Cfg) {
  SplitMix64 Rng(Cfg.Seed);
  const float Std = 0.02f; // Paper: N(0, 0.02).
  int D = Cfg.DModel;
  initMat(TokEmb, Cfg.Vocab, D, Rng, Std);
  initMat(EncPos, Cfg.MaxLen, D, Rng, Std);
  initMat(DecPos, Cfg.MaxLen, D, Rng, Std);
  auto initAttn = [&](Attn &A) {
    initMat(A.Wq, D, D, Rng, Std);
    initZeros(A.Bq, 1, D);
    initMat(A.Wk, D, D, Rng, Std);
    initZeros(A.Bk, 1, D);
    initMat(A.Wv, D, D, Rng, Std);
    initZeros(A.Bv, 1, D);
    initMat(A.Wo, D, D, Rng, Std);
    initZeros(A.Bo, 1, D);
  };
  auto initLN = [&](LN &L) {
    initOnes(L.Gamma, D);
    initZeros(L.Beta, 1, D);
  };
  Enc.resize(static_cast<size_t>(Cfg.EncLayers));
  for (EncLayer &L : Enc) {
    initLN(L.LN1);
    initAttn(L.Self);
    initLN(L.LN2);
    initMat(L.W1, D, Cfg.FF, Rng, Std);
    initZeros(L.B1, 1, Cfg.FF);
    initMat(L.W2, Cfg.FF, D, Rng, Std);
    initZeros(L.B2, 1, D);
  }
  Dec.resize(static_cast<size_t>(Cfg.DecLayers));
  for (DecLayer &L : Dec) {
    initLN(L.LN1);
    initAttn(L.Self);
    initLN(L.LN2);
    initAttn(L.Cross);
    initLN(L.LN3);
    initMat(L.W1, D, Cfg.FF, Rng, Std);
    initZeros(L.B1, 1, Cfg.FF);
    initMat(L.W2, Cfg.FF, D, Rng, Std);
    initZeros(L.B2, 1, D);
  }
  initLN(EncFinal);
  initLN(DecFinal);
}

std::vector<ParamRef> Transformer::params() {
  std::vector<ParamRef> Out;
  auto mat = [&](Mat &M) { Out.push_back({&M, true}); };
  auto vec = [&](Mat &M) { Out.push_back({&M, false}); };
  mat(TokEmb);
  vec(EncPos);
  vec(DecPos);
  auto attn = [&](Attn &A) {
    mat(A.Wq);
    vec(A.Bq);
    mat(A.Wk);
    vec(A.Bk);
    mat(A.Wv);
    vec(A.Bv);
    mat(A.Wo);
    vec(A.Bo);
  };
  auto ln = [&](LN &L) {
    vec(L.Gamma);
    vec(L.Beta);
  };
  for (EncLayer &L : Enc) {
    ln(L.LN1);
    attn(L.Self);
    ln(L.LN2);
    mat(L.W1);
    vec(L.B1);
    mat(L.W2);
    vec(L.B2);
  }
  for (DecLayer &L : Dec) {
    ln(L.LN1);
    attn(L.Self);
    ln(L.LN2);
    attn(L.Cross);
    ln(L.LN3);
    mat(L.W1);
    vec(L.B1);
    mat(L.W2);
    vec(L.B2);
  }
  ln(EncFinal);
  ln(DecFinal);
  return Out;
}

size_t Transformer::parameterCount() {
  size_t N = 0;
  for (const ParamRef &P : params())
    N += P.M->size();
  return N;
}

Mat *Transformer::attention(Graph &G, Mat *XQ, Mat *XKV, Attn &P,
                            bool Causal, bool Train) {
  int D = Cfg.DModel, H = Cfg.NHeads, Dh = D / H;
  Mat *Q = addRow(G, matmul(G, XQ, &P.Wq), &P.Bq);
  Mat *K = addRow(G, matmul(G, XKV, &P.Wk), &P.Bk);
  Mat *V = addRow(G, matmul(G, XKV, &P.Wv), &P.Bv);
  std::vector<Mat *> Heads;
  float Scale = 1.0f / std::sqrt(static_cast<float>(Dh));
  for (int Hd = 0; Hd < H; ++Hd) {
    Mat *Qh = sliceCols(G, Q, Hd * Dh, Dh);
    Mat *Kh = sliceCols(G, K, Hd * Dh, Dh);
    Mat *Vh = sliceCols(G, V, Hd * Dh, Dh);
    Mat *S = scale(G, matmulNT(G, Qh, Kh), Scale);
    Mat *Pm = softmaxRows(G, S, Causal);
    if (Train && Cfg.DropoutP > 0)
      Pm = dropout(G, Pm, Cfg.DropoutP, &DropRng);
    Heads.push_back(matmul(G, Pm, Vh));
  }
  Mat *O = concatCols(G, Heads);
  return addRow(G, matmul(G, O, &P.Wo), &P.Bo);
}

Mat *Transformer::encode(Graph &G, const std::vector<int> &Src, bool Train) {
  Mat *X = embed(G, &TokEmb, &EncPos, Src);
  if (Train && Cfg.DropoutP > 0)
    X = dropout(G, X, Cfg.DropoutP, &DropRng);
  for (EncLayer &L : Enc) {
    // Pre-LN residual blocks (eq. 8-9).
    Mat *N1 = layerNorm(G, X, &L.LN1.Gamma, &L.LN1.Beta);
    Mat *A = attention(G, N1, N1, L.Self, /*Causal=*/false, Train);
    X = add(G, X, A);
    Mat *H = layerNorm(G, X, &L.LN2.Gamma, &L.LN2.Beta);
    H = addRow(G, matmul(G, H, &L.W1), &L.B1);
    H = relu(G, H);
    if (Train && Cfg.DropoutP > 0)
      H = dropout(G, H, Cfg.DropoutP, &DropRng);
    H = addRow(G, matmul(G, H, &L.W2), &L.B2);
    X = add(G, X, H);
  }
  return layerNorm(G, X, &EncFinal.Gamma, &EncFinal.Beta);
}

Mat *Transformer::decode(Graph &G, Mat *EncOut, const std::vector<int> &In,
                         bool Train) {
  Mat *X = embed(G, &TokEmb, &DecPos, In);
  if (Train && Cfg.DropoutP > 0)
    X = dropout(G, X, Cfg.DropoutP, &DropRng);
  for (DecLayer &L : Dec) {
    Mat *N1 = layerNorm(G, X, &L.LN1.Gamma, &L.LN1.Beta);
    X = add(G, X, attention(G, N1, N1, L.Self, /*Causal=*/true, Train));
    Mat *N2 = layerNorm(G, X, &L.LN2.Gamma, &L.LN2.Beta);
    X = add(G, X,
            attention(G, N2, EncOut, L.Cross, /*Causal=*/false, Train));
    Mat *H = layerNorm(G, X, &L.LN3.Gamma, &L.LN3.Beta);
    H = addRow(G, matmul(G, H, &L.W1), &L.B1);
    H = relu(G, H);
    if (Train && Cfg.DropoutP > 0)
      H = dropout(G, H, Cfg.DropoutP, &DropRng);
    H = addRow(G, matmul(G, H, &L.W2), &L.B2);
    X = add(G, X, H);
  }
  return layerNorm(G, X, &DecFinal.Gamma, &DecFinal.Beta);
}

float Transformer::pairLoss(Graph &G, const std::vector<int> &Src,
                            const std::vector<int> &Tgt, bool Train) {
  // Teacher forcing: input <s> t0..tn-1, predict t0..tn-1 </s>.
  std::vector<int> In = {1 /*BOS*/};
  In.insert(In.end(), Tgt.begin(), Tgt.end());
  std::vector<int> Out = Tgt;
  Out.push_back(2 /*EOS*/);
  if (static_cast<int>(In.size()) > Cfg.MaxLen) {
    In.resize(static_cast<size_t>(Cfg.MaxLen));
    Out.resize(static_cast<size_t>(Cfg.MaxLen));
  }
  std::vector<int> SrcCapped = Src;
  if (static_cast<int>(SrcCapped.size()) > Cfg.MaxLen)
    SrcCapped.resize(static_cast<size_t>(Cfg.MaxLen));

  Mat *EncOut = encode(G, SrcCapped, Train);
  Mat *H = decode(G, EncOut, In, Train);
  Mat *Logits = matmulNT(G, H, &TokEmb); // Shared output embedding.
  return crossEntropy(G, Logits, Out);
}

//===----------------------------------------------------------------------===//
// Inference fast path
//===----------------------------------------------------------------------===//

void Transformer::layerNormRow(const float *X, const LN &P,
                               float *Out) const {
  int D = Cfg.DModel;
  float Mean = 0;
  for (int J = 0; J < D; ++J)
    Mean += X[J];
  Mean /= static_cast<float>(D);
  float Var = 0;
  for (int J = 0; J < D; ++J) {
    float Dv = X[J] - Mean;
    Var += Dv * Dv;
  }
  Var /= static_cast<float>(D);
  float Inv = 1.0f / std::sqrt(Var + 1e-5f);
  for (int J = 0; J < D; ++J)
    Out[J] = (X[J] - Mean) * Inv * P.Gamma.V[static_cast<size_t>(J)] +
             P.Beta.V[static_cast<size_t>(J)];
}

void Transformer::linearRow(const float *X, const Mat &W, const Mat &B,
                            float *Out) const {
  int In = W.R, OutD = W.C;
  for (int J = 0; J < OutD; ++J)
    Out[J] = B.V[static_cast<size_t>(J)];
  for (int I = 0; I < In; ++I) {
    float XV = X[I];
    if (XV == 0.0f)
      continue;
    const float *WRow = W.V.data() + static_cast<size_t>(I) * OutD;
    for (int J = 0; J < OutD; ++J)
      Out[J] += XV * WRow[J];
  }
}

void Transformer::linearRows(const float *X, int Rows, const Mat &W,
                             const Mat &Bias, float *Out) const {
  int OutD = W.C;
  for (int R = 0; R < Rows; ++R)
    std::memcpy(Out + static_cast<size_t>(R) * OutD, Bias.V.data(),
                static_cast<size_t>(OutD) * sizeof(float));
  gemmAcc(X, W.V.data(), Out, Rows, W.R, OutD);
}

std::shared_ptr<const Transformer::DecodeConstants>
Transformer::decodeConstants() const {
  std::lock_guard<std::mutex> Lock(ConstCache.Box->Mu);
  std::shared_ptr<const DecodeConstants> &Cur = ConstCache.Box->Cur;
  if (Cur && Cur->Version == WeightVersion)
    return Cur;

  int D = Cfg.DModel;
  auto C = std::make_shared<DecodeConstants>();
  C->Version = WeightVersion;
  // Fused Q|K|V projection per decoder layer: one GEMM projects all three.
  C->SelfQKVW.resize(Dec.size());
  C->SelfQKVB.resize(Dec.size());
  for (size_t L = 0; L < Dec.size(); ++L) {
    const Attn &A = Dec[L].Self;
    std::vector<float> &W = C->SelfQKVW[L];
    std::vector<float> &B = C->SelfQKVB[L];
    W.resize(static_cast<size_t>(D) * 3 * D);
    B.resize(static_cast<size_t>(3) * D);
    for (int I = 0; I < D; ++I)
      for (int J = 0; J < D; ++J) {
        W[static_cast<size_t>(I) * 3 * D + J] = A.Wq.at(I, J);
        W[static_cast<size_t>(I) * 3 * D + D + J] = A.Wk.at(I, J);
        W[static_cast<size_t>(I) * 3 * D + 2 * D + J] = A.Wv.at(I, J);
      }
    for (int J = 0; J < D; ++J) {
      B[static_cast<size_t>(J)] = A.Bq.V[static_cast<size_t>(J)];
      B[static_cast<size_t>(D + J)] = A.Bk.V[static_cast<size_t>(J)];
      B[static_cast<size_t>(2 * D + J)] = A.Bv.V[static_cast<size_t>(J)];
    }
  }
  C->EmbT.resize(static_cast<size_t>(D) * Cfg.Vocab);
  for (int W = 0; W < Cfg.Vocab; ++W)
    for (int J = 0; J < D; ++J)
      C->EmbT[static_cast<size_t>(J) * Cfg.Vocab + W] = TokEmb.at(W, J);
  Cur = C;
  return C;
}

std::shared_ptr<const Transformer::EncoderCache>
Transformer::encodeSource(const std::vector<int> &Src) const {
  auto Cache = std::make_shared<EncoderCache>();
  std::vector<int> S = Src;
  if (static_cast<int>(S.size()) > Cfg.MaxLen)
    S.resize(static_cast<size_t>(Cfg.MaxLen));
  int T = static_cast<int>(S.size()), D = Cfg.DModel;
  // Run the encoder on an inference-mode Graph: no gradient buffers are
  // allocated and no backward closures recorded.
  Graph G(/*Inference=*/true);
  Mat *X = embed(G, const_cast<Mat *>(&TokEmb), const_cast<Mat *>(&EncPos),
                 S);
  Transformer *Self = const_cast<Transformer *>(this);
  for (EncLayer &L : Self->Enc) {
    Mat *N1 = layerNorm(G, X, &L.LN1.Gamma, &L.LN1.Beta);
    Mat *A = Self->attention(G, N1, N1, L.Self, false, false);
    X = add(G, X, A);
    Mat *H = layerNorm(G, X, &L.LN2.Gamma, &L.LN2.Beta);
    H = addRow(G, matmul(G, H, &L.W1), &L.B1);
    H = relu(G, H);
    H = addRow(G, matmul(G, H, &L.W2), &L.B2);
    X = add(G, X, H);
  }
  Mat *EncOut = layerNorm(G, X, &Self->EncFinal.Gamma,
                          &Self->EncFinal.Beta);
  Cache->EncOut = EncOut->V;
  Cache->TSrc = T;

  // Precompute cross-attention K/V per decoder layer, batched over the
  // source positions.
  Cache->CrossK.resize(Dec.size());
  Cache->CrossV.resize(Dec.size());
  for (size_t L = 0; L < Dec.size(); ++L) {
    const Attn &A = Dec[L].Cross;
    Cache->CrossK[L].assign(static_cast<size_t>(T) * D, 0.0f);
    Cache->CrossV[L].assign(static_cast<size_t>(T) * D, 0.0f);
    linearRows(Cache->EncOut.data(), T, A.Wk, A.Bk, Cache->CrossK[L].data());
    linearRows(Cache->EncOut.data(), T, A.Wv, A.Bv, Cache->CrossV[L].data());
  }

  // Decode-session constants (fused Q|K|V projection, transposed output
  // embedding) are per-model, not per-source: borrow the shared
  // weight-versioned copy instead of rebuilding them per request.
  Cache->Consts = decodeConstants();
  return Cache;
}

Transformer::DecodeState
Transformer::startDecode(const std::vector<int> &Src) const {
  std::shared_ptr<const EncoderCache> Cache = encodeSource(Src);
  DecodeState St;
  St.EncOut = Cache->EncOut;
  St.TSrc = Cache->TSrc;
  St.CrossK = Cache->CrossK;
  St.CrossV = Cache->CrossV;
  St.SelfK.resize(Dec.size());
  St.SelfV.resize(Dec.size());
  return St;
}

std::vector<float> Transformer::stepDecode(DecodeState &St,
                                           int Token) const {
  int D = Cfg.DModel, H = Cfg.NHeads, Dh = D / H;
  int Pos = St.Len < Cfg.MaxLen ? St.Len : Cfg.MaxLen - 1;
  std::vector<float> X(static_cast<size_t>(D));
  for (int J = 0; J < D; ++J)
    X[static_cast<size_t>(J)] =
        TokEmb.at(Token, J) + DecPos.at(Pos, J);

  std::vector<float> Norm(static_cast<size_t>(D));
  std::vector<float> Q(static_cast<size_t>(D)), K(static_cast<size_t>(D)),
      V(static_cast<size_t>(D)), AttnOut(static_cast<size_t>(D)),
      Proj(static_cast<size_t>(D));
  std::vector<float> FF1(static_cast<size_t>(Cfg.FF));

  for (size_t L = 0; L < Dec.size(); ++L) {
    const DecLayer &Lay = Dec[L];
    // Self attention with the growing cache.
    layerNormRow(X.data(), Lay.LN1, Norm.data());
    linearRow(Norm.data(), Lay.Self.Wq, Lay.Self.Bq, Q.data());
    linearRow(Norm.data(), Lay.Self.Wk, Lay.Self.Bk, K.data());
    linearRow(Norm.data(), Lay.Self.Wv, Lay.Self.Bv, V.data());
    St.SelfK[L].insert(St.SelfK[L].end(), K.begin(), K.end());
    St.SelfV[L].insert(St.SelfV[L].end(), V.begin(), V.end());
    int TCtx = St.Len + 1;
    float InvS = 1.0f / std::sqrt(static_cast<float>(Dh));
    for (int Hd = 0; Hd < H; ++Hd) {
      int Off = Hd * Dh;
      std::vector<float> Scores(static_cast<size_t>(TCtx));
      float MaxS = -1e30f;
      for (int Tt = 0; Tt < TCtx; ++Tt) {
        const float *KRow = &St.SelfK[L][static_cast<size_t>(Tt) * D + Off];
        float Dot = 0;
        for (int Jj = 0; Jj < Dh; ++Jj)
          Dot += Q[static_cast<size_t>(Off + Jj)] * KRow[Jj];
        Scores[static_cast<size_t>(Tt)] = Dot * InvS;
        MaxS = std::max(MaxS, Scores[static_cast<size_t>(Tt)]);
      }
      float Sum = 0;
      for (int Tt = 0; Tt < TCtx; ++Tt) {
        Scores[static_cast<size_t>(Tt)] =
            std::exp(Scores[static_cast<size_t>(Tt)] - MaxS);
        Sum += Scores[static_cast<size_t>(Tt)];
      }
      for (int Jj = 0; Jj < Dh; ++Jj)
        AttnOut[static_cast<size_t>(Off + Jj)] = 0;
      for (int Tt = 0; Tt < TCtx; ++Tt) {
        float W = Scores[static_cast<size_t>(Tt)] / Sum;
        const float *VRow = &St.SelfV[L][static_cast<size_t>(Tt) * D + Off];
        for (int Jj = 0; Jj < Dh; ++Jj)
          AttnOut[static_cast<size_t>(Off + Jj)] += W * VRow[Jj];
      }
    }
    linearRow(AttnOut.data(), Lay.Self.Wo, Lay.Self.Bo, Proj.data());
    for (int J = 0; J < D; ++J)
      X[static_cast<size_t>(J)] += Proj[static_cast<size_t>(J)];

    // Cross attention over cached encoder K/V.
    layerNormRow(X.data(), Lay.LN2, Norm.data());
    linearRow(Norm.data(), Lay.Cross.Wq, Lay.Cross.Bq, Q.data());
    float InvS2 = 1.0f / std::sqrt(static_cast<float>(Dh));
    for (int Hd = 0; Hd < H; ++Hd) {
      int Off = Hd * Dh;
      std::vector<float> Scores(static_cast<size_t>(St.TSrc));
      float MaxS = -1e30f;
      for (int Tt = 0; Tt < St.TSrc; ++Tt) {
        const float *KRow =
            &St.CrossK[L][static_cast<size_t>(Tt) * D + Off];
        float Dot = 0;
        for (int Jj = 0; Jj < Dh; ++Jj)
          Dot += Q[static_cast<size_t>(Off + Jj)] * KRow[Jj];
        Scores[static_cast<size_t>(Tt)] = Dot * InvS2;
        MaxS = std::max(MaxS, Scores[static_cast<size_t>(Tt)]);
      }
      float Sum = 0;
      for (int Tt = 0; Tt < St.TSrc; ++Tt) {
        Scores[static_cast<size_t>(Tt)] =
            std::exp(Scores[static_cast<size_t>(Tt)] - MaxS);
        Sum += Scores[static_cast<size_t>(Tt)];
      }
      for (int Jj = 0; Jj < Dh; ++Jj)
        AttnOut[static_cast<size_t>(Off + Jj)] = 0;
      for (int Tt = 0; Tt < St.TSrc; ++Tt) {
        float W = Scores[static_cast<size_t>(Tt)] / Sum;
        const float *VRow =
            &St.CrossV[L][static_cast<size_t>(Tt) * D + Off];
        for (int Jj = 0; Jj < Dh; ++Jj)
          AttnOut[static_cast<size_t>(Off + Jj)] += W * VRow[Jj];
      }
    }
    linearRow(AttnOut.data(), Lay.Cross.Wo, Lay.Cross.Bo, Proj.data());
    for (int J = 0; J < D; ++J)
      X[static_cast<size_t>(J)] += Proj[static_cast<size_t>(J)];

    // FFN.
    layerNormRow(X.data(), Lay.LN3, Norm.data());
    linearRow(Norm.data(), Lay.W1, Lay.B1, FF1.data());
    for (float &F : FF1)
      F = F > 0 ? F : 0;
    linearRow(FF1.data(), Lay.W2, Lay.B2, Proj.data());
    for (int J = 0; J < D; ++J)
      X[static_cast<size_t>(J)] += Proj[static_cast<size_t>(J)];
  }
  ++St.Len;

  layerNormRow(X.data(), DecFinal, Norm.data());
  // Logits against the shared embedding.
  std::vector<float> Logits(static_cast<size_t>(Cfg.Vocab));
  for (int W = 0; W < Cfg.Vocab; ++W) {
    const float *Row = TokEmb.V.data() + static_cast<size_t>(W) * D;
    float Dot = 0;
    for (int J = 0; J < D; ++J)
      Dot += Norm[static_cast<size_t>(J)] * Row[J];
    Logits[static_cast<size_t>(W)] = Dot;
  }
  return Logits;
}

//===----------------------------------------------------------------------===//
// Batched inference (shared encoder/cross caches, one GEMM per beam batch)
//===----------------------------------------------------------------------===//

Transformer::BatchDecodeState
Transformer::startDecodeBatch(std::shared_ptr<const EncoderCache> Enc,
                              int MaxBeams, int MaxSteps) const {
  return startDecodeBatchMulti({std::move(Enc)}, MaxBeams, MaxSteps);
}

Transformer::BatchDecodeState Transformer::startDecodeBatchMulti(
    const std::vector<std::shared_ptr<const EncoderCache>> &Encs,
    int BeamsPerSource, int MaxSteps) const {
  assert(!Encs.empty() && BeamsPerSource > 0 && MaxSteps > 0);
  BatchDecodeState St;
  int MaxBeams = BeamsPerSource * static_cast<int>(Encs.size());
  assert(Encs.size() <= 65535 && BeamsPerSource <= 65535 &&
         "source/slot ids are uint16");
  St.B = static_cast<int>(Encs.size()); // One BOS row per source.
  St.BMax = MaxBeams;
  St.KMax = BeamsPerSource;
  St.Cap = MaxSteps;
  St.RowEnc = Encs;
  St.RowEnc.resize(static_cast<size_t>(MaxBeams));
  St.RowSource.assign(static_cast<size_t>(MaxBeams), 0);
  for (size_t S = 0; S < Encs.size(); ++S)
    St.RowSource[S] = static_cast<uint16_t>(S);
  for (const auto &Enc : Encs)
    St.MaxTSrc = std::max(St.MaxTSrc, Enc->TSrc);
  // All rows share one model: borrow the constants from the first source
  // (every EncoderCache of a model references the same copy).
  St.Consts = Encs.front()->Consts;
  int D = Cfg.DModel;
  size_t PerLayer = static_cast<size_t>(MaxBeams) * St.Cap * D;
  St.SelfK.assign(Dec.size(), std::vector<float>(PerLayer));
  St.SelfV.assign(Dec.size(), std::vector<float>(PerLayer));
  St.Anc.assign(static_cast<size_t>(MaxBeams) * St.Cap, 0);
  size_t Rows = static_cast<size_t>(MaxBeams) * D;
  St.X.resize(Rows);
  St.Norm.resize(Rows);
  St.QKV.resize(Rows * 3);
  St.AttnOut.resize(Rows);
  St.Proj.resize(Rows);
  St.FF1.resize(static_cast<size_t>(MaxBeams) * Cfg.FF);
  St.Scores.resize(static_cast<size_t>(Cfg.NHeads) *
                   std::max(St.Cap, St.MaxTSrc));
  return St;
}

namespace {

#if defined(__AVX2__) && defined(__FMA__)

/// Polynomial expf (Cephes coefficients, ~1e-7 relative error), 8-wide.
/// Used inside the decode softmax where the argument is <= 0; the clamp
/// keeps denormal/overflow inputs finite.
inline __m256 exp256Ps(__m256 X) {
  const __m256 Hi = _mm256_set1_ps(88.3762626647950f);
  const __m256 Lo = _mm256_set1_ps(-87.3365478515625f);
  X = _mm256_min_ps(_mm256_max_ps(X, Lo), Hi);
  const __m256 Log2E = _mm256_set1_ps(1.44269504088896341f);
  __m256 Fx = _mm256_round_ps(_mm256_mul_ps(X, Log2E),
                              _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  X = _mm256_fnmadd_ps(Fx, _mm256_set1_ps(0.693359375f), X);
  X = _mm256_fnmadd_ps(Fx, _mm256_set1_ps(-2.12194440e-4f), X);
  __m256 Y = _mm256_set1_ps(1.9875691500e-4f);
  Y = _mm256_fmadd_ps(Y, X, _mm256_set1_ps(1.3981999507e-3f));
  Y = _mm256_fmadd_ps(Y, X, _mm256_set1_ps(8.3334519073e-3f));
  Y = _mm256_fmadd_ps(Y, X, _mm256_set1_ps(4.1665795894e-2f));
  Y = _mm256_fmadd_ps(Y, X, _mm256_set1_ps(1.6666665459e-1f));
  Y = _mm256_fmadd_ps(Y, X, _mm256_set1_ps(5.0000001201e-1f));
  __m256 X2 = _mm256_mul_ps(X, X);
  Y = _mm256_fmadd_ps(Y, X2, _mm256_add_ps(X, _mm256_set1_ps(1.0f)));
  __m256i N = _mm256_cvtps_epi32(Fx);
  N = _mm256_slli_epi32(_mm256_add_epi32(N, _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(Y, _mm256_castsi256_ps(N));
}

inline float hsum256(__m256 V) {
  __m128 S = _mm_add_ps(_mm256_castps256_ps128(V),
                        _mm256_extractf128_ps(V, 1));
  S = _mm_add_ps(S, _mm_movehl_ps(S, S));
  S = _mm_add_ss(S, _mm_movehdup_ps(S));
  return _mm_cvtss_f32(S);
}

/// AVX2 softmax-attention over cached rows for one query row, one head
/// slice of DhT = NV*8 floats. The score pass keeps the dot product in
/// two FMA chains per row; the value pass holds the output slice in NV
/// register accumulators across the whole context.
template <int NV, typename RowOfK, typename RowOfV>
inline void attendHeadAVX(const float *Qh, float *Oh, int T, int Off,
                          float InvS, float *SRow, const RowOfK &KRowOf,
                          const RowOfV &VRowOf) {
  __m256 Q[NV];
  for (int V = 0; V < NV; ++V)
    Q[V] = _mm256_loadu_ps(Qh + V * 8);
  float MaxS = -1e30f;
  for (int Tt = 0; Tt < T; ++Tt) {
    const float *KRow = KRowOf(Tt) + Off;
    __m256 Acc = _mm256_mul_ps(Q[0], _mm256_loadu_ps(KRow));
    for (int V = 1; V < NV; ++V)
      Acc = _mm256_fmadd_ps(Q[V], _mm256_loadu_ps(KRow + V * 8), Acc);
    float Dot = hsum256(Acc) * InvS;
    SRow[Tt] = Dot;
    MaxS = std::max(MaxS, Dot);
  }
  __m256 MaxV = _mm256_set1_ps(MaxS);
  __m256 SumV = _mm256_setzero_ps();
  int Tt = 0;
  for (; Tt + 8 <= T; Tt += 8) {
    __m256 E = exp256Ps(_mm256_sub_ps(_mm256_loadu_ps(SRow + Tt), MaxV));
    _mm256_storeu_ps(SRow + Tt, E);
    SumV = _mm256_add_ps(SumV, E);
  }
  float Sum = hsum256(SumV);
  for (; Tt < T; ++Tt) {
    float Buf[8] = {SRow[Tt] - MaxS};
    __m256 E = exp256Ps(_mm256_loadu_ps(Buf));
    SRow[Tt] = _mm_cvtss_f32(_mm256_castps256_ps128(E));
    Sum += SRow[Tt];
  }
  float InvSum = 1.0f / Sum;
  __m256 Acc[NV];
  for (int V = 0; V < NV; ++V)
    Acc[V] = _mm256_setzero_ps();
  for (Tt = 0; Tt < T; ++Tt) {
    const float *VRow = VRowOf(Tt) + Off;
    __m256 W = _mm256_set1_ps(SRow[Tt] * InvSum);
    for (int V = 0; V < NV; ++V)
      Acc[V] = _mm256_fmadd_ps(W, _mm256_loadu_ps(VRow + V * 8), Acc[V]);
  }
  for (int V = 0; V < NV; ++V)
    _mm256_storeu_ps(Oh + V * 8, Acc[V]);
}

#endif // __AVX2__ && __FMA__

/// Softmax-attention over cached K/V rows for one query row. Per-head
/// passes with a fixed-width register accumulator for the value
/// reduction: each pass streams only its head's Dh-float slice of the
/// cache, so total memory traffic matches a single fused pass while the
/// inner loops stay pure FMA chains. DhT is the compile-time head width.
template <int DhT, typename RowOfK, typename RowOfV>
inline void attendCached(const float *QRow, float *ORow, int T, int H,
                         float InvS, float *Scores, int ScoreStride,
                         const RowOfK &KRowOf, const RowOfV &VRowOf) {
  for (int Hd = 0; Hd < H; ++Hd) {
    int Off = Hd * DhT;
    float *SRow = Scores + static_cast<size_t>(Hd) * ScoreStride;
    const float *Qh = QRow + Off;
    float MaxS = -1e30f;
    for (int Tt = 0; Tt < T; ++Tt) {
      const float *KRow = KRowOf(Tt) + Off;
      float Dot = 0;
#pragma omp simd reduction(+ : Dot)
      for (int Jj = 0; Jj < DhT; ++Jj)
        Dot += Qh[Jj] * KRow[Jj];
      SRow[Tt] = Dot * InvS;
      MaxS = std::max(MaxS, SRow[Tt]);
    }
    float Sum = 0;
    for (int Tt = 0; Tt < T; ++Tt) {
      SRow[Tt] = std::exp(SRow[Tt] - MaxS);
      Sum += SRow[Tt];
    }
    float InvSum = 1.0f / Sum;
    float Acc[DhT] = {};
    for (int Tt = 0; Tt < T; ++Tt) {
      float W = SRow[Tt] * InvSum;
      const float *VRow = VRowOf(Tt) + Off;
#pragma omp simd
      for (int Jj = 0; Jj < DhT; ++Jj)
        Acc[Jj] += W * VRow[Jj];
    }
    float *Oh = ORow + Off;
#pragma omp simd
    for (int Jj = 0; Jj < DhT; ++Jj)
      Oh[Jj] = Acc[Jj];
  }
}

/// Runtime-Dh dispatcher: common head widths get the fixed-width kernel.
template <typename RowOfK, typename RowOfV>
inline void attendCachedDyn(const float *QRow, float *ORow, int T, int H,
                            int Dh, float InvS, float *Scores,
                            int ScoreStride, const RowOfK &KRowOf,
                            const RowOfV &VRowOf) {
#if defined(__AVX2__) && defined(__FMA__)
  if (Dh % 8 == 0 && Dh <= 32) {
    for (int Hd = 0; Hd < H; ++Hd) {
      int Off = Hd * Dh;
      const float *Qh = QRow + Off;
      float *Oh = ORow + Off;
      float *SRow = Scores + static_cast<size_t>(Hd) * ScoreStride;
      switch (Dh / 8) {
      case 1:
        attendHeadAVX<1>(Qh, Oh, T, Off, InvS, SRow, KRowOf, VRowOf);
        break;
      case 2:
        attendHeadAVX<2>(Qh, Oh, T, Off, InvS, SRow, KRowOf, VRowOf);
        break;
      case 3:
        attendHeadAVX<3>(Qh, Oh, T, Off, InvS, SRow, KRowOf, VRowOf);
        break;
      default:
        attendHeadAVX<4>(Qh, Oh, T, Off, InvS, SRow, KRowOf, VRowOf);
        break;
      }
    }
    return;
  }
#endif
  switch (Dh) {
  case 8:
    attendCached<8>(QRow, ORow, T, H, InvS, Scores, ScoreStride, KRowOf,
                    VRowOf);
    return;
  case 16:
    attendCached<16>(QRow, ORow, T, H, InvS, Scores, ScoreStride, KRowOf,
                     VRowOf);
    return;
  case 32:
    attendCached<32>(QRow, ORow, T, H, InvS, Scores, ScoreStride, KRowOf,
                     VRowOf);
    return;
  default:
    break;
  }
  // Generic fallback, same math in the same order.
  for (int Hd = 0; Hd < H; ++Hd) {
    int Off = Hd * Dh;
    float *SRow = Scores + static_cast<size_t>(Hd) * ScoreStride;
    float MaxS = -1e30f;
    for (int Tt = 0; Tt < T; ++Tt) {
      const float *KRow = KRowOf(Tt) + Off;
      float Dot = 0;
      for (int Jj = 0; Jj < Dh; ++Jj)
        Dot += QRow[Off + Jj] * KRow[Jj];
      SRow[Tt] = Dot * InvS;
      MaxS = std::max(MaxS, SRow[Tt]);
    }
    float Sum = 0;
    for (int Tt = 0; Tt < T; ++Tt) {
      SRow[Tt] = std::exp(SRow[Tt] - MaxS);
      Sum += SRow[Tt];
    }
    float InvSum = 1.0f / Sum;
    for (int Jj = 0; Jj < Dh; ++Jj)
      ORow[Off + Jj] = 0;
    for (int Tt = 0; Tt < T; ++Tt) {
      float W = SRow[Tt] * InvSum;
      const float *VRow = VRowOf(Tt) + Off;
      for (int Jj = 0; Jj < Dh; ++Jj)
        ORow[Off + Jj] += W * VRow[Jj];
    }
  }
}

} // namespace

std::vector<float>
Transformer::stepDecodeBatch(BatchDecodeState &St,
                             const std::vector<int> &Tokens) const {
  int B = St.B, D = Cfg.DModel, H = Cfg.NHeads, Dh = D / H;
  assert(static_cast<int>(Tokens.size()) == B && "one token per beam");
  assert(St.Len < St.Cap && "self-cache capacity exhausted");
  const DecodeConstants &Consts = *St.Consts;
  int Pos = St.Len < Cfg.MaxLen ? St.Len : Cfg.MaxLen - 1;

  float *X = St.X.data(), *Norm = St.Norm.data(), *QKV = St.QKV.data(),
        *AttnOut = St.AttnOut.data(), *Proj = St.Proj.data(),
        *FF1 = St.FF1.data(), *Scores = St.Scores.data();
  for (int Bi = 0; Bi < B; ++Bi)
    for (int J = 0; J < D; ++J)
      X[static_cast<size_t>(Bi) * D + J] =
          TokEmb.at(Tokens[static_cast<size_t>(Bi)], J) + DecPos.at(Pos, J);

  int ScoreStride = std::max(St.Cap, St.MaxTSrc);
  float InvS = 1.0f / std::sqrt(static_cast<float>(Dh));

  // Per-source segment geometry: [Cap, KMax, D] time-major per segment.
  size_t TimeStride = static_cast<size_t>(St.KMax) * D;
  size_t SegStride = static_cast<size_t>(St.Cap) * TimeStride;

  for (size_t L = 0; L < Dec.size(); ++L) {
    const DecLayer &Lay = Dec[L];

    // Self attention: one fused Q|K|V GEMM for the whole beam batch.
    for (int Bi = 0; Bi < B; ++Bi)
      layerNormRow(X + static_cast<size_t>(Bi) * D, Lay.LN1,
                   Norm + static_cast<size_t>(Bi) * D);
    for (int Bi = 0; Bi < B; ++Bi)
      std::memcpy(QKV + static_cast<size_t>(Bi) * 3 * D,
                  Consts.SelfQKVB[L].data(),
                  static_cast<size_t>(3) * D * sizeof(float));
    gemmAcc(Norm, Consts.SelfQKVW[L].data(), QKV, B, D, 3 * D);
    // Each beam writes its new K/V row once, at (t=Len, slot=position
    // within its source's row block); the row is never moved afterwards —
    // descendants find it via Anc. Rows of one source are contiguous, so
    // the running Local counter is the segment-local slot.
    for (int Bi = 0, Local = 0; Bi < B; ++Bi) {
      Local = (Bi > 0 && St.RowSource[static_cast<size_t>(Bi)] ==
                             St.RowSource[static_cast<size_t>(Bi - 1)])
                  ? Local + 1
                  : 0;
      assert(Local < St.KMax && "source rows not contiguous");
      size_t Slot =
          static_cast<size_t>(St.RowSource[static_cast<size_t>(Bi)]) *
              SegStride +
          static_cast<size_t>(St.Len) * TimeStride +
          static_cast<size_t>(Local) * D;
      const float *Row = QKV + static_cast<size_t>(Bi) * 3 * D;
      std::memcpy(&St.SelfK[L][Slot], Row + D,
                  static_cast<size_t>(D) * sizeof(float));
      std::memcpy(&St.SelfV[L][Slot], Row + 2 * D,
                  static_cast<size_t>(D) * sizeof(float));
      if (L == 0)
        St.Anc[static_cast<size_t>(Bi) * St.Cap + St.Len] =
            static_cast<uint16_t>(Local);
    }
    int TCtx = St.Len + 1;
    for (int Bi = 0; Bi < B; ++Bi) {
      const float *KBase =
          St.SelfK[L].data() +
          static_cast<size_t>(St.RowSource[static_cast<size_t>(Bi)]) *
              SegStride;
      const float *VBase =
          St.SelfV[L].data() +
          static_cast<size_t>(St.RowSource[static_cast<size_t>(Bi)]) *
              SegStride;
      const uint16_t *AncB = &St.Anc[static_cast<size_t>(Bi) * St.Cap];
      attendCachedDyn(
          QKV + static_cast<size_t>(Bi) * 3 * D,
          AttnOut + static_cast<size_t>(Bi) * D, TCtx, H, Dh, InvS, Scores,
          ScoreStride,
          [&](int Tt) {
            return KBase + static_cast<size_t>(Tt) * TimeStride +
                   static_cast<size_t>(AncB[Tt]) * D;
          },
          [&](int Tt) {
            return VBase + static_cast<size_t>(Tt) * TimeStride +
                   static_cast<size_t>(AncB[Tt]) * D;
          });
    }
    linearRows(AttnOut, B, Lay.Self.Wo, Lay.Self.Bo, Proj);
    for (size_t I = 0; I < static_cast<size_t>(B) * D; ++I)
      X[I] += Proj[I];

    // Cross attention: the K/V caches are shared by every beam of one
    // source; each row attends over its OWN source's cache (rows of
    // different sources may share the batch).
    for (int Bi = 0; Bi < B; ++Bi)
      layerNormRow(X + static_cast<size_t>(Bi) * D, Lay.LN2,
                   Norm + static_cast<size_t>(Bi) * D);
    linearRows(Norm, B, Lay.Cross.Wq, Lay.Cross.Bq, QKV);
    for (int Bi = 0; Bi < B; ++Bi) {
      const EncoderCache &Enc = *St.RowEnc[static_cast<size_t>(Bi)];
      const float *CK = Enc.CrossK[L].data(), *CV = Enc.CrossV[L].data();
      attendCachedDyn(
          QKV + static_cast<size_t>(Bi) * D,
          AttnOut + static_cast<size_t>(Bi) * D, Enc.TSrc, H, Dh, InvS,
          Scores, ScoreStride,
          [&](int Tt) { return CK + static_cast<size_t>(Tt) * D; },
          [&](int Tt) { return CV + static_cast<size_t>(Tt) * D; });
    }
    linearRows(AttnOut, B, Lay.Cross.Wo, Lay.Cross.Bo, Proj);
    for (size_t I = 0; I < static_cast<size_t>(B) * D; ++I)
      X[I] += Proj[I];

    // FFN, batched across beams.
    for (int Bi = 0; Bi < B; ++Bi)
      layerNormRow(X + static_cast<size_t>(Bi) * D, Lay.LN3,
                   Norm + static_cast<size_t>(Bi) * D);
    linearRows(Norm, B, Lay.W1, Lay.B1, FF1);
    for (size_t I = 0; I < static_cast<size_t>(B) * Cfg.FF; ++I)
      FF1[I] = FF1[I] > 0 ? FF1[I] : 0;
    linearRows(FF1, B, Lay.W2, Lay.B2, Proj);
    for (size_t I = 0; I < static_cast<size_t>(B) * D; ++I)
      X[I] += Proj[I];
  }
  ++St.Len;

  for (int Bi = 0; Bi < B; ++Bi)
    layerNormRow(X + static_cast<size_t>(Bi) * D, DecFinal,
                 Norm + static_cast<size_t>(Bi) * D);
  // Logits against the shared embedding: one streaming [B,D]x[D,V] GEMM
  // over the pre-transposed table.
  std::vector<float> Logits(static_cast<size_t>(B) * Cfg.Vocab, 0.0f);
  gemmAcc(Norm, Consts.EmbT.data(), Logits.data(), B, D, Cfg.Vocab);
  return Logits;
}

void Transformer::reorderBeams(BatchDecodeState &St,
                               const std::vector<int> &SrcIdx) const {
  int NewB = static_cast<int>(SrcIdx.size());
  assert(NewB > 0 && NewB <= St.BMax && "beam count exceeds allocation");
  // Cached K/V rows never move: survivor selection only gathers the
  // per-beam ancestry index rows (Len uint16 entries per beam) and the
  // per-row encoder bindings.
  size_t Used = static_cast<size_t>(St.Len);
  St.AncScratch.resize(static_cast<size_t>(NewB) * Used);
  St.RowEncScratch.resize(static_cast<size_t>(NewB));
  St.RowSourceScratch.resize(static_cast<size_t>(NewB));
  for (int Bi = 0; Bi < NewB; ++Bi) {
    size_t Src = static_cast<size_t>(SrcIdx[static_cast<size_t>(Bi)]);
    std::memcpy(&St.AncScratch[static_cast<size_t>(Bi) * Used],
                &St.Anc[Src * St.Cap], Used * sizeof(uint16_t));
    St.RowEncScratch[static_cast<size_t>(Bi)] = St.RowEnc[Src];
    St.RowSourceScratch[static_cast<size_t>(Bi)] = St.RowSource[Src];
  }
  for (int Bi = 0; Bi < NewB; ++Bi) {
    std::memcpy(&St.Anc[static_cast<size_t>(Bi) * St.Cap],
                &St.AncScratch[static_cast<size_t>(Bi) * Used],
                Used * sizeof(uint16_t));
    St.RowEnc[static_cast<size_t>(Bi)] =
        std::move(St.RowEncScratch[static_cast<size_t>(Bi)]);
    St.RowSource[static_cast<size_t>(Bi)] =
        St.RowSourceScratch[static_cast<size_t>(Bi)];
  }
  St.B = NewB;
}

//===----------------------------------------------------------------------===//
// Checkpointing
//===----------------------------------------------------------------------===//

Status Transformer::save(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return Status::error("cannot open " + Path + " for writing");
  const char Magic[8] = {'S', 'L', 'A', 'D', 'E', 'M', '0', '1'};
  std::fwrite(Magic, 1, 8, F);
  int32_t Ints[8] = {Cfg.Vocab,     Cfg.DModel,    Cfg.NHeads, Cfg.FF,
                     Cfg.EncLayers, Cfg.DecLayers, Cfg.MaxLen, 0};
  std::fwrite(Ints, sizeof(int32_t), 8, F);
  Transformer *Self = const_cast<Transformer *>(this);
  for (const ParamRef &P : Self->params())
    std::fwrite(P.M->V.data(), sizeof(float), P.M->size(), F);
  std::fclose(F);
  return Status::success();
}

Expected<Transformer> Transformer::load(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Expected<Transformer>::error("cannot open " + Path);
  char Magic[8];
  if (std::fread(Magic, 1, 8, F) != 8 ||
      std::memcmp(Magic, "SLADEM01", 8) != 0) {
    std::fclose(F);
    return Expected<Transformer>::error("bad checkpoint magic in " + Path);
  }
  int32_t Ints[8];
  if (std::fread(Ints, sizeof(int32_t), 8, F) != 8) {
    std::fclose(F);
    return Expected<Transformer>::error("truncated checkpoint " + Path);
  }
  TransformerConfig Cfg;
  Cfg.Vocab = Ints[0];
  Cfg.DModel = Ints[1];
  Cfg.NHeads = Ints[2];
  Cfg.FF = Ints[3];
  Cfg.EncLayers = Ints[4];
  Cfg.DecLayers = Ints[5];
  Cfg.MaxLen = Ints[6];
  Transformer T(Cfg);
  for (const ParamRef &P : T.params()) {
    if (std::fread(P.M->V.data(), sizeof(float), P.M->size(), F) !=
        P.M->size()) {
      std::fclose(F);
      return Expected<Transformer>::error("truncated checkpoint " + Path);
    }
  }
  std::fclose(F);
  return T;
}

//===----------------------------------------------------------------------===//
// AdamW
//===----------------------------------------------------------------------===//

AdamW::AdamW(std::vector<ParamRef> ParamsIn, const Config &CfgIn,
             Transformer *ModelIn)
    : Params(std::move(ParamsIn)), Cfg(CfgIn), Model(ModelIn) {
  for (const ParamRef &P : Params) {
    M1.emplace_back(P.M->size(), 0.0f);
    M2.emplace_back(P.M->size(), 0.0f);
  }
}

void AdamW::step() {
  ++Steps;
  if (Model)
    Model->bumpWeightVersion(); // Cached decode constants go stale now.
  // Inverse-sqrt warmup schedule.
  float Scale;
  if (Steps < Cfg.WarmupSteps)
    Scale = static_cast<float>(Steps) / static_cast<float>(Cfg.WarmupSteps);
  else
    Scale = std::sqrt(static_cast<float>(Cfg.WarmupSteps) /
                      static_cast<float>(Steps));
  float LR = Cfg.LR * Scale;

  // Global gradient-norm clipping.
  double NormSq = 0;
  for (const ParamRef &P : Params)
    for (float Gv : P.M->G)
      NormSq += static_cast<double>(Gv) * Gv;
  float ClipScale = 1.0f;
  double Norm = std::sqrt(NormSq);
  if (Norm > Cfg.ClipNorm && Norm > 0)
    ClipScale = static_cast<float>(Cfg.ClipNorm / Norm);

  float B1C = 1.0f - std::pow(Cfg.Beta1, static_cast<float>(Steps));
  float B2C = 1.0f - std::pow(Cfg.Beta2, static_cast<float>(Steps));
  for (size_t P = 0; P < Params.size(); ++P) {
    Mat *M = Params[P].M;
    bool Decay = Params[P].Decay;
    for (size_t I = 0; I < M->size(); ++I) {
      float Gv = M->G[I] * ClipScale;
      M1[P][I] = Cfg.Beta1 * M1[P][I] + (1 - Cfg.Beta1) * Gv;
      M2[P][I] = Cfg.Beta2 * M2[P][I] + (1 - Cfg.Beta2) * Gv * Gv;
      float MHat = M1[P][I] / B1C;
      float VHat = M2[P][I] / B2C;
      float Update = MHat / (std::sqrt(VHat) + Cfg.Eps);
      if (Decay)
        Update += Cfg.WeightDecay * M->V[I]; // Decoupled decay.
      M->V[I] -= LR * Update;
    }
    M->zeroGrad();
  }
}
