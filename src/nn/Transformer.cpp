//===- Transformer.cpp - sequence-to-sequence Transformer --------------------===//

#include "nn/Transformer.h"

#include "nn/InferRuntime.h"
#include "support/RNG.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>

using namespace slade;
using namespace slade::nn;

namespace {

void initMat(Mat &M, int R, int C, SplitMix64 &Rng, float Std) {
  M = Mat(R, C);
  for (float &V : M.V)
    V = static_cast<float>(Rng.normal()) * Std;
}

void initOnes(Mat &M, int C) {
  M = Mat(1, C);
  std::fill(M.V.begin(), M.V.end(), 1.0f);
}

void initZeros(Mat &M, int R, int C) { M = Mat(R, C); }

} // namespace

Transformer::Transformer(const TransformerConfig &Cfg) : Cfg(Cfg) {
  SplitMix64 Rng(Cfg.Seed);
  const float Std = 0.02f; // Paper: N(0, 0.02).
  int D = Cfg.DModel;
  initMat(TokEmb, Cfg.Vocab, D, Rng, Std);
  initMat(EncPos, Cfg.MaxLen, D, Rng, Std);
  initMat(DecPos, Cfg.MaxLen, D, Rng, Std);
  auto initAttn = [&](Attn &A) {
    initMat(A.Wq, D, D, Rng, Std);
    initZeros(A.Bq, 1, D);
    initMat(A.Wk, D, D, Rng, Std);
    initZeros(A.Bk, 1, D);
    initMat(A.Wv, D, D, Rng, Std);
    initZeros(A.Bv, 1, D);
    initMat(A.Wo, D, D, Rng, Std);
    initZeros(A.Bo, 1, D);
  };
  auto initLN = [&](LN &L) {
    initOnes(L.Gamma, D);
    initZeros(L.Beta, 1, D);
  };
  Enc.resize(static_cast<size_t>(Cfg.EncLayers));
  for (EncLayer &L : Enc) {
    initLN(L.LN1);
    initAttn(L.Self);
    initLN(L.LN2);
    initMat(L.W1, D, Cfg.FF, Rng, Std);
    initZeros(L.B1, 1, Cfg.FF);
    initMat(L.W2, Cfg.FF, D, Rng, Std);
    initZeros(L.B2, 1, D);
  }
  Dec.resize(static_cast<size_t>(Cfg.DecLayers));
  for (DecLayer &L : Dec) {
    initLN(L.LN1);
    initAttn(L.Self);
    initLN(L.LN2);
    initAttn(L.Cross);
    initLN(L.LN3);
    initMat(L.W1, D, Cfg.FF, Rng, Std);
    initZeros(L.B1, 1, Cfg.FF);
    initMat(L.W2, Cfg.FF, D, Rng, Std);
    initZeros(L.B2, 1, D);
  }
  initLN(EncFinal);
  initLN(DecFinal);
}

std::vector<ParamRef> Transformer::params() {
  std::vector<ParamRef> Out;
  auto mat = [&](Mat &M) { Out.push_back({&M, true}); };
  auto vec = [&](Mat &M) { Out.push_back({&M, false}); };
  mat(TokEmb);
  vec(EncPos);
  vec(DecPos);
  auto attn = [&](Attn &A) {
    mat(A.Wq);
    vec(A.Bq);
    mat(A.Wk);
    vec(A.Bk);
    mat(A.Wv);
    vec(A.Bv);
    mat(A.Wo);
    vec(A.Bo);
  };
  auto ln = [&](LN &L) {
    vec(L.Gamma);
    vec(L.Beta);
  };
  for (EncLayer &L : Enc) {
    ln(L.LN1);
    attn(L.Self);
    ln(L.LN2);
    mat(L.W1);
    vec(L.B1);
    mat(L.W2);
    vec(L.B2);
  }
  for (DecLayer &L : Dec) {
    ln(L.LN1);
    attn(L.Self);
    ln(L.LN2);
    attn(L.Cross);
    ln(L.LN3);
    mat(L.W1);
    vec(L.B1);
    mat(L.W2);
    vec(L.B2);
  }
  ln(EncFinal);
  ln(DecFinal);
  return Out;
}

size_t Transformer::parameterCount() {
  size_t N = 0;
  for (const ParamRef &P : params())
    N += P.M->size();
  return N;
}

Mat *Transformer::attention(Graph &G, Mat *XQ, Mat *XKV, Attn &P,
                            bool Causal, bool Train) {
  int D = Cfg.DModel, H = Cfg.NHeads, Dh = D / H;
  Mat *Q = addRow(G, matmul(G, XQ, &P.Wq), &P.Bq);
  Mat *K = addRow(G, matmul(G, XKV, &P.Wk), &P.Bk);
  Mat *V = addRow(G, matmul(G, XKV, &P.Wv), &P.Bv);
  std::vector<Mat *> Heads;
  float Scale = 1.0f / std::sqrt(static_cast<float>(Dh));
  for (int Hd = 0; Hd < H; ++Hd) {
    Mat *Qh = sliceCols(G, Q, Hd * Dh, Dh);
    Mat *Kh = sliceCols(G, K, Hd * Dh, Dh);
    Mat *Vh = sliceCols(G, V, Hd * Dh, Dh);
    Mat *S = scale(G, matmulNT(G, Qh, Kh), Scale);
    Mat *Pm = softmaxRows(G, S, Causal);
    if (Train && Cfg.DropoutP > 0)
      Pm = dropout(G, Pm, Cfg.DropoutP, &DropRng);
    Heads.push_back(matmul(G, Pm, Vh));
  }
  Mat *O = concatCols(G, Heads);
  return addRow(G, matmul(G, O, &P.Wo), &P.Bo);
}

Mat *Transformer::encode(Graph &G, const std::vector<int> &Src, bool Train) {
  Mat *X = embed(G, &TokEmb, &EncPos, Src);
  if (Train && Cfg.DropoutP > 0)
    X = dropout(G, X, Cfg.DropoutP, &DropRng);
  for (EncLayer &L : Enc) {
    // Pre-LN residual blocks (eq. 8-9).
    Mat *N1 = layerNorm(G, X, &L.LN1.Gamma, &L.LN1.Beta);
    Mat *A = attention(G, N1, N1, L.Self, /*Causal=*/false, Train);
    X = add(G, X, A);
    Mat *H = layerNorm(G, X, &L.LN2.Gamma, &L.LN2.Beta);
    H = addRow(G, matmul(G, H, &L.W1), &L.B1);
    H = relu(G, H);
    if (Train && Cfg.DropoutP > 0)
      H = dropout(G, H, Cfg.DropoutP, &DropRng);
    H = addRow(G, matmul(G, H, &L.W2), &L.B2);
    X = add(G, X, H);
  }
  return layerNorm(G, X, &EncFinal.Gamma, &EncFinal.Beta);
}

Mat *Transformer::decode(Graph &G, Mat *EncOut, const std::vector<int> &In,
                         bool Train) {
  Mat *X = embed(G, &TokEmb, &DecPos, In);
  if (Train && Cfg.DropoutP > 0)
    X = dropout(G, X, Cfg.DropoutP, &DropRng);
  for (DecLayer &L : Dec) {
    Mat *N1 = layerNorm(G, X, &L.LN1.Gamma, &L.LN1.Beta);
    X = add(G, X, attention(G, N1, N1, L.Self, /*Causal=*/true, Train));
    Mat *N2 = layerNorm(G, X, &L.LN2.Gamma, &L.LN2.Beta);
    X = add(G, X,
            attention(G, N2, EncOut, L.Cross, /*Causal=*/false, Train));
    Mat *H = layerNorm(G, X, &L.LN3.Gamma, &L.LN3.Beta);
    H = addRow(G, matmul(G, H, &L.W1), &L.B1);
    H = relu(G, H);
    if (Train && Cfg.DropoutP > 0)
      H = dropout(G, H, Cfg.DropoutP, &DropRng);
    H = addRow(G, matmul(G, H, &L.W2), &L.B2);
    X = add(G, X, H);
  }
  return layerNorm(G, X, &DecFinal.Gamma, &DecFinal.Beta);
}

float Transformer::pairLoss(Graph &G, const std::vector<int> &Src,
                            const std::vector<int> &Tgt, bool Train) {
  // Teacher forcing: input <s> t0..tn-1, predict t0..tn-1 </s>.
  std::vector<int> In = {1 /*BOS*/};
  In.insert(In.end(), Tgt.begin(), Tgt.end());
  std::vector<int> Out = Tgt;
  Out.push_back(2 /*EOS*/);
  if (static_cast<int>(In.size()) > Cfg.MaxLen) {
    In.resize(static_cast<size_t>(Cfg.MaxLen));
    Out.resize(static_cast<size_t>(Cfg.MaxLen));
  }
  std::vector<int> SrcCapped = Src;
  if (static_cast<int>(SrcCapped.size()) > Cfg.MaxLen)
    SrcCapped.resize(static_cast<size_t>(Cfg.MaxLen));

  Mat *EncOut = encode(G, SrcCapped, Train);
  Mat *H = decode(G, EncOut, In, Train);
  Mat *Logits = matmulNT(G, H, &TokEmb); // Shared output embedding.
  return crossEntropy(G, Logits, Out);
}

//===----------------------------------------------------------------------===//
// Inference fast path
//===----------------------------------------------------------------------===//

void Transformer::layerNormRow(const float *X, const LN &P,
                               float *Out) const {
  // Shared row kernel (also the graph op's forward): every path in the
  // system normalizes with identical rounding.
  nn::layerNormRow(X, Cfg.DModel, P.Gamma.V.data(), P.Beta.V.data(), Out);
}

void Transformer::linearRow(const float *X, const Mat &W, const Mat &B,
                            float *Out) const {
  int In = W.R, OutD = W.C;
  for (int J = 0; J < OutD; ++J)
    Out[J] = B.V[static_cast<size_t>(J)];
  for (int I = 0; I < In; ++I) {
    float XV = X[I];
    if (XV == 0.0f)
      continue;
    const float *WRow = W.V.data() + static_cast<size_t>(I) * OutD;
    for (int J = 0; J < OutD; ++J)
      Out[J] += XV * WRow[J];
  }
}

std::shared_ptr<const Transformer::DecodeConstants>
Transformer::decodeConstants() const {
  VersionedCache<DecodeConstants> &Slot = *ConstCache.Box;
  // Lock-free fast path: N decode shards admit sources concurrently and
  // all want the SAME shared copy, so the steady-state read must not
  // serialize them on the rebuild mutex. The slot is only ever accessed
  // through the shared_ptr atomic free functions.
  std::shared_ptr<const DecodeConstants> Cur =
      std::atomic_load_explicit(&Slot.Cur, std::memory_order_acquire);
  if (Cur && Cur->Version == WeightVersion)
    return Cur;
  // Version miss: rebuild under the lock so concurrent first callers
  // build once; late arrivals re-check before building.
  std::lock_guard<std::mutex> Lock(Slot.Mu);
  Cur = std::atomic_load_explicit(&Slot.Cur, std::memory_order_relaxed);
  if (Cur && Cur->Version == WeightVersion)
    return Cur;
  Cur = InferRuntime(*this).buildDecodeConstants();
  Slot.Builds.fetch_add(1, std::memory_order_relaxed);
  std::atomic_store_explicit(&Slot.Cur, Cur, std::memory_order_release);
  return Cur;
}

std::shared_ptr<const Transformer::PackedWeights>
Transformer::packedWeights() const {
  VersionedCache<PackedWeights> &Slot = *PackCache.Box;
  std::shared_ptr<const PackedWeights> Cur =
      std::atomic_load_explicit(&Slot.Cur, std::memory_order_acquire);
  if (Cur && Cur->Version == WeightVersion)
    return Cur;
  std::lock_guard<std::mutex> Lock(Slot.Mu);
  Cur = std::atomic_load_explicit(&Slot.Cur, std::memory_order_relaxed);
  if (Cur && Cur->Version == WeightVersion)
    return Cur;
  Cur = InferRuntime(*this).buildPackedWeights();
  Slot.Builds.fetch_add(1, std::memory_order_relaxed);
  std::atomic_store_explicit(&Slot.Cur, Cur, std::memory_order_release);
  return Cur;
}

void Transformer::bumpWeightVersion() {
  ++WeightVersion;
  // THE invalidation path for every weight-version-keyed cache: besides
  // the version bump (which readers compare against), proactively drop
  // both cached snapshots so stale packs become unreachable and their
  // memory is released as soon as in-flight sessions let go. Sessions
  // holding the old shared_ptr stay valid — they carry the old Version
  // and are rejected at admission (admitStreamRow) like before.
  std::atomic_store_explicit(&ConstCache.Box->Cur,
                             std::shared_ptr<const DecodeConstants>(),
                             std::memory_order_release);
  std::atomic_store_explicit(&PackCache.Box->Cur,
                             std::shared_ptr<const PackedWeights>(),
                             std::memory_order_release);
}

Transformer::PackCacheStats Transformer::packCacheStats() const {
  PackCacheStats S;
  S.ConstBuilds = ConstCache.Box->Builds.load(std::memory_order_relaxed);
  S.PackBuilds = PackCache.Box->Builds.load(std::memory_order_relaxed);
  if (auto C = std::atomic_load_explicit(&ConstCache.Box->Cur,
                                         std::memory_order_acquire))
    S.PackedBytes += C->packedBytes();
  if (auto P = std::atomic_load_explicit(&PackCache.Box->Cur,
                                         std::memory_order_acquire))
    S.PackedBytes += P->bytes();
  return S;
}

std::shared_ptr<const Transformer::EncoderCache>
Transformer::encodeSource(const std::vector<int> &Src,
                          ParallelFor *TP) const {
  // Graph-free fast path: raw buffers from the pooled scratch arena, the
  // same tiled kernels as the training graph, bit-identical outputs
  // (tested against encodeSourceGraph) at any TP thread count.
  return InferRuntime(*this, TP).encodeSource(Src);
}

std::shared_ptr<const Transformer::EncoderCache>
Transformer::encodeSourceGraph(const std::vector<int> &Src) const {
  auto Cache = std::make_shared<EncoderCache>();
  std::vector<int> S = Src;
  if (static_cast<int>(S.size()) > Cfg.MaxLen)
    S.resize(static_cast<size_t>(Cfg.MaxLen));
  int T = static_cast<int>(S.size());
  // Run the encoder on an inference-mode Graph: no gradient buffers are
  // allocated and no backward closures recorded. Still pays the per-node
  // arena allocations — this path exists as the oracle and baseline.
  Graph G(/*Inference=*/true);
  Mat *X = embed(G, const_cast<Mat *>(&TokEmb), const_cast<Mat *>(&EncPos),
                 S);
  Transformer *Self = const_cast<Transformer *>(this);
  for (EncLayer &L : Self->Enc) {
    Mat *N1 = layerNorm(G, X, &L.LN1.Gamma, &L.LN1.Beta);
    Mat *A = Self->attention(G, N1, N1, L.Self, false, false);
    X = add(G, X, A);
    Mat *H = layerNorm(G, X, &L.LN2.Gamma, &L.LN2.Beta);
    H = addRow(G, matmul(G, H, &L.W1), &L.B1);
    H = relu(G, H);
    H = addRow(G, matmul(G, H, &L.W2), &L.B2);
    X = add(G, X, H);
  }
  Mat *EncOut = layerNorm(G, X, &Self->EncFinal.Gamma,
                          &Self->EncFinal.Beta);
  Cache->EncOut = EncOut->V;
  Cache->TSrc = T;
  // Cross-K/V + shared constants through the SAME code as the fast path,
  // so the two caches agree whenever EncOut does.
  InferRuntime(*this).finishEncoderCache(*Cache);
  return Cache;
}

Transformer::DecodeState
Transformer::startDecode(const std::vector<int> &Src) const {
  std::shared_ptr<const EncoderCache> Cache = encodeSource(Src);
  DecodeState St;
  St.EncOut = Cache->EncOut;
  St.TSrc = Cache->TSrc;
  St.CrossK = Cache->CrossK;
  St.CrossV = Cache->CrossV;
  St.SelfK.resize(Dec.size());
  St.SelfV.resize(Dec.size());
  return St;
}

std::vector<float> Transformer::stepDecode(DecodeState &St,
                                           int Token) const {
  int D = Cfg.DModel, H = Cfg.NHeads, Dh = D / H;
  int Pos = St.Len < Cfg.MaxLen ? St.Len : Cfg.MaxLen - 1;
  std::vector<float> X(static_cast<size_t>(D));
  for (int J = 0; J < D; ++J)
    X[static_cast<size_t>(J)] =
        TokEmb.at(Token, J) + DecPos.at(Pos, J);

  std::vector<float> Norm(static_cast<size_t>(D));
  std::vector<float> Q(static_cast<size_t>(D)), K(static_cast<size_t>(D)),
      V(static_cast<size_t>(D)), AttnOut(static_cast<size_t>(D)),
      Proj(static_cast<size_t>(D));
  std::vector<float> FF1(static_cast<size_t>(Cfg.FF));

  for (size_t L = 0; L < Dec.size(); ++L) {
    const DecLayer &Lay = Dec[L];
    // Self attention with the growing cache.
    layerNormRow(X.data(), Lay.LN1, Norm.data());
    linearRow(Norm.data(), Lay.Self.Wq, Lay.Self.Bq, Q.data());
    linearRow(Norm.data(), Lay.Self.Wk, Lay.Self.Bk, K.data());
    linearRow(Norm.data(), Lay.Self.Wv, Lay.Self.Bv, V.data());
    St.SelfK[L].insert(St.SelfK[L].end(), K.begin(), K.end());
    St.SelfV[L].insert(St.SelfV[L].end(), V.begin(), V.end());
    int TCtx = St.Len + 1;
    float InvS = 1.0f / std::sqrt(static_cast<float>(Dh));
    for (int Hd = 0; Hd < H; ++Hd) {
      int Off = Hd * Dh;
      std::vector<float> Scores(static_cast<size_t>(TCtx));
      float MaxS = -1e30f;
      for (int Tt = 0; Tt < TCtx; ++Tt) {
        const float *KRow = &St.SelfK[L][static_cast<size_t>(Tt) * D + Off];
        float Dot = 0;
        for (int Jj = 0; Jj < Dh; ++Jj)
          Dot += Q[static_cast<size_t>(Off + Jj)] * KRow[Jj];
        Scores[static_cast<size_t>(Tt)] = Dot * InvS;
        MaxS = std::max(MaxS, Scores[static_cast<size_t>(Tt)]);
      }
      float Sum = 0;
      for (int Tt = 0; Tt < TCtx; ++Tt) {
        Scores[static_cast<size_t>(Tt)] =
            std::exp(Scores[static_cast<size_t>(Tt)] - MaxS);
        Sum += Scores[static_cast<size_t>(Tt)];
      }
      for (int Jj = 0; Jj < Dh; ++Jj)
        AttnOut[static_cast<size_t>(Off + Jj)] = 0;
      for (int Tt = 0; Tt < TCtx; ++Tt) {
        float W = Scores[static_cast<size_t>(Tt)] / Sum;
        const float *VRow = &St.SelfV[L][static_cast<size_t>(Tt) * D + Off];
        for (int Jj = 0; Jj < Dh; ++Jj)
          AttnOut[static_cast<size_t>(Off + Jj)] += W * VRow[Jj];
      }
    }
    linearRow(AttnOut.data(), Lay.Self.Wo, Lay.Self.Bo, Proj.data());
    for (int J = 0; J < D; ++J)
      X[static_cast<size_t>(J)] += Proj[static_cast<size_t>(J)];

    // Cross attention over cached encoder K/V.
    layerNormRow(X.data(), Lay.LN2, Norm.data());
    linearRow(Norm.data(), Lay.Cross.Wq, Lay.Cross.Bq, Q.data());
    float InvS2 = 1.0f / std::sqrt(static_cast<float>(Dh));
    for (int Hd = 0; Hd < H; ++Hd) {
      int Off = Hd * Dh;
      std::vector<float> Scores(static_cast<size_t>(St.TSrc));
      float MaxS = -1e30f;
      for (int Tt = 0; Tt < St.TSrc; ++Tt) {
        const float *KRow =
            &St.CrossK[L][static_cast<size_t>(Tt) * D + Off];
        float Dot = 0;
        for (int Jj = 0; Jj < Dh; ++Jj)
          Dot += Q[static_cast<size_t>(Off + Jj)] * KRow[Jj];
        Scores[static_cast<size_t>(Tt)] = Dot * InvS2;
        MaxS = std::max(MaxS, Scores[static_cast<size_t>(Tt)]);
      }
      float Sum = 0;
      for (int Tt = 0; Tt < St.TSrc; ++Tt) {
        Scores[static_cast<size_t>(Tt)] =
            std::exp(Scores[static_cast<size_t>(Tt)] - MaxS);
        Sum += Scores[static_cast<size_t>(Tt)];
      }
      for (int Jj = 0; Jj < Dh; ++Jj)
        AttnOut[static_cast<size_t>(Off + Jj)] = 0;
      for (int Tt = 0; Tt < St.TSrc; ++Tt) {
        float W = Scores[static_cast<size_t>(Tt)] / Sum;
        const float *VRow =
            &St.CrossV[L][static_cast<size_t>(Tt) * D + Off];
        for (int Jj = 0; Jj < Dh; ++Jj)
          AttnOut[static_cast<size_t>(Off + Jj)] += W * VRow[Jj];
      }
    }
    linearRow(AttnOut.data(), Lay.Cross.Wo, Lay.Cross.Bo, Proj.data());
    for (int J = 0; J < D; ++J)
      X[static_cast<size_t>(J)] += Proj[static_cast<size_t>(J)];

    // FFN.
    layerNormRow(X.data(), Lay.LN3, Norm.data());
    linearRow(Norm.data(), Lay.W1, Lay.B1, FF1.data());
    for (float &F : FF1)
      F = F > 0 ? F : 0;
    linearRow(FF1.data(), Lay.W2, Lay.B2, Proj.data());
    for (int J = 0; J < D; ++J)
      X[static_cast<size_t>(J)] += Proj[static_cast<size_t>(J)];
  }
  ++St.Len;

  layerNormRow(X.data(), DecFinal, Norm.data());
  // Logits against the shared embedding.
  std::vector<float> Logits(static_cast<size_t>(Cfg.Vocab));
  for (int W = 0; W < Cfg.Vocab; ++W) {
    const float *Row = TokEmb.V.data() + static_cast<size_t>(W) * D;
    float Dot = 0;
    for (int J = 0; J < D; ++J)
      Dot += Norm[static_cast<size_t>(J)] * Row[J];
    Logits[static_cast<size_t>(W)] = Dot;
  }
  return Logits;
}
//===----------------------------------------------------------------------===//
// Batched inference: delegates to the graph-free InferRuntime
//===----------------------------------------------------------------------===//

Transformer::BatchDecodeState
Transformer::startDecodeBatch(std::shared_ptr<const EncoderCache> Enc,
                              int MaxBeams, int MaxSteps) const {
  return startDecodeBatchMulti({std::move(Enc)}, MaxBeams, MaxSteps);
}

Transformer::BatchDecodeState Transformer::startDecodeBatchMulti(
    const std::vector<std::shared_ptr<const EncoderCache>> &Encs,
    int BeamsPerSource, int MaxSteps) const {
  return InferRuntime(*this).startDecodeBatchMulti(Encs, BeamsPerSource,
                                                   MaxSteps);
}

Transformer::BatchDecodeState
Transformer::startDecodeStream(int MaxSources, int BeamsPerSource,
                               int MaxSteps) const {
  return InferRuntime(*this).startDecodeStream(MaxSources, BeamsPerSource,
                                               MaxSteps);
}

int Transformer::admitStreamRow(
    BatchDecodeState &St, int Seg,
    std::shared_ptr<const EncoderCache> Enc) const {
  return InferRuntime(*this).admitStreamRow(St, Seg, std::move(Enc));
}

std::vector<float>
Transformer::stepDecodeBatch(BatchDecodeState &St,
                             const std::vector<int> &Tokens) const {
  return InferRuntime(*this).stepDecodeBatch(St, Tokens);
}

void Transformer::reorderBeams(BatchDecodeState &St,
                               const std::vector<int> &SrcIdx) const {
  InferRuntime(*this).reorderBeams(St, SrcIdx);
}

void Transformer::abortStreamSegment(BatchDecodeState &St, int Seg) const {
  InferRuntime(*this).abortStreamSegment(St, Seg);
}

std::vector<float> Transformer::stepDecodeSpec(BatchDecodeState &St,
                                               const std::vector<SpecRow> &Plan,
                                               int Begin, int End) const {
  return InferRuntime(*this).stepDecodeSpec(St, Plan, Begin, End);
}

void Transformer::commitSpec(BatchDecodeState &St,
                             const std::vector<SpecRow> &Plan,
                             const std::vector<int> &NewRows) const {
  InferRuntime(*this).commitSpec(St, Plan, NewRows);
}

//===----------------------------------------------------------------------===//
// Checkpointing
//===----------------------------------------------------------------------===//

Status Transformer::save(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return Status::error("cannot open " + Path + " for writing");
  const char Magic[8] = {'S', 'L', 'A', 'D', 'E', 'M', '0', '1'};
  std::fwrite(Magic, 1, 8, F);
  int32_t Ints[8] = {Cfg.Vocab,     Cfg.DModel,    Cfg.NHeads, Cfg.FF,
                     Cfg.EncLayers, Cfg.DecLayers, Cfg.MaxLen, 0};
  std::fwrite(Ints, sizeof(int32_t), 8, F);
  Transformer *Self = const_cast<Transformer *>(this);
  for (const ParamRef &P : Self->params())
    std::fwrite(P.M->V.data(), sizeof(float), P.M->size(), F);
  std::fclose(F);
  return Status::success();
}

Expected<Transformer> Transformer::load(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Expected<Transformer>::error("cannot open " + Path);
  char Magic[8];
  if (std::fread(Magic, 1, 8, F) != 8 ||
      std::memcmp(Magic, "SLADEM01", 8) != 0) {
    std::fclose(F);
    return Expected<Transformer>::error("bad checkpoint magic in " + Path);
  }
  int32_t Ints[8];
  if (std::fread(Ints, sizeof(int32_t), 8, F) != 8) {
    std::fclose(F);
    return Expected<Transformer>::error("truncated checkpoint " + Path);
  }
  TransformerConfig Cfg;
  Cfg.Vocab = Ints[0];
  Cfg.DModel = Ints[1];
  Cfg.NHeads = Ints[2];
  Cfg.FF = Ints[3];
  Cfg.EncLayers = Ints[4];
  Cfg.DecLayers = Ints[5];
  Cfg.MaxLen = Ints[6];
  Transformer T(Cfg);
  for (const ParamRef &P : T.params()) {
    if (std::fread(P.M->V.data(), sizeof(float), P.M->size(), F) !=
        P.M->size()) {
      std::fclose(F);
      return Expected<Transformer>::error("truncated checkpoint " + Path);
    }
  }
  std::fclose(F);
  return T;
}

//===----------------------------------------------------------------------===//
// AdamW
//===----------------------------------------------------------------------===//

AdamW::AdamW(std::vector<ParamRef> ParamsIn, const Config &CfgIn,
             Transformer *ModelIn)
    : Params(std::move(ParamsIn)), Cfg(CfgIn), Model(ModelIn) {
  for (const ParamRef &P : Params) {
    M1.emplace_back(P.M->size(), 0.0f);
    M2.emplace_back(P.M->size(), 0.0f);
  }
}

void AdamW::step() {
  ++Steps;
  if (Model)
    Model->bumpWeightVersion(); // Cached decode constants go stale now.
  // Inverse-sqrt warmup schedule.
  float Scale;
  if (Steps < Cfg.WarmupSteps)
    Scale = static_cast<float>(Steps) / static_cast<float>(Cfg.WarmupSteps);
  else
    Scale = std::sqrt(static_cast<float>(Cfg.WarmupSteps) /
                      static_cast<float>(Steps));
  float LR = Cfg.LR * Scale;

  // Global gradient-norm clipping.
  double NormSq = 0;
  for (const ParamRef &P : Params)
    for (float Gv : P.M->G)
      NormSq += static_cast<double>(Gv) * Gv;
  float ClipScale = 1.0f;
  double Norm = std::sqrt(NormSq);
  if (Norm > Cfg.ClipNorm && Norm > 0)
    ClipScale = static_cast<float>(Cfg.ClipNorm / Norm);

  float B1C = 1.0f - std::pow(Cfg.Beta1, static_cast<float>(Steps));
  float B2C = 1.0f - std::pow(Cfg.Beta2, static_cast<float>(Steps));
  for (size_t P = 0; P < Params.size(); ++P) {
    Mat *M = Params[P].M;
    bool Decay = Params[P].Decay;
    for (size_t I = 0; I < M->size(); ++I) {
      float Gv = M->G[I] * ClipScale;
      M1[P][I] = Cfg.Beta1 * M1[P][I] + (1 - Cfg.Beta1) * Gv;
      M2[P][I] = Cfg.Beta2 * M2[P][I] + (1 - Cfg.Beta2) * Gv * Gv;
      float MHat = M1[P][I] / B1C;
      float VHat = M2[P][I] / B2C;
      float Update = MHat / (std::sqrt(VHat) + Cfg.Eps);
      if (Decay)
        Update += Cfg.WeightDecay * M->V[I]; // Decoupled decay.
      M->V[I] -= LR * Update;
    }
    M->zeroGrad();
  }
}
