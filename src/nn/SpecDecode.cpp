//===- SpecDecode.cpp - speculative propose/verify decode rounds --------------===//

#include "nn/SpecDecode.h"

#include "nn/DraftModel.h"

#include <cassert>
#include <chrono>

using namespace slade;
using namespace slade::nn;

void SpecSession::initBatch(
    const std::vector<std::shared_ptr<const Transformer::EncoderCache>>
        &FullEncs,
    int BeamsPerSource, int MaxSteps) {
  std::vector<std::shared_ptr<const Transformer::EncoderCache>> DraftEncs;
  DraftEncs.reserve(FullEncs.size());
  for (const auto &E : FullEncs)
    DraftEncs.push_back(deriveDraftCache(Draft, *E));
  DraftSt = Draft.startDecodeBatchMulti(DraftEncs, BeamsPerSource, MaxSteps);
  DraftSt.TP = TickTP;
}

void SpecSession::initStream(int MaxSources, int BeamsPerSource,
                             int MaxSteps) {
  DraftSt = Draft.startDecodeStream(MaxSources, BeamsPerSource, MaxSteps);
  DraftSt.TP = TickTP;
}

void SpecSession::setTickPool(ParallelFor *TP) {
  TickTP = TP;
  DraftSt.TP = TP;
}

void SpecSession::admit(int Seg, const Transformer::EncoderCache &FullEnc) {
  int Row = Draft.admitStreamRow(DraftSt, Seg, deriveDraftCache(Draft, FullEnc));
  (void)Row;
  assert(Row >= 0 && "draft admit must mirror a successful full admit");
}

void SpecSession::abortSegment(int Seg) {
  Draft.abortStreamSegment(DraftSt, Seg);
}

int SpecSession::runRound(Transformer::BatchDecodeState &FullSt,
                          std::vector<Job *> &Jobs, const BeamConfig &Cfg,
                          SpecStats &Stats) {
  const int NJ = static_cast<int>(Jobs.size());
  const int Vocab = Full.config().Vocab;

  // Per-round reset + row bases + effective gammas. The gamma clamps are
  // monotone over a job's lifetime (the step budget only shrinks, the
  // segment clock only grows), so a job clamped to 0 stays at 0 — which
  // keeps "stale draft K/V is never attended" an invariant, not a race.
  RowBase.assign(static_cast<size_t>(NJ), 0);
  EffGamma.assign(static_cast<size_t>(NJ), 0);
  int MaxG = 0, Base = 0;
  for (int J = 0; J < NJ; ++J) {
    Job &Jb = *Jobs[J];
    Jb.Finished = false;
    Jb.Proposed = 0;
    Jb.Accepted = 0;
    RowBase[static_cast<size_t>(J)] = Base;
    Base += Jb.StateRows;
    int Gj = std::min(Jb.Gamma, Cfg.MaxLen - 1 - Jb.StepsDone);
    Gj = std::min(Gj, FullSt.Cap - 1 - FullSt.SegLen[static_cast<size_t>(Jb.Seg)]);
    EffGamma[static_cast<size_t>(J)] = std::max(0, Gj);
    MaxG = std::max(MaxG, EffGamma[static_cast<size_t>(J)]);
  }
  assert(Base == FullSt.B && "jobs must cover the live rows in order");

  // Depth-0 plan rows: apply each job's pending (exact) selection to its
  // live state rows. This is the feed plain decode's advance would do.
  Plan.clear();
  DepthStart.assign(static_cast<size_t>(NJ), {});
  DepthCount.assign(static_cast<size_t>(NJ), {});
  Proposals.assign(static_cast<size_t>(NJ), {});
  for (int J = 0; J < NJ; ++J) {
    Job &Jb = *Jobs[J];
    DepthStart[static_cast<size_t>(J)].push_back(static_cast<int>(Plan.size()));
    DepthCount[static_cast<size_t>(J)].push_back(
        static_cast<int>(Jb.PendingSrc.size()));
    for (size_t I = 0; I < Jb.PendingSrc.size(); ++I) {
      SpecRow R;
      R.Seg = static_cast<uint16_t>(Jb.Seg);
      R.Depth = 0;
      R.Parent = RowBase[static_cast<size_t>(J)] + Jb.PendingSrc[I];
      R.Token = Jb.PendingTok[I];
      R.Slot = static_cast<uint16_t>(I);
      Plan.push_back(R);
    }
  }

  // Draft propose loop: forward one depth slice, simulate the selection
  // each proposing job WOULD take if these logits were exact, extend the
  // plan with the proposed rows. Simulations run on copies (constraint
  // cursors included, stats detached) so the real search state only ever
  // advances on full-model logits.
  if (MaxG > 0) {
    auto T0 = std::chrono::steady_clock::now();
    if (Sims.size() < static_cast<size_t>(NJ))
      Sims.resize(static_cast<size_t>(NJ));
    for (int J = 0; J < NJ; ++J) {
      Sim &S = Sims[static_cast<size_t>(J)];
      S.Alive = EffGamma[static_cast<size_t>(J)] > 0;
      if (!S.Alive)
        continue;
      S.Live = *Jobs[J]->Live;
      S.Done = *Jobs[J]->Done;
      S.CC = Jobs[J]->CC ? *Jobs[J]->CC : beamcore::ConstraintCtx();
      S.CC.Stats = nullptr; // The sim must not double-count oracle work.
    }
    size_t DepthLo = 0;
    for (int D = 0;; ++D) {
      size_t DepthHi = Plan.size();
      DraftLogits = Draft.stepDecodeSpec(DraftSt, Plan,
                                         static_cast<int>(DepthLo),
                                         static_cast<int>(DepthHi));
      if (D >= MaxG)
        break; // Deepest rows forwarded for their K/V only.
      for (int J = 0; J < NJ; ++J) {
        Sim &S = Sims[static_cast<size_t>(J)];
        if (D >= EffGamma[static_cast<size_t>(J)] || !S.Alive)
          continue;
        int Off = DepthStart[static_cast<size_t>(J)][static_cast<size_t>(D)] -
                  static_cast<int>(DepthLo);
        const float *LBase = DraftLogits.data();
        auto LF = [&](size_t BI) {
          return LBase + (static_cast<size_t>(Off) + BI) *
                             static_cast<size_t>(Vocab);
        };
        beamcore::SelectResult R = beamcore::selectBeamStep(
            S.Live, S.Done, LF, Vocab, Cfg, Scratch,
            S.CC.active() ? &S.CC : nullptr);
        if (R.StopNow || R.SrcIdx.empty()) {
          // The draft predicts the search ends here; there is nothing to
          // extend, so this is not a countable proposal.
          S.Alive = false;
          continue;
        }
        ++Jobs[J]->Proposed;
        DepthStart[static_cast<size_t>(J)].push_back(
            static_cast<int>(Plan.size()));
        DepthCount[static_cast<size_t>(J)].push_back(
            static_cast<int>(R.SrcIdx.size()));
        for (size_t I = 0; I < R.SrcIdx.size(); ++I) {
          SpecRow Row;
          Row.Seg = static_cast<uint16_t>(Jobs[J]->Seg);
          Row.Depth = D + 1;
          Row.Parent =
              DepthStart[static_cast<size_t>(J)][static_cast<size_t>(D)] +
              R.SrcIdx[I];
          Row.Token = R.Tokens[I];
          Row.Slot = static_cast<uint16_t>(I);
          Plan.push_back(Row);
        }
        Proposals[static_cast<size_t>(J)].push_back(std::move(R));
      }
      if (Plan.size() == DepthHi)
        break; // No job extended: the last slice is already forwarded.
      DepthLo = DepthHi;
    }
    Stats.DraftSeconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
  }

  // ONE batched full-model call scores every planned position.
  FullLogits =
      Full.stepDecodeSpec(FullSt, Plan, 0, static_cast<int>(Plan.size()));

  // Verify: replay the exact selection depth by depth on the REAL search
  // state. Accepted depths consume logits already on hand; the first
  // divergence (or the plan running out) yields the next pending
  // selection, and its depth becomes the committed frontier.
  NewRows.clear();
  for (int J = 0; J < NJ; ++J) {
    Job &Jb = *Jobs[J];
    const std::vector<int> &DS = DepthStart[static_cast<size_t>(J)];
    const std::vector<int> &DCt = DepthCount[static_cast<size_t>(J)];
    const std::vector<beamcore::SelectResult> &Props =
        Proposals[static_cast<size_t>(J)];
    int Frontier = 0;
    for (int D = 0;; ++D) {
      int Start = DS[static_cast<size_t>(D)];
      const float *LBase = FullLogits.data();
      auto LF = [&](size_t BI) {
        return LBase +
               (static_cast<size_t>(Start) + BI) * static_cast<size_t>(Vocab);
      };
      beamcore::SelectResult R = beamcore::selectBeamStep(
          *Jb.Live, *Jb.Done, LF, Vocab, Cfg, Scratch, Jb.CC);
      ++Jb.StepsDone;
      if (R.StopNow || R.SrcIdx.empty() || Jb.StepsDone >= Cfg.MaxLen) {
        // Exactly plain decode's loop exits: quota reached (pre-expansion
        // Live kept), every beam retired, or step budget spent (survivors
        // kept for penalized finalization).
        Jb.Finished = true;
        break;
      }
      if (D < static_cast<int>(Props.size()) &&
          R.SrcIdx == Props[static_cast<size_t>(D)].SrcIdx &&
          R.Tokens == Props[static_cast<size_t>(D)].Tokens) {
        ++Jb.Accepted;
        Frontier = D + 1; // The proposed rows ARE this selection's feed.
        continue;
      }
      Jb.PendingSrc = std::move(R.SrcIdx);
      Jb.PendingTok = std::move(R.Tokens);
      Frontier = D;
      break;
    }
    if (!Jb.Finished) {
      for (int I = 0; I < DCt[static_cast<size_t>(Frontier)]; ++I)
        NewRows.push_back(DS[static_cast<size_t>(Frontier)] + I);
      Jb.StateRows = DCt[static_cast<size_t>(Frontier)];
    }
    Stats.Proposed += static_cast<uint64_t>(Jb.Proposed);
    Stats.Accepted += static_cast<uint64_t>(Jb.Accepted);
  }
  ++Stats.Rounds;

  // Both states adopt the accepted frontier in place; finished jobs'
  // rows simply drop (their segments recycle through the usual paths).
  Full.commitSpec(FullSt, Plan, NewRows);
  Draft.commitSpec(DraftSt, Plan, NewRows);
  return static_cast<int>(Plan.size());
}
