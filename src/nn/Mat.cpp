//===- Mat.cpp - 2-D tensors with reverse-mode autograd ----------------------===//

#include "nn/Mat.h"

#include "nn/SimdExp.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <type_traits>

using namespace slade;
using namespace slade::nn;

namespace {

// Register-blocked microkernel tile sizes. MR x NR accumulators live in
// registers across the K loop; NR = 16 floats spans two AVX registers (or
// four SSE registers) so the inner loop vectorizes under -O2/-O3.
constexpr int MR = 4;
constexpr int NR = 16;
static_assert(NR == slade::nn::GemmTileN,
              "PackedMat tile width must match the microkernel blocking");

/// MRv x NR tile of C += A * B with A row-major [M,K], B row-major [K,N].
/// Accumulation over K runs in increasing order per element, so the
/// result matches the naive triple loop bit-for-bit when C starts at zero.
/// Templated on the row count so short tails (decode batches have M = 1-5
/// rows) still run the register-blocked path instead of a scalar edge.
template <int MRv>
inline void microAcc(const float *A, const float *B, float *C, int K,
                     int LdA, int LdB, int LdC) {
  float Acc[MRv][NR] = {};
  for (int Kk = 0; Kk < K; ++Kk) {
    const float *BRow = B + static_cast<size_t>(Kk) * LdB;
    for (int I = 0; I < MRv; ++I) {
      float AV = A[static_cast<size_t>(I) * LdA + Kk];
#pragma omp simd
      for (int J = 0; J < NR; ++J)
        Acc[I][J] += AV * BRow[J];
    }
  }
  for (int I = 0; I < MRv; ++I) {
    float *CRow = C + static_cast<size_t>(I) * LdC;
#pragma omp simd
    for (int J = 0; J < NR; ++J)
      CRow[J] += Acc[I][J];
  }
}

/// Partial tile (edges): same accumulation order, scalar-friendly.
inline void edgeAcc(const float *A, const float *B, float *C, int MB, int K,
                    int NB, int LdA, int LdB, int LdC) {
  for (int I = 0; I < MB; ++I) {
    const float *ARow = A + static_cast<size_t>(I) * LdA;
    float *CRow = C + static_cast<size_t>(I) * LdC;
    for (int J = 0; J < NB; ++J) {
      float Acc = 0.0f;
      for (int Kk = 0; Kk < K; ++Kk)
        Acc += ARow[Kk] * B[static_cast<size_t>(Kk) * LdB + J];
      CRow[J] += Acc;
    }
  }
}

/// Runs full-width NR column blocks for MB <= MR rows, dispatching to the
/// widest register tile that fits.
inline void rowBlockAcc(const float *A, const float *B, float *C, int MB,
                        int K, int NFull, int LdA, int LdB, int LdC) {
  int I0 = 0;
  auto Run = [&](auto Tag) {
    constexpr int MRv = decltype(Tag)::value;
    for (int J0 = 0; J0 < NFull; J0 += NR)
      microAcc<MRv>(A + static_cast<size_t>(I0) * LdA, B + J0,
                    C + static_cast<size_t>(I0) * LdC + J0, K, LdA, LdB,
                    LdC);
    I0 += MRv;
  };
  while (MB - I0 >= 4)
    Run(std::integral_constant<int, 4>{});
  if (MB - I0 >= 2)
    Run(std::integral_constant<int, 2>{});
  if (MB - I0 >= 1)
    Run(std::integral_constant<int, 1>{});
}

/// MRv-row slice of one pre-packed column tile: the tile is K-major
/// [K][NR] with pad columns zeroed, so the inner loop is a contiguous
/// NR-wide load per K step. All NR accumulator lanes run (pad lanes
/// compute zeros); only the NB real columns are stored. Per-element
/// accumulation order matches microAcc/edgeAcc exactly.
template <int MRv>
inline void microAccPacked(const float *A, const float *Tile, float *C,
                           int K, int NB, int LdA, int LdC) {
  float Acc[MRv][NR] = {};
  for (int Kk = 0; Kk < K; ++Kk) {
    const float *BRow = Tile + static_cast<size_t>(Kk) * NR;
    for (int I = 0; I < MRv; ++I) {
      float AV = A[static_cast<size_t>(I) * LdA + Kk];
#pragma omp simd
      for (int J = 0; J < NR; ++J)
        Acc[I][J] += AV * BRow[J];
    }
  }
  for (int I = 0; I < MRv; ++I) {
    float *CRow = C + static_cast<size_t>(I) * LdC;
#pragma omp simd
    for (int J = 0; J < NB; ++J)
      CRow[J] += Acc[I][J];
  }
}

/// All M rows of one packed tile, dispatching to the widest register
/// block that fits (same dispatch as rowBlockAcc).
inline void tileAccPacked(const float *A, const float *Tile, float *C,
                          int M, int K, int NB, int LdA, int LdC) {
  int I0 = 0;
  auto Run = [&](auto Tag) {
    constexpr int MRv = decltype(Tag)::value;
    microAccPacked<MRv>(A + static_cast<size_t>(I0) * LdA, Tile,
                        C + static_cast<size_t>(I0) * LdC, K, NB, LdA,
                        LdC);
    I0 += MRv;
  };
  while (M - I0 >= 4)
    Run(std::integral_constant<int, 4>{});
  if (M - I0 >= 2)
    Run(std::integral_constant<int, 2>{});
  if (M - I0 >= 1)
    Run(std::integral_constant<int, 1>{});
}

} // namespace

void slade::nn::packBInto(const float *B, int K, int N, PackedMat &Out) {
  Out.K = K;
  Out.N = N;
  int NT = Out.tileCount();
  size_t Need = static_cast<size_t>(NT) * K * NR;
  if (Out.Tiles.size() < Need)
    Out.Tiles.resize(Need);
  for (int T = 0; T < NT; ++T) {
    float *Tile = Out.Tiles.data() + static_cast<size_t>(T) * K * NR;
    int J0 = T * NR;
    int NB = std::min(NR, N - J0);
    for (int Kk = 0; Kk < K; ++Kk) {
      float *Dst = Tile + static_cast<size_t>(Kk) * NR;
      std::memcpy(Dst, B + static_cast<size_t>(Kk) * N + J0,
                  static_cast<size_t>(NB) * sizeof(float));
      if (NB < NR)
        std::memset(Dst + NB, 0,
                    static_cast<size_t>(NR - NB) * sizeof(float));
    }
  }
}

void slade::nn::packBTransposedInto(const float *BT, int N, int K,
                                    PackedMat &Out) {
  Out.K = K;
  Out.N = N;
  int NT = Out.tileCount();
  size_t Need = static_cast<size_t>(NT) * K * NR;
  if (Out.Tiles.size() < Need)
    Out.Tiles.resize(Need);
  for (int T = 0; T < NT; ++T) {
    float *Tile = Out.Tiles.data() + static_cast<size_t>(T) * K * NR;
    int J0 = T * NR;
    int NB = std::min(NR, N - J0);
    if (NB < NR)
      std::memset(Tile, 0, static_cast<size_t>(K) * NR * sizeof(float));
    for (int J = 0; J < NB; ++J) {
      const float *Src = BT + static_cast<size_t>(J0 + J) * K;
      for (int Kk = 0; Kk < K; ++Kk)
        Tile[static_cast<size_t>(Kk) * NR + J] = Src[Kk];
    }
  }
}

void slade::nn::gemmAccPackedTiles(const float *A, const PackedMat &B,
                                   float *C, int M, int T0, int T1) {
  int K = B.K, N = B.N;
  for (int T = T0; T < T1; ++T) {
    const float *Tile =
        B.Tiles.data() + static_cast<size_t>(T) * K * NR;
    int J0 = T * NR;
    tileAccPacked(A, Tile, C + J0, M, K, std::min(NR, N - J0), K, N);
  }
}

void slade::nn::gemmAccPacked(const float *A, const PackedMat &B, float *C,
                              int M) {
  gemmAccPackedTiles(A, B, C, M, 0, B.tileCount());
}

void slade::nn::gemmAcc(const float *A, const float *B, float *C, int M,
                        int K, int N) {
  int NFull = N - N % NR;
  rowBlockAcc(A, B, C, M, K, NFull, K, N, N);
  if (NFull < N)
    edgeAcc(A, B + NFull, C + NFull, M, K, N - NFull, K, N, N);
}

void slade::nn::gemmAccNT(const float *A, const float *B, float *C, int M,
                          int K, int N, PackedMat &PackScratch) {
  // C += A * B^T. Dot-product tiles straight over B's rows leave the
  // inner loop with K-strided loads (painful exactly where attention
  // needs this kernel: scores with small K = Dh and large N = T), so pack
  // B^T once into the tile-major layout and run the register-blocked
  // tiles. Per output element the reduction still runs in increasing K
  // order. The pack scratch is caller-owned and grow-only, so hot-path
  // callers (EncodeScratch) allocate nothing in steady state and the
  // buffer's lifetime is pinned to theirs.
  packBTransposedInto(B, N, K, PackScratch);
  gemmAccPacked(A, PackScratch, C, M);
}

void slade::nn::gemmAccNT(const float *A, const float *B, float *C, int M,
                          int K, int N) {
  // Scratch-less convenience form for the training-graph ops (matmul
  // backward, matmulNT), which have no state object to own a scratch and
  // are not on the serving hot path.
  PackedMat Pack;
  gemmAccNT(A, B, C, M, K, N, Pack);
}

void slade::nn::gemmAccTN(const float *A, const float *B, float *C, int M,
                          int K, int N) {
  // C += A^T * B with A [K,M], B [K,N]: tile over the M x N output, march
  // down K reading one A and one B row per iteration.
  int MFull = M - M % MR, NFull = N - N % NR;
  for (int I0 = 0; I0 < MFull; I0 += MR) {
    for (int J0 = 0; J0 < NFull; J0 += NR) {
      float Acc[MR][NR] = {};
      for (int Kk = 0; Kk < K; ++Kk) {
        const float *ARow = A + static_cast<size_t>(Kk) * M + I0;
        const float *BRow = B + static_cast<size_t>(Kk) * N + J0;
        for (int I = 0; I < MR; ++I) {
          float AV = ARow[I];
#pragma omp simd
          for (int J = 0; J < NR; ++J)
            Acc[I][J] += AV * BRow[J];
        }
      }
      for (int I = 0; I < MR; ++I)
        for (int J = 0; J < NR; ++J)
          C[static_cast<size_t>(I0 + I) * N + J0 + J] += Acc[I][J];
    }
  }
  auto Edge = [&](int IBeg, int IEnd, int JBeg, int JEnd) {
    for (int I = IBeg; I < IEnd; ++I) {
      float *CRow = C + static_cast<size_t>(I) * N;
      for (int J = JBeg; J < JEnd; ++J) {
        float Acc = 0.0f;
        for (int Kk = 0; Kk < K; ++Kk)
          Acc += A[static_cast<size_t>(Kk) * M + I] *
                 B[static_cast<size_t>(Kk) * N + J];
        CRow[J] += Acc;
      }
    }
  };
  Edge(0, MFull, NFull, N);
  Edge(MFull, M, 0, N);
}

void slade::nn::quantizeRowsI8Into(const float *A, int R, int C,
                                   QuantizedMat &Out) {
  Out.R = R;
  Out.C = C;
  size_t Need = static_cast<size_t>(R) * C;
  if (Out.Q.size() < Need)
    Out.Q.resize(Need);
  if (Out.Scale.size() < static_cast<size_t>(R))
    Out.Scale.resize(static_cast<size_t>(R));
  for (int I = 0; I < R; ++I) {
    const float *Row = A + static_cast<size_t>(I) * C;
    float AbsMax = 0.0f;
    for (int J = 0; J < C; ++J) {
      float V = std::fabs(Row[J]);
      AbsMax = V > AbsMax ? V : AbsMax;
    }
    int8_t *QRow = Out.Q.data() + static_cast<size_t>(I) * C;
    if (AbsMax == 0.0f) {
      Out.Scale[static_cast<size_t>(I)] = 0.0f;
      std::memset(QRow, 0, static_cast<size_t>(C));
      continue;
    }
    float Scale = AbsMax / 127.0f;
    float Inv = 127.0f / AbsMax;
    Out.Scale[static_cast<size_t>(I)] = Scale;
    for (int J = 0; J < C; ++J) {
      // nearbyintf (round-to-nearest-even in the default mode) keeps the
      // quantizer deterministic across the scalar and vector builds.
      float Qf = std::nearbyintf(Row[J] * Inv);
      Qf = Qf > 127.0f ? 127.0f : (Qf < -127.0f ? -127.0f : Qf);
      QRow[J] = static_cast<int8_t>(Qf);
    }
  }
}

QuantizedMat slade::nn::quantizeRowsI8(const float *A, int R, int C) {
  QuantizedMat Out;
  quantizeRowsI8Into(A, R, C, Out);
  return Out;
}

namespace {

/// Exact int32 dot product of two int8 rows with |values| <= 127.
inline int32_t dotI8(const int8_t *A, const int8_t *B, int K) {
#if defined(__AVX2__) && defined(__FMA__)
  // The classic sign trick keeps `maddubs` saturation-free: |a| <= 127 as
  // the unsigned operand and sign(a)*b as the signed one bounds each
  // int16 pair sum by 2*127*127 < 32767, so the u8*s8 multiply-add is
  // exact and the int32 accumulation matches the scalar loop bit-for-bit.
  __m256i Acc = _mm256_setzero_si256();
  const __m256i Ones = _mm256_set1_epi16(1);
  int Full = K & ~31;
  for (int Kk = 0; Kk < Full; Kk += 32) {
    __m256i Av = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(A + Kk));
    __m256i Bv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(B + Kk));
    __m256i AAbs = _mm256_sign_epi8(Av, Av);
    __m256i BSgn = _mm256_sign_epi8(Bv, Av);
    __m256i P16 = _mm256_maddubs_epi16(AAbs, BSgn);
    Acc = _mm256_add_epi32(Acc, _mm256_madd_epi16(P16, Ones));
  }
  __m128i S = _mm_add_epi32(_mm256_castsi256_si128(Acc),
                            _mm256_extracti128_si256(Acc, 1));
  S = _mm_add_epi32(S, _mm_shuffle_epi32(S, _MM_SHUFFLE(1, 0, 3, 2)));
  S = _mm_add_epi32(S, _mm_shuffle_epi32(S, _MM_SHUFFLE(2, 3, 0, 1)));
  int32_t Sum = _mm_cvtsi128_si32(S);
  for (int Kk = Full; Kk < K; ++Kk)
    Sum += static_cast<int32_t>(A[Kk]) * static_cast<int32_t>(B[Kk]);
  return Sum;
#else
  int32_t Sum = 0;
  for (int Kk = 0; Kk < K; ++Kk)
    Sum += static_cast<int32_t>(A[Kk]) * static_cast<int32_t>(B[Kk]);
  return Sum;
#endif
}

} // namespace

void slade::nn::gemmI8NT(const QuantizedMat &A, const QuantizedMat &B,
                         float *C) {
  gemmI8NTRows(A, B, C, 0, A.R);
}

void slade::nn::gemmI8NTRows(const QuantizedMat &A, const QuantizedMat &B,
                             float *C, int I0, int I1) {
  assert(A.C == B.C && "gemmI8NT K mismatch");
  int N = B.R, K = A.C;
  for (int I = I0; I < I1; ++I) {
    const int8_t *ARow = A.Q.data() + static_cast<size_t>(I) * K;
    float SA = A.Scale[static_cast<size_t>(I)];
    float *CRow = C + static_cast<size_t>(I) * N;
    if (SA == 0.0f)
      continue; // Zero row contributes nothing to the accumulation.
    for (int J = 0; J < N; ++J) {
      float SB = B.Scale[static_cast<size_t>(J)];
      if (SB == 0.0f)
        continue;
      int32_t Dot =
          dotI8(ARow, B.Q.data() + static_cast<size_t>(J) * K, K);
      CRow[J] += SA * SB * static_cast<float>(Dot);
    }
  }
}

void slade::nn::softmaxRowInPlace(float *Row, int N) {
  if (N <= 0)
    return;
#ifdef SLADE_SIMD_EXP
  int Full = N & ~7;
  // Max: reorder-safe (no rounding), so the vector reduction is exact.
  float MaxV = -1e30f;
  if (Full) {
    __m256 Mx = _mm256_set1_ps(-1e30f);
    for (int J = 0; J < Full; J += 8)
      Mx = _mm256_max_ps(Mx, _mm256_loadu_ps(Row + J));
    MaxV = hmax256(Mx);
  }
  for (int J = Full; J < N; ++J)
    MaxV = Row[J] > MaxV ? Row[J] : MaxV;
  // exp blocks accumulate 8 partial sums; the tail uses the scalar mirror
  // of the same polynomial, then folds in ascending order.
  float Sum = 0;
  if (Full) {
    __m256 Mx = _mm256_set1_ps(MaxV);
    __m256 Sv = _mm256_setzero_ps();
    for (int J = 0; J < Full; J += 8) {
      __m256 E = exp256Ps(_mm256_sub_ps(_mm256_loadu_ps(Row + J), Mx));
      _mm256_storeu_ps(Row + J, E);
      Sv = _mm256_add_ps(Sv, E);
    }
    Sum = hsum256(Sv);
  }
  for (int J = Full; J < N; ++J) {
    Row[J] = expPsScalar(Row[J] - MaxV);
    Sum += Row[J];
  }
  // Per-lane IEEE division: vector and scalar agree bitwise.
  __m256 Sv = _mm256_set1_ps(Sum);
  for (int J = 0; J < Full; J += 8)
    _mm256_storeu_ps(Row + J,
                     _mm256_div_ps(_mm256_loadu_ps(Row + J), Sv));
  for (int J = Full; J < N; ++J)
    Row[J] /= Sum;
#else
  float MaxV = -1e30f;
  for (int J = 0; J < N; ++J)
    MaxV = Row[J] > MaxV ? Row[J] : MaxV;
  float Sum = 0;
  for (int J = 0; J < N; ++J) {
    Row[J] = expPsScalar(Row[J] - MaxV);
    Sum += Row[J];
  }
  for (int J = 0; J < N; ++J)
    Row[J] /= Sum;
#endif
}

void slade::nn::layerNormRow(const float *X, int N, const float *Gamma,
                             const float *Beta, float *Out, float *MeanOut,
                             float *InvStdOut) {
  float Mean = 0;
  for (int J = 0; J < N; ++J)
    Mean += X[J];
  Mean /= static_cast<float>(N);
  float Var = 0;
  for (int J = 0; J < N; ++J) {
    float D = X[J] - Mean;
    Var += D * D;
  }
  Var /= static_cast<float>(N);
  float InvStd = 1.0f / std::sqrt(Var + 1e-5f);
  for (int J = 0; J < N; ++J)
    Out[J] = (X[J] - Mean) * InvStd * Gamma[J] + Beta[J];
  if (MeanOut)
    *MeanOut = Mean;
  if (InvStdOut)
    *InvStdOut = InvStd;
}

Mat *slade::nn::matmul(Graph &G, Mat *A, Mat *B) {
  assert(A->C == B->R && "matmul shape mismatch");
  Mat *C = G.make(A->R, B->C);
  gemmAcc(A->V.data(), B->V.data(), C->V.data(), A->R, A->C, B->C);
  G.addBackward([A, B, C] {
    // dA += dC * B^T ; dB += A^T * dC.
    gemmAccNT(C->G.data(), B->V.data(), A->G.data(), A->R, B->C, A->C);
    gemmAccTN(A->V.data(), C->G.data(), B->G.data(), A->C, A->R, B->C);
  });
  return C;
}

Mat *slade::nn::matmulNT(Graph &G, Mat *A, Mat *B) {
  assert(A->C == B->C && "matmulNT shape mismatch");
  Mat *C = G.make(A->R, B->R);
  gemmAccNT(A->V.data(), B->V.data(), C->V.data(), A->R, A->C, B->R);
  G.addBackward([A, B, C] {
    // C = A*B^T: dA += dC * B ; dB += dC^T * A.
    gemmAcc(C->G.data(), B->V.data(), A->G.data(), A->R, B->R, A->C);
    gemmAccTN(C->G.data(), A->V.data(), B->G.data(), B->R, A->R, A->C);
  });
  return C;
}

Mat *slade::nn::add(Graph &G, Mat *A, Mat *B) {
  assert(A->R == B->R && A->C == B->C && "add shape mismatch");
  Mat *C = G.make(A->R, A->C);
  for (size_t I = 0; I < C->size(); ++I)
    C->V[I] = A->V[I] + B->V[I];
  G.addBackward([A, B, C] {
    for (size_t I = 0; I < C->size(); ++I) {
      A->G[I] += C->G[I];
      B->G[I] += C->G[I];
    }
  });
  return C;
}

Mat *slade::nn::addRow(Graph &G, Mat *A, Mat *Bias) {
  assert(Bias->R == 1 && Bias->C == A->C && "bias shape mismatch");
  Mat *C = G.make(A->R, A->C);
  for (int I = 0; I < A->R; ++I)
    for (int J = 0; J < A->C; ++J)
      C->at(I, J) = A->at(I, J) + Bias->V[static_cast<size_t>(J)];
  G.addBackward([A, Bias, C] {
    for (int I = 0; I < A->R; ++I)
      for (int J = 0; J < A->C; ++J) {
        A->gat(I, J) += C->gat(I, J);
        Bias->G[static_cast<size_t>(J)] += C->gat(I, J);
      }
  });
  return C;
}

Mat *slade::nn::scale(Graph &G, Mat *A, float S) {
  Mat *C = G.make(A->R, A->C);
  for (size_t I = 0; I < C->size(); ++I)
    C->V[I] = A->V[I] * S;
  G.addBackward([A, C, S] {
    for (size_t I = 0; I < C->size(); ++I)
      A->G[I] += C->G[I] * S;
  });
  return C;
}

Mat *slade::nn::relu(Graph &G, Mat *A) {
  Mat *C = G.make(A->R, A->C);
  for (size_t I = 0; I < C->size(); ++I)
    C->V[I] = A->V[I] > 0.0f ? A->V[I] : 0.0f;
  G.addBackward([A, C] {
    for (size_t I = 0; I < C->size(); ++I)
      if (A->V[I] > 0.0f)
        A->G[I] += C->G[I];
  });
  return C;
}

Mat *slade::nn::layerNorm(Graph &G, Mat *A, Mat *Gamma, Mat *Beta) {
  Mat *C = G.make(A->R, A->C);
  Mat *Stats = G.make(A->R, 2); // mean, inv-std per row.
  // Forward through the shared row kernel (the inference runtime calls
  // the same code, which is what keeps the two paths bit-identical).
  for (int I = 0; I < A->R; ++I)
    layerNormRow(A->V.data() + static_cast<size_t>(I) * A->C, A->C,
                 Gamma->V.data(), Beta->V.data(),
                 C->V.data() + static_cast<size_t>(I) * A->C,
                 &Stats->at(I, 0), &Stats->at(I, 1));
  G.addBackward([A, Gamma, Beta, C, Stats] {
    int N = A->C;
    for (int I = 0; I < A->R; ++I) {
      float Mean = Stats->at(I, 0), InvStd = Stats->at(I, 1);
      float SumDy = 0, SumDyXhat = 0;
      for (int J = 0; J < N; ++J) {
        float XHat = (A->at(I, J) - Mean) * InvStd;
        float DY = C->gat(I, J) * Gamma->V[J];
        SumDy += DY;
        SumDyXhat += DY * XHat;
        Gamma->G[J] += C->gat(I, J) * XHat;
        Beta->G[J] += C->gat(I, J);
      }
      for (int J = 0; J < N; ++J) {
        float XHat = (A->at(I, J) - Mean) * InvStd;
        float DY = C->gat(I, J) * Gamma->V[J];
        A->gat(I, J) += InvStd * (DY - SumDy / N - XHat * SumDyXhat / N);
      }
    }
  });
  return C;
}

Mat *slade::nn::softmaxRows(Graph &G, Mat *A, bool Causal) {
  Mat *C = G.make(A->R, A->C);
  for (int I = 0; I < A->R; ++I) {
    int Limit = Causal ? (I + 1 < A->C ? I + 1 : A->C) : A->C;
    float *CRow = C->V.data() + static_cast<size_t>(I) * A->C;
    std::memcpy(CRow, A->V.data() + static_cast<size_t>(I) * A->C,
                static_cast<size_t>(Limit) * sizeof(float));
    softmaxRowInPlace(CRow, Limit); // Shared with the inference runtime.
    for (int J = Limit; J < A->C; ++J)
      CRow[J] = 0.0f;
  }
  G.addBackward([A, C, Causal] {
    for (int I = 0; I < A->R; ++I) {
      int Limit = Causal ? (I + 1 < A->C ? I + 1 : A->C) : A->C;
      float Dot = 0;
      for (int J = 0; J < Limit; ++J)
        Dot += C->gat(I, J) * C->at(I, J);
      for (int J = 0; J < Limit; ++J)
        A->gat(I, J) += C->at(I, J) * (C->gat(I, J) - Dot);
    }
  });
  return C;
}

Mat *slade::nn::embed(Graph &G, Mat *Table, Mat *Pos,
                      const std::vector<int> &Ids) {
  int T = static_cast<int>(Ids.size());
  Mat *C = G.make(T, Table->C);
  for (int I = 0; I < T; ++I) {
    int Id = Ids[static_cast<size_t>(I)];
    int P = I < Pos->R ? I : Pos->R - 1;
    for (int J = 0; J < Table->C; ++J)
      C->at(I, J) = Table->at(Id, J) + Pos->at(P, J);
  }
  std::vector<int> IdsCopy = Ids;
  G.addBackward([Table, Pos, C, IdsCopy] {
    for (int I = 0; I < C->R; ++I) {
      int Id = IdsCopy[static_cast<size_t>(I)];
      int P = I < Pos->R ? I : Pos->R - 1;
      for (int J = 0; J < C->C; ++J) {
        Table->gat(Id, J) += C->gat(I, J);
        Pos->gat(P, J) += C->gat(I, J);
      }
    }
  });
  return C;
}

Mat *slade::nn::sliceCols(Graph &G, Mat *A, int ColStart, int Cols) {
  Mat *C = G.make(A->R, Cols);
  for (int I = 0; I < A->R; ++I)
    for (int J = 0; J < Cols; ++J)
      C->at(I, J) = A->at(I, ColStart + J);
  G.addBackward([A, C, ColStart, Cols] {
    for (int I = 0; I < A->R; ++I)
      for (int J = 0; J < Cols; ++J)
        A->gat(I, ColStart + J) += C->gat(I, J);
  });
  return C;
}

Mat *slade::nn::concatCols(Graph &G, const std::vector<Mat *> &Parts) {
  int Cols = 0;
  for (Mat *P : Parts)
    Cols += P->C;
  Mat *C = G.make(Parts[0]->R, Cols);
  int Off = 0;
  for (Mat *P : Parts) {
    for (int I = 0; I < P->R; ++I)
      for (int J = 0; J < P->C; ++J)
        C->at(I, Off + J) = P->at(I, J);
    Off += P->C;
  }
  std::vector<Mat *> PartsCopy = Parts;
  G.addBackward([PartsCopy, C] {
    int Off = 0;
    for (Mat *P : PartsCopy) {
      for (int I = 0; I < P->R; ++I)
        for (int J = 0; J < P->C; ++J)
          P->gat(I, J) += C->gat(I, Off + J);
      Off += P->C;
    }
  });
  return C;
}

Mat *slade::nn::dropout(Graph &G, Mat *A, float P, uint64_t *RngState) {
  if (P <= 0.0f)
    return A;
  Mat *C = G.make(A->R, A->C);
  Mat *Mask = G.make(A->R, A->C);
  float Keep = 1.0f - P;
  for (size_t I = 0; I < A->size(); ++I) {
    uint64_t Z = (*RngState += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    Z ^= Z >> 31;
    bool Drop = static_cast<double>(Z >> 11) * 0x1.0p-53 < P;
    Mask->V[I] = Drop ? 0.0f : 1.0f / Keep;
    C->V[I] = A->V[I] * Mask->V[I];
  }
  G.addBackward([A, C, Mask] {
    for (size_t I = 0; I < A->size(); ++I)
      A->G[I] += C->G[I] * Mask->V[I];
  });
  return C;
}

float slade::nn::crossEntropy(Graph &G, Mat *Logits,
                              const std::vector<int> &Targets) {
  assert(static_cast<int>(Targets.size()) == Logits->R &&
         "target/logit length mismatch");
  int T = Logits->R, V = Logits->C;
  Mat *Probs = G.make(T, V);
  double Loss = 0;
  for (int I = 0; I < T; ++I) {
    float MaxV = -1e30f;
    for (int J = 0; J < V; ++J)
      MaxV = Logits->at(I, J) > MaxV ? Logits->at(I, J) : MaxV;
    double Sum = 0;
    for (int J = 0; J < V; ++J) {
      float E = std::exp(Logits->at(I, J) - MaxV);
      Probs->at(I, J) = E;
      Sum += E;
    }
    for (int J = 0; J < V; ++J)
      Probs->at(I, J) = static_cast<float>(Probs->at(I, J) / Sum);
    Loss -= std::log(
        static_cast<double>(Probs->at(I, Targets[static_cast<size_t>(I)])) +
        1e-12);
  }
  float Mean = static_cast<float>(Loss / T);
  std::vector<int> TgtCopy = Targets;
  G.addBackward([Logits, Probs, TgtCopy, T, V] {
    float Inv = 1.0f / static_cast<float>(T);
    for (int I = 0; I < T; ++I) {
      for (int J = 0; J < V; ++J)
        Logits->gat(I, J) += Probs->at(I, J) * Inv;
      Logits->gat(I, TgtCopy[static_cast<size_t>(I)]) -= Inv;
    }
  });
  return Mean;
}
