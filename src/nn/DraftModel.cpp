//===- DraftModel.cpp - distilled draft decoder for speculation ---------------===//

#include "nn/DraftModel.h"

#include "nn/InferRuntime.h"

#include <algorithm>
#include <cstring>

using namespace slade;
using namespace slade::nn;

std::shared_ptr<const Transformer::EncoderCache>
nn::deriveDraftCache(const Transformer &Draft,
                     const Transformer::EncoderCache &FullEnc) {
  auto Cache = std::make_shared<Transformer::EncoderCache>();
  Cache->EncOut = FullEnc.EncOut; // The shared encoder representation.
  Cache->TSrc = FullEnc.TSrc;
  InferRuntime(Draft).finishEncoderCache(*Cache);
  return Cache;
}

DraftModel DraftModel::distill(const Transformer &Full,
                               const std::vector<std::vector<int>> &Sources,
                               const DraftConfig &Cfg) {
  const TransformerConfig &FC = Full.config();
  TransformerConfig DC = FC;
  DC.EncLayers = 0; // Decoder-only: conditions on the full encoder.
  DC.DecLayers = std::max(1, Cfg.DecLayers);
  DC.Seed = Cfg.Seed;
  Transformer Draft(DC);

  // Share the embeddings: the draft scores tokens in EXACTLY the full
  // model's embedding space, which is what makes shallow proposals land
  // on the same token ids the full model would pick.
  Draft.TokEmb.V = Full.TokEmb.V;
  Draft.DecPos.V = Full.DecPos.V;
  Draft.EncPos.V = Full.EncPos.V; // Unused (no encoder); kept aligned.

  // 1. Teacher pass: greedy-decode every source once with the full
  //    model, reusing the encoder cache for the training input below.
  struct Pair {
    std::shared_ptr<const Transformer::EncoderCache> Enc;
    std::vector<int> Tgt;
  };
  std::vector<Pair> Pairs;
  Pairs.reserve(Sources.size());
  for (const std::vector<int> &Src : Sources) {
    if (Src.empty())
      continue;
    Pair P;
    P.Enc = Full.encodeSource(Src);
    Transformer::BatchDecodeState St =
        Full.startDecodeBatch(P.Enc, 1, Cfg.MaxTeacherLen + 1);
    std::vector<float> Logits =
        Full.stepDecodeBatch(St, {Transformer::BosId});
    for (int Step = 0; Step < Cfg.MaxTeacherLen; ++Step) {
      int Best = 0;
      for (size_t I = 1; I < Logits.size(); ++I)
        if (Logits[I] > Logits[static_cast<size_t>(Best)])
          Best = static_cast<int>(I);
      if (Best == Transformer::EosId || Best == Transformer::PadId)
        break;
      P.Tgt.push_back(Best);
      Logits = Full.stepDecodeBatch(St, {Best});
    }
    Pairs.push_back(std::move(P));
  }

  // 2. Teacher-forced distillation with frozen embeddings: only the
  //    draft's decoder blocks and final LN train. Round-robin pair order
  //    keeps the pass deterministic.
  if (!Pairs.empty() && Cfg.Steps > 0) {
    std::vector<ParamRef> Trainable;
    for (const ParamRef &P : Draft.params())
      if (P.M != &Draft.TokEmb && P.M != &Draft.DecPos &&
          P.M != &Draft.EncPos)
        Trainable.push_back(P);
    AdamW::Config AC;
    AC.WarmupSteps = std::max(10, Cfg.Steps / 10);
    AdamW Opt(Trainable, AC, &Draft);

    int D = DC.DModel;
    size_t Next = 0;
    for (int Step = 0; Step < Cfg.Steps; ++Step) {
      Graph G;
      for (int B = 0; B < Cfg.BatchSize; ++B) {
        const Pair &P = Pairs[Next];
        Next = (Next + 1) % Pairs.size();
        // The same teacher-forcing shapes as Transformer::pairLoss, but
        // with the FULL model's encoder output as a constant input.
        std::vector<int> In = {Transformer::BosId};
        In.insert(In.end(), P.Tgt.begin(), P.Tgt.end());
        std::vector<int> Out = P.Tgt;
        Out.push_back(Transformer::EosId);
        if (static_cast<int>(In.size()) > DC.MaxLen) {
          In.resize(static_cast<size_t>(DC.MaxLen));
          Out.resize(static_cast<size_t>(DC.MaxLen));
        }
        Mat *EncM = G.make(P.Enc->TSrc, D);
        std::memcpy(EncM->V.data(), P.Enc->EncOut.data(),
                    static_cast<size_t>(P.Enc->TSrc) * D * sizeof(float));
        Mat *H = Draft.decode(G, EncM, In, /*Train=*/true);
        Mat *Logits = matmulNT(G, H, &Draft.TokEmb);
        crossEntropy(G, Logits, Out);
      }
      G.backward();
      Opt.step();
      // The frozen embeddings still accumulate gradients through the
      // shared output projection; drop them so they never feed anything.
      Draft.TokEmb.zeroGrad();
      Draft.DecPos.zeroGrad();
      G.clear();
    }
  }

  if (Cfg.Int8)
    Draft.setInt8Decode(true);
  return DraftModel(std::move(Draft));
}
