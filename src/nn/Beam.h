//===- Beam.h - beam search decoding ----------------------------*- C++ -*-===//
///
/// \file
/// Beam-search decoding (§VI-A): keep the top-k hypotheses by sequence
/// log-probability; the caller then picks the first candidate that passes
/// the IO tests. Greedy decoding is the k=1 special case used by the BTC
/// baseline.
///
/// The default beamSearch runs all beams through the model per step as one
/// batch (shared encoder/cross caches, batched GEMMs, survivor selection
/// by index-gather). beamSearchSequential is the retained one-step-per-beam
/// reference path: it runs the same search algorithm over per-beam
/// DecodeStates that are deep-copied on survivor selection, and exists for
/// equivalence tests and as the benchmark baseline.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_NN_BEAM_H
#define SLADE_NN_BEAM_H

#include "nn/Transformer.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace slade {
namespace tok {
class VocabConstraint;
} // namespace tok
namespace nn {

/// User-facing constraint mode (--constrain={off,syntax}); Off decodes
/// byte-identically to the pre-constraint pipeline.
enum class ConstrainMode { Off, Syntax };

/// User-facing speculation mode (--speculate={off,auto,on}). Auto probes
/// each request's first rounds and reverts to plain decode when the
/// measured acceptance rate is below threshold; On keeps proposing
/// regardless (still byte-identical, possibly slower). Off never touches
/// the draft.
enum class SpecMode { Off, Auto, On };

/// Speculative-decode telemetry, merged up into serve metrics. A
/// "proposal" is one draft-proposed beam step (a full survivor
/// selection), so Accepted / Proposed is the acceptance rate.
struct SpecStats {
  uint64_t Proposed = 0;   ///< Draft-proposed beam steps.
  uint64_t Accepted = 0;   ///< Proposals the full model agreed with.
  uint64_t Rounds = 0;     ///< Propose/verify rounds run.
  double DraftSeconds = 0; ///< Wall time in draft forward + simulation.
};

/// Per-decode grammar-constraint counters, merged up into serve metrics.
struct ConstraintStats {
  uint64_t TokensMasked = 0; ///< Vocab entries masked across all steps.
  uint64_t BeamsKilled = 0;  ///< Beams whose every candidate was masked.
  double OracleSeconds = 0;  ///< Wall time inside the oracle/mask code.
};

struct BeamConfig {
  int BeamSize = 5; ///< Paper: k = 5.
  int MaxLen = 220;
  float LengthPenalty = 1.0f; ///< Score / len^penalty ordering.
  /// When set, decode is grammar-constrained: pieces that would kill
  /// every syntactic continuation are masked pre-top-k, fully-masked
  /// beams are killed mid-flight (releasing their K/V rows), EOS is
  /// gated on prefix completeness, and unfinished non-complete beams
  /// are dropped at finalize. nullptr (the default) is byte-identical
  /// to the pre-constraint decoder.
  const tok::VocabConstraint *Constraint = nullptr;
  /// Optional sink for constraint counters (single decode's worth is
  /// added; the caller aggregates).
  ConstraintStats *Stats = nullptr;
  /// Speculative decoding: when set (and DraftGamma > 0), the decode
  /// drivers run propose/verify rounds — the draft proposes up to
  /// DraftGamma beam steps, the full model scores all of them in ONE
  /// batched call and accepts the longest agreeing prefix, falling back
  /// to its own selection at the first disagreement. Output is
  /// byte-identical to Draft == nullptr by construction (every committed
  /// selection consumes exact full-model logits); only throughput
  /// changes. See nn/SpecDecode.h.
  const Transformer *Draft = nullptr;
  /// Speculative depth: draft-proposed beam steps per round.
  int DraftGamma = 4;
  /// Optional sink for speculative telemetry (added per decode).
  SpecStats *SpecTelemetry = nullptr;
};

struct Hypothesis {
  std::vector<int> Tokens; ///< Without BOS/EOS.
  float Score = 0;         ///< Length-normalized log probability.
};

/// Returns up to BeamSize hypotheses, best first. Batched hot path.
std::vector<Hypothesis> beamSearch(const Transformer &Model,
                                   const std::vector<int> &Src,
                                   const BeamConfig &Cfg);

/// Same, over a pre-encoded source (e.g. an EncoderLRU hit): the encoder
/// pass is skipped entirely.
std::vector<Hypothesis>
beamSearch(const Transformer &Model,
           std::shared_ptr<const Transformer::EncoderCache> Enc,
           const BeamConfig &Cfg);

/// Cross-request batched beam search: decodes ALL sources in one fused
/// batched session — every decode step runs the union of the sources'
/// live beams through the model as a single batch, so per-step GEMMs
/// amortize across requests (the serving scheduler's throughput lever on
/// one core). Per-source results are byte-identical to running beamSearch
/// on each source alone: per-row step results do not depend on which
/// other rows share the batch, and the per-source selection logic is the
/// same code. Sources finishing early drop out of the batch.
std::vector<std::vector<Hypothesis>> beamSearchMulti(
    const Transformer &Model,
    const std::vector<std::shared_ptr<const Transformer::EncoderCache>>
        &Sources,
    const BeamConfig &Cfg);

/// Sequential reference implementation (per-beam states, full-state copy
/// on survivor selection). Same search algorithm and tie-breaking as
/// beamSearch.
std::vector<Hypothesis> beamSearchSequential(const Transformer &Model,
                                             const std::vector<int> &Src,
                                             const BeamConfig &Cfg);

/// Greedy decode (beam of one, no reordering).
std::vector<int> greedyDecode(const Transformer &Model,
                              const std::vector<int> &Src, int MaxLen);

} // namespace nn
} // namespace slade

#endif // SLADE_NN_BEAM_H
