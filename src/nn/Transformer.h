//===- Transformer.h - sequence-to-sequence Transformer ---------*- C++ -*-===//
///
/// \file
/// The paper's model (§V-B, §V-C): a pre-LN encoder-decoder Transformer
/// with shared token embeddings for encoder, decoder, and output layer,
/// learned positions, Adam + decoupled weight decay, and NO dropout by
/// default (§V-C: weight-decay-only regularization outperformed dropout).
/// Training uses teacher forcing; inference has a KV-cached fast path used
/// by greedy and beam-search decoding (§VI-A).
///
/// Execution is split by purpose: the Graph-based encode/decode/pairLoss
/// are the training path (autograd tape) and the bit-exactness oracle;
/// every serving entry point below (encodeSource, startDecodeBatch[Multi],
/// stepDecodeBatch, decodeConstants) delegates to the graph-free
/// InferRuntime (nn/InferRuntime.h), which runs on raw preallocated
/// buffers with the tiled kernels.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_NN_TRANSFORMER_H
#define SLADE_NN_TRANSFORMER_H

#include "nn/Mat.h"
#include "support/Error.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace slade {
namespace nn {

class InferRuntime;
class ParallelFor;

struct TransformerConfig {
  int Vocab = 512;
  int DModel = 64;
  int NHeads = 4;
  int FF = 128;
  int EncLayers = 2;
  int DecLayers = 2;
  int MaxLen = 256;
  float DropoutP = 0.0f; ///< Paper default: none.
  uint64_t Seed = 42;
};

/// A parameter with its weight-decay eligibility.
struct ParamRef {
  Mat *M;
  bool Decay;
};

/// One row of a speculative decode plan: a hypothesis extension at
/// \c Depth positions past its segment's committed clock. Depth-0 rows
/// extend a LIVE state row (\c Parent is that row's index); deeper rows
/// extend an earlier PLAN row of the same segment (\c Parent is its plan
/// index, which must precede this row). \c Slot is the caller-assigned
/// K/V slot within the (segment, depth) group — distinct among rows
/// sharing both, < KMax. Nothing is committed by running a plan:
/// stepDecodeSpec writes K/V into not-yet-committed positions and
/// returns logits; commitSpec later promotes one accepted row subset to
/// the new live set.
struct SpecRow {
  int Seg = 0;    ///< Self-K/V segment (== RowSource of the ancestry).
  int Depth = 0;  ///< Positions past SegLen[Seg] (0 = next position).
  int Parent = 0; ///< Live row index (Depth 0) or plan row index.
  int Token = 0;  ///< Token fed at this position.
  uint16_t Slot = 0; ///< K/V slot within the (Seg, Depth) group.
};

class Transformer {
public:
  /// Special token ids (aligned with tok::Tokenizer).
  static constexpr int PadId = 0;
  static constexpr int BosId = 1;
  static constexpr int EosId = 2;

  explicit Transformer(const TransformerConfig &Cfg);

  const TransformerConfig &config() const { return Cfg; }
  std::vector<ParamRef> params();

  /// Teacher-forced loss for one (source, target) pair; gradients are
  /// accumulated into the parameters via \p G.
  float pairLoss(Graph &G, const std::vector<int> &Src,
                 const std::vector<int> &Tgt, bool Train);

  /// -- inference fast path (no autograd, KV cache) -----------------------

  /// Per-model decode constants, laid out for the batched kernels. They
  /// depend only on the weights, not on any source, so one copy is shared
  /// by every decode session and rebuilt only when the weight version
  /// changes (training step, weight load).
  struct DecodeConstants {
    /// Weight version the constants were derived from.
    uint64_t Version = 0;
    /// Per decoder layer: column-concatenated self-attention Wq|Wk|Wv
    /// ([D, 3D]) and Bq|Bk|Bv ([3D]) so one GEMM projects Q, K and V.
    std::vector<std::vector<float>> SelfQKVW;
    std::vector<std::vector<float>> SelfQKVB;
    /// TokEmb transposed to [D, Vocab]: turns the logits product into a
    /// streaming GEMM instead of a strided one.
    std::vector<float> EmbT;

    /// -- optional int8 path (draft models only) --------------------------
    /// When \c UseInt8 is set the batched decoder runs its large matmuls
    /// through the row-quantized kernels (nn/Mat.h) using the copies
    /// below; the full model never sets it, so the float path is
    /// untouched and speculative verification stays exact. Weights are
    /// stored transposed ([out, in] — one quantized row per output
    /// channel) to feed gemmI8NT.
    bool UseInt8 = false;
    std::vector<QuantizedMat> SelfQKVWQ; ///< Per layer [3D, D].
    std::vector<QuantizedMat> SelfWoQ;   ///< Per layer [D, D].
    std::vector<QuantizedMat> CrossWqQ;  ///< Per layer [D, D].
    std::vector<QuantizedMat> CrossWoQ;  ///< Per layer [D, D].
    std::vector<QuantizedMat> FF1Q;      ///< Per layer [FF, D].
    std::vector<QuantizedMat> FF2Q;      ///< Per layer [D, FF].
    QuantizedMat EmbQ;                   ///< [Vocab, D] (logits GEMM).

    /// -- pre-packed float decoder weights (empty when UseInt8) -----------
    /// Every persistent B operand of the batched float decode,
    /// pre-packed into the tile-major layout the microkernels consume
    /// (nn::PackedMat), so the per-tick GEMMs skip operand packing
    /// entirely. Living INSIDE the decode constants pins packs and
    /// constants to one weight version — a decode session can never mix
    /// fresh packs with stale constants or vice versa.
    std::vector<PackedMat> SelfQKVWP; ///< Per layer [D, 3D].
    std::vector<PackedMat> SelfWoP;   ///< Per layer [D, D].
    std::vector<PackedMat> CrossWqP;  ///< Per layer [D, D].
    std::vector<PackedMat> CrossWoP;  ///< Per layer [D, D].
    std::vector<PackedMat> FF1P;      ///< Per layer [D, FF].
    std::vector<PackedMat> FF2P;      ///< Per layer [FF, D].
    PackedMat EmbTP;                  ///< [D, Vocab] (logits GEMM).

    /// Heap bytes held by the pre-packed operands (slade_pack_bytes).
    size_t packedBytes() const {
      size_t B = EmbTP.bytes();
      for (const std::vector<PackedMat> *Vec :
           {&SelfQKVWP, &SelfWoP, &CrossWqP, &CrossWoP, &FF1P, &FF2P})
        for (const PackedMat &P : *Vec)
          B += P.bytes();
      return B;
    }
  };

  /// Pre-packed copies of every persistent weight operand consumed
  /// OUTSIDE the decoder tick: the encoder stack and the
  /// per-decoder-layer cross K/V projections (finishEncoderCache).
  /// Weight-versioned and cached exactly like DecodeConstants; draft
  /// models get their own (their encoders run deriveDraftCache through
  /// the same code).
  struct PackedWeights {
    uint64_t Version = 0;
    struct EncLayerPack {
      PackedMat Wq, Wk, Wv, Wo; ///< Self-attention projections [D, D].
      PackedMat W1, W2;         ///< FFN [D, FF] and [FF, D].
    };
    std::vector<EncLayerPack> Enc; ///< Per encoder layer.
    /// Per decoder layer: the cross-attention K/V projections applied to
    /// the encoder output when an EncoderCache is built.
    std::vector<PackedMat> CrossWk, CrossWv; ///< [D, D] each.

    size_t bytes() const {
      size_t B = 0;
      for (const EncLayerPack &L : Enc)
        B += L.Wq.bytes() + L.Wk.bytes() + L.Wv.bytes() + L.Wo.bytes() +
             L.W1.bytes() + L.W2.bytes();
      for (const PackedMat &P : CrossWk)
        B += P.bytes();
      for (const PackedMat &P : CrossWv)
        B += P.bytes();
      return B;
    }
  };

  /// Immutable per-source encoder state: the encoder output, the
  /// per-decoder-layer cross-attention K/V, and a reference to the shared
  /// per-model decode constants. Computed once per source and shared (via
  /// shared_ptr) by every beam decoding that source.
  struct EncoderCache {
    std::vector<float> EncOut;              ///< [Tsrc, D].
    int TSrc = 0;
    std::vector<std::vector<float>> CrossK; ///< Per layer, fixed [Tsrc,D].
    std::vector<std::vector<float>> CrossV;
    /// Shared model-level constants (weight-versioned, not per-source).
    std::shared_ptr<const DecodeConstants> Consts;

    /// Heap bytes held by this cache entry (the shared Consts are NOT
    /// counted: one copy serves every entry). Used by the EncoderLRU's
    /// byte accounting.
    size_t bytes() const {
      size_t B = sizeof(*this) + EncOut.capacity() * sizeof(float);
      for (const std::vector<float> &K : CrossK)
        B += K.capacity() * sizeof(float);
      for (const std::vector<float> &V : CrossV)
        B += V.capacity() * sizeof(float);
      return B;
    }
  };

  /// One row descriptor of the shared batched-decoder forward pass (an
  /// InferRuntime internal; declared here so the reusable descriptor
  /// array can live in BatchDecodeState's scratch). Plain decode and
  /// speculative plans both lower to a list of these: a token embedded
  /// at \c Pos, K/V written at (\c Seg, time \c WriteT, slot
  /// \c WriteSlot), self-attention over \c Slots[0..WriteT], cross
  /// attention over \c Enc.
  struct DecodeRowPlan {
    int Token = 0, Pos = 0, WriteT = 0;
    uint16_t Seg = 0, WriteSlot = 0;
    const EncoderCache *Enc = nullptr;
    const uint16_t *Slots = nullptr;
  };

  /// Monotonic version of the weights. Anything that mutates parameters
  /// in place (an optimizer step, an in-place weight load) must bump it so
  /// cached decode constants are invalidated instead of silently decoding
  /// with stale parameters. AdamW bumps it automatically when constructed
  /// with a model pointer; serving and training must not overlap (weights
  /// mutate in place), so no synchronization is needed on the counter.
  uint64_t weightVersion() const { return WeightVersion; }
  /// THE single invalidation path for every weight-version-keyed cache
  /// (decode constants AND pre-packed weights): bumps the version and
  /// drops both cached snapshots, so a forward pass after an in-place
  /// weight mutation can never read stale packs. Out of line so new
  /// caches have one place to hook into.
  void bumpWeightVersion();

  /// Returns the shared decode constants for the current weight version,
  /// rebuilding them only when the version changed since the last call.
  /// Thread-safe: concurrent decode sessions share one copy.
  std::shared_ptr<const DecodeConstants> decodeConstants() const;

  /// Returns the shared pre-packed encoder/cross weights for the current
  /// weight version (same caching discipline as decodeConstants).
  std::shared_ptr<const PackedWeights> packedWeights() const;

  /// Telemetry snapshot of the weight-versioned caches (slade_pack_*).
  struct PackCacheStats {
    uint64_t ConstBuilds = 0; ///< DecodeConstants rebuilds, lifetime.
    uint64_t PackBuilds = 0;  ///< PackedWeights rebuilds, lifetime.
    size_t PackedBytes = 0;   ///< Current packed bytes, both caches.
  };
  PackCacheStats packCacheStats() const;

  struct DecodeState {
    std::vector<float> EncOut;             ///< [Tsrc, D].
    int TSrc = 0;
    std::vector<std::vector<float>> SelfK; ///< Per decoder layer, growing.
    std::vector<std::vector<float>> SelfV;
    std::vector<std::vector<float>> CrossK; ///< Per layer, fixed [Tsrc,D].
    std::vector<std::vector<float>> CrossV;
    int Len = 0; ///< Decoded positions so far.
  };

  /// Runs the encoder and prepares the shared cross-attention caches.
  /// Executes on the graph-free InferRuntime (raw buffers, pooled
  /// EncodeScratch arena, no tape/per-node allocation); bit-identical to
  /// encodeSourceGraph. \p TP, when given, splits the encoder's row
  /// ranges across its workers (nn/Parallel.h) — results stay
  /// byte-identical at any thread count.
  std::shared_ptr<const EncoderCache>
  encodeSource(const std::vector<int> &Src,
               ParallelFor *TP = nullptr) const;

  /// Reference encoder path through the autograd Graph (inference mode).
  /// Retained as the bit-exactness oracle for the runtime fast path and
  /// as the benchmark baseline; serving traffic never takes it.
  std::shared_ptr<const EncoderCache>
  encodeSourceGraph(const std::vector<int> &Src) const;

  /// Runs the encoder and prepares cross-attention caches (sequential
  /// reference path; copies the shared caches into the state).
  DecodeState startDecode(const std::vector<int> &Src) const;
  /// Feeds one token, returns the next-token logits [Vocab].
  std::vector<float> stepDecode(DecodeState &St, int Token) const;

  /// Batched decode over B parallel hypotheses. Each row carries its own
  /// encoder cache, so one state can fuse the beams of MANY sources into
  /// one batch (the serving scheduler's cross-request batching): the
  /// per-step GEMMs run over ALL rows, amortizing weight-matrix traffic
  /// across requests, while the decode constants are the shared per-model
  /// copy. Encoder output and cross-K/V are never copied per beam.
  ///
  /// Self-K/V layout: one SEGMENT per source, [Cap, KMax, D] time-major
  /// within the segment. Keeping each source's K/V compact (instead of a
  /// batch-wide [Cap, BMax, D] stride) preserves single-source attention
  /// locality no matter how many requests are fused — with KMax = 1 the
  /// segment is fully dense. Rows address their history through a
  /// per-beam ancestry table of segment-local slots, so survivor
  /// selection never moves cached K/V data — it only gathers the (tiny)
  /// index rows. Rows of one source must stay CONTIGUOUS in row order
  /// (beamSearchMulti and the serve engine both guarantee this).
  ///
  /// Decode positions are PER SEGMENT (SegLen), not batch-global: every
  /// source carries its own clock, so sources can join and leave the
  /// batch mid-flight (continuous batching). A retired source's segment
  /// can be recycled for a newly admitted source — admitStreamRow resets
  /// its SegLen and the new rows overwrite the stale K/V in place.
  struct BatchDecodeState {
    /// Per-row encoder cache (rows of one source share the pointer).
    std::vector<std::shared_ptr<const EncoderCache>> RowEnc;
    /// Per-row source index: selects the row's self-K/V segment.
    std::vector<uint16_t> RowSource;
    std::shared_ptr<const DecodeConstants> Consts;
    int B = 0;    ///< Active beams (rows).
    int BMax = 0; ///< Beam rows preallocated.
    int KMax = 0; ///< Beam rows preallocated per source (segment width).
    int Cap = 0;  ///< Positions preallocated per beam.
    int SegCount = 0; ///< Self-K/V segments allocated (max live sources).
    /// Per segment: positions decoded so far — each source's own decode
    /// clock. Reset to 0 when the segment is recycled for a new source.
    std::vector<int> SegLen;
    int Len = 0;  ///< Max of SegLen over live segments (informational).
    int MaxTSrc = 0; ///< Longest source among the rows (scratch sizing).
    std::vector<std::vector<float>> SelfK; ///< Per layer [Cap*BMax*D].
    std::vector<std::vector<float>> SelfV;
    /// Anc[b*Cap + t]: the segment-local slot holding beam b's K/V row
    /// for position t.
    std::vector<uint16_t> Anc;
    // Reused step scratch (sized at start).
    std::vector<float> X, Norm, QKV, AttnOut, Proj, FF1, Scores;
    std::vector<uint16_t> AncScratch, RowSourceScratch;
    std::vector<std::shared_ptr<const EncoderCache>> RowEncScratch;
    std::vector<DecodeRowPlan> FwdRows; ///< Shared-forward descriptors.
    // Speculative-plan scratch (grown on demand by stepDecodeSpec /
    // commitSpec; unused by plain decode).
    std::vector<int> SpecBase; ///< Per plan row: live-row ancestor.
    std::vector<uint16_t> SpecChain; ///< Per plan row: [Cap] slot table.
    QuantizedMat ActQ; ///< int8 activation scratch (draft models).
    /// Optional intra-tick worker pool (nn/Parallel.h): when set, the
    /// batched forward splits its row/tile ranges across the pool's
    /// threads. Not owned; null (the default) = sequential. Per-row
    /// results are byte-identical either way, so the pool can be
    /// attached or detached between steps freely.
    ParallelFor *TP = nullptr;
  };

  /// Prepares a batched state sharing \p Enc with room for \p MaxBeams
  /// beams over \p MaxSteps positions. The state starts with one active
  /// beam (the BOS hypothesis); reorderBeams grows it up to MaxBeams.
  BatchDecodeState startDecodeBatch(std::shared_ptr<const EncoderCache> Enc,
                                    int MaxBeams, int MaxSteps) const;
  /// Multi-source variant: one state fusing \p Encs.size() sources, one
  /// initial BOS beam per source (row i belongs to source i), with room
  /// for \p BeamsPerSource beams per source. All sources start decoding at
  /// step 0 together; rows of finished sources are dropped by
  /// reorderBeams.
  BatchDecodeState startDecodeBatchMulti(
      const std::vector<std::shared_ptr<const EncoderCache>> &Encs,
      int BeamsPerSource, int MaxSteps) const;
  /// Streaming variant (the serve engine's continuous batch): allocates a
  /// state with \p MaxSources self-K/V segments of \p BeamsPerSource rows
  /// each but NO live rows — sources are bound later, one at a time, via
  /// admitStreamRow, and may join/leave at any step.
  BatchDecodeState startDecodeStream(int MaxSources, int BeamsPerSource,
                                     int MaxSteps) const;
  /// Admits a new source into segment \p Seg of a streaming state: binds
  /// \p Enc, resets the segment's decode clock, and appends one row (the
  /// source's BOS beam) at row index B. The segment must have no live
  /// rows — retired sources' segments are recycled this way. Returns the
  /// new row's index, or -1 when \p Enc was built from a different
  /// weight version than the live rows' constants (the caller must
  /// defer the admission until the batch drains; an idle state adopts
  /// the incoming version). The next stepDecodeBatch should feed BosId
  /// on the new row.
  int admitStreamRow(BatchDecodeState &St, int Seg,
                     std::shared_ptr<const EncoderCache> Enc) const;
  /// Feeds one token per active beam (Tokens.size() == B), returns logits
  /// [B, Vocab] row-major. Per-row results are bit-identical regardless
  /// of which other rows share the batch (the GEMM kernels accumulate
  /// each row in a fixed K-order) and regardless of the other rows'
  /// decode positions, which is what makes cross-request batching —
  /// batch-scoped or continuous — byte-deterministic.
  std::vector<float> stepDecodeBatch(BatchDecodeState &St,
                                     const std::vector<int> &Tokens) const;
  /// Survivor selection: beam row b of the new state is old row
  /// \p SrcIdx[b]. An index-gather over self-cache rows (the shared
  /// encoder/cross caches are untouched); B may shrink (to zero: every
  /// source retired) or grow up to BMax.
  void reorderBeams(BatchDecodeState &St,
                    const std::vector<int> &SrcIdx) const;

  /// -- speculative decode (propose / batched verify) ---------------------
  ///
  /// Runs the forward pass for plan rows [Begin, End) of \p Plan without
  /// committing anything: K/V land in positions past each segment's
  /// SegLen at the rows' assigned slots, and the returned logits are
  /// [End-Begin, Vocab] in plan order. The WHOLE plan is passed so rows
  /// in range can resolve ancestor chains through earlier rows; parents
  /// must precede children. Per-row logits are bit-identical to what a
  /// sequence of committed stepDecodeBatch calls along the same token
  /// path would produce (same kernels, same fixed K-order accumulation),
  /// which is what makes speculative verification exact.
  ///
  /// Constraints: SegLen[Seg] + Depth < Cap and Slot < KMax for every
  /// row in range; plan rows of one (Seg, Depth) group need not be
  /// contiguous, but parents must appear before children.
  std::vector<float> stepDecodeSpec(BatchDecodeState &St,
                                    const std::vector<SpecRow> &Plan,
                                    int Begin, int End) const;
  /// Commits an accepted subset of a previously run plan: new live row i
  /// is plan row \p NewRows[i] (its whole ancestor chain becomes that
  /// row's history). Rows of one segment must be contiguous in NewRows
  /// and share one Depth; each such segment's clock advances by
  /// Depth + 1. Replaces reorderBeams + the re-step for the speculative
  /// path: the K/V written by stepDecodeSpec are adopted in place, only
  /// the ancestry/index rows are gathered. Segments with no committed
  /// rows are left untouched (their speculative K/V is dead data,
  /// overwritten on recycle).
  void commitSpec(BatchDecodeState &St, const std::vector<SpecRow> &Plan,
                  const std::vector<int> &NewRows) const;
  /// Early retirement (deadline expiry / cancellation): drops EVERY live
  /// row of segment \p Seg in place, releasing the rows' encoder
  /// bindings, and leaves the segment ready for recycling by the next
  /// admitStreamRow. Equivalent to a reorderBeams over the surviving
  /// rows, so the remaining sources' results stay bit-identical.
  void abortStreamSegment(BatchDecodeState &St, int Seg) const;

  /// Routes this model's batched decoder through the int8 row-quantized
  /// kernels: the next decodeConstants() rebuild carries quantized weight
  /// copies and sets DecodeConstants::UseInt8. Meant for DRAFT models
  /// only — int8 rounding changes logits, which for a draft only shifts
  /// the speculative acceptance rate. Bumps the weight version so cached
  /// float constants are invalidated.
  void setInt8Decode(bool Enable) {
    if (Int8Decode == Enable)
      return;
    Int8Decode = Enable;
    bumpWeightVersion();
  }
  bool int8Decode() const { return Int8Decode; }

  Status save(const std::string &Path) const;
  static Expected<Transformer> load(const std::string &Path);

  /// Total parameter count (for the "small language model" bookkeeping).
  size_t parameterCount();

private:
  /// The graph-free inference runtime executes the encoder and the
  /// batched decoder directly on the private weight matrices.
  friend class InferRuntime;
  /// The speculative draft distiller copies the frozen embeddings and
  /// drives the private decode graph with the full model's encoder
  /// output as a constant.
  friend class DraftModel;

  TransformerConfig Cfg;

  struct LN {
    Mat Gamma, Beta;
  };
  struct Attn {
    Mat Wq, Bq, Wk, Bk, Wv, Bv, Wo, Bo;
  };
  struct EncLayer {
    LN LN1;
    Attn Self;
    LN LN2;
    Mat W1, B1, W2, B2;
  };
  struct DecLayer {
    LN LN1;
    Attn Self;
    LN LN2;
    Attn Cross;
    LN LN3;
    Mat W1, B1, W2, B2;
  };

  Mat TokEmb, EncPos, DecPos;
  std::vector<EncLayer> Enc;
  std::vector<DecLayer> Dec;
  LN EncFinal, DecFinal;
  mutable uint64_t DropRng = 0x5eed;

  uint64_t WeightVersion = 1;
  bool Int8Decode = false; ///< Quantize decode constants (draft models).
  /// Model-level cache slot for a weight-versioned derived snapshot
  /// (decode constants, pre-packed weights). Boxed behind a shared_ptr
  /// so the Transformer stays movable (the box holds the mutex) and
  /// sessions holding the old snapshot stay valid after an
  /// invalidation. \c Cur is accessed only through the shared_ptr
  /// atomic free functions: steady-state reads (N decode shards
  /// admitting concurrently) are lock-free; the mutex serializes
  /// version-miss rebuilds only. Copies and moves get a FRESH box: two
  /// models must never alias one cache slot, or same-version-
  /// different-weights collisions could decode with the other model's
  /// snapshot.
  template <typename T> struct VersionedCache {
    std::mutex Mu;
    std::shared_ptr<const T> Cur;
    std::atomic<uint64_t> Builds{0}; ///< Lifetime rebuild count.
  };
  template <typename T> struct VersionedCacheHandle {
    std::shared_ptr<VersionedCache<T>> Box =
        std::make_shared<VersionedCache<T>>();
    VersionedCacheHandle() = default;
    VersionedCacheHandle(const VersionedCacheHandle &)
        : VersionedCacheHandle() {}
    VersionedCacheHandle(VersionedCacheHandle &&) noexcept
        : VersionedCacheHandle() {}
    VersionedCacheHandle &operator=(const VersionedCacheHandle &) {
      Box = std::make_shared<VersionedCache<T>>(); // Changed owner.
      return *this;
    }
    VersionedCacheHandle &operator=(VersionedCacheHandle &&) noexcept {
      Box = std::make_shared<VersionedCache<T>>();
      return *this;
    }
  };
  VersionedCacheHandle<DecodeConstants> ConstCache;
  VersionedCacheHandle<PackedWeights> PackCache;

  Mat *attention(Graph &G, Mat *XQ, Mat *XKV, Attn &P, bool Causal,
                 bool Train);
  Mat *encode(Graph &G, const std::vector<int> &Src, bool Train);
  Mat *decode(Graph &G, Mat *EncOut, const std::vector<int> &In,
              bool Train);

  // Row helpers for the sequential (reference) decode path. The batched
  // hot paths live in InferRuntime.
  void layerNormRow(const float *X, const LN &P, float *Out) const;
  void linearRow(const float *X, const Mat &W, const Mat &B,
                 float *Out) const;
};

/// Adam with decoupled weight decay (§V-C) and inverse-sqrt warmup.
class AdamW {
public:
  struct Config {
    float LR = 3e-3f;
    float Beta1 = 0.9f;
    float Beta2 = 0.98f;
    float Eps = 1e-9f;
    float WeightDecay = 0.01f;
    int WarmupSteps = 200;
    float ClipNorm = 1.0f;
  };

  /// \p Model, when given, is the transformer whose parameters are being
  /// updated: each step() bumps its weight version so cached decode
  /// constants are invalidated automatically.
  AdamW(std::vector<ParamRef> Params, const Config &Cfg,
        Transformer *Model = nullptr);

  /// Applies one update from the accumulated gradients, then zeroes them.
  void step();
  int stepCount() const { return Steps; }

private:
  std::vector<ParamRef> Params;
  Config Cfg;
  Transformer *Model = nullptr; ///< Weight-version bump target (optional).
  std::vector<std::vector<float>> M1, M2;
  int Steps = 0;
};

} // namespace nn
} // namespace slade

#endif // SLADE_NN_TRANSFORMER_H
