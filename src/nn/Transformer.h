//===- Transformer.h - sequence-to-sequence Transformer ---------*- C++ -*-===//
///
/// \file
/// The paper's model (§V-B, §V-C): a pre-LN encoder-decoder Transformer
/// with shared token embeddings for encoder, decoder, and output layer,
/// learned positions, Adam + decoupled weight decay, and NO dropout by
/// default (§V-C: weight-decay-only regularization outperformed dropout).
/// Training uses teacher forcing; inference has a KV-cached fast path used
/// by greedy and beam-search decoding (§VI-A).
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_NN_TRANSFORMER_H
#define SLADE_NN_TRANSFORMER_H

#include "nn/Mat.h"
#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace slade {
namespace nn {

struct TransformerConfig {
  int Vocab = 512;
  int DModel = 64;
  int NHeads = 4;
  int FF = 128;
  int EncLayers = 2;
  int DecLayers = 2;
  int MaxLen = 256;
  float DropoutP = 0.0f; ///< Paper default: none.
  uint64_t Seed = 42;
};

/// A parameter with its weight-decay eligibility.
struct ParamRef {
  Mat *M;
  bool Decay;
};

class Transformer {
public:
  /// Special token ids (aligned with tok::Tokenizer).
  static constexpr int PadId = 0;
  static constexpr int BosId = 1;
  static constexpr int EosId = 2;

  explicit Transformer(const TransformerConfig &Cfg);

  const TransformerConfig &config() const { return Cfg; }
  std::vector<ParamRef> params();

  /// Teacher-forced loss for one (source, target) pair; gradients are
  /// accumulated into the parameters via \p G.
  float pairLoss(Graph &G, const std::vector<int> &Src,
                 const std::vector<int> &Tgt, bool Train);

  /// -- inference fast path (no autograd, KV cache) -----------------------

  /// Immutable per-source encoder state: the encoder output, the
  /// per-decoder-layer cross-attention K/V, and decode-session constants
  /// (fused projection weights, transposed output embedding) laid out for
  /// the batched kernels. Computed once per source and shared (via
  /// shared_ptr) by every beam decoding that source.
  struct EncoderCache {
    std::vector<float> EncOut;              ///< [Tsrc, D].
    int TSrc = 0;
    std::vector<std::vector<float>> CrossK; ///< Per layer, fixed [Tsrc,D].
    std::vector<std::vector<float>> CrossV;
    /// Per decoder layer: column-concatenated self-attention Wq|Wk|Wv
    /// ([D, 3D]) and Bq|Bk|Bv ([3D]) so one GEMM projects Q, K and V.
    std::vector<std::vector<float>> SelfQKVW;
    std::vector<std::vector<float>> SelfQKVB;
    /// TokEmb transposed to [D, Vocab]: turns the logits product into a
    /// streaming GEMM instead of a strided one.
    std::vector<float> EmbT;
  };

  struct DecodeState {
    std::vector<float> EncOut;             ///< [Tsrc, D].
    int TSrc = 0;
    std::vector<std::vector<float>> SelfK; ///< Per decoder layer, growing.
    std::vector<std::vector<float>> SelfV;
    std::vector<std::vector<float>> CrossK; ///< Per layer, fixed [Tsrc,D].
    std::vector<std::vector<float>> CrossV;
    int Len = 0; ///< Decoded positions so far.
  };

  /// Runs the encoder and prepares the shared cross-attention caches.
  std::shared_ptr<const EncoderCache>
  encodeSource(const std::vector<int> &Src) const;

  /// Runs the encoder and prepares cross-attention caches (sequential
  /// reference path; copies the shared caches into the state).
  DecodeState startDecode(const std::vector<int> &Src) const;
  /// Feeds one token, returns the next-token logits [Vocab].
  std::vector<float> stepDecode(DecodeState &St, int Token) const;

  /// Batched decode over B parallel hypotheses of one source. Self-K/V
  /// rows are written once into a time-major [Cap, BMax, D] buffer per
  /// layer; each beam addresses its history through an ancestry index
  /// table, so survivor selection never moves cached K/V data — it only
  /// gathers the (tiny) per-beam index rows. The encoder output and
  /// cross-K/V are shared, never copied per beam.
  struct BatchDecodeState {
    std::shared_ptr<const EncoderCache> Enc;
    int B = 0;    ///< Active beams (rows). Starts at 1 (the BOS beam).
    int BMax = 0; ///< Beam rows preallocated.
    int Cap = 0;  ///< Positions preallocated per beam.
    int Len = 0;  ///< Decoded positions so far (same for every beam).
    std::vector<std::vector<float>> SelfK; ///< Per layer [Cap*BMax*D].
    std::vector<std::vector<float>> SelfV;
    /// Anc[b*Cap + t]: the slot holding beam b's K/V row for position t.
    std::vector<uint16_t> Anc;
    // Reused step scratch (sized at start).
    std::vector<float> X, Norm, QKV, AttnOut, Proj, FF1, Scores;
    std::vector<uint16_t> AncScratch;
  };

  /// Prepares a batched state sharing \p Enc with room for \p MaxBeams
  /// beams over \p MaxSteps positions. The state starts with one active
  /// beam (the BOS hypothesis); reorderBeams grows it up to MaxBeams.
  BatchDecodeState startDecodeBatch(std::shared_ptr<const EncoderCache> Enc,
                                    int MaxBeams, int MaxSteps) const;
  /// Feeds one token per active beam (Tokens.size() == B), returns logits
  /// [B, Vocab] row-major.
  std::vector<float> stepDecodeBatch(BatchDecodeState &St,
                                     const std::vector<int> &Tokens) const;
  /// Survivor selection: beam row b of the new state is old row
  /// \p SrcIdx[b]. An index-gather over self-cache rows (the shared
  /// encoder/cross caches are untouched); B may shrink or grow up to
  /// BMax.
  void reorderBeams(BatchDecodeState &St,
                    const std::vector<int> &SrcIdx) const;

  Status save(const std::string &Path) const;
  static Expected<Transformer> load(const std::string &Path);

  /// Total parameter count (for the "small language model" bookkeeping).
  size_t parameterCount();

private:
  TransformerConfig Cfg;

  struct LN {
    Mat Gamma, Beta;
  };
  struct Attn {
    Mat Wq, Bq, Wk, Bk, Wv, Bv, Wo, Bo;
  };
  struct EncLayer {
    LN LN1;
    Attn Self;
    LN LN2;
    Mat W1, B1, W2, B2;
  };
  struct DecLayer {
    LN LN1;
    Attn Self;
    LN LN2;
    Attn Cross;
    LN LN3;
    Mat W1, B1, W2, B2;
  };

  Mat TokEmb, EncPos, DecPos;
  std::vector<EncLayer> Enc;
  std::vector<DecLayer> Dec;
  LN EncFinal, DecFinal;
  mutable uint64_t DropRng = 0x5eed;

  Mat *attention(Graph &G, Mat *XQ, Mat *XKV, Attn &P, bool Causal,
                 bool Train);
  Mat *encode(Graph &G, const std::vector<int> &Src, bool Train);
  Mat *decode(Graph &G, Mat *EncOut, const std::vector<int> &In,
              bool Train);

  // Inference helpers operate on raw row vectors.
  void layerNormRow(const float *X, const LN &P, float *Out) const;
  void linearRow(const float *X, const Mat &W, const Mat &B,
                 float *Out) const;
  /// Batched linear: Out[r] = X[r] * W + Bias for r in [0, Rows), one
  /// tiled GEMM call instead of Rows row-vector products.
  void linearRows(const float *X, int Rows, const Mat &W, const Mat &Bias,
                  float *Out) const;
};

/// Adam with decoupled weight decay (§V-C) and inverse-sqrt warmup.
class AdamW {
public:
  struct Config {
    float LR = 3e-3f;
    float Beta1 = 0.9f;
    float Beta2 = 0.98f;
    float Eps = 1e-9f;
    float WeightDecay = 0.01f;
    int WarmupSteps = 200;
    float ClipNorm = 1.0f;
  };

  AdamW(std::vector<ParamRef> Params, const Config &Cfg);

  /// Applies one update from the accumulated gradients, then zeroes them.
  void step();
  int stepCount() const { return Steps; }

private:
  std::vector<ParamRef> Params;
  Config Cfg;
  std::vector<std::vector<float>> M1, M2;
  int Steps = 0;
};

} // namespace nn
} // namespace slade

#endif // SLADE_NN_TRANSFORMER_H
