//===- BeamCore.h - shared beam-search selection core -----------*- C++ -*-===//
///
/// \file
/// The per-source beam-search bookkeeping shared by every decode driver:
/// the single-source loop and cross-request multi driver in Beam.cpp, and
/// the continuous-batching serve engine (serve/Engine.cpp). Keeping the
/// log-softmax / top-k / candidate-ordering / retirement logic in ONE
/// place is what makes the drivers byte-identical per source: they can
/// only differ in how rows are batched, never in which hypotheses
/// survive.
///
/// Internal header — not part of the public API surface (include from
/// .cpp files only).
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_NN_BEAMCORE_H
#define SLADE_NN_BEAMCORE_H

#include "nn/Beam.h"
#include "tok/VocabConstraint.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>
#include <vector>

namespace slade {
namespace nn {
namespace beamcore {

/// Log-softmax into a reused output buffer.
inline void logSoftmax(const float *Logits, int V, std::vector<float> &Out) {
  float MaxV = -1e30f;
  for (int I = 0; I < V; ++I)
    MaxV = std::max(MaxV, Logits[I]);
  double Sum = 0;
  for (int I = 0; I < V; ++I)
    Sum += std::exp(static_cast<double>(Logits[I] - MaxV));
  float LogZ = MaxV + static_cast<float>(std::log(Sum));
  Out.resize(static_cast<size_t>(V));
  for (int I = 0; I < V; ++I)
    Out[static_cast<size_t>(I)] = Logits[I] - LogZ;
}

/// Top-K token indices by (log-prob desc, index asc) via a bounded
/// min-heap: O(V log K), no vocab-sized index vector, scratch reused
/// across beams and steps.
inline void topK(const std::vector<float> &LogP, int K,
                 std::vector<std::pair<float, int>> &Heap,
                 std::vector<int> &Out) {
  int V = static_cast<int>(LogP.size());
  K = std::min(K, V);
  // "Better" orders by higher log-prob, ties to the lower token id.
  auto Better = [](const std::pair<float, int> &A,
                   const std::pair<float, int> &B) {
    return A.first > B.first || (A.first == B.first && A.second < B.second);
  };
  Heap.clear();
  for (int I = 0; I < V; ++I) {
    std::pair<float, int> Cand{LogP[static_cast<size_t>(I)], I};
    if (static_cast<int>(Heap.size()) < K) {
      Heap.push_back(Cand);
      std::push_heap(Heap.begin(), Heap.end(), Better);
    } else if (Better(Cand, Heap.front())) {
      std::pop_heap(Heap.begin(), Heap.end(), Better);
      Heap.back() = Cand;
      std::push_heap(Heap.begin(), Heap.end(), Better);
    }
  }
  std::sort_heap(Heap.begin(), Heap.end(), Better); // Best first.
  Out.clear();
  for (const auto &P : Heap)
    Out.push_back(P.second);
}

struct Cand {
  float Score;
  int BeamIdx;
  int Token;
};

struct BeamMeta {
  std::vector<int> Tokens;
  float Score = 0;
};

struct SelectScratch {
  std::vector<float> LogP;
  std::vector<std::pair<float, int>> Heap;
  std::vector<int> Top;
  std::vector<Cand> Cands;
};

struct SelectResult {
  std::vector<int> SrcIdx; ///< Parent beam index (local) per survivor.
  std::vector<int> Tokens; ///< Token fed to each survivor.
  /// The finished-hypothesis quota was reached: the caller must stop
  /// stepping and penalize the PRE-expansion Live set (left untouched).
  bool StopNow = false;
};

/// Per-source grammar-constraint state for one decode: each live beam
/// carries an oracle cursor (States[i] parallels Live[i]); survivor
/// selection forks/retires cursors exactly like K/V rows. Created from
/// BeamConfig::Constraint by every driver via init(); selectBeamStep /
/// finalizeBeams take it as an optional — nullptr (or a null Vocab) is
/// the unconstrained path, bit-for-bit identical to the pre-constraint
/// code.
struct ConstraintCtx {
  const tok::VocabConstraint *Vocab = nullptr;
  ConstraintStats *Stats = nullptr;
  std::vector<cc::PrefixOracle::State> States; ///< Parallel to Live.
  // Scratch reused across steps.
  std::vector<uint8_t> Allowed;
  std::vector<float> MaskedLogits;
  std::vector<cc::PrefixOracle::State> NextStates;

  void init(const BeamConfig &Cfg) {
    Vocab = Cfg.Constraint;
    Stats = Cfg.Stats;
    States.clear();
    if (Vocab)
      States.push_back(Vocab->start());
  }
  bool active() const { return Vocab != nullptr; }
};

/// One expansion step for one source's beams: log-softmax + top-k per
/// live beam, deterministic candidate ordering (score desc, then beam,
/// then token — ties never diverge between decode paths), EOS/PAD
/// candidates retire into \p Done, survivors replace \p Live. Shared by
/// the single-source search loop, the cross-request multi driver, and
/// the serve engine, so their per-source decisions are the same code.
template <typename LogitsOf>
SelectResult selectBeamStep(std::vector<BeamMeta> &Live,
                            std::vector<Hypothesis> &Done,
                            const LogitsOf &Logits, int Vocab,
                            const BeamConfig &Cfg, SelectScratch &S,
                            ConstraintCtx *CC = nullptr) {
  SelectResult R;
  S.Cands.clear();
  bool Constrained = CC && CC->active();
  for (size_t BI = 0; BI < Live.size(); ++BI) {
    const float *Row = Logits(BI);
    if (Constrained) {
      // Mask pieces whose text kills every syntactic continuation of
      // this beam BEFORE softmax/top-k, so probability mass and the
      // candidate pool only ever cover viable tokens.
      auto T0 = std::chrono::steady_clock::now();
      int Masked = CC->Vocab->allowedTokens(CC->States[BI], CC->Allowed);
      CC->MaskedLogits.assign(Row, Row + Vocab);
      for (int I = 0; I < Vocab; ++I)
        if (!CC->Allowed[static_cast<size_t>(I)])
          CC->MaskedLogits[static_cast<size_t>(I)] = -1e30f;
      if (CC->Stats) {
        CC->Stats->TokensMasked += static_cast<uint64_t>(Masked);
        CC->Stats->OracleSeconds +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          T0)
                .count();
        if (Masked >= Vocab)
          ++CC->Stats->BeamsKilled; // Contributes no candidates below.
      }
      logSoftmax(CC->MaskedLogits.data(), Vocab, S.LogP);
    } else {
      logSoftmax(Row, Vocab, S.LogP);
    }
    topK(S.LogP, Cfg.BeamSize, S.Heap, S.Top);
    for (int Tok : S.Top) {
      if (Constrained && !CC->Allowed[static_cast<size_t>(Tok)])
        continue; // A fully-masked beam dies here (its K/V row frees).
      S.Cands.push_back({Live[BI].Score + S.LogP[static_cast<size_t>(Tok)],
                         static_cast<int>(BI), Tok});
    }
  }
  std::sort(S.Cands.begin(), S.Cands.end(),
            [](const Cand &A, const Cand &B) {
              if (A.Score != B.Score)
                return A.Score > B.Score;
              if (A.BeamIdx != B.BeamIdx)
                return A.BeamIdx < B.BeamIdx;
              return A.Token < B.Token;
            });

  std::vector<BeamMeta> Next;
  for (const Cand &C : S.Cands) {
    if (static_cast<int>(Next.size()) >= Cfg.BeamSize)
      break;
    if (C.Token == Transformer::EosId || C.Token == Transformer::PadId) {
      Hypothesis H;
      H.Tokens = Live[static_cast<size_t>(C.BeamIdx)].Tokens;
      float Len = static_cast<float>(H.Tokens.size()) + 1.0f;
      H.Score = C.Score / std::pow(Len, Cfg.LengthPenalty);
      Done.push_back(std::move(H));
      continue;
    }
    BeamMeta M;
    M.Tokens = Live[static_cast<size_t>(C.BeamIdx)].Tokens;
    M.Tokens.push_back(C.Token);
    M.Score = C.Score;
    Next.push_back(std::move(M));
    R.SrcIdx.push_back(C.BeamIdx);
    R.Tokens.push_back(C.Token);
  }
  if (static_cast<int>(Done.size()) >= Cfg.BeamSize) {
    R.StopNow = true; // Pre-expansion Live falls through penalized.
    return R;
  }
  if (Constrained) {
    // Fork the surviving oracle cursors exactly like the K/V rows the
    // caller is about to reorder (snapshot = copy, advance by the
    // emitted piece's text).
    CC->NextStates.clear();
    CC->NextStates.reserve(R.SrcIdx.size());
    for (size_t I = 0; I < R.SrcIdx.size(); ++I) {
      cc::PrefixOracle::State NS =
          CC->States[static_cast<size_t>(R.SrcIdx[I])];
      CC->Vocab->advanceToken(NS, R.Tokens[I]);
      CC->NextStates.push_back(NS);
    }
    CC->States.swap(CC->NextStates);
  }
  Live = std::move(Next);
  return R;
}

/// Unfinished beams become (penalized) hypotheses so we always return
/// something; then sort best-first and cap at BeamSize. Under a
/// constraint (\p CC), unfinished beams whose text is not a complete
/// valid translation unit are dropped instead — no syntactically broken
/// candidate may reach IO-verification (the result may then be empty).
inline std::vector<Hypothesis> finalizeBeams(std::vector<BeamMeta> &&Live,
                                             std::vector<Hypothesis> &&Done,
                                             const BeamConfig &Cfg,
                                             const ConstraintCtx *CC =
                                                 nullptr) {
  bool Constrained = CC && CC->active();
  for (size_t I = 0; I < Live.size(); ++I) {
    BeamMeta &M = Live[I];
    if (Constrained && (I >= CC->States.size() ||
                        !CC->Vocab->acceptsEnd(CC->States[I])))
      continue;
    Hypothesis H;
    H.Tokens = std::move(M.Tokens);
    float Len = static_cast<float>(H.Tokens.size()) + 1.0f;
    H.Score = (M.Score - 5.0f) / std::pow(Len, Cfg.LengthPenalty);
    Done.push_back(std::move(H));
  }
  std::sort(Done.begin(), Done.end(),
            [](const Hypothesis &A, const Hypothesis &B) {
              if (A.Score != B.Score)
                return A.Score > B.Score;
              return A.Tokens < B.Tokens;
            });
  if (static_cast<int>(Done.size()) > Cfg.BeamSize)
    Done.resize(static_cast<size_t>(Cfg.BeamSize));
  return std::move(Done);
}

} // namespace beamcore
} // namespace nn
} // namespace slade

#endif // SLADE_NN_BEAMCORE_H
