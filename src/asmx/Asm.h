//===- Asm.h - structured assembly model ------------------------*- C++ -*-===//
///
/// \file
/// Structured representation of the GCC-flavoured assembly the backends
/// emit, plus parsers for both dialects. Consumed by the vm interpreters
/// and by the rule-based decompiler baseline (the Ghidra analogue).
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_ASMX_ASM_H
#define SLADE_ASMX_ASM_H

#include "support/Error.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace slade {
namespace asmx {

/// Operand of a parsed instruction; a closed union over the operand shapes
/// the backends produce.
struct Operand {
  enum Kind {
    Reg,     ///< %eax / w9 / xmm0 / v18.4s ...
    Imm,     ///< $5 / #5 / 5
    Mem,     ///< -24(%rbp) / [sp, 16] / [x9] / sym(%rip)
    Label,   ///< .L4, function names in call/bl
    Lo12,    ///< :lo12:sym (AArch64 page-offset relocation)
    Shifter, ///< lsl <imm> (AArch64 movk)
  } K = Imm;

  std::string RegName;  ///< Without '%': "eax", "w9", "v18.4s", "sp".
  int64_t ImmValue = 0;
  // Mem payload:
  std::string BaseReg;  ///< "" for absolute/symbolic.
  int64_t Disp = 0;
  std::string SymName;  ///< Non-empty for sym(%rip) and adrp symbols.
  bool WriteBackPre = false;  ///< [sp, -32]!  (pre-index)
  bool WriteBackPost = false; ///< [sp], 32    (post-index)
  std::string LabelName;
};

struct AsmInstr {
  std::string Mnemonic; ///< Lower-case, e.g. "movl", "b.le", "add".
  std::vector<Operand> Ops;
  int Line = 0;
};

/// A parsed function: a linear instruction list with label positions.
struct AsmFunction {
  std::string Name;
  std::vector<AsmInstr> Instrs;
  std::map<std::string, size_t> Labels; ///< label -> instruction index.
};

enum class Dialect { X86, Arm };

/// Parses one function of backend-emitted assembly. Unknown directives are
/// skipped; malformed operands are errors.
Expected<AsmFunction> parseAsm(const std::string &Text, Dialect D);

/// Parses a whole image: multiple functions concatenated (the evaluation
/// links the target with the context's external function definitions).
Expected<std::vector<AsmFunction>> parseAsmImage(const std::string &Text,
                                                 Dialect D);

/// Number of characters in \p Text (the paper's Fig. 9 length measure).
size_t asmCharLength(const std::string &Text);
/// Number of instruction lines (used for length binning in Fig. 8).
size_t asmInstrCount(const AsmFunction &F);

} // namespace asmx
} // namespace slade

#endif // SLADE_ASMX_ASM_H
