//===- AsmParser.cpp - parsers for both assembly dialects -------------------===//

#include "asmx/Asm.h"

#include "support/StringUtils.h"

#include <cctype>
#include <cstdlib>

using namespace slade;
using namespace slade::asmx;

namespace {

/// Splits an operand list on commas that are not inside brackets.
std::vector<std::string> splitOperands(std::string_view Text) {
  std::vector<std::string> Out;
  int Depth = 0;
  std::string Cur;
  for (char C : Text) {
    if (C == '[' || C == '(')
      ++Depth;
    if (C == ']' || C == ')')
      --Depth;
    if (C == ',' && Depth == 0) {
      Out.push_back(std::string(trim(Cur)));
      Cur.clear();
      continue;
    }
    Cur.push_back(C);
  }
  std::string Last(trim(Cur));
  if (!Last.empty())
    Out.push_back(Last);
  return Out;
}

bool parseInt(std::string_view S, int64_t *Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  std::string Buf(S);
  long long V = std::strtoll(Buf.c_str(), &End, 0);
  if (End != Buf.c_str() + Buf.size())
    return false;
  *Out = V;
  return true;
}

Status parseX86Operand(std::string_view Text, Operand *Op) {
  if (Text.empty())
    return Status::error("empty operand");
  if (Text[0] == '%') {
    Op->K = Operand::Reg;
    Op->RegName = std::string(Text.substr(1));
    return Status::success();
  }
  if (Text[0] == '$') {
    int64_t V;
    if (!parseInt(Text.substr(1), &V))
      return Status::error("bad immediate '" + std::string(Text) + "'");
    Op->K = Operand::Imm;
    Op->ImmValue = V;
    return Status::success();
  }
  size_t Open = Text.find('(');
  if (Open != std::string_view::npos && Text.back() == ')') {
    std::string_view DispStr = Text.substr(0, Open);
    std::string_view Inner = Text.substr(Open + 1,
                                         Text.size() - Open - 2);
    Op->K = Operand::Mem;
    if (Inner == "%rip") {
      Op->SymName = std::string(trim(DispStr));
      return Status::success();
    }
    if (!Inner.empty() && Inner[0] == '%')
      Op->BaseReg = std::string(Inner.substr(1));
    else
      return Status::error("bad memory base '" + std::string(Text) + "'");
    if (!DispStr.empty()) {
      int64_t D;
      if (!parseInt(DispStr, &D))
        return Status::error("bad displacement '" + std::string(Text) + "'");
      Op->Disp = D;
    }
    return Status::success();
  }
  // Bare token: numeric immediates appear only behind '$'; treat as label.
  Op->K = Operand::Label;
  Op->LabelName = std::string(Text);
  return Status::success();
}

bool isArmRegName(std::string_view S) {
  if (S == "sp" || S == "xzr" || S == "wzr")
    return true;
  if (S.size() < 2)
    return false;
  char C = S[0];
  if (C != 'w' && C != 'x' && C != 's' && C != 'd' && C != 'q' && C != 'v')
    return false;
  for (size_t I = 1; I < S.size(); ++I) {
    if (S[I] == '.')
      return C == 'v'; // v18.4s
    if (!std::isdigit(static_cast<unsigned char>(S[I])))
      return false;
  }
  return true;
}

Status parseArmOperand(std::string_view Text, Operand *Op) {
  if (Text.empty())
    return Status::error("empty operand");
  if (Text[0] == '[') {
    bool Pre = Text.back() == '!';
    std::string_view Inner =
        Text.substr(1, Text.size() - (Pre ? 3 : 2)); // Strip [ ] (and !).
    Op->K = Operand::Mem;
    Op->WriteBackPre = Pre;
    auto Parts = splitString(Inner, ',');
    if (Parts.empty() || Parts.size() > 2)
      return Status::error("bad memory operand '" + std::string(Text) + "'");
    std::string Base(trim(Parts[0]));
    if (!isArmRegName(Base))
      return Status::error("bad base register '" + Base + "'");
    Op->BaseReg = Base;
    if (Parts.size() == 2) {
      std::string D(trim(Parts[1]));
      if (!D.empty() && D[0] == '#')
        D.erase(0, 1);
      int64_t V;
      if (!parseInt(D, &V))
        return Status::error("bad displacement '" + std::string(Text) + "'");
      Op->Disp = V;
    }
    return Status::success();
  }
  if (startsWith(Text, ":lo12:")) {
    Op->K = Operand::Lo12;
    Op->SymName = std::string(Text.substr(6));
    return Status::success();
  }
  if (Text[0] == '#') {
    int64_t V;
    if (!parseInt(Text.substr(1), &V))
      return Status::error("bad immediate '" + std::string(Text) + "'");
    Op->K = Operand::Imm;
    Op->ImmValue = V;
    return Status::success();
  }
  if (isArmRegName(Text)) {
    Op->K = Operand::Reg;
    Op->RegName = std::string(Text);
    return Status::success();
  }
  {
    int64_t V;
    if (parseInt(Text, &V)) {
      Op->K = Operand::Imm;
      Op->ImmValue = V;
      return Status::success();
    }
  }
  if (startsWith(Text, "lsl ") || startsWith(Text, "lsl\t")) {
    std::string Amount(trim(Text.substr(4)));
    if (!Amount.empty() && Amount[0] == '#')
      Amount.erase(0, 1);
    int64_t V;
    if (!parseInt(Amount, &V))
      return Status::error("bad shifter '" + std::string(Text) + "'");
    Op->K = Operand::Shifter;
    Op->ImmValue = V;
    return Status::success();
  }
  Op->K = Operand::Label;
  Op->LabelName = std::string(Text);
  return Status::success();
}

} // namespace

Expected<std::vector<AsmFunction>>
slade::asmx::parseAsmImage(const std::string &Text, Dialect D) {
  std::vector<AsmFunction> Funcs;
  AsmFunction Cur;
  bool InFunction = false;
  int LineNo = 0;
  std::string PendingGlobl;

  for (const std::string &RawLine : splitString(Text, '\n')) {
    ++LineNo;
    std::string Line(trim(RawLine));
    if (Line.empty() || Line[0] == '#' || startsWith(Line, "//"))
      continue;

    // Directives.
    if (Line[0] == '.') {
      if (startsWith(Line, ".globl") || startsWith(Line, ".global")) {
        PendingGlobl = std::string(trim(Line.substr(Line.find_first_of(
            " \t"))));
        continue;
      }
      if (startsWith(Line, ".size")) {
        if (InFunction) {
          Funcs.push_back(std::move(Cur));
          Cur = AsmFunction();
          InFunction = false;
        }
        continue;
      }
      if (Line.back() == ':') {
        // Local label (.L4:).
        std::string L = Line.substr(0, Line.size() - 1);
        Cur.Labels[L] = Cur.Instrs.size();
        continue;
      }
      continue; // .type, .text, alignment etc.
    }

    // Labels.
    if (Line.back() == ':') {
      std::string L = Line.substr(0, Line.size() - 1);
      if (!InFunction || (!PendingGlobl.empty() && L == PendingGlobl)) {
        if (InFunction) {
          Funcs.push_back(std::move(Cur));
          Cur = AsmFunction();
        }
        Cur.Name = L;
        InFunction = true;
        PendingGlobl.clear();
      } else {
        Cur.Labels[L] = Cur.Instrs.size();
      }
      continue;
    }

    if (!InFunction)
      continue; // Stray code outside functions is ignored.

    // Instruction.
    size_t SpacePos = Line.find_first_of(" \t");
    AsmInstr Ins;
    Ins.Line = LineNo;
    if (SpacePos == std::string::npos) {
      Ins.Mnemonic = Line;
    } else {
      Ins.Mnemonic = Line.substr(0, SpacePos);
      std::string Rest(trim(Line.substr(SpacePos)));
      for (const std::string &OpText : splitOperands(Rest)) {
        Operand Op;
        Status S = D == Dialect::X86 ? parseX86Operand(OpText, &Op)
                                     : parseArmOperand(OpText, &Op);
        if (!S.ok())
          return Expected<std::vector<AsmFunction>>::error(
              formatString("line %d: %s", LineNo, S.message().c_str()));
        Ins.Ops.push_back(std::move(Op));
      }
    }
    Cur.Instrs.push_back(std::move(Ins));
  }
  if (InFunction)
    Funcs.push_back(std::move(Cur));
  return Funcs;
}

Expected<AsmFunction> slade::asmx::parseAsm(const std::string &Text,
                                            Dialect D) {
  auto Image = parseAsmImage(Text, D);
  if (!Image)
    return Expected<AsmFunction>::error(Image.errorMessage());
  if (Image->empty())
    return Expected<AsmFunction>::error("no function found in assembly");
  return std::move(Image->front());
}

size_t slade::asmx::asmCharLength(const std::string &Text) {
  return Text.size();
}

size_t slade::asmx::asmInstrCount(const AsmFunction &F) {
  return F.Instrs.size();
}
