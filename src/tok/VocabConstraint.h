//===- VocabConstraint.h - vocab masking over a C-prefix oracle -*- C++ -*-===//
///
/// \file
/// The token↔lexeme bridge for grammar-constrained decoding: classifies
/// every subword piece of a tok::Tokenizer once at build time, then
/// answers, per beam step, "which vocabulary ids can this beam emit next
/// without killing every syntactic continuation?" against that beam's
/// cc::PrefixOracle cursor.
///
/// The mask is a SOUND under-approximation of death: a piece is only
/// disallowed when no completion of (text so far + piece text) parses.
/// Over-allowing merely wastes a beam for one step — the oracle state it
/// advances into is fully masked on the next tick — so every fast path
/// below errs on the side of allowing.
///
/// Per-piece fast paths avoid per-piece oracle copies in the common
/// states (clean boundary, pending identifier): a piece's acceptability
/// reduces to one AND of its precomputed terminal-class bits against the
/// beam's cached terminal mask. Rare lexer states (inside a string,
/// char, comment, numeric literal, or an ambiguous punctuator chain)
/// fall back to copy-state-and-advance per piece.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_TOK_VOCABCONSTRAINT_H
#define SLADE_TOK_VOCABCONSTRAINT_H

#include "cc/PrefixOracle.h"
#include "tok/Tokenizer.h"

#include <cstdint>
#include <string>
#include <vector>

namespace slade {
namespace tok {

class VocabConstraint {
public:
  /// Classifies every piece of \p Tok. The tokenizer must outlive only
  /// this constructor — all piece text is copied.
  explicit VocabConstraint(const Tokenizer &Tok);

  /// Fresh oracle cursor (empty translation unit).
  cc::PrefixOracle::State start() const { return Oracle.start(); }

  /// Fills \p Allowed (resized to the vocab) with 1 for every id the
  /// beam at \p S may emit next. EOS and PAD are allowed iff the text so
  /// far is already a complete valid translation unit; BOS and UNK are
  /// never allowed. Returns the number of DISALLOWED ids.
  int allowedTokens(const cc::PrefixOracle::State &S,
                    std::vector<uint8_t> &Allowed) const;

  /// Advances \p S by the decoded text of \p Id (no-op for specials).
  /// Returns false when the state died.
  bool advanceToken(cc::PrefixOracle::State &S, int Id) const;

  /// True when the text fed so far is a complete valid translation unit
  /// (what gates EOS, exposed for finalize-time filtering).
  bool acceptsEnd(const cc::PrefixOracle::State &S) const {
    return Oracle.acceptsEnd(S);
  }

  /// Decoded text contribution of \p Id ("" for BOS/EOS/PAD).
  const std::string &pieceText(int Id) const {
    return Text[static_cast<size_t>(Id)];
  }

  size_t vocabSize() const { return Text.size(); }
  const cc::PrefixOracle &oracle() const { return Oracle; }

private:
  enum PieceKind : uint8_t {
    PK_Special, ///< BOS/EOS/PAD (end-gated) and UNK (always masked)
    PK_Empty,   ///< decodes to whitespace only
    PK_Word,    ///< identifier-char body, first char not a digit
    PK_DotWord, ///< '.' + identifier chars (field access / .L labels)
    PK_Digits,  ///< all-digit body
    PK_Punct,   ///< single punctuation char with precomputed bits
    PK_Generic, ///< copy state + advance (no fast path)
  };

  /// Copy-state-and-advance fallback for pieces with no fast path.
  bool genericAllowed(const cc::PrefixOracle::State &S, size_t Id) const;

  cc::PrefixOracle Oracle;
  std::vector<std::string> Text;     ///< id -> decoded contribution
  std::vector<std::string> Body;     ///< text minus the leading space
  std::vector<uint8_t> Kind;         ///< PieceKind per id
  std::vector<uint8_t> LeadSpace;    ///< text begins with ' '
  /// Terminal-class bits that admit this piece when it starts a fresh
  /// lexeme at a clean boundary. For the uniform kinds
  /// (PK_Word/DotWord/Digits/Punct) this is exact; for PK_Generic it is
  /// the piece's FIRST terminal, over-approximated — sound because a
  /// piece whose tail kills the parse still dies in advanceToken and the
  /// beam is fully masked on the next step.
  std::vector<uint64_t> BoundaryBits;
  /// PK_Generic pieces whose first terminal could not be classified
  /// statically (e.g. '#'): always simulated with genericAllowed.
  std::vector<uint8_t> GenericSlow;
  /// PK_Word/PK_Digits pieces whose body occurs inside an accepted
  /// keyword at a non-zero offset: only these can turn a pending word
  /// into a keyword, so only these pay the keyword-prefix check when
  /// continuing a word.
  std::vector<uint8_t> KwMidfix;
};

} // namespace tok
} // namespace slade

#endif // SLADE_TOK_VOCABCONSTRAINT_H
