//===- Tokenizer.cpp - UnigramLM subword tokenizer ---------------------------===//

#include "tok/Tokenizer.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

using namespace slade;
using namespace slade::tok;

std::vector<std::string> slade::tok::preTokenize(const std::string &Text) {
  std::vector<std::string> Atoms;
  bool PendingSpace = false;
  size_t I = 0, N = Text.size();
  auto push = [&](std::string Atom) {
    if (PendingSpace)
      Atom = std::string(metaspace()) + Atom;
    PendingSpace = false;
    Atoms.push_back(std::move(Atom));
  };
  while (I < N) {
    unsigned char C = static_cast<unsigned char>(Text[I]);
    if (std::isspace(C)) {
      PendingSpace = true;
      ++I;
      continue;
    }
    if (std::isdigit(C)) {
      // Numbers split digit-by-digit (§IV): 512 -> [5, 1, 2].
      push(std::string(1, static_cast<char>(C)));
      ++I;
      continue;
    }
    if (std::isalpha(C) || C == '_' || C == '.') {
      // Identifiers, keywords, mnemonics, and local labels (.L4 keeps its
      // dot so assembly labels stay word-like; digits inside identifiers
      // stay attached).
      size_t Start = I;
      ++I;
      while (I < N) {
        unsigned char D = static_cast<unsigned char>(Text[I]);
        if (std::isalnum(D) || D == '_')
          ++I;
        else
          break;
      }
      push(Text.substr(Start, I - Start));
      continue;
    }
    // Punctuation: every sign is its own token (§IV).
    push(std::string(1, static_cast<char>(C)));
    ++I;
  }
  return Atoms;
}

void Tokenizer::rebuildIndex() {
  PieceIds.clear();
  for (size_t I = 0; I < Pieces.size(); ++I)
    PieceIds[Pieces[I]] = static_cast<int>(I);
}

namespace {

/// Viterbi segmentation of \p Atom over \p PieceIds with \p LogProbs;
/// returns piece ids (or UnkId singletons for uncovered characters).
void viterbiSegment(const std::string &Atom,
                    const std::unordered_map<std::string, int> &PieceIds,
                    const std::vector<float> &LogProbs, unsigned MaxPieceLen,
                    std::vector<int> *Out) {
  size_t N = Atom.size();
  std::vector<float> Best(N + 1, -1e30f);
  std::vector<int> BackPiece(N + 1, -1);
  std::vector<size_t> BackPos(N + 1, 0);
  Best[0] = 0;
  for (size_t End = 1; End <= N; ++End) {
    size_t MinStart = End > MaxPieceLen + 4 ? End - MaxPieceLen - 4 : 0;
    for (size_t Start = MinStart; Start < End; ++Start) {
      if (Best[Start] <= -1e29f)
        continue;
      auto It = PieceIds.find(Atom.substr(Start, End - Start));
      float Score;
      int Id;
      if (It != PieceIds.end()) {
        Id = It->second;
        Score = Best[Start] + LogProbs[static_cast<size_t>(Id)];
      } else if (End - Start == 1) {
        Id = Tokenizer::UnkId;
        Score = Best[Start] - 30.0f; // Unknown character penalty.
      } else {
        continue;
      }
      if (Score > Best[End]) {
        Best[End] = Score;
        BackPiece[End] = Id;
        BackPos[End] = Start;
      }
    }
  }
  std::vector<int> Rev;
  for (size_t Pos = N; Pos > 0; Pos = BackPos[Pos])
    Rev.push_back(BackPiece[Pos]);
  Out->insert(Out->end(), Rev.rbegin(), Rev.rend());
}

} // namespace

void Tokenizer::viterbi(const std::string &Atom,
                        std::vector<int> *Out) const {
  viterbiSegment(Atom, PieceIds, LogProbs,
                 /*MaxPieceLen=*/24, Out);
}

std::vector<int> Tokenizer::encode(const std::string &Text) const {
  std::vector<int> Out;
  for (const std::string &Atom : preTokenize(Text))
    viterbi(Atom, &Out);
  return Out;
}

std::string Tokenizer::decode(const std::vector<int> &Ids) const {
  std::string Out;
  for (int Id : Ids) {
    if (Id == PadId || Id == BosId || Id == EosId)
      continue;
    const std::string &P =
        Id >= 0 && static_cast<size_t>(Id) < Pieces.size()
            ? Pieces[static_cast<size_t>(Id)]
            : Pieces[UnkId];
    Out += P;
  }
  return replaceAll(std::move(Out), metaspace(), " ");
}

Tokenizer Tokenizer::train(const std::vector<std::string> &Texts,
                           const Config &Cfg) {
  // 1. Atom frequency table.
  std::map<std::string, int64_t> AtomFreq;
  for (const std::string &T : Texts)
    for (const std::string &A : preTokenize(T))
      ++AtomFreq[A];

  // 2. Candidate pieces: all substrings up to MaxPieceLen (character
  //    coverage guaranteed by always keeping single "characters", where a
  //    character may be the 3-byte metaspace followed by one byte).
  std::map<std::string, int64_t> CandScore;
  std::map<std::string, int64_t> CharFreq;
  const std::string MS = metaspace();
  for (const auto &[Atom, Freq] : AtomFreq) {
    for (size_t S = 0; S < Atom.size(); ++S) {
      // Do not start a piece in the middle of the metaspace bytes.
      if (S > 0 && S < MS.size() && Atom.compare(0, MS.size(), MS) == 0)
        continue;
      for (size_t L = 1; L <= Cfg.MaxPieceLen + 3 && S + L <= Atom.size();
           ++L) {
        std::string Piece = Atom.substr(S, L);
        CandScore[Piece] += Freq * static_cast<int64_t>(L);
      }
      size_t CharLen = 1;
      if (Atom.compare(S, MS.size(), MS) == 0)
        CharLen = S + MS.size() < Atom.size() ? MS.size() + 1 : MS.size();
      CharFreq[Atom.substr(S, CharLen)] += Freq;
      if (CharLen > 1)
        CharFreq[Atom.substr(S, 1)] += 0; // Keep raw bytes available too.
    }
  }

  Tokenizer Tok;
  Tok.Pieces = {"<pad>", "<s>", "</s>", "<unk>"};
  // Alphabet first. Full character coverage (§IV: "unseen tokens can
  // always be built from seen subwords, even character by character")
  // requires both the bare and the metaspace-prefixed variant of every
  // observed character.
  std::set<std::string> Alphabet;
  Alphabet.insert(MS);
  // Printable ASCII is always covered (the paper's alphabet is
  // "essentially the ASCII alphabet").
  for (char C = 0x21; C < 0x7f; ++C) {
    Alphabet.insert(std::string(1, C));
    Alphabet.insert(MS + std::string(1, C));
  }
  for (const auto &[Piece, Freq] : CharFreq) {
    std::string Base = Piece;
    if (startsWith(Base, MS))
      Base = Base.substr(MS.size());
    if (Base.empty())
      continue;
    Alphabet.insert(Base);
    Alphabet.insert(MS + Base);
  }
  for (const std::string &Piece : Alphabet)
    Tok.Pieces.push_back(Piece);
  CharFreq.clear();
  for (const std::string &Piece : Alphabet)
    CharFreq[Piece] = 1; // Alphabet marker for the pruning stage below.
  // Then the highest-scoring multi-character candidates.
  std::vector<std::pair<int64_t, std::string>> Ranked;
  for (const auto &[Piece, Score] : CandScore)
    if (!CharFreq.count(Piece))
      Ranked.push_back({Score, Piece});
  std::sort(Ranked.begin(), Ranked.end(), [](const auto &A, const auto &B) {
    if (A.first != B.first)
      return A.first > B.first;
    return A.second < B.second;
  });
  size_t Budget = Cfg.VocabSize > Tok.Pieces.size()
                      ? Cfg.VocabSize - Tok.Pieces.size()
                      : 0;
  // Over-seed, then let EM pruning pick the final set.
  size_t Seed = std::min(Ranked.size(), Budget * 3 + 32);
  for (size_t I = 0; I < Seed; ++I)
    Tok.Pieces.push_back(Ranked[I].second);
  Tok.LogProbs.assign(Tok.Pieces.size(), -10.0f);
  Tok.rebuildIndex();

  // 3. Hard-EM: Viterbi counts, re-estimate, prune back to VocabSize.
  for (int Iter = 0; Iter < Cfg.EMIterations; ++Iter) {
    std::vector<int64_t> Counts(Tok.Pieces.size(), 0);
    int64_t Total = 0;
    for (const auto &[Atom, Freq] : AtomFreq) {
      std::vector<int> Ids;
      viterbiSegment(Atom, Tok.PieceIds, Tok.LogProbs, Cfg.MaxPieceLen + 3,
                     &Ids);
      for (int Id : Ids) {
        Counts[static_cast<size_t>(Id)] += Freq;
        Total += Freq;
      }
    }
    bool LastIter = Iter == Cfg.EMIterations - 1;
    size_t AlphabetEnd = 4 + CharFreq.size();
    if (!LastIter) {
      // Prune the worst-used multi-char pieces, keeping the alphabet.
      std::vector<std::pair<int64_t, size_t>> Usage;
      for (size_t I = AlphabetEnd; I < Tok.Pieces.size(); ++I)
        Usage.push_back({Counts[I], I});
      std::sort(Usage.begin(), Usage.end(), [](const auto &A, const auto &B) {
        if (A.first != B.first)
          return A.first > B.first;
        return A.second < B.second;
      });
      size_t Keep = Cfg.VocabSize > AlphabetEnd
                        ? Cfg.VocabSize - AlphabetEnd
                        : 0;
      std::vector<std::string> NewPieces(Tok.Pieces.begin(),
                                         Tok.Pieces.begin() +
                                             static_cast<long>(AlphabetEnd));
      std::vector<int64_t> NewCounts(Counts.begin(),
                                     Counts.begin() +
                                         static_cast<long>(AlphabetEnd));
      for (size_t I = 0; I < Usage.size() && I < Keep; ++I) {
        NewPieces.push_back(Tok.Pieces[Usage[I].second]);
        NewCounts.push_back(Usage[I].first);
      }
      Tok.Pieces = std::move(NewPieces);
      Counts = std::move(NewCounts);
      Tok.rebuildIndex();
    }
    // Re-estimate probabilities with add-one smoothing.
    Tok.LogProbs.assign(Tok.Pieces.size(), 0.0f);
    double Denom = static_cast<double>(Total) +
                   static_cast<double>(Tok.Pieces.size());
    for (size_t I = 0; I < Tok.Pieces.size(); ++I)
      Tok.LogProbs[I] = static_cast<float>(
          std::log((static_cast<double>(Counts[I]) + 1.0) / Denom));
  }
  return Tok;
}

Status Tokenizer::save(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return Status::error("cannot open " + Path + " for writing");
  uint64_t N = Pieces.size();
  std::fwrite(&N, sizeof(N), 1, F);
  for (size_t I = 0; I < Pieces.size(); ++I) {
    uint32_t L = static_cast<uint32_t>(Pieces[I].size());
    std::fwrite(&L, sizeof(L), 1, F);
    std::fwrite(Pieces[I].data(), 1, L, F);
    std::fwrite(&LogProbs[I], sizeof(float), 1, F);
  }
  std::fclose(F);
  return Status::success();
}

Expected<Tokenizer> Tokenizer::load(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Expected<Tokenizer>::error("cannot open " + Path);
  Tokenizer Tok;
  uint64_t N = 0;
  if (std::fread(&N, sizeof(N), 1, F) != 1 || N > 1000000) {
    std::fclose(F);
    return Expected<Tokenizer>::error("corrupt tokenizer file " + Path);
  }
  Tok.Pieces.resize(N);
  Tok.LogProbs.resize(N);
  for (uint64_t I = 0; I < N; ++I) {
    uint32_t L = 0;
    if (std::fread(&L, sizeof(L), 1, F) != 1 || L > 4096) {
      std::fclose(F);
      return Expected<Tokenizer>::error("corrupt tokenizer file " + Path);
    }
    Tok.Pieces[I].resize(L);
    if (L && std::fread(Tok.Pieces[I].data(), 1, L, F) != L) {
      std::fclose(F);
      return Expected<Tokenizer>::error("corrupt tokenizer file " + Path);
    }
    if (std::fread(&Tok.LogProbs[I], sizeof(float), 1, F) != 1) {
      std::fclose(F);
      return Expected<Tokenizer>::error("corrupt tokenizer file " + Path);
    }
  }
  std::fclose(F);
  Tok.rebuildIndex();
  return Tok;
}
