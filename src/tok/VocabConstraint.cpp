//===- VocabConstraint.cpp - vocab masking over a C-prefix oracle -------------===//

#include "tok/VocabConstraint.h"

#include "support/StringUtils.h"

#include <cctype>

using namespace slade;
using namespace slade::tok;
using cc::PrefixOracle;

namespace {

bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

bool allIdentChars(const std::string &S) {
  for (char C : S)
    if (!isIdentChar(C))
      return false;
  return !S.empty();
}

bool allDigits(const std::string &S) {
  for (char C : S)
    if (!std::isdigit(static_cast<unsigned char>(C)))
      return false;
  return !S.empty();
}

/// Terminal bits admitting single punctuation char \p C at a boundary.
/// Returns ~0 for chars that may contribute nothing (comment starters),
/// 0 for chars the frontend can never accept.
uint64_t punctCharBits(char C) {
  switch (C) {
  case '"':
    return PrefixOracle::bit(PrefixOracle::T_StrLit);
  case '\'':
    return PrefixOracle::bit(PrefixOracle::T_CharLit);
  case '.':
    // Member access, or the start of a fraction-first float literal.
    return PrefixOracle::bit(PrefixOracle::T_Dot) |
           PrefixOracle::bit(PrefixOracle::T_FloatLit);
  case '/':
    // Division, /=, or the start of a comment (which contributes no
    // terminal at all) — never maskable at an alive boundary.
    return ~uint64_t(0);
  default:
    return PrefixOracle::punctPrefixBits(std::string_view(&C, 1));
  }
}

} // namespace

VocabConstraint::VocabConstraint(const Tokenizer &Tok) {
  size_t V = Tok.vocabSize();
  Text.resize(V);
  Body.resize(V);
  Kind.assign(V, PK_Generic);
  LeadSpace.assign(V, 0);
  BoundaryBits.assign(V, 0);
  GenericSlow.assign(V, 0);
  KwMidfix.assign(V, 0);
  for (size_t Id = 0; Id < V; ++Id) {
    if (Id == Tokenizer::PadId || Id == Tokenizer::BosId ||
        Id == Tokenizer::EosId || Id == Tokenizer::UnkId) {
      Kind[Id] = PK_Special;
      continue;
    }
    // Exactly what Tokenizer::decode contributes for this id.
    std::string T =
        replaceAll(std::string(Tok.piece(static_cast<int>(Id))),
                   metaspace(), " ");
    Text[Id] = T;
    size_t B = 0;
    while (B < T.size() && T[B] == ' ')
      ++B;
    LeadSpace[Id] = B > 0;
    Body[Id] = T.substr(B);
    const std::string &Bd = Body[Id];
    if (Bd.empty()) {
      Kind[Id] = PK_Empty;
    } else if (allDigits(Bd)) {
      Kind[Id] = PK_Digits;
      BoundaryBits[Id] = PrefixOracle::bit(PrefixOracle::T_IntLit) |
                         PrefixOracle::bit(PrefixOracle::T_FloatLit);
    } else if (allIdentChars(Bd) &&
               !std::isdigit(static_cast<unsigned char>(Bd[0]))) {
      Kind[Id] = PK_Word;
      BoundaryBits[Id] = PrefixOracle::bit(PrefixOracle::T_Ident) |
                         PrefixOracle::keywordPrefixBits(Bd);
      KwMidfix[Id] = PrefixOracle::keywordMidfix(Bd);
    } else if (Bd[0] == '.' && Bd.size() > 1 &&
               allIdentChars(Bd.substr(1))) {
      // ".b" / ".L4" word atoms: the dot flushes as T_Dot by maximal
      // munch, then the tail pends as a word.
      Kind[Id] = PK_DotWord;
      BoundaryBits[Id] = PrefixOracle::bit(PrefixOracle::T_Dot);
    } else if (Bd.size() == 1 && !isIdentChar(Bd[0]) && Bd[0] != '#') {
      Kind[Id] = PK_Punct;
      BoundaryBits[Id] = punctCharBits(Bd[0]);
    } else {
      // Mixed bodies ("a = ", "();", "5b"...): PK_Generic. At a clean
      // boundary only the FIRST terminal decides admissibility — a
      // later char that kills the parse still dies in advanceToken, so
      // the beam is fully masked next step. Precompute that terminal's
      // bits (over-approximate where the piece ends mid-lexeme);
      // full simulation is then only needed mid-lexeme.
      char C = Bd[0];
      if (C == '#') {
        GenericSlow[Id] = 1; // Preprocessor-ish: simulate.
      } else if (std::isdigit(static_cast<unsigned char>(C))) {
        BoundaryBits[Id] = PrefixOracle::bit(PrefixOracle::T_IntLit) |
                           PrefixOracle::bit(PrefixOracle::T_FloatLit);
      } else if (isIdentChar(C)) {
        size_t R = 1;
        while (R < Bd.size() && isIdentChar(Bd[R]))
          ++R;
        if (R >= Bd.size()) {
          // Word runs to the piece's end: still open, may extend.
          BoundaryBits[Id] =
              PrefixOracle::bit(PrefixOracle::T_Ident) |
              PrefixOracle::keywordPrefixBits(Bd.substr(0, R));
        } else if (R > 10) {
          BoundaryBits[Id] = PrefixOracle::bit(PrefixOracle::T_Ident);
        } else {
          int Kw = PrefixOracle::keywordTerm(Bd.substr(0, R));
          BoundaryBits[Id] = Kw >= 0 ? PrefixOracle::bit(Kw) : 0;
        }
      } else {
        BoundaryBits[Id] = punctCharBits(C);
      }
    }
  }
}

int VocabConstraint::allowedTokens(const PrefixOracle::State &S,
                                   std::vector<uint8_t> &Allowed) const {
  size_t V = Text.size();
  Allowed.assign(V, 0);
  if (S.Dead)
    return static_cast<int>(V);

  // One boundary resolution + two mask queries per beam step; the fast
  // paths below are then a single AND per piece.
  PrefixOracle::State Bnd = Oracle.boundary(S);
  bool BndAlive = !Bnd.Dead;
  uint64_t MaskB = BndAlive ? Oracle.terminalMask(Bnd) : 0;
  bool EndOK = Oracle.acceptsEnd(S);
  PrefixOracle::PendClass PC = Oracle.pendClass(S);
  PrefixOracle::State SC = S; // terminalMask caches into the state
  uint64_t MaskP = Oracle.terminalMask(SC);
  std::string_view Pend = Oracle.pendingText(S);
  // Inside a string/char/comment a space is literal content, not a
  // lexeme boundary — the boundary-resolution fast paths are wrong
  // there, so every piece takes the generic path.
  bool BoundaryFast = PC == PrefixOracle::P_None ||
                      PC == PrefixOracle::P_Word ||
                      PC == PrefixOracle::P_Num ||
                      PC == PrefixOracle::P_Punct;

  int Masked = 0;
  for (size_t Id = 0; Id < V; ++Id) {
    bool Ok = false;
    switch (Kind[Id]) {
    case PK_Special:
      Ok = (Id == Tokenizer::EosId || Id == Tokenizer::PadId) && EndOK;
      break;
    case PK_Empty:
      // A bare space: flushes any pending lexeme (generic when the
      // pending lexeme swallows spaces — handled by BoundaryFast).
      Ok = BoundaryFast ? BndAlive : genericAllowed(S, Id);
      break;
    default: {
      if (!BoundaryFast) {
        Ok = genericAllowed(S, Id); // Inside string/char/comment.
        break;
      }
      // Does this piece START A NEW LEXEME? A leading space always
      // flushes whatever pends; otherwise the piece's first char must
      // be unable to extend the pending lexeme. boundary(S) performs
      // exactly that flush, so MaskB decides new-lexeme pieces with one
      // AND. (P_Num pendings extend through ident chars, '.', and even
      // '+'/'-' after an exponent — only a space is safely a flush.)
      bool NewLexeme;
      char F = Body[Id][0];
      if (LeadSpace[Id] || PC == PrefixOracle::P_None)
        NewLexeme = true;
      else if (PC == PrefixOracle::P_Word)
        NewLexeme = !isIdentChar(F);
      else if (PC == PrefixOracle::P_Punct)
        // Pending chains are "<", ">", "<<", ">>", "..": only these
        // chars can extend one ("<=", "<<=", "...").
        NewLexeme = F != '<' && F != '>' && F != '=' && F != '.';
      else // P_Num
        NewLexeme = false;
      if (NewLexeme && !GenericSlow[Id]) {
        Ok = BndAlive && (MaskB & BoundaryBits[Id]) != 0;
      } else if (PC == PrefixOracle::P_Word &&
                 (Kind[Id] == PK_Word || Kind[Id] == PK_Digits)) {
        // Continue the pending identifier/keyword: viable iff the word
        // can still flush as something the PDA accepts. Identifiers
        // decide almost every piece with one AND; the keyword check
        // (which allocates) only runs for bodies that can actually sit
        // inside a keyword.
        if (MaskP & PrefixOracle::bit(PrefixOracle::T_Ident))
          Ok = true;
        else if (!Pend.empty() && KwMidfix[Id])
          Ok = (MaskP & PrefixOracle::keywordPrefixBits(
                            std::string(Pend) + Body[Id])) != 0;
        else
          Ok = false;
      } else {
        Ok = genericAllowed(S, Id);
      }
      break;
    }
    }
    Allowed[Id] = Ok;
    Masked += !Ok;
  }
  return Masked;
}

bool VocabConstraint::genericAllowed(const PrefixOracle::State &S,
                                     size_t Id) const {
  PrefixOracle::State T = S;
  return Oracle.advance(T, Text[Id]);
}

bool VocabConstraint::advanceToken(PrefixOracle::State &S, int Id) const {
  if (Id < 0 || static_cast<size_t>(Id) >= Text.size())
    return Oracle.alive(S);
  return Oracle.advance(S, Text[static_cast<size_t>(Id)]);
}
