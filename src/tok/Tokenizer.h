//===- Tokenizer.h - UnigramLM subword tokenizer ----------------*- C++ -*-===//
///
/// \file
/// The paper's code tokenizer (§IV): UnigramLM subword vocabulary with a
/// small code-oriented vocab, digit-by-digit number splitting, punctuation
/// isolation, and SentencePiece-style metaspace ('▁', here the byte 0x1e
/// placeholder is avoided by using the literal UTF-8 sequence) marking
/// word-initial pieces. Whitespace runs are normalized to a single space,
/// which is lossless for C and assembly up to formatting.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_TOK_TOKENIZER_H
#define SLADE_TOK_TOKENIZER_H

#include "support/Error.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace slade {
namespace tok {

/// Metaspace marker prepended to atoms that follow whitespace.
inline const char *metaspace() { return "\xe2\x96\x81"; } // U+2581

/// Splits \p Text into atoms: identifiers, single digits, single
/// punctuation characters; atoms preceded by whitespace get the metaspace
/// prefix.
std::vector<std::string> preTokenize(const std::string &Text);

class Tokenizer {
public:
  struct Config {
    unsigned VocabSize = 512;
    int EMIterations = 3;
    unsigned MaxPieceLen = 10;
  };

  /// Special token ids.
  static constexpr int PadId = 0;
  static constexpr int BosId = 1;
  static constexpr int EosId = 2;
  static constexpr int UnkId = 3;

  /// Learns a UnigramLM vocabulary over \p Texts.
  static Tokenizer train(const std::vector<std::string> &Texts,
                         const Config &Cfg);

  /// Viterbi-segments \p Text (no BOS/EOS added).
  std::vector<int> encode(const std::string &Text) const;

  /// Inverse of encode up to whitespace normalization.
  std::string decode(const std::vector<int> &Ids) const;

  size_t vocabSize() const { return Pieces.size(); }
  const std::string &piece(int Id) const { return Pieces[Id]; }

  Status save(const std::string &Path) const;
  static Expected<Tokenizer> load(const std::string &Path);

private:
  std::vector<std::string> Pieces;      ///< Id -> piece text.
  std::vector<float> LogProbs;          ///< Id -> unigram log prob.
  std::unordered_map<std::string, int> PieceIds;

  void rebuildIndex();
  /// Best segmentation of one atom; appends ids.
  void viterbi(const std::string &Atom, std::vector<int> *Out) const;
};

} // namespace tok
} // namespace slade

#endif // SLADE_TOK_TOKENIZER_H
