//===- Casting.h - LLVM-style isa/cast/dyn_cast -----------------*- C++ -*-===//
///
/// \file
/// Hand-rolled RTTI in the style of llvm/Support/Casting.h. Class
/// hierarchies opt in by providing `static bool classof(const Base *)`.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_SUPPORT_CASTING_H
#define SLADE_SUPPORT_CASTING_H

#include <cassert>

namespace slade {

/// True if \p Val is an instance of To (Java `instanceof`).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts that \p Val really is a To.
template <typename To, typename From> To *cast(From *Val) {
  assert(Val && "cast<> used on a null pointer");
  assert(To::classof(Val) && "cast<To>() argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(Val && "cast<> used on a null pointer");
  assert(To::classof(Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  assert(Val && "dyn_cast<> used on a null pointer");
  return To::classof(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  assert(Val && "dyn_cast<> used on a null pointer");
  return To::classof(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// dyn_cast<> that tolerates null input (LLVM's dyn_cast_if_present).
template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace slade

#endif // SLADE_SUPPORT_CASTING_H
