//===- StringUtils.cpp - small string helpers -----------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

using namespace slade;

std::vector<std::string> slade::splitString(std::string_view Text, char Sep) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Out.emplace_back(Text.substr(Start));
      return Out;
    }
    Out.emplace_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::vector<std::string> slade::splitWhitespace(std::string_view Text) {
  std::vector<std::string> Out;
  size_t I = 0, N = Text.size();
  while (I < N) {
    while (I < N && std::isspace(static_cast<unsigned char>(Text[I])))
      ++I;
    size_t Start = I;
    while (I < N && !std::isspace(static_cast<unsigned char>(Text[I])))
      ++I;
    if (I > Start)
      Out.emplace_back(Text.substr(Start, I - Start));
  }
  return Out;
}

std::string slade::joinStrings(const std::vector<std::string> &Parts,
                               std::string_view Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I)
      Out.append(Sep);
    Out.append(Parts[I]);
  }
  return Out;
}

std::string_view slade::trim(std::string_view Text) {
  size_t B = 0, E = Text.size();
  while (B < E && std::isspace(static_cast<unsigned char>(Text[B])))
    ++B;
  while (E > B && std::isspace(static_cast<unsigned char>(Text[E - 1])))
    --E;
  return Text.substr(B, E - B);
}

bool slade::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.substr(0, Prefix.size()) == Prefix;
}

bool slade::endsWith(std::string_view Text, std::string_view Suffix) {
  return Text.size() >= Suffix.size() &&
         Text.substr(Text.size() - Suffix.size()) == Suffix;
}

std::string slade::replaceAll(std::string Text, std::string_view From,
                              std::string_view To) {
  if (From.empty())
    return Text;
  size_t Pos = 0;
  while ((Pos = Text.find(From, Pos)) != std::string::npos) {
    Text.replace(Pos, From.size(), To);
    Pos += To.size();
  }
  return Text;
}

uint64_t slade::fnv1a64(std::string_view Data) {
  uint64_t Hash = 0xcbf29ce484222325ULL;
  for (unsigned char C : Data) {
    Hash ^= C;
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}

std::string slade::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list Copy;
  va_copy(Copy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  std::string Out;
  if (Len > 0) {
    Out.resize(static_cast<size_t>(Len));
    std::vsnprintf(Out.data(), Out.size() + 1, Fmt, Args);
  }
  va_end(Args);
  return Out;
}
