//===- RNG.h - deterministic random number generation -----------*- C++ -*-===//
///
/// \file
/// SplitMix64-based RNG. Every stochastic component in the repository
/// (corpus generation, parameter init, input generation for IO testing)
/// draws from an explicitly seeded SplitMix64 so runs are bit-reproducible.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_SUPPORT_RNG_H
#define SLADE_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace slade {

/// SplitMix64 generator (Steele, Lea & Flood 2014). Tiny state, excellent
/// statistical quality for non-cryptographic use, trivially seedable.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed = 0x5eed5eedULL) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "below() requires a positive bound");
    // Rejection-free multiply-shift; bias is negligible for our bounds.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * Bound) >> 64);
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "range() bounds inverted");
    return Lo + static_cast<int64_t>(
                    below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Standard normal via Box-Muller (one value per call; simple and
  /// deterministic, speed is irrelevant at our scales).
  double normal() {
    double U1 = uniform(), U2 = uniform();
    if (U1 < 1e-300)
      U1 = 1e-300;
    return __builtin_sqrt(-2.0 * __builtin_log(U1)) *
           __builtin_cos(6.283185307179586 * U2);
  }

  /// True with probability \p P.
  bool chance(double P) { return uniform() < P; }

  /// Picks a uniformly random element of \p Items.
  template <typename T> const T &pick(const std::vector<T> &Items) {
    assert(!Items.empty() && "pick() from empty vector");
    return Items[below(Items.size())];
  }

  /// Weighted choice: returns an index i with probability
  /// Weights[i] / sum(Weights).
  size_t weighted(const std::vector<double> &Weights) {
    double Total = 0;
    for (double W : Weights)
      Total += W;
    assert(Total > 0 && "weighted() needs positive total weight");
    double X = uniform() * Total;
    for (size_t I = 0; I < Weights.size(); ++I) {
      X -= Weights[I];
      if (X <= 0)
        return I;
    }
    return Weights.size() - 1;
  }

  /// Derives an independent child generator (for parallel streams).
  SplitMix64 fork() { return SplitMix64(next()); }

private:
  uint64_t State;
};

} // namespace slade

#endif // SLADE_SUPPORT_RNG_H
