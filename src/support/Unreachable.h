//===- Unreachable.h - marker for impossible control flow ------*- C++ -*-===//
///
/// \file
/// SLADE_UNREACHABLE marks control-flow points that must never execute if
/// the program's invariants hold. It aborts with a message in all builds.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_SUPPORT_UNREACHABLE_H
#define SLADE_SUPPORT_UNREACHABLE_H

#include <cstdio>
#include <cstdlib>

namespace slade {

[[noreturn]] inline void unreachableInternal(const char *Msg,
                                             const char *File, int Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%d: %s\n", File, Line,
               Msg ? Msg : "");
  std::abort();
}

} // namespace slade

#define SLADE_UNREACHABLE(msg)                                                \
  ::slade::unreachableInternal(msg, __FILE__, __LINE__)

#endif // SLADE_SUPPORT_UNREACHABLE_H
