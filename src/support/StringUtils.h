//===- StringUtils.h - small string helpers ---------------------*- C++ -*-===//
///
/// \file
/// String helpers shared across the repository: split/join/trim, numeric
/// formatting, and FNV-1a hashing used for train/test deduplication.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_SUPPORT_STRINGUTILS_H
#define SLADE_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace slade {

/// Splits \p Text on \p Sep; consecutive separators yield empty fields.
std::vector<std::string> splitString(std::string_view Text, char Sep);

/// Splits \p Text on any whitespace; no empty fields are produced.
std::vector<std::string> splitWhitespace(std::string_view Text);

/// Joins \p Parts with \p Sep between consecutive elements.
std::string joinStrings(const std::vector<std::string> &Parts,
                        std::string_view Sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view Text);

bool startsWith(std::string_view Text, std::string_view Prefix);
bool endsWith(std::string_view Text, std::string_view Suffix);

/// Replaces every occurrence of \p From in \p Text with \p To.
std::string replaceAll(std::string Text, std::string_view From,
                       std::string_view To);

/// 64-bit FNV-1a hash (used for token-level corpus deduplication, §V-A).
uint64_t fnv1a64(std::string_view Data);

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace slade

#endif // SLADE_SUPPORT_STRINGUTILS_H
