//===- Error.h - recoverable error handling ---------------------*- C++ -*-===//
///
/// \file
/// Lightweight recoverable-error types used throughout the library.
/// Library code does not use C++ exceptions (see DESIGN.md); fallible
/// operations return Status or Expected<T> instead.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_SUPPORT_ERROR_H
#define SLADE_SUPPORT_ERROR_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace slade {

/// Result of a fallible operation that produces no value.
///
/// A default-constructed Status is success. Failure carries a
/// human-readable message following LLVM diagnostic style (lowercase start,
/// no trailing period).
class Status {
public:
  Status() = default;

  static Status success() { return Status(); }
  static Status error(std::string Msg) {
    Status S;
    S.Message = std::move(Msg);
    S.Failed = true;
    return S;
  }

  bool ok() const { return !Failed; }
  explicit operator bool() const { return ok(); }

  /// Message describing the failure; empty on success.
  const std::string &message() const { return Message; }

private:
  std::string Message;
  bool Failed = false;
};

/// Either a value of type T or an error message.
///
/// Callers must check hasValue()/operator bool before dereferencing.
template <typename T> class Expected {
public:
  Expected(T Value) : Value(std::move(Value)) {}
  Expected(Status Err) : Err(std::move(Err)) {
    assert(!this->Err.ok() && "Expected constructed from success Status");
  }

  static Expected<T> error(std::string Msg) {
    return Expected<T>(Status::error(std::move(Msg)));
  }

  bool hasValue() const { return Value.has_value(); }
  explicit operator bool() const { return hasValue(); }

  T &get() {
    assert(hasValue() && "Expected has no value");
    return *Value;
  }
  const T &get() const {
    assert(hasValue() && "Expected has no value");
    return *Value;
  }
  T &operator*() { return get(); }
  const T &operator*() const { return get(); }
  T *operator->() { return &get(); }
  const T *operator->() const { return &get(); }

  /// Message of the contained error; empty if this holds a value.
  const std::string &errorMessage() const { return Err.message(); }
  const Status &status() const { return Err; }

  /// Returns the value or \p Default when this holds an error.
  T valueOr(T Default) const { return hasValue() ? *Value : Default; }

private:
  std::optional<T> Value;
  Status Err;
};

} // namespace slade

#endif // SLADE_SUPPORT_ERROR_H
