//===- ThreadPool.h - minimal fixed-size worker pool ------------*- C++ -*-===//
///
/// \file
/// A small fixed-size thread pool for coarse-grained task parallelism:
/// candidate IO-verification (compile + execute per beam hypothesis) and
/// batch evaluation sweeps. Tasks are type-erased closures; parallelFor
/// covers the common "independent index range" case and runs inline when
/// the pool has a single worker (or the range a single element), so
/// callers need no special-casing on small machines.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_SUPPORT_THREADPOOL_H
#define SLADE_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace slade {

class ThreadPool {
public:
  explicit ThreadPool(unsigned Workers = defaultConcurrency()) {
    if (Workers < 1)
      Workers = 1;
    for (unsigned I = 0; I < Workers; ++I)
      Threads.emplace_back([this] { workerLoop(); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Stopping = true;
    }
    Wake.notify_all();
    for (std::thread &T : Threads)
      T.join();
  }

  unsigned workerCount() const {
    return static_cast<unsigned>(Threads.size());
  }

  /// Enqueues a task. The task must not submit to (and wait on) the same
  /// pool, or it may deadlock once all workers block.
  void submit(std::function<void()> Task) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Queue.push(std::move(Task));
      ++Outstanding;
    }
    Wake.notify_one();
  }

  /// Blocks until every submitted task has finished.
  void wait() {
    std::unique_lock<std::mutex> Lock(Mu);
    Idle.wait(Lock, [this] { return Outstanding == 0; });
  }

  /// Runs Fn(0) .. Fn(N-1) across the pool and waits for completion.
  /// Exceptions must not escape Fn.
  void parallelFor(size_t N, const std::function<void(size_t)> &Fn) {
    if (N == 0)
      return;
    if (N == 1 || workerCount() == 1) {
      for (size_t I = 0; I < N; ++I)
        Fn(I);
      return;
    }
    for (size_t I = 0; I < N; ++I)
      submit([&Fn, I] { Fn(I); });
    wait();
  }

  /// Hardware concurrency with a sane floor (the STL may report 0).
  static unsigned defaultConcurrency() {
    unsigned N = std::thread::hardware_concurrency();
    return N ? N : 1;
  }

private:
  void workerLoop() {
    for (;;) {
      std::function<void()> Task;
      {
        std::unique_lock<std::mutex> Lock(Mu);
        Wake.wait(Lock, [this] { return Stopping || !Queue.empty(); });
        if (Stopping && Queue.empty())
          return;
        Task = std::move(Queue.front());
        Queue.pop();
      }
      Task();
      {
        std::lock_guard<std::mutex> Lock(Mu);
        if (--Outstanding == 0)
          Idle.notify_all();
      }
    }
  }

  std::mutex Mu;
  std::condition_variable Wake, Idle;
  std::queue<std::function<void()>> Queue;
  std::vector<std::thread> Threads;
  size_t Outstanding = 0;
  bool Stopping = false;
};

} // namespace slade

#endif // SLADE_SUPPORT_THREADPOOL_H
