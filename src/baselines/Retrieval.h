//===- Retrieval.h - LLM-analogue retrieval decompiler ----------*- C++ -*-===//
///
/// \file
/// Stand-in for the ChatGPT baseline (§VII-A2b, see DESIGN.md): a
/// nearest-neighbour decompiler that embeds the query assembly as a TF-IDF
/// bag of tokens and returns the C source of the most similar training
/// function. This reproduces the LLM failure signature the paper reports:
/// output that is plausible and frequently compilable, with mid-range edit
/// similarity, but often the wrong semantics.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_BASELINES_RETRIEVAL_H
#define SLADE_BASELINES_RETRIEVAL_H

#include <map>
#include <string>
#include <vector>

namespace slade {
namespace baselines {

class RetrievalDecompiler {
public:
  /// Indexes (assembly, C) training pairs.
  void add(const std::string &Asm, const std::string &CSource);
  void finalize(); ///< Computes IDF weights; call once after adds.

  /// Returns the C source of the nearest training assembly (empty if the
  /// index is empty).
  std::string decompile(const std::string &Asm) const;

  size_t size() const { return Entries.size(); }

private:
  struct Entry {
    std::map<std::string, float> Vec; ///< Normalized TF-IDF.
    std::string CSource;
  };
  std::vector<Entry> Entries;
  std::map<std::string, float> IDF;
  std::vector<std::map<std::string, int>> RawCounts;
  bool Finalized = false;

  std::map<std::string, float> vectorize(const std::string &Asm) const;
};

} // namespace baselines
} // namespace slade

#endif // SLADE_BASELINES_RETRIEVAL_H
