//===- RuleDecompiler.h - Ghidra-style rule-based decompiler ----*- C++ -*-===//
///
/// \file
/// The repository's stand-in for Ghidra (§VII-A2a): a pattern-matching
/// lifter from parsed assembly to verbose C. Registers become uVarN/param_N
/// variables, stack slots become local_N, loads go through explicit casts,
/// and control flow is re-structured from the CFG. Like Ghidra it never
/// invents external type declarations (§VII-D) and fails on instructions
/// outside its pattern tables (e.g. the O3 vectorizer's SIMD ops), which is
/// exactly the degradation mode the paper measures.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_BASELINES_RULEDECOMPILER_H
#define SLADE_BASELINES_RULEDECOMPILER_H

#include "asmx/Asm.h"
#include "support/Error.h"

#include <string>

namespace slade {
namespace baselines {

/// Lifts \p F to C source; fails when an instruction has no lifting rule
/// or the CFG cannot be structured without goto.
Expected<std::string> ruleDecompile(const asmx::AsmFunction &F,
                                    asmx::Dialect D);

} // namespace baselines
} // namespace slade

#endif // SLADE_BASELINES_RULEDECOMPILER_H
