//===- RuleDecompiler.cpp - Ghidra-style rule-based decompiler ---------------===//

#include "baselines/RuleDecompiler.h"

#include "support/StringUtils.h"

#include <cstring>
#include <map>
#include <set>

using namespace slade;
using namespace slade::asmx;
using namespace slade::baselines;

namespace {

/// A symbolic value during block-local forward substitution.
struct SymExpr {
  std::string Text;   ///< Parenthesized C expression.
  bool IsConst = false;
  int64_t ConstVal = 0;
  bool IsFloat = false;
  int Width = 4; ///< Bytes (4/8).
};

SymExpr constExpr(int64_t V, int Width = 4) {
  SymExpr E;
  E.Text = std::to_string(V);
  E.IsConst = true;
  E.ConstVal = V;
  E.Width = Width;
  return E;
}
SymExpr varExpr(const std::string &Name, int Width = 8,
                bool IsFloat = false) {
  SymExpr E;
  E.Text = Name;
  E.Width = Width;
  E.IsFloat = IsFloat;
  return E;
}
SymExpr binExpr(const SymExpr &A, const char *Op, const SymExpr &B,
                bool IsFloat = false) {
  SymExpr E;
  E.Text = "(" + A.Text + " " + Op + " " + B.Text + ")";
  E.IsFloat = IsFloat || A.IsFloat || B.IsFloat;
  E.Width = A.Width > B.Width ? A.Width : B.Width;
  return E;
}

/// A lifted basic block with structured-terminator metadata.
struct LBlock {
  std::vector<std::string> Stmts;
  enum Kind { Fall, Jump, Cond, Ret } Term = Fall;
  std::string CondText;
  int T0 = -1, T1 = -1; ///< Cond: T0 taken, T1 fallthrough. Jump: T0.
  std::string RetExpr;  ///< Empty for bare return / no return yet.
  bool RetIsFloat = false;
  int RetWidth = 4;
};

/// Pending comparison for condition-code consumers.
struct FlagState {
  bool Valid = false;
  SymExpr A, B;
  bool IsFloat = false;
  int Width = 4;
};

class Lifter {
public:
  Lifter(const AsmFunction &F, Dialect D) : F(F), D(D) {}

  Expected<std::string> run();

private:
  const AsmFunction &F;
  Dialect D;
  std::string Error;

  // Declarations discovered during lifting.
  std::map<int64_t, int> LocalWidth;     ///< frame offset -> bytes.
  std::map<int64_t, bool> LocalFloat;
  std::set<std::string> UsedRegVars;     ///< uVar_<reg> names.
  std::set<std::string> UsedGlobals;
  int MaxIntParam = 0, MaxFloatParam = 0;
  int TempCount = 0;
  std::vector<std::string> TempDecls;
  bool SawFloatReturn = false;
  int FloatRetWidth = 4;
  bool SawIntReturn = false;

  std::vector<LBlock> Blocks;
  std::vector<int> BlockStart; ///< Instruction index of each block.
  std::map<size_t, int> StartToBlock;

  void fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
  }

  // -- register classification ---------------------------------------------
  bool isArgReg(const std::string &Base, int *Index) {
    if (D == Dialect::X86) {
      static const char *Regs[6][4] = {
          {"rdi", "edi", "di", "dil"}, {"rsi", "esi", "si", "sil"},
          {"rdx", "edx", "dx", "dl"},  {"rcx", "ecx", "cx", "cl"},
          {"r8", "r8d", "r8w", "r8b"}, {"r9", "r9d", "r9w", "r9b"}};
      for (int I = 0; I < 6; ++I)
        for (int W = 0; W < 4; ++W)
          if (Base == Regs[I][W]) {
            *Index = I;
            return true;
          }
      return false;
    }
    if (Base.size() >= 2 && (Base[0] == 'w' || Base[0] == 'x')) {
      int N = std::atoi(Base.c_str() + 1);
      if (N >= 0 && N <= 5 && Base != "wzr" && Base != "xzr") {
        *Index = N;
        return true;
      }
    }
    return false;
  }

  /// Canonical 64-bit register key for the symbolic map.
  std::string regKey(const std::string &Name) {
    if (D == Dialect::Arm) {
      if (Name == "sp" || Name == "xzr" || Name == "wzr")
        return Name;
      return "x" + std::string(Name.c_str() + 1);
    }
    static const std::map<std::string, std::string> Sub = [] {
      std::map<std::string, std::string> M;
      const char *Q[] = {"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi",
                         "rdi", "r8",  "r9",  "r10", "r11", "r12", "r13",
                         "r14", "r15"};
      const char *DN[] = {"eax", "ecx", "edx", "ebx", "esp", "ebp",
                          "esi", "edi", "r8d", "r9d", "r10d", "r11d",
                          "r12d", "r13d", "r14d", "r15d"};
      const char *W[] = {"ax", "cx", "dx", "bx", "sp", "bp", "si", "di",
                         "r8w", "r9w", "r10w", "r11w", "r12w", "r13w",
                         "r14w", "r15w"};
      const char *B[] = {"al", "cl", "dl", "bl", "spl", "bpl", "sil",
                         "dil", "r8b", "r9b", "r10b", "r11b", "r12b",
                         "r13b", "r14b", "r15b"};
      for (int I = 0; I < 16; ++I) {
        M[Q[I]] = Q[I];
        M[DN[I]] = Q[I];
        M[W[I]] = Q[I];
        M[B[I]] = Q[I];
      }
      return M;
    }();
    auto It = Sub.find(Name);
    return It == Sub.end() ? Name : It->second;
  }

  int regWidth(const std::string &Name) {
    if (D == Dialect::Arm)
      return Name[0] == 'x' || Name == "sp" ? 8 : 4;
    if (Name.size() >= 3 && Name[0] == 'r')
      return Name.back() == 'd' || Name.back() == 'w' ||
                     Name.back() == 'b'
                 ? 4
                 : 8;
    if (Name[0] == 'e')
      return 4;
    if (Name[0] == 'r')
      return 8;
    return 4;
  }

  bool isFloatReg(const std::string &Name) {
    if (D == Dialect::X86)
      return startsWith(Name, "xmm");
    return Name.size() >= 2 &&
           (Name[0] == 's' || Name[0] == 'd' || Name[0] == 'q' ||
            Name[0] == 'v') &&
           Name != "sp" && std::isdigit(static_cast<unsigned char>(Name[1]));
  }

  /// Name for a register read before any write (an incoming value).
  SymExpr incomingValue(const std::string &Key) {
    int ArgIdx;
    if (isArgReg(Key, &ArgIdx)) {
      if (ArgIdx + 1 > MaxIntParam)
        MaxIntParam = ArgIdx + 1;
      return varExpr(formatString("param_%d", ArgIdx + 1), 8);
    }
    std::string V = "uVar_" + Key;
    UsedRegVars.insert(V);
    return varExpr(V, 8);
  }

  SymExpr incomingFloat(const std::string &Reg) {
    // xmm0..3 / s0..s3 are float parameters.
    int N = -1;
    if (D == Dialect::X86 && startsWith(Reg, "xmm"))
      N = std::atoi(Reg.c_str() + 3);
    else if (D == Dialect::Arm)
      N = std::atoi(Reg.c_str() + 1);
    if (N >= 0 && N <= 3) {
      if (N + 1 > MaxFloatParam)
        MaxFloatParam = N + 1;
      bool F64 = D == Dialect::X86 ? true : Reg[0] == 'd';
      (void)F64;
      return varExpr(formatString("fparam_%d", N + 1), 4, true);
    }
    std::string V = "uVar_" + Reg;
    UsedRegVars.insert(V);
    return varExpr(V, 4, true);
  }

  std::string localName(int64_t Off, int Width, bool IsFloat) {
    int64_t Key = Off;
    int &W = LocalWidth[Key];
    if (Width > W)
      W = Width;
    if (IsFloat)
      LocalFloat[Key] = true;
    return formatString("local_%lld", static_cast<long long>(Key < 0 ? -Key
                                                                     : Key));
  }

  std::string freshTemp(bool IsFloat, int Width) {
    ++TempCount;
    std::string Name = formatString("%cVar%d", IsFloat ? 'f' : 'i',
                                    TempCount);
    const char *Ty = IsFloat ? (Width == 8 ? "double" : "float")
                             : (Width == 8 ? "long" : "int");
    TempDecls.push_back(std::string(Ty) + " " + Name + ";");
    return Name;
  }

  // -- per-block state -------------------------------------------------------
  std::map<std::string, SymExpr> Regs;   ///< By 64-bit key.
  std::map<std::string, SymExpr> FRegs;  ///< Float/vector registers.
  std::set<std::string> WrittenRegs;
  FlagState Flags;
  LBlock *Cur = nullptr;

  SymExpr readReg(const std::string &Name) {
    std::string Key = regKey(Name);
    if (Key == "xzr" || Key == "wzr")
      return constExpr(0, regWidth(Name));
    auto It = Regs.find(Key);
    if (It != Regs.end())
      return It->second;
    SymExpr E = incomingValue(Key);
    Regs[Key] = E;
    return E;
  }
  void writeReg(const std::string &Name, SymExpr E) {
    Regs[regKey(Name)] = std::move(E);
    WrittenRegs.insert(regKey(Name));
  }
  SymExpr readFReg(const std::string &Name) {
    auto It = FRegs.find(Name);
    if (It != FRegs.end())
      return It->second;
    SymExpr E = incomingFloat(Name);
    FRegs[Name] = E;
    return E;
  }
  void writeFReg(const std::string &Name, SymExpr E) {
    FRegs[Name] = std::move(E);
  }

  /// Memory operand -> C lvalue text. Width/float define the cast.
  Expected<std::string> memLValue(const Operand &Op, int Width,
                                  bool IsFloat) {
    const char *Ty = IsFloat ? (Width == 8 ? "double" : "float")
                     : Width == 8
                         ? "long"
                         : (Width == 4 ? "int"
                                       : (Width == 2 ? "short" : "char"));
    if (D == Dialect::X86) {
      if (!Op.SymName.empty()) {
        UsedGlobals.insert(Op.SymName);
        return Op.SymName;
      }
      if (Op.BaseReg == "rbp")
        return localName(Op.Disp, Width, IsFloat);
      SymExpr Base = readReg(Op.BaseReg);
      std::string Addr = Op.Disp == 0
                             ? Base.Text
                             : formatString("(%s + %lld)", Base.Text.c_str(),
                                            static_cast<long long>(Op.Disp));
      return formatString("*(%s *)%s", Ty, Addr.c_str());
    }
    // ARM.
    if (Op.BaseReg == "sp")
      return localName(Op.Disp, Width, IsFloat);
    SymExpr Base = readReg(Op.BaseReg);
    // The adrp/add:lo12 pattern leaves "&sym" in the register.
    if (startsWith(Base.Text, "&")) {
      std::string Sym = Base.Text.substr(1);
      UsedGlobals.insert(Sym);
      return Sym;
    }
    std::string Addr = Op.Disp == 0
                           ? Base.Text
                           : formatString("(%s + %lld)", Base.Text.c_str(),
                                          static_cast<long long>(Op.Disp));
    return formatString("*(%s *)%s", Ty, Addr.c_str());
  }

  void emitStmt(const std::string &S) { Cur->Stmts.push_back(S); }

  /// Word-boundary occurrence test: does \p Text mention variable \p V?
  static bool mentionsVar(const std::string &Text, const std::string &V) {
    size_t Pos = 0;
    while ((Pos = Text.find(V, Pos)) != std::string::npos) {
      bool LeftOk = Pos == 0 || (!std::isalnum(static_cast<unsigned char>(
                                     Text[Pos - 1])) &&
                                 Text[Pos - 1] != '_');
      size_t End = Pos + V.size();
      bool RightOk = End >= Text.size() ||
                     (!std::isalnum(static_cast<unsigned char>(Text[End])) &&
                      Text[End] != '_');
      if (LeftOk && RightOk)
        return true;
      ++Pos;
    }
    return false;
  }

  /// Pins a pending symbolic expression into a fresh temporary.
  void materializeExpr(SymExpr &E) {
    if (E.IsConst)
      return;
    // A bare identifier needs no pinning unless it is the assigned var,
    // which callers check via mentionsVar.
    std::string T = freshTemp(E.IsFloat, E.Width);
    emitStmt(T + " = " + E.Text + ";");
    E = varExpr(T, E.Width, E.IsFloat);
  }

  /// Before assigning to \p Name, pin every pending expression (register
  /// values and comparison flags) that mentions it.
  void materializeVarRefs(const std::string &Name) {
    for (auto &[Key, E] : Regs)
      if (mentionsVar(E.Text, Name))
        materializeExpr(E);
    for (auto &[Key, E] : FRegs)
      if (mentionsVar(E.Text, Name))
        materializeExpr(E);
    if (Flags.Valid) {
      if (mentionsVar(Flags.A.Text, Name))
        materializeExpr(Flags.A);
      if (mentionsVar(Flags.B.Text, Name))
        materializeExpr(Flags.B);
    }
  }

  /// Before a store through a pointer, pin every pending memory read (it
  /// might alias the stored-to location).
  void materializeMemReads() {
    for (auto &[Key, E] : Regs)
      if (E.Text.find("*(") != std::string::npos)
        materializeExpr(E);
    for (auto &[Key, E] : FRegs)
      if (E.Text.find("*(") != std::string::npos)
        materializeExpr(E);
    if (Flags.Valid) {
      if (Flags.A.Text.find("*(") != std::string::npos)
        materializeExpr(Flags.A);
      if (Flags.B.Text.find("*(") != std::string::npos)
        materializeExpr(Flags.B);
    }
  }

  /// Shared guard for any `LV = ...;` statement the lifter emits.
  void preAssign(const std::string &LV) {
    if (startsWith(LV, "*("))
      materializeMemReads();
    else
      materializeVarRefs(LV);
  }

  std::string condText(const std::string &CC);
  void liftX86(const AsmInstr &I, const AsmInstr *Next, bool *Fused);
  void liftArm(const AsmInstr &I, const AsmInstr *Next, bool *Fused);
  void flushBlockEnd();
  void splitBlocks();
  int blockOfLabel(const std::string &L) {
    auto It = F.Labels.find(L);
    if (It == F.Labels.end()) {
      fail("jump to unknown label " + L);
      return 0;
    }
    auto BIt = StartToBlock.find(It->second);
    if (BIt == StartToBlock.end()) {
      fail("label does not start a block: " + L);
      return 0;
    }
    return BIt->second;
  }

  // -- structuring ------------------------------------------------------------
  struct LoopCtx {
    int Header = -1;
    int Exit = -1;
    int MaxBlock = -1;
  };
  std::string structure();
  bool emitRegion(int Cur, int Stop, const LoopCtx &Loop, int Depth,
                  std::string &Out, int Indent);
  bool emitLoopHeaderAndBody(int Header, const LoopCtx &Loop, int Depth,
                             std::string &Out, int Indent);
  int findJoin(int A, int B, const LoopCtx &Loop);
  void reachSet(int From, const LoopCtx &Loop, std::set<int> &Out);
  bool isLoopHeader(int B, int *MaxBack);
  std::string signature();
};

//===----------------------------------------------------------------------===//
// Block splitting
//===----------------------------------------------------------------------===//

bool isJumpMn(const std::string &M, Dialect D) {
  if (D == Dialect::X86)
    return M == "jmp" || (M.size() >= 2 && M[0] == 'j');
  return M == "b" || startsWith(M, "b.") || M == "ret";
}

void Lifter::splitBlocks() {
  std::set<size_t> Starts = {0};
  for (const auto &[Label, Index] : F.Labels)
    Starts.insert(Index);
  for (size_t I = 0; I < F.Instrs.size(); ++I) {
    const std::string &M = F.Instrs[I].Mnemonic;
    bool IsCond = (D == Dialect::X86 && M.size() >= 2 && M[0] == 'j' &&
                   M != "jmp") ||
                  (D == Dialect::Arm && startsWith(M, "b."));
    bool IsUncond = (D == Dialect::X86 && (M == "jmp" || M == "ret")) ||
                    (D == Dialect::Arm && (M == "b" || M == "ret"));
    if (IsCond) {
      // The backend pairs every jcc with a jmp; keep the pair together.
      if (I + 2 < F.Instrs.size())
        Starts.insert(I + 2);
      ++I;
      continue;
    }
    if (IsUncond && I + 1 < F.Instrs.size())
      Starts.insert(I + 1);
  }
  for (size_t S : Starts) {
    if (S <= F.Instrs.size()) {
      StartToBlock[S] = static_cast<int>(BlockStart.size());
      BlockStart.push_back(static_cast<int>(S));
    }
  }
}

//===----------------------------------------------------------------------===//
// Conditions
//===----------------------------------------------------------------------===//

std::string Lifter::condText(const std::string &CC) {
  if (!Flags.Valid) {
    fail("condition consumed without a comparison");
    return "0";
  }
  std::string A = Flags.A.Text, B = Flags.B.Text;
  bool Unsigned = false;
  const char *Op = "==";
  auto set = [&](const char *O, bool U = false) {
    Op = O;
    Unsigned = U;
  };
  if (D == Dialect::X86) {
    if (CC == "e")
      set("==");
    else if (CC == "ne")
      set("!=");
    else if (CC == "l")
      set("<");
    else if (CC == "le")
      set("<=");
    else if (CC == "g")
      set(">");
    else if (CC == "ge")
      set(">=");
    else if (CC == "b")
      set("<", true);
    else if (CC == "be")
      set("<=", true);
    else if (CC == "a")
      set(">", true);
    else if (CC == "ae")
      set(">=", true);
    else {
      fail("unsupported condition code " + CC);
      return "0";
    }
  } else {
    if (CC == "eq")
      set("==");
    else if (CC == "ne")
      set("!=");
    else if (CC == "lt")
      set("<");
    else if (CC == "le")
      set("<=");
    else if (CC == "gt")
      set(">");
    else if (CC == "ge")
      set(">=");
    else if (CC == "cc")
      set("<", true);
    else if (CC == "ls")
      set("<=", true);
    else if (CC == "hi")
      set(">", true);
    else if (CC == "cs")
      set(">=", true);
    else {
      fail("unsupported condition code " + CC);
      return "0";
    }
  }
  if (Unsigned && !Flags.IsFloat) {
    const char *Cast = Flags.Width == 8 ? "(unsigned long)" : "(unsigned int)";
    A = std::string(Cast) + A;
    B = std::string(Cast) + B;
  }
  return "(" + A + " " + Op + " " + B + ")";
}

//===----------------------------------------------------------------------===//
// x86 lifting rules
//===----------------------------------------------------------------------===//

void Lifter::liftX86(const AsmInstr &I, const AsmInstr *Next, bool *Fused) {
  const std::string &M = I.Mnemonic;
  *Fused = false;

  auto widthOf = [&](char Suf) {
    return Suf == 'q' ? 8 : Suf == 'l' ? 4 : Suf == 'w' ? 2 : 1;
  };
  auto readOperand = [&](const Operand &Op, int Width) -> SymExpr {
    switch (Op.K) {
    case Operand::Reg:
      return readReg(Op.RegName);
    case Operand::Imm:
      return constExpr(Op.ImmValue, Width);
    case Operand::Mem: {
      auto LV = memLValue(Op, Width, false);
      if (!LV)
        return constExpr(0);
      SymExpr E = varExpr(*LV, Width);
      return E;
    }
    default:
      fail("unexpected operand");
      return constExpr(0);
    }
  };
  auto writeOperand = [&](const Operand &Op, const SymExpr &V, int Width) {
    if (Op.K == Operand::Reg) {
      writeReg(Op.RegName, V);
      return;
    }
    auto LV = memLValue(Op, Width, V.IsFloat);
    if (LV) {
      preAssign(*LV);
      emitStmt(*LV + " = " + V.Text + ";");
    }
  };

  // Frame plumbing to ignore.
  if (M == "endbr64" || M == "nop")
    return;
  if (M == "pushq" || M == "popq") {
    if (I.Ops[0].K == Operand::Reg &&
        (I.Ops[0].RegName == "rbp" || I.Ops[0].RegName == "rbx"))
      return; // Prologue save/restore.
    fail("unsupported stack operation");
    return;
  }
  if (M == "leave")
    return;
  if (M == "movq" && I.Ops.size() == 2 && I.Ops[0].K == Operand::Reg &&
      I.Ops[0].RegName == "rsp" && I.Ops[1].K == Operand::Reg &&
      I.Ops[1].RegName == "rbp")
    return;
  if (M == "subq" && I.Ops[1].K == Operand::Reg &&
      I.Ops[1].RegName == "rsp")
    return;

  if (M == "movabsq") {
    writeOperand(I.Ops[1], constExpr(I.Ops[0].ImmValue, 8), 8);
    return;
  }
  if ((M == "movd" || M == "movq") && I.Ops.size() == 2 &&
      ((I.Ops[0].K == Operand::Reg && isFloatReg(I.Ops[0].RegName)) ||
       (I.Ops[1].K == Operand::Reg && isFloatReg(I.Ops[1].RegName)))) {
    // GPR <-> xmm bit moves: reconstruct float constants.
    int W = M == "movd" ? 4 : 8;
    bool DstX = I.Ops[1].K == Operand::Reg && isFloatReg(I.Ops[1].RegName);
    if (DstX) {
      SymExpr Src = readOperand(I.Ops[0], W);
      if (Src.IsConst) {
        SymExpr FE;
        if (W == 4) {
          float FV;
          uint32_t Bits = static_cast<uint32_t>(Src.ConstVal);
          std::memcpy(&FV, &Bits, 4);
          FE = varExpr(formatString("%gf", FV), 4, true);
        } else {
          double DV;
          uint64_t Bits = static_cast<uint64_t>(Src.ConstVal);
          std::memcpy(&DV, &Bits, 8);
          FE = varExpr(formatString("%g", DV), 8, true);
          if (FE.Text.find('.') == std::string::npos &&
              FE.Text.find('e') == std::string::npos)
            FE.Text += ".0";
        }
        writeFReg(I.Ops[1].RegName, FE);
        return;
      }
      fail("movd from non-constant");
      return;
    }
    fail("xmm to gpr move unsupported");
    return;
  }
  if (M == "movb" || M == "movw" || M == "movl" || M == "movq") {
    int W = widthOf(M[3]);
    writeOperand(I.Ops[1], readOperand(I.Ops[0], W), W);
    return;
  }
  if (M == "movzbl" || M == "movsbl" || M == "movzwl" || M == "movswl") {
    int SrcW = M[4] == 'b' ? 1 : 2;
    SymExpr Src;
    if (I.Ops[0].K == Operand::Mem) {
      auto LV = memLValue(I.Ops[0], SrcW, false);
      if (!LV)
        return;
      Src = varExpr(*LV, 4);
    } else {
      Src = readReg(I.Ops[0].RegName);
    }
    if (M[3] == 'z' && SrcW == 1)
      Src = varExpr("(unsigned char)" + Src.Text, 4);
    writeReg(I.Ops[1].RegName, Src);
    return;
  }
  if (M == "movslq") {
    SymExpr Src = I.Ops[0].K == Operand::Mem
                      ? readOperand(I.Ops[0], 4)
                      : readReg(I.Ops[0].RegName);
    SymExpr E = varExpr("(long)" + Src.Text, 8);
    E.IsConst = Src.IsConst;
    E.ConstVal = Src.ConstVal;
    writeReg(I.Ops[1].RegName, E);
    return;
  }

  auto alu = [&](const char *Op, size_t BaseLen) {
    int W = widthOf(M[BaseLen]);
    SymExpr B = readOperand(I.Ops[0], W);
    SymExpr A = readOperand(I.Ops[1], W);
    if (I.Ops[1].K == Operand::Reg) {
      writeReg(I.Ops[1].RegName, binExpr(A, Op, B));
    } else {
      auto LV = memLValue(I.Ops[1], W, false);
      if (LV) {
        preAssign(*LV);
        emitStmt(*LV + " = " + binExpr(A, Op, B).Text + ";");
      }
    }
  };
  if (startsWith(M, "add") && M.size() == 4)
    return alu("+", 3);
  if (startsWith(M, "sub") && M.size() == 4)
    return alu("-", 3);
  if (startsWith(M, "imul") && M.size() == 5)
    return alu("*", 4);
  if (startsWith(M, "and") && M.size() == 4)
    return alu("&", 3);
  if ((M == "orl" || M == "orq"))
    return alu("|", 2);
  if (startsWith(M, "xor") && M.size() == 4) {
    // xorl %r, %r is the zero idiom.
    if (I.Ops[0].K == Operand::Reg && I.Ops[1].K == Operand::Reg &&
        regKey(I.Ops[0].RegName) == regKey(I.Ops[1].RegName)) {
      writeReg(I.Ops[1].RegName, constExpr(0, widthOf(M[3])));
      return;
    }
    return alu("^", 3);
  }
  if ((startsWith(M, "sal") || startsWith(M, "sar") ||
       startsWith(M, "shr")) &&
      M.size() == 4) {
    int W = widthOf(M[3]);
    SymExpr Count = I.Ops.size() == 2 ? readOperand(I.Ops[0], 1)
                                      : constExpr(1);
    const Operand &DstOp = I.Ops.size() == 2 ? I.Ops[1] : I.Ops[0];
    SymExpr A = readOperand(DstOp, W);
    SymExpr R;
    if (M[1] == 'a' && M[2] == 'l')
      R = binExpr(A, "<<", Count);
    else if (M[1] == 'a')
      R = binExpr(A, ">>", Count);
    else {
      SymExpr AU = varExpr(std::string(W == 8 ? "(unsigned long)"
                                              : "(unsigned int)") +
                               A.Text,
                           W);
      R = binExpr(AU, ">>", Count);
    }
    writeOperand(DstOp, R, W);
    return;
  }
  if (startsWith(M, "neg") && M.size() == 4) {
    int W = widthOf(M[3]);
    SymExpr A = readOperand(I.Ops[0], W);
    SymExpr R = varExpr("-" + A.Text, W);
    writeOperand(I.Ops[0], R, W);
    return;
  }
  if (startsWith(M, "not") && M.size() == 4) {
    int W = widthOf(M[3]);
    SymExpr A = readOperand(I.Ops[0], W);
    writeOperand(I.Ops[0], varExpr("~" + A.Text, W), W);
    return;
  }
  if (M == "cltd" || M == "cqto")
    return; // Folded into the following idiv.
  if (startsWith(M, "idiv") || (startsWith(M, "div") && M.size() == 4)) {
    bool Signed = M[0] == 'i';
    int W = widthOf(M[Signed ? 4 : 3]);
    SymExpr A = readReg(W == 8 ? "rax" : "eax");
    SymExpr B = readOperand(I.Ops[0], W);
    if (!Signed) {
      const char *Cast = W == 8 ? "(unsigned long)" : "(unsigned int)";
      A = varExpr(std::string(Cast) + A.Text, W);
      B = varExpr(std::string(Cast) + B.Text, W);
    }
    writeReg(W == 8 ? "rax" : "eax", binExpr(A, "/", B));
    writeReg(W == 8 ? "rdx" : "edx", binExpr(A, "%", B));
    return;
  }
  if (startsWith(M, "cmp") && M.size() == 4) {
    int W = widthOf(M[3]);
    Flags.Valid = true;
    Flags.IsFloat = false;
    Flags.Width = W;
    Flags.B = readOperand(I.Ops[0], W);
    Flags.A = readOperand(I.Ops[1], W);
    return;
  }
  if (startsWith(M, "test") && M.size() == 5) {
    int W = widthOf(M[4]);
    SymExpr A = readOperand(I.Ops[1], W);
    Flags.Valid = true;
    Flags.IsFloat = false;
    Flags.Width = W;
    if (I.Ops[0].K == Operand::Reg && I.Ops[1].K == Operand::Reg &&
        regKey(I.Ops[0].RegName) == regKey(I.Ops[1].RegName)) {
      Flags.A = A;
      Flags.B = constExpr(0, W);
    } else {
      Flags.A = binExpr(readOperand(I.Ops[0], W), "&", A);
      Flags.B = constExpr(0, W);
    }
    return;
  }
  if (startsWith(M, "set")) {
    std::string C = condText(M.substr(3));
    writeReg(I.Ops[0].RegName, varExpr(C, 4));
    return;
  }
  if (M == "jmp") {
    Cur->Term = LBlock::Jump;
    Cur->T0 = blockOfLabel(I.Ops[0].LabelName);
    return;
  }
  if (M[0] == 'j') {
    Cur->Term = LBlock::Cond;
    Cur->CondText = condText(M.substr(1));
    Cur->T0 = blockOfLabel(I.Ops[0].LabelName);
    // The backend always pairs jcc with an unconditional jmp.
    if (Next && Next->Mnemonic == "jmp") {
      Cur->T1 = blockOfLabel(Next->Ops[0].LabelName);
      *Fused = true;
    } else {
      fail("conditional jump without a paired jmp");
    }
    return;
  }
  if (M == "call") {
    std::string Callee = I.Ops[0].LabelName;
    // Arguments: consecutive arg registers written in this block.
    static const char *ArgKeys[] = {"rdi", "rsi", "rdx", "rcx", "r8", "r9"};
    std::vector<std::string> Args;
    for (const char *K : ArgKeys) {
      if (!WrittenRegs.count(K))
        break;
      Args.push_back(readReg(K).Text);
    }
    materializeMemReads(); // The callee may write memory.
    std::string T = freshTemp(false, 8);
    emitStmt(T + " = " + Callee + "(" + joinStrings(Args, ", ") + ");");
    writeReg("rax", varExpr(T, 8));
    // Callee may clobber arg registers; forget them.
    for (const char *K : ArgKeys) {
      Regs.erase(K);
      WrittenRegs.erase(K);
    }
    return;
  }
  if (M == "ret") {
    Cur->Term = LBlock::Ret;
    if (FRegs.count("xmm0")) {
      SymExpr E = FRegs["xmm0"];
      materializeExpr(E); // Epilogue restores must not go stale.
      Cur->RetExpr = E.Text;
      Cur->RetIsFloat = true;
      Cur->RetWidth = FRegs["xmm0"].Width;
      SawFloatReturn = true;
      FloatRetWidth = Cur->RetWidth;
    } else if (Regs.count("rax")) {
      SymExpr E = Regs["rax"];
      materializeExpr(E);
      Cur->RetExpr = E.Text;
      SawIntReturn = true;
    }
    return;
  }
  if (M == "leaq") {
    fail("lea lifting is not supported");
    return;
  }

  // Scalar SSE.
  auto fwidth = [&](const std::string &Mn) { return endsWith(Mn, "sd") ? 8
                                                                        : 4; };
  if (M == "movss" || M == "movsd") {
    int W = fwidth(M);
    if (I.Ops[1].K == Operand::Reg && isFloatReg(I.Ops[1].RegName)) {
      SymExpr Src;
      if (I.Ops[0].K == Operand::Reg && isFloatReg(I.Ops[0].RegName))
        Src = readFReg(I.Ops[0].RegName);
      else {
        auto LV = memLValue(I.Ops[0], W, true);
        if (!LV)
          return;
        Src = varExpr(*LV, W, true);
      }
      writeFReg(I.Ops[1].RegName, Src);
    } else {
      auto LV = memLValue(I.Ops[1], W, true);
      if (LV) {
        preAssign(*LV);
        emitStmt(*LV + " = " + readFReg(I.Ops[0].RegName).Text + ";");
      }
    }
    return;
  }
  auto fbin = [&](const char *Op) {
    int W = fwidth(M);
    SymExpr B;
    if (I.Ops[0].K == Operand::Reg && isFloatReg(I.Ops[0].RegName))
      B = readFReg(I.Ops[0].RegName);
    else {
      auto LV = memLValue(I.Ops[0], W, true);
      if (!LV)
        return;
      B = varExpr(*LV, W, true);
    }
    SymExpr A = readFReg(I.Ops[1].RegName);
    SymExpr R = binExpr(A, Op, B, true);
    R.Width = W;
    writeFReg(I.Ops[1].RegName, R);
  };
  if (M == "addss" || M == "addsd")
    return fbin("+");
  if (M == "subss" || M == "subsd")
    return fbin("-");
  if (M == "mulss" || M == "mulsd")
    return fbin("*");
  if (M == "divss" || M == "divsd")
    return fbin("/");
  if (M == "comiss" || M == "comisd") {
    Flags.Valid = true;
    Flags.IsFloat = true;
    Flags.Width = M == "comiss" ? 4 : 8;
    Flags.B = readFReg(I.Ops[0].RegName);
    Flags.A = readFReg(I.Ops[1].RegName);
    return;
  }
  if (startsWith(M, "cvtsi2")) {
    bool ToF32 = M[6] == 's' && M[7] == 's';
    SymExpr Src = readOperand(I.Ops[0], M.back() == 'q' ? 8 : 4);
    SymExpr R = varExpr(std::string(ToF32 ? "(float)" : "(double)") +
                            Src.Text,
                        ToF32 ? 4 : 8, true);
    writeFReg(I.Ops[1].RegName, R);
    return;
  }
  if (startsWith(M, "cvttss2si") || startsWith(M, "cvttsd2si")) {
    SymExpr Src = readFReg(I.Ops[0].RegName);
    int W = M.back() == 'q' ? 8 : 4;
    writeReg(I.Ops[1].RegName,
             varExpr(std::string(W == 8 ? "(long)" : "(int)") + Src.Text,
                     W));
    return;
  }
  if (M == "cvtss2sd") {
    SymExpr Src = readFReg(I.Ops[0].RegName);
    SymExpr R = varExpr("(double)" + Src.Text, 8, true);
    writeFReg(I.Ops[1].RegName, R);
    return;
  }
  if (M == "cvtsd2ss") {
    SymExpr Src = readFReg(I.Ops[0].RegName);
    SymExpr R = varExpr("(float)" + Src.Text, 4, true);
    writeFReg(I.Ops[1].RegName, R);
    return;
  }

  // SIMD: no lifting rules (like pre-vector Ghidra rule sets).
  fail("no lifting rule for instruction '" + M + "'");
}

//===----------------------------------------------------------------------===//
// ARM lifting rules
//===----------------------------------------------------------------------===//

void Lifter::liftArm(const AsmInstr &I, const AsmInstr *Next, bool *Fused) {
  const std::string &M = I.Mnemonic;
  *Fused = false;

  auto readOperand = [&](const Operand &Op, int Width) -> SymExpr {
    if (Op.K == Operand::Reg)
      return readReg(Op.RegName);
    if (Op.K == Operand::Imm)
      return constExpr(Op.ImmValue, Width);
    fail("unexpected operand");
    return constExpr(0);
  };

  if (M == "nop")
    return;
  if (M == "stp" || M == "ldp")
    return; // Frame save/restore of x29/x30 (and writeback).
  if (M == "mov" && I.Ops[0].K == Operand::Reg &&
      I.Ops[0].RegName == "x29")
    return;

  if (M == "mov") {
    int W = regWidth(I.Ops[0].RegName);
    writeReg(I.Ops[0].RegName, readOperand(I.Ops[1], W));
    return;
  }
  if (M == "movz") {
    writeReg(I.Ops[0].RegName,
             constExpr(I.Ops[1].ImmValue, regWidth(I.Ops[0].RegName)));
    return;
  }
  if (M == "movk") {
    SymExpr Old = readReg(I.Ops[0].RegName);
    int64_t Shift = I.Ops.size() > 2 ? I.Ops[2].ImmValue : 0;
    if (Old.IsConst) {
      uint64_t U = static_cast<uint64_t>(Old.ConstVal);
      uint64_t Mask = 0xffffULL << Shift;
      U = (U & ~Mask) |
          ((static_cast<uint64_t>(I.Ops[1].ImmValue) & 0xffff) << Shift);
      writeReg(I.Ops[0].RegName,
               constExpr(static_cast<int64_t>(U),
                         regWidth(I.Ops[0].RegName)));
      return;
    }
    fail("movk over non-constant");
    return;
  }
  if (M == "adrp") {
    SymExpr E = varExpr("&" + I.Ops[1].LabelName, 8);
    writeReg(I.Ops[0].RegName, E);
    return;
  }
  if (M == "add" && I.Ops.size() == 3 && I.Ops[2].K == Operand::Lo12) {
    // Completes the adrp pair; the register already holds &sym.
    writeReg(I.Ops[0].RegName, readReg(I.Ops[1].RegName));
    return;
  }
  if (M == "add" && I.Ops[1].K == Operand::Reg &&
      I.Ops[1].RegName == "sp") {
    fail("address of stack slot is not supported");
    return;
  }

  auto alu3 = [&](const char *Op) {
    int W = regWidth(I.Ops[0].RegName);
    SymExpr A = readOperand(I.Ops[1], W);
    SymExpr B = readOperand(I.Ops[2], W);
    writeReg(I.Ops[0].RegName, binExpr(A, Op, B));
  };
  if (M == "add" && !isFloatReg(I.Ops[0].RegName))
    return alu3("+");
  if (M == "sub" && !isFloatReg(I.Ops[0].RegName))
    return alu3("-");
  if (M == "mul" && !isFloatReg(I.Ops[0].RegName))
    return alu3("*");
  if (M == "and")
    return alu3("&");
  if (M == "orr")
    return alu3("|");
  if (M == "eor")
    return alu3("^");
  if (M == "lsl")
    return alu3("<<");
  if (M == "asr")
    return alu3(">>");
  if (M == "lsr") {
    int W = regWidth(I.Ops[0].RegName);
    SymExpr A = readOperand(I.Ops[1], W);
    SymExpr AU = varExpr(std::string(W == 8 ? "(unsigned long)"
                                            : "(unsigned int)") +
                             A.Text,
                         W);
    writeReg(I.Ops[0].RegName, binExpr(AU, ">>", readOperand(I.Ops[2], W)));
    return;
  }
  if (M == "sdiv" || M == "udiv") {
    int W = regWidth(I.Ops[0].RegName);
    SymExpr A = readOperand(I.Ops[1], W);
    SymExpr B = readOperand(I.Ops[2], W);
    if (M == "udiv") {
      const char *Cast = W == 8 ? "(unsigned long)" : "(unsigned int)";
      A = varExpr(std::string(Cast) + A.Text, W);
      B = varExpr(std::string(Cast) + B.Text, W);
    }
    writeReg(I.Ops[0].RegName, binExpr(A, "/", B));
    return;
  }
  if (M == "msub") {
    int W = regWidth(I.Ops[0].RegName);
    SymExpr Q = readOperand(I.Ops[1], W);
    SymExpr B = readOperand(I.Ops[2], W);
    SymExpr A = readOperand(I.Ops[3], W);
    writeReg(I.Ops[0].RegName,
             varExpr("(" + A.Text + " - " + Q.Text + " * " + B.Text + ")",
                     W));
    return;
  }
  if (M == "neg") {
    int W = regWidth(I.Ops[0].RegName);
    writeReg(I.Ops[0].RegName,
             varExpr("-" + readOperand(I.Ops[1], W).Text, W));
    return;
  }
  if (M == "mvn") {
    int W = regWidth(I.Ops[0].RegName);
    writeReg(I.Ops[0].RegName,
             varExpr("~" + readOperand(I.Ops[1], W).Text, W));
    return;
  }
  if (M == "sxtw") {
    SymExpr Src = readReg(I.Ops[1].RegName);
    SymExpr E = varExpr("(long)" + Src.Text, 8);
    E.IsConst = Src.IsConst;
    E.ConstVal = Src.ConstVal;
    writeReg(I.Ops[0].RegName, E);
    return;
  }
  if (M == "uxtw") {
    SymExpr Src = readReg(I.Ops[1].RegName);
    writeReg(I.Ops[0].RegName,
             varExpr("(long)(unsigned int)" + Src.Text, 8));
    return;
  }

  auto memWidth = [&](const std::string &Mn, const std::string &Reg) {
    if (endsWith(Mn, "b"))
      return 1;
    if (endsWith(Mn, "h") && Mn != "b.h")
      return 2;
    return regWidth(Reg);
  };
  if (M == "ldr" || M == "ldrb" || M == "ldrh" || M == "ldrsb" ||
      M == "ldrsh") {
    const std::string &Dst = I.Ops[0].RegName;
    if (isFloatReg(Dst)) {
      if (Dst[0] == 'q') {
        fail("no lifting rule for vector load");
        return;
      }
      int W = Dst[0] == 'd' ? 8 : 4;
      auto LV = memLValue(I.Ops[1], W, true);
      if (LV)
        writeFReg(Dst, varExpr(*LV, W, true));
      return;
    }
    int W = memWidth(M, Dst);
    auto LV = memLValue(I.Ops[1], W, false);
    if (!LV)
      return;
    SymExpr E = varExpr(*LV, W);
    if (M == "ldrb")
      E = varExpr("(unsigned char)" + E.Text, 4);
    writeReg(Dst, E);
    return;
  }
  if (M == "str" || M == "strb" || M == "strh") {
    const std::string &Src = I.Ops[0].RegName;
    if (isFloatReg(Src)) {
      if (Src[0] == 'q') {
        fail("no lifting rule for vector store");
        return;
      }
      int W = Src[0] == 'd' ? 8 : 4;
      auto LV = memLValue(I.Ops[1], W, true);
      if (LV) {
        preAssign(*LV);
        emitStmt(*LV + " = " + readFReg(Src).Text + ";");
      }
      return;
    }
    int W = memWidth(M, Src);
    auto LV = memLValue(I.Ops[1], W, false);
    if (LV) {
      preAssign(*LV);
      emitStmt(*LV + " = " + readReg(Src).Text + ";");
    }
    return;
  }

  if (M == "cmp") {
    int W = regWidth(I.Ops[0].RegName);
    Flags.Valid = true;
    Flags.IsFloat = false;
    Flags.Width = W;
    Flags.A = readReg(I.Ops[0].RegName);
    Flags.B = readOperand(I.Ops[1], W);
    return;
  }
  if (M == "cset") {
    writeReg(I.Ops[0].RegName, varExpr(condText(I.Ops[1].LabelName), 4));
    return;
  }
  if (M == "b") {
    Cur->Term = LBlock::Jump;
    Cur->T0 = blockOfLabel(I.Ops[0].LabelName);
    return;
  }
  if (startsWith(M, "b.")) {
    Cur->Term = LBlock::Cond;
    Cur->CondText = condText(M.substr(2));
    Cur->T0 = blockOfLabel(I.Ops[0].LabelName);
    if (Next && Next->Mnemonic == "b") {
      Cur->T1 = blockOfLabel(Next->Ops[0].LabelName);
      *Fused = true;
    } else {
      fail("conditional branch without a paired b");
    }
    return;
  }
  if (M == "bl") {
    std::string Callee = I.Ops[0].LabelName;
    std::vector<std::string> Args;
    for (int A = 0; A < 6; ++A) {
      std::string Key = formatString("x%d", A);
      if (!WrittenRegs.count(Key))
        break;
      Args.push_back(readReg(Key).Text);
    }
    materializeMemReads(); // The callee may write memory.
    std::string T = freshTemp(false, 8);
    emitStmt(T + " = " + Callee + "(" + joinStrings(Args, ", ") + ");");
    writeReg("x0", varExpr(T, 8));
    for (int A = 1; A < 6; ++A) {
      Regs.erase(formatString("x%d", A));
      WrittenRegs.erase(formatString("x%d", A));
    }
    return;
  }
  if (M == "ret") {
    Cur->Term = LBlock::Ret;
    if (FRegs.count("s0") || FRegs.count("d0")) {
      SymExpr E = FRegs.count("s0") ? FRegs["s0"] : FRegs["d0"];
      int W = E.Width;
      materializeExpr(E); // Epilogue restores must not go stale.
      Cur->RetExpr = E.Text;
      Cur->RetIsFloat = true;
      Cur->RetWidth = W;
      SawFloatReturn = true;
      FloatRetWidth = W;
    } else if (Regs.count("x0")) {
      SymExpr E = Regs["x0"];
      materializeExpr(E);
      Cur->RetExpr = E.Text;
      SawIntReturn = true;
    }
    return;
  }

  // Scalar float.
  auto fbin3 = [&](const char *Op) {
    int W = I.Ops[0].RegName[0] == 'd' ? 8 : 4;
    SymExpr A = readFReg(I.Ops[1].RegName);
    SymExpr B = readFReg(I.Ops[2].RegName);
    SymExpr R = binExpr(A, Op, B, true);
    R.Width = W;
    writeFReg(I.Ops[0].RegName, R);
  };
  if (M == "fadd")
    return fbin3("+");
  if (M == "fsub")
    return fbin3("-");
  if (M == "fmul")
    return fbin3("*");
  if (M == "fdiv")
    return fbin3("/");
  if (M == "fneg") {
    SymExpr A = readFReg(I.Ops[1].RegName);
    writeFReg(I.Ops[0].RegName, varExpr("-" + A.Text,
                                        I.Ops[0].RegName[0] == 'd' ? 8 : 4,
                                        true));
    return;
  }
  if (M == "fcmp") {
    Flags.Valid = true;
    Flags.IsFloat = true;
    Flags.Width = I.Ops[0].RegName[0] == 'd' ? 8 : 4;
    Flags.A = readFReg(I.Ops[0].RegName);
    Flags.B = readFReg(I.Ops[1].RegName);
    return;
  }
  if (M == "fmov") {
    const std::string &Dst = I.Ops[0].RegName;
    const std::string &Src = I.Ops[1].RegName;
    if (isFloatReg(Dst) && isFloatReg(Src)) {
      writeFReg(Dst, readFReg(Src));
      return;
    }
    if (isFloatReg(Dst)) {
      SymExpr Bits = readReg(Src);
      if (Bits.IsConst) {
        SymExpr FE;
        if (Dst[0] == 's') {
          float FV;
          uint32_t B = static_cast<uint32_t>(Bits.ConstVal);
          std::memcpy(&FV, &B, 4);
          FE = varExpr(formatString("%gf", FV), 4, true);
        } else {
          double DV;
          uint64_t B = static_cast<uint64_t>(Bits.ConstVal);
          std::memcpy(&DV, &B, 8);
          FE = varExpr(formatString("%g", DV), 8, true);
          if (FE.Text.find('.') == std::string::npos &&
              FE.Text.find('e') == std::string::npos)
            FE.Text += ".0";
        }
        writeFReg(Dst, FE);
        return;
      }
      fail("fmov from non-constant");
      return;
    }
    fail("fmov to gpr unsupported");
    return;
  }
  if (M == "scvtf") {
    bool F64 = I.Ops[0].RegName[0] == 'd';
    SymExpr Src = readReg(I.Ops[1].RegName);
    writeFReg(I.Ops[0].RegName,
              varExpr(std::string(F64 ? "(double)" : "(float)") + Src.Text,
                      F64 ? 8 : 4, true));
    return;
  }
  if (M == "fcvtzs") {
    int W = regWidth(I.Ops[0].RegName);
    SymExpr Src = readFReg(I.Ops[1].RegName);
    writeReg(I.Ops[0].RegName,
             varExpr(std::string(W == 8 ? "(long)" : "(int)") + Src.Text,
                     W));
    return;
  }
  if (M == "fcvt") {
    bool ToF64 = I.Ops[0].RegName[0] == 'd';
    SymExpr Src = readFReg(I.Ops[1].RegName);
    writeFReg(I.Ops[0].RegName,
              varExpr(std::string(ToF64 ? "(double)" : "(float)") +
                          Src.Text,
                      ToF64 ? 8 : 4, true));
    return;
  }

  fail("no lifting rule for instruction '" + M + "'");
}

//===----------------------------------------------------------------------===//
// Block-end materialization
//===----------------------------------------------------------------------===//

void Lifter::flushBlockEnd() {
  // Materialize written callee-saved registers so their values survive the
  // block (Ghidra's uVar assignments).
  static const char *X86Saved[] = {"rbx", "r12", "r13", "r14", "r15"};
  static const char *ArmSaved[] = {"x19", "x20", "x21", "x22", "x23"};
  // Two phases: pin every pending value first (they may reference the
  // uVars being reassigned), then assign.
  std::vector<std::pair<std::string, std::string>> Pending;
  auto collect = [&](const std::string &Key) {
    auto It = Regs.find(Key);
    if (It == Regs.end() || !WrittenRegs.count(Key))
      return;
    std::string V = "uVar_" + Key;
    if (It->second.Text == V)
      return;
    materializeExpr(It->second);
    UsedRegVars.insert(V);
    Pending.push_back({V, It->second.Text});
  };
  if (D == Dialect::X86)
    for (const char *R : X86Saved)
      collect(R);
  if (D == Dialect::Arm)
    for (const char *R : ArmSaved)
      collect(R);
  for (const auto &[V, Text] : Pending)
    Cur->Stmts.push_back(V + " = " + Text + ";");
  Regs.clear();
  FRegs.clear();
  WrittenRegs.clear();
  Flags = FlagState();
}

//===----------------------------------------------------------------------===//
// Structuring
//===----------------------------------------------------------------------===//

bool Lifter::isLoopHeader(int B, int *MaxBack) {
  int Max = -1;
  for (size_t P = 0; P < Blocks.size(); ++P) {
    const LBlock &LB = Blocks[P];
    bool Edge = (LB.Term == LBlock::Jump && LB.T0 == B) ||
                (LB.Term == LBlock::Cond && (LB.T0 == B || LB.T1 == B)) ||
                (LB.Term == LBlock::Fall &&
                 static_cast<int>(P) + 1 == B);
    if (Edge && static_cast<int>(P) >= B)
      Max = static_cast<int>(P);
  }
  *MaxBack = Max;
  return Max >= 0;
}

void Lifter::reachSet(int From, const LoopCtx &Loop, std::set<int> &Out) {
  std::vector<int> Work = {From};
  while (!Work.empty()) {
    int B = Work.back();
    Work.pop_back();
    if (B < 0 || B >= static_cast<int>(Blocks.size()))
      continue;
    if (Loop.Header >= 0 && B == Loop.Header)
      continue; // Back-edge: not part of the forward region.
    if (Loop.Exit >= 0 && B == Loop.Exit)
      continue;
    if (!Out.insert(B).second)
      continue;
    const LBlock &LB = Blocks[static_cast<size_t>(B)];
    if (LB.Term == LBlock::Jump)
      Work.push_back(LB.T0);
    else if (LB.Term == LBlock::Cond) {
      Work.push_back(LB.T0);
      Work.push_back(LB.T1);
    } else if (LB.Term == LBlock::Fall)
      Work.push_back(B + 1);
  }
}

int Lifter::findJoin(int A, int B, const LoopCtx &Loop) {
  std::set<int> SA, SB;
  reachSet(A, Loop, SA);
  reachSet(B, Loop, SB);
  int Best = -1;
  for (int X : SA)
    if (SB.count(X) && (Best < 0 || X < Best))
      Best = X;
  return Best;
}

bool Lifter::emitRegion(int CurB, int Stop, const LoopCtx &Loop, int Depth,
                        std::string &Out, int Indent) {
  if (Depth > 64) {
    fail("control flow too deep to structure");
    return false;
  }
  std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
  std::set<int> Visited;
  while (CurB != Stop && CurB >= 0 &&
         CurB < static_cast<int>(Blocks.size())) {
    if (!Visited.insert(CurB).second) {
      fail("irreducible control flow");
      return false;
    }
    // Loop header inside the current region (but not the enclosing one)?
    int MaxBack = -1;
    if (CurB != Loop.Header && isLoopHeader(CurB, &MaxBack) &&
        MaxBack >= CurB) {
      // Determine the single exit target of the loop.
      int Exit = -1;
      for (int B = CurB; B <= MaxBack; ++B) {
        const LBlock &LB = Blocks[static_cast<size_t>(B)];
        auto consider = [&](int T) {
          if (T >= 0 && (T < CurB || T > MaxBack)) {
            if (Exit >= 0 && Exit != T)
              Exit = -2;
            else if (Exit != -2)
              Exit = T;
          }
        };
        if (LB.Term == LBlock::Jump)
          consider(LB.T0);
        if (LB.Term == LBlock::Cond) {
          consider(LB.T0);
          consider(LB.T1);
        }
      }
      if (Exit == -2) {
        fail("loop with multiple exits");
        return false;
      }
      LoopCtx Inner{CurB, Exit, MaxBack};
      Out += Pad + "while (1) {\n";
      if (!emitLoopHeaderAndBody(CurB, Inner, Depth, Out, Indent + 1))
        return false;
      Out += Pad + "}\n";
      CurB = Exit;
      continue;
    }

    const LBlock &LB = Blocks[static_cast<size_t>(CurB)];
    for (const std::string &S : LB.Stmts)
      Out += Pad + S + "\n";
    switch (LB.Term) {
    case LBlock::Ret:
      if (!LB.RetExpr.empty())
        Out += Pad + "return " + LB.RetExpr + ";\n";
      else
        Out += Pad + "return;\n";
      return true;
    case LBlock::Fall:
      CurB = CurB + 1;
      continue;
    case LBlock::Jump: {
      int T = LB.T0;
      if (Loop.Header >= 0 && T == Loop.Header) {
        Out += Pad + "continue;\n";
        return true;
      }
      if (Loop.Exit >= 0 && T == Loop.Exit) {
        Out += Pad + "break;\n";
        return true;
      }
      CurB = T;
      continue;
    }
    case LBlock::Cond: {
      int A = LB.T0, B = LB.T1;
      auto branchText = [&](int T, int JoinT, int Ind,
                            std::string &Dst) -> bool {
        std::string P(static_cast<size_t>(Ind) * 2, ' ');
        if (Loop.Header >= 0 && T == Loop.Header) {
          Dst += P + "continue;\n";
          return true;
        }
        if (Loop.Exit >= 0 && T == Loop.Exit) {
          Dst += P + "break;\n";
          return true;
        }
        if (T == JoinT)
          return true;
        return emitRegion(T, JoinT, Loop, Depth + 1, Dst, Ind);
      };
      // Join of the two forward chains.
      int EffA = (Loop.Header >= 0 && A == Loop.Header) ||
                         (Loop.Exit >= 0 && A == Loop.Exit)
                     ? -1
                     : A;
      int EffB = (Loop.Header >= 0 && B == Loop.Header) ||
                         (Loop.Exit >= 0 && B == Loop.Exit)
                     ? -1
                     : B;
      int Join;
      if (EffA < 0 && EffB < 0)
        Join = -1;
      else if (EffA < 0)
        Join = -1; // Then-branch is continue/break; else chain continues.
      else if (EffB < 0)
        Join = -1;
      else
        Join = findJoin(EffA, EffB, Loop);

      if (EffA >= 0 && EffB >= 0 && Join >= 0) {
        std::string ThenS, ElseS;
        if (!branchText(A, Join, Indent + 1, ThenS))
          return false;
        if (!branchText(B, Join, Indent + 1, ElseS))
          return false;
        Out += Pad + "if " + LB.CondText + " {\n" + ThenS;
        if (!ElseS.empty())
          Out += Pad + "} else {\n" + ElseS;
        Out += Pad + "}\n";
        CurB = Join;
        continue;
      }
      // One (or both) arms leave the region: emit the leaving arm under
      // the if and fall through to the other.
      std::string ThenS;
      if (!branchText(A, -1, Indent + 1, ThenS))
        return false;
      Out += Pad + "if " + LB.CondText + " {\n" + ThenS + Pad + "}\n";
      if (Loop.Header >= 0 && B == Loop.Header) {
        Out += Pad + "continue;\n";
        return true;
      }
      if (Loop.Exit >= 0 && B == Loop.Exit) {
        Out += Pad + "break;\n";
        return true;
      }
      CurB = B;
      continue;
    }
    }
  }
  return true;
}

bool Lifter::emitLoopHeaderAndBody(int Header, const LoopCtx &Loop,
                                   int Depth, std::string &Out, int Indent) {
  // Emit the header block and its successors inside the loop context; the
  // region naturally terminates with continue/break.
  std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
  const LBlock &LB = Blocks[static_cast<size_t>(Header)];
  for (const std::string &S : LB.Stmts)
    Out += Pad + S + "\n";
  switch (LB.Term) {
  case LBlock::Ret:
    if (!LB.RetExpr.empty())
      Out += Pad + "return " + LB.RetExpr + ";\n";
    else
      Out += Pad + "return;\n";
    return true;
  case LBlock::Fall:
    return emitRegion(Header + 1, -1, Loop, Depth + 1, Out, Indent);
  case LBlock::Jump:
    if (LB.T0 == Header) {
      fail("self-loop header");
      return false;
    }
    if (LB.T0 == Loop.Exit) {
      Out += Pad + "break;\n";
      return true;
    }
    return emitRegion(LB.T0, -1, Loop, Depth + 1, Out, Indent);
  case LBlock::Cond: {
    // if (cond) break/body else body/break.
    int A = LB.T0, B = LB.T1;
    if (A == Loop.Exit) {
      Out += Pad + "if " + LB.CondText + " {\n" + Pad + "  break;\n" + Pad +
             "}\n";
      if (B == Header) {
        Out += Pad + "continue;\n";
        return true;
      }
      return emitRegion(B, -1, Loop, Depth + 1, Out, Indent);
    }
    if (B == Loop.Exit) {
      Out += Pad + "if (!" + LB.CondText + ") {\n" + Pad + "  break;\n" +
             Pad + "}\n";
      if (A == Header) {
        Out += Pad + "continue;\n";
        return true;
      }
      return emitRegion(A, -1, Loop, Depth + 1, Out, Indent);
    }
    // Neither arm exits directly: structure as a normal conditional.
    std::string Body;
    LoopCtx Inner = Loop;
    int Join = findJoin(A, B, Inner);
    if (Join >= 0) {
      std::string ThenS, ElseS;
      if (A != Join && !emitRegion(A, Join, Inner, Depth + 1, ThenS,
                                   Indent + 1))
        return false;
      if (B != Join && !emitRegion(B, Join, Inner, Depth + 1, ElseS,
                                   Indent + 1))
        return false;
      Out += Pad + "if " + LB.CondText + " {\n" + ThenS;
      if (!ElseS.empty())
        Out += Pad + "} else {\n" + ElseS;
      Out += Pad + "}\n";
      return emitRegion(Join, -1, Inner, Depth + 1, Out, Indent);
    }
    std::string ThenS, ElseS;
    if (!emitRegion(A, -1, Inner, Depth + 1, ThenS, Indent + 1))
      return false;
    if (!emitRegion(B, -1, Inner, Depth + 1, ElseS, Indent + 1))
      return false;
    Out += Pad + "if " + LB.CondText + " {\n" + ThenS + Pad + "} else {\n" +
           ElseS + Pad + "}\n";
    return true;
  }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

std::string Lifter::signature() {
  std::string RetTy = SawFloatReturn
                          ? (FloatRetWidth == 8 ? "double" : "float")
                      : SawIntReturn ? "long"
                                     : "void";
  std::vector<std::string> Params;
  for (int P = 0; P < MaxIntParam; ++P)
    Params.push_back(formatString("long param_%d", P + 1));
  for (int P = 0; P < MaxFloatParam; ++P)
    Params.push_back(formatString("float fparam_%d", P + 1));
  std::string Sig = RetTy + " " + F.Name + "(" +
                    (Params.empty() ? "void" : joinStrings(Params, ", ")) +
                    ")";
  return Sig;
}

Expected<std::string> Lifter::run() {
  splitBlocks();
  Blocks.resize(BlockStart.size());
  for (size_t B = 0; B < BlockStart.size(); ++B) {
    Cur = &Blocks[B];
    Regs.clear();
    FRegs.clear();
    WrittenRegs.clear();
    Flags = FlagState();
    size_t End = B + 1 < BlockStart.size()
                     ? static_cast<size_t>(BlockStart[B + 1])
                     : F.Instrs.size();
    for (size_t I = static_cast<size_t>(BlockStart[B]); I < End; ++I) {
      bool Fused = false;
      const AsmInstr *Next =
          I + 1 < End ? &F.Instrs[I + 1] : nullptr;
      if (D == Dialect::X86)
        liftX86(F.Instrs[I], Next, &Fused);
      else
        liftArm(F.Instrs[I], Next, &Fused);
      if (!Error.empty())
        return Expected<std::string>::error(Error);
      if (Fused)
        ++I;
    }
    flushBlockEnd();
  }

  std::string Body;
  LoopCtx Top;
  if (!emitRegion(0, -1, Top, 0, Body, 1) || !Error.empty())
    return Expected<std::string>::error(
        Error.empty() ? "structuring failed" : Error);

  // Declarations.
  std::string Decls;
  for (const auto &[Off, W] : LocalWidth) {
    bool Fl = LocalFloat.count(Off) && LocalFloat.at(Off);
    const char *Ty = Fl ? (W == 8 ? "double" : "float")
                        : (W == 8 ? "long" : "int");
    Decls += formatString("  %s local_%lld;\n", Ty,
                          static_cast<long long>(Off < 0 ? -Off : Off));
  }
  for (const std::string &V : UsedRegVars)
    Decls += "  long " + V + ";\n";
  for (const std::string &T : TempDecls)
    Decls += "  " + T + "\n";

  std::string Out = signature() + " {\n" + Decls + Body + "}\n";
  return Out;
}

} // namespace

Expected<std::string> slade::baselines::ruleDecompile(const AsmFunction &F,
                                                      Dialect D) {
  Lifter L(F, D);
  return L.run();
}
