//===- Retrieval.cpp - LLM-analogue retrieval decompiler ---------------------===//

#include "baselines/Retrieval.h"

#include "support/StringUtils.h"

#include <cmath>

using namespace slade;
using namespace slade::baselines;

static std::map<std::string, int> tokenCounts(const std::string &Asm) {
  std::map<std::string, int> Counts;
  for (const std::string &T : splitWhitespace(Asm)) {
    // Strip addresses/offsets so similarity reflects structure, not
    // accidental frame layout.
    std::string Clean;
    for (char C : T)
      if (!std::isdigit(static_cast<unsigned char>(C)) && C != '-')
        Clean.push_back(C);
    if (!Clean.empty())
      ++Counts[Clean];
  }
  return Counts;
}

void RetrievalDecompiler::add(const std::string &Asm,
                              const std::string &CSource) {
  Entry E;
  E.CSource = CSource;
  Entries.push_back(std::move(E));
  RawCounts.push_back(tokenCounts(Asm));
}

void RetrievalDecompiler::finalize() {
  std::map<std::string, int> DocFreq;
  for (const auto &Counts : RawCounts)
    for (const auto &[Tok, N] : Counts)
      ++DocFreq[Tok];
  double NDocs = static_cast<double>(RawCounts.size());
  for (const auto &[Tok, DF] : DocFreq)
    IDF[Tok] = static_cast<float>(
        std::log((NDocs + 1.0) / (static_cast<double>(DF) + 1.0)) + 1.0);
  for (size_t I = 0; I < Entries.size(); ++I) {
    double NormSq = 0;
    for (const auto &[Tok, N] : RawCounts[I]) {
      float W = static_cast<float>(N) * IDF[Tok];
      Entries[I].Vec[Tok] = W;
      NormSq += static_cast<double>(W) * W;
    }
    float Inv = NormSq > 0 ? static_cast<float>(1.0 / std::sqrt(NormSq))
                           : 0.0f;
    for (auto &[Tok, W] : Entries[I].Vec)
      W *= Inv;
  }
  RawCounts.clear();
  Finalized = true;
}

std::map<std::string, float>
RetrievalDecompiler::vectorize(const std::string &Asm) const {
  std::map<std::string, float> Vec;
  double NormSq = 0;
  for (const auto &[Tok, N] : tokenCounts(Asm)) {
    auto It = IDF.find(Tok);
    float W = static_cast<float>(N) * (It == IDF.end() ? 1.0f : It->second);
    Vec[Tok] = W;
    NormSq += static_cast<double>(W) * W;
  }
  float Inv = NormSq > 0 ? static_cast<float>(1.0 / std::sqrt(NormSq)) : 0.0f;
  for (auto &[Tok, W] : Vec)
    W *= Inv;
  return Vec;
}

std::string RetrievalDecompiler::decompile(const std::string &Asm) const {
  if (Entries.empty() || !Finalized)
    return std::string();
  std::map<std::string, float> Q = vectorize(Asm);
  double BestScore = -1;
  size_t BestIdx = 0;
  for (size_t I = 0; I < Entries.size(); ++I) {
    double Dot = 0;
    const auto &V = Entries[I].Vec;
    for (const auto &[Tok, W] : Q) {
      auto It = V.find(Tok);
      if (It != V.end())
        Dot += static_cast<double>(W) * It->second;
    }
    if (Dot > BestScore) {
      BestScore = Dot;
      BestIdx = I;
    }
  }
  return Entries[BestIdx].CSource;
}
