//===- Generator.h - ExeBench/Synth-style corpus generation -----*- C++ -*-===//
///
/// \file
/// Deterministic generator of realistic mini-C functions, standing in for
/// the paper's scraped corpora (AnghaBench/ExeBench, §V-A) and the Synth
/// benchmark's nine categories (§VII-E, Fig. 11). Every sample carries the
/// out-of-function context (typedefs, structs, globals, external function
/// definitions) that ExeBench provides around each function.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_DATASET_GENERATOR_H
#define SLADE_DATASET_GENERATOR_H

#include "support/RNG.h"

#include <string>
#include <vector>

namespace slade {
namespace dataset {

enum class Suite { ExeBench, Synth };

/// The Synth benchmark's category names (Fig. 11).
const std::vector<std::string> &synthCategories();

struct Sample {
  std::string Name;           ///< Function name.
  std::string FunctionSource; ///< Ground-truth C (canonical form).
  std::string ContextSource;  ///< Surrounding declarations + definitions.
  std::string Category;       ///< Synth category or "exebench".
  bool UsesExternalTypedef = false; ///< Drives the Fig. 10 ablation.
};

/// Generates one sample. For Suite::Synth, \p Category must be one of
/// synthCategories(); for ExeBench it is ignored.
Sample generateSample(SplitMix64 &Rng, Suite S, const std::string &Category);

/// A deduplicated train/test corpus (token-level hash dedup, §V-A).
struct Corpus {
  std::vector<Sample> Train;
  std::vector<Sample> Test;
};

Corpus buildCorpus(Suite S, size_t TrainN, size_t TestN, uint64_t Seed);

} // namespace dataset
} // namespace slade

#endif // SLADE_DATASET_GENERATOR_H
