//===- Generator.cpp - ExeBench/Synth-style corpus generation ----------------===//

#include "dataset/Generator.h"

#include "cc/Lexer.h"
#include "support/StringUtils.h"
#include "support/Unreachable.h"

#include <set>

using namespace slade;
using namespace slade::dataset;

const std::vector<std::string> &slade::dataset::synthCategories() {
  static const std::vector<std::string> Cats = {
      "makespeare", "simpl_int", "simpl_array", "L2", "SKETCHADAPT",
      "string",     "mathfu",    "BLAS",        "DSP"};
  return Cats;
}

namespace {

/// Random naming / snippet helpers shared by all template families.
struct Gen {
  SplitMix64 &R;
  std::string Fn;            ///< Function name.
  std::string Context;       ///< Accumulated context declarations.
  bool UsedTypedef = false;

  explicit Gen(SplitMix64 &R) : R(R) {}

  std::string pick(std::initializer_list<const char *> Xs) {
    std::vector<std::string> V(Xs.begin(), Xs.end());
    return R.pick(V);
  }
  int64_t num(int64_t Lo, int64_t Hi) { return R.range(Lo, Hi); }
  bool chance(double P) { return R.chance(P); }

  std::string arrName() { return pick({"buf", "arr", "data", "v", "a"}); }
  std::string idxName() { return pick({"i", "j", "k"}); }
  std::string lenName() { return pick({"n", "len", "count", "size"}); }
  std::string accName() { return pick({"sum", "total", "acc", "result"}); }
  std::string valName() { return pick({"x", "val", "v", "t"}); }
  std::string cmpOp() { return pick({"<", "<="}); }
  std::string arithOp() { return pick({"+", "-", "*"}); }

  /// An `int`-like type spelling; sometimes an external typedef
  /// (ExeBench mode only, enabled by the caller).
  std::string intType(bool AllowTypedef) {
    if (AllowTypedef && chance(0.35)) {
      std::string Name = pick({"my_int", "num_t", "val_t", "counter_t",
                               "idx_t", "i32_t"});
      std::string Under = pick({"int", "int", "long", "unsigned int"});
      Context += "typedef " + Under + " " + Name + ";\n";
      UsedTypedef = true;
      return Name;
    }
    return pick({"int", "int", "int", "long", "unsigned int", "short",
                 "char"});
  }
};

using Family = std::string (*)(Gen &);

//===----------------------------------------------------------------------===//
// simpl_int: integer scalars and trivial control flow
//===----------------------------------------------------------------------===//

std::string famIntExpr(Gen &G) {
  std::string A = G.pick({"a", "x", "p"});
  std::string B = G.pick({"b", "y", "q"});
  std::string Op1 = G.arithOp(), Op2 = G.arithOp();
  int64_t K1 = G.num(1, 9), K2 = G.num(1, 9);
  std::string Body;
  switch (G.num(0, 3)) {
  case 0:
    Body = formatString("return %s %s %s %s %lld;", A.c_str(), Op1.c_str(),
                        B.c_str(), Op2.c_str(), (long long)K1);
    break;
  case 1:
    Body = formatString("return (%s + %lld) %s (%s - %lld);", A.c_str(),
                        (long long)K1, Op1.c_str(), B.c_str(),
                        (long long)K2);
    break;
  case 2:
    Body = formatString("return %s * %s + %s %% %lld;", A.c_str(), B.c_str(),
                        A.c_str(), (long long)(K1 + 1));
    break;
  default:
    Body = formatString("return (%s << %lld) - %s;", A.c_str(),
                        (long long)G.num(1, 3), B.c_str());
    break;
  }
  G.Fn = G.pick({"combine", "calc", "mix", "apply", "eval"});
  return formatString("int %s(int %s, int %s) {\n  %s\n}\n", G.Fn.c_str(),
                      A.c_str(), B.c_str(), Body.c_str());
}

std::string famAbsMinMax(Gen &G) {
  std::string A = G.pick({"a", "x"});
  std::string B = G.pick({"b", "y"});
  int Which = static_cast<int>(G.num(0, 2));
  if (Which == 0) {
    G.Fn = G.pick({"my_abs", "absolute", "magnitude"});
    if (G.chance(0.5))
      return formatString("int %s(int %s) {\n"
                          "  if (%s < 0) {\n    return -%s;\n  }\n"
                          "  return %s;\n}\n",
                          G.Fn.c_str(), A.c_str(), A.c_str(), A.c_str(),
                          A.c_str());
    return formatString("int %s(int %s) {\n  return %s < 0 ? -%s : %s;\n}\n",
                        G.Fn.c_str(), A.c_str(), A.c_str(), A.c_str(),
                        A.c_str());
  }
  const char *Op = Which == 1 ? "<" : ">";
  G.Fn = Which == 1 ? G.pick({"my_min", "smaller", "min2"})
                    : G.pick({"my_max", "larger", "max2"});
  if (G.chance(0.5))
    return formatString(
        "int %s(int %s, int %s) {\n"
        "  if (%s %s %s) {\n    return %s;\n  }\n  return %s;\n}\n",
        G.Fn.c_str(), A.c_str(), B.c_str(), A.c_str(), Op, B.c_str(),
        A.c_str(), B.c_str());
  return formatString("int %s(int %s, int %s) {\n  return %s %s %s ? %s : "
                      "%s;\n}\n",
                      G.Fn.c_str(), A.c_str(), B.c_str(), A.c_str(), Op,
                      B.c_str(), A.c_str(), B.c_str());
}

std::string famCountLoop(Gen &G) {
  std::string N = G.lenName();
  std::string Acc = G.accName();
  std::string I = G.idxName();
  std::string Step = G.pick({"i * i", "i", "i * 2 + 1", "n - i"});
  Step = replaceAll(Step, "i", I);
  Step = replaceAll(Step, "n", N);
  G.Fn = G.pick({"series", "accumulate", "tally", "sum_up"});
  return formatString("int %s(int %s) {\n"
                      "  int %s = 0;\n"
                      "  for (int %s = 0; %s %s %s; %s++) {\n"
                      "    %s += %s;\n"
                      "  }\n"
                      "  return %s;\n}\n",
                      G.Fn.c_str(), N.c_str(), Acc.c_str(), I.c_str(),
                      I.c_str(), G.cmpOp().c_str(), N.c_str(), I.c_str(),
                      Acc.c_str(), Step.c_str(), Acc.c_str());
}

std::string famWhileReduce(Gen &G) {
  std::string N = G.pick({"n", "x", "value"});
  int Which = static_cast<int>(G.num(0, 2));
  if (Which == 0) {
    G.Fn = G.pick({"count_digits", "num_digits", "digits"});
    return formatString("int %s(int %s) {\n"
                        "  int d = 1;\n"
                        "  while (%s > 9) {\n"
                        "    %s /= 10;\n"
                        "    d++;\n"
                        "  }\n"
                        "  return d;\n}\n",
                        G.Fn.c_str(), N.c_str(), N.c_str(), N.c_str());
  }
  if (Which == 1) {
    G.Fn = G.pick({"count_bits", "popcount_ish", "bits_set"});
    return formatString("int %s(unsigned %s) {\n"
                        "  int c = 0;\n"
                        "  while (%s) {\n"
                        "    c += %s & 1;\n"
                        "    %s >>= 1;\n"
                        "  }\n"
                        "  return c;\n}\n",
                        G.Fn.c_str(), N.c_str(), N.c_str(), N.c_str(),
                        N.c_str());
  }
  G.Fn = G.pick({"ipow", "power", "pow_int"});
  return formatString("int %s(int base, int %s) {\n"
                      "  int r = 1;\n"
                      "  while (%s > 0) {\n"
                      "    r *= base;\n"
                      "    %s--;\n"
                      "  }\n"
                      "  return r;\n}\n",
                      G.Fn.c_str(), N.c_str(), N.c_str(), N.c_str());
}

//===----------------------------------------------------------------------===//
// simpl_array / L2: array loops
//===----------------------------------------------------------------------===//

std::string famArrayReduce(Gen &G) {
  std::string Arr = G.arrName(), N = G.lenName(), I = G.idxName(),
              Acc = G.accName();
  int Which = static_cast<int>(G.num(0, 3));
  G.Fn = Which == 0   ? G.pick({"array_sum", "total_of", "sum_all"})
         : Which == 1 ? G.pick({"array_max", "largest", "max_of"})
         : Which == 2 ? G.pick({"count_pos", "count_matching", "num_above"})
                      : G.pick({"dot", "inner", "dot_product"});
  switch (Which) {
  case 0:
    return formatString("int %s(int *%s, int %s) {\n"
                        "  int %s = 0;\n"
                        "  for (int %s = 0; %s < %s; %s++) {\n"
                        "    %s += %s[%s];\n"
                        "  }\n"
                        "  return %s;\n}\n",
                        G.Fn.c_str(), Arr.c_str(), N.c_str(), Acc.c_str(),
                        I.c_str(), I.c_str(), N.c_str(), I.c_str(),
                        Acc.c_str(), Arr.c_str(), I.c_str(), Acc.c_str());
  case 1:
    return formatString("int %s(int *%s, int %s) {\n"
                        "  int best = %s[0];\n"
                        "  for (int %s = 1; %s < %s; %s++) {\n"
                        "    if (%s[%s] > best) {\n"
                        "      best = %s[%s];\n"
                        "    }\n"
                        "  }\n"
                        "  return best;\n}\n",
                        G.Fn.c_str(), Arr.c_str(), N.c_str(), Arr.c_str(),
                        I.c_str(), I.c_str(), N.c_str(), I.c_str(),
                        Arr.c_str(), I.c_str(), Arr.c_str(), I.c_str());
  case 2: {
    int64_t K = G.num(0, 5);
    return formatString("int %s(int *%s, int %s) {\n"
                        "  int %s = 0;\n"
                        "  for (int %s = 0; %s < %s; %s++) {\n"
                        "    if (%s[%s] > %lld) {\n"
                        "      %s++;\n"
                        "    }\n"
                        "  }\n"
                        "  return %s;\n}\n",
                        G.Fn.c_str(), Arr.c_str(), N.c_str(), Acc.c_str(),
                        I.c_str(), I.c_str(), N.c_str(), I.c_str(),
                        Arr.c_str(), I.c_str(), (long long)K, Acc.c_str(),
                        Acc.c_str());
  }
  default:
    return formatString("int %s(int *a, int *b, int %s) {\n"
                        "  int %s = 0;\n"
                        "  for (int %s = 0; %s < %s; %s++) {\n"
                        "    %s += a[%s] * b[%s];\n"
                        "  }\n"
                        "  return %s;\n}\n",
                        G.Fn.c_str(), N.c_str(), Acc.c_str(), I.c_str(),
                        I.c_str(), N.c_str(), I.c_str(), Acc.c_str(),
                        I.c_str(), I.c_str(), Acc.c_str());
  }
}

std::string famArrayMap(Gen &G) {
  std::string Arr = G.arrName(), N = G.lenName(), I = G.idxName();
  int Which = static_cast<int>(G.num(0, 3));
  int64_t K = G.num(1, 9);
  G.Fn = Which == 0   ? G.pick({"add_const", "offset_all", "shift_vals"})
         : Which == 1 ? G.pick({"scale_all", "multiply_by", "amplify"})
         : Which == 2 ? G.pick({"copy_into", "clone_array", "array_copy"})
                      : G.pick({"fill_with", "set_all", "init_array"});
  switch (Which) {
  case 0:
    return formatString("void %s(int *%s, int %s, int %s) {\n"
                        "  for (int %s = 0; %s < %s; %s++) {\n"
                        "    %s[%s] += %s;\n"
                        "  }\n}\n",
                        G.Fn.c_str(), Arr.c_str(), "val", N.c_str(),
                        I.c_str(), I.c_str(), N.c_str(), I.c_str(),
                        Arr.c_str(), I.c_str(), "val");
  case 1:
    return formatString("void %s(int *%s, int %s) {\n"
                        "  for (int %s = 0; %s < %s; %s++) {\n"
                        "    %s[%s] = %s[%s] * %lld;\n"
                        "  }\n}\n",
                        G.Fn.c_str(), Arr.c_str(), N.c_str(), I.c_str(),
                        I.c_str(), N.c_str(), I.c_str(), Arr.c_str(),
                        I.c_str(), Arr.c_str(), I.c_str(), (long long)K);
  case 2:
    return formatString("void %s(int *dst, int *src, int %s) {\n"
                        "  for (int %s = 0; %s < %s; %s++) {\n"
                        "    dst[%s] = src[%s];\n"
                        "  }\n}\n",
                        G.Fn.c_str(), N.c_str(), I.c_str(), I.c_str(),
                        N.c_str(), I.c_str(), I.c_str(), I.c_str());
  default:
    return formatString("void %s(int *%s, int %s, int value) {\n"
                        "  for (int %s = 0; %s < %s; %s++) {\n"
                        "    %s[%s] = value;\n"
                        "  }\n}\n",
                        G.Fn.c_str(), Arr.c_str(), N.c_str(), I.c_str(),
                        I.c_str(), N.c_str(), I.c_str(), Arr.c_str(),
                        I.c_str());
  }
}

std::string famL2(Gen &G) {
  std::string N = G.lenName(), I = G.idxName();
  int Which = static_cast<int>(G.num(0, 2));
  if (Which == 0) {
    G.Fn = G.pick({"zip_add", "pair_sum", "combine_arrays"});
    std::string Op = G.arithOp();
    return formatString("void %s(int *out, int *a, int *b, int %s) {\n"
                        "  for (int %s = 0; %s < %s; %s++) {\n"
                        "    out[%s] = a[%s] %s b[%s];\n"
                        "  }\n}\n",
                        G.Fn.c_str(), N.c_str(), I.c_str(), I.c_str(),
                        N.c_str(), I.c_str(), I.c_str(), I.c_str(),
                        Op.c_str(), I.c_str());
  }
  if (Which == 1) {
    G.Fn = G.pick({"fold_diff", "reduce_sub", "alternating_sum"});
    return formatString("int %s(int *a, int %s) {\n"
                        "  int r = 0;\n"
                        "  for (int %s = 0; %s < %s; %s++) {\n"
                        "    if (%s %% 2 == 0) {\n"
                        "      r += a[%s];\n"
                        "    } else {\n"
                        "      r -= a[%s];\n"
                        "    }\n"
                        "  }\n"
                        "  return r;\n}\n",
                        G.Fn.c_str(), N.c_str(), I.c_str(), I.c_str(),
                        N.c_str(), I.c_str(), I.c_str(), I.c_str(),
                        I.c_str());
  }
  G.Fn = G.pick({"running_max", "prefix_max", "scan_max"});
  return formatString("void %s(int *out, int *a, int %s) {\n"
                      "  int best = a[0];\n"
                      "  for (int %s = 0; %s < %s; %s++) {\n"
                      "    if (a[%s] > best) {\n"
                      "      best = a[%s];\n"
                      "    }\n"
                      "    out[%s] = best;\n"
                      "  }\n}\n",
                      G.Fn.c_str(), N.c_str(), I.c_str(), I.c_str(),
                      N.c_str(), I.c_str(), I.c_str(), I.c_str(), I.c_str());
}

//===----------------------------------------------------------------------===//
// SKETCHADAPT: harder control flow
//===----------------------------------------------------------------------===//

std::string famSketch(Gen &G) {
  std::string N = G.lenName(), I = G.idxName();
  int Which = static_cast<int>(G.num(0, 2));
  if (Which == 0) {
    G.Fn = G.pick({"find_first", "index_of", "locate"});
    return formatString("int %s(int *a, int %s, int key) {\n"
                        "  for (int %s = 0; %s < %s; %s++) {\n"
                        "    if (a[%s] == key) {\n"
                        "      return %s;\n"
                        "    }\n"
                        "  }\n"
                        "  return -1;\n}\n",
                        G.Fn.c_str(), N.c_str(), I.c_str(), I.c_str(),
                        N.c_str(), I.c_str(), I.c_str(), I.c_str());
  }
  if (Which == 1) {
    G.Fn = G.pick({"longest_run", "max_streak", "run_length"});
    return formatString("int %s(int *a, int %s) {\n"
                        "  int best = 0;\n"
                        "  int cur = 0;\n"
                        "  for (int %s = 0; %s < %s; %s++) {\n"
                        "    if (a[%s] > 0) {\n"
                        "      cur++;\n"
                        "      if (cur > best) {\n"
                        "        best = cur;\n"
                        "      }\n"
                        "    } else {\n"
                        "      cur = 0;\n"
                        "    }\n"
                        "  }\n"
                        "  return best;\n}\n",
                        G.Fn.c_str(), N.c_str(), I.c_str(), I.c_str(),
                        N.c_str(), I.c_str(), I.c_str());
  }
  G.Fn = G.pick({"is_sorted", "check_order", "nondecreasing"});
  return formatString("int %s(int *a, int %s) {\n"
                      "  for (int %s = 1; %s < %s; %s++) {\n"
                      "    if (a[%s - 1] > a[%s]) {\n"
                      "      return 0;\n"
                      "    }\n"
                      "  }\n"
                      "  return 1;\n}\n",
                      G.Fn.c_str(), N.c_str(), I.c_str(), I.c_str(),
                      N.c_str(), I.c_str(), I.c_str(), I.c_str());
}

//===----------------------------------------------------------------------===//
// string
//===----------------------------------------------------------------------===//

std::string famString(Gen &G) {
  int Which = static_cast<int>(G.num(0, 3));
  if (Which == 0) {
    G.Fn = G.pick({"my_strlen", "str_length", "text_len"});
    return formatString("int %s(char *s) {\n"
                        "  int n = 0;\n"
                        "  while (s[n]) {\n"
                        "    n++;\n"
                        "  }\n"
                        "  return n;\n}\n",
                        G.Fn.c_str());
  }
  if (Which == 1) {
    G.Fn = G.pick({"count_char", "occurrences", "char_count"});
    return formatString("int %s(char *s, char c) {\n"
                        "  int n = 0;\n"
                        "  int i = 0;\n"
                        "  while (s[i]) {\n"
                        "    if (s[i] == c) {\n"
                        "      n++;\n"
                        "    }\n"
                        "    i++;\n"
                        "  }\n"
                        "  return n;\n}\n",
                        G.Fn.c_str());
  }
  if (Which == 2) {
    G.Fn = G.pick({"str_copy", "copy_text", "my_strcpy"});
    return formatString("void %s(char *dst, char *src) {\n"
                        "  int i = 0;\n"
                        "  while (src[i]) {\n"
                        "    dst[i] = src[i];\n"
                        "    i++;\n"
                        "  }\n"
                        "  dst[i] = 0;\n}\n",
                        G.Fn.c_str());
  }
  G.Fn = G.pick({"to_upper", "upcase", "shout"});
  return formatString("void %s(char *s) {\n"
                      "  int i = 0;\n"
                      "  while (s[i]) {\n"
                      "    if (s[i] >= 97 && s[i] <= 122) {\n"
                      "      s[i] -= 32;\n"
                      "    }\n"
                      "    i++;\n"
                      "  }\n}\n",
                      G.Fn.c_str());
}

//===----------------------------------------------------------------------===//
// mathfu / BLAS / DSP: floating point
//===----------------------------------------------------------------------===//

std::string famMathfu(Gen &G) {
  int Which = static_cast<int>(G.num(0, 2));
  std::string T = G.pick({"float", "double"});
  if (Which == 0) {
    G.Fn = G.pick({"lerp", "mix_values", "interpolate"});
    return formatString("%s %s(%s a, %s b, %s t) {\n"
                        "  return a + (b - a) * t;\n}\n",
                        T.c_str(), G.Fn.c_str(), T.c_str(), T.c_str(),
                        T.c_str());
  }
  if (Which == 1) {
    G.Fn = G.pick({"clampf", "saturate", "limit_range"});
    return formatString("%s %s(%s x, %s lo, %s hi) {\n"
                        "  if (x < lo) {\n    return lo;\n  }\n"
                        "  if (x > hi) {\n    return hi;\n  }\n"
                        "  return x;\n}\n",
                        T.c_str(), G.Fn.c_str(), T.c_str(), T.c_str(),
                        T.c_str());
  }
  G.Fn = G.pick({"poly2", "quadratic", "eval_poly"});
  return formatString("%s %s(%s x, %s a, %s b) {\n"
                      "  return a * x * x + b * x + %lld.0;\n}\n",
                      T.c_str(), G.Fn.c_str(), T.c_str(), T.c_str(),
                      T.c_str(), (long long)G.num(0, 4));
}

std::string famBlas(Gen &G) {
  std::string N = G.lenName(), I = G.idxName();
  int Which = static_cast<int>(G.num(0, 2));
  if (Which == 0) {
    G.Fn = G.pick({"saxpy", "axpy", "scaled_add"});
    return formatString("void %s(int %s, float a, float *x, float *y) {\n"
                        "  for (int %s = 0; %s < %s; %s++) {\n"
                        "    y[%s] = a * x[%s] + y[%s];\n"
                        "  }\n}\n",
                        G.Fn.c_str(), N.c_str(), I.c_str(), I.c_str(),
                        N.c_str(), I.c_str(), I.c_str(), I.c_str(),
                        I.c_str());
  }
  if (Which == 1) {
    G.Fn = G.pick({"sdot", "fdot", "dotf"});
    return formatString("float %s(int %s, float *x, float *y) {\n"
                        "  float r = 0.0f;\n"
                        "  for (int %s = 0; %s < %s; %s++) {\n"
                        "    r += x[%s] * y[%s];\n"
                        "  }\n"
                        "  return r;\n}\n",
                        G.Fn.c_str(), N.c_str(), I.c_str(), I.c_str(),
                        N.c_str(), I.c_str(), I.c_str(), I.c_str());
  }
  G.Fn = G.pick({"sscal", "scalef", "vec_scale"});
  return formatString("void %s(int %s, float a, float *x) {\n"
                      "  for (int %s = 0; %s < %s; %s++) {\n"
                      "    x[%s] *= a;\n"
                      "  }\n}\n",
                      G.Fn.c_str(), N.c_str(), I.c_str(), I.c_str(),
                      N.c_str(), I.c_str(), I.c_str());
}

std::string famDsp(Gen &G) {
  std::string N = G.lenName(), I = G.idxName();
  int Which = static_cast<int>(G.num(0, 2));
  if (Which == 0) {
    G.Fn = G.pick({"energy", "signal_power", "sq_sum"});
    return formatString("float %s(float *sig, int %s) {\n"
                        "  float e = 0.0f;\n"
                        "  for (int %s = 0; %s < %s; %s++) {\n"
                        "    e += sig[%s] * sig[%s];\n"
                        "  }\n"
                        "  return e;\n}\n",
                        G.Fn.c_str(), N.c_str(), I.c_str(), I.c_str(),
                        N.c_str(), I.c_str(), I.c_str(), I.c_str());
  }
  if (Which == 1) {
    G.Fn = G.pick({"apply_gain", "amplify_signal", "gain"});
    return formatString("void %s(float *sig, int %s, float g, float bias) "
                        "{\n"
                        "  for (int %s = 0; %s < %s; %s++) {\n"
                        "    sig[%s] = sig[%s] * g + bias;\n"
                        "  }\n}\n",
                        G.Fn.c_str(), N.c_str(), I.c_str(), I.c_str(),
                        N.c_str(), I.c_str(), I.c_str(), I.c_str());
  }
  G.Fn = G.pick({"moving_avg3", "smooth3", "box_filter"});
  return formatString("void %s(float *out, float *in, int %s) {\n"
                      "  for (int %s = 1; %s < %s - 1; %s++) {\n"
                      "    out[%s] = (in[%s - 1] + in[%s] + in[%s + 1]) / "
                      "3.0f;\n"
                      "  }\n}\n",
                      G.Fn.c_str(), N.c_str(), I.c_str(), I.c_str(),
                      N.c_str(), I.c_str(), I.c_str(), I.c_str(), I.c_str(),
                      I.c_str());
}

//===----------------------------------------------------------------------===//
// makespeare: statement soup over scalars
//===----------------------------------------------------------------------===//

std::string famMakespeare(Gen &G) {
  std::string A = "a", B = "b", C = "c";
  G.Fn = G.pick({"scene", "passage", "verse", "stanza"});
  std::string Body;
  int Stmts = static_cast<int>(G.num(2, 4));
  std::vector<std::string> Vars = {A, B, C};
  for (int S = 0; S < Stmts; ++S) {
    std::string L = G.R.pick(Vars), R1 = G.R.pick(Vars),
                R2 = G.R.pick(Vars);
    if (G.chance(0.4)) {
      Body += formatString("  if (%s > %s) {\n    %s = %s %s %lld;\n  }\n",
                           R1.c_str(), R2.c_str(), L.c_str(), R1.c_str(),
                           G.arithOp().c_str(), (long long)G.num(1, 5));
    } else {
      Body += formatString("  %s = %s %s %s;\n", L.c_str(), R1.c_str(),
                           G.arithOp().c_str(), R2.c_str());
    }
  }
  Body += formatString("  return %s;\n", G.R.pick(Vars).c_str());
  return formatString("int %s(int a, int b, int c) {\n%s}\n", G.Fn.c_str(),
                      Body.c_str());
}

//===----------------------------------------------------------------------===//
// ExeBench extras: structs, globals, external calls, typedefs
//===----------------------------------------------------------------------===//

std::string famStructUpdate(Gen &G) {
  std::string SN = G.pick({"SPoint", "SPair", "SClock", "SAccum", "SRange"});
  std::string F1 = G.pick({"x", "curtime", "lo", "first", "width"});
  std::string F2 = G.pick({"y", "basetime", "hi", "second", "height"});
  std::string F3 = G.pick({"seqno", "count", "flags", "tag"});
  G.Context += formatString("struct %s {\n  int %s;\n  int %s;\n  int %s;\n"
                            "};\n",
                            SN.c_str(), F1.c_str(), F2.c_str(), F3.c_str());
  G.Fn = G.pick({"advance", "update_state", "tick", "bump_all"});
  std::string P = G.pick({"p", "obj", "st", "it"});
  return formatString("void %s(struct %s *%s, int incr) {\n"
                      "  if (%s) {\n"
                      "    %s->%s += incr;\n"
                      "    %s->%s += incr;\n"
                      "    %s->%s++;\n"
                      "  }\n}\n",
                      G.Fn.c_str(), SN.c_str(), P.c_str(), P.c_str(),
                      P.c_str(), F1.c_str(), P.c_str(), F2.c_str(),
                      P.c_str(), F3.c_str());
}

std::string famGlobalCounter(Gen &G) {
  std::string GV = G.pick({"g_total", "g_count", "g_state", "g_ticks"});
  G.Context += formatString("int %s;\n", GV.c_str());
  G.Fn = G.pick({"record", "log_event", "note_value", "track"});
  if (G.chance(0.5))
    return formatString("int %s(int x) {\n"
                        "  %s += x;\n"
                        "  return %s;\n}\n",
                        G.Fn.c_str(), GV.c_str(), GV.c_str());
  return formatString("void %s(int x) {\n"
                      "  if (x > 0) {\n"
                      "    %s += x;\n"
                      "  } else {\n"
                      "    %s -= x;\n"
                      "  }\n}\n",
                      G.Fn.c_str(), GV.c_str(), GV.c_str());
}

std::string famExternalCall(Gen &G) {
  std::string H = G.pick({"clamp_small", "normalize_step", "adjust",
                          "weight_of"});
  int64_t K = G.num(3, 9);
  G.Context += formatString("int %s(int v) {\n"
                            "  if (v > %lld) {\n    return %lld;\n  }\n"
                            "  return v;\n}\n",
                            H.c_str(), (long long)K, (long long)K);
  G.Fn = G.pick({"process_all", "apply_filter", "transform"});
  std::string N = G.lenName(), I = G.idxName();
  return formatString("void %s(int *data, int %s) {\n"
                      "  for (int %s = 0; %s < %s; %s++) {\n"
                      "    data[%s] = %s(data[%s]);\n"
                      "  }\n}\n",
                      G.Fn.c_str(), N.c_str(), I.c_str(), I.c_str(),
                      N.c_str(), I.c_str(), I.c_str(), H.c_str(),
                      I.c_str());
}

std::string famTypedefArith(Gen &G) {
  std::string T = G.intType(/*AllowTypedef=*/true);
  std::string A = G.pick({"a", "x", "lhs"});
  std::string B = G.pick({"b", "y", "rhs"});
  G.Fn = G.pick({"blend", "merge_vals", "fuse", "compose"});
  std::string Op1 = G.arithOp();
  return formatString("%s %s(%s %s, %s %s) {\n"
                      "  %s r = %s %s %s;\n"
                      "  if (r < 0) {\n"
                      "    r = -r;\n"
                      "  }\n"
                      "  return r;\n}\n",
                      T.c_str(), G.Fn.c_str(), T.c_str(), A.c_str(),
                      T.c_str(), B.c_str(), T.c_str(), A.c_str(),
                      Op1.c_str(), B.c_str());
}

std::string famTypedefArray(Gen &G) {
  std::string T = G.intType(/*AllowTypedef=*/true);
  std::string N = G.lenName(), I = G.idxName();
  G.Fn = G.pick({"tally_up", "reduce_vals", "fold_sum"});
  return formatString("%s %s(%s *vals, int %s) {\n"
                      "  %s acc = 0;\n"
                      "  for (int %s = 0; %s < %s; %s++) {\n"
                      "    acc += vals[%s];\n"
                      "  }\n"
                      "  return acc;\n}\n",
                      T.c_str(), G.Fn.c_str(), T.c_str(), N.c_str(),
                      T.c_str(), I.c_str(), I.c_str(), N.c_str(), I.c_str(),
                      I.c_str());
}

//===----------------------------------------------------------------------===//
// Family tables
//===----------------------------------------------------------------------===//

Family familyFor(Gen &G, Suite S, const std::string &Category) {
  if (S == Suite::Synth) {
    if (Category == "simpl_int")
      return G.chance(0.5) ? famIntExpr
                           : (G.chance(0.5) ? famAbsMinMax : famCountLoop);
    if (Category == "simpl_array")
      return G.chance(0.5) ? famArrayReduce : famArrayMap;
    if (Category == "L2")
      return famL2;
    if (Category == "SKETCHADAPT")
      return famSketch;
    if (Category == "string")
      return famString;
    if (Category == "mathfu")
      return famMathfu;
    if (Category == "BLAS")
      return famBlas;
    if (Category == "DSP")
      return famDsp;
    if (Category == "makespeare")
      return famMakespeare;
    SLADE_UNREACHABLE("unknown Synth category");
  }
  // ExeBench: weighted mixture over everything, including the families
  // with out-of-function context.
  static const Family All[] = {
      famIntExpr,     famAbsMinMax,    famCountLoop,   famWhileReduce,
      famArrayReduce, famArrayMap,     famL2,          famSketch,
      famString,      famMathfu,       famBlas,        famDsp,
      famMakespeare,  famStructUpdate, famGlobalCounter,
      famExternalCall, famTypedefArith, famTypedefArray};
  static const double Weights[] = {1.0, 1.0, 1.0, 1.0, 1.3, 1.3,
                                   1.0, 1.0, 0.8, 0.7, 0.7, 0.7,
                                   1.0, 1.2, 1.0, 1.0, 1.2, 1.2};
  std::vector<double> W(std::begin(Weights), std::end(Weights));
  return All[G.R.weighted(W)];
}

} // namespace

Sample slade::dataset::generateSample(SplitMix64 &Rng, Suite S,
                                      const std::string &Category) {
  Gen G(Rng);
  Family Fam = familyFor(G, S, Category);
  Sample Out;
  Out.FunctionSource = Fam(G);
  Out.Name = G.Fn;
  Out.ContextSource = G.Context;
  Out.Category = S == Suite::Synth ? Category : "exebench";
  Out.UsesExternalTypedef = G.UsedTypedef;
  return Out;
}

Corpus slade::dataset::buildCorpus(Suite S, size_t TrainN, size_t TestN,
                                   uint64_t Seed) {
  Corpus C;
  SplitMix64 Rng(Seed);
  std::set<uint64_t> SeenHashes;
  const auto &Cats = synthCategories();
  size_t Total = TrainN + TestN;
  size_t Attempts = 0;
  while (C.Train.size() + C.Test.size() < Total &&
         Attempts < Total * 200 + 1000) {
    ++Attempts;
    std::string Cat = S == Suite::Synth
                          ? Cats[Rng.below(Cats.size())]
                          : std::string();
    Sample Smp = generateSample(Rng, S, Cat);
    // Token-level hash dedup (§V-A): identical token streams are dropped,
    // so the test split can never leak into training.
    std::string Joined =
        joinStrings(cc::cTokenSpellings(Smp.FunctionSource), "\x1f");
    uint64_t H = fnv1a64(Joined);
    if (!SeenHashes.insert(H).second)
      continue;
    if (C.Test.size() < TestN)
      C.Test.push_back(std::move(Smp));
    else
      C.Train.push_back(std::move(Smp));
  }
  return C;
}
