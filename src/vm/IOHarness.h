//===- IOHarness.h - input/output equivalence testing -----------*- C++ -*-===//
///
/// \file
/// Implements the paper's IO-equivalence criterion (§III-A): generate a
/// finite set of typed inputs from the *original* function signature, run
/// the candidate over the simulated machine, and compare outcome, return
/// value, every pointee buffer, and every global. Non-termination (step
/// budget) never equals anything, matching the paper's conservative rule.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_VM_IOHARNESS_H
#define SLADE_VM_IOHARNESS_H

#include "asmx/Asm.h"
#include "cc/AST.h"
#include "vm/Machine.h"

#include <cstdint>
#include <string>
#include <vector>

namespace slade {
namespace vm {

/// A global variable to materialize in the memory image.
struct GlobalSpec {
  std::string Name;
  unsigned Size = 4;
  std::vector<uint8_t> Init; ///< Zero-filled to Size if shorter.
};

struct HarnessConfig {
  int NumTests = 5;
  unsigned BufferElems = 16; ///< Elements per pointer-argument buffer.
  uint64_t Seed = 0x51adeULL;
  uint64_t MaxSteps = 400000;
};

/// Observable behaviour of one simulated call.
struct TestResult {
  RunOutcome::Kind K = RunOutcome::Return;
  bool RetVoid = true;
  bool RetIsFloat = false;
  uint64_t RetBits = 0;   ///< Return value truncated to declared width.
  double RetFloat = 0;
  std::vector<std::vector<uint8_t>> Buffers; ///< Pointee buffers after run.
  std::vector<std::vector<uint8_t>> Globals; ///< Global contents after run.
};

/// Behaviour across the whole finite input set F (eq. 3).
struct TestProfile {
  std::vector<TestResult> Tests;
};

/// Runs \p Sig's input set against \p Image (target + context externals).
TestProfile runProfile(const std::vector<asmx::AsmFunction> &Image,
                       const cc::FunctionDecl &Sig,
                       const std::vector<GlobalSpec> &Globals,
                       asmx::Dialect D, const HarnessConfig &Cfg);

/// True when the two profiles are behaviourally equal (floats compared
/// with 1e-6 relative tolerance; timeouts never compare equal).
bool profilesEquivalent(const TestProfile &A, const TestProfile &B);

} // namespace vm
} // namespace slade

#endif // SLADE_VM_IOHARNESS_H
