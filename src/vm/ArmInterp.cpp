//===- ArmInterp.cpp - AArch64 subset interpreter ----------------------------===//

#include "vm/Interp.h"

#include "support/StringUtils.h"

#include <cstring>

using namespace slade;
using namespace slade::asmx;
using namespace slade::vm;

namespace {

struct VReg128 {
  uint8_t Bytes[16] = {0};
};

class ArmMachine {
public:
  ArmMachine(const std::vector<AsmFunction> &Image, Memory &Mem,
             const std::map<std::string, uint64_t> &Symbols,
             const ExecConfig &Cfg)
      : Mem(Mem), Symbols(Symbols), Cfg(Cfg) {
    for (const AsmFunction &F : Image)
      Funcs[F.Name] = &F;
  }

  RunOutcome run(const std::string &Entry, const CallArgs &Args);

private:
  Memory &Mem;
  const std::map<std::string, uint64_t> &Symbols;
  ExecConfig Cfg;
  std::map<std::string, const AsmFunction *> Funcs;

  uint64_t X[32] = {0}; ///< x0..x30; index 31 unused (sp held separately).
  uint64_t SP = 0;
  VReg128 V[32];
  struct Flags {
    bool IsFloat = false;
    unsigned Width = 4;
    int64_t A = 0, B = 0;
    double FA = 0, FB = 0;
  } Fl;

  struct Frame {
    const AsmFunction *Fn;
    size_t PC;
  };
  std::vector<Frame> Stack;
  std::string Fault;
  bool Done = false;
  uint64_t IntResult = 0;
  uint64_t FloatBits = 0;

  void fault(const std::string &Msg) {
    if (Fault.empty())
      Fault = Msg;
  }

  /// Decodes an integer register name; returns width in bytes via \p W.
  /// sp/xzr/wzr are handled by the caller where legal.
  int gprIndex(const std::string &Name, unsigned *W) {
    if (Name == "sp") {
      *W = 8;
      return -2;
    }
    if (Name == "xzr" || Name == "wzr") {
      *W = Name[0] == 'x' ? 8 : 4;
      return -3;
    }
    if (Name.size() < 2 || (Name[0] != 'w' && Name[0] != 'x')) {
      fault("bad register " + Name);
      *W = 8;
      return 0;
    }
    *W = Name[0] == 'x' ? 8 : 4;
    int N = std::atoi(Name.c_str() + 1);
    if (N < 0 || N > 30) {
      fault("bad register " + Name);
      return 0;
    }
    return N;
  }

  uint64_t readGPR(const std::string &Name) {
    unsigned W;
    int N = gprIndex(Name, &W);
    uint64_t V64 = N == -2 ? SP : N == -3 ? 0 : X[N];
    return W == 8 ? V64 : (V64 & 0xffffffffULL);
  }
  void writeGPR(const std::string &Name, uint64_t Value) {
    unsigned W;
    int N = gprIndex(Name, &W);
    if (N == -3)
      return; // Zero register.
    uint64_t V64 = W == 8 ? Value : (Value & 0xffffffffULL);
    if (N == -2)
      SP = V64;
    else
      X[N] = V64;
  }

  /// Float/vector register access: names s16 / d16 / q18 / v18.4s.
  int fpIndex(const std::string &Name, unsigned *W) {
    char C = Name[0];
    std::string Num = Name.substr(1);
    size_t Dot = Num.find('.');
    if (Dot != std::string::npos)
      Num = Num.substr(0, Dot);
    int N = std::atoi(Num.c_str());
    if (N < 0 || N > 31) {
      fault("bad fp register " + Name);
      return 0;
    }
    *W = C == 's' ? 4 : C == 'd' ? 8 : 16;
    return N;
  }

  uint64_t effAddr(const Operand &Op) {
    return readGPR(Op.BaseReg) + static_cast<uint64_t>(Op.Disp);
  }

  uint64_t readOperand(const Operand &Op, unsigned Width) {
    switch (Op.K) {
    case Operand::Reg:
      return readGPR(Op.RegName);
    case Operand::Imm:
      return static_cast<uint64_t>(Op.ImmValue) &
             (Width >= 8 ? ~0ULL : ((1ULL << (Width * 8)) - 1));
    default:
      fault("bad data operand");
      return 0;
    }
  }

  static int64_t sextVal(uint64_t V, unsigned Width) {
    switch (Width) {
    case 1:
      return static_cast<int8_t>(V);
    case 2:
      return static_cast<int16_t>(V);
    case 4:
      return static_cast<int32_t>(V);
    default:
      return static_cast<int64_t>(V);
    }
  }

  bool evalCC(const std::string &CC) {
    if (Fl.IsFloat) {
      double A = Fl.FA, B = Fl.FB;
      if (CC == "eq")
        return A == B;
      if (CC == "ne")
        return A != B;
      if (CC == "lt" || CC == "mi" || CC == "cc")
        return A < B;
      if (CC == "le" || CC == "ls")
        return A <= B;
      if (CC == "gt" || CC == "hi")
        return A > B;
      if (CC == "ge" || CC == "cs")
        return A >= B;
      fault("bad float condition " + CC);
      return false;
    }
    uint64_t Mask = Fl.Width >= 8 ? ~0ULL : ((1ULL << (Fl.Width * 8)) - 1);
    uint64_t UA = static_cast<uint64_t>(Fl.A) & Mask;
    uint64_t UB = static_cast<uint64_t>(Fl.B) & Mask;
    int64_t SA = sextVal(UA, Fl.Width), SB = sextVal(UB, Fl.Width);
    if (CC == "eq")
      return UA == UB;
    if (CC == "ne")
      return UA != UB;
    if (CC == "lt")
      return SA < SB;
    if (CC == "le")
      return SA <= SB;
    if (CC == "gt")
      return SA > SB;
    if (CC == "ge")
      return SA >= SB;
    if (CC == "cc")
      return UA < UB;
    if (CC == "ls")
      return UA <= UB;
    if (CC == "hi")
      return UA > UB;
    if (CC == "cs")
      return UA >= UB;
    fault("bad condition " + CC);
    return false;
  }

  float readF32(int N) {
    float Val;
    std::memcpy(&Val, V[N].Bytes, 4);
    return Val;
  }
  double readF64(int N) {
    double Val;
    std::memcpy(&Val, V[N].Bytes, 8);
    return Val;
  }
  void writeF32(int N, float Val) { std::memcpy(V[N].Bytes, &Val, 4); }
  void writeF64(int N, double Val) { std::memcpy(V[N].Bytes, &Val, 8); }

  void jumpTo(const std::string &Label) {
    Frame &F = Stack.back();
    auto It = F.Fn->Labels.find(Label);
    if (It == F.Fn->Labels.end()) {
      fault("unknown label " + Label);
      return;
    }
    F.PC = It->second;
  }

  void step(const AsmInstr &I);
};

void ArmMachine::step(const AsmInstr &I) {
  const std::string &M = I.Mnemonic;

  auto isFPName = [](const std::string &N) {
    return !N.empty() && (N[0] == 's' || N[0] == 'd' || N[0] == 'q' ||
                          N[0] == 'v') &&
           N != "sp" && N.size() >= 2 &&
           std::isdigit(static_cast<unsigned char>(N[1]));
  };

  // Moves and immediates.
  if (M == "mov") {
    const Operand &D = I.Ops[0];
    const Operand &S = I.Ops[1];
    unsigned W;
    if (S.K == Operand::Imm) {
      gprIndex(D.RegName, &W);
      writeGPR(D.RegName, static_cast<uint64_t>(S.ImmValue));
      return;
    }
    writeGPR(D.RegName, readGPR(S.RegName));
    return;
  }
  if (M == "movz") {
    writeGPR(I.Ops[0].RegName, static_cast<uint64_t>(I.Ops[1].ImmValue));
    return;
  }
  if (M == "movk") {
    uint64_t Shift = I.Ops.size() > 2 ? I.Ops[2].ImmValue : 0;
    uint64_t Old = readGPR(I.Ops[0].RegName);
    uint64_t Part = static_cast<uint64_t>(I.Ops[1].ImmValue) & 0xffff;
    uint64_t Mask = 0xffffULL << Shift;
    writeGPR(I.Ops[0].RegName, (Old & ~Mask) | (Part << Shift));
    return;
  }

  // Integer SIMD arithmetic (add/sub/mul v18.4s, vA.4s, vB.4s).
  if ((M == "add" || M == "sub" || M == "mul") && !I.Ops.empty() &&
      I.Ops[0].K == Operand::Reg && I.Ops[0].RegName[0] == 'v') {
    unsigned FW;
    int D = fpIndex(I.Ops[0].RegName, &FW);
    int A = fpIndex(I.Ops[1].RegName, &FW);
    int B = fpIndex(I.Ops[2].RegName, &FW);
    int32_t LA[4], LB[4];
    std::memcpy(LA, V[A].Bytes, 16);
    std::memcpy(LB, V[B].Bytes, 16);
    for (int L = 0; L < 4; ++L)
      LA[L] = M == "add"   ? LA[L] + LB[L]
              : M == "sub" ? LA[L] - LB[L]
                           : LA[L] * LB[L];
    std::memcpy(V[D].Bytes, LA, 16);
    return;
  }

  // Integer ALU.
  auto binOp = [&](auto Fn) {
    unsigned W;
    gprIndex(I.Ops[0].RegName, &W);
    uint64_t A = readOperand(I.Ops[1], W);
    uint64_t B = readOperand(I.Ops[2], W);
    writeGPR(I.Ops[0].RegName, Fn(A, B, W));
  };
  if (M == "add" && I.Ops[0].K == Operand::Reg &&
      !isFPName(I.Ops[0].RegName)) {
    // add xD, xN, :lo12:sym form.
    if (I.Ops.size() == 3 && I.Ops[2].K == Operand::Lo12) {
      auto It = Symbols.find(I.Ops[2].SymName);
      if (It == Symbols.end()) {
        fault("undefined symbol " + I.Ops[2].SymName);
        return;
      }
      writeGPR(I.Ops[0].RegName,
               readGPR(I.Ops[1].RegName) + (It->second & 0xfff));
      return;
    }
    binOp([](uint64_t A, uint64_t B, unsigned) { return A + B; });
    return;
  }
  if (M == "sub" && !isFPName(I.Ops[0].RegName)) {
    binOp([](uint64_t A, uint64_t B, unsigned) { return A - B; });
    return;
  }
  if (M == "mul" && !isFPName(I.Ops[0].RegName)) {
    binOp([](uint64_t A, uint64_t B, unsigned) { return A * B; });
    return;
  }
  if (M == "and") {
    binOp([](uint64_t A, uint64_t B, unsigned) { return A & B; });
    return;
  }
  if (M == "orr") {
    binOp([](uint64_t A, uint64_t B, unsigned) { return A | B; });
    return;
  }
  if (M == "eor") {
    binOp([](uint64_t A, uint64_t B, unsigned) { return A ^ B; });
    return;
  }
  if (M == "lsl" || M == "asr" || M == "lsr") {
    unsigned W;
    gprIndex(I.Ops[0].RegName, &W);
    uint64_t A = readOperand(I.Ops[1], W);
    uint64_t Count = readOperand(I.Ops[2], W) & (W == 8 ? 63 : 31);
    uint64_t R;
    if (M == "lsl")
      R = A << Count;
    else if (M == "lsr")
      R = (W == 4 ? (A & 0xffffffffULL) : A) >> Count;
    else
      R = static_cast<uint64_t>(sextVal(A, W) >> Count);
    writeGPR(I.Ops[0].RegName, R);
    return;
  }
  if (M == "sdiv" || M == "udiv") {
    unsigned W;
    gprIndex(I.Ops[0].RegName, &W);
    uint64_t A = readOperand(I.Ops[1], W);
    uint64_t B = readOperand(I.Ops[2], W);
    if (M == "sdiv") {
      int64_t SA = sextVal(A, W), SB = sextVal(B, W);
      // AArch64 defines x/0 = 0 (no trap); we mirror the hardware.
      int64_t Q = SB == 0 ? 0 : (SA == INT64_MIN && SB == -1) ? SA : SA / SB;
      writeGPR(I.Ops[0].RegName, static_cast<uint64_t>(Q));
    } else {
      uint64_t UA = W == 4 ? (A & 0xffffffffULL) : A;
      uint64_t UB = W == 4 ? (B & 0xffffffffULL) : B;
      writeGPR(I.Ops[0].RegName, UB == 0 ? 0 : UA / UB);
    }
    return;
  }
  if (M == "msub") {
    unsigned W;
    gprIndex(I.Ops[0].RegName, &W);
    uint64_t A = readOperand(I.Ops[1], W); // q
    uint64_t B = readOperand(I.Ops[2], W); // divisor
    uint64_t C = readOperand(I.Ops[3], W); // dividend
    writeGPR(I.Ops[0].RegName, C - A * B);
    return;
  }
  if (M == "neg") {
    unsigned W;
    gprIndex(I.Ops[0].RegName, &W);
    writeGPR(I.Ops[0].RegName, 0 - readOperand(I.Ops[1], W));
    return;
  }
  if (M == "mvn") {
    unsigned W;
    gprIndex(I.Ops[0].RegName, &W);
    writeGPR(I.Ops[0].RegName, ~readOperand(I.Ops[1], W));
    return;
  }
  if (M == "sxtw") {
    writeGPR(I.Ops[0].RegName,
             static_cast<uint64_t>(
                 static_cast<int32_t>(readGPR(I.Ops[1].RegName))));
    return;
  }
  if (M == "uxtw") {
    writeGPR(I.Ops[0].RegName, readGPR(I.Ops[1].RegName) & 0xffffffffULL);
    return;
  }

  // Memory.
  auto dataWidth = [&](const std::string &Mn,
                       const std::string &RegName) -> unsigned {
    if (Mn == "ldrb" || Mn == "strb" || Mn == "ldrsb")
      return 1;
    if (Mn == "ldrh" || Mn == "strh" || Mn == "ldrsh")
      return 2;
    char C = RegName[0];
    if (C == 'w' || C == 's')
      return 4;
    if (C == 'q')
      return 16;
    return 8;
  };
  if (M == "ldr" || M == "ldrb" || M == "ldrh" || M == "ldrsb" ||
      M == "ldrsh" || M == "ldrsw") {
    const Operand &D = I.Ops[0];
    unsigned W = M == "ldrsw" ? 4 : dataWidth(M, D.RegName);
    uint64_t Addr = effAddr(I.Ops[1]);
    if (isFPName(D.RegName)) {
      unsigned FW;
      int N = fpIndex(D.RegName, &FW);
      uint8_t Buf[16] = {0};
      Mem.loadBlock(Addr, Buf, FW);
      std::memcpy(V[N].Bytes, Buf, 16);
      return;
    }
    uint64_t Val = Mem.load(Addr, W);
    if (M == "ldrsb" || M == "ldrsh" || M == "ldrsw")
      Val = static_cast<uint64_t>(sextVal(Val, W));
    writeGPR(D.RegName, Val);
    return;
  }
  if (M == "str" || M == "strb" || M == "strh") {
    const Operand &S = I.Ops[0];
    unsigned W = dataWidth(M, S.RegName);
    uint64_t Addr = effAddr(I.Ops[1]);
    if (isFPName(S.RegName)) {
      unsigned FW;
      int N = fpIndex(S.RegName, &FW);
      Mem.storeBlock(Addr, V[N].Bytes, FW);
      return;
    }
    Mem.store(Addr, W, readGPR(S.RegName));
    return;
  }
  if (M == "stp") {
    // stp xA, xB, [sp, -N]!  (pre-indexed prologue form).
    const Operand &MemOp = I.Ops[2];
    uint64_t Base = readGPR(MemOp.BaseReg);
    uint64_t Addr = Base + static_cast<uint64_t>(MemOp.Disp);
    if (MemOp.WriteBackPre)
      writeGPR(MemOp.BaseReg, Addr);
    Mem.store(Addr, 8, readGPR(I.Ops[0].RegName));
    Mem.store(Addr + 8, 8, readGPR(I.Ops[1].RegName));
    return;
  }
  if (M == "ldp") {
    // ldp xA, xB, [sp], N  (post-indexed epilogue form) or plain.
    const Operand &MemOp = I.Ops[2];
    uint64_t Addr = effAddr(MemOp);
    writeGPR(I.Ops[0].RegName, Mem.load(Addr, 8));
    writeGPR(I.Ops[1].RegName, Mem.load(Addr + 8, 8));
    if (I.Ops.size() > 3 && I.Ops[3].K == Operand::Imm)
      writeGPR(MemOp.BaseReg, Addr + static_cast<uint64_t>(
                                         I.Ops[3].ImmValue));
    return;
  }
  if (M == "adrp") {
    auto It = Symbols.find(I.Ops[1].LabelName);
    if (It == Symbols.end()) {
      fault("undefined symbol " + I.Ops[1].LabelName);
      return;
    }
    writeGPR(I.Ops[0].RegName, It->second & ~0xfffULL);
    return;
  }

  // Compare / branches.
  if (M == "cmp") {
    unsigned W;
    gprIndex(I.Ops[0].RegName, &W);
    Fl.IsFloat = false;
    Fl.Width = W;
    Fl.A = static_cast<int64_t>(readGPR(I.Ops[0].RegName));
    Fl.B = static_cast<int64_t>(readOperand(I.Ops[1], W));
    return;
  }
  if (M == "cset") {
    writeGPR(I.Ops[0].RegName, evalCC(I.Ops[1].LabelName) ? 1 : 0);
    return;
  }
  if (M == "b") {
    jumpTo(I.Ops[0].LabelName);
    return;
  }
  if (startsWith(M, "b.")) {
    if (evalCC(M.substr(2)))
      jumpTo(I.Ops[0].LabelName);
    return;
  }
  if (M == "bl") {
    const std::string &Callee = I.Ops[0].LabelName;
    auto It = Funcs.find(Callee);
    if (It == Funcs.end()) {
      fault("call to undefined function " + Callee);
      return;
    }
    X[30] = 0xdead0000ULL + Stack.size();
    Stack.push_back({It->second, 0});
    return;
  }
  if (M == "ret") {
    Stack.pop_back();
    if (Stack.empty()) {
      Done = true;
      IntResult = X[0];
      std::memcpy(&FloatBits, V[0].Bytes, 8);
    }
    return;
  }

  // Scalar floating point.
  if (M == "fadd" || M == "fsub" || M == "fmul" || M == "fdiv") {
    unsigned W;
    int D = fpIndex(I.Ops[0].RegName, &W);
    int A = fpIndex(I.Ops[1].RegName, &W);
    int B = fpIndex(I.Ops[2].RegName, &W);
    if (I.Ops[0].RegName[0] == 'v') {
      // Vector form: add v18.4s, ...
      int32_t LA[4], LB[4];
      std::memcpy(LA, V[A].Bytes, 16);
      std::memcpy(LB, V[B].Bytes, 16);
      (void)LA;
      (void)LB;
      fault("float vector ops are not generated");
      return;
    }
    bool F32 = I.Ops[0].RegName[0] == 's';
    if (F32) {
      float X1 = readF32(A), X2 = readF32(B);
      float R = M == "fadd"   ? X1 + X2
                : M == "fsub" ? X1 - X2
                : M == "fmul" ? X1 * X2
                              : X1 / X2;
      writeF32(D, R);
    } else {
      double X1 = readF64(A), X2 = readF64(B);
      double R = M == "fadd"   ? X1 + X2
                 : M == "fsub" ? X1 - X2
                 : M == "fmul" ? X1 * X2
                               : X1 / X2;
      writeF64(D, R);
    }
    return;
  }
  if (M == "fneg") {
    unsigned W;
    int D = fpIndex(I.Ops[0].RegName, &W);
    int A = fpIndex(I.Ops[1].RegName, &W);
    if (I.Ops[0].RegName[0] == 's')
      writeF32(D, -readF32(A));
    else
      writeF64(D, -readF64(A));
    return;
  }
  if (M == "fcmp") {
    unsigned W;
    int A = fpIndex(I.Ops[0].RegName, &W);
    int B = fpIndex(I.Ops[1].RegName, &W);
    Fl.IsFloat = true;
    if (I.Ops[0].RegName[0] == 's') {
      Fl.FA = readF32(A);
      Fl.FB = readF32(B);
    } else {
      Fl.FA = readF64(A);
      Fl.FB = readF64(B);
    }
    return;
  }
  if (M == "fmov") {
    const Operand &D = I.Ops[0];
    const Operand &S = I.Ops[1];
    bool DstFP = isFPName(D.RegName);
    bool SrcFP = isFPName(S.RegName);
    if (DstFP && SrcFP) {
      unsigned W;
      int DN = fpIndex(D.RegName, &W);
      int SN = fpIndex(S.RegName, &W);
      std::memcpy(V[DN].Bytes, V[SN].Bytes, 16);
      return;
    }
    if (DstFP) {
      unsigned W;
      int DN = fpIndex(D.RegName, &W);
      uint64_t Bits = readGPR(S.RegName);
      std::memset(V[DN].Bytes, 0, 16);
      std::memcpy(V[DN].Bytes, &Bits, W);
      return;
    }
    unsigned W;
    int SN = fpIndex(S.RegName, &W);
    uint64_t Bits = 0;
    std::memcpy(&Bits, V[SN].Bytes, W);
    writeGPR(D.RegName, Bits);
    return;
  }
  if (M == "scvtf") {
    unsigned FW, GW;
    int D = fpIndex(I.Ops[0].RegName, &FW);
    gprIndex(I.Ops[1].RegName, &GW);
    int64_t Src = sextVal(readGPR(I.Ops[1].RegName), GW);
    if (FW == 4)
      writeF32(D, static_cast<float>(Src));
    else
      writeF64(D, static_cast<double>(Src));
    return;
  }
  if (M == "fcvtzs") {
    unsigned FW, GW;
    gprIndex(I.Ops[0].RegName, &GW);
    int S = fpIndex(I.Ops[1].RegName, &FW);
    double Val = FW == 4 ? readF32(S) : readF64(S);
    writeGPR(I.Ops[0].RegName,
             static_cast<uint64_t>(static_cast<int64_t>(Val)));
    return;
  }
  if (M == "fcvt") {
    unsigned DW, SW;
    int D = fpIndex(I.Ops[0].RegName, &DW);
    int S = fpIndex(I.Ops[1].RegName, &SW);
    if (DW == 8 && SW == 4)
      writeF64(D, static_cast<double>(readF32(S)));
    else
      writeF32(D, static_cast<float>(readF64(S)));
    return;
  }

  // Integer SIMD (4 x i32).
  if (M == "dup") {
    unsigned FW;
    int D = fpIndex(I.Ops[0].RegName, &FW);
    int32_t Val = static_cast<int32_t>(readGPR(I.Ops[1].RegName));
    int32_t Lanes[4] = {Val, Val, Val, Val};
    std::memcpy(V[D].Bytes, Lanes, 16);
    return;
  }

  if (M == "nop")
    return;

  fault("unsupported instruction '" + M + "'");
}

RunOutcome ArmMachine::run(const std::string &Entry, const CallArgs &Args) {
  RunOutcome Out;
  auto It = Funcs.find(Entry);
  if (It == Funcs.end()) {
    Out.K = RunOutcome::Fault;
    Out.FaultReason = "entry function not found: " + Entry;
    return Out;
  }
  SP = Cfg.StackTop;
  for (size_t A = 0; A < Args.IntArgs.size() && A < 6; ++A)
    X[A] = Args.IntArgs[A];
  for (size_t A = 0; A < Args.FloatArgs.size() && A < 4; ++A) {
    if (Args.FloatIsF32[A]) {
      float F = static_cast<float>(Args.FloatArgs[A]);
      std::memcpy(V[A].Bytes, &F, 4);
    } else {
      double D = Args.FloatArgs[A];
      std::memcpy(V[A].Bytes, &D, 8);
    }
  }
  Stack.push_back({It->second, 0});

  uint64_t Steps = 0;
  while (!Done) {
    if (++Steps > Cfg.MaxSteps) {
      Out.K = RunOutcome::Timeout;
      Out.Steps = Steps;
      return Out;
    }
    Frame &F = Stack.back();
    if (F.PC >= F.Fn->Instrs.size()) {
      fault("fell off the end of " + F.Fn->Name);
    } else {
      const AsmInstr &Ins = F.Fn->Instrs[F.PC];
      ++F.PC;
      step(Ins);
    }
    if (!Fault.empty() || Mem.faulted()) {
      Out.K = RunOutcome::Fault;
      Out.FaultReason = !Fault.empty() ? Fault : Mem.faultReason();
      Out.Steps = Steps;
      return Out;
    }
  }
  Out.K = RunOutcome::Return;
  Out.IntResult = IntResult;
  Out.FloatBits = FloatBits;
  Out.Steps = Steps;
  return Out;
}

} // namespace

RunOutcome slade::vm::runArm(const std::vector<AsmFunction> &Image,
                             const std::string &Entry, const CallArgs &Args,
                             Memory &Mem,
                             const std::map<std::string, uint64_t> &Symbols,
                             const ExecConfig &Cfg) {
  ArmMachine M(Image, Mem, Symbols, Cfg);
  return M.run(Entry, Args);
}
