//===- Interp.h - assembly interpreters -------------------------*- C++ -*-===//
///
/// \file
/// Interpreters for the x86-64 and AArch64 subsets our backends emit. They
/// execute parsed AsmFunctions over a Memory image with a symbol table for
/// globals, and a function table for direct calls (context externals are
/// loaded into the same image). A step budget turns non-termination into a
/// Timeout outcome, which the IO harness treats as non-equivalent (§III-A).
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_VM_INTERP_H
#define SLADE_VM_INTERP_H

#include "asmx/Asm.h"
#include "vm/Machine.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace slade {
namespace vm {

/// Call-ABI argument set for a simulated call.
struct CallArgs {
  std::vector<uint64_t> IntArgs;  ///< rdi..r9 / x0..x5 (pointers included).
  std::vector<double> FloatArgs;  ///< xmm0..3 / d0..d3 (bit value as double).
  std::vector<bool> FloatIsF32;   ///< Width flags parallel to FloatArgs.
};

struct ExecConfig {
  uint64_t MaxSteps = 400000;
  uint64_t StackTop = 0xf0000; ///< Initial rsp / sp.
};

/// Runs \p Entry from \p Image over \p Mem. \p Symbols maps global names
/// to addresses.
RunOutcome runX86(const std::vector<asmx::AsmFunction> &Image,
                  const std::string &Entry, const CallArgs &Args,
                  Memory &Mem, const std::map<std::string, uint64_t> &Symbols,
                  const ExecConfig &Cfg);

RunOutcome runArm(const std::vector<asmx::AsmFunction> &Image,
                  const std::string &Entry, const CallArgs &Args,
                  Memory &Mem, const std::map<std::string, uint64_t> &Symbols,
                  const ExecConfig &Cfg);

} // namespace vm
} // namespace slade

#endif // SLADE_VM_INTERP_H
