//===- Machine.h - simulated memory and run outcomes ------------*- C++ -*-===//
///
/// \file
/// Shared pieces of the two assembly interpreters: the flat memory image,
/// fault tracking, and the outcome of a simulated call. Executing
/// decompiled code in a simulator rather than natively is this repo's
/// sandbox (the paper's artifact warns IO evaluation "requires the host to
/// execute potentially unsafe code"; we never do).
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_VM_MACHINE_H
#define SLADE_VM_MACHINE_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace slade {
namespace vm {

/// Flat little-endian memory image. Addresses below GuardSize fault, as
/// do out-of-range accesses.
class Memory {
public:
  static constexpr uint64_t GuardSize = 0x1000;

  explicit Memory(size_t Size = 1 << 20) : Bytes(Size, 0) {}

  bool faulted() const { return Fault; }
  const std::string &faultReason() const { return FaultMsg; }
  void clearFault() {
    Fault = false;
    FaultMsg.clear();
  }

  bool inBounds(uint64_t Addr, unsigned Size) const {
    return Addr >= GuardSize && Addr + Size <= Bytes.size();
  }

  uint64_t load(uint64_t Addr, unsigned Size) {
    if (!inBounds(Addr, Size)) {
      fault(Addr, "load");
      return 0;
    }
    uint64_t V = 0;
    std::memcpy(&V, &Bytes[Addr], Size);
    return V;
  }

  void store(uint64_t Addr, unsigned Size, uint64_t V) {
    if (!inBounds(Addr, Size)) {
      fault(Addr, "store");
      return;
    }
    std::memcpy(&Bytes[Addr], &V, Size);
  }

  void loadBlock(uint64_t Addr, void *Dst, unsigned Size) {
    if (!inBounds(Addr, Size)) {
      fault(Addr, "load");
      std::memset(Dst, 0, Size);
      return;
    }
    std::memcpy(Dst, &Bytes[Addr], Size);
  }

  void storeBlock(uint64_t Addr, const void *Src, unsigned Size) {
    if (!inBounds(Addr, Size)) {
      fault(Addr, "store");
      return;
    }
    std::memcpy(&Bytes[Addr], Src, Size);
  }

  std::vector<uint8_t> snapshot(uint64_t Addr, unsigned Size) const {
    std::vector<uint8_t> Out(Size, 0);
    if (Addr + Size <= Bytes.size())
      std::memcpy(Out.data(), &Bytes[Addr], Size);
    return Out;
  }

  size_t size() const { return Bytes.size(); }

private:
  void fault(uint64_t Addr, const char *What) {
    if (!Fault) {
      Fault = true;
      FaultMsg = std::string("memory ") + What + " out of bounds at 0x";
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%llx",
                    static_cast<unsigned long long>(Addr));
      FaultMsg += Buf;
    }
  }

  std::vector<uint8_t> Bytes;
  bool Fault = false;
  std::string FaultMsg;
};

/// Result of simulating one call.
struct RunOutcome {
  enum Kind { Return, Fault, Timeout } K = Return;
  uint64_t IntResult = 0;  ///< rax / x0.
  uint64_t FloatBits = 0;  ///< Raw low 8 bytes of xmm0 / v0; the harness
                           ///< reinterprets per the declared return type.
  std::string FaultReason;
  uint64_t Steps = 0;
};

} // namespace vm
} // namespace slade

#endif // SLADE_VM_MACHINE_H
