//===- X86Interp.cpp - x86-64 subset interpreter ----------------------------===//

#include "vm/Interp.h"

#include "support/StringUtils.h"

#include <cstring>
#include <unordered_map>

using namespace slade;
using namespace slade::asmx;
using namespace slade::vm;

namespace {

/// GPR indices.
enum { RAX, RCX, RDX, RBX, RSP, RBP, RSI, RDI, R8, R9, R10, R11, R12,
       R13, R14, R15, NumGPR };

struct RegRef {
  int Index;
  unsigned Width; ///< Bytes.
};

const std::unordered_map<std::string, RegRef> &regTable() {
  static const std::unordered_map<std::string, RegRef> Table = [] {
    std::unordered_map<std::string, RegRef> T;
    const char *Q[] = {"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi",
                       "rdi", "r8",  "r9",  "r10", "r11", "r12", "r13",
                       "r14", "r15"};
    const char *D[] = {"eax",  "ecx",  "edx",  "ebx", "esp", "ebp",
                       "esi",  "edi",  "r8d",  "r9d", "r10d", "r11d",
                       "r12d", "r13d", "r14d", "r15d"};
    const char *W[] = {"ax",   "cx",   "dx",   "bx",  "sp",  "bp",
                       "si",   "di",   "r8w",  "r9w", "r10w", "r11w",
                       "r12w", "r13w", "r14w", "r15w"};
    const char *B[] = {"al",   "cl",   "dl",   "bl",  "spl", "bpl",
                       "sil",  "dil",  "r8b",  "r9b", "r10b", "r11b",
                       "r12b", "r13b", "r14b", "r15b"};
    for (int I = 0; I < NumGPR; ++I) {
      T[Q[I]] = {I, 8};
      T[D[I]] = {I, 4};
      T[W[I]] = {I, 2};
      T[B[I]] = {I, 1};
    }
    return T;
  }();
  return Table;
}

struct Flags {
  bool IsFloat = false;
  unsigned Width = 4;
  int64_t A = 0, B = 0;
  double FA = 0, FB = 0;
};

struct XmmReg {
  uint8_t Bytes[16] = {0};
};

class X86Machine {
public:
  X86Machine(const std::vector<AsmFunction> &Image, Memory &Mem,
             const std::map<std::string, uint64_t> &Symbols,
             const ExecConfig &Cfg)
      : Mem(Mem), Symbols(Symbols), Cfg(Cfg) {
    for (const AsmFunction &F : Image)
      Funcs[F.Name] = &F;
  }

  RunOutcome run(const std::string &Entry, const CallArgs &Args);

private:
  Memory &Mem;
  const std::map<std::string, uint64_t> &Symbols;
  ExecConfig Cfg;
  std::map<std::string, const AsmFunction *> Funcs;

  uint64_t Regs[NumGPR] = {0};
  XmmReg Xmm[8];
  Flags Fl;

  struct Frame {
    const AsmFunction *Fn;
    size_t PC;
  };
  std::vector<Frame> Stack;
  std::string Fault;
  bool Done = false;
  uint64_t IntResult = 0;
  uint64_t FloatBits = 0;

  void fault(const std::string &Msg) {
    if (Fault.empty())
      Fault = Msg;
  }

  uint64_t readReg(const RegRef &R) const {
    uint64_t V = Regs[R.Index];
    switch (R.Width) {
    case 1:
      return V & 0xff;
    case 2:
      return V & 0xffff;
    case 4:
      return V & 0xffffffffULL;
    default:
      return V;
    }
  }
  void writeReg(const RegRef &R, uint64_t V) {
    switch (R.Width) {
    case 1:
      Regs[R.Index] = (Regs[R.Index] & ~0xffULL) | (V & 0xff);
      return;
    case 2:
      Regs[R.Index] = (Regs[R.Index] & ~0xffffULL) | (V & 0xffff);
      return;
    case 4:
      Regs[R.Index] = V & 0xffffffffULL; // 32-bit writes zero-extend.
      return;
    default:
      Regs[R.Index] = V;
      return;
    }
  }

  bool isXmmName(const std::string &Name) const {
    return startsWith(Name, "xmm");
  }
  int xmmIndex(const std::string &Name) {
    int N = std::atoi(Name.c_str() + 3);
    if (N < 0 || N > 7) {
      fault("bad xmm register " + Name);
      return 0;
    }
    return N;
  }

  RegRef regRef(const Operand &Op) {
    auto It = regTable().find(Op.RegName);
    if (It == regTable().end()) {
      fault("unknown register %" + Op.RegName);
      return {RAX, 8};
    }
    return It->second;
  }

  uint64_t effAddr(const Operand &Op) {
    if (!Op.SymName.empty()) {
      auto It = Symbols.find(Op.SymName);
      if (It == Symbols.end()) {
        fault("undefined symbol " + Op.SymName);
        return 0;
      }
      return It->second + Op.Disp;
    }
    auto It = regTable().find(Op.BaseReg);
    if (It == regTable().end()) {
      fault("bad base register " + Op.BaseReg);
      return 0;
    }
    return Regs[It->second.Index] + static_cast<uint64_t>(Op.Disp);
  }

  /// Reads an operand as a zero-extended value of \p Width bytes.
  uint64_t readOp(const Operand &Op, unsigned Width) {
    switch (Op.K) {
    case Operand::Reg:
      return readReg(regRef(Op));
    case Operand::Imm:
      return static_cast<uint64_t>(Op.ImmValue) &
             (Width >= 8 ? ~0ULL : ((1ULL << (Width * 8)) - 1));
    case Operand::Mem:
      return Mem.load(effAddr(Op), Width);
    default:
      fault("bad data operand");
      return 0;
    }
  }
  void writeOp(const Operand &Op, unsigned Width, uint64_t V) {
    switch (Op.K) {
    case Operand::Reg:
      writeReg({regRef(Op).Index, Width}, V);
      return;
    case Operand::Mem:
      Mem.store(effAddr(Op), Width, V);
      return;
    default:
      fault("bad store operand");
      return;
    }
  }

  static int64_t sextVal(uint64_t V, unsigned Width) {
    switch (Width) {
    case 1:
      return static_cast<int8_t>(V);
    case 2:
      return static_cast<int16_t>(V);
    case 4:
      return static_cast<int32_t>(V);
    default:
      return static_cast<int64_t>(V);
    }
  }

  bool evalCC(const std::string &CC) {
    if (Fl.IsFloat) {
      double A = Fl.FA, B = Fl.FB;
      if (CC == "e")
        return A == B;
      if (CC == "ne")
        return A != B;
      if (CC == "b")
        return A < B;
      if (CC == "be")
        return A <= B;
      if (CC == "a")
        return A > B;
      if (CC == "ae")
        return A >= B;
      fault("bad float condition " + CC);
      return false;
    }
    uint64_t Mask = Fl.Width >= 8 ? ~0ULL : ((1ULL << (Fl.Width * 8)) - 1);
    uint64_t UA = static_cast<uint64_t>(Fl.A) & Mask;
    uint64_t UB = static_cast<uint64_t>(Fl.B) & Mask;
    int64_t SA = sextVal(UA, Fl.Width), SB = sextVal(UB, Fl.Width);
    if (CC == "e")
      return UA == UB;
    if (CC == "ne")
      return UA != UB;
    if (CC == "l")
      return SA < SB;
    if (CC == "le")
      return SA <= SB;
    if (CC == "g")
      return SA > SB;
    if (CC == "ge")
      return SA >= SB;
    if (CC == "b")
      return UA < UB;
    if (CC == "be")
      return UA <= UB;
    if (CC == "a")
      return UA > UB;
    if (CC == "ae")
      return UA >= UB;
    fault("bad condition " + CC);
    return false;
  }

  float readXmmF32(int I) {
    float V;
    std::memcpy(&V, Xmm[I].Bytes, 4);
    return V;
  }
  double readXmmF64(int I) {
    double V;
    std::memcpy(&V, Xmm[I].Bytes, 8);
    return V;
  }
  void writeXmmF32(int I, float V) { std::memcpy(Xmm[I].Bytes, &V, 4); }
  void writeXmmF64(int I, double V) { std::memcpy(Xmm[I].Bytes, &V, 8); }

  void jumpTo(const std::string &Label) {
    Frame &F = Stack.back();
    auto It = F.Fn->Labels.find(Label);
    if (It == F.Fn->Labels.end()) {
      fault("unknown label " + Label);
      return;
    }
    F.PC = It->second;
  }

  void doCall(const std::string &Callee) {
    auto It = Funcs.find(Callee);
    if (It == Funcs.end()) {
      fault("call to undefined function " + Callee);
      return;
    }
    // Push a sentinel return address like the hardware would.
    Regs[RSP] -= 8;
    Mem.store(Regs[RSP], 8, 0xdead0000ULL + Stack.size());
    Stack.push_back({It->second, 0});
  }

  void doRet() {
    Regs[RSP] += 8; // Pop the sentinel return address.
    Stack.pop_back();
    if (Stack.empty()) {
      Done = true;
      IntResult = Regs[RAX];
      std::memcpy(&FloatBits, Xmm[0].Bytes, 8);
    }
  }

  void step(const AsmInstr &I);
};

void X86Machine::step(const AsmInstr &I) {
  const std::string &M = I.Mnemonic;
  auto widthOfSuffix = [&](size_t BaseLen) -> unsigned {
    if (M.size() <= BaseLen)
      return 4;
    switch (M[BaseLen]) {
    case 'b':
      return 1;
    case 'w':
      return 2;
    case 'l':
      return 4;
    case 'q':
      return 8;
    default:
      return 4;
    }
  };

  // Plain moves (incl. movabsq) and the xmm movq form.
  if (M == "movabsq") {
    writeOp(I.Ops[1], 8, readOp(I.Ops[0], 8));
    return;
  }
  if ((M == "movq" || M == "movd") &&
      ((I.Ops[0].K == Operand::Reg && isXmmName(I.Ops[0].RegName)) ||
       (I.Ops[1].K == Operand::Reg && isXmmName(I.Ops[1].RegName)))) {
    unsigned W = M == "movd" ? 4 : 8;
    bool SrcX = I.Ops[0].K == Operand::Reg && isXmmName(I.Ops[0].RegName);
    bool DstX = I.Ops[1].K == Operand::Reg && isXmmName(I.Ops[1].RegName);
    uint64_t V = 0;
    if (SrcX)
      std::memcpy(&V, Xmm[xmmIndex(I.Ops[0].RegName)].Bytes, W);
    else
      V = readOp(I.Ops[0], W);
    if (DstX) {
      XmmReg &D = Xmm[xmmIndex(I.Ops[1].RegName)];
      std::memset(D.Bytes, 0, 16);
      std::memcpy(D.Bytes, &V, W);
    } else {
      writeOp(I.Ops[1], W, V);
    }
    return;
  }
  if (M == "movb" || M == "movw" || M == "movl" || M == "movq") {
    unsigned W = widthOfSuffix(3);
    writeOp(I.Ops[1], W, readOp(I.Ops[0], W));
    return;
  }
  if (M == "movzbl" || M == "movzwl" || M == "movsbl" || M == "movswl" ||
      M == "movslq") {
    unsigned SrcW = M[4] == 'b' ? 1 : M[4] == 'w' ? 2 : 4;
    bool Sign = M[3] == 's';
    uint64_t V = readOp(I.Ops[0], SrcW);
    unsigned DstW = M == "movslq" ? 8 : 4;
    uint64_t R = Sign ? static_cast<uint64_t>(sextVal(V, SrcW))
                      : V;
    writeOp(I.Ops[1], DstW, R);
    return;
  }
  if (M == "leaq") {
    writeOp(I.Ops[1], 8, effAddr(I.Ops[0]));
    return;
  }

  // Integer ALU.
  auto binALU = [&](size_t BaseLen, auto Fn) {
    unsigned W = widthOfSuffix(BaseLen);
    uint64_t A = readOp(I.Ops[1], W); // AT&T: dst is second.
    uint64_t B = readOp(I.Ops[0], W);
    writeOp(I.Ops[1], W, Fn(A, B, W));
  };
  if (startsWith(M, "add") && M.size() == 4) {
    binALU(3, [](uint64_t A, uint64_t B, unsigned) { return A + B; });
    return;
  }
  if (startsWith(M, "sub") && M.size() == 4) {
    binALU(3, [](uint64_t A, uint64_t B, unsigned) { return A - B; });
    return;
  }
  if (startsWith(M, "imul") && M.size() == 5) {
    binALU(4, [](uint64_t A, uint64_t B, unsigned) { return A * B; });
    return;
  }
  if (startsWith(M, "and") && M.size() == 4) {
    binALU(3, [](uint64_t A, uint64_t B, unsigned) { return A & B; });
    return;
  }
  if ((startsWith(M, "or") && M.size() == 3) || M == "orq" || M == "orl") {
    binALU(2, [](uint64_t A, uint64_t B, unsigned) { return A | B; });
    return;
  }
  if (startsWith(M, "xor") && M.size() == 4) {
    binALU(3, [](uint64_t A, uint64_t B, unsigned) { return A ^ B; });
    return;
  }
  if (startsWith(M, "neg") && M.size() == 4) {
    unsigned W = widthOfSuffix(3);
    writeOp(I.Ops[0], W, 0 - readOp(I.Ops[0], W));
    return;
  }
  if (startsWith(M, "not") && M.size() == 4) {
    unsigned W = widthOfSuffix(3);
    writeOp(I.Ops[0], W, ~readOp(I.Ops[0], W));
    return;
  }
  if ((startsWith(M, "sal") || startsWith(M, "sar") ||
       startsWith(M, "shr")) &&
      M.size() == 4) {
    unsigned W = widthOfSuffix(3);
    uint64_t Count;
    const Operand *DstOp;
    if (I.Ops.size() == 2) {
      Count = I.Ops[0].K == Operand::Imm
                  ? static_cast<uint64_t>(I.Ops[0].ImmValue)
                  : readOp(I.Ops[0], 1);
      DstOp = &I.Ops[1];
    } else {
      Count = 1;
      DstOp = &I.Ops[0];
    }
    Count &= (W == 8 ? 63 : 31);
    uint64_t V = readOp(*DstOp, W);
    uint64_t R;
    if (M[1] == 'a' && M[2] == 'l') { // sal
      R = V << Count;
    } else if (M[1] == 'a') { // sar
      R = static_cast<uint64_t>(sextVal(V, W) >> Count);
    } else { // shr
      R = V >> Count;
    }
    writeOp(*DstOp, W, R);
    return;
  }
  if (M == "cltd") {
    int32_t Eax = static_cast<int32_t>(Regs[RAX]);
    writeReg({RDX, 4}, Eax < 0 ? 0xffffffffULL : 0);
    return;
  }
  if (M == "cqto") {
    Regs[RDX] = static_cast<int64_t>(Regs[RAX]) < 0 ? ~0ULL : 0;
    return;
  }
  if (startsWith(M, "idiv") || (startsWith(M, "div") && M.size() == 4)) {
    bool Signed = M[0] == 'i';
    unsigned W = widthOfSuffix(Signed ? 4 : 3);
    uint64_t DivisorU = readOp(I.Ops[0], W);
    if (W == 4) {
      uint64_t Lo = Regs[RAX] & 0xffffffffULL;
      uint64_t Hi = Regs[RDX] & 0xffffffffULL;
      if (Signed) {
        int64_t Dividend = static_cast<int64_t>((Hi << 32) | Lo);
        int32_t Divisor = static_cast<int32_t>(DivisorU);
        if (Divisor == 0) {
          fault("integer division by zero");
          return;
        }
        int64_t Q = Dividend / Divisor, R = Dividend % Divisor;
        writeReg({RAX, 4}, static_cast<uint64_t>(Q));
        writeReg({RDX, 4}, static_cast<uint64_t>(R));
      } else {
        uint64_t Dividend = (Hi << 32) | Lo;
        uint32_t Divisor = static_cast<uint32_t>(DivisorU);
        if (Divisor == 0) {
          fault("integer division by zero");
          return;
        }
        writeReg({RAX, 4}, Dividend / Divisor);
        writeReg({RDX, 4}, Dividend % Divisor);
      }
    } else {
      if (Signed) {
        __int128 Dividend =
            (static_cast<__int128>(static_cast<int64_t>(Regs[RDX])) << 64) |
            Regs[RAX];
        int64_t Divisor = static_cast<int64_t>(DivisorU);
        if (Divisor == 0) {
          fault("integer division by zero");
          return;
        }
        Regs[RAX] = static_cast<uint64_t>(
            static_cast<int64_t>(Dividend / Divisor));
        Regs[RDX] = static_cast<uint64_t>(
            static_cast<int64_t>(Dividend % Divisor));
      } else {
        unsigned __int128 Dividend =
            (static_cast<unsigned __int128>(Regs[RDX]) << 64) | Regs[RAX];
        if (DivisorU == 0) {
          fault("integer division by zero");
          return;
        }
        Regs[RAX] = static_cast<uint64_t>(Dividend / DivisorU);
        Regs[RDX] = static_cast<uint64_t>(Dividend % DivisorU);
      }
    }
    return;
  }

  // Comparisons and conditions.
  if (startsWith(M, "cmp") && M.size() == 4) {
    unsigned W = widthOfSuffix(3);
    Fl.IsFloat = false;
    Fl.Width = W;
    Fl.B = static_cast<int64_t>(readOp(I.Ops[0], W)); // AT&T order.
    Fl.A = static_cast<int64_t>(readOp(I.Ops[1], W));
    return;
  }
  if (startsWith(M, "test") && M.size() == 5) {
    unsigned W = widthOfSuffix(4);
    uint64_t V = readOp(I.Ops[0], W) & readOp(I.Ops[1], W);
    Fl.IsFloat = false;
    Fl.Width = W;
    Fl.A = static_cast<int64_t>(V);
    Fl.B = 0;
    return;
  }
  if (startsWith(M, "set")) {
    writeOp(I.Ops[0], 1, evalCC(M.substr(3)) ? 1 : 0);
    return;
  }
  if (M == "jmp") {
    jumpTo(I.Ops[0].LabelName);
    return;
  }
  if (M[0] == 'j') {
    if (evalCC(M.substr(1)))
      jumpTo(I.Ops[0].LabelName);
    return;
  }

  // Stack and calls.
  if (M == "pushq") {
    Regs[RSP] -= 8;
    Mem.store(Regs[RSP], 8, readOp(I.Ops[0], 8));
    return;
  }
  if (M == "popq") {
    writeOp(I.Ops[0], 8, Mem.load(Regs[RSP], 8));
    Regs[RSP] += 8;
    return;
  }
  if (M == "leave") {
    Regs[RSP] = Regs[RBP];
    Regs[RBP] = Mem.load(Regs[RSP], 8);
    Regs[RSP] += 8;
    return;
  }
  if (M == "call") {
    doCall(I.Ops[0].LabelName);
    return;
  }
  if (M == "ret") {
    doRet();
    return;
  }

  // Scalar SSE.
  auto xmmOf = [&](const Operand &Op) { return xmmIndex(Op.RegName); };
  if (M == "movss" || M == "movsd") {
    unsigned W = M == "movss" ? 4 : 8;
    bool SrcX = I.Ops[0].K == Operand::Reg;
    bool DstX = I.Ops[1].K == Operand::Reg;
    uint64_t V = 0;
    if (SrcX)
      std::memcpy(&V, Xmm[xmmOf(I.Ops[0])].Bytes, W);
    else
      V = Mem.load(effAddr(I.Ops[0]), W);
    if (DstX)
      std::memcpy(Xmm[xmmOf(I.Ops[1])].Bytes, &V, W);
    else
      Mem.store(effAddr(I.Ops[1]), W, V);
    return;
  }
  auto floatBin = [&](char Op, bool F32) {
    int A = xmmOf(I.Ops[1]); // AT&T: dst second.
    if (F32) {
      float X = readXmmF32(A);
      float Y;
      if (I.Ops[0].K == Operand::Reg)
        Y = readXmmF32(xmmOf(I.Ops[0]));
      else {
        uint32_t Bits = Mem.load(effAddr(I.Ops[0]), 4);
        std::memcpy(&Y, &Bits, 4);
      }
      float R = Op == '+' ? X + Y : Op == '-' ? X - Y : Op == '*' ? X * Y
                                                                  : X / Y;
      writeXmmF32(A, R);
    } else {
      double X = readXmmF64(A);
      double Y;
      if (I.Ops[0].K == Operand::Reg)
        Y = readXmmF64(xmmOf(I.Ops[0]));
      else {
        uint64_t Bits = Mem.load(effAddr(I.Ops[0]), 8);
        std::memcpy(&Y, &Bits, 8);
      }
      double R = Op == '+' ? X + Y : Op == '-' ? X - Y : Op == '*' ? X * Y
                                                                   : X / Y;
      writeXmmF64(A, R);
    }
  };
  if (M == "addss" || M == "addsd") {
    floatBin('+', M == "addss");
    return;
  }
  if (M == "subss" || M == "subsd") {
    floatBin('-', M == "subss");
    return;
  }
  if (M == "mulss" || M == "mulsd") {
    floatBin('*', M == "mulss");
    return;
  }
  if (M == "divss" || M == "divsd") {
    floatBin('/', M == "divss");
    return;
  }
  if (M == "comiss" || M == "comisd") {
    bool F32 = M == "comiss";
    Fl.IsFloat = true;
    Fl.FA = F32 ? readXmmF32(xmmOf(I.Ops[1])) : readXmmF64(xmmOf(I.Ops[1]));
    Fl.FB = F32 ? readXmmF32(xmmOf(I.Ops[0])) : readXmmF64(xmmOf(I.Ops[0]));
    return;
  }
  if (startsWith(M, "cvtsi2")) {
    bool ToF32 = M[6] == 's' && M[7] == 's';
    unsigned SrcW = M.back() == 'q' ? 8 : 4;
    int64_t V = sextVal(readOp(I.Ops[0], SrcW), SrcW);
    int D = xmmOf(I.Ops[1]);
    if (ToF32)
      writeXmmF32(D, static_cast<float>(V));
    else
      writeXmmF64(D, static_cast<double>(V));
    return;
  }
  if (startsWith(M, "cvttss2si") || startsWith(M, "cvttsd2si")) {
    bool FromF32 = M[4] == 's' && M[5] == 's';
    unsigned DstW = M.back() == 'q' ? 8 : 4;
    double V = FromF32 ? readXmmF32(xmmOf(I.Ops[0]))
                       : readXmmF64(xmmOf(I.Ops[0]));
    int64_t R = static_cast<int64_t>(V);
    writeOp(I.Ops[1], DstW, static_cast<uint64_t>(R));
    return;
  }
  if (M == "cvtss2sd") {
    writeXmmF64(xmmOf(I.Ops[1]),
                static_cast<double>(readXmmF32(xmmOf(I.Ops[0]))));
    return;
  }
  if (M == "cvtsd2ss") {
    writeXmmF32(xmmOf(I.Ops[1]),
                static_cast<float>(readXmmF64(xmmOf(I.Ops[0]))));
    return;
  }

  // Packed integer SSE.
  if (M == "movdqu" || M == "movdqa" || M == "movups" || M == "movaps") {
    bool SrcX = I.Ops[0].K == Operand::Reg;
    bool DstX = I.Ops[1].K == Operand::Reg;
    uint8_t Buf[16];
    if (SrcX)
      std::memcpy(Buf, Xmm[xmmOf(I.Ops[0])].Bytes, 16);
    else
      Mem.loadBlock(effAddr(I.Ops[0]), Buf, 16);
    if (DstX)
      std::memcpy(Xmm[xmmOf(I.Ops[1])].Bytes, Buf, 16);
    else
      Mem.storeBlock(effAddr(I.Ops[1]), Buf, 16);
    return;
  }
  if (M == "paddd" || M == "psubd" || M == "pmulld") {
    int A = xmmOf(I.Ops[1]);
    int B = xmmOf(I.Ops[0]);
    int32_t LA[4], LB[4];
    std::memcpy(LA, Xmm[A].Bytes, 16);
    std::memcpy(LB, Xmm[B].Bytes, 16);
    for (int L = 0; L < 4; ++L)
      LA[L] = M == "paddd"   ? LA[L] + LB[L]
              : M == "psubd" ? LA[L] - LB[L]
                             : LA[L] * LB[L];
    std::memcpy(Xmm[A].Bytes, LA, 16);
    return;
  }
  if (M == "pshufd") {
    int Sel = static_cast<int>(I.Ops[0].ImmValue);
    int S = xmmOf(I.Ops[1]);
    int D = xmmOf(I.Ops[2]);
    int32_t In[4], OutL[4];
    std::memcpy(In, Xmm[S].Bytes, 16);
    for (int L = 0; L < 4; ++L)
      OutL[L] = In[(Sel >> (L * 2)) & 3];
    std::memcpy(Xmm[D].Bytes, OutL, 16);
    return;
  }
  if (M == "endbr64" || M == "nop")
    return;

  fault("unsupported instruction '" + M + "'");
}

RunOutcome X86Machine::run(const std::string &Entry, const CallArgs &Args) {
  RunOutcome Out;
  auto It = Funcs.find(Entry);
  if (It == Funcs.end()) {
    Out.K = RunOutcome::Fault;
    Out.FaultReason = "entry function not found: " + Entry;
    return Out;
  }
  Regs[RSP] = Cfg.StackTop;
  static const int ArgRegIdx[] = {RDI, RSI, RDX, RCX, R8, R9};
  for (size_t A = 0; A < Args.IntArgs.size() && A < 6; ++A)
    Regs[ArgRegIdx[A]] = Args.IntArgs[A];
  for (size_t A = 0; A < Args.FloatArgs.size() && A < 4; ++A) {
    if (Args.FloatIsF32[A])
      writeXmmF32(static_cast<int>(A),
                  static_cast<float>(Args.FloatArgs[A]));
    else
      writeXmmF64(static_cast<int>(A), Args.FloatArgs[A]);
  }
  Stack.push_back({It->second, 0});

  uint64_t Steps = 0;
  while (!Done) {
    if (++Steps > Cfg.MaxSteps) {
      Out.K = RunOutcome::Timeout;
      Out.Steps = Steps;
      return Out;
    }
    Frame &F = Stack.back();
    if (F.PC >= F.Fn->Instrs.size()) {
      fault("fell off the end of " + F.Fn->Name);
    } else {
      const AsmInstr &Ins = F.Fn->Instrs[F.PC];
      ++F.PC;
      step(Ins);
    }
    if (!Fault.empty() || Mem.faulted()) {
      Out.K = RunOutcome::Fault;
      Out.FaultReason = !Fault.empty() ? Fault : Mem.faultReason();
      Out.Steps = Steps;
      return Out;
    }
  }
  Out.K = RunOutcome::Return;
  Out.IntResult = IntResult;
  Out.FloatBits = FloatBits;
  Out.Steps = Steps;
  return Out;
}

} // namespace

RunOutcome slade::vm::runX86(const std::vector<AsmFunction> &Image,
                             const std::string &Entry, const CallArgs &Args,
                             Memory &Mem,
                             const std::map<std::string, uint64_t> &Symbols,
                             const ExecConfig &Cfg) {
  X86Machine M(Image, Mem, Symbols, Cfg);
  return M.run(Entry, Args);
}
