//===- IOHarness.cpp - input/output equivalence testing ---------------------===//

#include "vm/IOHarness.h"

#include "support/RNG.h"
#include "vm/Interp.h"

#include <algorithm>
#include <cmath>
#include <cstring>

using namespace slade;
using namespace slade::cc;
using namespace slade::vm;

namespace {

constexpr uint64_t GlobalBase = 0x20000;
constexpr uint64_t BufferBase = 0x40000;

/// Fills a pointee buffer with small deterministic values appropriate for
/// the element type. Char buffers get a NUL near the end so strlen-style
/// loops stay bounded.
void fillBuffer(std::vector<uint8_t> &Buf, const Type *Elem,
                SplitMix64 &Rng) {
  const Type *C = Elem->canonical();
  if (const auto *I = dyn_cast<IntType>(C)) {
    unsigned ES = I->bits() / 8;
    size_t N = Buf.size() / ES;
    for (size_t K = 0; K < N; ++K) {
      int64_t V = I->bits() == 8 ? Rng.range(1, 99) : Rng.range(-9, 9);
      std::memcpy(&Buf[K * ES], &V, ES);
    }
    if (I->bits() == 8 && !Buf.empty())
      Buf[Buf.size() - 1] = 0;
    return;
  }
  if (const auto *F = dyn_cast<FloatType>(C)) {
    unsigned ES = F->bits() / 8;
    size_t N = Buf.size() / ES;
    for (size_t K = 0; K < N; ++K) {
      double V = static_cast<double>(Rng.range(-16, 16)) * 0.25;
      if (F->bits() == 32) {
        float FV = static_cast<float>(V);
        std::memcpy(&Buf[K * ES], &FV, 4);
      } else {
        std::memcpy(&Buf[K * ES], &V, 8);
      }
    }
    return;
  }
  if (const auto *S = dyn_cast<StructType>(C)) {
    for (const StructType::Field &Fd : S->fields()) {
      const Type *FC = Fd.Ty->canonical();
      if (FC->isInteger()) {
        int64_t V = Rng.range(-9, 9);
        std::memcpy(&Buf[Fd.Offset], &V, std::min(8u, FC->size()));
      } else if (FC->isFloating()) {
        double V = static_cast<double>(Rng.range(-16, 16)) * 0.25;
        if (FC->size() == 4) {
          float FV = static_cast<float>(V);
          std::memcpy(&Buf[Fd.Offset], &FV, 4);
        } else {
          std::memcpy(&Buf[Fd.Offset], &V, 8);
        }
      }
      // Pointer fields stay null: functions that chase them fault
      // deterministically on both sides.
    }
    return;
  }
  // Pointer-to-pointer and other exotic pointees: zero-filled.
}

} // namespace

TestProfile slade::vm::runProfile(const std::vector<asmx::AsmFunction> &Image,
                                  const FunctionDecl &Sig,
                                  const std::vector<GlobalSpec> &Globals,
                                  asmx::Dialect D,
                                  const HarnessConfig &Cfg) {
  TestProfile Profile;

  // Fixed address plan shared by every run so out-of-bounds behaviour is
  // deterministic and comparable.
  std::map<std::string, uint64_t> Symbols;
  uint64_t GAddr = GlobalBase;
  for (const GlobalSpec &G : Globals) {
    GAddr = (GAddr + 15) & ~15ULL;
    Symbols[G.Name] = GAddr;
    GAddr += std::max(1u, G.Size);
  }

  for (int T = 0; T < Cfg.NumTests; ++T) {
    SplitMix64 Rng(Cfg.Seed * 1000003ULL + static_cast<uint64_t>(T));
    Memory Mem;
    // Globals.
    for (const GlobalSpec &G : Globals) {
      std::vector<uint8_t> Bytes(G.Size, 0);
      std::copy(G.Init.begin(),
                G.Init.begin() +
                    std::min(G.Init.size(), static_cast<size_t>(G.Size)),
                Bytes.begin());
      Mem.storeBlock(Symbols[G.Name], Bytes.data(), G.Size);
    }

    // Arguments.
    CallArgs Args;
    struct BufInfo {
      uint64_t Addr;
      unsigned Size;
    };
    std::vector<BufInfo> Buffers;
    uint64_t BAddr = BufferBase;
    for (const auto &P : Sig.Params) {
      const Type *C = P->Ty->canonical();
      if (const auto *PT = dyn_cast<PointerType>(C)) {
        const Type *Elem = PT->pointee()->canonical();
        unsigned ES = std::max(1u, Elem->size());
        unsigned Size = Elem->isStruct() ? ES * 2 : ES * Cfg.BufferElems;
        BAddr = (BAddr + 63) & ~63ULL;
        std::vector<uint8_t> Bytes(Size, 0);
        fillBuffer(Bytes, Elem, Rng);
        Mem.storeBlock(BAddr, Bytes.data(), Size);
        Buffers.push_back({BAddr, Size});
        Args.IntArgs.push_back(BAddr);
        BAddr += Size;
        continue;
      }
      if (C->isFloating()) {
        Args.FloatArgs.push_back(static_cast<double>(Rng.range(-16, 16)) *
                                 0.25);
        Args.FloatIsF32.push_back(C->size() == 4);
        continue;
      }
      // Integers: small non-negative values keep generator loops bounded
      // by construction (see dataset/Generator.cpp).
      Args.IntArgs.push_back(static_cast<uint64_t>(Rng.range(0, 8)));
    }

    ExecConfig EC;
    EC.MaxSteps = Cfg.MaxSteps;
    RunOutcome Out = D == asmx::Dialect::X86
                         ? runX86(Image, Sig.Name, Args, Mem, Symbols, EC)
                         : runArm(Image, Sig.Name, Args, Mem, Symbols, EC);

    TestResult R;
    R.K = Out.K;
    const Type *RetC = Sig.RetTy->canonical();
    R.RetVoid = RetC->isVoid();
    if (Out.K == RunOutcome::Return && !R.RetVoid) {
      if (RetC->isFloating()) {
        R.RetIsFloat = true;
        if (RetC->size() == 4) {
          float F;
          uint32_t Bits = static_cast<uint32_t>(Out.FloatBits);
          std::memcpy(&F, &Bits, 4);
          R.RetFloat = F;
        } else {
          double Dv;
          std::memcpy(&Dv, &Out.FloatBits, 8);
          R.RetFloat = Dv;
        }
      } else {
        unsigned W = std::max(1u, RetC->size());
        R.RetBits = W >= 8 ? Out.IntResult
                           : (Out.IntResult & ((1ULL << (W * 8)) - 1));
      }
    }
    if (Out.K == RunOutcome::Return) {
      for (const BufInfo &B : Buffers)
        R.Buffers.push_back(Mem.snapshot(B.Addr, B.Size));
      for (const GlobalSpec &G : Globals)
        R.Globals.push_back(Mem.snapshot(Symbols.at(G.Name), G.Size));
    }
    Profile.Tests.push_back(std::move(R));
  }
  return Profile;
}

bool slade::vm::profilesEquivalent(const TestProfile &A,
                                   const TestProfile &B) {
  if (A.Tests.size() != B.Tests.size())
    return false;
  for (size_t T = 0; T < A.Tests.size(); ++T) {
    const TestResult &X = A.Tests[T];
    const TestResult &Y = B.Tests[T];
    // Timeouts are never equivalent (undecidability guard, §III-A).
    if (X.K == RunOutcome::Timeout || Y.K == RunOutcome::Timeout)
      return false;
    if (X.K != Y.K)
      return false;
    if (X.K == RunOutcome::Fault)
      continue; // Both faulted deterministically on this input.
    if (X.RetVoid != Y.RetVoid)
      return false;
    if (!X.RetVoid) {
      if (X.RetIsFloat != Y.RetIsFloat)
        return false;
      if (X.RetIsFloat) {
        double DA = X.RetFloat, DB = Y.RetFloat;
        double Scale = std::max({1.0, std::fabs(DA), std::fabs(DB)});
        if (std::fabs(DA - DB) > 1e-6 * Scale)
          return false;
      } else if (X.RetBits != Y.RetBits) {
        return false;
      }
    }
    if (X.Buffers != Y.Buffers || X.Globals != Y.Globals)
      return false;
  }
  return true;
}
