//===- TypeInference.cpp - PsycheC-style type inference -----------------------===//

#include "typeinf/TypeInference.h"

#include "cc/Parser.h"
#include "cc/Printer.h"
#include "support/StringUtils.h"

#include <map>
#include <set>

using namespace slade;
using namespace slade::cc;
using namespace slade::typeinf;

namespace {

/// A small type lattice for inferred entities: Unknown is the bottom;
/// conflicts resolve toward Int (the observed behaviour of PsycheC's
/// defaulting on our corpus).
enum class Shape { Unknown, Int, Long, Float, Double, PointerInt,
                   PointerFloat };

const char *shapeSpelling(Shape S) {
  switch (S) {
  case Shape::Unknown:
  case Shape::Int:
    return "int";
  case Shape::Long:
    return "long";
  case Shape::Float:
    return "float";
  case Shape::Double:
    return "double";
  case Shape::PointerInt:
    return "int *";
  case Shape::PointerFloat:
    return "float *";
  }
  return "int";
}

Shape joinShape(Shape A, Shape B) {
  if (A == Shape::Unknown)
    return B;
  if (B == Shape::Unknown || A == B)
    return A;
  // Pointer evidence dominates scalar evidence; float dominates int.
  auto isPtr = [](Shape S) {
    return S == Shape::PointerInt || S == Shape::PointerFloat;
  };
  if (isPtr(A) || isPtr(B))
    return isPtr(A) ? A : B;
  if (A == Shape::Double || B == Shape::Double)
    return Shape::Double;
  if (A == Shape::Float || B == Shape::Float)
    return Shape::Float;
  if (A == Shape::Long || B == Shape::Long)
    return Shape::Long;
  return Shape::Int;
}

/// Collects constraints by walking the hypothesis AST.
class ConstraintCollector {
public:
  // Entity tables.
  std::map<std::string, Shape> NamedTypes;   ///< Unresolved typedef names.
  std::map<std::string, Shape> FreeGlobals;  ///< Undeclared identifiers.
  std::map<std::string, std::vector<Shape>> FreeCalls; ///< name -> args.
  std::map<std::string, Shape> CallReturns;
  /// Incomplete struct -> ordered (field, shape).
  std::map<std::string, std::vector<std::pair<std::string, Shape>>>
      StructFields;

  std::set<std::string> DeclaredNames; ///< Locals/params/known globals.
  std::set<std::string> KnownFunctions;
  std::set<std::string> KnownStructs;

  void walkFunction(const FunctionDecl &F) {
    Scopes.clear();
    Scopes.push_back({});
    for (const auto &P : F.Params) {
      declare(P->Name);
      noteDeclType(P->Ty);
    }
    if (F.Body)
      walkStmt(*F.Body);
    noteDeclType(F.RetTy);
  }

  void declareGlobalish(const std::string &Name) {
    DeclaredNames.insert(Name);
  }

private:
  std::vector<std::set<std::string>> Scopes;

  void declare(const std::string &Name) { Scopes.back().insert(Name); }
  bool isDeclared(const std::string &Name) const {
    for (const auto &S : Scopes)
      if (S.count(Name))
        return true;
    return DeclaredNames.count(Name) != 0;
  }

  /// Registers unresolved NamedTypes mentioned by a declared type, and
  /// seeds their shape from the syntactic context (pointer declarators
  /// force nothing; the usage pass refines).
  void noteDeclType(const Type *T) {
    const Type *C = T;
    while (true) {
      if (const auto *P = dyn_cast<PointerType>(C)) {
        C = P->pointee();
        continue;
      }
      if (const auto *A = dyn_cast<ArrayType>(C)) {
        C = A->element();
        continue;
      }
      break;
    }
    if (const auto *N = dyn_cast<NamedType>(C))
      if (!N->isResolved())
        NamedTypes[N->name()] = joinShape(NamedTypes[N->name()],
                                          Shape::Unknown);
    if (const auto *S = dyn_cast<StructType>(C))
      if (!S->isComplete() && !KnownStructs.count(S->name()))
        StructFields.emplace(S->name(),
                             std::vector<std::pair<std::string, Shape>>());
  }

  /// Shape evidence for the *type context* an expression appears in.
  Shape shapeOfType(const Type *T) {
    const Type *C = T->canonical();
    if (const auto *N = dyn_cast<NamedType>(C)) {
      (void)N;
      return Shape::Unknown;
    }
    if (C->isFloating())
      return C->size() == 4 ? Shape::Float : Shape::Double;
    if (C->isPointer()) {
      const auto *P = cast<PointerType>(C);
      return P->pointee()->canonical()->isFloating() ? Shape::PointerFloat
                                                     : Shape::PointerInt;
    }
    if (C->isInteger())
      return C->size() == 8 ? Shape::Long : Shape::Int;
    return Shape::Unknown;
  }

  void constrainExpr(const Expr *E, Shape Evidence) {
    if (!E)
      return;
    if (const auto *Ref = dyn_cast<VarRef>(E)) {
      if (!isDeclared(Ref->Name))
        FreeGlobals[Ref->Name] = joinShape(FreeGlobals[Ref->Name], Evidence);
      return;
    }
    if (const auto *C = dyn_cast<CallExpr>(E)) {
      if (!KnownFunctions.count(C->Callee)) {
        auto &Args = FreeCalls[C->Callee];
        if (Args.size() < C->Args.size())
          Args.resize(C->Args.size(), Shape::Unknown);
        CallReturns[C->Callee] =
            joinShape(CallReturns[C->Callee], Evidence);
      }
      return;
    }
    (void)Evidence;
  }

  void walkExpr(const Expr *E) {
    if (!E)
      return;
    switch (E->getKind()) {
    case ExprKind::IntLit:
    case ExprKind::FloatLit:
    case ExprKind::StringLit:
      return;
    case ExprKind::VarRef:
      constrainExpr(E, Shape::Unknown);
      return;
    case ExprKind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      if (U->Op == UnaryOp::Deref)
        constrainExpr(U->Operand.get(), Shape::PointerInt);
      walkExpr(U->Operand.get());
      return;
    }
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      // Float literals flowing across an operator are float evidence.
      if (isa<FloatLit>(B->RHS.get()))
        constrainExpr(B->LHS.get(), Shape::Double);
      if (isa<FloatLit>(B->LHS.get()))
        constrainExpr(B->RHS.get(), Shape::Double);
      walkExpr(B->LHS.get());
      walkExpr(B->RHS.get());
      return;
    }
    case ExprKind::Conditional: {
      const auto *C = cast<ConditionalExpr>(E);
      walkExpr(C->Cond.get());
      walkExpr(C->Then.get());
      walkExpr(C->Else.get());
      return;
    }
    case ExprKind::Call: {
      const auto *C = cast<CallExpr>(E);
      constrainExpr(E, Shape::Unknown);
      if (!KnownFunctions.count(C->Callee)) {
        auto &Args = FreeCalls[C->Callee];
        if (Args.size() < C->Args.size())
          Args.resize(C->Args.size(), Shape::Unknown);
        for (size_t I = 0; I < C->Args.size(); ++I) {
          Shape S = Shape::Int;
          if (const auto *Ref = dyn_cast<VarRef>(C->Args[I].get()))
            (void)Ref; // Unknown argument shape defaults to int.
          if (isa<FloatLit>(C->Args[I].get()))
            S = Shape::Double;
          Args[I] = joinShape(Args[I], S);
        }
      }
      for (const ExprPtr &A : C->Args)
        walkExpr(A.get());
      return;
    }
    case ExprKind::Index: {
      const auto *I = cast<IndexExpr>(E);
      constrainExpr(I->Base.get(), Shape::PointerInt);
      walkExpr(I->Base.get());
      walkExpr(I->Index.get());
      return;
    }
    case ExprKind::Member: {
      const auto *M = cast<MemberExpr>(E);
      // Field requests on incomplete structs are gathered in source
      // order; the struct definition is synthesized from them.
      const Type *BaseTy = nullptr;
      if (const auto *Ref = dyn_cast<VarRef>(M->Base.get()))
        (void)Ref;
      (void)BaseTy;
      PendingMembers.push_back(M);
      walkExpr(M->Base.get());
      return;
    }
    case ExprKind::Cast:
      walkExpr(cast<CastExpr>(E)->Operand.get());
      return;
    }
  }

  void walkStmt(const Stmt &S) {
    switch (S.getKind()) {
    case StmtKind::Compound:
      Scopes.push_back({});
      for (const StmtPtr &C : cast<CompoundStmt>(&S)->Body)
        walkStmt(*C);
      Scopes.pop_back();
      return;
    case StmtKind::Expr:
      walkExpr(cast<ExprStmt>(&S)->E.get());
      return;
    case StmtKind::Decl:
      for (const auto &V : cast<DeclStmt>(&S)->Decls) {
        noteDeclType(V->Ty);
        walkExpr(V->Init.get());
        declare(V->Name);
        // Record the variable's struct type for member resolution.
        LocalStructOf[V->Name] = structNameOf(V->Ty);
      }
      return;
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(&S);
      walkExpr(I->Cond.get());
      walkStmt(*I->Then);
      if (I->Else)
        walkStmt(*I->Else);
      return;
    }
    case StmtKind::While: {
      const auto *W = cast<WhileStmt>(&S);
      walkExpr(W->Cond.get());
      walkStmt(*W->Body);
      return;
    }
    case StmtKind::DoWhile: {
      const auto *D = cast<DoWhileStmt>(&S);
      walkStmt(*D->Body);
      walkExpr(D->Cond.get());
      return;
    }
    case StmtKind::For: {
      const auto *F = cast<ForStmt>(&S);
      Scopes.push_back({});
      if (F->Init)
        walkStmt(*F->Init);
      walkExpr(F->Cond.get());
      walkExpr(F->Step.get());
      walkStmt(*F->Body);
      Scopes.pop_back();
      return;
    }
    case StmtKind::Return:
      walkExpr(cast<ReturnStmt>(&S)->Value.get());
      return;
    default:
      return;
    }
  }

  static std::string structNameOf(const Type *T) {
    const Type *C = T;
    while (const auto *P = dyn_cast<PointerType>(C))
      C = P->pointee();
    if (const auto *S = dyn_cast<StructType>(C))
      return S->name();
    return std::string();
  }

public:
  std::vector<const MemberExpr *> PendingMembers;
  std::map<std::string, std::string> LocalStructOf; ///< var -> struct name.

  /// Resolves the collected member requests into struct field lists.
  void resolveMembers() {
    for (const MemberExpr *M : PendingMembers) {
      std::string SName;
      if (const auto *Ref = dyn_cast<VarRef>(M->Base.get())) {
        auto It = LocalStructOf.find(Ref->Name);
        if (It != LocalStructOf.end())
          SName = It->second;
      }
      if (SName.empty() || !StructFields.count(SName))
        continue;
      auto &Fields = StructFields[SName];
      bool Seen = false;
      for (const auto &[Name, Sh] : Fields)
        if (Name == M->Member)
          Seen = true;
      if (!Seen)
        Fields.push_back({M->Member, Shape::Int});
    }
  }
};

} // namespace

InferenceResult slade::typeinf::inferMissingDeclarations(
    const std::string &HypothesisSource, const std::string &ContextSource) {
  InferenceResult R;
  TypeContext Ctx;

  // 1. Learn what the context already provides.
  ParseOptions CtxOpts;
  CtxOpts.Partial = true;
  auto CtxTU = parseC(ContextSource, Ctx, CtxOpts);
  std::map<std::string, const Type *> KnownTypedefs;
  ConstraintCollector CC;
  if (CtxTU) {
    for (const TypedefDecl &T : (*CtxTU)->Typedefs)
      KnownTypedefs[T.Name] = T.Ty;
    for (const auto &G : (*CtxTU)->Globals)
      CC.declareGlobalish(G->Name);
    for (const auto &F : (*CtxTU)->Functions)
      CC.KnownFunctions.insert(F->Name);
    for (const StructType *S : (*CtxTU)->Structs)
      CC.KnownStructs.insert(S->name());
  }

  // 2. Parse the hypothesis in partial mode.
  ParseOptions HypOpts;
  HypOpts.Partial = true;
  HypOpts.KnownTypedefs = KnownTypedefs;
  auto HypTU = parseC(HypothesisSource, Ctx, HypOpts);
  if (!HypTU) {
    R.Error = HypTU.errorMessage();
    return R;
  }
  R.ParseOk = true;

  // The hypothesis's own top-level declarations are also "known".
  for (const auto &G : (*HypTU)->Globals)
    CC.declareGlobalish(G->Name);
  for (const auto &F : (*HypTU)->Functions)
    CC.KnownFunctions.insert(F->Name);

  // 3. Constraint generation.
  for (const auto &F : (*HypTU)->Functions)
    if (F->isDefinition()) {
      CC.walkFunction(*F);
      // Parameters typed as pointers to structs feed member resolution.
      for (const auto &P : F->Params) {
        const Type *T = P->Ty;
        while (const auto *Pt = dyn_cast<PointerType>(T))
          T = Pt->pointee();
        if (const auto *S = dyn_cast<StructType>(T))
          CC.LocalStructOf[P->Name] = S->name();
      }
    }
  CC.resolveMembers();

  // 4. Synthesize the prelude.
  std::string Prelude;
  for (const auto &[Name, Sh] : CC.NamedTypes) {
    Prelude += formatString("typedef %s %s;\n", shapeSpelling(Sh),
                            Name.c_str());
    R.NeededInference = true;
  }
  for (auto &[SName, Fields] : CC.StructFields) {
    if (CC.KnownStructs.count(SName))
      continue;
    Prelude += "struct " + SName + " {\n";
    if (Fields.empty())
      Prelude += "  int __pad;\n";
    for (const auto &[FName, Sh] : Fields)
      Prelude += formatString("  %s %s;\n", shapeSpelling(Sh),
                              FName.c_str());
    Prelude += "};\n";
    R.NeededInference = true;
  }
  for (const auto &[Name, Sh] : CC.FreeGlobals) {
    if (CC.KnownFunctions.count(Name))
      continue;
    Prelude += formatString("%s %s;\n", shapeSpelling(Sh), Name.c_str());
    R.NeededInference = true;
  }
  for (const auto &[Name, Args] : CC.FreeCalls) {
    if (CC.KnownFunctions.count(Name))
      continue;
    Shape Ret = Shape::Int;
    auto RIt = CC.CallReturns.find(Name);
    if (RIt != CC.CallReturns.end())
      Ret = RIt->second;
    std::vector<std::string> ArgSpellings;
    for (Shape A : Args)
      ArgSpellings.push_back(shapeSpelling(A == Shape::Unknown ? Shape::Int
                                                               : A));
    Prelude += formatString("extern %s %s(%s);\n",
                            shapeSpelling(Ret), Name.c_str(),
                            joinStrings(ArgSpellings, ", ").c_str());
    R.NeededInference = true;
  }
  R.Prelude = Prelude;
  return R;
}
