//===- TypeInference.h - PsycheC-style type inference -----------*- C++ -*-===//
///
/// \file
/// Reconstructs the declarations a partial C program is missing (§VI-B):
/// unknown typedef names, undeclared globals, undeclared callees, and
/// fields of incomplete structs. Mirrors PsycheC's pipeline: parse the
/// partial program (ambiguities resolved by the parser's lattice
/// heuristics), generate constraints from usage, unify, and synthesize a
/// prelude that makes the program compile without conflicting with the
/// surrounding context.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_TYPEINF_TYPEINFERENCE_H
#define SLADE_TYPEINF_TYPEINFERENCE_H

#include <string>

namespace slade {
namespace typeinf {

struct InferenceResult {
  bool ParseOk = false;
  bool NeededInference = false; ///< Something was missing and synthesized.
  std::string Prelude;          ///< Declarations to prepend.
  std::string Error;
};

/// Infers the missing declarations for \p HypothesisSource given
/// \p ContextSource (the original program's surrounding declarations).
InferenceResult inferMissingDeclarations(const std::string &HypothesisSource,
                                         const std::string &ContextSource);

} // namespace typeinf
} // namespace slade

#endif // SLADE_TYPEINF_TYPEINFERENCE_H
