//===- AST.cpp - mini-C abstract syntax tree -------------------------------===//

#include "cc/AST.h"

#include "support/Unreachable.h"

using namespace slade;
using namespace slade::cc;

bool slade::cc::isAssignOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Assign:
  case BinaryOp::AddAssign:
  case BinaryOp::SubAssign:
  case BinaryOp::MulAssign:
  case BinaryOp::DivAssign:
  case BinaryOp::RemAssign:
  case BinaryOp::AndAssign:
  case BinaryOp::OrAssign:
  case BinaryOp::XorAssign:
  case BinaryOp::ShlAssign:
  case BinaryOp::ShrAssign:
    return true;
  default:
    return false;
  }
}

BinaryOp slade::cc::strippedCompound(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::AddAssign:
    return BinaryOp::Add;
  case BinaryOp::SubAssign:
    return BinaryOp::Sub;
  case BinaryOp::MulAssign:
    return BinaryOp::Mul;
  case BinaryOp::DivAssign:
    return BinaryOp::Div;
  case BinaryOp::RemAssign:
    return BinaryOp::Rem;
  case BinaryOp::AndAssign:
    return BinaryOp::BitAnd;
  case BinaryOp::OrAssign:
    return BinaryOp::BitOr;
  case BinaryOp::XorAssign:
    return BinaryOp::BitXor;
  case BinaryOp::ShlAssign:
    return BinaryOp::Shl;
  case BinaryOp::ShrAssign:
    return BinaryOp::Shr;
  default:
    SLADE_UNREACHABLE("not a compound assignment");
  }
}

bool slade::cc::isComparisonOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Lt:
  case BinaryOp::Gt:
  case BinaryOp::Le:
  case BinaryOp::Ge:
  case BinaryOp::Eq:
  case BinaryOp::Ne:
    return true;
  default:
    return false;
  }
}

const char *slade::cc::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  case BinaryOp::Shl:
    return "<<";
  case BinaryOp::Shr:
    return ">>";
  case BinaryOp::BitAnd:
    return "&";
  case BinaryOp::BitOr:
    return "|";
  case BinaryOp::BitXor:
    return "^";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::LogAnd:
    return "&&";
  case BinaryOp::LogOr:
    return "||";
  case BinaryOp::Assign:
    return "=";
  case BinaryOp::AddAssign:
    return "+=";
  case BinaryOp::SubAssign:
    return "-=";
  case BinaryOp::MulAssign:
    return "*=";
  case BinaryOp::DivAssign:
    return "/=";
  case BinaryOp::RemAssign:
    return "%=";
  case BinaryOp::AndAssign:
    return "&=";
  case BinaryOp::OrAssign:
    return "|=";
  case BinaryOp::XorAssign:
    return "^=";
  case BinaryOp::ShlAssign:
    return "<<=";
  case BinaryOp::ShrAssign:
    return ">>=";
  case BinaryOp::Comma:
    return ",";
  }
  SLADE_UNREACHABLE("covered switch");
}

const char *slade::cc::unaryOpSpelling(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Neg:
    return "-";
  case UnaryOp::Plus:
    return "+";
  case UnaryOp::LogNot:
    return "!";
  case UnaryOp::BitNot:
    return "~";
  case UnaryOp::Deref:
    return "*";
  case UnaryOp::AddrOf:
    return "&";
  case UnaryOp::PreInc:
  case UnaryOp::PostInc:
    return "++";
  case UnaryOp::PreDec:
  case UnaryOp::PostDec:
    return "--";
  }
  SLADE_UNREACHABLE("covered switch");
}

FunctionDecl *TranslationUnit::findFunction(const std::string &Name) const {
  for (const auto &F : Functions)
    if (F->Name == Name)
      return F.get();
  return nullptr;
}

VarDecl *TranslationUnit::findGlobal(const std::string &Name) const {
  for (const auto &G : Globals)
    if (G->Name == Name)
      return G.get();
  return nullptr;
}
