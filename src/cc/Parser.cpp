//===- Parser.cpp - mini-C parser ------------------------------------------===//

#include "cc/Parser.h"

#include "cc/Lexer.h"
#include "support/StringUtils.h"
#include "support/Unreachable.h"

#include <cassert>

using namespace slade;
using namespace slade::cc;

namespace {

/// Recursive-descent parser over a pre-lexed token stream.
class Parser {
public:
  Parser(std::vector<Token> Tokens, TypeContext &Ctx,
         const ParseOptions &Options)
      : Tokens(std::move(Tokens)), Ctx(Ctx), Options(Options),
        Typedefs(Options.KnownTypedefs) {}

  Expected<std::unique_ptr<TranslationUnit>> run();

private:
  std::vector<Token> Tokens;
  size_t Pos = 0;
  TypeContext &Ctx;
  ParseOptions Options;
  std::map<std::string, const Type *> Typedefs;
  std::string Error;
  std::unique_ptr<TranslationUnit> TU;

  // -- token helpers -------------------------------------------------------
  const Token &cur() const { return Tokens[Pos]; }
  const Token &peek(size_t Ahead = 1) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  void advance() {
    if (Pos + 1 < Tokens.size())
      ++Pos;
  }
  bool accept(std::string_view Punct) {
    if (cur().isPunct(Punct)) {
      advance();
      return true;
    }
    return false;
  }
  bool acceptKw(std::string_view Kw) {
    if (cur().isKeyword(Kw)) {
      advance();
      return true;
    }
    return false;
  }
  bool expect(std::string_view Punct) {
    if (accept(Punct))
      return true;
    fail(formatString("expected '%s', found '%s'",
                      std::string(Punct).c_str(), cur().Text.c_str()));
    return false;
  }
  void fail(const std::string &Msg) {
    if (Error.empty())
      Error = formatString("line %d: %s", cur().Line, Msg.c_str());
  }
  bool failed() const { return !Error.empty(); }

  // -- types ---------------------------------------------------------------
  bool isTypeStart() const;
  bool isKnownTypeName(const std::string &Name) const {
    return Typedefs.count(Name) != 0 || Ctx.findNamed(Name) != nullptr;
  }
  const Type *parseTypeSpecifier();
  const Type *parseDeclaratorPointers(const Type *Base);
  const Type *parseTypeName(); // type-specifier + abstract declarator

  // -- declarations --------------------------------------------------------
  void parseTopLevel();
  void parseTypedef();
  StructType *parseStructSpecifier();
  void parseFunctionOrGlobal(bool IsExtern);
  std::unique_ptr<FunctionDecl> parseFunctionRest(const Type *RetTy,
                                                  std::string Name);
  std::unique_ptr<DeclStmt> parseLocalDecl();

  // -- statements ----------------------------------------------------------
  StmtPtr parseStmt();
  std::unique_ptr<CompoundStmt> parseCompound();
  bool startsLocalDecl() const;

  // -- expressions ---------------------------------------------------------
  ExprPtr parseExpr();       // includes comma
  ExprPtr parseAssign();     // assignment-expression
  ExprPtr parseConditional();
  ExprPtr parseBinaryRHS(int MinPrec, ExprPtr LHS);
  ExprPtr parseUnary();
  ExprPtr parsePostfix(ExprPtr Base);
  ExprPtr parsePrimary();
  bool looksLikeCast() const;
};

} // namespace

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

static bool isBuiltinTypeKeyword(const Token &T) {
  return T.isKeyword("void") || T.isKeyword("char") || T.isKeyword("short") ||
         T.isKeyword("int") || T.isKeyword("long") || T.isKeyword("float") ||
         T.isKeyword("double") || T.isKeyword("signed") ||
         T.isKeyword("unsigned") || T.isKeyword("_Bool");
}

static bool isIgnoredQualifier(const Token &T) {
  return T.isKeyword("const") || T.isKeyword("volatile") ||
         T.isKeyword("restrict") || T.isKeyword("__restrict") ||
         T.isKeyword("inline") || T.isKeyword("register") ||
         T.isKeyword("static");
}

bool Parser::isTypeStart() const {
  const Token &T = cur();
  if (isBuiltinTypeKeyword(T) || T.isKeyword("struct") ||
      isIgnoredQualifier(T))
    return true;
  if (T.isIdent() && Typedefs.count(T.Text))
    return true;
  return false;
}

const Type *Parser::parseTypeSpecifier() {
  while (isIgnoredQualifier(cur()))
    advance();

  if (cur().isKeyword("struct")) {
    StructType *S = parseStructSpecifier();
    return S;
  }

  if (cur().isIdent()) {
    std::string Name = cur().Text;
    auto It = Typedefs.find(Name);
    if (It != Typedefs.end()) {
      advance();
      return It->second;
    }
    if (Options.Partial) {
      advance();
      return Ctx.getOrCreateNamed(Name);
    }
    fail(formatString("unknown type name '%s'", Name.c_str()));
    return Ctx.int32Ty();
  }

  // Builtin combinations: {signed|unsigned}? {void|char|short|int|long|
  // long long|float|double}.
  bool SawUnsigned = false, SawSigned = false;
  int Longs = 0;
  bool SawShort = false, SawChar = false, SawInt = false, SawVoid = false;
  bool SawFloat = false, SawDouble = false, SawBool = false;
  bool SawAny = false;
  while (true) {
    if (acceptKw("unsigned")) {
      SawUnsigned = true;
    } else if (acceptKw("signed")) {
      SawSigned = true;
    } else if (acceptKw("long")) {
      ++Longs;
    } else if (acceptKw("short")) {
      SawShort = true;
    } else if (acceptKw("char")) {
      SawChar = true;
    } else if (acceptKw("int")) {
      SawInt = true;
    } else if (acceptKw("void")) {
      SawVoid = true;
    } else if (acceptKw("float")) {
      SawFloat = true;
    } else if (acceptKw("double")) {
      SawDouble = true;
    } else if (acceptKw("_Bool")) {
      SawBool = true;
    } else if (isIgnoredQualifier(cur())) {
      advance();
      continue;
    } else {
      break;
    }
    SawAny = true;
  }
  if (!SawAny) {
    fail(formatString("expected type, found '%s'", cur().Text.c_str()));
    return Ctx.int32Ty();
  }
  (void)SawSigned;
  (void)SawInt;
  if (SawVoid)
    return Ctx.voidTy();
  if (SawFloat)
    return Ctx.floatTy();
  if (SawDouble)
    return Ctx.doubleTy();
  if (SawBool)
    return Ctx.intTy(8, false);
  if (SawChar)
    return Ctx.intTy(8, !SawUnsigned);
  if (SawShort)
    return Ctx.intTy(16, !SawUnsigned);
  if (Longs > 0)
    return Ctx.intTy(64, !SawUnsigned);
  return Ctx.intTy(32, !SawUnsigned);
}

const Type *Parser::parseDeclaratorPointers(const Type *Base) {
  const Type *T = Base;
  while (accept("*")) {
    T = Ctx.pointerTo(T);
    while (isIgnoredQualifier(cur()))
      advance();
  }
  return T;
}

const Type *Parser::parseTypeName() {
  const Type *T = parseTypeSpecifier();
  T = parseDeclaratorPointers(T);
  // Abstract array declarators are not supported (not needed).
  return T;
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

StructType *Parser::parseStructSpecifier() {
  assert(cur().isKeyword("struct") && "caller checks");
  advance();
  if (!cur().isIdent()) {
    fail("anonymous structs are not supported");
    return Ctx.getOrCreateStruct("__anon");
  }
  std::string Name = cur().Text;
  advance();
  StructType *S = Ctx.getOrCreateStruct(Name);
  if (!accept("{"))
    return S;

  if (S->isComplete()) {
    fail(formatString("redefinition of struct %s", Name.c_str()));
    return S;
  }
  std::vector<StructType::Field> Fields;
  while (!cur().isPunct("}") && !cur().is(TokKind::Eof) && !failed()) {
    const Type *FieldBase = parseTypeSpecifier();
    // One or more declarators separated by commas.
    while (true) {
      const Type *FieldTy = parseDeclaratorPointers(FieldBase);
      if (!cur().isIdent()) {
        fail("expected field name");
        break;
      }
      std::string FieldName = cur().Text;
      advance();
      if (accept("[")) {
        if (!cur().is(TokKind::IntLiteral)) {
          fail("expected constant array size");
          break;
        }
        uint64_t Count = cur().IntValue;
        advance();
        expect("]");
        FieldTy = Ctx.arrayOf(FieldTy, Count);
      }
      Fields.push_back({FieldName, FieldTy, 0});
      if (!accept(","))
        break;
    }
    expect(";");
  }
  expect("}");
  if (!failed()) {
    S->setFields(std::move(Fields));
    TU->Structs.push_back(S);
  }
  return S;
}

void Parser::parseTypedef() {
  assert(cur().isKeyword("typedef") && "caller checks");
  advance();
  const Type *Base = parseTypeSpecifier();
  const Type *T = parseDeclaratorPointers(Base);
  if (!cur().isIdent()) {
    fail("expected typedef name");
    return;
  }
  std::string Name = cur().Text;
  advance();
  expect(";");
  Typedefs[Name] = T;
  TU->Typedefs.push_back({Name, T});
  // If a hypothesis earlier used this name as an unknown type, resolve it.
  if (NamedType *N = Ctx.findNamed(Name))
    if (!N->isResolved())
      N->resolve(T);
}

void Parser::parseTopLevel() {
  if (acceptKw("typedef")) {
    --Pos; // parseTypedef re-checks the keyword.
    parseTypedef();
    return;
  }
  if (cur().isKeyword("struct") && peek().isIdent() && peek(2).isPunct("{")) {
    parseStructSpecifier();
    expect(";");
    return;
  }
  bool IsExtern = false;
  while (acceptKw("extern"))
    IsExtern = true;
  parseFunctionOrGlobal(IsExtern);
}

void Parser::parseFunctionOrGlobal(bool IsExtern) {
  const Type *Base = parseTypeSpecifier();
  if (failed())
    return;
  const Type *T = parseDeclaratorPointers(Base);
  if (!cur().isIdent()) {
    fail(formatString("expected declarator, found '%s'", cur().Text.c_str()));
    return;
  }
  std::string Name = cur().Text;
  advance();

  if (cur().isPunct("(")) {
    auto F = parseFunctionRest(T, std::move(Name));
    if (F)
      TU->Functions.push_back(std::move(F));
    return;
  }

  // Global variable(s).
  while (!failed()) {
    const Type *VarTy = T;
    if (accept("[")) {
      if (!cur().is(TokKind::IntLiteral)) {
        fail("expected constant array size");
        return;
      }
      uint64_t Count = cur().IntValue;
      advance();
      expect("]");
      VarTy = Ctx.arrayOf(VarTy, Count);
    }
    auto G = std::make_unique<VarDecl>(Name, VarTy);
    G->IsGlobal = true;
    G->IsExtern = IsExtern;
    if (accept("="))
      G->Init = parseAssign();
    TU->Globals.push_back(std::move(G));
    if (!accept(","))
      break;
    const Type *Next = parseDeclaratorPointers(T);
    if (!cur().isIdent()) {
      fail("expected declarator after ','");
      return;
    }
    Name = cur().Text;
    T = Next;
    advance();
  }
  expect(";");
}

std::unique_ptr<FunctionDecl> Parser::parseFunctionRest(const Type *RetTy,
                                                        std::string Name) {
  expect("(");
  auto F = std::make_unique<FunctionDecl>(std::move(Name), RetTy);
  if (!accept(")")) {
    if (cur().isKeyword("void") && peek().isPunct(")")) {
      advance();
      advance();
    } else {
      while (!failed()) {
        const Type *PBase = parseTypeSpecifier();
        const Type *PTy = parseDeclaratorPointers(PBase);
        std::string PName;
        if (cur().isIdent()) {
          PName = cur().Text;
          advance();
        } else {
          PName = formatString("__arg%zu", F->Params.size());
        }
        // Array parameters decay to pointers.
        if (accept("[")) {
          if (cur().is(TokKind::IntLiteral))
            advance();
          expect("]");
          PTy = Ctx.pointerTo(PTy);
        }
        auto P = std::make_unique<VarDecl>(PName, PTy);
        P->IsParam = true;
        F->Params.push_back(std::move(P));
        if (!accept(","))
          break;
      }
      expect(")");
    }
  }
  if (accept(";"))
    return F; // Declaration only.
  F->Body = parseCompound();
  return F;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

bool Parser::startsLocalDecl() const {
  if (isTypeStart())
    return true;
  if (!Options.Partial || !cur().isIdent() || isCKeyword(cur().Text))
    return false;
  // Partial-mode heuristic for `UnknownType x ...` and `UnknownType *x ...`:
  // prefer a declaration when the shape is unambiguous.
  if (isKnownTypeName(cur().Text) &&
      (peek().isIdent() || peek().isPunct("*")))
    return true;
  if (peek().isIdent() &&
      (peek(2).isPunct(";") || peek(2).isPunct("=") || peek(2).isPunct(",") ||
       peek(2).isPunct("[")))
    return true;
  if (peek().isPunct("*") && peek(2).isIdent() &&
      (peek(3).isPunct(";") || peek(3).isPunct("=") || peek(3).isPunct(",")))
    return true;
  return false;
}

std::unique_ptr<DeclStmt> Parser::parseLocalDecl() {
  auto DS = std::make_unique<DeclStmt>();
  const Type *Base = parseTypeSpecifier();
  while (!failed()) {
    const Type *T = parseDeclaratorPointers(Base);
    if (!cur().isIdent()) {
      fail("expected variable name");
      break;
    }
    std::string Name = cur().Text;
    advance();
    while (accept("[")) {
      if (!cur().is(TokKind::IntLiteral)) {
        fail("expected constant array size");
        return DS;
      }
      uint64_t Count = cur().IntValue;
      advance();
      expect("]");
      T = Ctx.arrayOf(T, Count);
    }
    auto V = std::make_unique<VarDecl>(Name, T);
    if (accept("="))
      V->Init = parseAssign();
    DS->Decls.push_back(std::move(V));
    if (!accept(","))
      break;
  }
  expect(";");
  return DS;
}

std::unique_ptr<CompoundStmt> Parser::parseCompound() {
  expect("{");
  auto C = std::make_unique<CompoundStmt>();
  while (!cur().isPunct("}") && !cur().is(TokKind::Eof) && !failed())
    C->Body.push_back(parseStmt());
  expect("}");
  return C;
}

StmtPtr Parser::parseStmt() {
  if (cur().isPunct("{"))
    return parseCompound();
  if (accept(";"))
    return std::make_unique<EmptyStmt>();

  if (acceptKw("if")) {
    expect("(");
    ExprPtr Cond = parseExpr();
    expect(")");
    StmtPtr Then = parseStmt();
    StmtPtr Else;
    if (acceptKw("else"))
      Else = parseStmt();
    return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                    std::move(Else));
  }
  if (acceptKw("while")) {
    expect("(");
    ExprPtr Cond = parseExpr();
    expect(")");
    StmtPtr Body = parseStmt();
    return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body));
  }
  if (acceptKw("do")) {
    StmtPtr Body = parseStmt();
    if (!acceptKw("while"))
      fail("expected 'while' after do-body");
    expect("(");
    ExprPtr Cond = parseExpr();
    expect(")");
    expect(";");
    return std::make_unique<DoWhileStmt>(std::move(Body), std::move(Cond));
  }
  if (acceptKw("for")) {
    expect("(");
    StmtPtr Init;
    if (!accept(";")) {
      if (startsLocalDecl()) {
        Init = parseLocalDecl();
      } else {
        Init = std::make_unique<ExprStmt>(parseExpr());
        expect(";");
      }
    }
    ExprPtr Cond;
    if (!cur().isPunct(";"))
      Cond = parseExpr();
    expect(";");
    ExprPtr Step;
    if (!cur().isPunct(")"))
      Step = parseExpr();
    expect(")");
    StmtPtr Body = parseStmt();
    return std::make_unique<ForStmt>(std::move(Init), std::move(Cond),
                                     std::move(Step), std::move(Body));
  }
  if (acceptKw("return")) {
    ExprPtr Value;
    if (!cur().isPunct(";"))
      Value = parseExpr();
    expect(";");
    return std::make_unique<ReturnStmt>(std::move(Value));
  }
  if (acceptKw("break")) {
    expect(";");
    return std::make_unique<BreakStmt>();
  }
  if (acceptKw("continue")) {
    expect(";");
    return std::make_unique<ContinueStmt>();
  }

  if (startsLocalDecl())
    return parseLocalDecl();

  ExprPtr E = parseExpr();
  expect(";");
  return std::make_unique<ExprStmt>(std::move(E));
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpr() {
  ExprPtr E = parseAssign();
  while (cur().isPunct(",") && !failed()) {
    advance();
    ExprPtr RHS = parseAssign();
    E = std::make_unique<BinaryExpr>(BinaryOp::Comma, std::move(E),
                                     std::move(RHS));
  }
  return E;
}

ExprPtr Parser::parseAssign() {
  ExprPtr LHS = parseConditional();
  static const std::pair<const char *, BinaryOp> AssignOps[] = {
      {"=", BinaryOp::Assign},      {"+=", BinaryOp::AddAssign},
      {"-=", BinaryOp::SubAssign},  {"*=", BinaryOp::MulAssign},
      {"/=", BinaryOp::DivAssign},  {"%=", BinaryOp::RemAssign},
      {"&=", BinaryOp::AndAssign},  {"|=", BinaryOp::OrAssign},
      {"^=", BinaryOp::XorAssign},  {"<<=", BinaryOp::ShlAssign},
      {">>=", BinaryOp::ShrAssign},
  };
  for (const auto &[Spelling, Op] : AssignOps) {
    if (cur().isPunct(Spelling)) {
      advance();
      ExprPtr RHS = parseAssign(); // Right-associative.
      return std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS));
    }
  }
  return LHS;
}

ExprPtr Parser::parseConditional() {
  ExprPtr Cond = parseBinaryRHS(0, parseUnary());
  if (!accept("?"))
    return Cond;
  ExprPtr Then = parseExpr();
  expect(":");
  ExprPtr Else = parseConditional();
  return std::make_unique<ConditionalExpr>(std::move(Cond), std::move(Then),
                                           std::move(Else));
}

/// Binary operator precedence (C levels, conditional handled separately).
static int binOpPrec(const Token &T, BinaryOp *Op) {
  if (!T.is(TokKind::Punct))
    return -1;
  struct Entry {
    const char *Spelling;
    BinaryOp Op;
    int Prec;
  };
  static const Entry Table[] = {
      {"||", BinaryOp::LogOr, 1},   {"&&", BinaryOp::LogAnd, 2},
      {"|", BinaryOp::BitOr, 3},    {"^", BinaryOp::BitXor, 4},
      {"&", BinaryOp::BitAnd, 5},   {"==", BinaryOp::Eq, 6},
      {"!=", BinaryOp::Ne, 6},      {"<", BinaryOp::Lt, 7},
      {">", BinaryOp::Gt, 7},       {"<=", BinaryOp::Le, 7},
      {">=", BinaryOp::Ge, 7},      {"<<", BinaryOp::Shl, 8},
      {">>", BinaryOp::Shr, 8},     {"+", BinaryOp::Add, 9},
      {"-", BinaryOp::Sub, 9},      {"*", BinaryOp::Mul, 10},
      {"/", BinaryOp::Div, 10},     {"%", BinaryOp::Rem, 10},
  };
  for (const Entry &E : Table) {
    if (T.Text == E.Spelling) {
      *Op = E.Op;
      return E.Prec;
    }
  }
  return -1;
}

ExprPtr Parser::parseBinaryRHS(int MinPrec, ExprPtr LHS) {
  while (!failed()) {
    BinaryOp Op;
    int Prec = binOpPrec(cur(), &Op);
    if (Prec < MinPrec || Prec == -1)
      return LHS;
    advance();
    ExprPtr RHS = parseUnary();
    BinaryOp NextOp;
    int NextPrec = binOpPrec(cur(), &NextOp);
    if (NextPrec > Prec)
      RHS = parseBinaryRHS(Prec + 1, std::move(RHS));
    LHS = std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS));
  }
  return LHS;
}

bool Parser::looksLikeCast() const {
  // Called with cur() == '('. Decides whether this opens a cast.
  const Token &T1 = peek(1);
  if (isBuiltinTypeKeyword(T1) || T1.isKeyword("struct") ||
      isIgnoredQualifier(T1))
    return true;
  if (!T1.isIdent())
    return false;
  bool Known = Typedefs.count(T1.Text) != 0;
  bool SeenAsType = Options.Partial && Ctx.findNamed(T1.Text) != nullptr;
  if (!Known && !SeenAsType) {
    // `(name *)` is a cast even for an unknown name.
    return Options.Partial && peek(2).isPunct("*") &&
           (peek(3).isPunct(")") || peek(3).isPunct("*"));
  }
  // Known type name: `(name)` or `(name*...)` followed by ')' is a cast.
  size_t I = 2;
  while (peek(I).isPunct("*"))
    ++I;
  return peek(I).isPunct(")");
}

ExprPtr Parser::parseUnary() {
  if (cur().isPunct("(") && looksLikeCast()) {
    advance();
    const Type *T = parseTypeName();
    expect(")");
    ExprPtr Operand = parseUnary();
    return std::make_unique<CastExpr>(T, std::move(Operand));
  }

  static const std::pair<const char *, UnaryOp> UnaryOps[] = {
      {"-", UnaryOp::Neg},    {"+", UnaryOp::Plus},  {"!", UnaryOp::LogNot},
      {"~", UnaryOp::BitNot}, {"*", UnaryOp::Deref}, {"&", UnaryOp::AddrOf},
  };
  for (const auto &[Spelling, Op] : UnaryOps) {
    if (cur().isPunct(Spelling)) {
      advance();
      return std::make_unique<UnaryExpr>(Op, parseUnary());
    }
  }
  if (accept("++"))
    return std::make_unique<UnaryExpr>(UnaryOp::PreInc, parseUnary());
  if (accept("--"))
    return std::make_unique<UnaryExpr>(UnaryOp::PreDec, parseUnary());

  if (acceptKw("sizeof")) {
    // sizeof(type) folds to a constant immediately. For an unresolved
    // named type we assume 4 bytes (documented approximation; the strict
    // re-parse after type inference sees the resolved type and folds
    // exactly).
    if (cur().isPunct("(") && looksLikeCast()) {
      advance();
      const Type *T = parseTypeName();
      expect(")");
      unsigned Size = 4;
      if (!(T->isNamed() && !cast<NamedType>(T)->isResolved()))
        Size = T->size();
      return std::make_unique<IntLit>(static_cast<int64_t>(Size), true);
    }
    ExprPtr Operand = parseUnary();
    // sizeof expr: folded during Sema via a cast-free marker is overkill;
    // encode as sizeof of the expression's type at Sema time. We keep the
    // operand inside a unary marker using BitNot? No: represent via
    // Conditional would be worse. We fold to 4 here only if we cannot do
    // better; Sema-level folding handles the common cases by re-walking.
    // To keep the AST simple we approximate sizeof(expr) by the size of
    // the expression type after Sema; Parser wraps it:
    auto Wrapper = std::make_unique<UnaryExpr>(UnaryOp::Plus,
                                               std::move(Operand));
    // Mark with a call "sizeof" so Sema can fold precisely.
    std::vector<ExprPtr> Args;
    Args.push_back(std::move(Wrapper));
    return std::make_unique<CallExpr>("__builtin_sizeof", std::move(Args));
  }

  return parsePostfix(parsePrimary());
}

ExprPtr Parser::parsePostfix(ExprPtr Base) {
  while (!failed()) {
    if (accept("[")) {
      ExprPtr Index = parseExpr();
      expect("]");
      Base = std::make_unique<IndexExpr>(std::move(Base), std::move(Index));
      continue;
    }
    if (accept(".")) {
      if (!cur().isIdent()) {
        fail("expected member name after '.'");
        return Base;
      }
      std::string Member = cur().Text;
      advance();
      Base = std::make_unique<MemberExpr>(std::move(Base), std::move(Member),
                                          /*IsArrow=*/false);
      continue;
    }
    if (accept("->")) {
      if (!cur().isIdent()) {
        fail("expected member name after '->'");
        return Base;
      }
      std::string Member = cur().Text;
      advance();
      Base = std::make_unique<MemberExpr>(std::move(Base), std::move(Member),
                                          /*IsArrow=*/true);
      continue;
    }
    if (accept("++")) {
      Base = std::make_unique<UnaryExpr>(UnaryOp::PostInc, std::move(Base));
      continue;
    }
    if (accept("--")) {
      Base = std::make_unique<UnaryExpr>(UnaryOp::PostDec, std::move(Base));
      continue;
    }
    if (cur().isPunct("(")) {
      // Calls are only supported on direct names.
      auto *Ref = dyn_cast<VarRef>(Base.get());
      if (!Ref) {
        fail("indirect calls are not supported");
        return Base;
      }
      advance();
      std::vector<ExprPtr> Args;
      if (!accept(")")) {
        while (!failed()) {
          Args.push_back(parseAssign());
          if (!accept(","))
            break;
        }
        expect(")");
      }
      Base = std::make_unique<CallExpr>(Ref->Name, std::move(Args));
      continue;
    }
    return Base;
  }
  return Base;
}

ExprPtr Parser::parsePrimary() {
  const Token &T = cur();
  switch (T.Kind) {
  case TokKind::IntLiteral: {
    bool IsUnsigned = T.IntValue > 0x7fffffffffffffffULL;
    auto E = std::make_unique<IntLit>(static_cast<int64_t>(T.IntValue),
                                      IsUnsigned);
    advance();
    return E;
  }
  case TokKind::CharLiteral: {
    auto E = std::make_unique<IntLit>(static_cast<int64_t>(T.IntValue));
    advance();
    return E;
  }
  case TokKind::FloatLiteral: {
    bool IsFloat = T.Text.find('f') != std::string::npos ||
                   T.Text.find('F') != std::string::npos;
    auto E = std::make_unique<FloatLit>(T.FloatValue, IsFloat);
    advance();
    return E;
  }
  case TokKind::StringLiteral: {
    auto E = std::make_unique<StringLit>(T.StrValue);
    advance();
    return E;
  }
  case TokKind::Identifier: {
    auto E = std::make_unique<VarRef>(T.Text);
    advance();
    return E;
  }
  case TokKind::Punct:
    if (T.Text == "(") {
      advance();
      ExprPtr E = parseExpr();
      expect(")");
      return E;
    }
    break;
  default:
    break;
  }
  fail(formatString("expected expression, found '%s'", T.Text.c_str()));
  return std::make_unique<IntLit>(0);
}

//===----------------------------------------------------------------------===//
// Entry point
//===----------------------------------------------------------------------===//

Expected<std::unique_ptr<TranslationUnit>> Parser::run() {
  TU = std::make_unique<TranslationUnit>();
  while (!cur().is(TokKind::Eof) && !failed()) {
    if (accept(";"))
      continue;
    parseTopLevel();
  }
  if (failed())
    return Expected<std::unique_ptr<TranslationUnit>>::error(Error);
  return std::move(TU);
}

Expected<std::unique_ptr<TranslationUnit>>
slade::cc::parseC(const std::string &Source, TypeContext &Ctx,
                  const ParseOptions &Options) {
  std::string LexError;
  std::vector<Token> Tokens =
      lexC(Source, /*Tolerant=*/Options.Partial, &LexError);
  if (!LexError.empty())
    return Expected<std::unique_ptr<TranslationUnit>>::error(LexError);
  Parser P(std::move(Tokens), Ctx, Options);
  return P.run();
}
