//===- Sema.h - mini-C semantic analysis ------------------------*- C++ -*-===//
///
/// \file
/// Type checking and name resolution for parsed translation units. Sema
/// resolves VarRef/Call declarations, computes expression types with the
/// usual arithmetic conversions, applies array decay, marks lvalues, folds
/// `__builtin_sizeof`, and validates control flow. All types must be
/// resolvable: unresolved NamedTypes are errors (run type inference first).
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_CC_SEMA_H
#define SLADE_CC_SEMA_H

#include "cc/AST.h"
#include "support/Error.h"

namespace slade {
namespace cc {

/// Type-checks \p TU in place. Returns the first diagnostic on failure.
Status analyze(TranslationUnit &TU, TypeContext &Ctx);

} // namespace cc
} // namespace slade

#endif // SLADE_CC_SEMA_H
