//===- Lexer.cpp - mini-C lexer --------------------------------------------===//

#include "cc/Lexer.h"

#include "support/StringUtils.h"

#include <cctype>
#include <cstdlib>
#include <set>

using namespace slade;
using namespace slade::cc;

bool slade::cc::isCKeyword(std::string_view Name) {
  static const std::set<std::string, std::less<>> Keywords = {
      "void",     "char",   "short",    "int",      "long",   "float",
      "double",   "signed", "unsigned", "if",       "else",   "while",
      "for",      "do",     "return",   "break",    "continue", "struct",
      "typedef",  "sizeof", "extern",   "static",   "const",  "volatile",
      "restrict", "inline", "register", "__restrict", "union", "enum",
      "switch",   "case",   "default",  "goto",     "_Bool"};
  return Keywords.count(Name) != 0;
}

namespace {

/// Internal cursor over the source text.
class Cursor {
public:
  Cursor(std::string_view Source) : Src(Source) {}

  bool atEnd() const { return Pos >= Src.size(); }
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = Src[Pos++];
    if (C == '\n')
      ++Line;
    return C;
  }
  int line() const { return Line; }

private:
  std::string_view Src;
  size_t Pos = 0;
  int Line = 1;
};

} // namespace

static bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}
static bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

/// Multi-character punctuators, longest first so maximal munch works.
static const char *const MultiPuncts[] = {
    "<<=", ">>=", "...", "->", "++", "--", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",
};

static char decodeEscape(char C) {
  switch (C) {
  case 'n':
    return '\n';
  case 't':
    return '\t';
  case 'r':
    return '\r';
  case '0':
    return '\0';
  case '\\':
    return '\\';
  case '\'':
    return '\'';
  case '"':
    return '"';
  default:
    return C;
  }
}

std::vector<Token> slade::cc::lexC(std::string_view Source, bool Tolerant,
                                   std::string *Error) {
  std::vector<Token> Tokens;
  if (Error)
    Error->clear();
  Cursor Cur(Source);

  auto fail = [&](const std::string &Msg, int Line) {
    if (Error && Error->empty())
      *Error = formatString("line %d: %s", Line, Msg.c_str());
  };

  while (!Cur.atEnd()) {
    char C = Cur.peek();
    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(C))) {
      Cur.advance();
      continue;
    }
    // Comments.
    if (C == '/' && Cur.peek(1) == '/') {
      while (!Cur.atEnd() && Cur.peek() != '\n')
        Cur.advance();
      continue;
    }
    if (C == '/' && Cur.peek(1) == '*') {
      Cur.advance();
      Cur.advance();
      while (!Cur.atEnd() && !(Cur.peek() == '*' && Cur.peek(1) == '/'))
        Cur.advance();
      if (!Cur.atEnd()) {
        Cur.advance();
        Cur.advance();
      }
      continue;
    }
    // Preprocessor lines: skipped (hypotheses sometimes include #include).
    if (C == '#') {
      while (!Cur.atEnd() && Cur.peek() != '\n')
        Cur.advance();
      continue;
    }

    Token Tok;
    Tok.Line = Cur.line();

    // Identifiers and keywords.
    if (isIdentStart(C)) {
      std::string Text;
      while (!Cur.atEnd() && isIdentChar(Cur.peek()))
        Text.push_back(Cur.advance());
      Tok.Kind = isCKeyword(Text) ? TokKind::Keyword : TokKind::Identifier;
      Tok.Text = std::move(Text);
      Tokens.push_back(std::move(Tok));
      continue;
    }

    // Numeric literals (decimal, hex, float).
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '.' && std::isdigit(static_cast<unsigned char>(Cur.peek(1))))) {
      std::string Text;
      bool IsFloat = false;
      if (C == '0' && (Cur.peek(1) == 'x' || Cur.peek(1) == 'X')) {
        Text.push_back(Cur.advance());
        Text.push_back(Cur.advance());
        while (!Cur.atEnd() &&
               std::isxdigit(static_cast<unsigned char>(Cur.peek())))
          Text.push_back(Cur.advance());
      } else {
        while (!Cur.atEnd() &&
               std::isdigit(static_cast<unsigned char>(Cur.peek())))
          Text.push_back(Cur.advance());
        if (Cur.peek() == '.') {
          IsFloat = true;
          Text.push_back(Cur.advance());
          while (!Cur.atEnd() &&
                 std::isdigit(static_cast<unsigned char>(Cur.peek())))
            Text.push_back(Cur.advance());
        }
        if (Cur.peek() == 'e' || Cur.peek() == 'E') {
          IsFloat = true;
          Text.push_back(Cur.advance());
          if (Cur.peek() == '+' || Cur.peek() == '-')
            Text.push_back(Cur.advance());
          while (!Cur.atEnd() &&
                 std::isdigit(static_cast<unsigned char>(Cur.peek())))
            Text.push_back(Cur.advance());
        }
      }
      // Suffixes (u, l, f) are consumed and ignored.
      while (Cur.peek() == 'u' || Cur.peek() == 'U' || Cur.peek() == 'l' ||
             Cur.peek() == 'L' || Cur.peek() == 'f' || Cur.peek() == 'F') {
        if (Cur.peek() == 'f' || Cur.peek() == 'F')
          IsFloat = true;
        Cur.advance();
      }
      if (IsFloat) {
        Tok.Kind = TokKind::FloatLiteral;
        Tok.FloatValue = std::strtod(Text.c_str(), nullptr);
      } else {
        Tok.Kind = TokKind::IntLiteral;
        Tok.IntValue = std::strtoull(Text.c_str(), nullptr, 0);
      }
      Tok.Text = std::move(Text);
      Tokens.push_back(std::move(Tok));
      continue;
    }

    // Character literal.
    if (C == '\'') {
      Cur.advance();
      char Value = 0;
      if (Cur.peek() == '\\') {
        Cur.advance();
        Value = decodeEscape(Cur.advance());
      } else if (!Cur.atEnd()) {
        Value = Cur.advance();
      }
      if (Cur.peek() == '\'')
        Cur.advance();
      else
        fail("unterminated character literal", Tok.Line);
      Tok.Kind = TokKind::CharLiteral;
      Tok.IntValue = static_cast<uint64_t>(static_cast<unsigned char>(Value));
      Tok.Text = std::string("'") + Value + "'";
      Tokens.push_back(std::move(Tok));
      continue;
    }

    // String literal.
    if (C == '"') {
      Cur.advance();
      std::string Value;
      std::string Raw = "\"";
      while (!Cur.atEnd() && Cur.peek() != '"') {
        char D = Cur.advance();
        Raw.push_back(D);
        if (D == '\\' && !Cur.atEnd()) {
          char E = Cur.advance();
          Raw.push_back(E);
          Value.push_back(decodeEscape(E));
        } else {
          Value.push_back(D);
        }
      }
      if (!Cur.atEnd())
        Cur.advance();
      else
        fail("unterminated string literal", Tok.Line);
      Raw.push_back('"');
      Tok.Kind = TokKind::StringLiteral;
      Tok.StrValue = std::move(Value);
      Tok.Text = std::move(Raw);
      Tokens.push_back(std::move(Tok));
      continue;
    }

    // Punctuation: maximal munch over the multi-char table.
    bool Matched = false;
    for (const char *P : MultiPuncts) {
      size_t Len = std::string_view(P).size();
      bool Eq = true;
      for (size_t I = 0; I < Len && Eq; ++I)
        Eq = Cur.peek(I) == P[I];
      if (Eq) {
        for (size_t I = 0; I < Len; ++I)
          Cur.advance();
        Tok.Kind = TokKind::Punct;
        Tok.Text = P;
        Tokens.push_back(std::move(Tok));
        Matched = true;
        break;
      }
    }
    if (Matched)
      continue;

    static const std::string SinglePuncts = "+-*/%<>=!&|^~?:;,.(){}[]";
    if (SinglePuncts.find(C) != std::string::npos) {
      Cur.advance();
      Tok.Kind = TokKind::Punct;
      Tok.Text = std::string(1, C);
      Tokens.push_back(std::move(Tok));
      continue;
    }

    // Unrecognized character.
    Cur.advance();
    if (Tolerant) {
      Tok.Kind = TokKind::Unknown;
      Tok.Text = std::string(1, C);
      Tokens.push_back(std::move(Tok));
    } else {
      fail(formatString("unexpected character '%c'", C), Tok.Line);
    }
  }

  Token Eof;
  Eof.Kind = TokKind::Eof;
  Eof.Line = Cur.line();
  Tokens.push_back(std::move(Eof));
  return Tokens;
}

std::vector<std::string> slade::cc::cTokenSpellings(std::string_view Source) {
  std::vector<Token> Tokens = lexC(Source, /*Tolerant=*/true, nullptr);
  std::vector<std::string> Out;
  Out.reserve(Tokens.size());
  for (const Token &T : Tokens)
    if (!T.is(TokKind::Eof))
      Out.push_back(T.Text);
  return Out;
}
