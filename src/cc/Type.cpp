//===- Type.cpp - mini-C type system --------------------------------------===//

#include "cc/Type.h"

#include "support/Unreachable.h"

using namespace slade;
using namespace slade::cc;

static unsigned roundUp(unsigned Value, unsigned Align) {
  return (Value + Align - 1) / Align * Align;
}

const Type *Type::canonical() const {
  const Type *T = this;
  while (const auto *N = dyn_cast<NamedType>(T)) {
    if (!N->isResolved())
      return T;
    T = N->underlying();
  }
  return T;
}

unsigned Type::size() const {
  if (const auto *N = dyn_cast<NamedType>(this)) {
    assert(N->isResolved() && "layout query on unresolved named type");
    return N->underlying()->size();
  }
  switch (Kind) {
  case TypeKind::Void:
    return 0;
  case TypeKind::Int:
    return cast<IntType>(this)->bits() / 8;
  case TypeKind::Float:
    return cast<FloatType>(this)->bits() / 8;
  case TypeKind::Pointer:
    return 8;
  case TypeKind::Array: {
    const auto *A = cast<ArrayType>(this);
    return static_cast<unsigned>(A->element()->size() * A->count());
  }
  case TypeKind::Struct:
    return cast<StructType>(this)->structSize();
  case TypeKind::Named:
    SLADE_UNREACHABLE("handled above");
  }
  SLADE_UNREACHABLE("covered switch");
}

unsigned Type::align() const {
  if (const auto *N = dyn_cast<NamedType>(this)) {
    assert(N->isResolved() && "layout query on unresolved named type");
    return N->underlying()->align();
  }
  switch (Kind) {
  case TypeKind::Void:
    return 1;
  case TypeKind::Int:
  case TypeKind::Float:
  case TypeKind::Pointer:
    return size();
  case TypeKind::Array:
    return cast<ArrayType>(this)->element()->align();
  case TypeKind::Struct:
    return cast<StructType>(this)->structAlign();
  case TypeKind::Named:
    SLADE_UNREACHABLE("handled above");
  }
  SLADE_UNREACHABLE("covered switch");
}

std::string Type::spelling() const {
  switch (Kind) {
  case TypeKind::Void:
    return "void";
  case TypeKind::Int: {
    const auto *I = cast<IntType>(this);
    switch (I->bits()) {
    case 8:
      return I->isSigned() ? "char" : "unsigned char";
    case 16:
      return I->isSigned() ? "short" : "unsigned short";
    case 32:
      return I->isSigned() ? "int" : "unsigned int";
    case 64:
      return I->isSigned() ? "long" : "unsigned long";
    }
    SLADE_UNREACHABLE("unsupported int width");
  }
  case TypeKind::Float:
    return cast<FloatType>(this)->bits() == 32 ? "float" : "double";
  case TypeKind::Pointer: {
    const auto *P = cast<PointerType>(this);
    std::string Inner = P->pointee()->spelling();
    if (!Inner.empty() && Inner.back() == '*')
      return Inner + "*";
    return Inner + " *";
  }
  case TypeKind::Array: {
    const auto *A = cast<ArrayType>(this);
    return A->element()->spelling() + "[" + std::to_string(A->count()) + "]";
  }
  case TypeKind::Struct:
    return "struct " + cast<StructType>(this)->name();
  case TypeKind::Named:
    return cast<NamedType>(this)->name();
  }
  SLADE_UNREACHABLE("covered switch");
}

void StructType::setFields(std::vector<Field> NewFields) {
  assert(!Complete && "struct fields set twice");
  Fields = std::move(NewFields);
  unsigned Offset = 0;
  Align = 1;
  for (Field &F : Fields) {
    unsigned FieldAlign = F.Ty->align();
    Offset = roundUp(Offset, FieldAlign);
    F.Offset = Offset;
    Offset += F.Ty->size();
    if (FieldAlign > Align)
      Align = FieldAlign;
  }
  Size = roundUp(Offset, Align);
  if (Size == 0)
    Size = Align; // Empty structs still occupy storage.
  Complete = true;
}

const StructType::Field *StructType::findField(const std::string &Name) const {
  for (const Field &F : Fields)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

TypeContext::TypeContext() = default;

const IntType *TypeContext::intTy(unsigned Bits, bool Signed) const {
  unsigned Index;
  switch (Bits) {
  case 8:
    Index = 0;
    break;
  case 16:
    Index = 2;
    break;
  case 32:
    Index = 4;
    break;
  case 64:
    Index = 6;
    break;
  default:
    SLADE_UNREACHABLE("unsupported integer width");
  }
  return &Ints[Index + (Signed ? 0 : 1)];
}

const PointerType *TypeContext::pointerTo(const Type *Pointee) {
  auto It = Pointers.find(Pointee);
  if (It != Pointers.end())
    return It->second.get();
  auto Ptr = std::make_unique<PointerType>(Pointee);
  const PointerType *Result = Ptr.get();
  Pointers.emplace(Pointee, std::move(Ptr));
  return Result;
}

const ArrayType *TypeContext::arrayOf(const Type *Elem, uint64_t Count) {
  auto Key = std::make_pair(Elem, Count);
  auto It = Arrays.find(Key);
  if (It != Arrays.end())
    return It->second.get();
  auto Arr = std::make_unique<ArrayType>(Elem, Count);
  const ArrayType *Result = Arr.get();
  Arrays.emplace(Key, std::move(Arr));
  return Result;
}

StructType *TypeContext::getOrCreateStruct(const std::string &Name) {
  auto It = Structs.find(Name);
  if (It != Structs.end())
    return It->second.get();
  auto S = std::make_unique<StructType>(Name);
  StructType *Result = S.get();
  Structs.emplace(Name, std::move(S));
  return Result;
}

StructType *TypeContext::findStruct(const std::string &Name) {
  auto It = Structs.find(Name);
  return It == Structs.end() ? nullptr : It->second.get();
}

NamedType *TypeContext::getOrCreateNamed(const std::string &Name) {
  auto It = Named.find(Name);
  if (It != Named.end())
    return It->second.get();
  auto N = std::make_unique<NamedType>(Name);
  NamedType *Result = N.get();
  Named.emplace(Name, std::move(N));
  NamedOrder.push_back(Result);
  return Result;
}

NamedType *TypeContext::findNamed(const std::string &Name) {
  auto It = Named.find(Name);
  return It == Named.end() ? nullptr : It->second.get();
}

std::vector<NamedType *> TypeContext::namedTypes() const {
  return NamedOrder;
}
