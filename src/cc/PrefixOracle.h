//===- PrefixOracle.h - incremental C-prefix acceptability ------*- C++ -*-===//
///
/// \file
/// An incremental, token-level acceptability checker derived from the
/// cc::Lexer/Parser frontend: "can this emitted text prefix still extend
/// to a syntactically valid translation unit?" It powers grammar-
/// constrained beam decoding (nn/BeamCore.h): each live beam carries one
/// oracle State, the decoder masks vocabulary pieces whose text would
/// kill every continuation, and beams whose state dies are retired
/// mid-flight.
///
/// The oracle recognizes a SOUND OVER-APPROXIMATION of the parser's
/// prefix language: it never rejects a prefix of a parseable program
/// (differentially tested against dataset::Generator output in
/// tests/test_constrain.cpp), and when it does reject, no single-token
/// continuation parses. Where the parser disambiguates with lookahead or
/// dynamic typedef knowledge (decl-vs-expr statements, cast-vs-paren),
/// the oracle tracks the UNION of both interpretations and only dies
/// when every interpretation is dead — over-acceptance costs masking
/// precision, never correctness.
///
/// Implementation: a pushdown automaton over small 4-byte frames
/// (cc grammar productions) fed by an incremental lexer that mirrors
/// cc::Lexer byte-for-byte (maximal-munch punctuators, numeric suffixes,
/// comments, string/char escapes), keeping at most one pending lexeme
/// tail. State is a flat POD value: snapshot is a copy, rollback is a
/// copy-assign, and identical input bytes always produce memcmp-equal
/// states (property-tested), so beams can fork/reorder/retire freely.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_CC_PREFIXORACLE_H
#define SLADE_CC_PREFIXORACLE_H

#include <cstdint>
#include <cstring>
#include <string_view>

namespace slade {
namespace cc {

class PrefixOracle {
public:
  /// Terminal classes of the mini-C grammar. Keywords and punctuators
  /// that behave identically in every parser position share a class
  /// (e.g. all pure binary operators); ones the parser treats specially
  /// get their own. Keywords the parser never accepts (union, enum,
  /// switch, case, default, goto) and the "..." punctuator map to no
  /// class and are always rejected.
  enum Term : int {
    T_Ident,
    T_IntLit,
    T_FloatLit,
    T_CharLit,
    T_StrLit,
    T_KwType,   // void char short int long float double signed unsigned _Bool
    T_KwQual,   // const volatile restrict __restrict inline register static
    T_KwStruct,
    T_KwTypedef,
    T_KwExtern,
    T_KwSizeof,
    T_KwIf,
    T_KwElse,
    T_KwWhile,
    T_KwDo,
    T_KwFor,
    T_KwReturn,
    T_KwBreak,
    T_KwContinue,
    T_LParen,
    T_RParen,
    T_LBrace,
    T_RBrace,
    T_LBracket,
    T_RBracket,
    T_Semi,
    T_Comma,
    T_Question,
    T_Colon,
    T_Dot,
    T_Arrow,
    T_Inc,
    T_Dec,
    T_Star,
    T_Amp,
    T_Plus,
    T_Minus,
    T_Bang,
    T_Tilde,
    T_Assign,   // =
    T_OpAssign, // += -= *= /= %= &= |= ^= <<= >>=
    T_BinOp,    // || && | ^ == != < > <= >= << >> / %
    NumTerms
  };
  static constexpr uint64_t bit(int T) { return uint64_t(1) << T; }

  /// What kind of lexeme tail is pending (unfinished) in a State.
  enum PendClass : uint8_t {
    P_None,
    P_Word,    ///< identifier/keyword characters
    P_Num,     ///< numeric literal
    P_Punct,   ///< punctuator chain (maximal munch unresolved)
    P_Str,     ///< inside a string literal
    P_Chr,     ///< inside a character literal
    P_Comment, ///< inside a // or /* comment (or a # line)
  };

  static constexpr int MaxFrames = 48;

  /// One PDA frame: a grammar production in progress. POD, 4 bytes.
  struct Frame {
    uint8_t Kind = 0;
    uint8_t St = 0;
    uint8_t F0 = 0;
    uint8_t F1 = 0;
  };

  /// The full oracle cursor. Flat POD: copy to snapshot, copy-assign to
  /// roll back, memcmp to compare. advance() over the same bytes from
  /// the same start state always yields memcmp-identical states.
  struct State {
    Frame Stack[MaxFrames];
    int8_t SP = 0;        ///< frames in use (Stack[SP-1] is the top)
    uint8_t Dead = 0;     ///< no completion can parse
    uint8_t Generous = 0; ///< frame overflow: accept everything (sound)
    uint8_t Lex = 0;      ///< lexer sub-state (internal LK_* values)
    uint8_t NumSt = 0;    ///< numeric-literal sub-state when Lex is num
    uint8_t BufLen = 0;   ///< pending word/punct chain length
    uint8_t WordViaIdent = 0; ///< pending word viable as an identifier
    uint8_t MaskValid = 0;    ///< CachedMask is current
    char Buf[12] = {0};       ///< pending word (keyword window) or chain
    uint64_t CachedMask = 0;  ///< terminal classes the PDA accepts now
  };

  PrefixOracle() = default;

  /// Fresh state: empty translation unit, nothing pending.
  State start() const;

  /// Feeds \p Text (raw source bytes, any chunking). Returns false and
  /// marks the state dead when no completion of the bytes fed so far can
  /// lex+parse as a valid translation unit. Feeding a dead state stays
  /// dead. Chunk boundaries never matter: advance(S,"ab") is
  /// byte-identical to advance(S,"a"); advance(S,"b").
  bool advance(State &S, std::string_view Text) const;

  bool alive(const State &S) const { return !S.Dead; }

  /// True when the text fed so far, terminated here, is itself a
  /// complete valid translation unit (all frames closed, no unfinished
  /// literal). Gates EOS during constrained decoding.
  bool acceptsEnd(const State &S) const;

  /// Bitmask of terminal classes the PDA accepts next, ignoring any
  /// pending lexeme tail (callers resolve the tail first — see
  /// boundary()). Cached inside the state between terminals.
  uint64_t terminalMask(State &S) const;

  /// Copy of \p S with the pending lexeme resolved as if at a
  /// whitespace boundary (what feeding ' ' does, minus the space).
  /// May come back dead (e.g. an unterminated string).
  State boundary(const State &S) const;

  /// Pending-tail introspection for the vocabulary-mask fast path.
  PendClass pendClass(const State &S) const;
  /// Pending word or punct chain text (empty otherwise). For words
  /// longer than the longest keyword the window is cleared — such words
  /// can only resolve to identifiers.
  std::string_view pendingText(const State &S) const;

  // -- static token tables (shared with the vocab adapter) -----------------

  /// Terminal class of keyword \p W, or -1 when the parser never
  /// accepts it (union, enum, switch, ...).
  static int keywordTerm(std::string_view W);
  /// Union of keyword terminal bits over all ACCEPTED keywords having
  /// \p Prefix as a strict or full prefix (0 when none).
  static uint64_t keywordPrefixBits(std::string_view Prefix);
  /// True when some nonempty pending word could make Pend + \p Body
  /// begin an ACCEPTED keyword — i.e. \p Body matches an accepted
  /// keyword's interior at a non-zero offset. When false, a pending
  /// word extended by \p Body can only ever flush as an identifier,
  /// letting the vocab adapter skip keywordPrefixBits entirely.
  static bool keywordMidfix(std::string_view Body);
  /// Terminal class of punctuator spelling \p P, or -1 (e.g. "...").
  static int punctTerm(std::string_view P);
  /// Union of punct terminal bits reachable from chain \p Prefix by
  /// maximal-munch extension (includes the chain itself when complete).
  static uint64_t punctPrefixBits(std::string_view Prefix);
  /// True when \p Chain + \p C is still a punctuator or a prefix of one.
  static bool punctExtends(std::string_view Chain, char C);

private:
  // Terminal-level PDA step. Returns false when the terminal is not
  // acceptable (state marked dead by the caller as appropriate).
  bool stepTerminal(State &S, int T) const;
  // Feed one raw byte through the incremental lexer.
  void feedChar(State &S, char C) const;
  // Resolve the pending lexeme (boundary reached); feeds terminals.
  void flushPending(State &S) const;
  // Feed terminal T; kill the state when unacceptable.
  void feedTerminal(State &S, int T) const;
  uint64_t computeMask(const State &S) const;
};

} // namespace cc
} // namespace slade

#endif // SLADE_CC_PREFIXORACLE_H
