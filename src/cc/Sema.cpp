//===- Sema.cpp - mini-C semantic analysis ---------------------------------===//

#include "cc/Sema.h"

#include "support/StringUtils.h"
#include "support/Unreachable.h"

#include <map>
#include <vector>

using namespace slade;
using namespace slade::cc;

namespace {

/// Statement/expression checker with a lexical scope stack.
class SemaChecker {
public:
  SemaChecker(TranslationUnit &TU, TypeContext &Ctx) : TU(TU), Ctx(Ctx) {}

  Status run();

private:
  TranslationUnit &TU;
  TypeContext &Ctx;
  std::string Error;
  std::vector<std::map<std::string, VarDecl *>> Scopes;
  std::map<std::string, FunctionDecl *> Functions;
  FunctionDecl *CurFunction = nullptr;
  int LoopDepth = 0;

  void fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
  }
  bool failed() const { return !Error.empty(); }

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  void declare(VarDecl *V) {
    assert(!Scopes.empty() && "declare outside any scope");
    Scopes.back()[V->Name] = V;
  }
  VarDecl *lookup(const std::string &Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    return nullptr;
  }

  /// Rejects types that still contain an unresolved name.
  bool validateResolved(const Type *T, const std::string &Where) {
    const Type *C = T->canonical();
    if (const auto *N = dyn_cast<NamedType>(C)) {
      fail(formatString("unresolved type '%s' in %s", N->name().c_str(),
                        Where.c_str()));
      return false;
    }
    if (const auto *P = dyn_cast<PointerType>(C))
      return validateResolved(P->pointee(), Where);
    if (const auto *A = dyn_cast<ArrayType>(C))
      return validateResolved(A->element(), Where);
    return true;
  }

  void checkFunction(FunctionDecl &F);
  void checkStmt(Stmt *S);
  void checkVarDecl(VarDecl &V);
  void checkExpr(ExprPtr &E);
  /// checkExpr + array-to-pointer decay on the result type.
  void checkRValue(ExprPtr &E);

  const Type *usualArithmetic(const Type *A, const Type *B);
  const Type *promoted(const Type *T);
  bool isScalar(const Type *T) {
    const Type *C = T->canonical();
    return C->isArithmetic() || C->isPointer() || C->isArray();
  }
};

} // namespace

const Type *SemaChecker::promoted(const Type *T) {
  const Type *C = T->canonical();
  if (const auto *I = dyn_cast<IntType>(C))
    if (I->bits() < 32)
      return Ctx.int32Ty();
  return C;
}

const Type *SemaChecker::usualArithmetic(const Type *A, const Type *B) {
  const Type *CA = A->canonical(), *CB = B->canonical();
  if (CA->isFloating() || CB->isFloating()) {
    unsigned Bits = 32;
    if (const auto *F = dyn_cast<FloatType>(CA))
      Bits = std::max(Bits, F->bits());
    if (const auto *F = dyn_cast<FloatType>(CB))
      Bits = std::max(Bits, F->bits());
    // int op float promotes to the float type.
    if (CA->isInteger() || CB->isInteger())
      Bits = dyn_cast<FloatType>(CA->isFloating() ? CA : CB)->bits();
    return Bits == 64 ? static_cast<const Type *>(Ctx.doubleTy())
                      : Ctx.floatTy();
  }
  const auto *IA = dyn_cast<IntType>(promoted(CA));
  const auto *IB = dyn_cast<IntType>(promoted(CB));
  if (!IA || !IB)
    return Ctx.int32Ty();
  unsigned Bits = std::max(IA->bits(), IB->bits());
  bool Signed;
  if (IA->isSigned() == IB->isSigned())
    Signed = IA->isSigned();
  else if (IA->bits() == IB->bits())
    Signed = false; // Unsigned wins at equal width.
  else
    Signed = (IA->bits() > IB->bits()) ? IA->isSigned() : IB->isSigned();
  return Ctx.intTy(Bits, Signed);
}

void SemaChecker::checkRValue(ExprPtr &E) {
  checkExpr(E);
  if (failed() || !E->Ty)
    return;
  if (const auto *A = dyn_cast<ArrayType>(E->Ty->canonical())) {
    E->Ty = Ctx.pointerTo(A->element());
    E->IsLValue = false;
  }
}

void SemaChecker::checkExpr(ExprPtr &E) {
  if (failed())
    return;
  assert(E && "null expression");

  switch (E->getKind()) {
  case ExprKind::IntLit: {
    auto *L = cast<IntLit>(E.get());
    if (L->Value > 0x7fffffffLL || L->Value < -0x80000000LL)
      E->Ty = Ctx.intTy(64, !L->IsUnsigned);
    else
      E->Ty = L->IsUnsigned && static_cast<uint64_t>(L->Value) > 0x7fffffffULL
                  ? Ctx.uint32Ty()
                  : Ctx.int32Ty();
    return;
  }
  case ExprKind::FloatLit:
    E->Ty = cast<FloatLit>(E.get())->IsFloat
                ? static_cast<const Type *>(Ctx.floatTy())
                : Ctx.doubleTy();
    return;
  case ExprKind::StringLit:
    E->Ty = Ctx.pointerTo(Ctx.charTy());
    return;
  case ExprKind::VarRef: {
    auto *Ref = cast<VarRef>(E.get());
    VarDecl *D = lookup(Ref->Name);
    if (!D) {
      fail(formatString("use of undeclared identifier '%s'",
                        Ref->Name.c_str()));
      return;
    }
    Ref->Decl = D;
    E->Ty = D->Ty;
    E->IsLValue = true;
    return;
  }
  case ExprKind::Unary: {
    auto *U = cast<UnaryExpr>(E.get());
    switch (U->Op) {
    case UnaryOp::AddrOf: {
      checkExpr(U->Operand);
      if (failed())
        return;
      if (!U->Operand->IsLValue) {
        fail("cannot take the address of an rvalue");
        return;
      }
      const Type *Pointee = U->Operand->Ty;
      if (const auto *A = dyn_cast<ArrayType>(Pointee->canonical()))
        Pointee = A->element(); // &arr[i] handled by Index; &arr decays.
      E->Ty = Ctx.pointerTo(Pointee);
      return;
    }
    case UnaryOp::Deref: {
      checkRValue(U->Operand);
      if (failed())
        return;
      const auto *P = dyn_cast<PointerType>(U->Operand->Ty->canonical());
      if (!P) {
        fail("cannot dereference a non-pointer");
        return;
      }
      E->Ty = P->pointee();
      E->IsLValue = true;
      return;
    }
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec: {
      checkExpr(U->Operand);
      if (failed())
        return;
      if (!U->Operand->IsLValue) {
        fail("increment/decrement requires an lvalue");
        return;
      }
      if (!isScalar(U->Operand->Ty)) {
        fail("increment/decrement requires a scalar type");
        return;
      }
      E->Ty = U->Operand->Ty->canonical();
      return;
    }
    case UnaryOp::Neg:
    case UnaryOp::Plus:
    case UnaryOp::BitNot: {
      checkRValue(U->Operand);
      if (failed())
        return;
      const Type *T = U->Operand->Ty->canonical();
      if (!T->isArithmetic() ||
          (U->Op == UnaryOp::BitNot && !T->isInteger())) {
        fail("invalid operand to unary operator");
        return;
      }
      E->Ty = promoted(T);
      return;
    }
    case UnaryOp::LogNot: {
      checkRValue(U->Operand);
      if (failed())
        return;
      if (!isScalar(U->Operand->Ty)) {
        fail("invalid operand to '!'");
        return;
      }
      E->Ty = Ctx.int32Ty();
      return;
    }
    }
    SLADE_UNREACHABLE("covered switch");
  }
  case ExprKind::Binary: {
    auto *B = cast<BinaryExpr>(E.get());
    if (B->Op == BinaryOp::Comma) {
      checkRValue(B->LHS);
      checkRValue(B->RHS);
      if (!failed())
        E->Ty = B->RHS->Ty;
      return;
    }
    if (isAssignOp(B->Op)) {
      checkExpr(B->LHS);
      checkRValue(B->RHS);
      if (failed())
        return;
      if (!B->LHS->IsLValue) {
        fail("assignment requires an lvalue");
        return;
      }
      const Type *L = B->LHS->Ty->canonical();
      const Type *R = B->RHS->Ty->canonical();
      if (L->isArray()) {
        fail("cannot assign to an array");
        return;
      }
      bool Compatible =
          (L->isArithmetic() && R->isArithmetic()) ||
          (L->isPointer() && (R->isPointer() || R->isInteger())) ||
          (L->isStruct() && L == R) || (L->isInteger() && R->isPointer());
      if (B->Op != BinaryOp::Assign) {
        BinaryOp Inner = strippedCompound(B->Op);
        bool PtrStep = L->isPointer() && R->isInteger() &&
                       (Inner == BinaryOp::Add || Inner == BinaryOp::Sub);
        Compatible = (L->isArithmetic() && R->isArithmetic()) || PtrStep;
      }
      if (!Compatible) {
        fail(formatString("incompatible types in assignment ('%s' from '%s')",
                          L->spelling().c_str(), R->spelling().c_str()));
        return;
      }
      E->Ty = B->LHS->Ty->canonical();
      return;
    }
    checkRValue(B->LHS);
    checkRValue(B->RHS);
    if (failed())
      return;
    const Type *L = B->LHS->Ty->canonical();
    const Type *R = B->RHS->Ty->canonical();

    if (B->Op == BinaryOp::LogAnd || B->Op == BinaryOp::LogOr) {
      if (!isScalar(L) || !isScalar(R)) {
        fail("invalid operands to logical operator");
        return;
      }
      E->Ty = Ctx.int32Ty();
      return;
    }
    if (isComparisonOp(B->Op)) {
      if (!((L->isArithmetic() && R->isArithmetic()) ||
            (L->isPointer() && (R->isPointer() || R->isInteger())) ||
            (L->isInteger() && R->isPointer()))) {
        fail("invalid operands to comparison");
        return;
      }
      E->Ty = Ctx.int32Ty();
      return;
    }
    // Pointer arithmetic.
    if (L->isPointer() && R->isInteger() &&
        (B->Op == BinaryOp::Add || B->Op == BinaryOp::Sub)) {
      E->Ty = L;
      return;
    }
    if (L->isInteger() && R->isPointer() && B->Op == BinaryOp::Add) {
      E->Ty = R;
      return;
    }
    if (L->isPointer() && R->isPointer() && B->Op == BinaryOp::Sub) {
      E->Ty = Ctx.int64Ty();
      return;
    }
    if (!L->isArithmetic() || !R->isArithmetic()) {
      fail(formatString("invalid operands to binary '%s' ('%s' and '%s')",
                        binaryOpSpelling(B->Op), L->spelling().c_str(),
                        R->spelling().c_str()));
      return;
    }
    bool IntOnly = B->Op == BinaryOp::Rem || B->Op == BinaryOp::Shl ||
                   B->Op == BinaryOp::Shr || B->Op == BinaryOp::BitAnd ||
                   B->Op == BinaryOp::BitOr || B->Op == BinaryOp::BitXor;
    if (IntOnly && (!L->isInteger() || !R->isInteger())) {
      fail(formatString("operator '%s' requires integer operands",
                        binaryOpSpelling(B->Op)));
      return;
    }
    if (B->Op == BinaryOp::Shl || B->Op == BinaryOp::Shr)
      E->Ty = promoted(L);
    else
      E->Ty = usualArithmetic(L, R);
    return;
  }
  case ExprKind::Conditional: {
    auto *C = cast<ConditionalExpr>(E.get());
    checkRValue(C->Cond);
    checkRValue(C->Then);
    checkRValue(C->Else);
    if (failed())
      return;
    if (!isScalar(C->Cond->Ty)) {
      fail("condition must be scalar");
      return;
    }
    const Type *L = C->Then->Ty->canonical();
    const Type *R = C->Else->Ty->canonical();
    if (L->isArithmetic() && R->isArithmetic())
      E->Ty = usualArithmetic(L, R);
    else if (L->isPointer())
      E->Ty = L;
    else if (R->isPointer())
      E->Ty = R;
    else if (L == R)
      E->Ty = L;
    else {
      fail("incompatible arms in conditional expression");
      return;
    }
    return;
  }
  case ExprKind::Call: {
    auto *C = cast<CallExpr>(E.get());
    if (C->Callee == "__builtin_sizeof") {
      // Fold sizeof(expr) now that operand types are known.
      assert(C->Args.size() == 1 && "sizeof marker takes one operand");
      checkExpr(C->Args[0]);
      if (failed())
        return;
      const Type *T = C->Args[0]->Ty;
      E = std::make_unique<IntLit>(static_cast<int64_t>(T->size()), true);
      E->Ty = Ctx.uint64Ty();
      return;
    }
    FunctionDecl *Callee = nullptr;
    auto It = Functions.find(C->Callee);
    if (It != Functions.end())
      Callee = It->second;
    if (!Callee) {
      fail(formatString("call to undeclared function '%s'",
                        C->Callee.c_str()));
      return;
    }
    if (C->Args.size() != Callee->Params.size()) {
      fail(formatString("call to '%s' with %zu arguments; expected %zu",
                        C->Callee.c_str(), C->Args.size(),
                        Callee->Params.size()));
      return;
    }
    for (size_t I = 0; I < C->Args.size(); ++I) {
      checkRValue(C->Args[I]);
      if (failed())
        return;
      const Type *P = Callee->Params[I]->Ty->canonical();
      const Type *A = C->Args[I]->Ty->canonical();
      bool Ok = (P->isArithmetic() && A->isArithmetic()) ||
                (P->isPointer() && (A->isPointer() || A->isInteger())) ||
                (P->isInteger() && A->isPointer()) || P == A;
      if (!Ok) {
        fail(formatString("argument %zu to '%s' has incompatible type '%s'",
                          I + 1, C->Callee.c_str(), A->spelling().c_str()));
        return;
      }
    }
    C->Decl = Callee;
    E->Ty = Callee->RetTy->canonical();
    return;
  }
  case ExprKind::Index: {
    auto *I = cast<IndexExpr>(E.get());
    checkRValue(I->Base);
    checkRValue(I->Index);
    if (failed())
      return;
    const auto *P = dyn_cast<PointerType>(I->Base->Ty->canonical());
    if (!P || !I->Index->Ty->canonical()->isInteger()) {
      fail("invalid array subscript");
      return;
    }
    E->Ty = P->pointee();
    E->IsLValue = true;
    return;
  }
  case ExprKind::Member: {
    auto *M = cast<MemberExpr>(E.get());
    checkExpr(M->Base);
    if (failed())
      return;
    const Type *BaseTy = M->Base->Ty->canonical();
    const StructType *S = nullptr;
    if (M->IsArrow) {
      const auto *P = dyn_cast<PointerType>(BaseTy);
      if (P)
        S = dyn_cast<StructType>(P->pointee()->canonical());
    } else {
      S = dyn_cast<StructType>(BaseTy);
    }
    if (!S) {
      fail(formatString("member access '%s' on non-struct type",
                        M->Member.c_str()));
      return;
    }
    if (!S->isComplete()) {
      fail(formatString("member access on incomplete struct '%s'",
                        S->name().c_str()));
      return;
    }
    const StructType::Field *F = S->findField(M->Member);
    if (!F) {
      fail(formatString("no field '%s' in struct %s", M->Member.c_str(),
                        S->name().c_str()));
      return;
    }
    M->Offset = F->Offset;
    E->Ty = F->Ty;
    E->IsLValue = true;
    return;
  }
  case ExprKind::Cast: {
    auto *C = cast<CastExpr>(E.get());
    checkRValue(C->Operand);
    if (failed())
      return;
    if (!validateResolved(C->Target, "cast"))
      return;
    const Type *T = C->Target->canonical();
    const Type *O = C->Operand->Ty->canonical();
    if (!isScalar(T) && !T->isVoid()) {
      fail("cast target must be scalar or void");
      return;
    }
    if (!isScalar(O)) {
      fail("cast operand must be scalar");
      return;
    }
    E->Ty = T;
    return;
  }
  }
  SLADE_UNREACHABLE("covered expression kind switch");
}

void SemaChecker::checkVarDecl(VarDecl &V) {
  if (!validateResolved(V.Ty, formatString("declaration of '%s'",
                                           V.Name.c_str())))
    return;
  const Type *C = V.Ty->canonical();
  if (C->isVoid()) {
    fail(formatString("variable '%s' has void type", V.Name.c_str()));
    return;
  }
  if (const auto *S = dyn_cast<StructType>(C))
    if (!S->isComplete()) {
      fail(formatString("variable '%s' has incomplete struct type",
                        V.Name.c_str()));
      return;
    }
  if (V.Init) {
    checkRValue(V.Init);
    if (failed())
      return;
    const Type *L = C;
    const Type *R = V.Init->Ty->canonical();
    bool Ok = (L->isArithmetic() && R->isArithmetic()) ||
              (L->isPointer() && (R->isPointer() || R->isInteger()));
    if (!Ok) {
      fail(formatString("invalid initializer for '%s'", V.Name.c_str()));
      return;
    }
  }
  declare(&V);
}

void SemaChecker::checkStmt(Stmt *S) {
  if (failed())
    return;
  switch (S->getKind()) {
  case StmtKind::Compound: {
    pushScope();
    for (StmtPtr &Child : cast<CompoundStmt>(S)->Body)
      checkStmt(Child.get());
    popScope();
    return;
  }
  case StmtKind::Expr:
    checkRValue(cast<ExprStmt>(S)->E);
    return;
  case StmtKind::Decl:
    for (auto &V : cast<DeclStmt>(S)->Decls)
      checkVarDecl(*V);
    return;
  case StmtKind::If: {
    auto *I = cast<IfStmt>(S);
    checkRValue(I->Cond);
    if (!failed() && !isScalar(I->Cond->Ty))
      fail("if condition must be scalar");
    checkStmt(I->Then.get());
    if (I->Else)
      checkStmt(I->Else.get());
    return;
  }
  case StmtKind::While: {
    auto *W = cast<WhileStmt>(S);
    checkRValue(W->Cond);
    if (!failed() && !isScalar(W->Cond->Ty))
      fail("while condition must be scalar");
    ++LoopDepth;
    checkStmt(W->Body.get());
    --LoopDepth;
    return;
  }
  case StmtKind::DoWhile: {
    auto *D = cast<DoWhileStmt>(S);
    ++LoopDepth;
    checkStmt(D->Body.get());
    --LoopDepth;
    checkRValue(D->Cond);
    if (!failed() && !isScalar(D->Cond->Ty))
      fail("do-while condition must be scalar");
    return;
  }
  case StmtKind::For: {
    auto *F = cast<ForStmt>(S);
    pushScope();
    if (F->Init)
      checkStmt(F->Init.get());
    if (F->Cond) {
      checkRValue(F->Cond);
      if (!failed() && !isScalar(F->Cond->Ty))
        fail("for condition must be scalar");
    }
    if (F->Step)
      checkRValue(F->Step);
    ++LoopDepth;
    checkStmt(F->Body.get());
    --LoopDepth;
    popScope();
    return;
  }
  case StmtKind::Return: {
    auto *R = cast<ReturnStmt>(S);
    const Type *RetTy = CurFunction->RetTy->canonical();
    if (R->Value) {
      checkRValue(R->Value);
      if (failed())
        return;
      if (RetTy->isVoid()) {
        fail("returning a value from a void function");
        return;
      }
      const Type *V = R->Value->Ty->canonical();
      bool Ok = (RetTy->isArithmetic() && V->isArithmetic()) ||
                (RetTy->isPointer() && (V->isPointer() || V->isInteger())) ||
                (RetTy->isInteger() && V->isPointer());
      if (!Ok)
        fail("incompatible return type");
    } else if (!RetTy->isVoid()) {
      fail("non-void function must return a value");
    }
    return;
  }
  case StmtKind::Break:
    if (LoopDepth == 0)
      fail("'break' outside of a loop");
    return;
  case StmtKind::Continue:
    if (LoopDepth == 0)
      fail("'continue' outside of a loop");
    return;
  case StmtKind::Empty:
    return;
  }
  SLADE_UNREACHABLE("covered statement kind switch");
}

void SemaChecker::checkFunction(FunctionDecl &F) {
  CurFunction = &F;
  if (!validateResolved(F.RetTy, formatString("return type of '%s'",
                                              F.Name.c_str())))
    return;
  pushScope();
  for (auto &P : F.Params) {
    if (!validateResolved(P->Ty, formatString("parameter '%s'",
                                              P->Name.c_str())))
      break;
    declare(P.get());
  }
  if (!failed() && F.Body)
    checkStmt(F.Body.get());
  popScope();
  CurFunction = nullptr;
}

Status SemaChecker::run() {
  // File scope: globals visible everywhere; functions by name.
  pushScope();
  for (auto &G : TU.Globals) {
    checkVarDecl(*G);
    if (failed())
      break;
  }
  for (auto &F : TU.Functions) {
    auto It = Functions.find(F->Name);
    if (It != Functions.end() && It->second->isDefinition() &&
        F->isDefinition()) {
      fail(formatString("redefinition of function '%s'", F->Name.c_str()));
      break;
    }
    if (It == Functions.end() || F->isDefinition())
      Functions[F->Name] = F.get();
  }
  if (!failed())
    for (auto &F : TU.Functions) {
      checkFunction(*F);
      if (failed())
        break;
    }
  popScope();
  return failed() ? Status::error(Error) : Status::success();
}

Status slade::cc::analyze(TranslationUnit &TU, TypeContext &Ctx) {
  SemaChecker Checker(TU, Ctx);
  return Checker.run();
}
