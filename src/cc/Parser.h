//===- Parser.h - mini-C parser ---------------------------------*- C++ -*-===//
///
/// \file
/// Recursive-descent parser for the mini-C dialect.
///
/// Two modes:
///  - strict: unknown identifiers in type position are errors;
///  - partial: unknown identifiers in type position become unresolved
///    NamedTypes (the input to the type-inference engine, §VI-B). The
///    `(a)*b` cast-vs-multiply ambiguity is resolved with a PsycheC-style
///    heuristic lattice (prefer expression unless the name is already known
///    to be a type).
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_CC_PARSER_H
#define SLADE_CC_PARSER_H

#include "cc/AST.h"
#include "support/Error.h"

#include <map>
#include <memory>
#include <string>

namespace slade {
namespace cc {

struct ParseOptions {
  /// Tolerate unknown type names / declarations (hypothesis parsing).
  bool Partial = false;
  /// Typedef names already in scope (from previously parsed context),
  /// mapping to their underlying types.
  std::map<std::string, const Type *> KnownTypedefs;
};

/// Parses \p Source into a TranslationUnit whose types live in \p Ctx.
Expected<std::unique_ptr<TranslationUnit>>
parseC(const std::string &Source, TypeContext &Ctx,
       const ParseOptions &Options = {});

} // namespace cc
} // namespace slade

#endif // SLADE_CC_PARSER_H
