//===- AST.h - mini-C abstract syntax tree ----------------------*- C++ -*-===//
///
/// \file
/// AST for the mini-C dialect. Nodes use LLVM-style RTTI (classof +
/// isa/cast/dyn_cast). Expressions carry a type and lvalue-ness that the
/// Sema pass fills in. A TranslationUnit owns all declarations; Types are
/// owned by the associated TypeContext.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_CC_AST_H
#define SLADE_CC_AST_H

#include "cc/Type.h"
#include "support/Casting.h"

#include <memory>
#include <string>
#include <vector>

namespace slade {
namespace cc {

class VarDecl;
class FunctionDecl;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind {
  IntLit,
  FloatLit,
  StringLit,
  VarRef,
  Unary,
  Binary,
  Conditional,
  Call,
  Index,
  Member,
  Cast,
};

enum class UnaryOp {
  Neg,     ///< -x
  Plus,    ///< +x
  LogNot,  ///< !x
  BitNot,  ///< ~x
  Deref,   ///< *p
  AddrOf,  ///< &x
  PreInc,  ///< ++x
  PreDec,  ///< --x
  PostInc, ///< x++
  PostDec, ///< x--
};

enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Shl,
  Shr,
  BitAnd,
  BitOr,
  BitXor,
  Lt,
  Gt,
  Le,
  Ge,
  Eq,
  Ne,
  LogAnd,
  LogOr,
  Assign,
  AddAssign,
  SubAssign,
  MulAssign,
  DivAssign,
  RemAssign,
  AndAssign,
  OrAssign,
  XorAssign,
  ShlAssign,
  ShrAssign,
  Comma,
};

/// True for `=` and all compound assignment operators.
bool isAssignOp(BinaryOp Op);
/// For a compound assignment, the underlying arithmetic op (AddAssign→Add).
BinaryOp strippedCompound(BinaryOp Op);
/// Source spelling of the operator, e.g. "+=" for AddAssign.
const char *binaryOpSpelling(BinaryOp Op);
const char *unaryOpSpelling(UnaryOp Op);
bool isComparisonOp(BinaryOp Op);

class Expr {
public:
  virtual ~Expr() = default;

  ExprKind getKind() const { return Kind; }

  /// Type of this expression; set during Sema.
  const Type *Ty = nullptr;
  /// True if this expression designates an object (set during Sema).
  bool IsLValue = false;

protected:
  explicit Expr(ExprKind Kind) : Kind(Kind) {}

private:
  ExprKind Kind;
};

using ExprPtr = std::unique_ptr<Expr>;

class IntLit : public Expr {
public:
  explicit IntLit(int64_t Value, bool IsUnsigned = false)
      : Expr(ExprKind::IntLit), Value(Value), IsUnsigned(IsUnsigned) {}

  int64_t Value;
  bool IsUnsigned;

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::IntLit;
  }
};

class FloatLit : public Expr {
public:
  FloatLit(double Value, bool IsFloat)
      : Expr(ExprKind::FloatLit), Value(Value), IsFloat(IsFloat) {}

  double Value;
  /// True if spelled with an `f` suffix (type float rather than double).
  bool IsFloat;

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::FloatLit;
  }
};

class StringLit : public Expr {
public:
  explicit StringLit(std::string Value)
      : Expr(ExprKind::StringLit), Value(std::move(Value)) {}

  std::string Value;

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::StringLit;
  }
};

class VarRef : public Expr {
public:
  explicit VarRef(std::string Name)
      : Expr(ExprKind::VarRef), Name(std::move(Name)) {}

  std::string Name;
  /// Resolved declaration; set during Sema. Null for enum-like constants.
  const VarDecl *Decl = nullptr;

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::VarRef;
  }
};

class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, ExprPtr Operand)
      : Expr(ExprKind::Unary), Op(Op), Operand(std::move(Operand)) {}

  UnaryOp Op;
  ExprPtr Operand;

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Unary;
  }
};

class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, ExprPtr LHS, ExprPtr RHS)
      : Expr(ExprKind::Binary), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}

  BinaryOp Op;
  ExprPtr LHS, RHS;

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Binary;
  }
};

class ConditionalExpr : public Expr {
public:
  ConditionalExpr(ExprPtr Cond, ExprPtr Then, ExprPtr Else)
      : Expr(ExprKind::Conditional), Cond(std::move(Cond)),
        Then(std::move(Then)), Else(std::move(Else)) {}

  ExprPtr Cond, Then, Else;

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Conditional;
  }
};

class CallExpr : public Expr {
public:
  CallExpr(std::string Callee, std::vector<ExprPtr> Args)
      : Expr(ExprKind::Call), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  std::string Callee;
  std::vector<ExprPtr> Args;
  /// Resolved callee; set during Sema. Null for unknown externals.
  const FunctionDecl *Decl = nullptr;

  static bool classof(const Expr *E) { return E->getKind() == ExprKind::Call; }
};

class IndexExpr : public Expr {
public:
  IndexExpr(ExprPtr Base, ExprPtr Index)
      : Expr(ExprKind::Index), Base(std::move(Base)),
        Index(std::move(Index)) {}

  ExprPtr Base, Index;

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Index;
  }
};

class MemberExpr : public Expr {
public:
  MemberExpr(ExprPtr Base, std::string Member, bool IsArrow)
      : Expr(ExprKind::Member), Base(std::move(Base)),
        Member(std::move(Member)), IsArrow(IsArrow) {}

  ExprPtr Base;
  std::string Member;
  bool IsArrow;
  /// Byte offset of the member; set during Sema.
  unsigned Offset = 0;

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Member;
  }
};

class CastExpr : public Expr {
public:
  CastExpr(const Type *Target, ExprPtr Operand)
      : Expr(ExprKind::Cast), Target(Target), Operand(std::move(Operand)) {}

  const Type *Target;
  ExprPtr Operand;

  static bool classof(const Expr *E) { return E->getKind() == ExprKind::Cast; }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind {
  Compound,
  Expr,
  Decl,
  If,
  While,
  DoWhile,
  For,
  Return,
  Break,
  Continue,
  Empty,
};

class Stmt {
public:
  virtual ~Stmt() = default;
  StmtKind getKind() const { return Kind; }

protected:
  explicit Stmt(StmtKind Kind) : Kind(Kind) {}

private:
  StmtKind Kind;
};

using StmtPtr = std::unique_ptr<Stmt>;

class CompoundStmt : public Stmt {
public:
  CompoundStmt() : Stmt(StmtKind::Compound) {}

  std::vector<StmtPtr> Body;

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Compound;
  }
};

class ExprStmt : public Stmt {
public:
  explicit ExprStmt(ExprPtr E) : Stmt(StmtKind::Expr), E(std::move(E)) {}

  ExprPtr E;

  static bool classof(const Stmt *S) { return S->getKind() == StmtKind::Expr; }
};

class DeclStmt : public Stmt {
public:
  DeclStmt() : Stmt(StmtKind::Decl) {}

  std::vector<std::unique_ptr<VarDecl>> Decls;

  static bool classof(const Stmt *S) { return S->getKind() == StmtKind::Decl; }
};

class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else)
      : Stmt(StmtKind::If), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else; ///< May be null.

  static bool classof(const Stmt *S) { return S->getKind() == StmtKind::If; }
};

class WhileStmt : public Stmt {
public:
  WhileStmt(ExprPtr Cond, StmtPtr Body)
      : Stmt(StmtKind::While), Cond(std::move(Cond)), Body(std::move(Body)) {}

  ExprPtr Cond;
  StmtPtr Body;

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::While;
  }
};

class DoWhileStmt : public Stmt {
public:
  DoWhileStmt(StmtPtr Body, ExprPtr Cond)
      : Stmt(StmtKind::DoWhile), Body(std::move(Body)),
        Cond(std::move(Cond)) {}

  StmtPtr Body;
  ExprPtr Cond;

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::DoWhile;
  }
};

class ForStmt : public Stmt {
public:
  ForStmt(StmtPtr Init, ExprPtr Cond, ExprPtr Step, StmtPtr Body)
      : Stmt(StmtKind::For), Init(std::move(Init)), Cond(std::move(Cond)),
        Step(std::move(Step)), Body(std::move(Body)) {}

  StmtPtr Init; ///< DeclStmt, ExprStmt or null.
  ExprPtr Cond; ///< May be null (infinite loop).
  ExprPtr Step; ///< May be null.
  StmtPtr Body;

  static bool classof(const Stmt *S) { return S->getKind() == StmtKind::For; }
};

class ReturnStmt : public Stmt {
public:
  explicit ReturnStmt(ExprPtr Value)
      : Stmt(StmtKind::Return), Value(std::move(Value)) {}

  ExprPtr Value; ///< May be null for `return;`.

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Return;
  }
};

class BreakStmt : public Stmt {
public:
  BreakStmt() : Stmt(StmtKind::Break) {}
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Break;
  }
};

class ContinueStmt : public Stmt {
public:
  ContinueStmt() : Stmt(StmtKind::Continue) {}
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Continue;
  }
};

class EmptyStmt : public Stmt {
public:
  EmptyStmt() : Stmt(StmtKind::Empty) {}
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Empty;
  }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// A variable: local, parameter, or global.
class VarDecl {
public:
  VarDecl(std::string Name, const Type *Ty)
      : Name(std::move(Name)), Ty(Ty) {}

  std::string Name;
  const Type *Ty;
  ExprPtr Init;           ///< May be null.
  bool IsGlobal = false;  ///< File-scope variable.
  bool IsExtern = false;  ///< Declared but defined elsewhere.
  bool IsParam = false;   ///< Function parameter.
};

/// A function definition or declaration.
class FunctionDecl {
public:
  FunctionDecl(std::string Name, const Type *RetTy)
      : Name(std::move(Name)), RetTy(RetTy) {}

  std::string Name;
  const Type *RetTy;
  std::vector<std::unique_ptr<VarDecl>> Params;
  std::unique_ptr<CompoundStmt> Body; ///< Null for declarations.

  bool isDefinition() const { return Body != nullptr; }
};

/// typedef Name = Ty (only required for pretty-printing the context).
struct TypedefDecl {
  std::string Name;
  const Type *Ty;
};

/// A parsed translation unit. Owns declarations; types live in the
/// TypeContext supplied at parse time.
class TranslationUnit {
public:
  std::vector<TypedefDecl> Typedefs;
  std::vector<StructType *> Structs; ///< In declaration order.
  std::vector<std::unique_ptr<VarDecl>> Globals;
  std::vector<std::unique_ptr<FunctionDecl>> Functions;

  FunctionDecl *findFunction(const std::string &Name) const;
  VarDecl *findGlobal(const std::string &Name) const;
};

} // namespace cc
} // namespace slade

#endif // SLADE_CC_AST_H
