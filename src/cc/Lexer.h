//===- Lexer.h - mini-C lexer -----------------------------------*- C++ -*-===//
///
/// \file
/// Lexer for the mini-C dialect. Also used in a tolerant mode to produce
/// the canonical token stream for edit-similarity computation (§III-B):
/// unknown characters become single-character tokens instead of errors.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_CC_LEXER_H
#define SLADE_CC_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace slade {
namespace cc {

enum class TokKind {
  Eof,
  Identifier,
  Keyword,
  IntLiteral,
  FloatLiteral,
  CharLiteral,
  StringLiteral,
  Punct,
  Unknown, // Tolerant mode only: an unrecognized character.
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;      ///< Spelling (for literals, the raw spelling).
  uint64_t IntValue = 0; ///< Value for Int/Char literals.
  double FloatValue = 0; ///< Value for Float literals.
  std::string StrValue;  ///< Decoded value for string literals.
  int Line = 0;

  bool is(TokKind K) const { return Kind == K; }
  bool isPunct(std::string_view P) const {
    return Kind == TokKind::Punct && Text == P;
  }
  bool isKeyword(std::string_view K) const {
    return Kind == TokKind::Keyword && Text == K;
  }
  bool isIdent() const { return Kind == TokKind::Identifier; }
};

/// Lexes \p Source into a token vector ending with an Eof token.
///
/// In strict mode an unrecognized character aborts lexing and records an
/// error; in tolerant mode it becomes an Unknown token. \p Error receives
/// the first diagnostic (empty on success).
std::vector<Token> lexC(std::string_view Source, bool Tolerant,
                        std::string *Error);

/// True if \p Name is a keyword of the mini-C dialect.
bool isCKeyword(std::string_view Name);

/// Canonical token spellings of \p Source for edit-distance computation.
/// Comments and whitespace are dropped; lexing never fails.
std::vector<std::string> cTokenSpellings(std::string_view Source);

} // namespace cc
} // namespace slade

#endif // SLADE_CC_LEXER_H
