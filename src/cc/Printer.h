//===- Printer.h - mini-C pretty printer ------------------------*- C++ -*-===//
///
/// \file
/// Canonical C rendering of AST nodes: the format ground-truth corpus
/// functions are serialized in (and therefore the textual style the model
/// learns to produce).
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_CC_PRINTER_H
#define SLADE_CC_PRINTER_H

#include "cc/AST.h"

#include <string>

namespace slade {
namespace cc {

/// Renders a full translation unit (typedefs, structs, globals, functions).
std::string printTranslationUnit(const TranslationUnit &TU);

/// Renders a single function definition (or declaration if no body).
std::string printFunction(const FunctionDecl &F);

/// Renders an expression (used in tests and the rule-based decompiler).
std::string printExpr(const Expr &E);

/// Renders `Ty Name` with correct array declarator placement, e.g.
/// "int buf[8]" or "struct S *p".
std::string printDeclarator(const Type *Ty, const std::string &Name);

} // namespace cc
} // namespace slade

#endif // SLADE_CC_PRINTER_H
