//===- Printer.cpp - mini-C pretty printer ---------------------------------===//

#include "cc/Printer.h"

#include "support/StringUtils.h"
#include "support/Unreachable.h"

using namespace slade;
using namespace slade::cc;

namespace {

/// C operator precedence levels used to decide where parentheses are
/// required when rendering expressions.
enum Prec {
  PrecComma = 0,
  PrecAssign = 1,
  PrecCond = 2,
  PrecLogOr = 3,
  PrecLogAnd = 4,
  PrecBitOr = 5,
  PrecBitXor = 6,
  PrecBitAnd = 7,
  PrecEq = 8,
  PrecRel = 9,
  PrecShift = 10,
  PrecAdd = 11,
  PrecMul = 12,
  PrecUnary = 13,
  PrecPostfix = 14,
  PrecPrimary = 15,
};

int binaryPrec(BinaryOp Op) {
  if (isAssignOp(Op))
    return PrecAssign;
  switch (Op) {
  case BinaryOp::Comma:
    return PrecComma;
  case BinaryOp::LogOr:
    return PrecLogOr;
  case BinaryOp::LogAnd:
    return PrecLogAnd;
  case BinaryOp::BitOr:
    return PrecBitOr;
  case BinaryOp::BitXor:
    return PrecBitXor;
  case BinaryOp::BitAnd:
    return PrecBitAnd;
  case BinaryOp::Eq:
  case BinaryOp::Ne:
    return PrecEq;
  case BinaryOp::Lt:
  case BinaryOp::Gt:
  case BinaryOp::Le:
  case BinaryOp::Ge:
    return PrecRel;
  case BinaryOp::Shl:
  case BinaryOp::Shr:
    return PrecShift;
  case BinaryOp::Add:
  case BinaryOp::Sub:
    return PrecAdd;
  case BinaryOp::Mul:
  case BinaryOp::Div:
  case BinaryOp::Rem:
    return PrecMul;
  default:
    SLADE_UNREACHABLE("assignment handled above");
  }
}

class PrinterImpl {
public:
  std::string Out;
  int Indent = 0;

  void line(const std::string &Text) {
    for (int I = 0; I < Indent; ++I)
      Out += "  ";
    Out += Text;
    Out += '\n';
  }

  void expr(const Expr &E, int ParentPrec);
  void stmt(const Stmt &S);
  void function(const FunctionDecl &F);
  std::string exprStr(const Expr &E, int ParentPrec) {
    PrinterImpl Sub;
    Sub.expr(E, ParentPrec);
    return Sub.Out;
  }
};

std::string escapeString(const std::string &S) {
  std::string Out = "\"";
  for (char C : S) {
    switch (C) {
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\0':
      Out += "\\0";
      break;
    default:
      Out.push_back(C);
    }
  }
  Out += '"';
  return Out;
}

void PrinterImpl::expr(const Expr &E, int ParentPrec) {
  switch (E.getKind()) {
  case ExprKind::IntLit:
    Out += std::to_string(cast<IntLit>(&E)->Value);
    return;
  case ExprKind::FloatLit: {
    const auto *F = cast<FloatLit>(&E);
    std::string Text = formatString("%g", F->Value);
    if (Text.find('.') == std::string::npos &&
        Text.find('e') == std::string::npos)
      Text += ".0";
    Out += Text;
    if (F->IsFloat)
      Out += 'f';
    return;
  }
  case ExprKind::StringLit:
    Out += escapeString(cast<StringLit>(&E)->Value);
    return;
  case ExprKind::VarRef:
    Out += cast<VarRef>(&E)->Name;
    return;
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    bool Postfix = U->Op == UnaryOp::PostInc || U->Op == UnaryOp::PostDec;
    int MyPrec = Postfix ? PrecPostfix : PrecUnary;
    bool Paren = MyPrec < ParentPrec;
    if (Paren)
      Out += '(';
    if (Postfix) {
      expr(*U->Operand, PrecPostfix);
      Out += unaryOpSpelling(U->Op);
    } else {
      Out += unaryOpSpelling(U->Op);
      // Avoid `--x` when printing -(-x).
      if ((U->Op == UnaryOp::Neg &&
           U->Operand->getKind() == ExprKind::Unary &&
           cast<UnaryExpr>(U->Operand.get())->Op == UnaryOp::Neg))
        Out += ' ';
      expr(*U->Operand, PrecUnary);
    }
    if (Paren)
      Out += ')';
    return;
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    int MyPrec = binaryPrec(B->Op);
    bool Paren = MyPrec < ParentPrec;
    if (Paren)
      Out += '(';
    bool RightAssoc = isAssignOp(B->Op);
    expr(*B->LHS, RightAssoc ? MyPrec + 1 : MyPrec);
    Out += ' ';
    Out += binaryOpSpelling(B->Op);
    Out += ' ';
    expr(*B->RHS, RightAssoc ? MyPrec : MyPrec + 1);
    if (Paren)
      Out += ')';
    return;
  }
  case ExprKind::Conditional: {
    const auto *C = cast<ConditionalExpr>(&E);
    bool Paren = PrecCond < ParentPrec;
    if (Paren)
      Out += '(';
    expr(*C->Cond, PrecCond + 1);
    Out += " ? ";
    expr(*C->Then, PrecAssign);
    Out += " : ";
    expr(*C->Else, PrecCond);
    if (Paren)
      Out += ')';
    return;
  }
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(&E);
    Out += C->Callee;
    Out += '(';
    for (size_t I = 0; I < C->Args.size(); ++I) {
      if (I)
        Out += ", ";
      expr(*C->Args[I], PrecAssign);
    }
    Out += ')';
    return;
  }
  case ExprKind::Index: {
    const auto *I = cast<IndexExpr>(&E);
    expr(*I->Base, PrecPostfix);
    Out += '[';
    expr(*I->Index, PrecComma + 1);
    Out += ']';
    return;
  }
  case ExprKind::Member: {
    const auto *M = cast<MemberExpr>(&E);
    expr(*M->Base, PrecPostfix);
    Out += M->IsArrow ? "->" : ".";
    Out += M->Member;
    return;
  }
  case ExprKind::Cast: {
    const auto *C = cast<CastExpr>(&E);
    bool Paren = PrecUnary < ParentPrec;
    if (Paren)
      Out += '(';
    Out += '(';
    Out += C->Target->spelling();
    Out += ')';
    expr(*C->Operand, PrecUnary);
    if (Paren)
      Out += ')';
    return;
  }
  }
  SLADE_UNREACHABLE("covered expression kind switch");
}

std::string declString(const VarDecl &V) {
  std::string Decl = printDeclarator(V.Ty, V.Name);
  if (V.Init) {
    PrinterImpl P;
    P.expr(*V.Init, PrecAssign + 1);
    Decl += " = " + P.Out;
  }
  return Decl;
}

void PrinterImpl::stmt(const Stmt &S) {
  switch (S.getKind()) {
  case StmtKind::Compound: {
    line("{");
    ++Indent;
    for (const StmtPtr &Child : cast<CompoundStmt>(&S)->Body)
      stmt(*Child);
    --Indent;
    line("}");
    return;
  }
  case StmtKind::Expr:
    line(exprStr(*cast<ExprStmt>(&S)->E, PrecComma) + ";");
    return;
  case StmtKind::Decl: {
    for (const auto &V : cast<DeclStmt>(&S)->Decls)
      line(declString(*V) + ";");
    return;
  }
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(&S);
    line("if (" + exprStr(*I->Cond, PrecComma) + ") {");
    ++Indent;
    if (const auto *C = dyn_cast<CompoundStmt>(I->Then.get())) {
      for (const StmtPtr &Child : C->Body)
        stmt(*Child);
    } else {
      stmt(*I->Then);
    }
    --Indent;
    if (I->Else) {
      line("} else {");
      ++Indent;
      if (const auto *C = dyn_cast<CompoundStmt>(I->Else.get())) {
        for (const StmtPtr &Child : C->Body)
          stmt(*Child);
      } else {
        stmt(*I->Else);
      }
      --Indent;
    }
    line("}");
    return;
  }
  case StmtKind::While: {
    const auto *W = cast<WhileStmt>(&S);
    line("while (" + exprStr(*W->Cond, PrecComma) + ") {");
    ++Indent;
    if (const auto *C = dyn_cast<CompoundStmt>(W->Body.get())) {
      for (const StmtPtr &Child : C->Body)
        stmt(*Child);
    } else {
      stmt(*W->Body);
    }
    --Indent;
    line("}");
    return;
  }
  case StmtKind::DoWhile: {
    const auto *D = cast<DoWhileStmt>(&S);
    line("do {");
    ++Indent;
    if (const auto *C = dyn_cast<CompoundStmt>(D->Body.get())) {
      for (const StmtPtr &Child : C->Body)
        stmt(*Child);
    } else {
      stmt(*D->Body);
    }
    --Indent;
    line("} while (" + exprStr(*D->Cond, PrecComma) + ");");
    return;
  }
  case StmtKind::For: {
    const auto *F = cast<ForStmt>(&S);
    std::string Header = "for (";
    if (F->Init) {
      if (const auto *DS = dyn_cast<DeclStmt>(F->Init.get())) {
        std::vector<std::string> Parts;
        for (const auto &V : DS->Decls)
          Parts.push_back(declString(*V));
        Header += joinStrings(Parts, ", ");
      } else {
        Header += exprStr(*cast<ExprStmt>(F->Init.get())->E, PrecComma);
      }
    }
    Header += "; ";
    if (F->Cond)
      Header += exprStr(*F->Cond, PrecComma);
    Header += "; ";
    if (F->Step)
      Header += exprStr(*F->Step, PrecComma);
    Header += ") {";
    line(Header);
    ++Indent;
    if (const auto *C = dyn_cast<CompoundStmt>(F->Body.get())) {
      for (const StmtPtr &Child : C->Body)
        stmt(*Child);
    } else {
      stmt(*F->Body);
    }
    --Indent;
    line("}");
    return;
  }
  case StmtKind::Return: {
    const auto *R = cast<ReturnStmt>(&S);
    if (R->Value)
      line("return " + exprStr(*R->Value, PrecComma) + ";");
    else
      line("return;");
    return;
  }
  case StmtKind::Break:
    line("break;");
    return;
  case StmtKind::Continue:
    line("continue;");
    return;
  case StmtKind::Empty:
    line(";");
    return;
  }
  SLADE_UNREACHABLE("covered statement kind switch");
}

void PrinterImpl::function(const FunctionDecl &F) {
  std::string Header = printDeclarator(F.RetTy, F.Name) + "(";
  if (F.Params.empty()) {
    Header += "void";
  } else {
    std::vector<std::string> Parts;
    for (const auto &P : F.Params)
      Parts.push_back(printDeclarator(P->Ty, P->Name));
    Header += joinStrings(Parts, ", ");
  }
  Header += ")";
  if (!F.Body) {
    line(Header + ";");
    return;
  }
  line(Header + " {");
  ++Indent;
  for (const StmtPtr &Child : F.Body->Body)
    stmt(*Child);
  --Indent;
  line("}");
}

} // namespace

std::string slade::cc::printDeclarator(const Type *Ty,
                                       const std::string &Name) {
  // Peel array dimensions so they print after the name.
  std::string Dims;
  const Type *T = Ty;
  while (const auto *A = dyn_cast<ArrayType>(T)) {
    Dims += "[" + std::to_string(A->count()) + "]";
    T = A->element();
  }
  std::string Base = T->spelling();
  if (!Base.empty() && Base.back() == '*')
    return Base + Name + Dims;
  return Base + " " + Name + Dims;
}

std::string slade::cc::printExpr(const Expr &E) {
  PrinterImpl P;
  P.expr(E, PrecComma);
  return P.Out;
}

std::string slade::cc::printFunction(const FunctionDecl &F) {
  PrinterImpl P;
  P.function(F);
  return P.Out;
}

std::string slade::cc::printTranslationUnit(const TranslationUnit &TU) {
  PrinterImpl P;
  for (const TypedefDecl &T : TU.Typedefs)
    P.line("typedef " + printDeclarator(T.Ty, T.Name) + ";");
  for (const StructType *S : TU.Structs) {
    P.line("struct " + S->name() + " {");
    ++P.Indent;
    for (const StructType::Field &F : S->fields())
      P.line(printDeclarator(F.Ty, F.Name) + ";");
    --P.Indent;
    P.line("};");
  }
  for (const auto &G : TU.Globals) {
    std::string Decl = G->IsExtern ? "extern " : "";
    Decl += printDeclarator(G->Ty, G->Name);
    if (G->Init)
      Decl += " = " + printExpr(*G->Init);
    P.line(Decl + ";");
  }
  for (const auto &F : TU.Functions) {
    P.function(*F);
    P.Out += '\n';
  }
  return P.Out;
}
