//===- Type.h - mini-C type system ------------------------------*- C++ -*-===//
///
/// \file
/// Canonical types for the mini-C dialect used throughout the repository.
/// Types are interned in a TypeContext and referenced by const pointer, so
/// pointer equality is type equality (except for struct types, which are
/// nominal). Both target ISAs are LP64, so layout is target-independent.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_CC_TYPE_H
#define SLADE_CC_TYPE_H

#include "support/Casting.h"

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace slade {
namespace cc {

enum class TypeKind { Void, Int, Float, Pointer, Array, Struct, Named };

/// Base of the canonical type hierarchy. Instances are owned by a
/// TypeContext and live as long as it does.
class Type {
public:
  TypeKind getKind() const { return Kind; }

  bool isVoid() const { return Kind == TypeKind::Void; }
  bool isInteger() const { return Kind == TypeKind::Int; }
  bool isFloating() const { return Kind == TypeKind::Float; }
  bool isPointer() const { return Kind == TypeKind::Pointer; }
  bool isArray() const { return Kind == TypeKind::Array; }
  bool isStruct() const { return Kind == TypeKind::Struct; }
  bool isNamed() const { return Kind == TypeKind::Named; }
  bool isArithmetic() const {
    return canonical()->isInteger() || canonical()->isFloating();
  }
  /// True for types usable in address arithmetic (pointer or array).
  bool isPointerLike() const {
    return canonical()->isPointer() || canonical()->isArray();
  }

  /// Strips Named wrappers. A Named type whose underlying type is still
  /// unknown canonicalizes to itself (callers must handle that before
  /// layout queries).
  const Type *canonical() const;

  /// Size in bytes; void has size 0.
  unsigned size() const;
  /// Alignment in bytes; void has alignment 1.
  unsigned align() const;

  /// C spelling of this type, e.g. "unsigned int *".
  std::string spelling() const;

protected:
  explicit Type(TypeKind Kind) : Kind(Kind) {}
  ~Type() = default;

private:
  TypeKind Kind;
};

class VoidType : public Type {
public:
  VoidType() : Type(TypeKind::Void) {}
  static bool classof(const Type *T) { return T->getKind() == TypeKind::Void; }
};

/// Integer type of 8/16/32/64 bits, signed or unsigned. `char` is signed.
class IntType : public Type {
public:
  IntType(unsigned Bits, bool Signed)
      : Type(TypeKind::Int), Bits(Bits), Signed(Signed) {
    assert((Bits == 8 || Bits == 16 || Bits == 32 || Bits == 64) &&
           "unsupported integer width");
  }

  unsigned bits() const { return Bits; }
  bool isSigned() const { return Signed; }

  static bool classof(const Type *T) { return T->getKind() == TypeKind::Int; }

private:
  unsigned Bits;
  bool Signed;
};

/// float (32 bits) or double (64 bits).
class FloatType : public Type {
public:
  explicit FloatType(unsigned Bits) : Type(TypeKind::Float), Bits(Bits) {
    assert((Bits == 32 || Bits == 64) && "unsupported float width");
  }

  unsigned bits() const { return Bits; }

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Float;
  }

private:
  unsigned Bits;
};

class PointerType : public Type {
public:
  explicit PointerType(const Type *Pointee)
      : Type(TypeKind::Pointer), Pointee(Pointee) {}

  const Type *pointee() const { return Pointee; }

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Pointer;
  }

private:
  const Type *Pointee;
};

/// Fixed-length array type. Arrays decay to pointers in expressions.
class ArrayType : public Type {
public:
  ArrayType(const Type *Elem, uint64_t Count)
      : Type(TypeKind::Array), Elem(Elem), Count(Count) {}

  const Type *element() const { return Elem; }
  uint64_t count() const { return Count; }

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Array;
  }

private:
  const Type *Elem;
  uint64_t Count;
};

/// Nominal struct type. Fields are laid out with natural alignment.
class StructType : public Type {
public:
  struct Field {
    std::string Name;
    const Type *Ty = nullptr;
    unsigned Offset = 0;
  };

  explicit StructType(std::string Name)
      : Type(TypeKind::Struct), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  bool isComplete() const { return Complete; }
  const std::vector<Field> &fields() const { return Fields; }

  /// Defines the field list and computes layout. May be called once.
  void setFields(std::vector<Field> NewFields);

  /// Returns the field with \p Name or null.
  const Field *findField(const std::string &Name) const;

  unsigned structSize() const { return Size; }
  unsigned structAlign() const { return Align; }

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Struct;
  }

private:
  std::string Name;
  std::vector<Field> Fields;
  unsigned Size = 0;
  unsigned Align = 1;
  bool Complete = false;
};

/// A typedef-style name whose referent may be unknown. The parser creates
/// these for identifiers used in type position that are not declared in the
/// current context (the "missing typedef" situation §VI-B); the type
/// inference engine later fills in the underlying type.
class NamedType : public Type {
public:
  explicit NamedType(std::string Name)
      : Type(TypeKind::Named), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  bool isResolved() const { return Underlying != nullptr; }
  const Type *underlying() const { return Underlying; }
  void resolve(const Type *T) {
    assert(T && "resolving named type to null");
    Underlying = T;
  }

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Named;
  }

private:
  std::string Name;
  const Type *Underlying = nullptr;
};

/// Owns and interns Type instances. Pointer/array/struct types created
/// through the context are unique per (shape), so `==` on const Type*
/// means structural equality (nominal for structs).
class TypeContext {
public:
  TypeContext();
  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;

  const VoidType *voidTy() const { return &VoidT; }
  const IntType *intTy(unsigned Bits, bool Signed) const;
  const IntType *charTy() const { return intTy(8, true); }
  const IntType *shortTy() const { return intTy(16, true); }
  const IntType *int32Ty() const { return intTy(32, true); }
  const IntType *int64Ty() const { return intTy(64, true); }
  const IntType *uint32Ty() const { return intTy(32, false); }
  const IntType *uint64Ty() const { return intTy(64, false); }
  const FloatType *floatTy() const { return &FloatT; }
  const FloatType *doubleTy() const { return &DoubleT; }

  const PointerType *pointerTo(const Type *Pointee);
  const ArrayType *arrayOf(const Type *Elem, uint64_t Count);

  /// Returns the struct named \p Name, creating an incomplete one if it
  /// does not exist yet.
  StructType *getOrCreateStruct(const std::string &Name);
  /// Returns the struct named \p Name or null.
  StructType *findStruct(const std::string &Name);

  /// Returns the (unique) named type for \p Name, creating it unresolved.
  NamedType *getOrCreateNamed(const std::string &Name);
  NamedType *findNamed(const std::string &Name);
  /// All named types created so far, in creation order.
  std::vector<NamedType *> namedTypes() const;

private:
  VoidType VoidT;
  IntType Ints[8] = {IntType(8, true),   IntType(8, false),
                     IntType(16, true),  IntType(16, false),
                     IntType(32, true),  IntType(32, false),
                     IntType(64, true),  IntType(64, false)};
  FloatType FloatT{32};
  FloatType DoubleT{64};
  std::map<const Type *, std::unique_ptr<PointerType>> Pointers;
  std::map<std::pair<const Type *, uint64_t>, std::unique_ptr<ArrayType>>
      Arrays;
  std::map<std::string, std::unique_ptr<StructType>> Structs;
  std::map<std::string, std::unique_ptr<NamedType>> Named;
  std::vector<NamedType *> NamedOrder;
};

} // namespace cc
} // namespace slade

#endif // SLADE_CC_TYPE_H
