//===- PrefixOracle.cpp - incremental C-prefix acceptability ---------------===//
//
// A pushdown automaton over the mini-C grammar accepted by cc::Parser in
// Partial mode, fed by an incremental lexer that mirrors cc::Lexer
// byte-for-byte. See PrefixOracle.h for the soundness contract; the
// differential test in tests/test_constrain.cpp pins this file against the
// real frontend.
//
// Structure of this file:
//   1. Static token tables (keywords, punctuators, maximal-munch chains).
//   2. The PDA: frame kinds, per-frame transition tables (stepFrame),
//      pop rules, and the terminal feed loop.
//   3. The incremental lexer (feedChar/flushPending) that turns raw bytes
//      into Term terminals at exactly the boundaries cc::Lexer would.
//
// Where the parser disambiguates with lookahead or typedef knowledge the
// PDA tracks the union of interpretations (K_IdentStmt for decl-vs-expr,
// E_MaybeCastOp for cast-vs-paren); it only rejects when every
// interpretation rejects, so rejection always implies a real parse error.
//
//===----------------------------------------------------------------------===//

#include "cc/PrefixOracle.h"

#include <cctype>

using namespace slade;
using namespace slade::cc;

namespace {

//===----------------------------------------------------------------------===//
// 1. Token tables
//===----------------------------------------------------------------------===//

using PO = PrefixOracle;

struct KwEntry {
  const char *Word;
  int Term; // -1: lexed as a keyword but never accepted by the parser
};

// Exactly the cc::isCKeyword set. Any other word lexes as an identifier.
constexpr KwEntry Keywords[] = {
    {"void", PO::T_KwType},      {"char", PO::T_KwType},
    {"short", PO::T_KwType},     {"int", PO::T_KwType},
    {"long", PO::T_KwType},      {"float", PO::T_KwType},
    {"double", PO::T_KwType},    {"signed", PO::T_KwType},
    {"unsigned", PO::T_KwType},  {"_Bool", PO::T_KwType},
    {"const", PO::T_KwQual},     {"volatile", PO::T_KwQual},
    {"restrict", PO::T_KwQual},  {"__restrict", PO::T_KwQual},
    {"inline", PO::T_KwQual},    {"register", PO::T_KwQual},
    {"static", PO::T_KwQual},    {"struct", PO::T_KwStruct},
    {"typedef", PO::T_KwTypedef},{"extern", PO::T_KwExtern},
    {"sizeof", PO::T_KwSizeof},  {"if", PO::T_KwIf},
    {"else", PO::T_KwElse},      {"while", PO::T_KwWhile},
    {"do", PO::T_KwDo},          {"for", PO::T_KwFor},
    {"return", PO::T_KwReturn},  {"break", PO::T_KwBreak},
    {"continue", PO::T_KwContinue},
    {"union", -1}, {"enum", -1}, {"switch", -1},
    {"case", -1},  {"default", -1}, {"goto", -1},
};

struct PunctEntry {
  const char *Spelling;
  int Term;
};

// Multi-character punctuators, mirroring cc::Lexer's MultiPuncts table.
// "..." is lexed but never accepted by the parser.
constexpr PunctEntry MultiPuncts[] = {
    {"<<=", PO::T_OpAssign}, {">>=", PO::T_OpAssign}, {"...", -1},
    {"->", PO::T_Arrow},     {"++", PO::T_Inc},       {"--", PO::T_Dec},
    {"<<", PO::T_BinOp},     {">>", PO::T_BinOp},     {"<=", PO::T_BinOp},
    {">=", PO::T_BinOp},     {"==", PO::T_BinOp},     {"!=", PO::T_BinOp},
    {"&&", PO::T_BinOp},     {"||", PO::T_BinOp},     {"+=", PO::T_OpAssign},
    {"-=", PO::T_OpAssign},  {"*=", PO::T_OpAssign},  {"/=", PO::T_OpAssign},
    {"%=", PO::T_OpAssign},  {"&=", PO::T_OpAssign},  {"|=", PO::T_OpAssign},
    {"^=", PO::T_OpAssign},
};

constexpr PunctEntry SinglePuncts[] = {
    {"+", PO::T_Plus},     {"-", PO::T_Minus},    {"*", PO::T_Star},
    {"/", PO::T_BinOp},    {"%", PO::T_BinOp},    {"<", PO::T_BinOp},
    {">", PO::T_BinOp},    {"=", PO::T_Assign},   {"!", PO::T_Bang},
    {"&", PO::T_Amp},      {"|", PO::T_BinOp},    {"^", PO::T_BinOp},
    {"~", PO::T_Tilde},    {"?", PO::T_Question}, {":", PO::T_Colon},
    {";", PO::T_Semi},     {",", PO::T_Comma},    {".", PO::T_Dot},
    {"(", PO::T_LParen},   {")", PO::T_RParen},   {"{", PO::T_LBrace},
    {"}", PO::T_RBrace},   {"[", PO::T_LBracket}, {"]", PO::T_RBracket},
};

bool identStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}
bool identChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}
bool isDigitC(char C) { return std::isdigit(static_cast<unsigned char>(C)); }
bool isXDigit(char C) { return std::isxdigit(static_cast<unsigned char>(C)); }
bool numSuffix(char C) {
  return C == 'u' || C == 'U' || C == 'l' || C == 'L' || C == 'f' || C == 'F';
}

//===----------------------------------------------------------------------===//
// 2. PDA tables
//===----------------------------------------------------------------------===//

enum FrameKind : uint8_t {
  K_TU = 0,     // translation unit (bottom frame, never popped)
  K_Type,       // type-specifier (quals, builtins, named, struct [body])
  K_StructBody, // struct field list after '{'
  K_Typedef,    // typedef <type> <pointers> <name> ;
  K_TopDecl,    // top-level function or global(s); F0=1: bare-struct form
  K_Params,     // function parameter list after '('
  K_Block,      // compound statement after '{'
  K_Stmt,       // statement dispatcher (transmutes in place)
  K_If,
  K_While,
  K_Do,
  K_For,
  K_Return,
  K_SimpleStmt, // break/continue/empty: just needs ';'
  K_LocalDecl,  // local declaration, consumes trailing ';'
  K_IdentStmt,  // statement starting with an identifier (decl/expr union)
  K_ExprStmt,   // expression statement, consumes trailing ';'
  K_Expr,       // expression (assignment/conditional/binary/postfix union)
};

// K_Expr states.
enum ExprState : uint8_t {
  E_NeedOp = 0,      // expecting an operand (or prefix operator)
  E_HaveOp,          // operand complete; operator/postfix/end may follow
  E_Member,          // after '.'/'->': field name required
  E_CloseGroup,      // after '(expr': ')' required
  E_CloseIndex,      // after '[expr': ']' required
  E_CloseTern,       // after '?expr': ':' required
  E_CallOpen,        // after 'ident(': ')' or first argument
  E_CallArgs,        // between call arguments: ',' or ')'
  E_ParenDispatch,   // after '(': cast vs group vs ambiguous-name
  E_CastClose,       // after '(<type-kw ...>': '*' or ')'
  E_CastPtr,         // pointer suffix inside a cast: '*'/qual/')'
  E_AmbClose,        // after '(name...': ')' closes group or cast
  E_MaybeCastOp,     // '(name)' seen: operand-done OR cast-pending union
  E_AmbCallOpen,     // '(name)(': call args or cast-of-paren-expr
  E_AmbCallClose,    // after '(name)(expr': ')' required
  E_Sizeof,          // after 'sizeof'
  E_SizeofParen,     // after 'sizeof('
  E_SizeofCastClose, // after 'sizeof(<type>': '*' or ')'
  E_SizeofCastPtr,   // pointer suffix inside sizeof(type)
  E_SizeofClose,     // after 'sizeof(expr': ')' required
};

// K_Expr F0 flags.
constexpr uint8_t X_CommaOk = 1; // comma continues this expression
constexpr uint8_t X_TypeCtx = 2; // `Ident *...` may close as a type name

// K_Expr F1 flags.
constexpr uint8_t XF_TypeViable = 1;  // content so far is Ident Star*
constexpr uint8_t XF_SawOp = 2;       // any operator consumed
constexpr uint8_t XF_OperandVar = 4;  // last operand is a plain VarRef
constexpr uint8_t XF_Seen = 8;        // at least one terminal consumed
constexpr uint8_t XF_ChildTV = 16;    // last popped child was type-viable
constexpr uint8_t XF_ChildPure = 32;  // last popped child was a pure VarRef

constexpr uint64_t B_TypeStart = PO::bit(PO::T_KwType) | PO::bit(PO::T_KwQual) |
                                 PO::bit(PO::T_KwStruct) | PO::bit(PO::T_Ident);
constexpr uint64_t B_UnaryPre =
    PO::bit(PO::T_Star) | PO::bit(PO::T_Amp) | PO::bit(PO::T_Plus) |
    PO::bit(PO::T_Minus) | PO::bit(PO::T_Bang) | PO::bit(PO::T_Tilde) |
    PO::bit(PO::T_Inc) | PO::bit(PO::T_Dec);
constexpr uint64_t B_Literal = PO::bit(PO::T_IntLit) | PO::bit(PO::T_FloatLit) |
                               PO::bit(PO::T_CharLit) | PO::bit(PO::T_StrLit);
constexpr uint64_t B_ExprStart = B_Literal | PO::bit(PO::T_Ident) |
                                 PO::bit(PO::T_LParen) | B_UnaryPre |
                                 PO::bit(PO::T_KwSizeof);
constexpr uint64_t B_StmtStart =
    PO::bit(PO::T_LBrace) | PO::bit(PO::T_Semi) | PO::bit(PO::T_KwIf) |
    PO::bit(PO::T_KwWhile) | PO::bit(PO::T_KwDo) | PO::bit(PO::T_KwFor) |
    PO::bit(PO::T_KwReturn) | PO::bit(PO::T_KwBreak) |
    PO::bit(PO::T_KwContinue) | B_TypeStart | B_ExprStart;

bool inSet(uint64_t Set, int T) { return (Set >> T) & 1; }

// stepFrame outcomes.
enum StepAct { A_Consumed, A_Again, A_NoMatch, A_Reject };

using Frame = PO::Frame;
using State = PO::State;

// Pushes a frame; on overflow flips the state to Generous (sound: accept
// everything from here on) and reports failure so the caller can stop.
bool pushFrame(State &S, uint8_t Kind, uint8_t St, uint8_t F0 = 0,
               uint8_t F1 = 0) {
  if (S.SP >= PO::MaxFrames) {
    S.Generous = 1;
    return false;
  }
  S.Stack[S.SP++] = Frame{Kind, St, F0, F1};
  return true;
}

// True when the frame, as it stands, may complete and return control to
// its parent without consuming another terminal.
bool poppable(const Frame &F) {
  switch (F.Kind) {
  case K_Type:
    return F.St == 1 || F.St == 3 || F.St == 4;
  case K_TopDecl:
    return F.St == 13;
  case K_If:
    return F.St == 3 || F.St == 5;
  case K_While:
    return F.St == 3;
  case K_For:
    return F.St == 8;
  case K_Expr:
    if (F.St == E_HaveOp || F.St == E_MaybeCastOp)
      return true;
    return F.St == E_NeedOp && (F.F0 & X_TypeCtx) && (F.F1 & XF_TypeViable) &&
           (F.F1 & XF_Seen);
  default:
    return false;
  }
}

void popFrame(State &S) {
  --S.SP;
  const Frame &Child = S.Stack[S.SP];
  Frame &Parent = S.Stack[S.SP - 1];
  if (Child.Kind == K_Expr && Parent.Kind == K_Expr) {
    Parent.F1 &= static_cast<uint8_t>(~(XF_ChildTV | XF_ChildPure));
    if (Child.F1 & XF_TypeViable)
      Parent.F1 |= XF_ChildTV;
    if ((Child.F1 & XF_OperandVar) && !(Child.F1 & XF_SawOp))
      Parent.F1 |= XF_ChildPure;
  }
}

// Notes a terminal consumed directly by a K_Expr frame: maintains the
// "could still be a type name" view (Ident then Stars only).
void exprNote(Frame &F, int T) {
  if (!(F.F1 & XF_Seen)) {
    F.F1 |= XF_Seen;
    if (T == PO::T_Ident)
      F.F1 |= XF_TypeViable;
  } else if (T != PO::T_Star) {
    F.F1 &= static_cast<uint8_t>(~XF_TypeViable);
  }
}

void setVar(Frame &F, bool IsVar) {
  if (IsVar)
    F.F1 |= XF_OperandVar;
  else
    F.F1 &= static_cast<uint8_t>(~XF_OperandVar);
}

// Pushes a fresh sub-expression; Parent.St must already hold the resume
// state (continuation-passing).
bool pushExpr(State &S, uint8_t F0, uint8_t St = E_NeedOp, uint8_t F1 = 0) {
  return pushFrame(S, K_Expr, St, F0, F1);
}

StepAct stepExpr(State &S, Frame &F, int T);
StepAct stepFrame(State &S, Frame &F, int T);

// One operand/operator step shared by E_HaveOp and the ambiguous
// E_MaybeCastOp ("operator view"). Returns A_NoMatch when T cannot extend
// the completed operand.
StepAct stepAfterOperand(State &S, Frame &F, int T) {
  switch (T) {
  case PO::T_BinOp:
  case PO::T_Star:
  case PO::T_Amp:
  case PO::T_Plus:
  case PO::T_Minus:
  case PO::T_Assign:
  case PO::T_OpAssign:
    F.St = E_NeedOp;
    F.F1 |= XF_SawOp;
    exprNote(F, T);
    return A_Consumed;
  case PO::T_Question:
    F.St = E_CloseTern;
    F.F1 |= XF_SawOp;
    exprNote(F, T);
    pushExpr(S, X_CommaOk);
    return A_Consumed;
  case PO::T_Comma:
    if (!(F.F0 & X_CommaOk))
      return A_NoMatch;
    F.St = E_NeedOp;
    F.F1 |= XF_SawOp;
    exprNote(F, T);
    return A_Consumed;
  case PO::T_LBracket:
    F.St = E_CloseIndex;
    F.F1 |= XF_SawOp;
    setVar(F, false);
    exprNote(F, T);
    pushExpr(S, X_CommaOk);
    return A_Consumed;
  case PO::T_Dot:
  case PO::T_Arrow:
    F.St = E_Member;
    F.F1 |= XF_SawOp;
    exprNote(F, T);
    return A_Consumed;
  case PO::T_Inc:
  case PO::T_Dec:
    // Postfix: result is no longer a VarRef, so no call may follow.
    F.F1 |= XF_SawOp;
    setVar(F, false);
    exprNote(F, T);
    return A_Consumed;
  case PO::T_LParen:
    // Calls are only valid on a direct name (parser: dyn_cast<VarRef>).
    if (!(F.F1 & XF_OperandVar))
      return A_NoMatch;
    F.St = E_CallOpen;
    F.F1 |= XF_SawOp;
    exprNote(F, T);
    return A_Consumed;
  default:
    return A_NoMatch;
  }
}

// Consume an operand-start terminal from E_NeedOp (shared with the
// operand view of E_MaybeCastOp). Returns A_NoMatch if T is not one.
StepAct stepOperandStart(Frame &F, int T) {
  if (inSet(B_Literal, T)) {
    F.St = E_HaveOp;
    setVar(F, false);
    exprNote(F, T);
    return A_Consumed;
  }
  switch (T) {
  case PO::T_Ident:
    F.St = E_HaveOp;
    setVar(F, true);
    exprNote(F, T);
    return A_Consumed;
  case PO::T_Star:
  case PO::T_Amp:
  case PO::T_Plus:
  case PO::T_Minus:
  case PO::T_Bang:
  case PO::T_Tilde:
  case PO::T_Inc:
  case PO::T_Dec:
    F.St = E_NeedOp;
    F.F1 |= XF_SawOp;
    setVar(F, false);
    exprNote(F, T);
    return A_Consumed;
  case PO::T_KwSizeof:
    F.St = E_Sizeof;
    F.F1 |= XF_SawOp;
    setVar(F, false);
    exprNote(F, T);
    return A_Consumed;
  case PO::T_LParen:
    F.St = E_ParenDispatch;
    setVar(F, false);
    exprNote(F, T);
    return A_Consumed;
  default:
    return A_NoMatch;
  }
}

StepAct stepExpr(State &S, Frame &F, int T) {
  switch (F.St) {
  case E_NeedOp: {
    return stepOperandStart(F, T);
  }

  case E_HaveOp:
    return stepAfterOperand(S, F, T);

  case E_MaybeCastOp: {
    // Union of "operand complete" (paren expression) and "cast pending"
    // (operand still to come). Operand-start terminals take the cast
    // reading; operator terminals take the expression reading; both
    // readings converge for the dual-use ones.
    if (T == PO::T_LParen) {
      F.St = E_AmbCallOpen;
      F.F1 |= XF_SawOp;
      exprNote(F, T);
      return A_Consumed;
    }
    if (T == PO::T_Inc || T == PO::T_Dec) {
      // Expression reading: postfix. Cast reading: prefix on the operand
      // to come. Stay ambiguous; either way no longer a plain VarRef.
      F.F1 |= XF_SawOp;
      setVar(F, false);
      exprNote(F, T);
      return A_Consumed;
    }
    if (T == PO::T_Bang || T == PO::T_Tilde || T == PO::T_KwSizeof ||
        inSet(B_Literal, T) || T == PO::T_Ident) {
      StepAct A = stepOperandStart(F, T);
      if (A != A_NoMatch)
        return A;
    }
    return stepAfterOperand(S, F, T);
  }

  case E_Member:
    if (T == PO::T_Ident) {
      F.St = E_HaveOp;
      setVar(F, false);
      exprNote(F, T);
      return A_Consumed;
    }
    return A_Reject;

  case E_CloseGroup:
    if (T == PO::T_RParen) {
      F.St = E_HaveOp;
      setVar(F, (F.F1 & XF_ChildPure) != 0);
      exprNote(F, T);
      return A_Consumed;
    }
    return A_Reject;

  case E_CloseIndex:
    if (T == PO::T_RBracket) {
      F.St = E_HaveOp;
      setVar(F, false);
      exprNote(F, T);
      return A_Consumed;
    }
    return A_Reject;

  case E_CloseTern:
    if (T == PO::T_Colon) {
      F.St = E_NeedOp;
      exprNote(F, T);
      return A_Consumed;
    }
    return A_Reject;

  case E_CallOpen:
    if (T == PO::T_RParen) {
      F.St = E_HaveOp;
      setVar(F, false);
      exprNote(F, T);
      return A_Consumed;
    }
    if (inSet(B_ExprStart, T)) {
      F.St = E_CallArgs;
      pushExpr(S, 0);
      return A_Again;
    }
    return A_Reject;

  case E_CallArgs:
    if (T == PO::T_Comma) {
      exprNote(F, T);
      pushExpr(S, 0);
      return A_Consumed;
    }
    if (T == PO::T_RParen) {
      F.St = E_HaveOp;
      setVar(F, false);
      exprNote(F, T);
      return A_Consumed;
    }
    return A_Reject;

  case E_ParenDispatch:
    if (T == PO::T_KwType || T == PO::T_KwQual || T == PO::T_KwStruct) {
      F.St = E_CastClose;
      pushFrame(S, K_Type, 0);
      return A_Again;
    }
    if (T == PO::T_Ident) {
      // `(name ...`: paren expression or cast by an (unknown) type name.
      F.St = E_AmbClose;
      pushExpr(S, X_CommaOk | X_TypeCtx);
      return A_Again;
    }
    if (inSet(B_ExprStart, T)) {
      F.St = E_CloseGroup;
      pushExpr(S, X_CommaOk);
      return A_Again;
    }
    return A_Reject;

  case E_CastClose:
    if (T == PO::T_Star) {
      F.St = E_CastPtr;
      exprNote(F, T);
      return A_Consumed;
    }
    if (T == PO::T_RParen) {
      F.St = E_NeedOp;
      F.F1 |= XF_SawOp;
      exprNote(F, T);
      return A_Consumed;
    }
    return A_Reject;

  case E_CastPtr:
    if (T == PO::T_Star || T == PO::T_KwQual) {
      exprNote(F, T);
      return A_Consumed;
    }
    if (T == PO::T_RParen) {
      F.St = E_NeedOp;
      F.F1 |= XF_SawOp;
      exprNote(F, T);
      return A_Consumed;
    }
    return A_Reject;

  case E_AmbClose:
    if (T == PO::T_RParen) {
      F.St = (F.F1 & XF_ChildTV) ? E_MaybeCastOp : E_HaveOp;
      setVar(F, (F.F1 & XF_ChildPure) != 0);
      exprNote(F, T);
      return A_Consumed;
    }
    return A_Reject;

  case E_AmbCallOpen:
    if (T == PO::T_RParen) {
      F.St = E_HaveOp;
      setVar(F, false);
      exprNote(F, T);
      return A_Consumed;
    }
    if (inSet(B_ExprStart, T)) {
      F.St = E_AmbCallClose;
      pushExpr(S, X_CommaOk | X_TypeCtx);
      return A_Again;
    }
    return A_Reject;

  case E_AmbCallClose:
    if (T == PO::T_RParen) {
      // Call reading resolves to a CallExpr; cast reading to a cast of a
      // parenthesized expression, which may itself be a chained cast
      // `(T)(U)z` — keep the ambiguity when the inner text was a viable
      // type name.
      F.St = (F.F1 & XF_ChildTV) ? E_MaybeCastOp : E_HaveOp;
      setVar(F, (F.F1 & XF_ChildPure) != 0);
      exprNote(F, T);
      return A_Consumed;
    }
    return A_Reject;

  case E_Sizeof:
    if (T == PO::T_LParen) {
      F.St = E_SizeofParen;
      exprNote(F, T);
      return A_Consumed;
    }
    if (inSet(B_ExprStart, T)) {
      F.St = E_NeedOp;
      return A_Again;
    }
    return A_Reject;

  case E_SizeofParen:
    if (T == PO::T_KwType || T == PO::T_KwQual || T == PO::T_KwStruct) {
      F.St = E_SizeofCastClose;
      pushFrame(S, K_Type, 0);
      return A_Again;
    }
    if (T == PO::T_Ident) {
      F.St = E_SizeofClose;
      pushExpr(S, X_CommaOk | X_TypeCtx);
      return A_Again;
    }
    if (inSet(B_ExprStart, T)) {
      F.St = E_SizeofClose;
      pushExpr(S, X_CommaOk);
      return A_Again;
    }
    return A_Reject;

  case E_SizeofCastClose:
    if (T == PO::T_Star) {
      F.St = E_SizeofCastPtr;
      exprNote(F, T);
      return A_Consumed;
    }
    if (T == PO::T_RParen) {
      F.St = E_HaveOp;
      setVar(F, false);
      exprNote(F, T);
      return A_Consumed;
    }
    return A_Reject;

  case E_SizeofCastPtr:
    if (T == PO::T_Star || T == PO::T_KwQual) {
      exprNote(F, T);
      return A_Consumed;
    }
    if (T == PO::T_RParen) {
      F.St = E_HaveOp;
      setVar(F, false);
      exprNote(F, T);
      return A_Consumed;
    }
    return A_Reject;

  case E_SizeofClose:
    if (T == PO::T_RParen) {
      F.St = E_HaveOp;
      // `sizeof(x)` keeps postfix rights of the parenthesized operand
      // when the parser takes the expression reading: `sizeof(f)(a)`.
      setVar(F, (F.F1 & XF_ChildPure) != 0);
      exprNote(F, T);
      return A_Consumed;
    }
    return A_Reject;
  }
  return A_Reject;
}

// Starts a declarator-pointer run shared by several frames: states are
// encoded by the caller; this just factors the transition test.
bool isQual(int T) { return T == PO::T_KwQual; }

StepAct stepFrame(State &S, Frame &F, int T) {
  switch (F.Kind) {
  //=== translation unit ===================================================//
  case K_TU:
    switch (F.St) {
    case 0:
      if (T == PO::T_Semi)
        return A_Consumed; // stray top-level ';' skipped by the parser
      if (T == PO::T_KwTypedef) {
        pushFrame(S, K_Typedef, 0);
        return A_Consumed;
      }
      if (T == PO::T_KwStruct) {
        // Bare `struct S { ... };` or `struct S declarator ...`.
        pushFrame(S, K_TopDecl, 20, /*F0=*/1);
        return A_Consumed;
      }
      if (T == PO::T_KwExtern) {
        F.St = 1;
        return A_Consumed;
      }
      if (T == PO::T_KwType || T == PO::T_KwQual || T == PO::T_Ident) {
        pushFrame(S, K_TopDecl, 0);
        return A_Again;
      }
      return A_Reject;
    case 1: // after `extern`+
      if (T == PO::T_KwExtern)
        return A_Consumed;
      if (inSet(B_TypeStart, T)) {
        F.St = 0;
        pushFrame(S, K_TopDecl, 0);
        return A_Again;
      }
      return A_Reject;
    }
    return A_Reject;

  //=== type specifier =====================================================//
  // St0: nothing but qualifiers yet. St1: builtin(s) seen (complete).
  // St2: `struct` seen. St3: `struct Ident` (complete; body may open).
  // St4: body closed (complete).
  case K_Type:
    switch (F.St) {
    case 0:
      if (isQual(T))
        return A_Consumed;
      if (T == PO::T_KwType) {
        F.St = 1;
        return A_Consumed;
      }
      if (T == PO::T_KwStruct) {
        F.St = 2;
        return A_Consumed;
      }
      if (T == PO::T_Ident) {
        // Partial mode: any identifier names a type; it completes the
        // specifier immediately (no trailing qualifiers).
        popFrame(S);
        return A_Consumed;
      }
      return A_Reject;
    case 1:
      if (T == PO::T_KwType || isQual(T))
        return A_Consumed;
      return A_NoMatch;
    case 2:
      if (T == PO::T_Ident) {
        F.St = 3;
        return A_Consumed;
      }
      return A_Reject;
    case 3:
      if (T == PO::T_LBrace) {
        F.St = 4;
        pushFrame(S, K_StructBody, 0);
        return A_Consumed;
      }
      return A_NoMatch;
    case 4:
      return A_NoMatch;
    }
    return A_Reject;

  //=== struct field list (after '{') ======================================//
  // St0: field start or '}'. St1: after field type. St2: after name.
  // St3: '[' seen. St4: size seen. St5: ']' seen.
  case K_StructBody:
    switch (F.St) {
    case 0:
      if (T == PO::T_RBrace) {
        popFrame(S);
        return A_Consumed;
      }
      if (inSet(B_TypeStart, T)) {
        F.St = 1;
        pushFrame(S, K_Type, 0);
        return A_Again;
      }
      return A_Reject;
    case 1:
      if (T == PO::T_Star) {
        F.F0 = 1; // pointer run started: qualifiers now allowed
        return A_Consumed;
      }
      if (F.F0 && isQual(T))
        return A_Consumed;
      if (T == PO::T_Ident) {
        F.St = 2;
        F.F0 = 0;
        return A_Consumed;
      }
      return A_Reject;
    case 2:
      if (T == PO::T_LBracket) {
        F.St = 3;
        return A_Consumed;
      }
      if (T == PO::T_Comma) {
        F.St = 1;
        return A_Consumed;
      }
      if (T == PO::T_Semi) {
        F.St = 0;
        return A_Consumed;
      }
      return A_Reject;
    case 3:
      if (T == PO::T_IntLit) {
        F.St = 4;
        return A_Consumed;
      }
      return A_Reject;
    case 4:
      if (T == PO::T_RBracket) {
        F.St = 5;
        return A_Consumed;
      }
      return A_Reject;
    case 5: // fields take at most one array suffix
      if (T == PO::T_Comma) {
        F.St = 1;
        return A_Consumed;
      }
      if (T == PO::T_Semi) {
        F.St = 0;
        return A_Consumed;
      }
      return A_Reject;
    }
    return A_Reject;

  //=== typedef ============================================================//
  // St0: type expected. St1: after type. St2: after name.
  case K_Typedef:
    switch (F.St) {
    case 0:
      if (inSet(B_TypeStart, T)) {
        F.St = 1;
        pushFrame(S, K_Type, 0);
        return A_Again;
      }
      return A_Reject;
    case 1:
      if (T == PO::T_Star) {
        F.F0 = 1;
        return A_Consumed;
      }
      if (F.F0 && isQual(T))
        return A_Consumed;
      if (T == PO::T_Ident) {
        F.St = 2;
        return A_Consumed;
      }
      return A_Reject;
    case 2:
      if (T == PO::T_Semi) {
        popFrame(S);
        return A_Consumed;
      }
      return A_Reject;
    }
    return A_Reject;

  //=== top-level function or global(s) ====================================//
  // St0: type expected. St1/+F0: declarator pointers. St2: first
  // declarator named. St5..5c: array suffix. St6: after ','. St8: after
  // initializer. St9: subsequent declarator named. St10: params done.
  // St13: function body done (auto-pop). St20/21/23: bare-struct form.
  case K_TopDecl:
    switch (F.St) {
    case 0:
      if (inSet(B_TypeStart, T)) {
        F.St = 1;
        pushFrame(S, K_Type, 0);
        return A_Again;
      }
      return A_Reject;
    case 20: // `struct` consumed at top level
      if (T == PO::T_Ident) {
        F.St = 21;
        return A_Consumed;
      }
      return A_Reject;
    case 21: // `struct S`: body (bare definition) or declarator
      if (T == PO::T_LBrace) {
        F.St = 23;
        pushFrame(S, K_StructBody, 0);
        return A_Consumed;
      }
      if (T == PO::T_Star) {
        F.St = 1;
        F.F0 = 1;
        return A_Consumed;
      }
      if (T == PO::T_Ident) {
        F.St = 2;
        return A_Consumed;
      }
      return A_Reject;
    case 23: // bare `struct S { ... }` requires ';' (parser lookahead)
      if (T == PO::T_Semi) {
        popFrame(S);
        return A_Consumed;
      }
      return A_Reject;
    case 1:
      if (T == PO::T_Star) {
        F.F0 = 1;
        return A_Consumed;
      }
      if (F.F0 && isQual(T))
        return A_Consumed;
      if (T == PO::T_Ident) {
        F.St = 2;
        F.F0 = 0;
        return A_Consumed;
      }
      return A_Reject;
    case 2: // first declarator name seen: function or global
      if (T == PO::T_LParen) {
        F.St = 10;
        pushFrame(S, K_Params, 0);
        return A_Consumed;
      }
      [[fallthrough]];
    case 9: // subsequent declarator (no function form)
      if (T == PO::T_LBracket) {
        F.St = 5;
        return A_Consumed;
      }
      if (T == PO::T_Assign) {
        F.St = 8;
        pushExpr(S, 0);
        return A_Consumed;
      }
      if (T == PO::T_Comma) {
        F.St = 6;
        return A_Consumed;
      }
      if (T == PO::T_Semi) {
        popFrame(S);
        return A_Consumed;
      }
      return A_Reject;
    case 5:
      if (T == PO::T_IntLit) {
        F.St = 51;
        return A_Consumed;
      }
      return A_Reject;
    case 51:
      if (T == PO::T_RBracket) {
        F.St = 52;
        return A_Consumed;
      }
      return A_Reject;
    case 52: // globals take at most one array suffix
      if (T == PO::T_Assign) {
        F.St = 8;
        pushExpr(S, 0);
        return A_Consumed;
      }
      if (T == PO::T_Comma) {
        F.St = 6;
        return A_Consumed;
      }
      if (T == PO::T_Semi) {
        popFrame(S);
        return A_Consumed;
      }
      return A_Reject;
    case 6: // after ',': next declarator
      if (T == PO::T_Star) {
        F.St = 61;
        return A_Consumed;
      }
      if (T == PO::T_Ident) {
        F.St = 9;
        return A_Consumed;
      }
      return A_Reject;
    case 61:
      if (T == PO::T_Star || isQual(T))
        return A_Consumed;
      if (T == PO::T_Ident) {
        F.St = 9;
        return A_Consumed;
      }
      return A_Reject;
    case 8: // initializer done
      if (T == PO::T_Comma) {
        F.St = 6;
        return A_Consumed;
      }
      if (T == PO::T_Semi) {
        popFrame(S);
        return A_Consumed;
      }
      return A_Reject;
    case 10: // parameter list closed
      if (T == PO::T_Semi) {
        popFrame(S);
        return A_Consumed;
      }
      if (T == PO::T_LBrace) {
        F.St = 13;
        pushFrame(S, K_Block, 0);
        return A_Consumed;
      }
      return A_Reject;
    case 13:
      return A_NoMatch; // body done: auto-pop
    }
    return A_Reject;

  //=== parameter list (after '(') =========================================//
  // St0: ')' or first param type. St1/+F0: declarator pointers (')', ','
  // and '[' legal: abstract declarators). St2: named. St3: '[' seen
  // (size optional). St4: ']' seen. St5: after ','.
  case K_Params:
    switch (F.St) {
    case 0:
      if (T == PO::T_RParen) {
        popFrame(S);
        return A_Consumed;
      }
      if (inSet(B_TypeStart, T)) {
        F.St = 1;
        pushFrame(S, K_Type, 0);
        return A_Again;
      }
      return A_Reject;
    case 1:
      if (T == PO::T_Star) {
        F.F0 = 1;
        return A_Consumed;
      }
      if (F.F0 && isQual(T))
        return A_Consumed;
      if (T == PO::T_Ident) {
        F.St = 2;
        F.F0 = 0;
        return A_Consumed;
      }
      [[fallthrough]];
    case 2:
      if (T == PO::T_LBracket) {
        F.St = 3;
        return A_Consumed;
      }
      if (T == PO::T_Comma) {
        F.St = 5;
        return A_Consumed;
      }
      if (T == PO::T_RParen) {
        popFrame(S);
        return A_Consumed;
      }
      return A_Reject;
    case 3:
      if (T == PO::T_IntLit) {
        F.St = 31;
        return A_Consumed;
      }
      if (T == PO::T_RBracket) {
        F.St = 4;
        return A_Consumed;
      }
      return A_Reject;
    case 31:
      if (T == PO::T_RBracket) {
        F.St = 4;
        return A_Consumed;
      }
      return A_Reject;
    case 4:
      if (T == PO::T_Comma) {
        F.St = 5;
        return A_Consumed;
      }
      if (T == PO::T_RParen) {
        popFrame(S);
        return A_Consumed;
      }
      return A_Reject;
    case 5: // a type is required after ','
      if (inSet(B_TypeStart, T)) {
        F.St = 1;
        pushFrame(S, K_Type, 0);
        return A_Again;
      }
      return A_Reject;
    }
    return A_Reject;

  //=== compound statement (after '{') =====================================//
  case K_Block:
    if (T == PO::T_RBrace) {
      popFrame(S);
      return A_Consumed;
    }
    if (inSet(B_StmtStart, T)) {
      pushFrame(S, K_Stmt, 0);
      return A_Again;
    }
    return A_Reject;

  //=== statement dispatcher (transmutes in place) =========================//
  case K_Stmt:
    if (T == PO::T_LBrace) {
      F.Kind = K_Block;
      F.St = 0;
      return A_Consumed;
    }
    if (T == PO::T_Semi) {
      F.Kind = K_SimpleStmt;
      F.St = 0;
      return A_Again;
    }
    if (T == PO::T_KwIf) {
      F.Kind = K_If;
      F.St = 0;
      return A_Consumed;
    }
    if (T == PO::T_KwWhile) {
      F.Kind = K_While;
      F.St = 0;
      return A_Consumed;
    }
    if (T == PO::T_KwDo) {
      F.Kind = K_Do;
      F.St = 1;
      pushFrame(S, K_Stmt, 0);
      return A_Consumed;
    }
    if (T == PO::T_KwFor) {
      F.Kind = K_For;
      F.St = 0;
      return A_Consumed;
    }
    if (T == PO::T_KwReturn) {
      F.Kind = K_Return;
      F.St = 0;
      return A_Consumed;
    }
    if (T == PO::T_KwBreak || T == PO::T_KwContinue) {
      F.Kind = K_SimpleStmt;
      F.St = 0;
      return A_Consumed;
    }
    if (T == PO::T_KwType || T == PO::T_KwQual || T == PO::T_KwStruct) {
      F.Kind = K_LocalDecl;
      F.St = 0;
      return A_Again;
    }
    if (T == PO::T_Ident) {
      F.Kind = K_IdentStmt;
      F.St = 0;
      return A_Consumed;
    }
    if (inSet(B_ExprStart, T)) {
      F.Kind = K_ExprStmt;
      F.St = 0;
      pushExpr(S, X_CommaOk);
      return A_Again;
    }
    return A_Reject;

  //=== if/while/do/for/return/simple ======================================//
  case K_If:
    switch (F.St) {
    case 0:
      if (T == PO::T_LParen) {
        F.St = 1;
        pushExpr(S, X_CommaOk);
        return A_Consumed;
      }
      return A_Reject;
    case 1:
      if (T == PO::T_RParen) {
        F.St = 2;
        return A_Consumed;
      }
      return A_Reject;
    case 2:
      if (inSet(B_StmtStart, T)) {
        F.St = 3;
        pushFrame(S, K_Stmt, 0);
        return A_Again;
      }
      return A_Reject;
    case 3: // then-branch done: optional else (greedy: dangling-else)
      if (T == PO::T_KwElse) {
        F.St = 4;
        return A_Consumed;
      }
      return A_NoMatch;
    case 4:
      if (inSet(B_StmtStart, T)) {
        F.St = 5;
        pushFrame(S, K_Stmt, 0);
        return A_Again;
      }
      return A_Reject;
    case 5:
      return A_NoMatch;
    }
    return A_Reject;

  case K_While:
    switch (F.St) {
    case 0:
      if (T == PO::T_LParen) {
        F.St = 1;
        pushExpr(S, X_CommaOk);
        return A_Consumed;
      }
      return A_Reject;
    case 1:
      if (T == PO::T_RParen) {
        F.St = 2;
        return A_Consumed;
      }
      return A_Reject;
    case 2:
      if (inSet(B_StmtStart, T)) {
        F.St = 3;
        pushFrame(S, K_Stmt, 0);
        return A_Again;
      }
      return A_Reject;
    case 3:
      return A_NoMatch;
    }
    return A_Reject;

  case K_Do:
    switch (F.St) {
    case 1: // body done
      if (T == PO::T_KwWhile) {
        F.St = 2;
        return A_Consumed;
      }
      return A_Reject;
    case 2:
      if (T == PO::T_LParen) {
        F.St = 3;
        pushExpr(S, X_CommaOk);
        return A_Consumed;
      }
      return A_Reject;
    case 3:
      if (T == PO::T_RParen) {
        F.St = 4;
        return A_Consumed;
      }
      return A_Reject;
    case 4:
      if (T == PO::T_Semi) {
        popFrame(S);
        return A_Consumed;
      }
      return A_Reject;
    }
    return A_Reject;

  case K_For:
    switch (F.St) {
    case 0:
      if (T == PO::T_LParen) {
        F.St = 1;
        return A_Consumed;
      }
      return A_Reject;
    case 1: // init clause
      if (T == PO::T_Semi) {
        F.St = 3;
        return A_Consumed;
      }
      if (T == PO::T_KwType || T == PO::T_KwQual || T == PO::T_KwStruct) {
        F.St = 3;
        pushFrame(S, K_LocalDecl, 0);
        return A_Again;
      }
      if (T == PO::T_Ident) {
        F.St = 3;
        pushFrame(S, K_IdentStmt, 0);
        return A_Consumed;
      }
      if (inSet(B_ExprStart, T)) {
        F.St = 2;
        pushExpr(S, X_CommaOk);
        return A_Again;
      }
      return A_Reject;
    case 2: // init expression done
      if (T == PO::T_Semi) {
        F.St = 3;
        return A_Consumed;
      }
      return A_Reject;
    case 3: // condition clause
      if (T == PO::T_Semi) {
        F.St = 5;
        return A_Consumed;
      }
      if (inSet(B_ExprStart, T)) {
        F.St = 4;
        pushExpr(S, X_CommaOk);
        return A_Again;
      }
      return A_Reject;
    case 4:
      if (T == PO::T_Semi) {
        F.St = 5;
        return A_Consumed;
      }
      return A_Reject;
    case 5: // step clause
      if (T == PO::T_RParen) {
        F.St = 7;
        return A_Consumed;
      }
      if (inSet(B_ExprStart, T)) {
        F.St = 6;
        pushExpr(S, X_CommaOk);
        return A_Again;
      }
      return A_Reject;
    case 6:
      if (T == PO::T_RParen) {
        F.St = 7;
        return A_Consumed;
      }
      return A_Reject;
    case 7:
      if (inSet(B_StmtStart, T)) {
        F.St = 8;
        pushFrame(S, K_Stmt, 0);
        return A_Again;
      }
      return A_Reject;
    case 8:
      return A_NoMatch;
    }
    return A_Reject;

  case K_Return:
    switch (F.St) {
    case 0:
      if (T == PO::T_Semi) {
        popFrame(S);
        return A_Consumed;
      }
      if (inSet(B_ExprStart, T)) {
        F.St = 1;
        pushExpr(S, X_CommaOk);
        return A_Again;
      }
      return A_Reject;
    case 1:
      if (T == PO::T_Semi) {
        popFrame(S);
        return A_Consumed;
      }
      return A_Reject;
    }
    return A_Reject;

  case K_SimpleStmt:
    if (T == PO::T_Semi) {
      popFrame(S);
      return A_Consumed;
    }
    return A_Reject;

  //=== local declaration (consumes trailing ';') ==========================//
  // St0: type expected. St1/+F0: declarator pointers. St2: named.
  // St3/31: array suffix (repeatable). St4: initializer done.
  case K_LocalDecl:
    switch (F.St) {
    case 0:
      if (inSet(B_TypeStart, T)) {
        F.St = 1;
        pushFrame(S, K_Type, 0);
        return A_Again;
      }
      return A_Reject;
    case 1:
      if (T == PO::T_Star) {
        F.F0 = 1;
        return A_Consumed;
      }
      if (F.F0 && isQual(T))
        return A_Consumed;
      if (T == PO::T_Ident) {
        F.St = 2;
        F.F0 = 0;
        return A_Consumed;
      }
      return A_Reject;
    case 2:
      if (T == PO::T_LBracket) {
        F.St = 3;
        return A_Consumed;
      }
      if (T == PO::T_Assign) {
        F.St = 4;
        pushExpr(S, 0);
        return A_Consumed;
      }
      if (T == PO::T_Comma) {
        F.St = 1;
        F.F0 = 0;
        return A_Consumed;
      }
      if (T == PO::T_Semi) {
        popFrame(S);
        return A_Consumed;
      }
      return A_Reject;
    case 3:
      if (T == PO::T_IntLit) {
        F.St = 31;
        return A_Consumed;
      }
      return A_Reject;
    case 31:
      if (T == PO::T_RBracket) {
        F.St = 2; // locals allow repeated array suffixes
        return A_Consumed;
      }
      return A_Reject;
    case 4:
      if (T == PO::T_Comma) {
        F.St = 1;
        F.F0 = 0;
        return A_Consumed;
      }
      if (T == PO::T_Semi) {
        popFrame(S);
        return A_Consumed;
      }
      return A_Reject;
    }
    return A_Reject;

  //=== identifier-led statement (decl/expr union) =========================//
  // The parser decides with startsLocalDecl() lookahead; this frame
  // mirrors it token by token. St0: one Ident consumed. St1: `Ident *`.
  // St11: `Ident * *...` (two or more stars: never a decl for unknown
  // names). St2: `Ident * Ident`. St21: `Ident ** Ident`.
  case K_IdentStmt:
    switch (F.St) {
    case 0:
      if (T == PO::T_Ident) {
        // `a b`: only viable as a declaration.
        F.Kind = K_LocalDecl;
        F.St = 2;
        F.F0 = 0;
        return A_Consumed;
      }
      if (T == PO::T_Star) {
        F.St = 1;
        return A_Consumed;
      }
      // Expression statement led by the identifier.
      F.Kind = K_ExprStmt;
      F.St = 0;
      pushExpr(S, X_CommaOk, E_HaveOp, XF_Seen | XF_OperandVar);
      return A_Again;
    case 1: // `a *`
      if (T == PO::T_Star) {
        F.St = 11;
        return A_Consumed;
      }
      if (isQual(T)) {
        // `a * const`: only the declaration reading survives.
        F.Kind = K_LocalDecl;
        F.St = 1;
        F.F0 = 1;
        return A_Again;
      }
      if (T == PO::T_Ident) {
        F.St = 2;
        return A_Consumed;
      }
      // Expression: `a * <operand>` (binary multiply).
      F.Kind = K_ExprStmt;
      F.St = 0;
      pushExpr(S, X_CommaOk, E_NeedOp, XF_Seen | XF_SawOp);
      return A_Again;
    case 11: // `a * * ...`
      if (T == PO::T_Star)
        return A_Consumed;
      if (isQual(T)) {
        F.Kind = K_LocalDecl;
        F.St = 1;
        F.F0 = 1;
        return A_Again;
      }
      if (T == PO::T_Ident) {
        F.St = 21;
        return A_Consumed;
      }
      F.Kind = K_ExprStmt;
      F.St = 0;
      pushExpr(S, X_CommaOk, E_NeedOp, XF_Seen | XF_SawOp);
      return A_Again;
    case 2: // `a * b`: startsLocalDecl commits on ';' '=' ','
      if (T == PO::T_Semi) {
        popFrame(S);
        return A_Consumed;
      }
      if (T == PO::T_Comma || T == PO::T_Assign) {
        F.Kind = K_LocalDecl;
        F.St = 2;
        F.F0 = 0;
        return A_Again;
      }
      // `a * b [` / `a * b + ...`: expression reading (with the b operand
      // complete). Over-accepts the known-typedef corner `T * b + c`.
      F.Kind = K_ExprStmt;
      F.St = 0;
      pushExpr(S, X_CommaOk, E_HaveOp, XF_Seen | XF_SawOp | XF_OperandVar);
      return A_Again;
    case 21: // `a ** b`: a declaration only for known names — keep the
             // expression reading, which covers every declaration
             // continuation here.
      if (T == PO::T_Semi) {
        popFrame(S);
        return A_Consumed;
      }
      F.Kind = K_ExprStmt;
      F.St = 0;
      pushExpr(S, X_CommaOk, E_HaveOp, XF_Seen | XF_SawOp | XF_OperandVar);
      return A_Again;
    }
    return A_Reject;

  case K_ExprStmt:
    if (T == PO::T_Semi) {
      popFrame(S);
      return A_Consumed;
    }
    return A_Reject;

  case K_Expr:
    return stepExpr(S, F, T);
  }
  return A_Reject;
}

} // namespace

//===----------------------------------------------------------------------===//
// Public PDA interface
//===----------------------------------------------------------------------===//

PrefixOracle::State PrefixOracle::start() const {
  State S;
  S.SP = 1;
  S.Stack[0] = Frame{K_TU, 0, 0, 0};
  return S;
}

bool PrefixOracle::stepTerminal(State &S, int T) const {
  if (S.Generous)
    return true;
  if (T < 0)
    return false; // union/enum/... or "...": never parseable
  // Each iteration either consumes, transmutes/pushes (replay), or pops;
  // pops strictly shrink the stack and pushes consume-or-replay at most
  // once per frame, so 4*MaxFrames bounds the loop with slack.
  for (int Guard = 0; Guard < 4 * MaxFrames; ++Guard) {
    Frame &F = S.Stack[S.SP - 1];
    StepAct Act = stepFrame(S, F, T);
    if (S.Generous)
      return true;
    if (Act == A_Consumed)
      return true;
    if (Act == A_Again)
      continue;
    if (Act == A_NoMatch && poppable(F) && S.SP > 1) {
      popFrame(S);
      continue;
    }
    return false;
  }
  return false;
}

void PrefixOracle::feedTerminal(State &S, int T) const {
  if (S.Dead)
    return;
  S.MaskValid = 0;
  S.CachedMask = 0;
  if (!stepTerminal(S, T))
    S.Dead = 1;
}

uint64_t PrefixOracle::computeMask(const State &S) const {
  if (S.Dead)
    return 0;
  if (S.Generous)
    return (uint64_t(1) << NumTerms) - 1;
  // Brute force over the 42 terminal classes: guaranteed consistent with
  // stepTerminal by construction. State is small; this runs once per
  // consumed terminal (cached) and is far off the decode critical path.
  uint64_t Mask = 0;
  for (int T = 0; T < NumTerms; ++T) {
    State Probe = S;
    if (stepTerminal(Probe, T))
      Mask |= bit(T);
  }
  return Mask;
}

uint64_t PrefixOracle::terminalMask(State &S) const {
  if (!S.MaskValid) {
    S.CachedMask = computeMask(S);
    S.MaskValid = 1;
  }
  return S.CachedMask;
}

bool PrefixOracle::acceptsEnd(const State &S) const {
  State B = boundary(S);
  if (B.Dead)
    return false;
  if (B.Generous)
    return true;
  // An unterminated comment is fine at EOF (the lexer exits without
  // error); any open literal already died in boundary().
  while (B.SP > 1 && poppable(B.Stack[B.SP - 1]))
    popFrame(B);
  return B.SP == 1 && B.Stack[0].St == 0;
}

//===----------------------------------------------------------------------===//
// 3. Incremental lexer
//===----------------------------------------------------------------------===//

namespace {

enum LexState : uint8_t {
  LK_None = 0,
  LK_Word,
  LK_Num,
  LK_Punct,
  LK_Str,
  LK_StrEsc,
  LK_Chr0,     // just after the opening quote
  LK_ChrEsc,   // after a backslash in a char literal
  LK_Chr1,     // value consumed; closing quote required
  LK_LineComment,
  LK_BlockComment,
  LK_BlockStar, // '*' seen inside a block comment
  LK_Hash,      // '#' directive line: skipped to end of line
};

enum NumState : uint8_t {
  N_IntZero = 0, // exactly "0" so far
  N_Int,         // decimal digits
  N_HexPfx,      // "0x" (already a valid literal)
  N_Hex,         // hex digits
  N_Frac,        // after '.', fractional part
  N_Exp0,        // 'e'/'E' just consumed (sign may follow)
  N_ExpD,        // inside exponent digits (or after its sign)
  N_SufInt,      // integer suffix run (u/l)
  N_SufFloat,    // float suffix run (or f/F seen)
};

bool numIsFloat(uint8_t N) {
  return N == N_Frac || N == N_Exp0 || N == N_ExpD || N == N_SufFloat;
}

void clearPend(State &S) {
  S.Lex = LK_None;
  S.NumSt = 0;
  S.BufLen = 0;
  S.WordViaIdent = 0;
  std::memset(S.Buf, 0, sizeof(S.Buf));
}

} // namespace

void PrefixOracle::flushPending(State &S) const {
  if (S.Dead)
    return;
  switch (S.Lex) {
  case LK_None:
  case LK_LineComment:
  case LK_BlockComment:
  case LK_BlockStar:
  case LK_Hash:
    // Nothing pending; unterminated comments are legal at EOF.
    return;
  case LK_Word: {
    int T = T_Ident;
    if (!S.WordViaIdent)
      T = keywordTerm(std::string_view(S.Buf, S.BufLen));
    clearPend(S);
    feedTerminal(S, T);
    return;
  }
  case LK_Num: {
    int T = numIsFloat(S.NumSt) ? T_FloatLit : T_IntLit;
    clearPend(S);
    feedTerminal(S, T);
    return;
  }
  case LK_Punct: {
    // Maximal munch over the pending chain. Pending chains are "<", ">",
    // "<<", ">>", ".." or a single one-char punctuator; complete
    // multi-puncts with no extension were emitted eagerly.
    char Chain[4];
    int Len = S.BufLen;
    std::memcpy(Chain, S.Buf, sizeof(Chain));
    clearPend(S);
    int Pos = 0;
    while (Pos < Len && !S.Dead) {
      int Best = -1, BestTerm = -1;
      for (int L = Len - Pos; L >= 1; --L) {
        int T = punctTerm(std::string_view(Chain + Pos, L));
        if (T != -1) {
          Best = L;
          BestTerm = T;
          break;
        }
      }
      if (Best == -1) {
        S.Dead = 1;
        return;
      }
      feedTerminal(S, BestTerm);
      Pos += Best;
    }
    return;
  }
  case LK_Str:
  case LK_StrEsc:
    S.Dead = 1; // unterminated string literal: lexC fails
    return;
  case LK_Chr0:
  case LK_ChrEsc:
  case LK_Chr1:
    S.Dead = 1; // unterminated char literal: lexC fails
    return;
  }
}

void PrefixOracle::feedChar(State &S, char C) const {
  if (S.Dead)
    return;

restart:
  switch (S.Lex) {
  case LK_None:
    if (std::isspace(static_cast<unsigned char>(C)))
      return;
    if (identStart(C)) {
      S.Lex = LK_Word;
      S.Buf[0] = C;
      S.BufLen = 1;
      return;
    }
    if (isDigitC(C)) {
      S.Lex = LK_Num;
      S.NumSt = (C == '0') ? N_IntZero : N_Int;
      return;
    }
    if (C == '"') {
      S.Lex = LK_Str;
      return;
    }
    if (C == '\'') {
      S.Lex = LK_Chr0;
      return;
    }
    if (C == '#') {
      S.Lex = LK_Hash;
      return;
    }
    switch (C) {
    case '(': feedTerminal(S, T_LParen); return;
    case ')': feedTerminal(S, T_RParen); return;
    case '{': feedTerminal(S, T_LBrace); return;
    case '}': feedTerminal(S, T_RBrace); return;
    case '[': feedTerminal(S, T_LBracket); return;
    case ']': feedTerminal(S, T_RBracket); return;
    case ';': feedTerminal(S, T_Semi); return;
    case ',': feedTerminal(S, T_Comma); return;
    case '?': feedTerminal(S, T_Question); return;
    case ':': feedTerminal(S, T_Colon); return;
    case '~': feedTerminal(S, T_Tilde); return;
    case '+': case '-': case '*': case '/': case '%': case '<': case '>':
    case '=': case '!': case '&': case '|': case '^': case '.':
      S.Lex = LK_Punct;
      S.Buf[0] = C;
      S.BufLen = 1;
      return;
    default:
      // cc::Lexer emits an Unknown token here; the parser never accepts
      // one, so the prefix is dead.
      S.Dead = 1;
      return;
    }

  case LK_Word:
    if (identChar(C)) {
      if (S.WordViaIdent)
        return;
      if (S.BufLen < 10) {
        S.Buf[S.BufLen++] = C;
      } else {
        // Longer than the longest keyword: identifier for sure. Clear
        // the window so equal-content states stay memcmp-equal.
        S.WordViaIdent = 1;
        S.BufLen = 0;
        std::memset(S.Buf, 0, sizeof(S.Buf));
      }
      return;
    }
    flushPending(S);
    if (S.Dead)
      return;
    goto restart;

  case LK_Num:
    switch (S.NumSt) {
    case N_IntZero:
      if (C == 'x' || C == 'X') {
        S.NumSt = N_HexPfx;
        return;
      }
      [[fallthrough]];
    case N_Int:
      if (isDigitC(C)) {
        S.NumSt = N_Int;
        return;
      }
      if (C == '.') {
        S.NumSt = N_Frac;
        return;
      }
      if (C == 'e' || C == 'E') {
        S.NumSt = N_Exp0;
        return;
      }
      if (C == 'f' || C == 'F') {
        S.NumSt = N_SufFloat;
        return;
      }
      if (numSuffix(C)) {
        S.NumSt = N_SufInt;
        return;
      }
      break;
    case N_HexPfx:
    case N_Hex:
      if (isXDigit(C)) {
        S.NumSt = N_Hex; // covers f/F, consumed as hex digits
        return;
      }
      if (C == 'u' || C == 'U' || C == 'l' || C == 'L') {
        S.NumSt = N_SufInt;
        return;
      }
      break;
    case N_Frac:
      if (isDigitC(C))
        return;
      if (C == 'e' || C == 'E') {
        S.NumSt = N_Exp0;
        return;
      }
      if (numSuffix(C)) {
        S.NumSt = N_SufFloat;
        return;
      }
      break;
    case N_Exp0:
      if (C == '+' || C == '-' || isDigitC(C)) {
        S.NumSt = N_ExpD;
        return;
      }
      if (numSuffix(C)) {
        S.NumSt = N_SufFloat;
        return;
      }
      break;
    case N_ExpD:
      if (isDigitC(C))
        return;
      if (numSuffix(C)) {
        S.NumSt = N_SufFloat;
        return;
      }
      break;
    case N_SufInt:
      if (C == 'f' || C == 'F') {
        S.NumSt = N_SufFloat;
        return;
      }
      if (numSuffix(C)) {
        return;
      }
      break;
    case N_SufFloat:
      if (numSuffix(C))
        return;
      break;
    }
    flushPending(S); // also handles a digit after a suffix: new token
    if (S.Dead)
      return;
    goto restart;

  case LK_Punct: {
    // Comment openers take precedence over the "/" punctuator.
    if (S.BufLen == 1 && S.Buf[0] == '/' && (C == '/' || C == '*')) {
      uint8_t Next = (C == '/') ? LK_LineComment : LK_BlockComment;
      clearPend(S);
      S.Lex = Next;
      return;
    }
    // '.' directly followed by a digit starts a number ("."+digit is a
    // numeric-literal start for cc::Lexer).
    if (S.Buf[S.BufLen - 1] == '.' && isDigitC(C)) {
      if (S.BufLen == 2) {
        // ".." + digit: the first '.' is a Dot token, then ".<digit>".
        clearPend(S);
        feedTerminal(S, T_Dot);
        if (S.Dead)
          return;
      } else {
        clearPend(S);
      }
      S.Lex = LK_Num;
      S.NumSt = N_Frac;
      return;
    }
    std::string_view Chain(S.Buf, S.BufLen);
    if (punctExtends(Chain, C)) {
      S.Buf[S.BufLen++] = C;
      // Emit eagerly once no further extension exists: the lexer's
      // maximal munch is then decided.
      std::string_view Z(S.Buf, S.BufLen);
      bool MoreIsPossible = false;
      for (const PunctEntry &M : MultiPuncts) {
        std::string_view Sp(M.Spelling);
        if (Sp.size() > Z.size() && Sp.substr(0, Z.size()) == Z) {
          MoreIsPossible = true;
          break;
        }
      }
      if (!MoreIsPossible) {
        int T = punctTerm(Z);
        clearPend(S);
        feedTerminal(S, T); // T==-1 ("...") kills the state
      }
      return;
    }
    flushPending(S);
    if (S.Dead)
      return;
    goto restart;
  }

  case LK_Str:
    if (C == '"') {
      S.Lex = LK_None;
      feedTerminal(S, T_StrLit);
      return;
    }
    if (C == '\\') {
      S.Lex = LK_StrEsc;
      return;
    }
    return;

  case LK_StrEsc:
    S.Lex = LK_Str;
    return;

  case LK_Chr0:
    if (C == '\\') {
      S.Lex = LK_ChrEsc;
      return;
    }
    S.Lex = LK_Chr1; // any byte (even a quote) is the value
    return;

  case LK_ChrEsc:
    S.Lex = LK_Chr1;
    return;

  case LK_Chr1:
    if (C == '\'') {
      S.Lex = LK_None;
      feedTerminal(S, T_CharLit);
      return;
    }
    S.Dead = 1; // cc::Lexer latches an error: guaranteed parse failure
    return;

  case LK_LineComment:
  case LK_Hash:
    if (C == '\n')
      S.Lex = LK_None;
    return;

  case LK_BlockComment:
    if (C == '*')
      S.Lex = LK_BlockStar;
    return;

  case LK_BlockStar:
    if (C == '/')
      S.Lex = LK_None;
    else if (C != '*')
      S.Lex = LK_BlockComment;
    return;
  }
}

bool PrefixOracle::advance(State &S, std::string_view Text) const {
  for (char C : Text) {
    if (S.Dead)
      break;
    feedChar(S, C);
  }
  return !S.Dead;
}

PrefixOracle::State PrefixOracle::boundary(const State &S) const {
  State B = S;
  if (B.Dead)
    return B;
  flushPending(B);
  return B;
}

PrefixOracle::PendClass PrefixOracle::pendClass(const State &S) const {
  switch (S.Lex) {
  case LK_Word:
    return P_Word;
  case LK_Num:
    return P_Num;
  case LK_Punct:
    return P_Punct;
  case LK_Str:
  case LK_StrEsc:
    return P_Str;
  case LK_Chr0:
  case LK_ChrEsc:
  case LK_Chr1:
    return P_Chr;
  case LK_LineComment:
  case LK_BlockComment:
  case LK_BlockStar:
  case LK_Hash:
    return P_Comment;
  default:
    return P_None;
  }
}

std::string_view PrefixOracle::pendingText(const State &S) const {
  if ((S.Lex == LK_Word && !S.WordViaIdent) || S.Lex == LK_Punct)
    return std::string_view(S.Buf, S.BufLen);
  return {};
}

//===----------------------------------------------------------------------===//
// Static token tables
//===----------------------------------------------------------------------===//

int PrefixOracle::keywordTerm(std::string_view W) {
  for (const KwEntry &K : Keywords)
    if (W == K.Word)
      return K.Term;
  return T_Ident;
}

uint64_t PrefixOracle::keywordPrefixBits(std::string_view Prefix) {
  uint64_t Bits = 0;
  for (const KwEntry &K : Keywords) {
    if (K.Term < 0)
      continue;
    std::string_view W(K.Word);
    if (W.size() >= Prefix.size() && W.substr(0, Prefix.size()) == Prefix)
      Bits |= bit(K.Term);
  }
  return Bits;
}

bool PrefixOracle::keywordMidfix(std::string_view Body) {
  if (Body.empty())
    return false;
  for (const KwEntry &K : Keywords) {
    if (K.Term < 0)
      continue;
    std::string_view W(K.Word);
    for (size_t O = 1; O + Body.size() <= W.size(); ++O)
      if (W.substr(O, Body.size()) == Body)
        return true;
  }
  return false;
}

int PrefixOracle::punctTerm(std::string_view P) {
  for (const PunctEntry &M : MultiPuncts)
    if (P == M.Spelling)
      return M.Term;
  for (const PunctEntry &E : SinglePuncts)
    if (P == E.Spelling)
      return E.Term;
  return -1;
}

uint64_t PrefixOracle::punctPrefixBits(std::string_view Prefix) {
  uint64_t Bits = 0;
  int Own = punctTerm(Prefix);
  if (Own >= 0)
    Bits |= bit(Own);
  for (const PunctEntry &M : MultiPuncts) {
    std::string_view Sp(M.Spelling);
    if (Sp.size() > Prefix.size() && Sp.substr(0, Prefix.size()) == Prefix &&
        M.Term >= 0)
      Bits |= bit(M.Term);
  }
  return Bits;
}

bool PrefixOracle::punctExtends(std::string_view Chain, char C) {
  for (const PunctEntry &M : MultiPuncts) {
    std::string_view Sp(M.Spelling);
    if (Sp.size() > Chain.size() && Sp.substr(0, Chain.size()) == Chain &&
        Sp[Chain.size()] == C)
      return true;
  }
  return false;
}
