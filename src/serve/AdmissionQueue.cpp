//===- AdmissionQueue.cpp - bounded request queue + row slot allocator --------===//

#include "serve/AdmissionQueue.h"

#include <cassert>

using namespace slade;
using namespace slade::serve;

AdmissionQueue::AdmissionQueue(size_t Capacity)
    : Cap(Capacity ? Capacity : 1) {}

bool AdmissionQueue::push(Admission A) {
  std::unique_lock<std::mutex> Lock(Mu);
  NotFull.wait(Lock, [this] { return Closed || Items.size() < Cap; });
  if (Closed)
    return false;
  Items.push_back(std::move(A));
  Lock.unlock();
  NotEmpty.notify_one();
  return true;
}

bool AdmissionQueue::tryPush(Admission &A) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Closed || Items.size() >= Cap)
      return false;
    Items.push_back(std::move(A));
  }
  NotEmpty.notify_one();
  return true;
}

bool AdmissionQueue::pop(Admission *Out) {
  std::unique_lock<std::mutex> Lock(Mu);
  NotEmpty.wait(Lock, [this] { return Closed || !Items.empty(); });
  if (Items.empty())
    return false; // Closed and drained.
  *Out = std::move(Items.front());
  Items.pop_front();
  Lock.unlock();
  NotFull.notify_one();
  return true;
}

bool AdmissionQueue::tryPop(Admission *Out) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Items.empty())
      return false;
    *Out = std::move(Items.front());
    Items.pop_front();
  }
  NotFull.notify_one();
  return true;
}

void AdmissionQueue::close() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Closed = true;
  }
  NotFull.notify_all();
  NotEmpty.notify_all();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Closed;
}

size_t AdmissionQueue::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Items.size();
}

SlotAllocator::SlotAllocator(int N) {
  Free.reserve(static_cast<size_t>(N));
  // Reverse order so acquire() hands out 0, 1, 2, ... first.
  for (int I = N - 1; I >= 0; --I)
    Free.push_back(I);
#ifndef NDEBUG
  Live.assign(static_cast<size_t>(N), false);
#endif
}

int SlotAllocator::acquire() {
  if (Free.empty())
    return -1;
  int Slot = Free.back();
  Free.pop_back();
#ifndef NDEBUG
  Live[static_cast<size_t>(Slot)] = true;
#endif
  return Slot;
}

void SlotAllocator::release(int Slot) {
#ifndef NDEBUG
  assert(Slot >= 0 && static_cast<size_t>(Slot) < Live.size() &&
         Live[static_cast<size_t>(Slot)] && "double release");
  Live[static_cast<size_t>(Slot)] = false;
#endif
  Free.push_back(Slot);
}
