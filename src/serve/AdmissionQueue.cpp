//===- AdmissionQueue.cpp - EDF request queue + row slot allocator ------------===//

#include "serve/AdmissionQueue.h"

#include <algorithm>
#include <cassert>

using namespace slade;
using namespace slade::serve;

const char *slade::serve::requestStatusName(RequestStatus S) {
  switch (S) {
  case RequestStatus::Ok:
    return "ok";
  case RequestStatus::QueueFull:
    return "queue_full";
  case RequestStatus::DeadlineExpired:
    return "deadline_expired";
  case RequestStatus::Cancelled:
    return "cancelled";
  case RequestStatus::ShuttingDown:
    return "shutting_down";
  case RequestStatus::EncodeFailed:
    return "encode_failed";
  case RequestStatus::VerifyFailed:
    return "verify_failed";
  }
  return "unknown";
}

namespace {

/// Max-heap comparator that makes the std:: heap functions pop the
/// EARLIEST (deadline, seq) first: "A after B" ordering.
bool laterThan(const Admission &A, const Admission &B) {
  if (A.Req.Deadline != B.Req.Deadline)
    return A.Req.Deadline > B.Req.Deadline;
  return A.Seq > B.Seq;
}

} // namespace

AdmissionQueue::AdmissionQueue(size_t Capacity)
    : Cap(Capacity ? Capacity : 1) {}

bool AdmissionQueue::push(Admission &A) {
  std::unique_lock<std::mutex> Lock(Mu);
  NotFull.wait(Lock, [this] { return Closed || Items.size() < Cap; });
  if (Closed)
    return false; // A intact: the caller resolves it as ShuttingDown.
  Items.push_back(std::move(A));
  std::push_heap(Items.begin(), Items.end(), laterThan);
  Lock.unlock();
  NotEmpty.notify_one();
  return true;
}

bool AdmissionQueue::tryPush(Admission &A) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Closed || Items.size() >= Cap)
      return false;
    Items.push_back(std::move(A));
    std::push_heap(Items.begin(), Items.end(), laterThan);
  }
  NotEmpty.notify_one();
  return true;
}

bool AdmissionQueue::pop(Admission *Out) {
  std::unique_lock<std::mutex> Lock(Mu);
  NotEmpty.wait(Lock, [this] { return Closed || !Items.empty(); });
  if (Items.empty())
    return false; // Closed and drained.
  std::pop_heap(Items.begin(), Items.end(), laterThan);
  *Out = std::move(Items.back());
  Items.pop_back();
  Lock.unlock();
  NotFull.notify_one();
  return true;
}

bool AdmissionQueue::tryPop(Admission *Out) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Items.empty())
      return false;
    std::pop_heap(Items.begin(), Items.end(), laterThan);
    *Out = std::move(Items.back());
    Items.pop_back();
  }
  NotFull.notify_one();
  return true;
}

void AdmissionQueue::close() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Closed = true;
  }
  // Wake EVERY blocked producer (each returns false with its Admission
  // intact -> typed rejection) and the consumer (drains, then exits).
  NotFull.notify_all();
  NotEmpty.notify_all();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Closed;
}

size_t AdmissionQueue::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Items.size();
}

ShardRouter::ShardRouter(int Shards, int SourcesPerShard)
    : Assigned(static_cast<size_t>(Shards > 0 ? Shards : 1), 0),
      PerShard(SourcesPerShard > 0 ? SourcesPerShard : 1) {}

int ShardRouter::placeBlocking() {
  std::unique_lock<std::mutex> Lock(Mu);
  for (;;) {
    if (std::chrono::steady_clock::now() >= ShutdownAt)
      return -1; // Draining: stop placing, shed instead.
    // Least-loaded shard with a free slot; ties go to the lowest id so
    // placement is deterministic for a given load picture.
    int Best = -1;
    for (size_t S = 0; S < Assigned.size(); ++S)
      if (Assigned[S] < PerShard &&
          (Best < 0 || Assigned[S] < Assigned[static_cast<size_t>(Best)]))
        Best = static_cast<int>(S);
    if (Best >= 0) {
      ++Assigned[static_cast<size_t>(Best)];
      return Best;
    }
    // Saturated: wait for a retirement (backfill wakes us) or the drain
    // deadline, whichever comes first.
    if (ShutdownAt == std::chrono::steady_clock::time_point::max())
      Capacity.wait(Lock);
    else
      Capacity.wait_until(Lock, ShutdownAt);
  }
}

void ShardRouter::shutdownAt(std::chrono::steady_clock::time_point D) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ShutdownAt = std::min(ShutdownAt, D);
  }
  Capacity.notify_all();
}

void ShardRouter::placeOn(int Shard) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++Assigned[static_cast<size_t>(Shard)];
}

void ShardRouter::registerKey(const std::string &Key, int Shard) {
  if (Key.empty())
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  Live.emplace(Key, Shard);
}

int ShardRouter::shardOf(const std::string &Key) const {
  if (Key.empty())
    return -1;
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Live.find(Key);
  return It == Live.end() ? -1 : It->second;
}

void ShardRouter::retire(const std::string &Key, int Shard) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (!Key.empty()) {
      auto It = Live.find(Key);
      if (It != Live.end() && It->second == Shard)
        Live.erase(It);
    }
    --Assigned[static_cast<size_t>(Shard)];
  }
  Capacity.notify_one();
}

int ShardRouter::assigned(int Shard) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Assigned[static_cast<size_t>(Shard)];
}

SlotAllocator::SlotAllocator(int N) {
  Free.reserve(static_cast<size_t>(N));
  // Reverse order so acquire() hands out 0, 1, 2, ... first.
  for (int I = N - 1; I >= 0; --I)
    Free.push_back(I);
#ifndef NDEBUG
  Live.assign(static_cast<size_t>(N), false);
#endif
}

int SlotAllocator::acquire() {
  if (Free.empty())
    return -1;
  int Slot = Free.back();
  Free.pop_back();
#ifndef NDEBUG
  Live[static_cast<size_t>(Slot)] = true;
#endif
  return Slot;
}

void SlotAllocator::release(int Slot) {
#ifndef NDEBUG
  assert(Slot >= 0 && static_cast<size_t>(Slot) < Live.size() &&
         Live[static_cast<size_t>(Slot)] && "double release");
  Live[static_cast<size_t>(Slot)] = false;
#endif
  Free.push_back(Slot);
}
