//===- Scheduler.cpp - batch-scoped client of the serve engine ----------------===//

#include "serve/Scheduler.h"

#include "serve/Engine.h"

#include <algorithm>
#include <chrono>
#include <string_view>
#include <unordered_map>

using namespace slade;
using namespace slade::serve;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

} // namespace

Scheduler::Scheduler(const core::Decompiler &D, const ServeOptions &Opts)
    : D(D), Opts(Opts),
      Pool(Opts.Threads > 0 ? static_cast<unsigned>(Opts.Threads)
                            : ThreadPool::defaultConcurrency()) {}

bool Scheduler::measureFusionWins(
    const std::shared_ptr<const nn::Transformer::EncoderCache> &Enc) {
  // Timing probe only: decode a few steps solo vs. two-way fused and
  // compare the per-source step cost. States are throwaway; the run's
  // already-encoded cache is reused, so the probe costs no encoder pass
  // and touches no LRU statistics.
  const nn::Transformer &Model = D.model();
  int K = std::max(1, Opts.BeamSize);
  int Steps = std::max(4, Opts.FusionProbeSteps);
  auto TimeSteps = [&](int Sources) {
    std::vector<std::shared_ptr<const nn::Transformer::EncoderCache>> Encs(
        static_cast<size_t>(Sources), Enc);
    nn::Transformer::BatchDecodeState St =
        Model.startDecodeBatchMulti(Encs, K, Steps + 2);
    Model.stepDecodeBatch(
        St, std::vector<int>(static_cast<size_t>(Sources),
                             nn::Transformer::BosId));
    std::vector<int> Grow; // Expand every source to its full K rows.
    for (int S = 0; S < Sources; ++S)
      for (int B = 0; B < K; ++B)
        Grow.push_back(S);
    Model.reorderBeams(St, Grow);
    std::vector<int> Tokens(Grow.size(), nn::Transformer::BosId);
    auto T0 = std::chrono::steady_clock::now();
    for (int S = 0; S < Steps; ++S)
      Model.stepDecodeBatch(St, Tokens);
    return secondsSince(T0);
  };
  TimeSteps(1); // Warm caches/scratch so the timed passes compare fair.
  double Solo = TimeSteps(1);
  double FusedPerSource = TimeSteps(2) / 2.0;
  return FusedPerSource < Solo * 0.95;
}

int Scheduler::engineWidth(
    const std::vector<std::vector<int>> &Srcs,
    const std::vector<size_t> &UniqueIdx,
    const std::vector<std::shared_ptr<const nn::Transformer::EncoderCache>>
        &Encs,
    int ShardCount) {
  if (!Opts.BatchDecode || Opts.BeamSize < 1)
    return 1;
  if (Opts.DecodeBatch > 0)
    return Opts.DecodeBatch;
  // A run with fewer than two unique sources cannot fuse anything:
  // width 1, and no probe (the decision stays unmeasured for a run
  // that could actually use it).
  if (UniqueIdx.size() < 2)
    return 1;
  // AUTO: measured once per (weight version, beam width, shard count),
  // then cached — repeated runs (the steady-state serving case) never
  // re-probe, while a topology change re-measures (N shards share the
  // memory system, which shifts the fused-vs-solo tradeoff). The
  // decision is purely about speed; results are batch-invariant.
  std::tuple<uint64_t, int, int> Key{D.model().weightVersion(),
                                     Opts.BeamSize, ShardCount};
  auto It = FusionDecisions.find(Key);
  bool Fuse;
  if (It != FusionDecisions.end()) {
    Fuse = It->second;
  } else {
    // Probe the MEDIAN-length source so the decision represents the
    // run's typical request, not its best case (fusion wins shrink as
    // sources grow — bench/README.md).
    std::vector<size_t> ByLen;
    for (size_t U = 0; U < UniqueIdx.size(); ++U)
      if (!Srcs[UniqueIdx[U]].empty())
        ByLen.push_back(U);
    if (ByLen.empty())
      return 1; // Nothing to probe; decide again on a real run.
    std::sort(ByLen.begin(), ByLen.end(), [&](size_t A, size_t B) {
      return Srcs[UniqueIdx[A]].size() < Srcs[UniqueIdx[B]].size();
    });
    Fuse = measureFusionWins(Encs[ByLen[ByLen.size() / 2]]);
    FusionDecisions.emplace(Key, Fuse);
    ++M.FusionProbes;
  }
  if (!Fuse)
    return 1;
  // Target ~8 GEMM rows per fused step, at least two-way fusion.
  return std::max(2, 8 / std::max(1, Opts.BeamSize));
}

std::vector<std::vector<nn::Hypothesis>>
Scheduler::decodeAll(const std::vector<std::vector<int>> &Srcs) {
  nn::EncoderLRU::Stats Before = D.encoderCache().stats();

  // Single-flight: identical tokenized sources decode ONCE. Serving
  // corpora repeat functions heavily (the same routine recurs across
  // binaries — the duplication §V-A dedups at training time), and a
  // repeated request's hypotheses are identical by determinism, so every
  // duplicate after the first is free.
  std::vector<size_t> JobToUnique(Srcs.size());
  std::vector<size_t> UniqueIdx; // Unique job index -> first Srcs index.
  {
    std::unordered_map<std::string_view, size_t> Seen;
    for (size_t I = 0; I < Srcs.size(); ++I) {
      std::string_view Key(
          reinterpret_cast<const char *>(Srcs[I].data()),
          Srcs[I].size() * sizeof(int));
      auto [It, Inserted] = Seen.emplace(Key, UniqueIdx.size());
      if (Inserted)
        UniqueIdx.push_back(I);
      JobToUnique[I] = It->second;
    }
  }
  M.DecodesDeduped += Srcs.size() - UniqueIdx.size();

  // Encode stage: per-source encoder passes through the shared LRU,
  // fanned out on the worker pool (the engine's decode thread then
  // admits the pre-encoded caches without stalling a tick on a cold
  // encode).
  auto TE = std::chrono::steady_clock::now();
  std::vector<std::shared_ptr<const nn::Transformer::EncoderCache>> Encs(
      UniqueIdx.size());
  Pool.parallelFor(UniqueIdx.size(), [&](size_t U) {
    Encs[U] = D.encodeCached(Srcs[UniqueIdx[U]]);
  });
  M.EncodeSeconds += secondsSince(TE);

  // Thin client of the streaming engine: submit every unique source,
  // then drain futures in order. The engine spreads unique sources over
  // its decode shards (multi-core fan-out — the per-group parallelism
  // unfusable workloads need), admits up to EngineMaxLive sources into
  // each shard's continuous batch, and recycles rows as sources finish,
  // so a straggler never stalls the others. Per-source results are
  // byte-identical to solo beamSearch regardless of width or shard
  // count.
  // The fusion decision is keyed by the RESOLVED topology (so varying
  // corpus sizes share one cached probe); the engine itself never runs
  // more shards than it has unique sources.
  int ResolvedShards = resolveShardCount(Opts.Shards);
  int ShardCount = std::min(
      ResolvedShards, std::max(1, static_cast<int>(UniqueIdx.size())));
  EngineOptions EO;
  EO.BeamSize = Opts.BeamSize;
  EO.MaxLen = Opts.MaxLen;
  EO.UseTypeInference = Opts.UseTypeInference;
  EO.MaxLiveSources = engineWidth(Srcs, UniqueIdx, Encs, ResolvedShards);
  EO.Shards = ShardCount;
  EO.TickThreads = Opts.TickThreads;
  // The batch front dedups its corpus up front and reports per-run
  // decode costs; a cross-run hypotheses cache would silently turn
  // "decode" runs into lookups, so it stays off here (the streaming
  // engine is where the decode LRU closes the non-overlapping-repeat
  // regime).
  EO.UseDecodeCache = false;
  EO.QueueCapacity = std::max<size_t>(1, UniqueIdx.size());
  EO.Constrain = Opts.Constrain;
  EO.Speculate = Opts.Speculate;
  EO.DraftGamma = Opts.DraftGamma;
  EO.Metrics = Opts.Metrics;
  M.EngineMaxLive = EO.MaxLiveSources;
  M.EngineShards = ShardCount;

  std::vector<std::vector<nn::Hypothesis>> Unique(UniqueIdx.size());
  {
    Engine Eng(D, EO);
    std::vector<Handle> Handles;
    Handles.reserve(UniqueIdx.size());
    for (size_t U = 0; U < UniqueIdx.size(); ++U) {
      DecompileRequest R;
      R.Src = Srcs[UniqueIdx[U]];
      R.Enc = Encs[U];
      Handles.push_back(Eng.submit(std::move(R)));
    }
    for (size_t U = 0; U < UniqueIdx.size(); ++U) {
      // Typed-outcome path: a non-Ok resolution (contained encode
      // fault, shed, ...) yields empty hypotheses for that source AND
      // shows up in the run counters below — never an exception, never
      // a silent mystery.
      RequestResult Res = Handles[U].get();
      Unique[U] = std::move(Res.Hyps);
    }

    EngineMetrics EM = Eng.metrics();
    M.EncodeSeconds += EM.EncodeSeconds;
    M.DecodeSeconds += EM.DecodeSeconds;
    M.DecodesFused += EM.FusedJobs;
    M.RequestsShed += EM.Shed;
    M.RequestsExpired += EM.Expired;
    M.RequestsCancelled += EM.Cancelled;
    M.RequestsFailed += EM.EncodeFailed + EM.VerifyFailed;
    M.VerifyTimeouts += EM.VerifyTimeouts;
    M.VerifyRetries += EM.VerifyRetries;
    M.DecodeCacheHits += EM.DecodeCacheHits;
    M.DecodeCacheMisses += EM.DecodeCacheMisses;
    M.DecodeCacheBytes = EM.DecodeCacheBytes;
    M.BeamsKilled += EM.BeamsKilled;
    M.TokensMasked += EM.TokensMasked;
    M.OracleSeconds += EM.OracleSeconds;
    M.DraftProposed += EM.DraftProposed;
    M.DraftAccepted += EM.DraftAccepted;
    M.SpecRounds += EM.SpecRounds;
    M.SpecFallbacks += EM.SpecFallbacks;
    M.DraftSeconds += EM.DraftSeconds;
    M.SpecAcceptRate =
        M.DraftProposed ? static_cast<double>(M.DraftAccepted) /
                              static_cast<double>(M.DraftProposed)
                        : 0.0;
    M.QueueWaitP50 = EM.QueueWait.P50;
    M.QueueWaitP95 = EM.QueueWait.P95;
    M.QueueWaitP99 = EM.QueueWait.P99;
    M.LatencyP50 = EM.Latency.P50;
    M.LatencyP95 = EM.Latency.P95;
    M.LatencyP99 = EM.Latency.P99;
  }

  nn::EncoderLRU::Stats After = D.encoderCache().stats();
  uint64_t DHits = After.Hits - Before.Hits;
  uint64_t DMisses = After.Misses - Before.Misses;
  M.EncoderCacheHits += DHits;
  M.EncoderCacheMisses += DMisses;
  uint64_t Lookups = M.EncoderCacheHits + M.EncoderCacheMisses;
  M.EncoderCacheHitRate =
      Lookups ? static_cast<double>(M.EncoderCacheHits) /
                    static_cast<double>(Lookups)
              : 0.0;
  if (DMisses)
    M.ColdEncodeMsMean = (After.MissSeconds - Before.MissSeconds) * 1000.0 /
                         static_cast<double>(DMisses);
  M.EncoderCacheBytes = D.encoderCache().bytesUsed();

  std::vector<std::vector<nn::Hypothesis>> Hyps(Srcs.size());
  for (size_t I = 0; I < Srcs.size(); ++I)
    Hyps[I] = Unique[JobToUnique[I]]; // Last ref could move; copies are
                                      // cheap next to a decode.
  return Hyps;
}

std::vector<TranslateResult>
Scheduler::translate(const std::vector<TranslateJob> &Jobs) {
  M = ServeMetrics();
  M.Jobs = Jobs.size();
  auto T0 = std::chrono::steady_clock::now();

  const tok::Tokenizer &Tok = D.tokenizer();
  std::vector<std::vector<int>> Srcs(Jobs.size());
  Pool.parallelFor(Jobs.size(),
                   [&](size_t I) { Srcs[I] = Tok.encode(Jobs[I].Asm); });

  std::vector<std::vector<nn::Hypothesis>> Hyps = decodeAll(Srcs);

  std::vector<TranslateResult> Out(Jobs.size());
  for (size_t I = 0; I < Jobs.size(); ++I) {
    Out[I].Name = Jobs[I].Name;
    if (!Hyps[I].empty())
      Out[I].CSource = Tok.decode(Hyps[I].front().Tokens);
  }
  M.TotalSeconds = secondsSince(T0);
  M.FunctionsPerSec =
      M.TotalSeconds > 0 ? static_cast<double>(M.Jobs) / M.TotalSeconds : 0;
  return Out;
}

std::vector<core::HypothesisOutcome>
Scheduler::decompileAll(const std::vector<core::EvalTask> &Tasks) {
  M = ServeMetrics();
  M.Jobs = Tasks.size();
  auto T0 = std::chrono::steady_clock::now();

  const tok::Tokenizer &Tok = D.tokenizer();
  std::vector<std::vector<int>> Srcs(Tasks.size());
  Pool.parallelFor(Tasks.size(), [&](size_t I) {
    Srcs[I] = Tok.encode(Tasks[I].Prog.TargetAsm);
  });

  std::vector<std::vector<nn::Hypothesis>> Hyps = decodeAll(Srcs);

  // Verify stage: one worker per job; within a job, candidates are tried
  // sequentially in beam order with early exit on the first IO pass —
  // exactly Decompiler::decompile's sequential selection, so per-job
  // outcomes are byte-identical to a one-at-a-time run. (Streaming
  // clients that want verification overlapped with decode submit Task
  // requests to the Engine directly; the batch scheduler keeps the
  // two-stage shape.)
  auto TV = std::chrono::steady_clock::now();
  std::vector<core::HypothesisOutcome> Out(Tasks.size());
  Pool.parallelFor(Tasks.size(), [&](size_t I) {
    core::HypothesisOutcome First;
    bool HaveFirst = false;
    for (const nn::Hypothesis &H : Hyps[I]) {
      std::string CSource = Tok.decode(H.Tokens);
      core::HypothesisOutcome O = core::evaluateHypothesis(
          Tasks[I], CSource, Opts.UseTypeInference);
      if (!HaveFirst) {
        First = O;
        HaveFirst = true;
      }
      if (O.IOCorrect) {
        Out[I] = O; // First candidate passing the IO tests (§VI-A).
        return;
      }
    }
    Out[I] = First; // None passed: report the top beam candidate.
  });
  M.VerifySeconds = secondsSince(TV);
  M.TotalSeconds = secondsSince(T0);
  M.FunctionsPerSec =
      M.TotalSeconds > 0 ? static_cast<double>(M.Jobs) / M.TotalSeconds : 0;
  return Out;
}
