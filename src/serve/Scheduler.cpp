//===- Scheduler.cpp - concurrent decompile request scheduler -----------------===//

#include "serve/Scheduler.h"

#include <algorithm>
#include <chrono>
#include <string_view>
#include <unordered_map>

using namespace slade;
using namespace slade::serve;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

} // namespace

Scheduler::Scheduler(const core::Decompiler &D, const ServeOptions &Opts)
    : D(D), Opts(Opts),
      Pool(Opts.Threads > 0 ? static_cast<unsigned>(Opts.Threads)
                            : ThreadPool::defaultConcurrency()) {}

std::vector<std::vector<nn::Hypothesis>>
Scheduler::decodeAll(const std::vector<std::vector<int>> &Srcs) {
  nn::EncoderLRU::Stats Before = D.encoderCache().stats();

  // Single-flight: identical tokenized sources decode ONCE. Serving
  // corpora repeat functions heavily (the same routine recurs across
  // binaries — the duplication §V-A dedups at training time), and a
  // repeated request's hypotheses are identical by determinism, so every
  // duplicate after the first is free.
  std::vector<size_t> JobToUnique(Srcs.size());
  std::vector<size_t> UniqueIdx; // Unique job index -> first Srcs index.
  {
    std::unordered_map<std::string_view, size_t> Seen;
    for (size_t I = 0; I < Srcs.size(); ++I) {
      std::string_view Key(
          reinterpret_cast<const char *>(Srcs[I].data()),
          Srcs[I].size() * sizeof(int));
      auto [It, Inserted] = Seen.emplace(Key, UniqueIdx.size());
      if (Inserted)
        UniqueIdx.push_back(I);
      JobToUnique[I] = It->second;
    }
  }
  M.DecodesDeduped += Srcs.size() - UniqueIdx.size();

  // Encode stage: per-source encoder passes through the shared LRU.
  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::shared_ptr<const nn::Transformer::EncoderCache>> Encs(
      UniqueIdx.size());
  Pool.parallelFor(UniqueIdx.size(), [&](size_t U) {
    Encs[U] = D.encodeCached(Srcs[UniqueIdx[U]]);
  });
  M.EncodeSeconds += secondsSince(T0);

  // Decode stage. Fusion is decision-invariant (per-source results are
  // byte-identical fused or not), so grouping is purely a performance
  // choice made per job from its measured source length.
  T0 = std::chrono::steady_clock::now();
  nn::BeamConfig BC;
  BC.BeamSize = Opts.BeamSize;
  BC.MaxLen = Opts.MaxLen;
  std::vector<std::vector<size_t>> Groups; // Of unique-job indices.
  if (!Opts.BatchDecode || Opts.BeamSize < 1) {
    for (size_t U = 0; U < UniqueIdx.size(); ++U)
      Groups.push_back({U});
  } else if (Opts.DecodeBatch > 0) {
    size_t Group = static_cast<size_t>(Opts.DecodeBatch);
    for (size_t Lo = 0; Lo < UniqueIdx.size(); Lo += Group) {
      Groups.emplace_back();
      for (size_t U = Lo; U < std::min(UniqueIdx.size(), Lo + Group); ++U)
        Groups.back().push_back(U);
    }
  } else {
    // AUTO: fuse only where measured to win — narrow beams over short
    // sources (cross-K/V working set stays cache-resident); everything
    // else decodes per job.
    size_t FuseRows = 8; // Target GEMM rows per fused step.
    size_t PerGroup = std::max<size_t>(
        1, FuseRows / static_cast<size_t>(Opts.BeamSize));
    std::vector<size_t> Fusable;
    for (size_t U = 0; U < UniqueIdx.size(); ++U) {
      if (Opts.BeamSize <= 2 && Encs[U]->TSrc <= Opts.ShortSrcTokens)
        Fusable.push_back(U);
      else
        Groups.push_back({U});
    }
    for (size_t Lo = 0; Lo < Fusable.size(); Lo += PerGroup)
      Groups.emplace_back(
          Fusable.begin() + static_cast<long>(Lo),
          Fusable.begin() +
              static_cast<long>(std::min(Fusable.size(), Lo + PerGroup)));
  }

  std::vector<std::vector<nn::Hypothesis>> Unique(UniqueIdx.size());
  size_t Fused = 0;
  for (const std::vector<size_t> &G : Groups)
    if (G.size() > 1)
      Fused += G.size();
  M.DecodesFused += Fused;
  // Each group's decode is single-threaded; groups fan out on the pool
  // when it has more than one worker.
  Pool.parallelFor(Groups.size(), [&](size_t GI) {
    const std::vector<size_t> &G = Groups[GI];
    if (G.size() == 1) {
      Unique[G[0]] = nn::beamSearch(D.model(), Encs[G[0]], BC);
      return;
    }
    std::vector<std::shared_ptr<const nn::Transformer::EncoderCache>>
        Slice;
    for (size_t U : G)
      Slice.push_back(Encs[U]);
    auto Results = nn::beamSearchMulti(D.model(), Slice, BC);
    for (size_t I = 0; I < G.size(); ++I)
      Unique[G[I]] = std::move(Results[I]);
  });
  M.DecodeSeconds += secondsSince(T0);

  nn::EncoderLRU::Stats After = D.encoderCache().stats();
  uint64_t DHits = After.Hits - Before.Hits;
  uint64_t DMisses = After.Misses - Before.Misses;
  M.EncoderCacheHits += DHits;
  M.EncoderCacheMisses += DMisses;
  uint64_t Lookups = M.EncoderCacheHits + M.EncoderCacheMisses;
  M.EncoderCacheHitRate =
      Lookups ? static_cast<double>(M.EncoderCacheHits) /
                    static_cast<double>(Lookups)
              : 0.0;
  if (DMisses)
    M.ColdEncodeMsMean = (After.MissSeconds - Before.MissSeconds) * 1000.0 /
                         static_cast<double>(DMisses);
  M.EncoderCacheBytes = D.encoderCache().bytesUsed();

  std::vector<std::vector<nn::Hypothesis>> Hyps(Srcs.size());
  for (size_t I = 0; I < Srcs.size(); ++I)
    Hyps[I] = Unique[JobToUnique[I]]; // Last ref could move; copies are
                                      // cheap next to a decode.
  return Hyps;
}

std::vector<TranslateResult>
Scheduler::translate(const std::vector<TranslateJob> &Jobs) {
  M = ServeMetrics();
  M.Jobs = Jobs.size();
  auto T0 = std::chrono::steady_clock::now();

  const tok::Tokenizer &Tok = D.tokenizer();
  std::vector<std::vector<int>> Srcs(Jobs.size());
  Pool.parallelFor(Jobs.size(),
                   [&](size_t I) { Srcs[I] = Tok.encode(Jobs[I].Asm); });

  std::vector<std::vector<nn::Hypothesis>> Hyps = decodeAll(Srcs);

  std::vector<TranslateResult> Out(Jobs.size());
  for (size_t I = 0; I < Jobs.size(); ++I) {
    Out[I].Name = Jobs[I].Name;
    if (!Hyps[I].empty())
      Out[I].CSource = Tok.decode(Hyps[I].front().Tokens);
  }
  M.TotalSeconds = secondsSince(T0);
  M.FunctionsPerSec =
      M.TotalSeconds > 0 ? static_cast<double>(M.Jobs) / M.TotalSeconds : 0;
  return Out;
}

std::vector<core::HypothesisOutcome>
Scheduler::decompileAll(const std::vector<core::EvalTask> &Tasks) {
  M = ServeMetrics();
  M.Jobs = Tasks.size();
  auto T0 = std::chrono::steady_clock::now();

  const tok::Tokenizer &Tok = D.tokenizer();
  std::vector<std::vector<int>> Srcs(Tasks.size());
  Pool.parallelFor(Tasks.size(), [&](size_t I) {
    Srcs[I] = Tok.encode(Tasks[I].Prog.TargetAsm);
  });

  std::vector<std::vector<nn::Hypothesis>> Hyps = decodeAll(Srcs);

  // Verify stage: one worker per job; within a job, candidates are tried
  // sequentially in beam order with early exit on the first IO pass —
  // exactly Decompiler::decompile's sequential selection, so per-job
  // outcomes are byte-identical to a one-at-a-time run.
  auto TV = std::chrono::steady_clock::now();
  std::vector<core::HypothesisOutcome> Out(Tasks.size());
  Pool.parallelFor(Tasks.size(), [&](size_t I) {
    core::HypothesisOutcome First;
    bool HaveFirst = false;
    for (const nn::Hypothesis &H : Hyps[I]) {
      std::string CSource = Tok.decode(H.Tokens);
      core::HypothesisOutcome O = core::evaluateHypothesis(
          Tasks[I], CSource, Opts.UseTypeInference);
      if (!HaveFirst) {
        First = O;
        HaveFirst = true;
      }
      if (O.IOCorrect) {
        Out[I] = O; // First candidate passing the IO tests (§VI-A).
        return;
      }
    }
    Out[I] = First; // None passed: report the top beam candidate.
  });
  M.VerifySeconds = secondsSince(TV);
  M.TotalSeconds = secondsSince(T0);
  M.FunctionsPerSec =
      M.TotalSeconds > 0 ? static_cast<double>(M.Jobs) / M.TotalSeconds : 0;
  return Out;
}
