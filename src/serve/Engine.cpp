//===- Engine.cpp - sharded streaming serve engine (continuous batching) ------===//

#include "serve/Engine.h"

#include "nn/BeamCore.h"
#include "nn/Parallel.h"
#include "nn/SpecDecode.h"
#include "obs/Trace.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>
#include <thread>

using namespace slade;
using namespace slade::serve;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point T0) {
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

Clock::duration secondsToDuration(double S) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(S));
}

/// Seconds -> recorder nanoseconds, for synthesizing sub-spans from
/// accumulated stats (the oracle-mask time inside a tick).
uint64_t secondsToNs(double S) {
  return S > 0 ? static_cast<uint64_t>(S * 1e9) : 0;
}

} // namespace

int slade::serve::resolveShardCount(int Requested) {
  if (Requested > 0)
    return Requested;
  unsigned N = ThreadPool::defaultConcurrency();
  return static_cast<int>(std::min<unsigned>(N ? N : 1, 8));
}

LatencyStats slade::serve::latencyStatsOf(std::vector<double> Samples) {
  obs::SampleStats St = obs::sampleStats(std::move(Samples));
  LatencyStats S;
  S.P50 = St.P50;
  S.P95 = St.P95;
  S.P99 = St.P99;
  S.Mean = St.Mean;
  S.Max = St.Max;
  return S;
}

namespace {

/// Serve-typed view of a histogram's exact-window stats.
LatencyStats toLatencyStats(const obs::SampleStats &St) {
  LatencyStats S;
  S.P50 = St.P50;
  S.P95 = St.P95;
  S.P99 = St.P99;
  S.Mean = St.Mean;
  S.Max = St.Max;
  return S;
}

} // namespace

/// One request's completion channel: who to tell, when it arrived, when
/// it must be done, and how to tell it is no longer wanted.
struct Engine::Completion {
  std::string Name;
  const core::EvalTask *Task = nullptr;
  std::promise<RequestResult> Promise;
  std::function<void(const RequestResult &)> OnDone;
  std::shared_ptr<std::atomic<bool>> Cancel;
  Clock::time_point SubmitTime;
  Clock::time_point Deadline = Clock::time_point::max();
  uint64_t Seq = 0; ///< Submit order: fault-injection id.
  double QueueWait = 0;
  bool Shared = false; ///< Shared >= 1 decode tick with another source.
  /// Tracing (obs/Trace.h): sampled-at-submit decision plus the span
  /// anchor timestamps (recorder-epoch ns). Inert while tracing is off.
  bool Traced = false;
  uint64_t SubmitNs = 0; ///< Queue-wait span start.
  uint64_t RouteNs = 0;  ///< Dispatch routed it; admission-wait start.

  /// Why this completion can no longer be served — or Ok while it can.
  /// Cancellation wins over expiry when both hold (the client asked
  /// first). This is the CANCELLATION POINTS' shared predicate; it is
  /// checked at submit, at dispatch, on the shard pre-admission sweep,
  /// on every shard tick, and between verify candidates.
  RequestStatus deadStatus(Clock::time_point Now) const {
    if (Cancel && Cancel->load(std::memory_order_acquire))
      return RequestStatus::Cancelled;
    if (Now >= Deadline)
      return RequestStatus::DeadlineExpired;
    return RequestStatus::Ok;
  }

  /// Moves an admission's routing-independent fields into a Completion.
  static Completion fromAdmission(Admission &&A) {
    Completion C;
    C.Name = std::move(A.Req.Name);
    C.Task = A.Req.Task;
    C.Promise = std::move(A.Promise);
    C.OnDone = std::move(A.OnDone);
    C.Cancel = std::move(A.Cancel);
    C.SubmitTime = A.SubmitTime;
    C.Deadline = A.Req.Deadline;
    C.Seq = A.Seq;
    C.Traced = A.Traced;
    C.SubmitNs = A.SubmitNs;
    return C;
  }
};

/// One live source in a shard's continuous batch: its segment, its
/// beam-search bookkeeping (shared nn/BeamCore.h state), and the
/// completions it serves — its own, plus any identical requests that
/// arrived while it was decoding (single-flight dedup, possibly routed
/// from the dispatcher across shards).
struct Engine::Job {
  Completion Main;
  std::vector<Completion> Attached;
  /// Byte key of the tokenized source, for single-flight matching.
  std::string SrcKey;
  /// True when the dispatcher registered SrcKey in the live-key
  /// registry for THIS job. A readmitted attach-fallback job carries
  /// the key (so later attaches can still merge on its shard) but no
  /// registration — its retirement must not erase an entry a newer
  /// job owns.
  bool Registered = false;
  /// The tokenized source itself: the decoded-hypotheses LRU key.
  std::vector<int> Src;
  /// Weight version the source was encoded under (LRU key component).
  uint64_t ConstsVersion = 0;

  int Seg = -1; ///< Self-K/V segment owned while live.
  std::vector<nn::beamcore::BeamMeta> Live;
  std::vector<nn::Hypothesis> Done;
  /// Per-beam oracle cursors (grammar constraint; inert when off).
  nn::beamcore::ConstraintCtx CC;
  /// Tokens to feed this source's rows on the next tick ({Bos} when
  /// freshly admitted). Invariant: NextTokens.size() == Live.size().
  std::vector<int> NextTokens;
  int Steps = 0; ///< Selection steps taken (caps at MaxLen).
  /// Speculative serving only (inert on the plain path): the session job
  /// carries the pending selection and row geometry across rounds; the
  /// accumulators below feed the Auto acceptance gate.
  nn::SpecSession::Job SJ;
  uint64_t SpecProposed = 0, SpecAccepted = 0;
  int SpecRoundsSeen = 0;
  bool SpecGateDecided = false;
  /// Decode-span start (row admission), recorder-epoch ns; meaningful
  /// only when Main.Traced.
  uint64_t AdmitNs = 0;
};

/// One routed request, in a shard's inbox or pending queue. Attach
/// messages carry no encoder cache (the live target owns one); they
/// convert to admissions only on the retire race (see shardLoop).
struct Engine::ShardMsg {
  bool Attach = false;
  /// Admissions only: the dispatcher registered SrcKey for this source.
  bool Registered = false;
  Completion C;
  std::vector<int> Src;
  std::string SrcKey;
  std::shared_ptr<const nn::Transformer::EncoderCache> Enc;
  /// Duplicates that attached while this admission was still waiting
  /// for a free segment; become the job's Attached set on admission.
  std::vector<Completion> Attached;
};

/// One decode shard: a long-lived thread owning a BatchDecodeState,
/// a segment allocator, and scratch — nothing on its hot tick is shared
/// with other shards. Cross-thread surface: the inbox (dispatcher ->
/// shard) and the shard's single-writer instrument cells (the per-tick
/// utilization/constraint/spec accumulators moved into the metrics
/// registry — Engine::Ins, cell == Index — keeping the exact
/// single-writer relaxed-store discipline they had as raw atomics).
struct Engine::Shard {
  int Index = 0;
  std::mutex Mu;
  std::condition_variable Cv;
  std::vector<ShardMsg> Inbox;
  std::thread Thread;
};

Engine::Engine(const core::Decompiler &D, const EngineOptions &Opts)
    : D(D), Opts(Opts), Injector(Opts.Faults), Queue(Opts.QueueCapacity),
      Router(resolveShardCount(Opts.Shards),
             std::max(1, Opts.MaxLiveSources)),
      OwnedReg(Opts.Metrics ? nullptr : new obs::Registry),
      Reg(Opts.Metrics ? *Opts.Metrics : *OwnedReg),
      DrainAtRaw(Clock::time_point::max().time_since_epoch().count()) {
  assert(this->Opts.MaxLiveSources > 0 && "need at least one decode row");
  const int N = resolveShardCount(Opts.Shards);
  this->Opts.Shards = N; // options() reports the resolved count.
  this->Opts.TickThreads = std::max(1, Opts.TickThreads);
  registerInstruments();
  ShardsVec.reserve(static_cast<size_t>(N));
  for (int I = 0; I < N; ++I) {
    auto S = std::make_unique<Shard>();
    S->Index = I;
    ShardsVec.push_back(std::move(S));
  }
  // Shards first, then the dispatcher that feeds them.
  for (std::unique_ptr<Shard> &S : ShardsVec) {
    Shard *SP = S.get();
    SP->Thread = std::thread([this, SP] { shardLoop(*SP); });
  }
  DispatchThread = std::thread([this] { dispatchLoop(); });
}

Engine::~Engine() {
  stop();
  // The collector captures `this`: it must not outlive the engine in an
  // external registry.
  Reg.removeCollector(CollectorToken);
}

/// Registers the engine's instrument set. Idempotent per registry name:
/// two engines sharing one external registry share the counters too
/// (their cells line up only at equal shard counts — slade-serve's one
/// engine per registry is the intended shape).
void Engine::registerInstruments() {
  const int N = this->Opts.Shards;
  Ins.Sources = &Reg.counter(
      "slade_shard_sources_total",
      "Sources admitted into decode rows, per shard", N);
  Ins.Steps = &Reg.counter("slade_shard_steps_total",
                           "Fused decode ticks, per shard", N);
  Ins.StepRows = &Reg.counter("slade_shard_step_rows_total",
                              "Beam rows stepped, per shard", N);
  Ins.DecodeSeconds = &Reg.floatCounter(
      "slade_shard_decode_seconds_total",
      "Time inside decode ticks, per shard", N);
  Ins.BeamsKilled = &Reg.counter(
      "slade_constraint_beams_killed_total",
      "Beams whose every candidate was masked", N);
  Ins.TokensMasked = &Reg.counter(
      "slade_constraint_tokens_masked_total",
      "Vocab entries masked, summed over steps", N);
  Ins.OracleSeconds = &Reg.floatCounter(
      "slade_constraint_oracle_seconds_total",
      "Time inside the oracle/mask code", N);
  Ins.DraftProposed = &Reg.counter("slade_spec_draft_proposed_total",
                                   "Draft-proposed beam steps", N);
  Ins.DraftAccepted = &Reg.counter(
      "slade_spec_draft_accepted_total",
      "Proposals the full model agreed with", N);
  Ins.SpecRounds = &Reg.counter("slade_spec_rounds_total",
                                "Propose/verify rounds ticked", N);
  Ins.SpecFallbacks = &Reg.counter(
      "slade_spec_fallbacks_total",
      "Requests the Auto gate reverted to plain", N);
  Ins.DraftSeconds = &Reg.floatCounter(
      "slade_spec_draft_seconds_total",
      "Time inside draft forward + simulation", N);
  Ins.ParallelRegions = &Reg.counter(
      "slade_shard_parallel_regions_total",
      "Intra-tick pool regions fanned out, per shard", N);
  Ins.TickThreadsGauge = &Reg.gauge(
      "slade_engine_tick_threads",
      "Intra-tick worker threads per shard (1 = no pool)");
  Ins.TickThreadsGauge->set(static_cast<double>(this->Opts.TickThreads));
  Ins.LiveSourcesGauge = &Reg.gauge(
      "slade_engine_live_sources",
      "Sources currently admitted into decode rows, all shards");
  Ins.QueueWait = &Reg.histogram(
      "slade_engine_queue_wait_seconds",
      "submit() to decode-row admission, OK requests only",
      obs::Histogram::defaultLatencyBounds(), 1, MaxLatencySamples);
  Ins.Latency = &Reg.histogram(
      "slade_engine_latency_seconds",
      "submit() to completion, OK requests only",
      obs::Histogram::defaultLatencyBounds(), 1, MaxLatencySamples);
  CollectorToken =
      Reg.addCollector([this](obs::MetricSink &Sink) { collectInto(Sink); });
}

/// The coherent-group collector: every completion-side counter below is
/// written under MetricsMu, so scraping them one atomic at a time could
/// tear the accounting invariant (Completed == sum of typed outcomes).
/// Instead the scrape takes ONE snapshot under the same mutex — the
/// invariant holds on every exposition, mid-flight included.
void Engine::collectInto(obs::MetricSink &Sink) const {
  size_t Sub, Comp, Ok, Fused, Dedup, CacheHits, CacheMisses, Peak;
  size_t Shed, Expired, Cancelled, ShutDown, EncFailed, VerFailed;
  uint64_t VTimeouts, VRetries;
  double EncSec, VerSec, DrMs;
  {
    std::lock_guard<std::mutex> Lock(MetricsMu);
    Sub = Submitted;
    Comp = Completed;
    Ok = OkCount;
    Fused = FusedJobs;
    Dedup = InFlightDeduped;
    CacheHits = DecodeCacheHits;
    CacheMisses = DecodeCacheMisses;
    Peak = PeakLiveSources;
    Shed = ShedCount;
    Expired = ExpiredCount;
    Cancelled = CancelledCount;
    ShutDown = ShutDownCount;
    EncFailed = EncodeFailedCount;
    VerFailed = VerifyFailedCount;
    VTimeouts = VerifyTimeouts;
    VRetries = VerifyRetries;
    EncSec = EncodeSeconds;
    VerSec = VerifySeconds;
    DrMs = DrainMs;
  }
  auto D = [](size_t V) { return static_cast<double>(V); };
  Sink.counter("slade_engine_requests_submitted_total",
               "Requests accepted by submit()", "", D(Sub));
  Sink.counter("slade_engine_requests_completed_total",
               "Typed resolutions, any status", "", D(Comp));
  const char *H = "Typed resolutions by outcome";
  Sink.counter("slade_engine_outcome_total", H, "status=\"ok\"", D(Ok));
  Sink.counter("slade_engine_outcome_total", H, "status=\"queue_full\"",
               D(Shed));
  Sink.counter("slade_engine_outcome_total", H,
               "status=\"deadline_expired\"", D(Expired));
  Sink.counter("slade_engine_outcome_total", H, "status=\"cancelled\"",
               D(Cancelled));
  Sink.counter("slade_engine_outcome_total", H, "status=\"shutting_down\"",
               D(ShutDown));
  Sink.counter("slade_engine_outcome_total", H, "status=\"encode_failed\"",
               D(EncFailed));
  Sink.counter("slade_engine_outcome_total", H, "status=\"verify_failed\"",
               D(VerFailed));
  Sink.counter("slade_engine_fused_jobs_total",
               "Requests that shared a decode tick", "", D(Fused));
  Sink.counter("slade_engine_inflight_deduped_total",
               "Requests attached to a live identical decode", "",
               D(Dedup));
  Sink.counter("slade_engine_decode_cache_hits_total",
               "Requests served from the decoded-hypotheses LRU", "",
               D(CacheHits));
  Sink.counter("slade_engine_decode_cache_misses_total",
               "Decode-LRU lookups that missed", "", D(CacheMisses));
  Sink.gauge("slade_engine_peak_live_sources",
             "Peak concurrently-live sources, all shards", "", D(Peak));
  Sink.counter("slade_engine_encode_seconds_total",
               "Encoder passes at dispatch", "", EncSec);
  Sink.counter("slade_engine_verify_seconds_total",
               "Summed pool verify time (overlapped)", "", VerSec);
  Sink.counter("slade_engine_verify_timeouts_total",
               "Candidates cut by the verify timeout", "",
               static_cast<double>(VTimeouts));
  Sink.counter("slade_engine_verify_retries_total",
               "Transient verify attempts retried", "",
               static_cast<double>(VRetries));
  Sink.gauge("slade_engine_drain_ms",
             "Wall ms the terminal drain()/stop() took", "", DrMs);
  // Weight-version pack caches (nn/Transformer.h): how often the decode
  // constants / packed tiles rebuilt and the bytes the packs pin.
  nn::Transformer::PackCacheStats PS = this->D.model().packCacheStats();
  const char *PH = "Weight-version cache rebuilds";
  Sink.counter("slade_pack_builds_total", PH, "kind=\"decode_consts\"",
               static_cast<double>(PS.ConstBuilds));
  Sink.counter("slade_pack_builds_total", PH, "kind=\"packed_weights\"",
               static_cast<double>(PS.PackBuilds));
  Sink.gauge("slade_pack_bytes",
             "Bytes held by pre-packed weight tiles (current version)", "",
             static_cast<double>(PS.PackedBytes));
}

void Engine::stop() { shutdownImpl(Clock::time_point::max()); }

void Engine::drain(Clock::time_point Deadline) { shutdownImpl(Deadline); }

void Engine::shutdownImpl(Clock::time_point Deadline) {
  std::call_once(StopOnce, [this, Deadline] {
    auto T0 = Clock::now();
    // Arm the drain deadline BEFORE closing the queue: once pushes start
    // failing, every path that sheds work already sees the deadline.
    DrainAtRaw.store(Deadline.time_since_epoch().count(),
                     std::memory_order_release);
    Router.shutdownAt(Deadline); // Unblocks a capacity-waiting placement.
    Queue.close(); // Wakes blocked producers -> typed ShuttingDown.
    // The dispatcher drains the queue (past the deadline it sheds
    // instead of placing), routes everything, then flips DispatchDone;
    // shards finish — or, past the deadline, force-resolve — their jobs
    // and pending work and exit.
    if (DispatchThread.joinable())
      DispatchThread.join();
    for (std::unique_ptr<Shard> &S : ShardsVec)
      if (S->Thread.joinable())
        S->Thread.join();
    if (Pool)
      Pool->wait();
    std::lock_guard<std::mutex> Lock(MetricsMu);
    DrainMs = secondsSince(T0) * 1000.0;
  });
}

ThreadPool &Engine::verifyPool() {
  std::lock_guard<std::mutex> Lock(PoolMu);
  if (!Pool)
    Pool = std::make_unique<ThreadPool>(
        Opts.VerifyThreads > 0 ? static_cast<unsigned>(Opts.VerifyThreads)
                               : ThreadPool::defaultConcurrency());
  return *Pool;
}

Handle Engine::submitImpl(DecompileRequest R,
                          std::function<void(const RequestResult &)> OnDone,
                          bool Block, bool *Accepted) {
  Admission A;
  A.Req = std::move(R);
  A.OnDone = std::move(OnDone);
  A.SubmitTime = Clock::now();
  A.Seq = SeqCounter.fetch_add(1, std::memory_order_relaxed);
  A.Cancel = std::make_shared<std::atomic<bool>>(false);
  // The per-request sampling decision, made exactly once: every later
  // instrumentation site just tests the flag (tracing-off cost at THIS
  // site is one relaxed load inside sampled()).
  obs::TraceRecorder &TR = obs::trace();
  A.Traced = TR.sampled(A.Seq);
  if (A.Traced) {
    A.SubmitNs = TR.nowNs();
    TR.instant(obs::SpanKind::Submit, A.Seq);
  }
  Handle H;
  H.Fut = A.Promise.get_future();
  H.CancelFlag = A.Cancel;
  // Count BEFORE the push: once pushed, an engine thread may complete
  // the request at any moment, and Completed must never overtake
  // Submitted (drain() would return with work in flight).
  {
    std::lock_guard<std::mutex> Lock(MetricsMu);
    ++Submitted;
  }
  // Shed pre-expired work at the door: no queue slot, no dispatch.
  if (A.SubmitTime >= A.Req.Deadline) {
    if (Accepted)
      *Accepted = true; // Resolved (typed), not silently dropped.
    completeEmpty(Completion::fromAdmission(std::move(A)),
                  RequestStatus::DeadlineExpired);
    return H;
  }
  if (Block) {
    bool Ok = Opts.BlockOnFull ? Queue.push(A) : Queue.tryPush(A);
    if (!Ok) {
      // Typed rejection — the promise RESOLVES (QueueFull under load
      // shedding, ShuttingDown when the engine closed the queue), so no
      // future from submit() ever carries broken_promise.
      completeEmpty(Completion::fromAdmission(std::move(A)),
                    Queue.closed() ? RequestStatus::ShuttingDown
                                   : RequestStatus::QueueFull);
    }
    if (Accepted)
      *Accepted = true;
    return H;
  }
  // trySubmit: a rejected request is UNSUBMITTED (no typed resolution;
  // the caller still owns the decision), so roll the count back.
  bool Ok = Queue.tryPush(A);
  if (Accepted)
    *Accepted = Ok;
  if (!Ok) {
    {
      std::lock_guard<std::mutex> Lock(MetricsMu);
      --Submitted;
    }
    DrainCv.notify_all(); // Re-check any drain() blocked on the count.
  }
  return H;
}

Handle Engine::submit(DecompileRequest R) {
  return submitImpl(std::move(R), nullptr, /*Block=*/true, nullptr);
}

Handle Engine::submit(DecompileRequest R,
                      std::function<void(const RequestResult &)> OnDone) {
  return submitImpl(std::move(R), std::move(OnDone), /*Block=*/true,
                    nullptr);
}

bool Engine::trySubmit(DecompileRequest R, Handle *Out) {
  bool Accepted = false;
  Handle H = submitImpl(std::move(R), nullptr, /*Block=*/false, &Accepted);
  if (Accepted && Out)
    *Out = std::move(H);
  return Accepted;
}

void Engine::drain() {
  std::unique_lock<std::mutex> Lock(MetricsMu);
  DrainCv.wait(Lock, [this] { return Completed >= Submitted; });
}

EngineMetrics Engine::metrics() const {
  EngineMetrics M;
  {
    // ONE coherent snapshot of every completion-side counter: all of
    // them are written under this mutex, so `Completed == Ok + Shed +
    // Expired + Cancelled + ShutDown + EncodeFailed + VerifyFailed`
    // and `Completed <= Submitted` hold on every scrape, mid-flight
    // included (pinned by the concurrent-scrape soak test).
    std::lock_guard<std::mutex> Lock(MetricsMu);
    M.Submitted = Submitted;
    M.Completed = Completed;
    M.Ok = OkCount;
    M.FusedJobs = FusedJobs;
    M.InFlightDeduped = InFlightDeduped;
    M.DecodeCacheHits = DecodeCacheHits;
    M.DecodeCacheMisses = DecodeCacheMisses;
    M.PeakLiveSources = PeakLiveSources;
    M.EncodeSeconds = EncodeSeconds;
    M.VerifySeconds = VerifySeconds;
    M.Shed = ShedCount;
    M.Expired = ExpiredCount;
    M.Cancelled = CancelledCount;
    M.ShutDown = ShutDownCount;
    M.EncodeFailed = EncodeFailedCount;
    M.VerifyFailed = VerifyFailedCount;
    M.VerifyTimeouts = VerifyTimeouts;
    M.VerifyRetries = VerifyRetries;
    M.DrainMs = DrainMs;
  }
  // Exact nearest-rank percentiles over the histograms' bounded sample
  // windows — the same values the raw sample vectors used to yield.
  M.QueueWait = toLatencyStats(Ins.QueueWait->stats());
  M.Latency = toLatencyStats(Ins.Latency->stats());
  M.Shards.reserve(ShardsVec.size());
  for (const std::unique_ptr<Shard> &S : ShardsVec) {
    const int I = S->Index;
    ShardUtil U;
    U.Sources = Ins.Sources->cellValue(I);
    U.Steps = Ins.Steps->cellValue(I);
    U.StepRows = Ins.StepRows->cellValue(I);
    U.DecodeSeconds = Ins.DecodeSeconds->cellValue(I);
    M.Steps += U.Steps;
    M.StepRows += U.StepRows;
    M.DecodeSeconds += U.DecodeSeconds;
    M.Shards.push_back(U);
  }
  M.BeamsKilled = Ins.BeamsKilled->value();
  M.TokensMasked = Ins.TokensMasked->value();
  M.OracleSeconds = Ins.OracleSeconds->value();
  M.DraftProposed = Ins.DraftProposed->value();
  M.DraftAccepted = Ins.DraftAccepted->value();
  M.SpecRounds = Ins.SpecRounds->value();
  M.SpecFallbacks = Ins.SpecFallbacks->value();
  M.DraftSeconds = Ins.DraftSeconds->value();
  M.DecodeCacheBytes = D.decodeCache().bytesUsed();
  return M;
}

void Engine::completeResult(RequestResult &&Res, Completion &&C) {
  Res.QueueWaitSeconds = C.QueueWait;
  Res.TotalSeconds = secondsSince(C.SubmitTime);
  // Ordering contract: the callback runs FIRST (so drain(), which waits
  // on the Completed count, implies every callback has run), then the
  // request is counted (so a caller returning from future.get() sees it
  // in metrics()), then the promise is fulfilled.
  if (C.OnDone)
    C.OnDone(Res);
  {
    std::lock_guard<std::mutex> Lock(MetricsMu);
    switch (Res.Status) {
    case RequestStatus::Ok:
      // Served-latency percentiles cover OK requests ONLY: a shed
      // request resolving in microseconds must not fake a fast p50.
      // (Histogram observes under MetricsMu: one writer at a time, and
      // the Ok/latency bookkeeping stays one coherent unit.)
      ++OkCount;
      Ins.QueueWait->observe(0, C.QueueWait);
      Ins.Latency->observe(0, Res.TotalSeconds);
      break;
    case RequestStatus::QueueFull:
      ++ShedCount;
      break;
    case RequestStatus::DeadlineExpired:
      ++ExpiredCount;
      break;
    case RequestStatus::Cancelled:
      ++CancelledCount;
      break;
    case RequestStatus::ShuttingDown:
      ++ShutDownCount;
      break;
    case RequestStatus::EncodeFailed:
      ++EncodeFailedCount;
      break;
    case RequestStatus::VerifyFailed:
      ++VerifyFailedCount;
      break;
    }
    ++Completed;
  }
  if (C.Traced)
    obs::trace().instant(obs::SpanKind::Resolve, C.Seq,
                         static_cast<uint64_t>(Res.Status));
  C.Promise.set_value(std::move(Res));
  DrainCv.notify_all();
}

void Engine::completeEmpty(Completion &&C, RequestStatus St) {
  RequestResult Res;
  Res.Name = C.Name;
  Res.Status = St;
  completeResult(std::move(Res), std::move(C));
}

/// Completes one request from a finished (or cached) set of hypotheses.
/// Translate-only requests complete inline (a token decode is trivial
/// next to a tick); verified requests dispatch to the worker pool so
/// compile + IO-testing overlaps with decode on every shard.
void Engine::completeOne(
    Completion &&C,
    std::shared_ptr<const std::vector<nn::Hypothesis>> Hyps) {
  if (C.Shared) {
    std::lock_guard<std::mutex> Lock(MetricsMu);
    ++FusedJobs;
  }
  // Last pre-payload cancellation point: the decode finished, but the
  // client may have cancelled or expired while it ran.
  RequestStatus Dead = C.deadStatus(Clock::now());
  if (Dead != RequestStatus::Ok) {
    completeEmpty(std::move(C), Dead);
    return;
  }
  if (!C.Task) {
    RequestResult Res;
    Res.Name = C.Name;
    if (!Hyps->empty())
      Res.CSource = D.tokenizer().decode(Hyps->front().Tokens);
    Res.Hyps = *Hyps;
    completeResult(std::move(Res), std::move(C));
    return;
  }
  // Pooled IO-verification, overlapped with ongoing decode. Within the
  // request, candidates are tried sequentially in beam order with early
  // exit on the first IO pass — exactly Decompiler::decompile's
  // sequential selection, so outcomes are byte-identical to a
  // one-at-a-time run whenever no bound fires. Candidate evaluation is
  // CONTAINED: per-candidate wall-clock timeout, bounded retry for
  // thrown attempts, and no exception escapes to the pool.
  bool UseTypeInf = Opts.UseTypeInference;
  auto Shared = std::make_shared<Completion>(std::move(C));
  verifyPool().submit([this, UseTypeInf, Shared, Hyps] {
    const tok::Tokenizer &Tok = D.tokenizer();
    auto T0 = Clock::now();
    obs::TraceRecorder &TR = obs::trace();
    obs::ScopedSpan VerifySpan(TR, obs::SpanKind::Verify, Shared->Seq,
                               Shared->Traced);
    core::HypothesisOutcome First, Picked;
    bool HaveFirst = false, Passed = false, Degraded = false,
         AnyFaulted = false;
    int Cand = 0;
    for (const nn::Hypothesis &H : *Hyps) {
      // Between-candidate cancellation point: cancel, request deadline,
      // and the engine drain deadline all cut the verify short with a
      // typed resolution instead of wedging a worker.
      RequestStatus Dead = Shared->deadStatus(Clock::now());
      if (Dead == RequestStatus::Ok && Clock::now() >= drainDeadline())
        Dead = RequestStatus::ShuttingDown;
      if (Dead != RequestStatus::Ok) {
        {
          std::lock_guard<std::mutex> Lock(MetricsMu);
          VerifySeconds += secondsSince(T0);
        }
        completeEmpty(std::move(*Shared), Dead);
        return;
      }
      std::string CSource = Tok.decode(H.Tokens);
      obs::ScopedSpan CandSpan(TR, obs::SpanKind::VerifyCand, Shared->Seq,
                               Shared->Traced);
      core::VerifyLimits VL;
      VL.CandidateTimeoutSeconds = Opts.VerifyCandidateTimeout;
      VL.MaxRetries = Opts.VerifyMaxRetries;
      VL.RetryBackoffSeconds = Opts.VerifyRetryBackoff;
      VL.Deadline = std::min(Shared->Deadline, drainDeadline());
      VL.Traced = Shared->Traced;
      VL.TraceId = Shared->Seq;
      VL.TraceCand = Cand;
      if (Injector.enabled()) {
        uint64_t Seq = Shared->Seq;
        const FaultInjector *FI = &Injector;
        VL.BeforeAttempt = [FI, Seq, Cand](int Attempt,
                                           Clock::time_point CandDl) {
          if (FI->verifyHangAt(Seq, Cand, Attempt)) {
            // Hang in slices, honoring the candidate deadline: a
            // timed-out candidate frees its worker within one slice.
            auto End =
                Clock::now() + secondsToDuration(FI->config().HangSeconds);
            while (Clock::now() < End && Clock::now() < CandDl)
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          if (FI->verifyThrowAt(Seq, Cand, Attempt))
            throw std::runtime_error("injected verify fault");
        };
      }
      core::VerifyAttemptStats AS;
      core::HypothesisOutcome O = core::evaluateHypothesisBounded(
          *Shared->Task, CSource, UseTypeInf, VL, &AS);
      CandSpan.args(static_cast<uint64_t>(Cand),
                    (static_cast<uint64_t>(AS.Retries) << 2) |
                        (AS.TimedOut ? 2u : 0u) | (AS.Faulted ? 1u : 0u));
      CandSpan.end();
      if (AS.Retries || AS.TimedOut) {
        std::lock_guard<std::mutex> Lock(MetricsMu);
        VerifyRetries += static_cast<uint64_t>(AS.Retries);
        if (AS.TimedOut)
          ++VerifyTimeouts;
      }
      if (AS.Faulted || AS.TimedOut)
        Degraded = true; // This candidate gave up: selection may shift.
      AnyFaulted = AnyFaulted || AS.Faulted;
      if (!HaveFirst) {
        First = O;
        HaveFirst = true;
      }
      if (O.IOCorrect) {
        Picked = O; // First candidate passing the IO tests (§VI-A).
        Passed = true;
        break;
      }
      ++Cand;
    }
    RequestResult Res;
    Res.Name = Shared->Name;
    Res.Outcome = Passed ? Picked : First;
    Res.CSource = Res.Outcome.CSource;
    Res.Verified = true;
    Res.Degraded = Degraded;
    // A request only FAILS on faults when they may have cost it its
    // verdict: some candidate faulted out and none passed. A pass after
    // a contained fault is still Ok (that is the containment working),
    // though marked Degraded for the byte-identity oracles.
    Res.Status = (!Passed && AnyFaulted) ? RequestStatus::VerifyFailed
                                         : RequestStatus::Ok;
    Res.Hyps = *Hyps;
    {
      std::lock_guard<std::mutex> Lock(MetricsMu);
      VerifySeconds += secondsSince(T0);
    }
    completeResult(std::move(Res), std::move(*Shared));
  });
}

/// Retirement: complete the job's own request and every duplicate that
/// attached to it — all share one decode's hypotheses.
void Engine::finishJob(
    Job &&J, std::shared_ptr<const std::vector<nn::Hypothesis>> Hyps) {
  completeOne(std::move(J.Main), Hyps);
  for (Completion &C : J.Attached)
    completeOne(std::move(C), Hyps);
}

void Engine::sendToShard(Shard &S, ShardMsg &&Msg) {
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.Inbox.push_back(std::move(Msg));
  }
  S.Cv.notify_one();
}

/// The dispatcher: drains the shared queue in EDF order and routes each
/// request — shedding dead work FIRST (cancelled / expired / past the
/// drain deadline: typed resolution, no encode, no row) — then
/// decode-LRU hit, cross-shard single-flight attach, or least-loaded
/// placement (blocking while every shard is saturated; any shard's
/// retirement backfills). Encoding runs HERE, overlapped with every
/// shard's decode ticks, and encode failures are contained to the one
/// request they strike.
void Engine::dispatchLoop() {
  obs::TraceRecorder &TR = obs::trace();
  TR.nameThread("dispatcher");
  const nn::Transformer &Model = D.model();
  nn::BeamConfig BC;
  BC.BeamSize = Opts.BeamSize;
  BC.MaxLen = Opts.MaxLen;
  // Keying only (DecodeLRU): constrained and unconstrained results for
  // the same source can never be served from each other's entries.
  if (Opts.Constrain == nn::ConstrainMode::Syntax)
    BC.Constraint = &D.vocabConstraint();
  // The dispatcher's encode pool, same width as the shards' tick pools
  // (TickThreads == 1 spawns nothing). Encoder outputs are bit-identical
  // at every width, so dispatcher-side and shard-side encodes of one
  // source still dedupe through the encoder LRU.
  nn::ParallelFor EncPool(Opts.TickThreads);

  Admission A;
  while (Queue.pop(&A)) {
    // fromAdmission moves the completion-channel fields out of A but
    // leaves the routing payload (Asm/Src/Enc) untouched — take it
    // after.
    Completion C = Completion::fromAdmission(std::move(A));
    DecompileRequest Req = std::move(A.Req);
    // Queue-wait span closes at the pop; the dispatch span covers the
    // routing work from here to hand-off (every exit path below ends it
    // via the ScopedSpan destructor).
    if (C.Traced)
      TR.record(obs::SpanKind::QueueWait, C.Seq, C.SubmitNs, TR.nowNs());
    obs::ScopedSpan DispatchSpan(TR, obs::SpanKind::Dispatch, C.Seq,
                                 C.Traced);
    // Shed before ANY work: a request that can no longer be served must
    // not cost an encode or occupy a decode row.
    RequestStatus Dead = C.deadStatus(Clock::now());
    if (Dead == RequestStatus::Ok && Clock::now() >= drainDeadline())
      Dead = RequestStatus::ShuttingDown;
    if (Dead != RequestStatus::Ok) {
      completeEmpty(std::move(C), Dead);
      continue;
    }
    if (BC.MaxLen < 1) { // Degenerate config: nothing to decode.
      C.QueueWait = secondsSince(C.SubmitTime);
      completeOne(std::move(C),
                  std::make_shared<std::vector<nn::Hypothesis>>());
      continue;
    }
    if (Req.Src.empty() && !Req.Enc) {
      // Task-mode requests may omit the payload: the task carries it.
      const std::string &Asm = (Req.Asm.empty() && Req.Task)
                                   ? Req.Task->Prog.TargetAsm
                                   : Req.Asm;
      Req.Src = D.tokenizer().encode(Asm);
    }
    std::vector<int> Src = std::move(Req.Src);
    // Decoded-hypotheses LRU, in FRONT of decode: a repeat of an
    // already-finished source — even one that never overlapped the
    // original in flight — completes without occupying a decode row.
    // Requests without tokens (pre-encoded only) never match.
    if (Opts.UseDecodeCache && !Src.empty()) {
      if (std::shared_ptr<const std::vector<nn::Hypothesis>> Hyps =
              D.decodeCache().get(Src, Model.weightVersion(), BC)) {
        {
          std::lock_guard<std::mutex> Lock(MetricsMu);
          ++DecodeCacheHits;
        }
        C.QueueWait = secondsSince(C.SubmitTime);
        completeOne(std::move(C), std::move(Hyps));
        continue;
      }
      std::lock_guard<std::mutex> Lock(MetricsMu);
      ++DecodeCacheMisses;
    }
    std::string SrcKey(reinterpret_cast<const char *>(Src.data()),
                       Src.size() * sizeof(int));
    // Cross-shard single-flight: an identical source decoding on ANY
    // shard serves this request too — route an attach to its shard
    // instead of occupying a row anywhere. (Determinism makes the
    // hypotheses identical by construction.)
    int LiveShard = Router.shardOf(SrcKey);
    if (LiveShard >= 0) {
      if (C.Traced)
        C.RouteNs = TR.nowNs();
      ShardMsg M;
      M.Attach = true;
      M.C = std::move(C);
      M.Src = std::move(Src);
      M.SrcKey = std::move(SrcKey);
      sendToShard(*ShardsVec[static_cast<size_t>(LiveShard)],
                  std::move(M));
      continue;
    }
    // Fresh source: reserve a slot on the least-loaded shard (blocking
    // while all shards are full — retirement backfill wakes us; a drain
    // deadline unblocks with -1), THEN encode, so the reservation is
    // cheap and the encode overlaps the shards' ticks.
    int SI = Router.placeBlocking();
    if (SI < 0) { // Draining: stop placing, shed the rest.
      completeEmpty(std::move(C), RequestStatus::ShuttingDown);
      continue;
    }
    // The wait for capacity may have been long: re-check before paying
    // for the encode, releasing the just-reserved slot on shed.
    Dead = C.deadStatus(Clock::now());
    if (Dead != RequestStatus::Ok) {
      Router.retire(std::string(), SI);
      completeEmpty(std::move(C), Dead);
      continue;
    }
    auto T0 = Clock::now();
    obs::ScopedSpan EncodeSpan(TR, obs::SpanKind::Encode, C.Seq, C.Traced);
    std::shared_ptr<const nn::Transformer::EncoderCache> Enc;
    try {
      if (Injector.enabled() && Injector.encodeThrowAt(C.Seq))
        throw std::runtime_error("injected encode fault");
      Enc = Req.Enc ? std::move(Req.Enc) : D.encodeCached(Src, &EncPool);
    } catch (...) {
      // Containment: the fault resolves THIS request; the reserved slot
      // returns to the router and the dispatcher keeps serving.
      Router.retire(std::string(), SI);
      {
        std::lock_guard<std::mutex> Lock(MetricsMu);
        EncodeSeconds += secondsSince(T0);
      }
      completeEmpty(std::move(C), RequestStatus::EncodeFailed);
      continue;
    }
    EncodeSpan.end();
    {
      std::lock_guard<std::mutex> Lock(MetricsMu);
      EncodeSeconds += secondsSince(T0);
    }
    if (C.Traced)
      C.RouteNs = TR.nowNs();
    Router.registerKey(SrcKey, SI);
    ShardMsg M;
    M.Registered = !SrcKey.empty();
    M.C = std::move(C);
    M.Src = std::move(Src);
    M.SrcKey = std::move(SrcKey);
    M.Enc = std::move(Enc);
    sendToShard(*ShardsVec[static_cast<size_t>(SI)], std::move(M));
  }
  // Queue closed and fully routed: let the shards run dry and exit.
  DispatchDone.store(true, std::memory_order_release);
  for (std::unique_ptr<Shard> &S : ShardsVec) {
    std::lock_guard<std::mutex> Lock(S->Mu);
    S->Cv.notify_all();
  }
}

/// One shard's decode loop: admit from the inbox into recycled
/// segments, run one fused stepDecodeBatch per tick over the live rows,
/// retire finished sources mid-flight. Every tick starts with a
/// cancellation sweep: rows whose every client cancelled or expired are
/// ABORTED (their K/V segment recycled for queued work) before the next
/// admission pass, so dead work never outcompetes live work for
/// capacity. No cross-shard synchronization on the tick — only the
/// inbox swap and per-request completion bookkeeping take locks.
void Engine::shardLoop(Shard &S) {
  obs::TraceRecorder &TR = obs::trace();
  TR.nameThread("shard-" + std::to_string(S.Index));
  const nn::Transformer &Model = D.model();
  const int Vocab = Model.config().Vocab;
  nn::ConstraintStats OracleStats; // Shard-local; deltas bump S.* atomics.
  nn::BeamConfig BC;
  BC.BeamSize = Opts.BeamSize;
  BC.MaxLen = Opts.MaxLen;
  if (Opts.Constrain == nn::ConstrainMode::Syntax) {
    BC.Constraint = &D.vocabConstraint();
    BC.Stats = &OracleStats;
  }
  const int BeamsPerSource = std::max(1, Opts.BeamSize);

  nn::Transformer::BatchDecodeState St = Model.startDecodeStream(
      Opts.MaxLiveSources, BeamsPerSource, std::max(1, Opts.MaxLen) + 1);
  // The shard's intra-tick worker pool: full-model ticks, the draft's
  // mirrored forwards, and this shard's readmission encodes all fan out
  // over it (never concurrently — the shard loop is single-threaded).
  // TickThreads == 1 constructs no pool and every consumer runs the
  // sequential code path.
  nn::ParallelFor TickPool(Opts.TickThreads);
  St.TP = &TickPool;
  // Speculative serving: a per-shard session owning the draft's mirrored
  // stream state. With no draft attached the engine silently runs plain
  // (byte-identical either way; only throughput could have changed).
  const nn::DraftModel *DM = D.draft();
  const bool Spec =
      Opts.Speculate != nn::SpecMode::Off && DM != nullptr &&
      Opts.DraftGamma > 0;
  std::unique_ptr<nn::SpecSession> Sess;
  if (Spec) {
    Sess = std::make_unique<nn::SpecSession>(Model, DM->model());
    Sess->setTickPool(&TickPool);
    Sess->initStream(Opts.MaxLiveSources, BeamsPerSource,
                     std::max(1, Opts.MaxLen) + 1);
  }
  SlotAllocator Slots(Opts.MaxLiveSources);
  std::vector<std::unique_ptr<Job>> Jobs; // Row order == job order.
  /// Routed messages not yet admitted: attaches waiting to merge and
  /// admissions waiting for a free segment (or for a weight-version
  /// drain). Admission order is preserved; attaches never block.
  std::vector<ShardMsg> Pending;
  std::vector<ShardMsg> Local;
  nn::beamcore::SelectScratch Scratch;
  std::vector<float> Logits;
  std::vector<int> Tokens, SrcIdx;
  std::vector<nn::SpecSession::Job *> SpecJobs;
  uint64_t Tick = 0; ///< This shard's tick number (fault-injection id).

  // Releases a LIVE job's row state without finishing it: aborts its
  // rows in the decode state, frees its segment for recycling, and
  // drops its router slot/key.
  auto AbortJobRow = [&](Job &J) {
    Model.abortStreamSegment(St, J.Seg);
    if (Spec)
      Sess->abortSegment(J.Seg);
    Slots.release(J.Seg);
    Router.retire(J.Registered ? J.SrcKey : std::string(), S.Index);
    std::lock_guard<std::mutex> Lock(MetricsMu);
    --LiveSources;
    Ins.LiveSourcesGauge->set(static_cast<double>(LiveSources));
  };

  // Retires a FINISHED job: frees its segment, finalizes its beams,
  // feeds the decode LRU, and completes every client it serves. LRU
  // insert FIRST, registry drop second: a dispatcher that still sees
  // the key routes an attach here (served from a live job or this cache
  // entry); one that no longer sees it finds the cache entry up front.
  // Only the job that REGISTERED the key may drop it: a readmitted
  // (unregistered) job retiring must not erase an entry a newer job for
  // the same source owns.
  auto RetireJob = [&](Job &&J) {
    if (J.Main.Traced)
      TR.record(obs::SpanKind::Decode, J.Main.Seq, J.AdmitNs, TR.nowNs(),
                static_cast<uint64_t>(J.Steps));
    Slots.release(J.Seg);
    std::shared_ptr<const std::vector<nn::Hypothesis>> Hyps =
        std::make_shared<std::vector<nn::Hypothesis>>(
            nn::beamcore::finalizeBeams(std::move(J.Live),
                                        std::move(J.Done), BC, &J.CC));
    if (Opts.UseDecodeCache && !J.Src.empty())
      D.decodeCache().put(J.Src, J.ConstsVersion, BC, Hyps);
    Router.retire(J.Registered ? J.SrcKey : std::string(), S.Index);
    {
      std::lock_guard<std::mutex> Lock(MetricsMu);
      --LiveSources;
      Ins.LiveSourcesGauge->set(static_cast<double>(LiveSources));
    }
    finishJob(std::move(J), std::move(Hyps));
  };

  // The per-tick cancellation sweep. Dead attached completions resolve
  // individually; a dead Main promotes the oldest live attached
  // completion (the decode is still wanted — someone is waiting on it);
  // a job with NO live client left aborts its row entirely, recycling
  // the segment for queued work in the SAME iteration's admission pass.
  // With Force set every completion resolves as \p ForceSt regardless
  // of its own state (the drain-deadline path).
  auto SweepJobs = [&](bool Force, RequestStatus ForceSt) {
    if (Jobs.empty())
      return;
    auto Now = Clock::now();
    size_t Keep = 0;
    for (size_t JI = 0; JI < Jobs.size(); ++JI) {
      Job &J = *Jobs[JI];
      size_t AKeep = 0;
      for (size_t AI = 0; AI < J.Attached.size(); ++AI) {
        RequestStatus St2 =
            Force ? ForceSt : J.Attached[AI].deadStatus(Now);
        if (St2 != RequestStatus::Ok)
          completeEmpty(std::move(J.Attached[AI]), St2);
        else
          J.Attached[AKeep++] = std::move(J.Attached[AI]);
      }
      J.Attached.resize(AKeep);
      RequestStatus MainSt = Force ? ForceSt : J.Main.deadStatus(Now);
      if (MainSt != RequestStatus::Ok) {
        completeEmpty(std::move(J.Main), MainSt);
        if (!J.Attached.empty()) {
          J.Main = std::move(J.Attached.front());
          J.Attached.erase(J.Attached.begin());
        } else {
          AbortJobRow(J);
          continue; // Job dropped.
        }
      }
      Jobs[Keep++] = std::move(Jobs[JI]);
    }
    Jobs.resize(Keep);
  };

  // Binds an admission into a freed segment; false = weight-version
  // mismatch with the live rows (the caller keeps it pending until this
  // shard's batch drains — an idle state adopts the new version).
  auto TryAdmit = [&](ShardMsg &M) {
    int Seg = Slots.acquire();
    assert(Seg >= 0 && "caller checked freeCount");
    if (Model.admitStreamRow(St, Seg, M.Enc) < 0) {
      Slots.release(Seg);
      return false;
    }
    // Queue wait ends HERE — at admission into a decode row — for the
    // admission itself AND for every duplicate that merged while it
    // was pending (none of them were served by a row until now).
    M.C.QueueWait = secondsSince(M.C.SubmitTime);
    for (Completion &AC : M.Attached)
      AC.QueueWait = secondsSince(AC.SubmitTime);
    if (M.C.Traced)
      TR.record(obs::SpanKind::AdmissionWait, M.C.Seq, M.C.RouteNs,
                TR.nowNs());
    auto J = std::make_unique<Job>();
    J->Main = std::move(M.C);
    J->AdmitNs = J->Main.Traced ? TR.nowNs() : 0;
    J->Attached = std::move(M.Attached);
    J->Registered = M.Registered;
    J->SrcKey = std::move(M.SrcKey);
    J->Src = std::move(M.Src);
    J->ConstsVersion =
        M.Enc->Consts ? M.Enc->Consts->Version : Model.weightVersion();
    J->Seg = Seg;
    J->Live.resize(1); // The BOS hypothesis.
    J->CC.init(BC);    // Fresh oracle cursor for the BOS beam.
    J->NextTokens = {nn::Transformer::BosId};
    if (Spec) {
      // Mirror the admission on the draft state and point the session
      // job at this job's search state (heap-stable across the vector's
      // moves). Its default pending selection IS the BOS feed.
      Sess->admit(Seg, *M.Enc);
      J->SJ.Seg = Seg;
      J->SJ.Live = &J->Live;
      J->SJ.Done = &J->Done;
      J->SJ.CC = &J->CC;
      J->SJ.Gamma = Opts.DraftGamma;
    }
    Ins.Sources->add(S.Index, 1);
    {
      std::lock_guard<std::mutex> Lock(MetricsMu);
      ++LiveSources;
      PeakLiveSources = std::max(PeakLiveSources, LiveSources);
      Ins.LiveSourcesGauge->set(static_cast<double>(LiveSources));
    }
    Jobs.push_back(std::move(J));
    return true;
  };

  // Routes every pending message: dead requests shed (covering the
  // deadline-expired-between-dispatch-and-admission window), attaches
  // merge into live jobs, pending admissions of the same source, the
  // decode LRU, or (rarely) readmit; admissions bind to segments in
  // arrival order.
  auto ProcessPending = [&] {
    bool AdmitBlocked = false;
    size_t Keep = 0;
    for (size_t MI = 0; MI < Pending.size(); ++MI) {
      ShardMsg &M = Pending[MI];
      auto Now = Clock::now();
      // Shed dead work before it binds a row. An admission that dies
      // here promotes a live duplicate (same semantics as the job
      // sweep); with none left it returns its reserved router slot.
      {
        size_t AKeep = 0;
        for (size_t AI = 0; AI < M.Attached.size(); ++AI) {
          RequestStatus ASt = M.Attached[AI].deadStatus(Now);
          if (ASt != RequestStatus::Ok)
            completeEmpty(std::move(M.Attached[AI]), ASt);
          else
            M.Attached[AKeep++] = std::move(M.Attached[AI]);
        }
        M.Attached.resize(AKeep);
        RequestStatus MSt = M.C.deadStatus(Now);
        if (MSt != RequestStatus::Ok) {
          completeEmpty(std::move(M.C), MSt);
          if (!M.Attached.empty()) {
            M.C = std::move(M.Attached.front());
            M.Attached.erase(M.Attached.begin());
          } else {
            if (!M.Attach)
              Router.retire(M.Registered ? M.SrcKey : std::string(),
                            S.Index);
            continue; // Message dropped, typed resolutions sent.
          }
        }
      }
      if (M.Attach) {
        // Attach to the live job decoding this source...
        Job *Tgt = nullptr;
        for (const std::unique_ptr<Job> &J : Jobs)
          if (J->SrcKey == M.SrcKey) {
            Tgt = J.get();
            break;
          }
        if (Tgt) {
          // The duplicate's wait ends here: it is now served by a row.
          M.C.QueueWait = secondsSince(M.C.SubmitTime);
          Tgt->Attached.push_back(std::move(M.C));
          std::lock_guard<std::mutex> Lock(MetricsMu);
          ++InFlightDeduped;
          continue;
        }
        // ...or to a pending admission of the same source (the target
        // is still waiting for a segment)...
        ShardMsg *P = nullptr;
        for (size_t PJ = 0; PJ < Keep; ++PJ)
          if (!Pending[PJ].Attach && Pending[PJ].SrcKey == M.SrcKey) {
            P = &Pending[PJ];
            break;
          }
        if (P) {
          // QueueWait stays open: it is stamped when the pending
          // admission actually binds a row (TryAdmit).
          P->Attached.push_back(std::move(M.C));
          std::lock_guard<std::mutex> Lock(MetricsMu);
          ++InFlightDeduped;
          continue;
        }
        // ...or the target retired before the attach landed: its result
        // is in the decode LRU (retirement inserts BEFORE the registry
        // entry drops, so this is the common race outcome)...
        if (Opts.UseDecodeCache) {
          if (std::shared_ptr<const std::vector<nn::Hypothesis>> Hyps =
                  D.decodeCache().get(M.Src, Model.weightVersion(), BC)) {
            {
              std::lock_guard<std::mutex> Lock(MetricsMu);
              ++DecodeCacheHits;
            }
            M.C.QueueWait = secondsSince(M.C.SubmitTime);
            completeOne(std::move(M.C), std::move(Hyps));
            continue;
          }
        }
        // ...or (LRU disabled or evicted) readmit it on this shard:
        // an out-of-band slot, no registry entry — later duplicates go
        // through the dispatcher afresh. Rare by construction.
        M.Attach = false;
        M.Enc = D.encodeCached(M.Src, &TickPool);
        Router.placeOn(S.Index);
      }
      if (!AdmitBlocked && Slots.freeCount() > 0 && TryAdmit(M))
        continue;
      // Out of segments or version-deferred: later admissions wait
      // behind this one (arrival order), attaches still process.
      AdmitBlocked = true;
      if (Keep != MI)
        Pending[Keep] = std::move(M);
      ++Keep;
    }
    Pending.resize(Keep);
  };

  // Force-resolves EVERYTHING this shard holds as ShuttingDown (the
  // drain deadline passed): pending messages, then live jobs.
  auto ForceShedAll = [&] {
    for (ShardMsg &M : Pending) {
      for (Completion &AC : M.Attached)
        completeEmpty(std::move(AC), RequestStatus::ShuttingDown);
      if (!M.Attach)
        Router.retire(M.Registered ? M.SrcKey : std::string(), S.Index);
      completeEmpty(std::move(M.C), RequestStatus::ShuttingDown);
    }
    Pending.clear();
    SweepJobs(/*Force=*/true, RequestStatus::ShuttingDown);
    assert(Jobs.empty() && "forced sweep leaves no jobs");
  };

  for (;;) {
    // -- gather routed work; block only when fully idle ---------------------
    {
      std::unique_lock<std::mutex> Lock(S.Mu);
      if (Jobs.empty() && Pending.empty()) {
        S.Cv.wait(Lock, [&] {
          return !S.Inbox.empty() ||
                 DispatchDone.load(std::memory_order_acquire);
        });
        if (S.Inbox.empty())
          return; // Dispatcher done and this shard has run dry.
      }
      Local.clear();
      Local.swap(S.Inbox);
    }
    for (ShardMsg &M : Local)
      Pending.push_back(std::move(M));
    // -- drain deadline: force-resolve local work, exit when routed dry -----
    if (Clock::now() >= drainDeadline()) {
      ForceShedAll();
      // Loop back to the idle wait: late inbox messages (the dispatcher
      // is still shedding the queue) force-shed too; once DispatchDone
      // and the inbox is dry, the wait above returns us out.
      continue;
    }
    // -- cancellation sweep BEFORE admission: aborted rows free their -------
    // -- segments for this same iteration's ProcessPending ------------------
    SweepJobs(/*Force=*/false, RequestStatus::Ok);
    ProcessPending();
    if (Jobs.empty())
      continue; // Everything attached/completed; re-block on the inbox.

    if (Spec) {
      // -- one propose/verify round over every live job --------------------
      // The session updates each job's Live/Done/CC exactly as the
      // equivalent plain ticks would (one round = one-or-more exact beam
      // steps per job), so retirement, finalization, and the LRU fill
      // are the plain path's code verbatim.
      const bool Multi = Jobs.size() > 1;
      SpecJobs.clear();
      for (const std::unique_ptr<Job> &J : Jobs) {
        if (Multi) {
          J->Main.Shared = true;
          for (Completion &C : J->Attached)
            C.Shared = true;
        }
        SpecJobs.push_back(&J->SJ);
      }
      nn::SpecStats Round;
      const bool TraceTick = TR.enabled();
      const uint64_t TickStart = TraceTick ? TR.nowNs() : 0;
      const uint64_t RegionsBefore = TickPool.regions();
      auto T0 = Clock::now();
      int PlanRows = Sess->runRound(St, SpecJobs, BC, Round);
      Ins.DecodeSeconds->add(S.Index, secondsSince(T0));
      Ins.Steps->add(S.Index, 1);
      Ins.StepRows->add(S.Index, static_cast<uint64_t>(PlanRows));
      Ins.DraftProposed->add(S.Index, Round.Proposed);
      Ins.DraftAccepted->add(S.Index, Round.Accepted);
      Ins.SpecRounds->add(S.Index, 1);
      Ins.DraftSeconds->add(S.Index, Round.DraftSeconds);
      if (uint64_t Regions = TickPool.regions() - RegionsBefore) {
        Ins.ParallelRegions->add(S.Index, Regions);
        if (TraceTick)
          TR.record(obs::SpanKind::ParallelTile,
                    static_cast<uint64_t>(S.Index), TickStart, TR.nowNs(),
                    Regions, static_cast<uint64_t>(TickPool.threads()));
      }
      if (TraceTick)
        TR.record(obs::SpanKind::SpecRound,
                  static_cast<uint64_t>(S.Index), TickStart, TR.nowNs(),
                  Round.Proposed, Round.Accepted);
      ++Tick;
      if (Injector.enabled() && Injector.slowTickAt(S.Index, Tick))
        std::this_thread::sleep_for(
            secondsToDuration(Injector.config().SlowTickSeconds));

      size_t Keep = 0;
      for (size_t JI = 0; JI < Jobs.size(); ++JI) {
        Job &J = *Jobs[JI];
        J.Steps = J.SJ.StepsDone;
        // Auto's acceptance gate, decided ONCE per request after its
        // probe rounds: a request whose draft is not earning its keep
        // stops proposing — its later rounds are plain steps through
        // the same machinery (Gamma 0 is absorbing), so the worst case
        // is bounded at the probe rounds' draft cost.
        if (Opts.Speculate == nn::SpecMode::Auto && !J.SpecGateDecided) {
          J.SpecProposed += static_cast<uint64_t>(J.SJ.Proposed);
          J.SpecAccepted += static_cast<uint64_t>(J.SJ.Accepted);
          if (++J.SpecRoundsSeen >= Opts.SpecProbeRounds &&
              !J.SJ.Finished) {
            J.SpecGateDecided = true;
            double Acc = J.SpecProposed
                             ? static_cast<double>(J.SpecAccepted) /
                                   static_cast<double>(J.SpecProposed)
                             : 0.0;
            if (Acc < Opts.SpecMinAcceptance) {
              J.SJ.Gamma = 0;
              Ins.SpecFallbacks->add(S.Index, 1);
            }
          }
        }
        if (J.SJ.Finished)
          RetireJob(std::move(J));
        else
          Jobs[Keep++] = std::move(Jobs[JI]);
      }
      Jobs.resize(Keep);
      if (BC.Constraint) {
        Ins.TokensMasked->add(S.Index, OracleStats.TokensMasked);
        Ins.BeamsKilled->add(S.Index, OracleStats.BeamsKilled);
        Ins.OracleSeconds->add(S.Index, OracleStats.OracleSeconds);
        if (TraceTick && OracleStats.OracleSeconds > 0) {
          // Synthesized from the tick's accumulated mask time: anchored
          // to end at now, inside the round span.
          uint64_t End = TR.nowNs();
          uint64_t Dur = secondsToNs(OracleStats.OracleSeconds);
          TR.record(obs::SpanKind::OracleMask,
                    static_cast<uint64_t>(S.Index),
                    End > Dur ? End - Dur : 0, End);
        }
        OracleStats = nn::ConstraintStats();
      }
      // No survivor gather here: commitSpec already adopted the
      // accepted frontier and dropped retired jobs' rows.
      continue;
    }

    // -- one fused decode tick over every live row -------------------------
    Tokens.clear();
    for (const std::unique_ptr<Job> &J : Jobs)
      Tokens.insert(Tokens.end(), J->NextTokens.begin(),
                    J->NextTokens.end());
    const bool TraceTick = TR.enabled();
    const uint64_t TickStart = TraceTick ? TR.nowNs() : 0;
    const uint64_t RegionsBefore = TickPool.regions();
    auto T0 = Clock::now();
    Logits = Model.stepDecodeBatch(St, Tokens);
    Ins.DecodeSeconds->add(S.Index, secondsSince(T0));
    Ins.Steps->add(S.Index, 1);
    Ins.StepRows->add(S.Index, Tokens.size());
    if (uint64_t Regions = TickPool.regions() - RegionsBefore) {
      Ins.ParallelRegions->add(S.Index, Regions);
      if (TraceTick)
        TR.record(obs::SpanKind::ParallelTile,
                  static_cast<uint64_t>(S.Index), TickStart, TR.nowNs(),
                  Regions, static_cast<uint64_t>(TickPool.threads()));
    }
    ++Tick;
    if (Injector.enabled() && Injector.slowTickAt(S.Index, Tick))
      std::this_thread::sleep_for(
          secondsToDuration(Injector.config().SlowTickSeconds));

    // -- per-source selection; finished sources retire mid-flight ----------
    const bool Multi = Jobs.size() > 1;
    SrcIdx.clear();
    int RowBase = 0;
    size_t Keep = 0;
    for (size_t JI = 0; JI < Jobs.size(); ++JI) {
      Job &J = *Jobs[JI];
      const int Rows = static_cast<int>(J.Live.size());
      if (Multi) {
        J.Main.Shared = true;
        for (Completion &C : J.Attached)
          C.Shared = true;
      }
      nn::beamcore::SelectResult R = nn::beamcore::selectBeamStep(
          J.Live, J.Done,
          [&](size_t BI) {
            return Logits.data() +
                   (static_cast<size_t>(RowBase) + BI) * Vocab;
          },
          Vocab, BC, Scratch, &J.CC);
      ++J.Steps;
      // Retire on the EOS quota, beam exhaustion, or the step budget —
      // the same three exits as beamSearchImpl's loop, in the same
      // order, so the surviving Live/Done sets match a solo search.
      if (R.StopNow || J.Live.empty() || J.Steps >= BC.MaxLen) {
        RetireJob(std::move(J));
      } else {
        for (int Idx : R.SrcIdx)
          SrcIdx.push_back(RowBase + Idx);
        J.NextTokens = std::move(R.Tokens);
        Jobs[Keep++] = std::move(Jobs[JI]);
      }
      RowBase += Rows;
    }
    Jobs.resize(Keep);
    if (BC.Constraint) {
      // Publish this tick's oracle counters (single-writer bumps; the
      // shard-local struct resets so deltas stay per-tick).
      Ins.TokensMasked->add(S.Index, OracleStats.TokensMasked);
      Ins.BeamsKilled->add(S.Index, OracleStats.BeamsKilled);
      Ins.OracleSeconds->add(S.Index, OracleStats.OracleSeconds);
      if (TraceTick && OracleStats.OracleSeconds > 0) {
        // Synthesized from the tick's accumulated mask time: anchored
        // to end at now, inside the tick span.
        uint64_t End = TR.nowNs();
        uint64_t Dur = secondsToNs(OracleStats.OracleSeconds);
        TR.record(obs::SpanKind::OracleMask, static_cast<uint64_t>(S.Index),
                  End > Dur ? End - Dur : 0, End);
      }
      OracleStats = nn::ConstraintStats();
    }
    if (TraceTick)
      TR.record(obs::SpanKind::Tick, static_cast<uint64_t>(S.Index),
                TickStart, TR.nowNs(), Tokens.size());
    // Survivor gather; B may drop to zero when every source retired.
    Model.reorderBeams(St, SrcIdx);
  }
}
