//===- Engine.cpp - streaming serve engine (continuous batching) --------------===//

#include "serve/Engine.h"

#include "nn/BeamCore.h"

#include <algorithm>
#include <cassert>
#include <chrono>

using namespace slade;
using namespace slade::serve;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point T0) {
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

/// Percentile over sorted samples (nearest-rank).
double percentile(const std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Rank = static_cast<size_t>(P * static_cast<double>(Sorted.size()));
  if (Rank >= Sorted.size())
    Rank = Sorted.size() - 1;
  return Sorted[Rank];
}

} // namespace

LatencyStats slade::serve::latencyStatsOf(std::vector<double> Samples) {
  LatencyStats S;
  if (Samples.empty())
    return S;
  std::sort(Samples.begin(), Samples.end());
  S.P50 = percentile(Samples, 0.50);
  S.P95 = percentile(Samples, 0.95);
  S.P99 = percentile(Samples, 0.99);
  S.Max = Samples.back();
  double Sum = 0;
  for (double V : Samples)
    Sum += V;
  S.Mean = Sum / static_cast<double>(Samples.size());
  return S;
}

/// One request's completion channel: who to tell, and when it arrived.
struct Engine::Completion {
  std::string Name;
  const core::EvalTask *Task = nullptr;
  std::promise<RequestResult> Promise;
  std::function<void(const RequestResult &)> OnDone;
  Clock::time_point SubmitTime;
  double QueueWait = 0;
  bool Shared = false; ///< Shared >= 1 decode tick with another source.
};

/// One live source in the continuous batch: its segment, its beam-search
/// bookkeeping (shared nn/BeamCore.h state), and the completions it
/// serves — its own, plus any identical requests that arrived while it
/// was decoding (in-flight single-flight dedup).
struct Engine::Job {
  Completion Main;
  std::vector<Completion> Attached;
  /// Byte key of the tokenized source, for in-flight dedup matching.
  std::string SrcKey;

  int Seg = -1; ///< Self-K/V segment owned while live.
  std::vector<nn::beamcore::BeamMeta> Live;
  std::vector<nn::Hypothesis> Done;
  /// Tokens to feed this source's rows on the next tick ({Bos} when
  /// freshly admitted). Invariant: NextTokens.size() == Live.size().
  std::vector<int> NextTokens;
  int Steps = 0; ///< Selection steps taken (caps at MaxLen).
};

Engine::Engine(const core::Decompiler &D, const EngineOptions &Opts)
    : D(D), Opts(Opts), Queue(Opts.QueueCapacity) {
  assert(this->Opts.MaxLiveSources > 0 && "need at least one decode row");
  DecodeThread = std::thread([this] { decodeLoop(); });
}

Engine::~Engine() { stop(); }

void Engine::stop() {
  std::call_once(StopOnce, [this] {
    Queue.close();
    if (DecodeThread.joinable())
      DecodeThread.join();
    if (Pool)
      Pool->wait();
  });
}

ThreadPool &Engine::verifyPool() {
  if (!Pool)
    Pool = std::make_unique<ThreadPool>(
        Opts.VerifyThreads > 0 ? static_cast<unsigned>(Opts.VerifyThreads)
                               : ThreadPool::defaultConcurrency());
  return *Pool;
}

std::future<RequestResult>
Engine::submitImpl(DecompileRequest R,
                   std::function<void(const RequestResult &)> OnDone,
                   bool Block, bool *Accepted) {
  Admission A;
  A.Req = std::move(R);
  A.OnDone = std::move(OnDone);
  A.SubmitTime = Clock::now();
  std::future<RequestResult> Fut = A.Promise.get_future();
  // Count BEFORE the push: once pushed, the decode thread may complete
  // the request at any moment, and Completed must never overtake
  // Submitted (drain() would return with work in flight).
  {
    std::lock_guard<std::mutex> Lock(MetricsMu);
    ++Submitted;
  }
  bool Ok = Block ? Queue.push(std::move(A)) : Queue.tryPush(A);
  if (Accepted)
    *Accepted = Ok;
  if (!Ok) {
    {
      std::lock_guard<std::mutex> Lock(MetricsMu);
      --Submitted; // Rejected: roll the count back.
    }
    DrainCv.notify_all(); // Re-check any drain() blocked on the count.
  }
  // On failure the promise (still held by A) is destroyed unfulfilled,
  // so a blocking caller's future carries broken_promise.
  return Fut;
}

std::future<RequestResult> Engine::submit(DecompileRequest R) {
  return submitImpl(std::move(R), nullptr, /*Block=*/true, nullptr);
}

std::future<RequestResult>
Engine::submit(DecompileRequest R,
               std::function<void(const RequestResult &)> OnDone) {
  return submitImpl(std::move(R), std::move(OnDone), /*Block=*/true,
                    nullptr);
}

bool Engine::trySubmit(DecompileRequest R, std::future<RequestResult> *Out) {
  bool Accepted = false;
  std::future<RequestResult> Fut =
      submitImpl(std::move(R), nullptr, /*Block=*/false, &Accepted);
  if (Accepted && Out)
    *Out = std::move(Fut);
  return Accepted;
}

void Engine::drain() {
  std::unique_lock<std::mutex> Lock(MetricsMu);
  DrainCv.wait(Lock, [this] { return Completed >= Submitted; });
}

EngineMetrics Engine::metrics() const {
  std::lock_guard<std::mutex> Lock(MetricsMu);
  EngineMetrics M;
  M.Submitted = Submitted;
  M.Completed = Completed;
  M.Steps = Steps;
  M.StepRows = StepRows;
  M.FusedJobs = FusedJobs;
  M.InFlightDeduped = InFlightDeduped;
  M.PeakLiveSources = PeakLiveSources;
  M.EncodeSeconds = EncodeSeconds;
  M.DecodeSeconds = DecodeSeconds;
  M.VerifySeconds = VerifySeconds;
  M.QueueWait = latencyStatsOf(QueueWaitSamples);
  M.Latency = latencyStatsOf(LatencySamples);
  return M;
}

void Engine::completeResult(RequestResult &&Res, Completion &&C) {
  Res.QueueWaitSeconds = C.QueueWait;
  Res.TotalSeconds = secondsSince(C.SubmitTime);
  // Ordering contract: the callback runs FIRST (so drain(), which waits
  // on the Completed count, implies every callback has run), then the
  // request is counted (so a caller returning from future.get() sees it
  // in metrics()), then the promise is fulfilled.
  if (C.OnDone)
    C.OnDone(Res);
  {
    std::lock_guard<std::mutex> Lock(MetricsMu);
    recordSample(QueueWaitSamples, QueueWaitCursor, C.QueueWait);
    recordSample(LatencySamples, LatencyCursor, Res.TotalSeconds);
    ++Completed;
  }
  C.Promise.set_value(std::move(Res));
  DrainCv.notify_all();
}

/// Appends a latency sample, bounded: once the window is full, new
/// samples overwrite the oldest (ring), so a long-lived engine holds a
/// fixed-size recent window instead of its whole history.
void Engine::recordSample(std::vector<double> &Samples, size_t &Cursor,
                          double V) {
  if (Samples.size() < MaxLatencySamples) {
    Samples.push_back(V);
  } else {
    Samples[Cursor] = V;
    Cursor = (Cursor + 1) % MaxLatencySamples;
  }
}

/// Completes one request from the finished source's hypotheses.
/// Translate-only requests complete inline (a token decode is trivial
/// next to a tick); verified requests dispatch to the worker pool so
/// compile + IO-testing overlaps with the decode loop's next ticks.
void Engine::completeOne(Completion &&C,
                         std::shared_ptr<std::vector<nn::Hypothesis>> Hyps) {
  if (C.Shared) {
    std::lock_guard<std::mutex> Lock(MetricsMu);
    ++FusedJobs;
  }
  if (!C.Task) {
    RequestResult Res;
    Res.Name = C.Name;
    if (!Hyps->empty())
      Res.CSource = D.tokenizer().decode(Hyps->front().Tokens);
    Res.Hyps = *Hyps;
    completeResult(std::move(Res), std::move(C));
    return;
  }
  // Pooled IO-verification, overlapped with ongoing decode. Within the
  // request, candidates are tried sequentially in beam order with early
  // exit on the first IO pass — exactly Decompiler::decompile's
  // sequential selection, so outcomes are byte-identical to a
  // one-at-a-time run.
  bool UseTypeInf = Opts.UseTypeInference;
  auto Shared = std::make_shared<Completion>(std::move(C));
  verifyPool().submit([this, UseTypeInf, Shared, Hyps] {
    const tok::Tokenizer &Tok = D.tokenizer();
    auto T0 = Clock::now();
    core::HypothesisOutcome First, Picked;
    bool HaveFirst = false, Passed = false;
    for (const nn::Hypothesis &H : *Hyps) {
      std::string CSource = Tok.decode(H.Tokens);
      core::HypothesisOutcome O =
          core::evaluateHypothesis(*Shared->Task, CSource, UseTypeInf);
      if (!HaveFirst) {
        First = O;
        HaveFirst = true;
      }
      if (O.IOCorrect) {
        Picked = O; // First candidate passing the IO tests (§VI-A).
        Passed = true;
        break;
      }
    }
    RequestResult Res;
    Res.Name = Shared->Name;
    Res.Outcome = Passed ? Picked : First;
    Res.CSource = Res.Outcome.CSource;
    Res.Verified = true;
    Res.Hyps = *Hyps;
    {
      std::lock_guard<std::mutex> Lock(MetricsMu);
      VerifySeconds += secondsSince(T0);
    }
    completeResult(std::move(Res), std::move(*Shared));
  });
}

/// Retirement: complete the job's own request and every in-flight
/// duplicate that attached to it — all share one decode's hypotheses.
void Engine::finishJob(Job &&J, std::vector<nn::Hypothesis> Hyps) {
  auto SharedHyps =
      std::make_shared<std::vector<nn::Hypothesis>>(std::move(Hyps));
  completeOne(std::move(J.Main), SharedHyps);
  for (Completion &C : J.Attached)
    completeOne(std::move(C), SharedHyps);
}

void Engine::decodeLoop() {
  const nn::Transformer &Model = D.model();
  const int Vocab = Model.config().Vocab;
  nn::BeamConfig BC;
  BC.BeamSize = Opts.BeamSize;
  BC.MaxLen = Opts.MaxLen;
  const int BeamsPerSource = std::max(1, Opts.BeamSize);

  nn::Transformer::BatchDecodeState St = Model.startDecodeStream(
      Opts.MaxLiveSources, BeamsPerSource, std::max(1, Opts.MaxLen) + 1);
  SlotAllocator Slots(Opts.MaxLiveSources);
  std::vector<std::unique_ptr<Job>> Jobs; // Row order == job order.
  nn::beamcore::SelectScratch Scratch;
  std::vector<float> Logits;
  std::vector<int> Tokens, SrcIdx;

  /// A prepared admission whose encoder cache carries a different weight
  /// version than the live batch: held back until the batch drains (an
  /// idle state adopts the new version), blocking later admissions so
  /// arrival order is preserved.
  struct PendingAdmit {
    Completion C;
    std::shared_ptr<const nn::Transformer::EncoderCache> Enc;
    std::string SrcKey;
  };
  std::unique_ptr<PendingAdmit> Deferred;

  // Binds a prepared source into a freed segment; false = weight-version
  // mismatch with the live rows (caller defers).
  auto TryAdmit = [&](Completion &&C,
                      std::shared_ptr<const nn::Transformer::EncoderCache>
                          Enc,
                      std::string SrcKey) {
    int Seg = Slots.acquire();
    assert(Seg >= 0 && "free segment must exist when Jobs < MaxLive");
    if (Model.admitStreamRow(St, Seg, Enc) < 0) {
      Slots.release(Seg);
      Deferred =
          std::unique_ptr<PendingAdmit>(new PendingAdmit{
              std::move(C), std::move(Enc), std::move(SrcKey)});
      return false;
    }
    // Queue wait ends HERE — at admission into a decode row (a deferred
    // source's wait keeps accruing until this point).
    C.QueueWait = secondsSince(C.SubmitTime);
    auto J = std::make_unique<Job>();
    J->Main = std::move(C);
    J->SrcKey = std::move(SrcKey);
    J->Seg = Seg;
    J->Live.resize(1); // The BOS hypothesis.
    J->NextTokens = {nn::Transformer::BosId};
    {
      std::lock_guard<std::mutex> Lock(MetricsMu);
      PeakLiveSources = std::max(PeakLiveSources, Jobs.size() + 1);
    }
    Jobs.push_back(std::move(J));
    return true;
  };

  for (;;) {
    // -- admission: recycle freed segments from the queue ------------------
    while (static_cast<int>(Jobs.size()) < Opts.MaxLiveSources) {
      if (Deferred) {
        // Retry the version-deferred source first (FIFO); it binds once
        // the batch has drained and adopted its weight version.
        PendingAdmit P = std::move(*Deferred);
        Deferred.reset();
        if (!TryAdmit(std::move(P.C), std::move(P.Enc),
                      std::move(P.SrcKey)))
          break; // Still blocked: wait for the live rows to retire.
        continue;
      }
      Admission A;
      if (Jobs.empty()) {
        if (!Queue.pop(&A))
          return; // Queue closed and fully drained; no live sources.
      } else if (!Queue.tryPop(&A)) {
        break; // Free rows but nothing waiting: keep decoding.
      }
      Completion C;
      C.Name = std::move(A.Req.Name);
      C.Task = A.Req.Task;
      C.Promise = std::move(A.Promise);
      C.OnDone = std::move(A.OnDone);
      C.SubmitTime = A.SubmitTime;
      if (BC.MaxLen < 1) { // Degenerate config: nothing to decode.
        C.QueueWait = secondsSince(C.SubmitTime);
        completeOne(std::move(C),
                    std::make_shared<std::vector<nn::Hypothesis>>());
        continue;
      }
      if (A.Req.Src.empty() && !A.Req.Enc) {
        // Task-mode requests may omit the payload: the task carries it.
        const std::string &Asm = (A.Req.Asm.empty() && A.Req.Task)
                                     ? A.Req.Task->Prog.TargetAsm
                                     : A.Req.Asm;
        A.Req.Src = D.tokenizer().encode(Asm);
      }
      const std::vector<int> &Src = A.Req.Src;
      std::string SrcKey(reinterpret_cast<const char *>(Src.data()),
                         Src.size() * sizeof(int));
      // In-flight single-flight: an identical source already decoding
      // serves this request too — attach instead of occupying a row.
      // (Determinism makes the hypotheses identical by construction.)
      // Requests without tokens (pre-encoded only) never match.
      Job *Dup = nullptr;
      if (!SrcKey.empty())
        for (const std::unique_ptr<Job> &Live : Jobs)
          if (Live->SrcKey == SrcKey) {
            Dup = Live.get();
            break;
          }
      if (Dup) {
        // The duplicate's wait ends here: it is now served by a row.
        C.QueueWait = secondsSince(C.SubmitTime);
        Dup->Attached.push_back(std::move(C));
        std::lock_guard<std::mutex> Lock(MetricsMu);
        ++InFlightDeduped;
        continue;
      }
      auto T0 = Clock::now();
      std::shared_ptr<const nn::Transformer::EncoderCache> Enc =
          A.Req.Enc ? std::move(A.Req.Enc) : D.encodeCached(Src);
      {
        std::lock_guard<std::mutex> Lock(MetricsMu);
        EncodeSeconds += secondsSince(T0);
      }
      if (!TryAdmit(std::move(C), std::move(Enc), std::move(SrcKey)))
        break; // Version-deferred; admissions resume after the drain.
    }
    if (Jobs.empty())
      continue; // Degenerate-config requests only; re-block on the queue.

    // -- one fused decode tick over every live row -------------------------
    Tokens.clear();
    for (const std::unique_ptr<Job> &J : Jobs)
      Tokens.insert(Tokens.end(), J->NextTokens.begin(),
                    J->NextTokens.end());
    auto T0 = Clock::now();
    Logits = Model.stepDecodeBatch(St, Tokens);
    {
      std::lock_guard<std::mutex> Lock(MetricsMu);
      DecodeSeconds += secondsSince(T0);
      ++Steps;
      StepRows += Tokens.size();
    }

    // -- per-source selection; finished sources retire mid-flight ----------
    const bool Multi = Jobs.size() > 1;
    SrcIdx.clear();
    int RowBase = 0;
    size_t Keep = 0;
    for (size_t JI = 0; JI < Jobs.size(); ++JI) {
      Job &J = *Jobs[JI];
      const int Rows = static_cast<int>(J.Live.size());
      if (Multi) {
        J.Main.Shared = true;
        for (Completion &C : J.Attached)
          C.Shared = true;
      }
      nn::beamcore::SelectResult R = nn::beamcore::selectBeamStep(
          J.Live, J.Done,
          [&](size_t BI) {
            return Logits.data() +
                   (static_cast<size_t>(RowBase) + BI) * Vocab;
          },
          Vocab, BC, Scratch);
      ++J.Steps;
      // Retire on the EOS quota, beam exhaustion, or the step budget —
      // the same three exits as beamSearchImpl's loop, in the same
      // order, so the surviving Live/Done sets match a solo search.
      if (R.StopNow || J.Live.empty() || J.Steps >= BC.MaxLen) {
        Slots.release(J.Seg);
        std::vector<nn::Hypothesis> Hyps = nn::beamcore::finalizeBeams(
            std::move(J.Live), std::move(J.Done), BC);
        finishJob(std::move(J), std::move(Hyps));
      } else {
        for (int Idx : R.SrcIdx)
          SrcIdx.push_back(RowBase + Idx);
        J.NextTokens = std::move(R.Tokens);
        Jobs[Keep++] = std::move(Jobs[JI]);
      }
      RowBase += Rows;
    }
    Jobs.resize(Keep);
    // Survivor gather; B may drop to zero when every source retired.
    Model.reorderBeams(St, SrcIdx);
  }
}
