//===- Engine.h - sharded streaming serve engine (continuous batching) -*- C++ -*-===//
///
/// \file
/// The long-lived serving subsystem: producers submit DecompileRequests
/// at ANY time; N decode shards — each a long-lived thread owning its
/// own BatchDecodeState, recycled self-K/V segments, and scratch — run
/// one fused stepDecodeBatch per tick over their live rows with NO
/// cross-shard synchronization on the hot tick. A dispatcher thread
/// drains the shared bounded AdmissionQueue and routes each request:
///
///   submit() ──▶ AdmissionQueue (bounded, earliest-deadline-first;
///                full queue = backpressure, or typed QueueFull
///                rejection in load-shedding mode)
///                     │
///                     ▼ dispatcher (EDF order; expired/cancelled work
///                       is shed HERE, before any encode)
///        ┌─ decoded-hypotheses LRU hit? ──▶ complete (decode skipped)
///        ├─ source live on ANY shard? ────▶ attach (single-flight)
///        └─ place on least-loaded shard (blocks when all shards full;
///           a retirement on any shard backfills from the queue)
///                     │
///                     ▼
///   shard loops:  [rows][rows] ... one stepDecodeBatch per tick each;
///                 finished sources retire mid-flight, results feed the
///                 decode LRU, freed segments recycle for the next
///                 admission. A row whose every client cancelled or
///                 expired is ABORTED mid-decode and its segment
///                 recycled immediately.
///                     │
///                     ▼
///   verify pool:  compile + IO-test candidates in beam order — with
///                 per-candidate wall-clock timeouts, bounded retry for
///                 transient faults, and full exception containment
///                     │
///                     ▼
///   future / callback completes (RequestResult with a typed
///   RequestStatus — every submitted request resolves exactly once)
///
/// Determinism contract: per-request OK outputs are byte-identical to a
/// solo nn::beamSearch on that request's source AT EVERY SHARD COUNT —
/// per-row step results are independent of which other rows share a
/// shard's batch AND of their decode positions (each source carries its
/// own clock; see BatchDecodeState::SegLen), the per-source selection
/// logic is the shared nn/BeamCore.h code, and a decode-LRU hit returns
/// a result that deterministic decode already produced. Arrival order,
/// placement, row recycling, and row ABORTS cannot change any other
/// request's result, only its latency.
///
/// Failure domains (docs/ARCHITECTURE.md "failure domains & request
/// lifecycle"): a fault is contained to the REQUEST it strikes — an
/// encode throw, a verify throw/hang/timeout, a cancellation, or an
/// expired deadline resolves that request with a typed status and never
/// takes down the dispatcher, a shard, or the verify pool.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_SERVE_ENGINE_H
#define SLADE_SERVE_ENGINE_H

#include "obs/Metrics.h"
#include "serve/AdmissionQueue.h"
#include "serve/FaultInjector.h"

#include <atomic>
#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>

namespace slade {
namespace serve {

struct EngineOptions {
  int BeamSize = 5; ///< Paper: k = 5.
  int MaxLen = 220;
  bool UseTypeInference = true;
  /// Worker threads for the candidate IO-verification pool (0 =
  /// hardware concurrency). The pool is created lazily on the first
  /// verified request.
  int VerifyThreads = 0;
  /// Decode-batch segments PER SHARD: the max sources decoding
  /// concurrently in one shard's fused batch (live rows per shard <=
  /// MaxLiveSources * BeamSize). 1 = no cross-request fusion within a
  /// shard (sources still stream through it, one at a time).
  int MaxLiveSources = 4;
  /// Decode shards: independent decode loops, each with its own
  /// long-lived thread, BatchDecodeState, recycled self-K/V segments,
  /// and scratch arenas. Requests place onto the least-loaded shard;
  /// identical live sources single-flight across ALL shards. 0 = one
  /// shard per hardware thread (capped — see resolveShardCount).
  int Shards = 1;
  /// Intra-tick worker threads PER SHARD (nn::ParallelFor): each shard
  /// tick fans its GEMM row/tile ranges and attention rows out over a
  /// persistent per-shard pool — and the dispatcher's encoder passes get
  /// a pool of the same width — so a SINGLE request uses multiple cores.
  /// 1 (the default) spawns no pool at all: the sequential code path,
  /// byte-for-byte. Outputs are byte-identical at EVERY value by
  /// construction (only output-row ranges are partitioned, never
  /// reductions); the total worker budget is roughly Shards *
  /// TickThreads, plus the dispatcher's pool when > 1.
  int TickThreads = 1;
  /// Consult (and fill) the decompiler's decoded-hypotheses LRU
  /// (nn::DecodeLRU) in front of decode: a repeat of an already-decoded
  /// source — even one that never overlaps the original in flight —
  /// completes without occupying a decode row. Results are identical
  /// either way (decode is deterministic); disable for decode-cost
  /// measurements. The batch Scheduler disables it so its run metrics
  /// keep their "every unique source decodes" meaning.
  bool UseDecodeCache = true;
  /// Admission queue bound. When every shard is full AND QueueCapacity
  /// requests are waiting, submit() blocks (BlockOnFull) or sheds.
  size_t QueueCapacity = 256;
  /// Admission policy at a full queue: true (default) = submit() blocks
  /// until space frees — backpressure for trusted batch producers.
  /// false = LOAD SHEDDING: submit() never blocks; at a full queue the
  /// request resolves immediately with RequestStatus::QueueFull, so an
  /// overloaded engine keeps serving what it admitted within their
  /// deadlines instead of queueing unbounded latency.
  bool BlockOnFull = true;
  /// Per-candidate verify wall-clock budget in seconds, spanning the
  /// candidate's retries (0 = unbounded). Cooperative — see
  /// core::VerifyLimits.
  double VerifyCandidateTimeout = 0;
  /// Retries for THROWN (transient) verify attempts; deterministic
  /// compile failures are outcomes and never retry.
  int VerifyMaxRetries = 0;
  /// Backoff before each verify retry, seconds.
  double VerifyRetryBackoff = 0.01;
  /// Deterministic fault injection (serve/FaultInjector.h). Default-off:
  /// all probabilities zero.
  FaultConfig Faults;
  /// Grammar-constrained decoding (--constrain). Off is byte-identical
  /// to the pre-constraint engine; Syntax gives every live beam a
  /// cc::PrefixOracle cursor, masks doomed vocabulary pieces pre-top-k,
  /// and kills fully-masked beams mid-flight (their K/V rows free
  /// exactly like deadline aborts).
  nn::ConstrainMode Constrain = nn::ConstrainMode::Off;
  /// Speculative decoding (--speculate). Off leaves the plain tick path
  /// untouched (zero overhead). Auto/On replace each shard tick with a
  /// propose/verify round (nn/SpecDecode.h): the decompiler's attached
  /// draft (core::Decompiler::attachDraft; silently plain without one)
  /// proposes up to DraftGamma beam steps per source, the full model
  /// scores all of them in ONE batched call and accepts the longest
  /// agreeing prefix. Outputs stay byte-identical at every shard count
  /// and mode — speculation only changes how many exact beam steps one
  /// batched call yields.
  nn::SpecMode Speculate = nn::SpecMode::Off;
  /// Draft proposal depth per speculative round.
  int DraftGamma = 4;
  /// Auto's per-request acceptance gate: after SpecProbeRounds rounds, a
  /// request whose acceptance rate (accepted / proposed) is below
  /// SpecMinAcceptance stops proposing — its rounds degrade to plain
  /// steps through the same machinery, bounding the worst case at the
  /// draft cost of the probe rounds. On never gates.
  double SpecMinAcceptance = 0.35;
  int SpecProbeRounds = 3;
  /// Metrics registry to register this engine's instruments and
  /// coherent-snapshot collector in (obs/Metrics.h). Null = the engine
  /// owns a private registry; either way EngineMetrics/JSONL are thin
  /// views over the SAME storage, and renderPrometheus on the registry
  /// exposes it all as Prometheus text. An external registry must
  /// outlive the engine, and must not be scraped concurrently with the
  /// engine's destruction.
  obs::Registry *Metrics = nullptr;
};

/// The shard count an options value resolves to: the value itself when
/// positive, else one shard per hardware thread, capped at 8 (beyond
/// that, decode-state memory grows faster than tick throughput).
int resolveShardCount(int Requested);

/// Latency distribution over completed requests, in seconds.
struct LatencyStats {
  double P50 = 0, P95 = 0, P99 = 0, Mean = 0, Max = 0;
};

/// Nearest-rank percentiles + mean/max over raw samples (seconds).
/// A thin serve-typed wrapper over obs::sampleStats — THE percentile
/// implementation (obs/Metrics.h), shared by EngineMetrics, the
/// registry histograms, and the slade-serve replay reporting so their
/// conventions cannot diverge.
LatencyStats latencyStatsOf(std::vector<double> Samples);

/// Per-shard decode-loop utilization (EngineMetrics::Shards[i] is shard
/// i). A shard with Sources == 0 while others are saturated means
/// dispatch is not spreading load.
struct ShardUtil {
  size_t Sources = 0;    ///< Sources admitted into this shard's rows.
  uint64_t Steps = 0;    ///< Fused decode ticks this shard ran.
  uint64_t StepRows = 0; ///< Beam rows stepped, summed over its ticks.
  double DecodeSeconds = 0; ///< Time inside this shard's ticks.
};

/// Aggregate engine counters — a SNAPSHOT VIEW over the engine's
/// registry instruments (obs/Metrics.h) plus its mutex-guarded
/// completion counters. Percentiles are computed over a bounded window
/// of recently completed OK requests (the last 65536, owned by the
/// registry histograms); shed / expired / cancelled resolutions never
/// pollute the served-latency picture. Steps / StepRows / DecodeSeconds
/// are sums over the per-shard instrument cells in Shards.
///
/// Accounting invariant, COHERENT ON EVERY SCRAPE (mid-flight, not just
/// after drain — every outcome counter and Completed are written and
/// snapshotted under one mutex; asserted by the fault soak test and the
/// concurrent-scrape test): Completed == Ok + Shed + Expired +
/// Cancelled + ShutDown + EncodeFailed + VerifyFailed, and Completed <=
/// Submitted. After a drain, Completed == Submitted.
struct EngineMetrics {
  size_t Submitted = 0;
  size_t Completed = 0; ///< Every typed resolution, any status.
  size_t Ok = 0;        ///< Served completions (RequestStatus::Ok).
  uint64_t Steps = 0;    ///< Fused decode ticks, all shards.
  uint64_t StepRows = 0; ///< Beam rows stepped, summed over ticks.
  /// Requests that shared at least one decode tick with another source
  /// (on the same shard).
  size_t FusedJobs = 0;
  /// Requests whose tokenized source matched a source already decoding
  /// on ANY shard: they attached to the live job (single-flight) and
  /// completed with its hypotheses instead of occupying a decode row.
  size_t InFlightDeduped = 0;
  /// Requests served from the decoded-hypotheses LRU: the whole beam
  /// decode was skipped (the non-overlapping-duplicates regime).
  size_t DecodeCacheHits = 0;
  size_t DecodeCacheMisses = 0;
  /// Heap bytes held by the (decompiler-owned) decoded-hypotheses LRU.
  size_t DecodeCacheBytes = 0;
  size_t PeakLiveSources = 0; ///< Peak concurrently-live, all shards.
  double EncodeSeconds = 0; ///< Encoder passes at dispatch (LRU misses).
  double DecodeSeconds = 0; ///< Time inside stepDecodeBatch ticks.
  double VerifySeconds = 0; ///< Summed pool verify time (overlapped).
  // -- grammar-constraint counters (zero when Constrain is Off) ----------
  uint64_t BeamsKilled = 0;  ///< Beams whose every candidate was masked.
  uint64_t TokensMasked = 0; ///< Vocab entries masked, summed over steps.
  double OracleSeconds = 0;  ///< Time inside the oracle/mask code.
  // -- speculative-decode counters (zero when Speculate is Off) ----------
  uint64_t DraftProposed = 0; ///< Draft-proposed beam steps, all shards.
  uint64_t DraftAccepted = 0; ///< Proposals the full model agreed with.
  uint64_t SpecRounds = 0;    ///< Propose/verify rounds ticked.
  uint64_t SpecFallbacks = 0; ///< Requests the Auto gate reverted to plain.
  double DraftSeconds = 0;    ///< Time inside draft forward + simulation.
  // -- typed-outcome counters (the overload/robustness picture) ----------
  size_t Shed = 0;         ///< QueueFull rejections (load-shedding mode).
  size_t Expired = 0;      ///< DeadlineExpired resolutions (any stage).
  size_t Cancelled = 0;    ///< Cancelled resolutions (any stage).
  size_t ShutDown = 0;     ///< ShuttingDown resolutions (drain/stop).
  size_t EncodeFailed = 0; ///< Contained dispatcher encode failures.
  size_t VerifyFailed = 0; ///< Verify faults that survived the retries.
  uint64_t VerifyTimeouts = 0; ///< Candidates cut by the verify timeout.
  uint64_t VerifyRetries = 0;  ///< Transient verify attempts retried.
  double DrainMs = 0; ///< Wall ms the terminal drain()/stop() took.
  LatencyStats QueueWait; ///< submit() -> decode-row admission, OK only.
  LatencyStats Latency;   ///< submit() -> completion, OK requests only.
  std::vector<ShardUtil> Shards; ///< Per-shard utilization.
};

/// A submitted request: the result future plus a cancel flag shared
/// with the engine. cancel() is safe from any thread, in any request
/// state — queued, encoding, live on a shard, or in verify — and is a
/// REQUEST: the engine resolves the future (exactly once) with
/// RequestStatus::Cancelled at the next cancellation point, aborting a
/// live decode row mid-flight and recycling its segment. Cancelling a
/// request that already resolved is a no-op.
class Handle {
public:
  Handle() = default;

  bool valid() const { return Fut.valid(); }
  void cancel() {
    if (CancelFlag)
      CancelFlag->store(true, std::memory_order_release);
  }
  RequestResult get() { return Fut.get(); }
  void wait() const { Fut.wait(); }
  /// The underlying future, for wait_for/when_any composition.
  std::future<RequestResult> &future() { return Fut; }

private:
  friend class Engine;
  std::future<RequestResult> Fut;
  std::shared_ptr<std::atomic<bool>> CancelFlag;
};

/// The sharded streaming serve engine. Construction starts the
/// dispatcher and one decode thread per shard; stop() (or destruction)
/// closes the queue, drains every in-flight request, and joins.
/// Thread-safe: any number of producer threads may submit concurrently.
class Engine {
public:
  Engine(const core::Decompiler &D, const EngineOptions &Opts);
  ~Engine();

  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// Submits a request. With BlockOnFull (default) this blocks while
  /// the admission queue is full (backpressure); in load-shedding mode
  /// it returns immediately, the handle resolving with QueueFull when
  /// the queue had no room. The returned handle's future ALWAYS
  /// resolves with a typed RequestResult — on overload, expiry,
  /// cancellation, faults, and shutdown alike (never broken_promise).
  Handle submit(DecompileRequest R);

  /// Callback form: \p OnDone runs on an engine thread (dispatcher,
  /// shard, or verify worker) just before the future completes. Keep it
  /// cheap.
  Handle submit(DecompileRequest R,
                std::function<void(const RequestResult &)> OnDone);

  /// Non-blocking submit: false (request untouched aside from move)
  /// when the queue is full or the engine is stopped; nothing resolves.
  bool trySubmit(DecompileRequest R, Handle *Out);

  /// Blocks until every request submitted so far has completed. The
  /// queue stays open; more requests may be submitted after.
  void drain();

  /// GRACEFUL DRAIN, the weight-hot-swap primitive: stops admissions
  /// (later submits resolve ShuttingDown), lets in-flight rows and
  /// queued work finish until \p Deadline, then force-resolves whatever
  /// remains as ShuttingDown — every future resolves either way — and
  /// joins all engine threads. Terminal and idempotent (a later stop()
  /// is a no-op); metrics().DrainMs records the wall time.
  void drain(std::chrono::steady_clock::time_point Deadline);

  /// drain() with no deadline: closes the queue, finishes ALL in-flight
  /// + queued requests, joins the dispatcher and every shard thread,
  /// and waits out the verify pool. Idempotent.
  void stop();

  const EngineOptions &options() const { return Opts; }
  /// Resolved decode shard count (options().Shards after 0 = auto).
  int shardCount() const { return static_cast<int>(ShardsVec.size()); }
  EngineMetrics metrics() const;
  /// The registry backing this engine's instruments (the caller's
  /// EngineOptions::Metrics, or the engine-owned one). Render it with
  /// obs::Registry::renderPrometheus for the Prometheus exposition.
  obs::Registry &metricsRegistry() const { return Reg; }

private:
  struct Completion;
  struct Job;
  struct Shard;
  struct ShardMsg;

  void dispatchLoop();
  void shardLoop(Shard &S);
  void sendToShard(Shard &S, ShardMsg &&Msg);
  ThreadPool &verifyPool();
  void finishJob(Job &&J,
                 std::shared_ptr<const std::vector<nn::Hypothesis>> Hyps);
  void completeOne(Completion &&C,
                   std::shared_ptr<const std::vector<nn::Hypothesis>> Hyps);
  void completeResult(RequestResult &&Res, Completion &&C);
  /// Typed no-payload resolution (shed / expired / cancelled / failed).
  void completeEmpty(Completion &&C, RequestStatus St);
  /// Registers this engine's instruments + coherent-group collector in
  /// Reg (constructor) / emits the coherent snapshot (scrape).
  void registerInstruments();
  void collectInto(obs::MetricSink &Sink) const;
  Handle submitImpl(DecompileRequest R,
                    std::function<void(const RequestResult &)> OnDone,
                    bool Block, bool *Accepted);
  void shutdownImpl(std::chrono::steady_clock::time_point Deadline);
  /// The armed drain deadline (time_point::max() while fully open).
  std::chrono::steady_clock::time_point drainDeadline() const {
    return std::chrono::steady_clock::time_point(
        std::chrono::steady_clock::duration(
            DrainAtRaw.load(std::memory_order_acquire)));
  }

  const core::Decompiler &D;
  EngineOptions Opts;
  FaultInjector Injector;
  AdmissionQueue Queue;
  ShardRouter Router;

  /// The metrics storage (obs/Metrics.h): the caller's registry or the
  /// engine-owned fallback. OwnedReg is declared before Reg so the
  /// reference can bind to it.
  std::unique_ptr<obs::Registry> OwnedReg;
  obs::Registry &Reg;
  uint64_t CollectorToken = 0;
  /// Registry-backed instruments — the per-tick/per-shard storage that
  /// used to live as ad-hoc Shard atomics, and the latency windows that
  /// used to live as raw sample vectors. One cell per shard, written
  /// only by the owning shard thread (the engine's single-writer
  /// discipline, now enforced by the obs::Counter type).
  struct Instruments {
    obs::Counter *Sources = nullptr;
    obs::Counter *Steps = nullptr;
    obs::Counter *StepRows = nullptr;
    obs::FloatCounter *DecodeSeconds = nullptr;
    obs::Counter *BeamsKilled = nullptr;
    obs::Counter *TokensMasked = nullptr;
    obs::FloatCounter *OracleSeconds = nullptr;
    obs::Counter *DraftProposed = nullptr;
    obs::Counter *DraftAccepted = nullptr;
    obs::Counter *SpecRounds = nullptr;
    obs::Counter *SpecFallbacks = nullptr;
    obs::FloatCounter *DraftSeconds = nullptr;
    obs::Counter *ParallelRegions = nullptr; ///< Pool fan-outs, per shard.
    obs::Gauge *TickThreadsGauge = nullptr;  ///< Resolved TickThreads.
    obs::Gauge *LiveSourcesGauge = nullptr;
    obs::Histogram *QueueWait = nullptr; ///< OK-only, seconds.
    obs::Histogram *Latency = nullptr;   ///< OK-only, seconds.
  } Ins;

  /// Completion-side aggregation: one mutex for everything written on
  /// the completion paths (dispatcher, shard threads, verify workers) —
  /// per-request, never per-tick. The per-TICK counters live in each
  /// Shard as single-writer atomics and are merged at metrics() time,
  /// so N shards retiring or ticking concurrently never race (see the
  /// aggregation stress test in tests/test_serve.cpp).
  mutable std::mutex MetricsMu;
  std::condition_variable DrainCv;
  size_t Submitted = 0;
  size_t Completed = 0;
  size_t OkCount = 0;
  size_t FusedJobs = 0;
  size_t InFlightDeduped = 0;
  size_t DecodeCacheHits = 0;
  size_t DecodeCacheMisses = 0;
  size_t LiveSources = 0; ///< Currently admitted into rows, all shards.
  size_t PeakLiveSources = 0;
  double EncodeSeconds = 0;
  double VerifySeconds = 0;
  size_t ShedCount = 0;
  size_t ExpiredCount = 0;
  size_t CancelledCount = 0;
  size_t ShutDownCount = 0;
  size_t EncodeFailedCount = 0;
  size_t VerifyFailedCount = 0;
  uint64_t VerifyTimeouts = 0;
  uint64_t VerifyRetries = 0;
  double DrainMs = 0;
  /// Bound for the registry histograms' exact-sample windows (ring once
  /// full), so a long-lived engine's memory and metrics() cost stay
  /// fixed.
  static constexpr size_t MaxLatencySamples = 1 << 16;

  /// Engine-wide submit sequence: EDF tiebreak + fault-injection id.
  std::atomic<uint64_t> SeqCounter{0};
  /// Drain deadline as raw steady_clock duration ticks (so shards can
  /// poll it lock-free every tick); max() until drain()/stop() arms it.
  std::atomic<long long> DrainAtRaw;

  std::once_flag StopOnce;
  /// Set by the dispatcher after the queue is closed, drained, and every
  /// request has been routed; shard loops exit once it is set and their
  /// own work is done.
  std::atomic<bool> DispatchDone{false};
  /// Lazily created verification pool (PoolMu guards creation: the
  /// dispatcher, any shard, or a decode-LRU hit may be first). Declared
  /// before the threads so workers are joined after the decode loops
  /// exit but before teardown completes.
  std::mutex PoolMu;
  std::unique_ptr<ThreadPool> Pool;
  std::vector<std::unique_ptr<Shard>> ShardsVec;
  std::thread DispatchThread;
};

} // namespace serve
} // namespace slade

#endif // SLADE_SERVE_ENGINE_H
