//===- Engine.h - streaming serve engine (continuous batching) --*- C++ -*-===//
///
/// \file
/// The long-lived serving subsystem: producers submit DecompileRequests
/// at ANY time; a dedicated decode thread runs one fused
/// stepDecodeBatch per tick over whatever beam rows are live. Finished
/// or failed sources retire mid-flight (their self-K/V segment returns
/// to the slot allocator) and queued requests are admitted into the
/// freed rows WITHOUT restarting the batch — continuous batching, the
/// serving counterpart of the batch-scoped beamSearchMulti:
///
///   submit() ──▶ AdmissionQueue (bounded; full queue = backpressure)
///                     │ admitted when a segment frees
///                     ▼
///   decode loop:  [row row row row ...]  one stepDecodeBatch per tick
///                     │ source finishes (EOS quota / beam exhausted)
///                     ▼
///   verify pool:  compile + IO-test candidates in beam order —
///                 overlapped with the next ticks' decode
///                     │
///                     ▼
///   future / callback completes (RequestResult)
///
/// Determinism contract: per-request outputs are byte-identical to a
/// solo nn::beamSearch on that request's source — per-row step results
/// are independent of which other rows share the batch AND of their
/// decode positions (each source carries its own clock; see
/// BatchDecodeState::SegLen), and the per-source selection logic is the
/// shared nn/BeamCore.h code. Arrival order, admission order, and row
/// recycling cannot change any request's result, only its latency.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_SERVE_ENGINE_H
#define SLADE_SERVE_ENGINE_H

#include "serve/AdmissionQueue.h"

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>

namespace slade {
namespace serve {

struct EngineOptions {
  int BeamSize = 5; ///< Paper: k = 5.
  int MaxLen = 220;
  bool UseTypeInference = true;
  /// Worker threads for the candidate IO-verification pool (0 =
  /// hardware concurrency). The pool is created lazily on the first
  /// verified request.
  int VerifyThreads = 0;
  /// Decode-batch segments: the max sources decoding concurrently (the
  /// "max live rows" knob — live rows <= MaxLiveSources * BeamSize).
  /// 1 = no cross-request fusion (each source still streams through the
  /// engine, one at a time).
  int MaxLiveSources = 4;
  /// Admission queue bound. When MaxLiveSources sources are decoding AND
  /// QueueCapacity requests are waiting, submit() blocks — backpressure.
  size_t QueueCapacity = 256;
};

/// Latency distribution over completed requests, in seconds.
struct LatencyStats {
  double P50 = 0, P95 = 0, P99 = 0, Mean = 0, Max = 0;
};

/// Nearest-rank percentiles + mean/max over raw samples (seconds). The
/// ONE percentile implementation, shared by EngineMetrics and the
/// slade-serve replay reporting so their conventions cannot diverge.
LatencyStats latencyStatsOf(std::vector<double> Samples);

/// Aggregate engine counters. Percentiles are computed over a bounded
/// window of recently completed requests (the last 65536; everything
/// since construction until the window first fills).
struct EngineMetrics {
  size_t Submitted = 0;
  size_t Completed = 0;
  uint64_t Steps = 0;    ///< Fused decode ticks.
  uint64_t StepRows = 0; ///< Beam rows stepped, summed over ticks.
  /// Requests that shared at least one decode tick with another source.
  size_t FusedJobs = 0;
  /// Requests whose tokenized source matched a source already decoding:
  /// they attached to the live job (single-flight) and completed with
  /// its hypotheses instead of occupying a decode row.
  size_t InFlightDeduped = 0;
  size_t PeakLiveSources = 0;
  double EncodeSeconds = 0; ///< Encoder passes at admission (LRU misses).
  double DecodeSeconds = 0; ///< Time inside stepDecodeBatch ticks.
  double VerifySeconds = 0; ///< Summed pool verify time (overlapped).
  LatencyStats QueueWait; ///< submit() -> admission into a decode row.
  LatencyStats Latency;   ///< submit() -> completion (end to end).
};

/// The streaming serve engine. Construction starts the decode thread;
/// stop() (or destruction) closes the queue, drains every in-flight
/// request, and joins. Thread-safe: any number of producer threads may
/// submit concurrently.
class Engine {
public:
  Engine(const core::Decompiler &D, const EngineOptions &Opts);
  ~Engine();

  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// Submits a request; blocks while the admission queue is full
  /// (backpressure). The future completes when the request finishes; it
  /// carries a broken-promise exception if the engine stops first.
  std::future<RequestResult> submit(DecompileRequest R);

  /// Callback form: \p OnDone runs on the engine's decode thread (or a
  /// verify worker) just before the future completes. Keep it cheap.
  std::future<RequestResult> submit(DecompileRequest R,
                                    std::function<void(const RequestResult &)>
                                        OnDone);

  /// Non-blocking submit: false (request untouched aside from move) when
  /// the queue is full or the engine is stopped.
  bool trySubmit(DecompileRequest R, std::future<RequestResult> *Out);

  /// Blocks until every request submitted so far has completed. The
  /// queue stays open; more requests may be submitted after.
  void drain();

  /// Closes the queue, finishes all in-flight + queued requests, joins
  /// the decode thread, and waits out the verify pool. Idempotent.
  void stop();

  const EngineOptions &options() const { return Opts; }
  EngineMetrics metrics() const;

private:
  struct Completion;
  struct Job;

  void decodeLoop();
  ThreadPool &verifyPool();
  void finishJob(Job &&J, std::vector<nn::Hypothesis> Hyps);
  void completeOne(Completion &&C,
                   std::shared_ptr<std::vector<nn::Hypothesis>> Hyps);
  void completeResult(RequestResult &&Res, Completion &&C);
  void recordSample(std::vector<double> &Samples, size_t &Cursor, double V);
  std::future<RequestResult>
  submitImpl(DecompileRequest R,
             std::function<void(const RequestResult &)> OnDone, bool Block,
             bool *Accepted);

  const core::Decompiler &D;
  EngineOptions Opts;
  AdmissionQueue Queue;

  mutable std::mutex MetricsMu;
  std::condition_variable DrainCv;
  size_t Submitted = 0;
  size_t Completed = 0;
  uint64_t Steps = 0;
  uint64_t StepRows = 0;
  size_t FusedJobs = 0;
  size_t InFlightDeduped = 0;
  size_t PeakLiveSources = 0;
  double EncodeSeconds = 0;
  double DecodeSeconds = 0;
  double VerifySeconds = 0;
  /// Bounded windows of recent per-request samples (ring once full), so
  /// a long-lived engine's memory and metrics() cost stay fixed.
  static constexpr size_t MaxLatencySamples = 1 << 16;
  std::vector<double> QueueWaitSamples;
  std::vector<double> LatencySamples;
  size_t QueueWaitCursor = 0;
  size_t LatencyCursor = 0;

  std::once_flag StopOnce;
  /// Lazily created verification pool (guarded by decode-thread-only
  /// access). Declared before the decode thread member so workers are
  /// joined after the decode loop exits but before teardown completes.
  std::unique_ptr<ThreadPool> Pool;
  std::thread DecodeThread;
};

} // namespace serve
} // namespace slade

#endif // SLADE_SERVE_ENGINE_H
