//===- AdmissionQueue.h - bounded request queue + row slot allocator -*- C++ -*-===//
///
/// \file
/// The admission side of the streaming serve engine (serve/Engine.h):
///
///   AdmissionQueue   a bounded MPSC queue between producers calling
///                    Engine::submit and the engine's decode loop.
///                    Bounded on purpose — when the decode batch is full
///                    AND the queue is full, submit() blocks, which is
///                    the engine's backpressure: producers slow to the
///                    rate the hardware sustains instead of queueing
///                    unbounded work.
///
///   SlotAllocator    a freelist of decode-batch segments (self-K/V row
///                    blocks in nn::Transformer::BatchDecodeState). A
///                    retiring source releases its segment; the next
///                    admitted source recycles it mid-flight.
///
//===----------------------------------------------------------------------===//
#ifndef SLADE_SERVE_ADMISSIONQUEUE_H
#define SLADE_SERVE_ADMISSIONQUEUE_H

#include "core/Slade.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <vector>

namespace slade {
namespace serve {

/// One streaming decompile/translate request, as submitted by a producer.
struct DecompileRequest {
  std::string Name;
  /// Assembly text; tokenized by the engine unless \p Src is provided.
  /// May stay empty in Task mode — the task's TargetAsm is used then.
  std::string Asm;
  /// Pre-tokenized source (used when non-empty; skips tokenization).
  std::vector<int> Src;
  /// Pre-encoded source (used when set; skips the admission-time encode
  /// and its LRU lookup entirely). Set \p Src too when the request
  /// should participate in in-flight dedup.
  std::shared_ptr<const nn::Transformer::EncoderCache> Enc;
  /// When set, the engine runs the full pipeline on retirement: candidate
  /// compile + IO-verification in beam order on the worker pool,
  /// overlapped with ongoing decode. Must outlive request completion.
  const core::EvalTask *Task = nullptr;
};

/// Completion payload delivered through the request's future/callback.
struct RequestResult {
  std::string Name;
  /// Top-beam C hypothesis (translate mode), or the selected candidate's
  /// source (verify mode; same as Outcome.CSource).
  std::string CSource;
  /// Raw beam hypotheses, best first (always filled; lets batch clients
  /// run their own selection/verification).
  std::vector<nn::Hypothesis> Hyps;
  /// Full-pipeline outcome; valid only when Verified.
  core::HypothesisOutcome Outcome;
  bool Verified = false;
  /// Seconds from submit() to admission into a decode row.
  double QueueWaitSeconds = 0;
  /// Seconds from submit() to completion (end-to-end latency).
  double TotalSeconds = 0;
};

/// Queue item: the request plus its completion promise and arrival stamp.
struct Admission {
  DecompileRequest Req;
  std::promise<RequestResult> Promise;
  /// Optional completion callback, invoked (from the decode thread or a
  /// verify worker) just before the promise is fulfilled.
  std::function<void(const RequestResult &)> OnDone;
  std::chrono::steady_clock::time_point SubmitTime;
};

/// Bounded blocking queue between submitters and the decode loop.
/// Thread-safe; any number of producers, one consumer (the decode loop).
class AdmissionQueue {
public:
  explicit AdmissionQueue(size_t Capacity);

  /// Enqueues, blocking while the queue is full. Returns false (without
  /// enqueueing) once the queue is closed.
  bool push(Admission A);
  /// Non-blocking enqueue; false when full or closed.
  bool tryPush(Admission &A);
  /// Dequeues, blocking while the queue is empty. Returns false only
  /// when the queue is closed AND drained.
  bool pop(Admission *Out);
  /// Non-blocking dequeue; false when empty.
  bool tryPop(Admission *Out);

  /// Closes the queue: subsequent pushes fail, pops drain what remains.
  void close();
  bool closed() const;
  size_t size() const;
  size_t capacity() const { return Cap; }

private:
  const size_t Cap;
  mutable std::mutex Mu;
  std::condition_variable NotFull, NotEmpty;
  std::deque<Admission> Items;
  bool Closed = false;
};

/// Freelist of decode-batch segment ids [0, N): the engine's row
/// recycler. Single-consumer (decode loop) — no locking.
class SlotAllocator {
public:
  explicit SlotAllocator(int N);
  /// Pops a free segment id, or -1 when every segment is live.
  int acquire();
  void release(int Slot);
  int freeCount() const { return static_cast<int>(Free.size()); }

private:
  std::vector<int> Free; ///< LIFO: retire-then-admit reuses the same row.
#ifndef NDEBUG
  std::vector<bool> Live;
#endif
};

} // namespace serve
} // namespace slade

#endif // SLADE_SERVE_ADMISSIONQUEUE_H
